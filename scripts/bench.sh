#!/usr/bin/env bash
# Runs the headline benchmark families — B-KEY (key representation),
# B-STREAM (streaming execution), B-OPT (cost-based optimizer) and B-SERVE
# (mediator service throughput / plan cache) — and writes the results as
# machine-readable JSON, one record per benchmark with every reported
# metric. The bench trajectory lives in the file so runs can be compared
# across commits.
#
# Usage:
#   scripts/bench.sh [output.json]      # default BENCH_serve.json
#   BENCHTIME=2s scripts/bench.sh       # real measurement run
#   BENCHTIME=1x scripts/bench.sh       # smoke (default: 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_serve.json}
benchtime=${BENCHTIME:-100x}
pattern='BenchmarkKeyRepresentation|BenchmarkStreaming|BenchmarkFederatedPushdown|BenchmarkFederatedJoinOrder|BenchmarkServe'

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
echo "running benchmarks ($pattern) with -benchtime=$benchtime ..." >&2
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -short -timeout 30m . | tee "$raw" >&2

# Benchmark output lines look like:
#   BenchmarkName/sub=1-8   300   4039387 ns/op   2010 p50-µs   247.6 qps
# i.e. name, iterations, then value/unit pairs. Emit one JSON object each.
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (!first) printf(",\n"); first = 0
    printf("  {\"benchmark\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/"/, "", unit)
        printf(", \"%s\": %s", unit, $i)
    }
    printf("}")
}
END { print "\n]" }
' "$raw" > "$out"

count=$(grep -c '"benchmark"' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "ERROR: no benchmark records parsed" >&2
    exit 1
fi
echo "wrote $count benchmark records to $out" >&2
