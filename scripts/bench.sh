#!/usr/bin/env bash
# Runs the headline benchmark suites and writes each one's results as
# machine-readable JSON, one record per benchmark with every reported
# metric — the perf trajectory lives in those files so runs can be compared
# across commits:
#
#   serve  B-KEY / B-STREAM / B-OPT / B-SERVE        -> BENCH_serve.json
#   par    B-PAR (partitioned hash ops, parallel     -> BENCH_par.json
#          stream join, mediator latency, parallel
#          plan execution)
#   fault  B-FAULT (replicated star under injected   -> BENCH_fault.json
#          faults: scenario latency percentiles,
#          hedge/retry fire rates, deadline bound)
#   col    B-COL (columnar hash kernels vs the row    -> BENCH_col.json
#          engine, binary vs gob stream framing);
#          also guards the columnar alloc win: the
#          col-engine Union at n=100000 must stay
#          >=5x below BENCH_par's row-engine allocs
#   shard  B-SHARD (scatter-gather federation at      -> BENCH_shard.json
#          1/2/4/8 shards vs single-endpoint:
#          latency, cells-per-shard, key pruning)
#   store  B-STORE (write-ahead log replay MB/s,      -> BENCH_store.json
#          logged append overhead vs in-memory,
#          budgeted spill join vs in-memory join)
#
# Every suite must produce at least one JSON record; a suite whose pattern
# matches nothing (a renamed benchmark, a build failure swallowed by tee)
# fails the run loudly instead of silently dropping the trajectory. Each
# file leads with a {"host": ...} record (go version, OS/arch, NumCPU,
# GOMAXPROCS) so trajectories compare like with like across machines.
#
# Usage:
#   scripts/bench.sh [suite ...]        # default: all suites
#   BENCHTIME=2s scripts/bench.sh       # real measurement run
#   BENCHTIME=1x scripts/bench.sh par   # smoke one suite (default: 100x)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime=${BENCHTIME:-100x}

suite_pattern() {
    case "$1" in
    serve) echo 'BenchmarkKeyRepresentation|BenchmarkStreaming|BenchmarkFederatedPushdown|BenchmarkFederatedJoinOrder|BenchmarkServe' ;;
    par) echo 'BenchmarkParallelHashOps|BenchmarkParallelStreamJoin|BenchmarkParallelMediatorLatency|BenchmarkParallelExecution' ;;
    fault) echo 'BenchmarkFaultScenarios|BenchmarkFaultDeadline' ;;
    col) echo 'BenchmarkColumnarHashOps|BenchmarkColumnarWireStream' ;;
    shard) echo 'BenchmarkShardScatterGather|BenchmarkShardPrunedRetrieve' ;;
    store) echo 'BenchmarkStoreReplay|BenchmarkStoreAppend|BenchmarkSpillJoin' ;;
    *) echo "ERROR: unknown suite '$1' (want: serve par fault col shard store)" >&2; return 1 ;;
    esac
}

suite_out() {
    case "$1" in
    serve) echo BENCH_serve.json ;;
    par) echo BENCH_par.json ;;
    fault) echo BENCH_fault.json ;;
    col) echo BENCH_col.json ;;
    shard) echo BENCH_shard.json ;;
    store) echo BENCH_store.json ;;
    esac
}

# host_record renders the machine context every BENCH file leads with, so a
# perf trajectory is never compared across unlike hosts unnoticed.
host_record() {
    local gover goos goarch ncpu maxprocs
    gover=$(go env GOVERSION)
    goos=$(go env GOOS)
    goarch=$(go env GOARCH)
    ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)
    maxprocs=${GOMAXPROCS:-$ncpu}
    printf '{"host": {"go": "%s", "os": "%s", "arch": "%s", "numcpu": %s, "gomaxprocs": %s}}' \
        "$gover" "$goos" "$goarch" "$ncpu" "$maxprocs"
}

# The columnar suite carries a regression guard: the col-engine Union at
# n=100000 must allocate at least 5x less often than the row engine's
# recorded baseline in BENCH_par.json (workers=1). A refactor that quietly
# reintroduces per-row allocation fails the run.
check_col_guard() {
    [ -f BENCH_par.json ] || { echo "== col guard: no BENCH_par.json baseline, skipping" >&2; return 0; }
    python3 - <<'EOF'
import json, sys

def allocs(path, name):
    with open(path) as f:
        for rec in json.load(f):
            if rec.get("benchmark") == name:
                return rec.get("allocs/op")
    return None

base = allocs("BENCH_par.json", "BenchmarkParallelHashOps/op=Union/n=100000/workers=1")
col = allocs("BENCH_col.json", "BenchmarkColumnarHashOps/op=Union/n=100000/engine=col")
if base is None or col is None:
    sys.exit("col guard: missing Union@100k record (BENCH_par workers=1 or BENCH_col engine=col)")
if col * 5 > base:
    sys.exit(f"col guard: columnar Union@100k allocs/op regressed: {col} vs row baseline {base} (need >=5x fewer)")
print(f"== col guard: columnar Union@100k allocs/op {col} vs row {base} ({base/col:.0f}x fewer) — ok", file=sys.stderr)
EOF
}

# Benchmark output lines look like:
#   BenchmarkName/sub=1-8   300   4039387 ns/op   2010 p50-µs   247.6 qps
# i.e. name, iterations, then value/unit pairs. Emit one JSON object each.
to_json() {
    awk -v host="$(host_record)" '
    BEGIN { print "["; printf("  %s", host); first = 0 }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!first) printf(",\n"); first = 0
        printf("  {\"benchmark\": \"%s\", \"iterations\": %s", name, $2)
        for (i = 3; i + 1 <= NF; i += 2) {
            unit = $(i + 1)
            gsub(/"/, "", unit)
            printf(", \"%s\": %s", unit, $i)
        }
        printf("}")
    }
    END { print "\n]" }
    '
}

run_suite() {
    local suite=$1 pattern out raw count
    # `|| return` so a bad suite name fails fast even though the caller's
    # `run_suite X || failed=1` context suppresses errexit in here.
    pattern=$(suite_pattern "$suite") || return 1
    out=$(suite_out "$suite")
    if [ -z "$out" ]; then
        echo "ERROR: no output file mapped for suite '$suite'" >&2
        return 1
    fi
    raw=$(mktemp)
    trap 'rm -f "$raw"' RETURN
    echo "== suite $suite: running ($pattern) with -benchtime=$benchtime ..." >&2
    # Explicit status check: the caller's `run_suite X || failed=1` context
    # suppresses errexit in here, and a benchmark that b.Fatals after
    # emitting some records would otherwise "pass" with truncated JSON
    # (pipefail, set at the top, surfaces go test's failure through tee).
    if ! go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -short -timeout 30m . | tee "$raw" >&2; then
        echo "ERROR: suite $suite benchmark run failed" >&2
        return 1
    fi
    to_json <"$raw" >"$out"
    count=$(grep -c '"benchmark"' "$out" || true)
    if [ "$count" -eq 0 ]; then
        echo "ERROR: suite $suite produced no benchmark records ($out is empty)" >&2
        return 1
    fi
    echo "== suite $suite: wrote $count benchmark records to $out" >&2
    if [ "$suite" = col ]; then
        check_col_guard || return 1
    fi
}

suites=("$@")
if [ ${#suites[@]} -eq 0 ]; then
    suites=(serve par fault col shard store)
fi
failed=0
for s in "${suites[@]}"; do
    run_suite "$s" || failed=1
done
if [ "$failed" -ne 0 ]; then
    echo "ERROR: at least one suite produced no JSON — fix the pattern or the benchmarks" >&2
    exit 1
fi
