// Package repro is a from-scratch Go reproduction of
//
//	Y. Richard Wang and Stuart E. Madnick,
//	"A Polygen Model for Heterogeneous Database Systems:
//	 The Source Tagging Perspective", 1990.
//
// README.md has the tour and quickstart; docs/ARCHITECTURE.md maps the
// layers onto the paper's figures, describes the execution engines and
// their parity contract, and documents the cost-based federated optimizer
// and the rewrites the polygen tag calculus does and does not license.
// EXPERIMENTS.md records paper-vs-measured for every artifact and the B-*
// benchmark families. The implementation lives under internal/, the
// runnable entry points under cmd/ and examples/, and the benchmark
// harness that regenerates every table and figure of the paper in
// bench_test.go next to this file.
//
// Three execution engines evaluate polygen queries, proven cell-for-cell
// identical (data and both tag sets) by the property suite in
// internal/core:
//
//   - the streaming engine (pqp.Execute, the default): plans run as trees
//     of batch cursors, bounding peak memory and overlapping remote LQP
//     retrieval with PQP-side operator work;
//   - the materializing engine (pqp.ExecuteMaterialized / ExecuteAll /
//     ExecuteParallel): register-at-a-time evaluation, used whenever every
//     intermediate register is wanted and as the streaming engine's
//     reference;
//   - the string-keyed reference operators (core.Ref*): the pre-hash-native
//     semantics baseline, not on any query path.
//
// Plans are rewritten before execution by the cost-based federated
// optimizer (translate.OptimizeWithOptions): selections and projections
// push down into LQPs as fused subplans, retrievals narrow to the columns
// the query demands, and join chains reorder under per-LQP statistics
// (internal/stats) — every rewrite proven identity-preserving, tags
// included, by the property suite in internal/pqp.
package repro
