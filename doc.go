// Package repro is a from-scratch Go reproduction of
//
//	Y. Richard Wang and Stuart E. Madnick,
//	"A Polygen Model for Heterogeneous Database Systems:
//	 The Source Tagging Perspective", 1990.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), the runnable entry points under cmd/ and examples/, and the
// benchmark harness that regenerates every table and figure of the paper in
// bench_test.go next to this file. README.md has the tour; EXPERIMENTS.md
// records paper-vs-measured for every artifact.
//
// Three execution engines evaluate polygen queries, proven cell-for-cell
// identical (data and both tag sets) by the property suite in
// internal/core:
//
//   - the streaming engine (pqp.Execute, the default): plans run as trees
//     of batch cursors, bounding peak memory and overlapping remote LQP
//     retrieval with PQP-side operator work;
//   - the materializing engine (pqp.ExecuteMaterialized / ExecuteAll /
//     ExecuteParallel): register-at-a-time evaluation, used whenever every
//     intermediate register is wanted and as the streaming engine's
//     reference;
//   - the string-keyed reference operators (core.Ref*): the pre-hash-native
//     semantics baseline, not on any query path.
package repro
