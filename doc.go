// Package repro is a from-scratch Go reproduction of
//
//	Y. Richard Wang and Stuart E. Madnick,
//	"A Polygen Model for Heterogeneous Database Systems:
//	 The Source Tagging Perspective", 1990.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), the runnable entry points under cmd/ and examples/, and the
// benchmark harness that regenerates every table and figure of the paper in
// bench_test.go next to this file. README.md has the tour; EXPERIMENTS.md
// records paper-vs-measured for every artifact.
package repro
