# Convenience targets; CI runs the same commands (see .github/workflows).

GO ?= go

.PHONY: all build test race chaos bench bench-smoke fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout=20m ./...

# chaos runs the fault-injection property suite under the race detector:
# replicated sources with one replica killed/hung/slowed/cut per scenario,
# over a pinned seed matrix (deterministic per seed — a CI failure replays
# here verbatim). The federation and faultinject packages are chaos suites
# in their entirety, so they run unfiltered.
chaos:
	$(GO) test -race -count=1 -timeout=15m ./internal/federation/... ./internal/faultinject/...
	$(GO) test -race -count=1 -timeout=15m -run 'Fault|Flaky|Chaos' ./internal/workload/... ./internal/wire/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench runs the headline benchmark suites (serve: B-KEY/B-STREAM/B-OPT/
# B-SERVE -> BENCH_serve.json; par: B-PAR -> BENCH_par.json), one merged
# machine-readable JSON file per suite, and fails if any suite produced no
# records. BENCHTIME=2s make bench   for a real measurement run.
bench:
	bash scripts/bench.sh

# bench-smoke is the CI shape: one iteration per benchmark.
bench-smoke:
	BENCHTIME=1x bash scripts/bench.sh
