// Quickstart: build a two-database federation from scratch, define a polygen
// schema over it, run one SQL polygen query through the Polygen Query
// Processor, and read the source tags off the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/pqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

func main() {
	// 1. Two autonomous local databases. HR knows employees; PAYROLL knows
	//    salaries. Both spell the employer differently — a classic
	//    inter-database instance mismatch.
	hr := catalog.NewDatabase("HR")
	hr.MustCreate("EMP", rel.SchemaOf("ENAME", "DEPT"), "ENAME")
	must(hr.Insert("EMP",
		rel.Tuple{rel.String("Ada"), rel.String("Engineering")},
		rel.Tuple{rel.String("Grace"), rel.String("Research")},
		rel.Tuple{rel.String("Alan"), rel.String("Research")},
	))

	payroll := catalog.NewDatabase("PAY")
	payroll.MustCreate("SALARY", rel.SchemaOf("WHO", "AMOUNT"), "WHO")
	must(payroll.Insert("SALARY",
		rel.Tuple{rel.String("ada"), rel.Int(120)},
		rel.Tuple{rel.String("grace"), rel.Int(150)},
	))

	// 2. The polygen schema: one scheme per logical entity, each attribute
	//    carrying its (database, relation, attribute) mapping set.
	schema := core.MustSchema(
		&core.Scheme{Name: "PEMP", Key: "NAME", Attrs: []core.PolygenAttr{
			{Name: "NAME", Mapping: []core.LocalAttr{{DB: "HR", Scheme: "EMP", Attr: "ENAME"}}},
			{Name: "DEPT", Mapping: []core.LocalAttr{{DB: "HR", Scheme: "EMP", Attr: "DEPT"}}},
		}},
		&core.Scheme{Name: "PSALARY", Key: "WHO", Attrs: []core.PolygenAttr{
			{Name: "WHO", Mapping: []core.LocalAttr{{DB: "PAY", Scheme: "SALARY", Attr: "WHO"}}},
			{Name: "AMOUNT", Mapping: []core.LocalAttr{{DB: "PAY", Scheme: "SALARY", Attr: "AMOUNT"}}},
		}},
	)

	// 3. A PQP over in-process LQPs. identity.CaseFold resolves "Ada" vs
	//    "ada" during joins, per the paper's resolved-instance assumption.
	reg := sourceset.NewRegistry()
	processor := pqp.New(schema, reg, identity.CaseFold{}, map[string]lqp.LQP{
		"HR":  lqp.NewLocal(hr),
		"PAY": lqp.NewLocal(payroll),
	})

	// 4. One polygen query: researchers and their salaries.
	res, err := processor.QuerySQL(
		`SELECT NAME, AMOUNT FROM PEMP, PSALARY WHERE NAME = WHO AND DEPT = "Research"`)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Every cell is (datum, origins, intermediates).
	fmt.Println("composite answer:")
	for _, t := range res.Relation.Tuples {
		for i, c := range t {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(c.Format(reg))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("reading the tags of the first tuple:")
	t := res.Relation.Tuples[0]
	fmt.Printf("  %q came from %s and was selected using data from %s\n",
		t[1].D, t[1].O.Format(reg), t[1].I.Format(reg))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
