// mit_ceo replays the paper's worked example end to end: the
// ComputerWorld-inspired query for organizations whose CEOs hold MIT MBAs
// (§I, §III, §IV). It prints every artifact of the pipeline in the paper's
// order — the SQL query, the algebraic expression, the Polygen Operation
// Matrix (Table 1), the half-processed IOM (Table 2), the Intermediate
// Operation Matrix (Table 3), the intermediate polygen relations (Tables
// 4–8) and the final tagged answer (Table 9), closing with the paper's three
// observations derived programmatically from the tags.
//
//	go run ./examples/mit_ceo
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/tables"
)

func main() {
	art, err := tables.Compute()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SQL polygen query (§III):")
	fmt.Println(indent(tables.PaperSQL))
	fmt.Println("\nPolygen algebraic expression:")
	fmt.Println(indent(art.Expr.String()))

	fmt.Println("\nTable 1 — Polygen Operation Matrix:")
	fmt.Println(indent(art.POM.String()))
	fmt.Println("Table 2 — half-processed IOM (pass one):")
	fmt.Println(indent(art.Half.String()))
	fmt.Println("Table 3 — Intermediate Operation Matrix (pass two):")
	fmt.Println(indent(art.IOM.String()))

	show := func(title string, reg int) {
		fmt.Printf("%s:\n", title)
		header, rows := tables.RenderRelation(art.R[reg])
		fmt.Println(indent(header))
		for _, r := range rows {
			fmt.Println(indent(r))
		}
		fmt.Println()
	}
	show("Table 4 — ALUMNUS[DEG=\"MBA\"] executed at AD", 1)
	show("Table 5 — joined with CAREER", 3)
	show("Table 6 — Merge(BUSINESS, CORPORATION, FIRM)", 7)
	show("Table 7 — joined with the merged organizations", 8)
	show("Table 8 — restricted to CEO = ANAME", 9)
	show("Table 9 — final projection [ONAME, CEO]", 10)

	fmt.Println("Observations (§IV), derived from the tags:")
	reg := art.Fed.Registry
	final := art.R[10]
	for _, t := range final.Tuples {
		oname, ceo := t[0], t[1]
		fmt.Printf("  - %s is known to %s; that its CEO is %s originated in %s,\n",
			oname.D, oname.O.Format(reg), ceo.D, ceo.O.Format(reg))
		fmt.Printf("    with %s consulted as intermediate sources.\n",
			ceo.I.Minus(ceo.O).Format(reg))
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}
