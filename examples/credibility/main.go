// credibility demonstrates the research direction the polygen model founds
// (§V): using source tags to detect and resolve data conflicts between
// local databases. Three market-data providers disagree about company
// ratings; the example (1) reports every conflict with the sources taking
// each side, (2) merges the federation twice — once with the default
// left-precedence policy and once with a credibility-ranked conflict
// handler — and (3) shows how the winning datum's tags still disclose that
// the losing source was consulted.
//
//	go run ./examples/credibility
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/credibility"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

func main() {
	reg := sourceset.NewRegistry()
	for _, n := range []string{"BLOOM", "REUT", "UPSTART"} {
		reg.Intern(n)
	}

	// Three providers, one relation each: RATING(TICKER, GRADE).
	mk := func(db string, rows [][2]string) *catalog.Database {
		d := catalog.NewDatabase(db)
		d.MustCreate("RATING", rel.SchemaOf("TICKER", "GRADE"), "TICKER")
		for _, r := range rows {
			if err := d.Insert("RATING", rel.Tuple{rel.String(r[0]), rel.String(r[1])}); err != nil {
				log.Fatal(err)
			}
		}
		return d
	}
	bloom := mk("BLOOM", [][2]string{{"IBM", "AA"}, {"DEC", "A"}, {"APPL", "BBB"}})
	reut := mk("REUT", [][2]string{{"IBM", "AA"}, {"DEC", "BBB"}, {"FORD", "BB"}})
	upstart := mk("UPSTART", [][2]string{{"IBM", "C"}, {"APPL", "AA"}, {"FORD", "BB"}})

	scheme := &core.Scheme{Name: "PRATING", Key: "TICKER", Attrs: []core.PolygenAttr{
		{Name: "TICKER", Mapping: []core.LocalAttr{
			{DB: "BLOOM", Scheme: "RATING", Attr: "TICKER"},
			{DB: "REUT", Scheme: "RATING", Attr: "TICKER"},
			{DB: "UPSTART", Scheme: "RATING", Attr: "TICKER"},
		}},
		{Name: "GRADE", Mapping: []core.LocalAttr{
			{DB: "BLOOM", Scheme: "RATING", Attr: "GRADE"},
			{DB: "REUT", Scheme: "RATING", Attr: "GRADE"},
			{DB: "UPSTART", Scheme: "RATING", Attr: "GRADE"},
		}},
	}}
	// Validate the scheme's mapping metadata early.
	core.MustSchema(scheme)

	// Tag the fragments the way the PQP would.
	tag := func(db *catalog.Database) *core.Relation {
		plain, err := db.Snapshot("RATING")
		if err != nil {
			log.Fatal(err)
		}
		src := reg.Intern(db.Name())
		p := core.FromPlain(plain, src, reg)
		p.Attrs[0].Polygen = "TICKER"
		p.Attrs[1].Polygen = "GRADE"
		return p
	}
	// The upstart provider deliberately merges first: under the default
	// left-precedence policy its (wrong) data wins, which is exactly what
	// credibility-ranked resolution corrects.
	frags := []*core.Relation{tag(upstart), tag(reut), tag(bloom)}

	// The established wire services are trusted; the upstart is not.
	rank := credibility.NewRanking(reg, map[string]float64{
		"BLOOM": 0.95, "REUT": 0.90, "UPSTART": 0.40,
	}, 0.5)

	fmt.Println("conflicts across the federation:")
	conflicts, err := credibility.FindConflicts(scheme, rank, identity.CaseFold{}, frags...)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range conflicts {
		fmt.Println("  " + c.String())
	}

	merge := func(title string, handler core.ConflictHandler) *core.Relation {
		alg := core.NewAlgebra(identity.CaseFold{})
		alg.SetConflictHandler(handler)
		m, err := alg.Merge(scheme, frags...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", title)
		for _, t := range m.Tuples {
			fmt.Printf("  %-6s -> %s\n", t[0].D, t[1].Format(reg))
		}
		return m
	}

	merge("merged with the default policy (left operand wins)", nil)
	resolved := merge("merged with credibility-ranked resolution", rank.Handler())

	fmt.Println("\nper-tuple credibility of the resolved relation:")
	for _, t := range resolved.Tuples {
		fmt.Printf("  %-6s %.2f\n", t[0].D, rank.Tuple(t))
	}
}
