// finance demonstrates the domain mapping machinery the paper assumes away
// (§I: "the domain mismatch problem such as unit ($ vs ¥), scale (in
// billions vs. in millions) ... has been resolved ... and the domain mapping
// information is also available to the PQP"). The Company Database stores
// PROFIT as display strings ("1.7 bil", "648 mil"); registering a
// domainmap.UnitSuffix conversion for (CD, FINANCE, PROFIT) lets polygen
// queries compare profits numerically — and the answer still carries the
// source tags. A closing cardinality audit (§V, footnote 13) shows which
// organizations each database is missing.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"

	"repro/internal/audit"
	"repro/internal/catalog"
	"repro/internal/domainmap"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/tables"
)

func main() {
	fed := paperdata.New()

	// Register the scale mapping: "1.7 bil" -> 1.7e9, "648 mil" -> 6.48e8.
	fed.Schema.DomainMap.Set(paperdata.CD, "FINANCE", "PROFIT",
		domainmap.UnitSuffix(map[string]float64{"bil": 1e9, "mil": 1e6}))

	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())

	fmt.Println("organizations with 1989 profit over $1B (PROFIT domain-mapped at retrieval):")
	res, err := processor.QuerySQL(`SELECT ONAME, PROFIT FROM PFINANCE WHERE PROFIT > 1000000000`)
	if err != nil {
		log.Fatal(err)
	}
	header, rows := tables.RenderRelation(res.Relation)
	fmt.Println("  " + header)
	for _, r := range rows {
		fmt.Println("  " + r)
	}

	fmt.Println("\njoining profits with the merged organization relation:")
	res2, err := processor.QuerySQL(
		`SELECT ONAME, INDUSTRY, PROFIT FROM PORGANIZATION, PFINANCE WHERE ONAME IN
		   (SELECT ONAME FROM PFINANCE WHERE PROFIT > 1000000000)`)
	if err != nil {
		log.Fatal(err)
	}
	header2, rows2 := tables.RenderRelation(res2.Relation)
	fmt.Println("  " + header2)
	for _, r := range rows2 {
		fmt.Println("  " + r)
	}

	fmt.Println("\ncardinality inconsistency audit (who is missing whom):")
	covs, err := audit.AuditSchema(fed.Schema, identity.CaseFold{},
		map[string]*catalog.Database{"AD": fed.AD, "PD": fed.PD, "CD": fed.CD})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range covs {
		fmt.Print(indent(c.String()))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
