// federation_network realizes Figure 1 with real sockets: the three local
// databases are served by three LQP servers on loopback TCP, the Polygen
// Query Processor connects to them as remote LQPs, and the paper's example
// query executes across the network. The answer — and its source tags — are
// byte-identical to the in-process run, demonstrating that the LQP boundary
// fully encapsulates locality.
//
//	go run ./examples/federation_network
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/tables"
	"repro/internal/wire"
)

func main() {
	fed := paperdata.New()

	// One LQP server per local database, each on its own port.
	lqps := make(map[string]lqp.LQP, 3)
	for _, db := range fed.Databases() {
		srv := wire.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer client.Close()
		rels, err := client.Relations()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LQP %-2s listening on %s serving %s\n", client.Name(), addr, strings.Join(rels, ", "))
		lqps[client.Name()] = client
	}

	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	processor.Trace = func(format string, args ...any) {
		fmt.Printf("  plan: "+format+"\n", args...)
	}

	fmt.Println("\nexecuting the §III query over the network:")
	res, err := processor.QuerySQL(tables.PaperSQL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncomposite answer (Table 9):")
	header, rows := tables.RenderRelation(res.Relation)
	fmt.Println("  " + header)
	for _, r := range rows {
		fmt.Println("  " + r)
	}
}
