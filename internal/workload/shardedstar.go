package workload

// This file is the sharded-federation workload: the star federation of
// star.go with every logical source horizontally partitioned across N shard
// slices (federation.Slice — placement by canonical-ID hash through
// rel.PartitionOf), each shard backed by its own replica set behind the
// resilient federation layer, with the same deterministic fault injection
// the replicated workload uses. It is what the B-SHARD benchmarks and the
// sharded property suite run against: answers must be cell-for-cell
// identical to the single-copy star no matter the shard count, the replica
// count, or the injected faults.

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/federation"
	"repro/internal/lqp"
)

// ShardedStarConfig parameterizes a sharded star federation.
type ShardedStarConfig struct {
	// Fault carries the data shape, replicas per shard, fault scenario,
	// dead source and federation tuning — the same knobs as the replicated
	// workload, applied per shard.
	Fault FaultConfig
	// Shards is how many slices every logical source deals across
	// (default 2).
	Shards int
}

func (c ShardedStarConfig) withDefaults() ShardedStarConfig {
	c.Fault = c.Fault.withDefaults()
	if c.Shards <= 0 {
		c.Shards = 2
	}
	return c
}

// String renders the configuration for test and benchmark names.
func (c ShardedStarConfig) String() string {
	return fmt.Sprintf("shards=%d/%s", c.Shards, c.Fault.String())
}

// ShardedStar is a star federation whose logical sources are each sharded
// N ways, every shard replicated behind the federation layer.
type ShardedStar struct {
	// Star is the underlying single-copy federation (data and schema) —
	// the ground truth the sharded answers are compared against.
	Star *Star
	// Registry serves the sharded sources.
	Registry *federation.Registry
	// Shards is the shard count per logical source.
	Shards int
	// Slices maps each source name to its shard slices in shard order;
	// the union of a source's slices is exactly its Star database.
	Slices map[string][]*catalog.Database
	// Sharded maps each source name to its scatter-gather source.
	Sharded map[string]*federation.ShardedSource
	// Faulty maps each source name to its misbehaving replicas, for
	// asserting that faults actually fired.
	Faulty map[string][]*faultinject.Flaky
}

// NewShardedStar builds the sharded federation. Source S's catalog slices
// into cfg.Shards horizontal partitions; shard i gets cfg.Fault.Replicas
// independent LQPs over slice i. Replica 0 of every shard misbehaves per
// cfg.Fault.Scenario, and every replica of every shard of
// cfg.Fault.DeadSource is killed outright — the exhaustion case. Placement
// maps are primed from the catalogs' declared keys, so key-equality
// selects prune to one shard from the first query.
func NewShardedStar(cfg ShardedStarConfig) *ShardedStar {
	cfg = cfg.withDefaults()
	star := NewStar(cfg.Fault.Star)
	ss := &ShardedStar{
		Star:     star,
		Registry: federation.NewRegistry(cfg.Fault.Federation),
		Shards:   cfg.Shards,
		Slices:   make(map[string][]*catalog.Database),
		Sharded:  make(map[string]*federation.ShardedSource),
		Faulty:   make(map[string][]*faultinject.Flaky),
	}
	dead := faultinject.Profile{Seed: cfg.Fault.Seed, ErrEvery: 1}
	for _, db := range star.Databases() {
		name := db.Name()
		groups := make([][]lqp.LQP, cfg.Shards)
		for i := 0; i < cfg.Shards; i++ {
			slice, err := federation.Slice(db, i, cfg.Shards)
			if err != nil {
				panic(err) // static inputs: only a programming error gets here
			}
			ss.Slices[name] = append(ss.Slices[name], slice)
			reps := make([]lqp.LQP, cfg.Fault.Replicas)
			for j := range reps {
				var l lqp.LQP = lqp.NewLocal(slice)
				switch {
				case name == cfg.Fault.DeadSource:
					f := faultinject.New(l, dead)
					ss.Faulty[name] = append(ss.Faulty[name], f)
					l = f
				case j == 0 && cfg.Fault.Scenario != ScenarioNone:
					f := faultinject.New(l, cfg.Fault.profile())
					ss.Faulty[name] = append(ss.Faulty[name], f)
					l = f
				}
				reps[j] = l
			}
			groups[i] = reps
		}
		src := ss.Registry.AddSharded(name, groups...)
		src.SetShardKeys(federation.NewShardMap(db, cfg.Shards).Keys)
		ss.Sharded[name] = src
	}
	return ss
}

// LQPs returns the scatter-gather LQP map — what a PQP over this federation
// executes against.
func (ss *ShardedStar) LQPs() map[string]lqp.LQP { return ss.Registry.LQPs() }

// InjectedFaults sums the faults that actually fired across the
// federation's misbehaving replicas.
func (ss *ShardedStar) InjectedFaults() (errs, hangs, slows, cuts int64) {
	for _, fs := range ss.Faulty {
		for _, f := range fs {
			e, h, s, c := f.Injected()
			errs, hangs, slows, cuts = errs+e, hangs+h, slows+s, cuts+c
		}
	}
	return
}
