package workload

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pqp"
)

func TestDriveCountsAndPercentiles(t *testing.T) {
	var calls atomic.Int64
	res := Drive(4, 25, func(worker, i int) error {
		calls.Add(1)
		if worker == 0 && i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if got := calls.Load(); got != 100 {
		t.Fatalf("run called %d times, want 100", got)
	}
	if res.Ops != 99 || res.Errors != 1 || res.Clients != 4 {
		t.Fatalf("result = %+v", res)
	}
	if res.QPS <= 0 || res.Elapsed <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50 > res.P95 || res.P95 > res.P99 || res.P99 > res.Max {
		t.Fatalf("percentiles out of order: %+v", res)
	}
}

func TestDriveClampsDegenerateArgs(t *testing.T) {
	res := Drive(0, 0, func(worker, i int) error { return nil })
	if res.Clients != 1 || res.Ops != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.99); got != 10 {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

// TestStarQueriesRun: the B-SERVE query mix parses and answers on the star
// federation (guards the bench harness against schema drift).
func TestStarQueriesRun(t *testing.T) {
	star := NewStar(StarConfig{Facts: 300, Dims: 20, Mids: 5, Categories: 10, Seed: 7})
	q := pqp.New(star.Schema, star.Registry, nil, star.LQPs())
	for _, text := range StarQueries() {
		if _, err := q.QueryAlgebra(text); err != nil {
			t.Errorf("%s: %v", text, err)
		}
	}
}
