package workload

// The sharded scatter-gather property suite: one logical source partitioned
// across N shard slices must be indistinguishable from the single-copy
// source — cell-for-cell AND tag-for-tag — on every engine leg. The suite
// runs the star query battery at shard counts {1, 2, 4, 7} across four legs
// (optimized/reference × streaming/materialized, so pushed-down plans
// scatter too), repeats it with every shard behind real TCP lqpd servers,
// and then composes sharding with the chaos machinery: the fault scenario ×
// seed matrix of the replicated suite, and whole-source outages under both
// degrade policies.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/pqp"
	"repro/internal/wire"
)

// shardPropCounts is the pinned shard-count matrix, prime and power-of-two
// alike so placement imbalance and single-shard degeneracy both run.
var shardPropCounts = []int{1, 2, 4, 7}

// shardPropQueries stresses the scatter differently per shape: a pushable
// non-key select chain (every shard contributes), a key-equality select
// (prunes to one shard), and two join orders whose fan-out opens every
// source.
var shardPropQueries = []string{
	`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
	`(PFACT [FK = "F0000012"]) [FK, CAT, VAL]`,
	`(((PFACT [MK = MK] PMID) [DK = DK] (PDIM [DCAT = "dcat0"])) [VAL, DCAT, GRADE])`,
	`(((PFACT [DK = DK] PDIM) [MK = MK] PMID) [VAL, DCAT, GRADE])`,
}

// newShardPQP wires a PQP over a sharded star and collects statistics, so
// the optimizer's cost-based passes (and the ShardedSource's placement-key
// priming) are live.
func newShardPQP(t *testing.T, cfg ShardedStarConfig) (*pqp.PQP, *ShardedStar) {
	t.Helper()
	ss := NewShardedStar(cfg)
	q := pqp.New(ss.Star.Schema, ss.Star.Registry, nil, ss.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatalf("CollectStats over %s: %v", cfg, err)
	}
	return q, ss
}

// shardBaselines answers the battery on the plain single-copy star — the
// ground truth every sharded leg is compared against.
func shardBaselines(t *testing.T) [][]string {
	t.Helper()
	star := NewStar(faultStarConfig())
	q := pqp.New(star.Schema, star.Registry, nil, star.LQPs())
	out := make([][]string, len(shardPropQueries))
	for i, query := range shardPropQueries {
		res, err := q.QueryAlgebra(query)
		if err != nil {
			t.Fatalf("baseline %q: %v", query, err)
		}
		if res.Relation.Cardinality() == 0 {
			t.Fatalf("baseline %q is empty; the property would be vacuous", query)
		}
		out[i] = renderTagged(res.Relation)
	}
	return out
}

// runShardLegs answers one query on all four engine legs and compares each
// against the unsharded baseline.
func runShardLegs(t *testing.T, q *pqp.PQP, query string, want []string) {
	t.Helper()
	legs := map[string][]string{}
	for _, optimize := range []bool{true, false} {
		q.Optimize = optimize
		label := "reference"
		if optimize {
			label = "optimized"
		}
		res, err := q.QueryAlgebra(query)
		if err != nil {
			t.Fatalf("%s streaming %q: %v", label, query, err)
		}
		legs[label+"-streaming"] = renderTagged(res.Relation)
		mat, err := q.ExecuteMaterialized(res.Plan)
		if err != nil {
			t.Fatalf("%s materialized %q: %v", label, query, err)
		}
		legs[label+"-materialized"] = renderTagged(mat)
	}
	for leg, got := range legs {
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("%s diverges from the unsharded answer on %q\n got (%d rows):\n  %s\nwant (%d rows):\n  %s",
				leg, query, len(got), strings.Join(got, "\n  "), len(want), strings.Join(want, "\n  "))
		}
	}
}

// TestShardedPropertySuite is the core property: at every shard count, on
// every engine leg, the sharded federation answers exactly like the
// single-copy star — same cells, same tags, pushed plans included.
func TestShardedPropertySuite(t *testing.T) {
	baselines := shardBaselines(t)
	for _, shards := range shardPropCounts {
		cfg := ShardedStarConfig{
			Fault:  FaultConfig{Star: faultStarConfig(), Replicas: 1, Federation: faultFedConfig(1)},
			Shards: shards,
		}
		t.Run(cfg.String(), func(t *testing.T) {
			q, _ := newShardPQP(t, cfg)
			for i, query := range shardPropQueries {
				runShardLegs(t, q, query, baselines[i])
			}
		})
	}
}

// TestShardedPruningServesFewerRows: after statistics priming, the
// key-equality select touches one shard — the other shards' row meters do
// not move. This is the perf property behind B-SHARD's bytes-per-shard
// curve, asserted here without a benchmark.
func TestShardedPruningServesFewerRows(t *testing.T) {
	cfg := ShardedStarConfig{
		Fault:  FaultConfig{Star: faultStarConfig(), Replicas: 1, Federation: faultFedConfig(1)},
		Shards: 4,
	}
	q, ss := newShardPQP(t, cfg)
	fd := ss.Sharded["FD"]
	before := make([]int64, fd.ShardCount())
	for i := range before {
		before[i] = fd.RowsServed(i)
	}
	if _, err := q.QueryAlgebra(shardPropQueries[1]); err != nil {
		t.Fatal(err)
	}
	touched := 0
	for i := range before {
		if fd.RowsServed(i) > before[i] {
			touched++
		}
	}
	if touched > 1 {
		t.Errorf("key-equality select touched %d shards, want at most 1", touched)
	}
}

// TestShardedOverWire runs the battery with every shard slice behind its
// own TCP server — the deployment shape of lqpd -shard i/N — and demands
// the same answers as the in-process single-copy star.
func TestShardedOverWire(t *testing.T) {
	baselines := shardBaselines(t)
	star := NewStar(faultStarConfig())
	const shards = 3
	reg := federation.NewRegistry(faultFedConfig(1))
	for _, db := range star.Databases() {
		groups := make([][]lqp.LQP, shards)
		for i := 0; i < shards; i++ {
			slice, err := federation.Slice(db, i, shards)
			if err != nil {
				t.Fatalf("Slice(%s, %d): %v", db.Name(), i, err)
			}
			srv := wire.NewServer(slice)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			t.Cleanup(func() { srv.Close() })
			c, err := wire.Dial(addr)
			if err != nil {
				t.Fatalf("Dial %s: %v", addr, err)
			}
			t.Cleanup(func() { c.Close() })
			groups[i] = []lqp.LQP{c}
		}
		src := reg.AddSharded(db.Name(), groups...)
		src.SetShardKeys(federation.NewShardMap(db, shards).Keys)
	}
	q := pqp.New(star.Schema, star.Registry, nil, reg.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatalf("CollectStats over the wire: %v", err)
	}
	for i, query := range shardPropQueries {
		runShardLegs(t, q, query, baselines[i])
	}
}

// TestShardedFaultMatrix composes sharding with the chaos suite: replica 0
// of every shard misbehaves per scenario, across the pinned seed matrix.
// Every answer is identical to the fault-free baseline or a typed
// ExhaustedError naming a logical source — never a silent partial gather,
// never an unbounded stall.
func TestShardedFaultMatrix(t *testing.T) {
	baselines := shardBaselines(t)
	scenarios := []FaultScenario{ScenarioKilled, ScenarioHung, ScenarioSlow, ScenarioCut}
	logical := map[string]bool{"FD": true, "DD": true, "MD": true}
	for _, scenario := range scenarios {
		for _, seed := range faultSeeds {
			cfg := ShardedStarConfig{
				Fault: FaultConfig{
					Star:       faultStarConfig(),
					Scenario:   scenario,
					Seed:       seed,
					Replicas:   2,
					Latency:    5 * time.Millisecond,
					Hang:       2 * time.Second,
					Federation: faultFedConfig(seed),
				},
				Shards: 3,
			}
			t.Run(cfg.String(), func(t *testing.T) {
				q, ss := newShardPQP(t, cfg)
				for i, query := range shardPropQueries {
					start := time.Now()
					res, err := q.QueryAlgebra(query)
					elapsed := time.Since(start)
					if budget := 10 * cfg.Fault.Federation.CallTimeout; elapsed > budget {
						t.Errorf("%q took %v, budget %v — a faulty shard replica stalled the query", query, elapsed, budget)
					}
					if err != nil {
						var ex *federation.ExhaustedError
						if !errors.As(err, &ex) {
							t.Errorf("%q failed untyped: %v", query, err)
						} else if !logical[ex.Source] {
							t.Errorf("%q: ExhaustedError names %q, want a logical source", query, ex.Source)
						}
						continue
					}
					if got := renderTagged(res.Relation); strings.Join(got, "\n") != strings.Join(baselines[i], "\n") {
						t.Errorf("%q differs from the fault-free run\n got (%d rows):\n  %s\nwant (%d rows):\n  %s",
							query, len(got), strings.Join(got, "\n  "), len(baselines[i]), strings.Join(baselines[i], "\n  "))
					}
				}
				if errs, hangs, slows, cuts := ss.InjectedFaults(); errs+hangs+slows+cuts == 0 {
					t.Errorf("scenario %s injected nothing — the suite tested a healthy federation", scenario)
				}
			})
		}
	}
}

// TestShardedDegradePolicies: with every replica of every MD shard dead,
// the fail policy refuses with a typed error naming the logical source, and
// the partial policy drops the whole logical leg — diagnostics name MD, no
// surviving cell carries an MD tag, and a query never touching MD answers
// fully.
func TestShardedDegradePolicies(t *testing.T) {
	cfg := ShardedStarConfig{
		Fault: FaultConfig{
			Star:       faultStarConfig(),
			DeadSource: "MD",
			Seed:       1,
			Replicas:   2,
			Federation: faultFedConfig(1),
		},
		Shards: 3,
	}
	// No CollectStats here: statistics collection itself scatters to the
	// dead MD shards and would (correctly) fail before the property runs.
	buildDead := func() *pqp.PQP {
		ss := NewShardedStar(cfg)
		return pqp.New(ss.Star.Schema, ss.Star.Registry, nil, ss.LQPs())
	}
	q := buildDead()
	_, err := q.QueryAlgebra(shardPropQueries[2]) // joins PMID — must touch MD
	if err == nil {
		t.Fatal("query over a dead sharded source succeeded under the fail policy")
	}
	var ex *federation.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error is not an ExhaustedError: %v", err)
	}
	if ex.Source != "MD" {
		t.Errorf("ExhaustedError names %q, want the logical source MD", ex.Source)
	}

	q = buildDead()
	q.Degrade = federation.PolicyPartial
	res, err := q.QueryAlgebra(shardPropQueries[0]) // FD-only
	if err != nil {
		t.Fatalf("partial policy failed a query that never touches the dead source: %v", err)
	}
	if res.Relation.Cardinality() == 0 {
		t.Fatal("FD-only query answered empty")
	}
	if rep := res.Diag.Report(); rep.Degraded() {
		t.Errorf("FD-only answer reports degradation: %+v", rep)
	}
	res, err = q.QueryAlgebra(shardPropQueries[2])
	if err != nil {
		t.Fatalf("partial policy did not degrade: %v", err)
	}
	rep := res.Diag.Report()
	if !rep.Degraded() || len(rep.Missing) != 1 || rep.Missing[0] != "MD" {
		t.Fatalf("diagnostics = %+v, want Missing=[MD]", rep)
	}
	for _, tu := range res.Relation.Tuples {
		for _, c := range tu {
			if strings.Contains(c.Format(res.Relation.Reg), "MD") {
				t.Fatalf("surviving cell tagged with the dead source: %s", c.Format(res.Relation.Reg))
			}
		}
	}
}
