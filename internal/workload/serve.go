package workload

// The closed-loop concurrent driver of the B-SERVE benchmarks: N clients,
// each issuing its next query as soon as the previous one answers, against
// any run function (a wire.Client session against polygend, or a shared
// in-process PQP). It measures what a serving system is judged by —
// throughput and tail latency — rather than the single-caller wall times
// the other benchmarks report.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DriveResult summarizes one closed-loop run.
type DriveResult struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Ops is the number of completed operations (errors excluded).
	Ops int
	// Errors is the number of failed operations.
	Errors int
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
	// QPS is Ops / Elapsed.
	QPS float64
	// P50, P95, P99 and Max are latency percentiles over completed
	// operations.
	P50, P95, P99, Max time.Duration
}

// String renders the result one line, benchmark-log style.
func (r DriveResult) String() string {
	return fmt.Sprintf("clients=%d ops=%d errors=%d qps=%.1f p50=%v p95=%v p99=%v max=%v",
		r.Clients, r.Ops, r.Errors, r.QPS, r.P50, r.P95, r.P99, r.Max)
}

// Drive runs a closed loop: clients goroutines, each calling run(worker, i)
// opsPerClient times back to back (worker is the goroutine index, i the
// operation index within it — use them to pick a query and a session).
// Latency is measured around each call; errors are counted (each failed
// call adds one to Errors) and the worker presses on, so one bad query
// cannot zero a throughput measurement.
func Drive(clients, opsPerClient int, run func(worker, i int) error) DriveResult {
	if clients < 1 {
		clients = 1
	}
	if opsPerClient < 1 {
		opsPerClient = 1
	}
	lats := make([][]time.Duration, clients)
	errs := make([]int, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, opsPerClient)
			for i := 0; i < opsPerClient; i++ {
				t0 := time.Now()
				if err := run(w, i); err != nil {
					errs[w]++
					continue
				}
				mine = append(mine, time.Since(t0))
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	all := make([]time.Duration, 0, clients*opsPerClient)
	errors := 0
	for w := range lats {
		all = append(all, lats[w]...)
		errors += errs[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := DriveResult{Clients: clients, Ops: len(all), Errors: errors, Elapsed: elapsed}
	if len(all) == 0 {
		return res
	}
	res.QPS = float64(len(all)) / elapsed.Seconds()
	res.P50 = percentile(all, 0.50)
	res.P95 = percentile(all, 0.95)
	res.P99 = percentile(all, 0.99)
	res.Max = all[len(all)-1]
	return res
}

// percentile reads the p-quantile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// StarQueries returns the B-SERVE query mix over the star federation: a
// pushdown-friendly selection chain, a star join, and a cheap dimension
// scan — enough plan variety that the plan cache holds several entries
// while each distinct query repeats often.
func StarQueries() []string {
	return []string{
		`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
		`((PFACT [CAT = "cat1"]) [DK = DK] PDIM) [VAL, DCAT]`,
		`PDIM [DCAT = "dcat0"]`,
		`((PFACT [CAT = "cat7"]) [VAL >= 2500]) [VAL]`,
	}
}
