package workload

import (
	"sort"
	"testing"

	"repro/internal/lqp"
	"repro/internal/rel"
)

// TestShardedStarSlicesReconstruct proves the shard slices of every source
// partition its catalog exactly: disjoint, complete, schema- and
// key-preserving.
func TestShardedStarSlicesReconstruct(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		ss := NewShardedStar(ShardedStarConfig{
			Fault:  FaultConfig{Star: StarConfig{Facts: 400, Dims: 20, Mids: 10, Categories: 5, Seed: 3}, Replicas: 1},
			Shards: shards,
		})
		for _, db := range ss.Star.Databases() {
			slices := ss.Slices[db.Name()]
			if len(slices) != shards {
				t.Fatalf("%s has %d slices, want %d", db.Name(), len(slices), shards)
			}
			for _, relName := range db.Relations() {
				_, orig, err := db.View(relName)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]string, len(orig))
				for i, tup := range orig {
					want[i] = tup.Key()
				}
				sort.Strings(want)

				var got []string
				for i, slice := range slices {
					key, _ := db.Key(relName)
					skey, err := slice.Key(relName)
					if err != nil || len(skey) != len(key) {
						t.Fatalf("slice %d of %s.%s lost its key", i, db.Name(), relName)
					}
					_, tuples, err := slice.View(relName)
					if err != nil {
						t.Fatal(err)
					}
					for _, tup := range tuples {
						got = append(got, tup.Key())
					}
				}
				sort.Strings(got)
				if len(got) != len(want) {
					t.Fatalf("shards=%d %s.%s: union has %d rows, want %d", shards, db.Name(), relName, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("shards=%d %s.%s: union row %d = %q, want %q", shards, db.Name(), relName, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedStarServesStarAnswers spot-checks the scatter-gather LQPs
// against the single-copy star: a full retrieve and a pruned key select per
// source.
func TestShardedStarServesStarAnswers(t *testing.T) {
	ss := NewShardedStar(ShardedStarConfig{
		Fault:  FaultConfig{Star: StarConfig{Facts: 300, Dims: 20, Mids: 10, Categories: 5, Seed: 9}, Replicas: 1},
		Shards: 3,
	})
	plain := ss.Star.LQPs()
	ops := map[string][]lqp.Op{
		"FD": {lqp.Retrieve("FACT"), lqp.Select("FACT", "FK", rel.ThetaEQ, rel.String("F0000012"))},
		"DD": {lqp.Retrieve("DIM"), lqp.Select("DIM", "DK", rel.ThetaEQ, rel.String("D0003"))},
		"MD": {lqp.Retrieve("MID")},
	}
	for name, l := range ss.LQPs() {
		for _, op := range ops[name] {
			want, err := plain[name].Execute(op)
			if err != nil {
				t.Fatalf("%s plain %v: %v", name, op, err)
			}
			got, err := l.Execute(op)
			if err != nil {
				t.Fatalf("%s sharded %v: %v", name, op, err)
			}
			w := make([]string, len(want.Tuples))
			for i, tup := range want.Tuples {
				w[i] = tup.Key()
			}
			g := make([]string, len(got.Tuples))
			for i, tup := range got.Tuples {
				g[i] = tup.Key()
			}
			sort.Strings(w)
			sort.Strings(g)
			if len(g) != len(w) {
				t.Fatalf("%s %v: %d rows, want %d", name, op, len(g), len(w))
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("%s %v: row %d diverges", name, op, i)
				}
			}
		}
	}
}
