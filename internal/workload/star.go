package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// StarConfig parameterizes a star-schema federation: one wide fact relation
// and two small dimension relations, each owned by its own local database.
// It is the workload of the B-OPT cost-based-optimizer benchmarks — the
// shape where predicate/projection pushdown and join ordering dominate
// wide-area cost: the fact table is big and padded (so shipping it
// wholesale is expensive), the dimensions are small (so joining them first
// keeps intermediates tiny).
type StarConfig struct {
	// Facts is the fact relation's cardinality.
	Facts int
	// Dims is the first dimension's cardinality (FACT.DK ∈ [0, Dims)).
	Dims int
	// Mids is the second dimension's cardinality (FACT.MK ∈ [0, Mids)).
	Mids int
	// Categories is the domain size of FACT.CAT — a CAT selection keeps
	// ~1/Categories of the fact rows.
	Categories int
	// Seed fixes the generator.
	Seed int64
}

// DefaultStarConfig returns a small federation suitable for tests.
func DefaultStarConfig() StarConfig {
	return StarConfig{Facts: 2000, Dims: 50, Mids: 10, Categories: 10, Seed: 1}
}

// Star is a generated star-schema federation:
//
//	FD.FACT(FK, DK, MK, CAT, VAL, PAD)  — one row per fact, PAD is dead weight
//	DD.DIM(DK, DCAT)                    — first dimension
//	MD.MID(MK, GRADE)                   — second dimension
//
// with single-source polygen schemes PFACT, PDIM and PMID mapping the local
// columns one to one under the same names, so equi-joins on DK and MK
// coalesce naturally.
type Star struct {
	Config     StarConfig
	Registry   *sourceset.Registry
	FD, DD, MD *catalog.Database
	Schema     *core.Schema
}

// NewStar generates a star federation from cfg.
func NewStar(cfg StarConfig) *Star {
	if cfg.Categories < 1 {
		cfg.Categories = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Star{Config: cfg, Registry: sourceset.NewRegistry()}
	for _, db := range []string{"FD", "DD", "MD"} {
		s.Registry.Intern(db)
	}

	single := func(scheme, db, local string, attrs ...string) *core.Scheme {
		pas := make([]core.PolygenAttr, len(attrs))
		for i, a := range attrs {
			pas[i] = core.PolygenAttr{Name: a, Mapping: []core.LocalAttr{{DB: db, Scheme: local, Attr: a}}}
		}
		return &core.Scheme{Name: scheme, Key: attrs[0], Attrs: pas}
	}
	s.Schema = core.MustSchema(
		single("PFACT", "FD", "FACT", "FK", "DK", "MK", "CAT", "VAL", "PAD"),
		single("PDIM", "DD", "DIM", "DK", "DCAT"),
		single("PMID", "MD", "MID", "MK", "GRADE"),
	)

	s.FD = catalog.NewDatabase("FD")
	s.FD.MustCreate("FACT", rel.SchemaOf("FK", "DK", "MK", "CAT", "VAL", "PAD"), "FK")
	facts := make([]rel.Tuple, 0, cfg.Facts)
	for i := 0; i < cfg.Facts; i++ {
		facts = append(facts, rel.Tuple{
			rel.String(fmt.Sprintf("F%07d", i)),
			rel.String(fmt.Sprintf("D%04d", rng.Intn(max(cfg.Dims, 1)))),
			rel.String(fmt.Sprintf("M%04d", rng.Intn(max(cfg.Mids, 1)))),
			rel.String(fmt.Sprintf("cat%d", rng.Intn(cfg.Categories))),
			rel.Int(int64(rng.Intn(10_000))),
			rel.String(fmt.Sprintf("pad-%032d", i)),
		})
	}
	if err := s.FD.Insert("FACT", facts...); err != nil {
		panic(err)
	}

	s.DD = catalog.NewDatabase("DD")
	s.DD.MustCreate("DIM", rel.SchemaOf("DK", "DCAT"), "DK")
	dims := make([]rel.Tuple, 0, cfg.Dims)
	for i := 0; i < cfg.Dims; i++ {
		dims = append(dims, rel.Tuple{
			rel.String(fmt.Sprintf("D%04d", i)),
			rel.String(fmt.Sprintf("dcat%d", i%5)),
		})
	}
	if err := s.DD.Insert("DIM", dims...); err != nil {
		panic(err)
	}

	s.MD = catalog.NewDatabase("MD")
	s.MD.MustCreate("MID", rel.SchemaOf("MK", "GRADE"), "MK")
	mids := make([]rel.Tuple, 0, cfg.Mids)
	for i := 0; i < cfg.Mids; i++ {
		mids = append(mids, rel.Tuple{
			rel.String(fmt.Sprintf("M%04d", i)),
			rel.String(fmt.Sprintf("grade%d", i%3)),
		})
	}
	if err := s.MD.Insert("MID", mids...); err != nil {
		panic(err)
	}
	return s
}

// Databases returns the three catalogs in FD, DD, MD order.
func (s *Star) Databases() []*catalog.Database {
	return []*catalog.Database{s.FD, s.DD, s.MD}
}

// LQPs returns in-process LQPs keyed by database name.
func (s *Star) LQPs() map[string]lqp.LQP {
	out := make(map[string]lqp.LQP, 3)
	for _, db := range s.Databases() {
		out[db.Name()] = lqp.NewLocal(db)
	}
	return out
}
