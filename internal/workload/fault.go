package workload

// This file is the fault-tolerance workload: the star federation of star.go
// replicated N ways per logical source, with deterministic fault injection
// (internal/faultinject) on chosen replicas and the resilient federation
// layer (internal/federation) on top. It is what the B-FAULT benchmarks and
// the chaos property suite run against — a federation where one replica of
// every source is killed, hung, slowed or cut mid-stream, and the query
// layer is expected not to notice (or, under the partial policy with a
// whole source dead, to say exactly what is missing).

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/federation"
	"repro/internal/lqp"
)

// FaultScenario names one way a replica can misbehave.
type FaultScenario string

const (
	// ScenarioNone injects nothing — the fault-free baseline, still run
	// through the federation layer so only the faults differ.
	ScenarioNone FaultScenario = "none"
	// ScenarioKilled fails every call to the faulty replica.
	ScenarioKilled FaultScenario = "killed"
	// ScenarioHung blocks every call to the faulty replica for Hang before
	// failing it — the replica that neither answers nor errors.
	ScenarioHung FaultScenario = "hung"
	// ScenarioSlow delays every call to the faulty replica by Latency but
	// lets it succeed.
	ScenarioSlow FaultScenario = "slow"
	// ScenarioCut lets opens succeed, then kills each cursor after its
	// first batch — the mid-stream transport failure.
	ScenarioCut FaultScenario = "cut"
)

// Scenarios lists every fault scenario, baseline first — the property
// suite's and B-FAULT's iteration order.
func Scenarios() []FaultScenario {
	return []FaultScenario{ScenarioNone, ScenarioKilled, ScenarioHung, ScenarioSlow, ScenarioCut}
}

// FaultConfig parameterizes a replicated star federation with injected
// faults.
type FaultConfig struct {
	// Star shapes the underlying data (DefaultStarConfig when zero).
	Star StarConfig
	// Replicas is the number of replicas per logical source (default 3).
	// All replicas of a source serve the same database snapshot.
	Replicas int
	// Scenario is what replica 0 of every source does (default none).
	Scenario FaultScenario
	// DeadSource, when set, kills every replica of the named source —
	// exhaustion, the case the degradation policy decides.
	DeadSource string
	// Seed fixes the fault-injection cadence and the federation jitter.
	Seed int64
	// Latency is the slow scenario's injected delay (default 20ms).
	Latency time.Duration
	// Hang is the hung scenario's stall (default 10s — rely on the
	// federation CallTimeout to cut it short).
	Hang time.Duration
	// Federation tunes the resilience layer. Zero-value fields take the
	// federation defaults; Seed is carried over when unset.
	Federation federation.Config
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Star.Facts == 0 {
		c.Star = DefaultStarConfig()
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Scenario == "" {
		c.Scenario = ScenarioNone
	}
	if c.Latency <= 0 {
		c.Latency = 20 * time.Millisecond
	}
	if c.Hang <= 0 {
		c.Hang = 10 * time.Second
	}
	if c.Federation.Seed == 0 {
		c.Federation.Seed = c.Seed
	}
	return c
}

// profile renders the scenario as a fault-injection profile.
func (c FaultConfig) profile() faultinject.Profile {
	p := faultinject.Profile{Seed: c.Seed}
	switch c.Scenario {
	case ScenarioKilled:
		p.ErrEvery = 1
	case ScenarioHung:
		p.HangEvery = 1
		p.Hang = c.Hang
	case ScenarioSlow:
		p.SlowEvery = 1
		p.Latency = c.Latency
	case ScenarioCut:
		p.CutEvery = 1
		p.CutAfter = 1
	}
	return p
}

// ReplicatedStar is a star federation where every logical source has
// several replicas behind the resilient federation layer, some of them
// deliberately unreliable.
type ReplicatedStar struct {
	// Star is the underlying single-copy federation (data and schema).
	Star *Star
	// Registry is the federation layer serving the replicas.
	Registry *federation.Registry
	// Faulty maps each source name to its misbehaving replicas, for
	// asserting that faults actually fired (Flaky.Injected).
	Faulty map[string][]*faultinject.Flaky
}

// NewReplicatedStar builds the replicated federation. Replica i of source S
// is an independent LQP over S's one database snapshot (labelled S#i by the
// registry); replica 0 misbehaves per cfg.Scenario, and every replica of
// cfg.DeadSource is killed outright.
func NewReplicatedStar(cfg FaultConfig) *ReplicatedStar {
	cfg = cfg.withDefaults()
	star := NewStar(cfg.Star)
	rs := &ReplicatedStar{
		Star:     star,
		Registry: federation.NewRegistry(cfg.Federation),
		Faulty:   make(map[string][]*faultinject.Flaky),
	}
	dead := faultinject.Profile{Seed: cfg.Seed, ErrEvery: 1}
	for _, db := range star.Databases() {
		name := db.Name()
		reps := make([]lqp.LQP, cfg.Replicas)
		for i := range reps {
			var l lqp.LQP = lqp.NewLocal(db)
			switch {
			case name == cfg.DeadSource:
				f := faultinject.New(l, dead)
				rs.Faulty[name] = append(rs.Faulty[name], f)
				l = f
			case i == 0 && cfg.Scenario != ScenarioNone:
				f := faultinject.New(l, cfg.profile())
				rs.Faulty[name] = append(rs.Faulty[name], f)
				l = f
			}
			reps[i] = l
		}
		rs.Registry.Add(name, reps...)
	}
	return rs
}

// LQPs returns the resilient LQP map — what a PQP over this federation
// executes against.
func (rs *ReplicatedStar) LQPs() map[string]lqp.LQP { return rs.Registry.LQPs() }

// InjectedFaults sums the faults that actually fired across the federation's
// misbehaving replicas.
func (rs *ReplicatedStar) InjectedFaults() (errs, hangs, slows, cuts int64) {
	for _, fs := range rs.Faulty {
		for _, f := range fs {
			e, h, s, c := f.Injected()
			errs, hangs, slows, cuts = errs+e, hangs+h, slows+s, cuts+c
		}
	}
	return
}

// String renders the scenario for test and benchmark names.
func (c FaultConfig) String() string {
	if c.DeadSource != "" {
		return fmt.Sprintf("dead=%s/seed=%d", c.DeadSource, c.Seed)
	}
	return fmt.Sprintf("%s/seed=%d", c.Scenario, c.Seed)
}
