package workload

// The chaos property suite: a replicated star federation where one of three
// replicas per source is killed, hung, slowed or cut mid-stream, across a
// fixed seed matrix. The property under the fail policy is strict — every
// fault-injected answer is cell-for-cell and tag-identical to the fault-free
// run, or the query fails with a typed federation.ExhaustedError naming the
// exhausted source. Under the partial policy a whole-source outage drops the
// leg and the diagnostics name exactly what is missing and who contributed.
// Everything is deterministic per seed (no wall-clock in any fault cadence),
// so CI can run the suite under -race with a pinned matrix (`make chaos`).

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/rel"
)

// faultSeeds is the pinned seed matrix; CI runs every scenario at each seed.
var faultSeeds = []int64{1, 7, 42}

// faultQueries exercises the shapes that stress the fault layer
// differently: a pushed-down select chain (one LQP leg), and two join
// orders whose fan-out opens every source.
var faultQueries = []string{
	`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
	`(((PFACT [MK = MK] PMID) [DK = DK] (PDIM [DCAT = "dcat0"])) [VAL, DCAT, GRADE])`,
	`(((PFACT [DK = DK] PDIM) [MK = MK] PMID) [VAL, DCAT, GRADE])`,
}

// faultStarConfig keeps the data small enough for a scenario × seed × query
// matrix but large enough for multi-batch streams (so mid-stream cuts land
// after rows were already delivered).
func faultStarConfig() StarConfig {
	return StarConfig{Facts: 900, Dims: 20, Mids: 10, Categories: 5, Seed: 11}
}

// faultFedConfig keeps retries tight and deadlines short, so hung replicas
// cost tenths of a second, not the 10s production default.
func faultFedConfig(seed int64) federation.Config {
	return federation.Config{
		CallTimeout: 500 * time.Millisecond,
		MaxRetries:  1,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		HedgeDelay:  -1, // hedging has its own tests; keep call counts exact here
		Seed:        seed,
	}
}

func newFaultPQP(cfg FaultConfig) (*pqp.PQP, *ReplicatedStar) {
	rs := NewReplicatedStar(cfg)
	q := pqp.New(rs.Star.Schema, rs.Star.Registry, nil, rs.LQPs())
	return q, rs
}

// renderTagged renders a tagged relation one sorted line per tuple in the
// paper's "datum, {origins}, {intermediates}" notation — the cell-for-cell,
// tag-for-tag comparison key.
func renderTagged(p *core.Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	sort.Strings(out)
	return out
}

// TestFaultPropertySuite is the core property: under the fail policy, every
// query against a federation with one faulty replica per source either
// answers identically to the fault-free run or fails with a typed
// ExhaustedError naming the source — never a silent partial answer, never a
// stall past the deadline budget.
func TestFaultPropertySuite(t *testing.T) {
	// Fault-free baselines, one per query, behind the same federation layer
	// so only the injected faults differ.
	baseQ, _ := newFaultPQP(FaultConfig{Star: faultStarConfig(), Federation: faultFedConfig(1)})
	baselines := make([][]string, len(faultQueries))
	for i, query := range faultQueries {
		res, err := baseQ.QueryAlgebra(query)
		if err != nil {
			t.Fatalf("baseline %q: %v", query, err)
		}
		if res.Relation.Cardinality() == 0 {
			t.Fatalf("baseline %q is empty; the property would be vacuous", query)
		}
		baselines[i] = renderTagged(res.Relation)
	}

	scenarios := []FaultScenario{ScenarioKilled, ScenarioHung, ScenarioSlow, ScenarioCut}
	for _, scenario := range scenarios {
		for _, seed := range faultSeeds {
			cfg := FaultConfig{
				Star:       faultStarConfig(),
				Scenario:   scenario,
				Seed:       seed,
				Latency:    5 * time.Millisecond,
				Hang:       2 * time.Second,
				Federation: faultFedConfig(seed),
			}
			t.Run(cfg.String(), func(t *testing.T) {
				q, rs := newFaultPQP(cfg)
				for i, query := range faultQueries {
					start := time.Now()
					res, err := q.QueryAlgebra(query)
					elapsed := time.Since(start)
					// A faulty replica may cost deadlines and retries, but
					// must never stall a query unboundedly: a generous
					// multiple of the per-call deadline bounds the worst
					// case (several sequential legs, each timing out once).
					if budget := 10 * cfg.Federation.CallTimeout; elapsed > budget {
						t.Errorf("%q took %v, budget %v — a faulty replica stalled the query", query, elapsed, budget)
					}
					if err != nil {
						var ex *federation.ExhaustedError
						if !errors.As(err, &ex) {
							t.Errorf("%q failed untyped: %v", query, err)
						} else if ex.Source == "" {
							t.Errorf("%q: ExhaustedError names no source: %v", query, err)
						}
						continue
					}
					if got := renderTagged(res.Relation); strings.Join(got, "\n") != strings.Join(baselines[i], "\n") {
						t.Errorf("%q differs from fault-free run\n got (%d rows):\n  %s\nwant (%d rows):\n  %s",
							query, len(got), strings.Join(got, "\n  "), len(baselines[i]), strings.Join(baselines[i], "\n  "))
					}
				}
				if errs, hangs, slows, cuts := rs.InjectedFaults(); errs+hangs+slows+cuts == 0 {
					t.Errorf("scenario %s injected nothing — the suite tested a healthy federation", scenario)
				}
			})
		}
	}
}

// TestFaultDeterministicPerSeed: two federations built from the same seed
// produce identical answers — the chaos suite is replayable.
func TestFaultDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) [][]string {
		cfg := FaultConfig{
			Star:       faultStarConfig(),
			Scenario:   ScenarioKilled,
			Seed:       seed,
			Federation: faultFedConfig(seed),
		}
		q, _ := newFaultPQP(cfg)
		out := make([][]string, 0, len(faultQueries))
		for _, query := range faultQueries {
			res, err := q.QueryAlgebra(query)
			if err != nil {
				t.Fatalf("seed %d %q: %v", seed, query, err)
			}
			out = append(out, renderTagged(res.Relation))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if strings.Join(a[i], "\n") != strings.Join(b[i], "\n") {
			t.Errorf("query %d: same seed, different answers", i)
		}
	}
}

// TestFaultExhaustionFailPolicy: with every replica of one source dead, the
// fail policy rejects the query with a typed error naming that source.
func TestFaultExhaustionFailPolicy(t *testing.T) {
	cfg := FaultConfig{
		Star:       faultStarConfig(),
		DeadSource: "MD",
		Seed:       1,
		Federation: faultFedConfig(1),
	}
	q, _ := newFaultPQP(cfg)
	_, err := q.QueryAlgebra(faultQueries[1]) // joins PMID — must touch MD
	if err == nil {
		t.Fatal("query over a dead source succeeded under the fail policy")
	}
	var ex *federation.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error is not an ExhaustedError: %v", err)
	}
	if ex.Source != "MD" {
		t.Errorf("ExhaustedError names %q, want MD", ex.Source)
	}
}

// TestFaultPartialPolicyDropsLeg: same dead source under the partial
// policy — the query succeeds, the diagnostics name MD as missing, and no
// surviving cell carries an MD tag.
func TestFaultPartialPolicyDropsLeg(t *testing.T) {
	cfg := FaultConfig{
		Star:       faultStarConfig(),
		DeadSource: "MD",
		Seed:       1,
		Federation: faultFedConfig(1),
	}
	q, _ := newFaultPQP(cfg)
	q.Degrade = federation.PolicyPartial
	// A single-leg query not touching MD answers fully...
	res, err := q.QueryAlgebra(faultQueries[0])
	if err != nil {
		t.Fatalf("partial policy failed a query that never touches the dead source: %v", err)
	}
	if res.Relation.Cardinality() == 0 {
		t.Fatal("FD-only query answered empty")
	}
	rep := res.Diag.Report()
	if rep.Degraded() {
		t.Errorf("FD-only answer reports degradation: %+v", rep)
	}
	// ...and the PMID join degrades: empty leg, named in the diagnostics.
	res, err = q.QueryAlgebra(faultQueries[1])
	if err != nil {
		t.Fatalf("partial policy did not degrade: %v", err)
	}
	rep = res.Diag.Report()
	if !rep.Degraded() || len(rep.Missing) != 1 || rep.Missing[0] != "MD" {
		t.Fatalf("diagnostics = %+v, want Missing=[MD]", rep)
	}
	if _, ok := rep.Replicas["MD"]; ok {
		t.Errorf("a dead source contributed replicas: %+v", rep.Replicas)
	}
	for _, tu := range res.Relation.Tuples {
		for _, c := range tu {
			if strings.Contains(c.Format(res.Relation.Reg), "MD") {
				t.Fatalf("surviving cell tagged with the dead source: %s", c.Format(res.Relation.Reg))
			}
		}
	}
}

// TestFaultPartialMergedScheme is the scatter-gather case the policy is
// really for: the paper federation's PORGANIZATION merges AD, PD and CD;
// with CD dead under the partial policy the answer keeps the AD and PD
// rows, tags identify exactly the contributing sources, and the
// diagnostics name CD as missing.
func TestFaultPartialMergedScheme(t *testing.T) {
	fed := paperdata.New()
	buildQ := func(deadCD bool, policy federation.Policy) *pqp.PQP {
		reg := federation.NewRegistry(faultFedConfig(1))
		for name, l := range fed.LQPs() {
			reps := []lqp.LQP{l, lqp.NewLocal(fed.CD)}
			if name == paperdata.AD {
				reps[1] = lqp.NewLocal(fed.AD)
			}
			if name == paperdata.PD {
				reps[1] = lqp.NewLocal(fed.PD)
			}
			if name == paperdata.CD && deadCD {
				reps = []lqp.LQP{deadLQP{l}, deadLQP{l}}
			}
			reg.Add(name, reps...)
		}
		q := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, reg.LQPs())
		q.Degrade = policy
		return q
	}
	const query = `SELECT ONAME, INDUSTRY FROM PORGANIZATION`

	full, err := buildQ(false, federation.PolicyFail).QuerySQL(query)
	if err != nil {
		t.Fatal(err)
	}
	fullRows := renderTagged(full.Relation)

	q := buildQ(true, federation.PolicyPartial)
	res, err := q.QuerySQL(query)
	if err != nil {
		t.Fatalf("partial policy did not degrade the merged scheme: %v", err)
	}
	rep := res.Diag.Report()
	if len(rep.Missing) != 1 || rep.Missing[0] != paperdata.CD {
		t.Fatalf("diagnostics = %+v, want Missing=[CD]", rep)
	}
	got := renderTagged(res.Relation)
	if len(got) == 0 {
		t.Fatal("partial answer is empty; AD and PD legs should survive")
	}
	if !strings.Contains(strings.Join(fullRows, "\n"), "CD") {
		t.Fatal("full answer carries no CD tags; the merged-scheme case is vacuous")
	}
	if strings.Join(got, "\n") == strings.Join(fullRows, "\n") {
		t.Fatal("partial answer identical to the full answer — the CD leg did not drop")
	}
	for _, line := range got {
		if strings.Contains(line, "CD") {
			t.Fatalf("partial answer carries a CD-tagged cell: %s", line)
		}
	}
	// Under the fail policy the same outage is a typed refusal.
	_, err = buildQ(true, federation.PolicyFail).QuerySQL(query)
	var ex *federation.ExhaustedError
	if !errors.As(err, &ex) || ex.Source != paperdata.CD {
		t.Fatalf("fail policy error = %v, want ExhaustedError naming CD", err)
	}
}

// deadLQP fails every call — a replica that is down from the start.
type deadLQP struct{ inner lqp.LQP }

func (d deadLQP) Name() string { return d.inner.Name() }
func (d deadLQP) Relations() ([]string, error) {
	return nil, errors.New("deadLQP: connection refused")
}
func (d deadLQP) Execute(lqp.Op) (*rel.Relation, error) {
	return nil, errors.New("deadLQP: connection refused")
}
