// Package workload generates synthetic federations for the performance
// characterization benchmarks (DESIGN.md, B-OV/B-SRC/B-OVL). The paper's
// motivation is "a federated database environment with hundreds of
// databases"; its worked example has three. This generator produces
// federations with a configurable number of local databases, each holding a
// horizontal fragment of one universal entity set, with configurable
// fragment overlap — the knob that drives Merge's coalescing work.
//
// Every local database D<i> holds one relation FRAG(KEY, CAT, V<i>): KEY
// identifies the entity (shared across databases), CAT is a low-cardinality
// category shared by all fragments (so Merge coalesces it), and V<i> is an
// attribute only D<i> supplies (so Merge renames it). Values are generated
// consistently across databases — the paper's assumptions hold and Coalesce
// always hits its equal-data case; SkewConflicts can be set to exercise the
// conflict path instead.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Config parameterizes a synthetic federation.
type Config struct {
	// Databases is the number of local databases (fan-in of the Merge).
	Databases int
	// Entities is the size of the universal entity set.
	Entities int
	// Overlap is the probability that a database beyond the first knows an
	// entity. 1.0 means every database holds every entity (maximal
	// coalescing); 0.0 means disjoint fragments after the first database.
	Overlap float64
	// Categories is the domain size of the shared CAT attribute (drives
	// selection selectivity: a CAT select keeps ~1/Categories of tuples).
	Categories int
	// ConflictRate, when positive, is the probability that a database
	// reports a *different* CAT value for an entity than the first
	// database — data conflicts for the credibility extension to resolve.
	ConflictRate float64
	// Seed fixes the generator; equal configs generate equal federations.
	Seed int64
}

// DefaultConfig returns a modest federation (3 databases, 1000 entities,
// half overlap) suitable for tests.
func DefaultConfig() Config {
	return Config{Databases: 3, Entities: 1000, Overlap: 0.5, Categories: 10, Seed: 1}
}

// Federation is a generated synthetic federation, structurally parallel to
// paperdata.Federation.
type Federation struct {
	Config    Config
	Registry  *sourceset.Registry
	Databases []*catalog.Database
	// Schema holds the single polygen scheme PENTITY plus the mapping
	// metadata for the translator.
	Schema *core.Schema
	// Scheme is the PENTITY scheme (also reachable through Schema).
	Scheme *core.Scheme
}

// DBName returns the name of the i-th database ("D0", "D1", ...).
func DBName(i int) string { return fmt.Sprintf("D%d", i) }

// New generates a federation from cfg.
func New(cfg Config) *Federation {
	if cfg.Databases < 1 {
		panic("workload: need at least one database")
	}
	if cfg.Categories < 1 {
		cfg.Categories = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Federation{Config: cfg, Registry: sourceset.NewRegistry()}

	// Polygen scheme: KEY and CAT map to every database; V<i> maps to D<i>.
	keyAttr := core.PolygenAttr{Name: "KEY"}
	catAttr := core.PolygenAttr{Name: "CAT"}
	extra := make([]core.PolygenAttr, cfg.Databases)
	for i := 0; i < cfg.Databases; i++ {
		name := DBName(i)
		f.Registry.Intern(name)
		keyAttr.Mapping = append(keyAttr.Mapping, core.LocalAttr{DB: name, Scheme: "FRAG", Attr: "KEY"})
		catAttr.Mapping = append(catAttr.Mapping, core.LocalAttr{DB: name, Scheme: "FRAG", Attr: "CAT"})
		extra[i] = core.PolygenAttr{
			Name:    fmt.Sprintf("V%d", i),
			Mapping: []core.LocalAttr{{DB: name, Scheme: "FRAG", Attr: fmt.Sprintf("V%d", i)}},
		}
	}
	f.Scheme = &core.Scheme{
		Name:  "PENTITY",
		Key:   "KEY",
		Attrs: append([]core.PolygenAttr{keyAttr, catAttr}, extra...),
	}
	f.Schema = core.MustSchema(f.Scheme)

	// Populate fragments. The first database holds every entity so that the
	// merged relation always covers the universal set.
	for i := 0; i < cfg.Databases; i++ {
		db := catalog.NewDatabase(DBName(i))
		schema := rel.SchemaOf("KEY", "CAT", fmt.Sprintf("V%d", i))
		db.MustCreate("FRAG", schema, "KEY")
		f.Databases = append(f.Databases, db)
	}
	// Rows are accumulated per database and inserted in one batch each:
	// Insert re-checks key uniqueness against the whole stored relation per
	// call, so tuple-at-a-time loading is quadratic in Entities.
	rows := make([][]rel.Tuple, cfg.Databases)
	for e := 0; e < cfg.Entities; e++ {
		key := rel.String(fmt.Sprintf("E%06d", e))
		baseCat := rel.String(fmt.Sprintf("cat%d", rng.Intn(cfg.Categories)))
		for i := 0; i < cfg.Databases; i++ {
			if i > 0 && rng.Float64() >= cfg.Overlap {
				continue
			}
			cat := baseCat
			if i > 0 && cfg.ConflictRate > 0 && rng.Float64() < cfg.ConflictRate {
				cat = rel.String(fmt.Sprintf("cat%d-alt%d", rng.Intn(cfg.Categories), i))
			}
			val := rel.String(fmt.Sprintf("v%d-%06d", i, e))
			rows[i] = append(rows[i], rel.Tuple{key, cat, val})
		}
	}
	for i, batch := range rows {
		if err := f.Databases[i].Insert("FRAG", batch...); err != nil {
			panic(err)
		}
	}
	return f
}

// LQPs returns in-process LQPs keyed by database name.
func (f *Federation) LQPs() map[string]lqp.LQP {
	out := make(map[string]lqp.LQP, len(f.Databases))
	for _, db := range f.Databases {
		out[db.Name()] = lqp.NewLocal(db)
	}
	return out
}

// PlainFragments snapshots every database's FRAG relation — inputs for the
// untagged baseline benchmarks.
func (f *Federation) PlainFragments() []*rel.Relation {
	out := make([]*rel.Relation, len(f.Databases))
	for i, db := range f.Databases {
		r, err := db.Snapshot("FRAG")
		if err != nil {
			panic(err)
		}
		out[i] = r
	}
	return out
}

// TaggedFragments retrieves and tags every fragment the way the PQP would:
// origin = the owning database, empty intermediates, polygen annotations
// from the scheme.
func (f *Federation) TaggedFragments() []*core.Relation {
	plains := f.PlainFragments()
	out := make([]*core.Relation, len(plains))
	for i, plain := range plains {
		name := f.Databases[i].Name()
		src := f.Registry.Intern(name)
		p := core.FromPlain(plain, src, f.Registry)
		p.Name = "FRAG"
		for j := range p.Attrs {
			la := core.LocalAttr{DB: name, Scheme: "FRAG", Attr: p.Attrs[j].Name}
			if sa, ok := f.Schema.PolygenAttrOf(la); ok {
				p.Attrs[j].Polygen = sa.Attr
			}
		}
		out[i] = p
	}
	return out
}
