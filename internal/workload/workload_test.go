package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/pqp"
)

func TestGenerateShape(t *testing.T) {
	f := New(Config{Databases: 4, Entities: 100, Overlap: 0.5, Categories: 5, Seed: 7})
	if len(f.Databases) != 4 {
		t.Fatalf("databases = %d", len(f.Databases))
	}
	// D0 holds every entity.
	r0, err := f.Databases[0].Snapshot("FRAG")
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cardinality() != 100 {
		t.Errorf("D0 has %d tuples, want 100", r0.Cardinality())
	}
	// Others hold roughly Overlap * Entities (binomial; wide bounds).
	r1, _ := f.Databases[1].Snapshot("FRAG")
	if c := r1.Cardinality(); c < 25 || c > 75 {
		t.Errorf("D1 has %d tuples, expected around 50", c)
	}
	// Scheme shape: KEY, CAT, V0..V3.
	if len(f.Scheme.Attrs) != 6 {
		t.Errorf("scheme attrs = %v", f.Scheme.AttrNames())
	}
	lrs := f.Scheme.LocalSchemes()
	if len(lrs) != 4 {
		t.Errorf("local schemes = %v", lrs)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Databases: 3, Entities: 50, Overlap: 0.7, Categories: 4, Seed: 11}
	a, b := New(cfg), New(cfg)
	ra, _ := a.Databases[2].Snapshot("FRAG")
	rb, _ := b.Databases[2].Snapshot("FRAG")
	if ra.Cardinality() != rb.Cardinality() {
		t.Fatal("same seed produced different federations")
	}
	for i := range ra.Tuples {
		if !ra.Tuples[i].Equal(rb.Tuples[i]) {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestOverlapExtremes(t *testing.T) {
	full := New(Config{Databases: 3, Entities: 40, Overlap: 1.0, Categories: 3, Seed: 1})
	for i, db := range full.Databases {
		r, _ := db.Snapshot("FRAG")
		if r.Cardinality() != 40 {
			t.Errorf("overlap=1: D%d has %d tuples", i, r.Cardinality())
		}
	}
	none := New(Config{Databases: 3, Entities: 40, Overlap: 0.0, Categories: 3, Seed: 1})
	for i, db := range none.Databases[1:] {
		r, _ := db.Snapshot("FRAG")
		if r.Cardinality() != 0 {
			t.Errorf("overlap=0: D%d has %d tuples", i+1, r.Cardinality())
		}
	}
}

func TestTaggedFragmentsAnnotations(t *testing.T) {
	f := New(Config{Databases: 2, Entities: 10, Overlap: 1, Categories: 2, Seed: 3})
	frags := f.TaggedFragments()
	if len(frags) != 2 {
		t.Fatal("fragment count")
	}
	p := frags[1]
	if p.Attrs[0].Polygen != "KEY" || p.Attrs[1].Polygen != "CAT" || p.Attrs[2].Polygen != "V1" {
		t.Errorf("annotations = %+v", p.Attrs)
	}
	id, _ := f.Registry.Lookup("D1")
	for _, tu := range p.Tuples {
		for _, c := range tu {
			if !c.O.Contains(id) || c.O.Len() != 1 || !c.I.IsEmpty() {
				t.Fatalf("bad tags on %v", c)
			}
		}
	}
}

// TestMergeCoversUniversalSet: merging all fragments yields every entity
// exactly once (D0 is total, keys are unique per fragment).
func TestMergeCoversUniversalSet(t *testing.T) {
	f := New(Config{Databases: 4, Entities: 200, Overlap: 0.4, Categories: 5, Seed: 5})
	alg := core.NewAlgebra(nil)
	merged, err := alg.Merge(f.Scheme, f.TaggedFragments()...)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Cardinality() != 200 {
		t.Errorf("merged cardinality = %d, want 200", merged.Cardinality())
	}
	if merged.Degree() != 6 {
		t.Errorf("merged degree = %d, want 6", merged.Degree())
	}
}

// TestEndToEndThroughPQP: the generated schema drives the full translation
// pipeline, not just the raw algebra.
func TestEndToEndThroughPQP(t *testing.T) {
	f := New(Config{Databases: 3, Entities: 100, Overlap: 0.6, Categories: 4, Seed: 9})
	q := pqp.New(f.Schema, f.Registry, identity.Exact{}, f.LQPs())
	res, err := q.QuerySQL(`SELECT KEY, CAT FROM PENTITY WHERE CAT = "cat1"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() == 0 {
		t.Error("no cat1 entities found; generator or pipeline broken")
	}
	for _, tu := range res.Relation.Tuples {
		if tu[1].D.Str() != "cat1" {
			t.Errorf("selection leaked %v", tu[1].D)
		}
	}
}

// TestConflictRate: with conflicts enabled, some entity has disagreeing CAT
// values across databases.
func TestConflictRate(t *testing.T) {
	f := New(Config{Databases: 3, Entities: 200, Overlap: 1, Categories: 3, ConflictRate: 0.5, Seed: 13})
	frags := f.PlainFragments()
	base := make(map[string]string)
	for _, t0 := range frags[0].Tuples {
		base[t0[0].Str()] = t0[1].Str()
	}
	conflicts := 0
	for _, t1 := range frags[1].Tuples {
		if got, ok := base[t1[0].Str()]; ok && got != t1[1].Str() {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Error("ConflictRate=0.5 generated no conflicts")
	}
}

func TestNewPanicsWithoutDatabases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero databases did not panic")
		}
	}()
	New(Config{Databases: 0, Entities: 1})
}
