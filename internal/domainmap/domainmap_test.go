package domainmap

import (
	"testing"

	"repro/internal/rel"
)

func TestLastCommaField(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Cambridge, MA", "MA"},
		{"NY, NY", "NY"},
		{"So. San Francisco, CA", "CA"},
		{"Dearborn,   MI", "MI"},
		{"London", "London"}, // no comma: pass through
	}
	for _, c := range cases {
		got := LastCommaField(rel.String(c.in))
		if got.Str() != c.want {
			t.Errorf("LastCommaField(%q) = %q, want %q", c.in, got.Str(), c.want)
		}
	}
	if !LastCommaField(rel.Int(5)).Equal(rel.Int(5)) {
		t.Error("non-string should pass through")
	}
	if !LastCommaField(rel.Null()).IsNull() {
		t.Error("null should pass through")
	}
}

func TestScale(t *testing.T) {
	byThousand := Scale(1000)
	if got := byThousand(rel.Int(5)); !got.Equal(rel.Int(5000)) {
		t.Errorf("Scale int = %v", got)
	}
	if got := byThousand(rel.Float(1.5)); !got.Equal(rel.Float(1500)) {
		t.Errorf("Scale float = %v", got)
	}
	half := Scale(0.5)
	if got := half(rel.Int(5)); !got.Equal(rel.Float(2.5)) {
		t.Errorf("fractional scale should produce float, got %v", got)
	}
	if got := half(rel.Int(4)); !got.Equal(rel.Int(2)) {
		t.Errorf("integral result should stay int, got %v", got)
	}
	if got := half(rel.String("x")); !got.Equal(rel.String("x")) {
		t.Error("non-numeric should pass through")
	}
}

func TestUnitSuffix(t *testing.T) {
	fn := UnitSuffix(map[string]float64{"bil": 1e9, "mil": 1e6})
	cases := []struct {
		in   string
		want rel.Value
	}{
		{"1.7 bil", rel.Float(1.7e9)},
		{"-1.7 bil", rel.Float(-1.7e9)},
		{"648 mil", rel.Float(648e6)},
		{"1 mil", rel.Float(1e6)},
		{"unknown", rel.String("unknown")},
		{"5 zorkmids", rel.String("5 zorkmids")},
		{"not-a-number bil", rel.String("not-a-number bil")},
	}
	for _, c := range cases {
		if got := fn(rel.String(c.in)); !got.Equal(c.want) {
			t.Errorf("UnitSuffix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if !fn(rel.Int(3)).Equal(rel.Int(3)) {
		t.Error("non-string should pass through")
	}
}

func TestChain(t *testing.T) {
	fn := Chain(LastCommaField, func(v rel.Value) rel.Value {
		return rel.String(v.Str() + "!")
	})
	if got := fn(rel.String("NY, NY")); got.Str() != "NY!" {
		t.Errorf("Chain = %q", got.Str())
	}
	if got := Chain()(rel.Int(1)); !got.Equal(rel.Int(1)) {
		t.Error("empty chain should be identity")
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable()
	if tbl.Len() != 0 {
		t.Error("new table not empty")
	}
	tbl.Set("CD", "FIRM", "HQ", LastCommaField)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	fn := tbl.Lookup("CD", "FIRM", "HQ")
	if got := fn(rel.String("NY, NY")); got.Str() != "NY" {
		t.Error("registered mapping not applied")
	}
	id := tbl.Lookup("AD", "BUSINESS", "BNAME")
	if got := id(rel.String("NY, NY")); got.Str() != "NY, NY" {
		t.Error("unregistered lookup should be identity")
	}
	// Overwrite.
	tbl.Set("CD", "FIRM", "HQ", Identity)
	if got := tbl.Lookup("CD", "FIRM", "HQ")(rel.String("NY, NY")); got.Str() != "NY, NY" {
		t.Error("Set did not replace the mapping")
	}
}

func TestNilTable(t *testing.T) {
	var tbl *Table
	if tbl.Len() != 0 {
		t.Error("nil table Len != 0")
	}
	fn := tbl.Lookup("a", "b", "c")
	if got := fn(rel.String("x")); got.Str() != "x" {
		t.Error("nil table lookup should be identity")
	}
}
