// Package domainmap implements the domain mapping the paper assumes has been
// resolved during schema integration (§I): unit, scale and representation
// conversions between a local attribute's domain and the polygen attribute's
// domain. The mapping information is stored with the polygen schema and
// applied by the PQP when a local relation is retrieved.
//
// The worked example uses one such mapping: FIRM.HQ in the Company Database
// holds "city, state" strings ("Cambridge, MA"), while the polygen attribute
// HEADQUARTERS holds states ("MA") — compare the Firm relation in §IV with
// Table A3.
package domainmap

import (
	"strconv"
	"strings"

	"repro/internal/rel"
)

// Func converts a value from a local attribute domain into the polygen
// attribute domain.
type Func func(rel.Value) rel.Value

// Identity returns its argument unchanged.
func Identity(v rel.Value) rel.Value { return v }

// LastCommaField maps "city, state" to "state" — the FIRM.HQ → HEADQUARTERS
// mapping of the worked example. Values without a comma pass through.
func LastCommaField(v rel.Value) rel.Value {
	if v.Kind() != rel.KindString {
		return v
	}
	s := v.Str()
	if i := strings.LastIndex(s, ","); i >= 0 {
		return rel.String(strings.TrimSpace(s[i+1:]))
	}
	return v
}

// Scale returns a Func multiplying numeric values by factor, converting
// ints to floats when the result is fractional. It models the paper's
// "in billions vs. in millions" scale mismatch.
func Scale(factor float64) Func {
	return func(v rel.Value) rel.Value {
		switch v.Kind() {
		case rel.KindInt:
			f := float64(v.IntVal()) * factor
			if f == float64(int64(f)) {
				return rel.Int(int64(f))
			}
			return rel.Float(f)
		case rel.KindFloat:
			return rel.Float(v.FloatVal() * factor)
		default:
			return v
		}
	}
}

// UnitSuffix returns a Func that parses strings like "1.7 bil" or "648 mil"
// into plain numeric values in the given base unit, where units maps a
// suffix to its multiplier (e.g. {"bil": 1e9, "mil": 1e6}). Unparseable
// values pass through, preserving the raw local representation.
func UnitSuffix(units map[string]float64) Func {
	return func(v rel.Value) rel.Value {
		if v.Kind() != rel.KindString {
			return v
		}
		fields := strings.Fields(v.Str())
		if len(fields) != 2 {
			return v
		}
		mult, ok := units[fields[1]]
		if !ok {
			return v
		}
		f, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return v
		}
		return rel.Float(f * mult)
	}
}

// Chain composes mappings left to right.
func Chain(fns ...Func) Func {
	return func(v rel.Value) rel.Value {
		for _, fn := range fns {
			v = fn(v)
		}
		return v
	}
}

// Table stores mapping functions keyed by (local database, local scheme,
// local attribute), mirroring how the paper stores attribute mapping
// information in the polygen schema.
type Table struct {
	m map[key]Func
}

type key struct{ db, scheme, attr string }

// NewTable returns an empty mapping table.
func NewTable() *Table { return &Table{m: make(map[key]Func)} }

// Set registers fn for the given local attribute, replacing any previous
// mapping.
func (t *Table) Set(db, scheme, attr string, fn Func) {
	t.m[key{db, scheme, attr}] = fn
}

// Has reports whether a mapping is registered for the local attribute. The
// query translator consults it: a selection on a domain-mapped attribute
// cannot be pushed to the LQP, because the LQP would evaluate the condition
// against unmapped local values.
func (t *Table) Has(db, scheme, attr string) bool {
	if t == nil {
		return false
	}
	_, ok := t.m[key{db, scheme, attr}]
	return ok
}

// Lookup returns the mapping for the local attribute, or Identity when none
// is registered.
func (t *Table) Lookup(db, scheme, attr string) Func {
	if t == nil {
		return Identity
	}
	if fn, ok := t.m[key{db, scheme, attr}]; ok {
		return fn
	}
	return Identity
}

// Len returns the number of registered mappings.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return len(t.m)
}
