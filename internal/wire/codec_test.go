package wire

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// This file tests the binary frame codec of codec.go three ways: direct
// encode/decode round trips over adversarially mixed values (NaN, -0, empty
// strings, nulls, >64-source tag sets), an interop matrix proving the binary
// and gob framings byte-for-answer identical (including old-peer fallback in
// both directions), and a fuzzer (FuzzFrameRoundTrip) that both derives
// random batches from the fuzz input and throws the raw input at the
// decoders, which must fail cleanly rather than panic or over-allocate.

// renderCell renders one tagged cell registry-independently (kind, datum,
// tag names) so answers decoded into different client registries compare.
func renderCell(c core.Cell, reg *sourceset.Registry) string {
	return fmt.Sprintf("%d:%s %s %s", c.D.Kind(), c.D, c.O.Format(reg), c.I.Format(reg))
}

func renderTagged(p *core.Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = renderCell(c, p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

func renderPlain(r *rel.Relation) []string {
	out := make([]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = fmt.Sprintf("%d:%s", v.Kind(), v)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mixedValue draws one value covering every kind and the special data
// (NaN, -0, empty and non-ASCII strings, nulls).
func mixedValue(rng *rand.Rand) rel.Value {
	switch rng.Intn(10) {
	case 0:
		return rel.Null()
	case 1:
		return rel.String("")
	case 2:
		return rel.String("héllo\x00wörld")
	case 3:
		return rel.String(fmt.Sprintf("s%d", rng.Intn(5)))
	case 4:
		return rel.Int(int64(rng.Intn(7)) - 3)
	case 5:
		return rel.Int(math.MinInt64)
	case 6:
		return rel.Float(math.NaN())
	case 7:
		return rel.Float(math.Copysign(0, -1))
	case 8:
		return rel.Bool(rng.Intn(2) == 0)
	default:
		return rel.Float(rng.Float64()*100 - 50)
	}
}

// mixedSet draws a tag set from a pool that includes the empty set and a
// >64-ID overflow set.
func mixedSet(rng *rand.Rand, reg *sourceset.Registry) sourceset.Set {
	switch rng.Intn(5) {
	case 0:
		return sourceset.Empty()
	case 1:
		big := sourceset.Empty()
		for i := 0; i < 70; i++ {
			big = big.With(reg.Intern(fmt.Sprintf("ov%02d", i)))
		}
		return big
	default:
		s := sourceset.Empty()
		for i := 0; i <= rng.Intn(3); i++ {
			s = s.With(reg.Intern(fmt.Sprintf("db%d", rng.Intn(4))))
		}
		return s
	}
}

func randomTaggedBatch(rng *rand.Rand, reg *sourceset.Registry, ncols, nrows int) *core.ColBatch {
	attrs := make([]core.Attr, ncols)
	for i := range attrs {
		attrs[i] = core.Attr{Name: fmt.Sprintf("A%d", i)}
	}
	b := core.NewColBatch("T", reg, attrs)
	row := make(core.Tuple, ncols)
	for r := 0; r < nrows; r++ {
		for c := range row {
			row[c] = core.Cell{D: mixedValue(rng), O: mixedSet(rng, reg), I: mixedSet(rng, reg)}
		}
		b.AppendTuple(row)
	}
	return b
}

// TestRelFrameRoundTrip: plain columnar frames decode back to the same
// values, kinds and -0 bits, across random schemas and batch sizes.
func TestRelFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		ncols := 1 + rng.Intn(4)
		nrows := rng.Intn(12)
		names := make([]string, ncols)
		for i := range names {
			names[i] = fmt.Sprintf("A%d", i)
		}
		schema := rel.SchemaOf(names...)
		b := rel.NewColBatch(schema)
		row := make(rel.Tuple, ncols)
		for r := 0; r < nrows; r++ {
			for c := range row {
				row[c] = mixedValue(rng)
			}
			b.AppendTuple(row)
		}
		payload := appendRelFrame(nil, b)
		got, err := decodeRelFrame(payload, schema)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if got.Len() != nrows {
			t.Fatalf("iter %d: decoded %d rows, want %d", iter, got.Len(), nrows)
		}
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				w, g := b.Value(r, c), got.Value(r, c)
				if w.Kind() != g.Kind() || !w.Identical(g) {
					t.Fatalf("iter %d: cell (%d,%d): got %v, want %v", iter, r, c, g, w)
				}
				if w.Kind() == rel.KindFloat {
					if math.Float64bits(w.FloatVal()) != math.Float64bits(g.FloatVal()) {
						t.Fatalf("iter %d: cell (%d,%d): float bits changed", iter, r, c)
					}
				}
			}
		}
		// Re-encoding the decoded batch reproduces the payload byte for byte.
		again := appendRelFrame(nil, got)
		if string(again) != string(payload) {
			t.Fatalf("iter %d: re-encode diverged", iter)
		}
	}
}

// TestCoreFrameRoundTrip: tagged frames decode into a fresh registry with
// identical cells — data, origin and intermediate sets, >64-source overflow
// sets included.
func TestCoreFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 150; iter++ {
		reg := sourceset.NewRegistry()
		b := randomTaggedBatch(rng, reg, 1+rng.Intn(3), rng.Intn(10))
		payload := appendCoreFrame(nil, b)
		fresh := sourceset.NewRegistry()
		got, err := decodeCoreFrame(payload, b.Name, b.Attrs, fresh)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		want := renderTagged(b.Relation())
		have := renderTagged(got.Relation())
		if !sameLines(want, have) {
			t.Fatalf("iter %d: decoded batch diverged:\ngot:\n%s\nwant:\n%s",
				iter, strings.Join(have, "\n"), strings.Join(want, "\n"))
		}
	}
}

// fixedMediator serves one prebuilt tagged relation — enough mediator to
// exercise the "queryopen" framing in both codecs.
type fixedMediator struct {
	p *core.Relation
}

func (m *fixedMediator) Federation() string { return "fixed" }
func (m *fixedMediator) OpenSession(SessionOptions) (SessionInfo, error) {
	return SessionInfo{ID: "s1", Federation: "fixed"}, nil
}
func (m *fixedMediator) CloseSession(string) error { return nil }
func (m *fixedMediator) Query(string, string, bool) (*MediatedAnswer, error) {
	return &MediatedAnswer{Relation: m.p}, nil
}
func (m *fixedMediator) OpenQuery(string, string, bool) (*MediatedStream, error) {
	return &MediatedStream{
		Cursor: core.NewRelationCursor(m.p, 3),
		Diag:   func() federation.Report { return federation.Report{} },
	}, nil
}

// TestBinaryStreamMatchesGob is the interop matrix: the same answers must
// arrive byte-for-answer identical through every codec pairing — binary
// client with binary server, legacy (gob) client with a new server, and a
// binary-requesting client against a server refusing the codec (the
// old-server fallback).
func TestBinaryStreamMatchesGob(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	reg := sourceset.NewRegistry()
	tagged := randomTaggedBatch(rng, reg, 3, 17).Relation()
	tagged.Name = "ANS"

	openAnswer := func(legacyClient, legacyServer bool) []string {
		srv := NewMediatorServer(&fixedMediator{p: tagged})
		srv.LegacyFrames = legacyServer
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.LegacyFrames = legacyClient
		cur, _, err := c.OpenQuery("", "q", false)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.Drain(cur)
		if err != nil {
			t.Fatal(err)
		}
		return renderTagged(p)
	}

	want := renderTagged(tagged)
	for _, tc := range []struct {
		name                       string
		legacyClient, legacyServer bool
	}{
		{"binary", false, false},
		{"legacy-client", true, false},
		{"legacy-server", false, true},
		{"legacy-both", true, true},
	} {
		got := openAnswer(tc.legacyClient, tc.legacyServer)
		if !sameLines(got, want) {
			t.Fatalf("%s: streamed answer diverged from the source relation:\ngot:\n%s\nwant:\n%s",
				tc.name, strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
}

// TestPlainStreamMatchesGob: the LQP-side "open" stream under both codecs
// delivers the same rows, and the binary stream's cursor has the columnar
// capability.
func TestPlainStreamMatchesGob(t *testing.T) {
	_, c := startStreamServer(t, 700)

	binCur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	cc, ok := binCur.(rel.ColCursor)
	if !ok {
		t.Fatal("binary stream cursor is not a rel.ColCursor")
	}
	var colRows []rel.Tuple
	for {
		cb, err := cc.NextCol()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		colRows = append(colRows, cb.Rows()...)
	}
	binCur.Close()

	c.LegacyFrames = true
	gobCur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	gob, err := rel.Drain(gobCur)
	if err != nil {
		t.Fatal(err)
	}
	bin := &rel.Relation{Schema: gob.Schema, Tuples: colRows}
	if !sameLines(renderPlain(bin), renderPlain(gob)) {
		t.Fatalf("binary stream (%d rows) diverged from gob stream (%d rows)", len(bin.Tuples), len(gob.Tuples))
	}
}
