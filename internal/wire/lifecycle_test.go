package wire

// Lifecycle regression tests: Close during in-flight work (round trips and
// streams) must never panic or leak the per-stream connection, Close must be
// idempotent and concurrency-safe, and Server.Shutdown must drain in-flight
// requests — and give up at its deadline when a peer won't finish.

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lqp"
)

// TestClientCloseDuringStream closes the client while a stream is being
// consumed: the in-flight Next fails with a transport error instead of
// hanging or panicking, the cursor's Close stays safe, and nothing leaks
// (the stream connection is torn down with the client).
func TestClientCloseDuringStream(t *testing.T) {
	_, c := startStreamServer(t, 200000)
	cur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	// Keep pulling until the torn-down connection surfaces as an error; the
	// race between Close and Next may deliver a few buffered frames first.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cur.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("stream ended cleanly; want a transport error from Close")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream survived client Close")
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor Close after client Close: %v", err)
	}
	c.mu.Lock()
	leaked := len(c.streams)
	c.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d stream connection(s) leaked past Close", leaked)
	}
}

// TestClientCloseIdempotent: Close twice, and concurrently, returns nil and
// never panics.
func TestClientCloseIdempotent(t *testing.T) {
	_, c := startStreamServer(t, 10)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("Close after Close: %v", err)
	}
	if _, err := c.Execute(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("closed client accepted a round trip")
	}
}

// TestServerCloseDuringStream: tearing the server down mid-stream errors
// the client cursor out instead of wedging it, and a second Close is a
// no-op.
func TestServerCloseDuringStream(t *testing.T) {
	srv, c := startStreamServer(t, 200000)
	cur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cur.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("stream ended cleanly; want a transport error from server Close")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream survived server Close")
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second server Close: %v", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("cursor Close after server Close: %v", err)
	}
}

// TestServerShutdownDrains: a request in flight when Shutdown begins
// completes; a request issued after Shutdown begins is refused.
func TestServerShutdownDrains(t *testing.T) {
	srv, c := startStreamServer(t, 50000)
	cur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(10 * time.Second) }()
	// The in-flight stream drains to completion through the shutdown.
	total := 0
	for {
		b, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("in-flight stream failed during drain: %v", err)
		}
		total += len(b)
	}
	cur.Close()
	if total != 50000 {
		t.Fatalf("drained %d tuples, want 50000", total)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := c.Execute(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("server accepted a request after Shutdown")
	}
}

// blockingMediator parks every Query until released — a deterministic way
// to hold a request in flight across a Shutdown.
type blockingMediator struct {
	started chan struct{}
	release chan struct{}
}

func (m *blockingMediator) Federation() string { return "blocky" }
func (m *blockingMediator) OpenSession(SessionOptions) (SessionInfo, error) {
	return SessionInfo{ID: "s"}, nil
}
func (m *blockingMediator) CloseSession(string) error { return nil }
func (m *blockingMediator) OpenQuery(string, string, bool) (*MediatedStream, error) {
	return nil, errors.New("blockingMediator: streams unsupported")
}
func (m *blockingMediator) Query(string, string, bool) (*MediatedAnswer, error) {
	m.started <- struct{}{}
	<-m.release
	return nil, errors.New("blockingMediator: released")
}

// TestServerShutdownDeadline: a request that refuses to finish cannot hold
// Shutdown past its deadline; connections are cut and the error says so.
func TestServerShutdownDeadline(t *testing.T) {
	bm := &blockingMediator{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(bm.release)
	srv := NewMediatorServer(bm)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Query("", "stuck", false) // parks inside the mediator
	<-bm.started                   // the request is in flight
	start := time.Now()
	err = srv.Shutdown(200 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("Shutdown = %v, want a blown-deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v despite its 200ms deadline", elapsed)
	}
}

// TestClientPoolParallelism: concurrent round trips on one client proceed
// in parallel across pooled connections instead of serializing on a single
// gob stream. The hand-rolled server answers each request after a fixed
// delay, one goroutine per connection — eight 150ms requests through a
// 4-conn pool must beat the 1.2s a serialized client would need.
func TestClientPoolParallelism(t *testing.T) {
	const delay = 150 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				dec, enc := gob.NewDecoder(conn), gob.NewEncoder(conn)
				for {
					var req request
					if err := dec.Decode(&req); err != nil {
						return
					}
					if req.Kind != "name" {
						time.Sleep(delay)
					}
					if err := enc.Encode(response{Name: "SLOW", Relations: []string{"R"}}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Relations(); err != nil {
				t.Errorf("pooled round trip: %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Serialized: 8×150ms = 1.2s. Pooled (4 conns): ~2×150ms. The 900ms cut
	// keeps generous slack for loaded CI runners while still proving
	// parallelism.
	if elapsed >= 900*time.Millisecond {
		t.Fatalf("8 concurrent round trips took %v; pool did not parallelize", elapsed)
	}
}

// TestDialPoolSingleConn: a pool of one preserves the old strictly-serial
// behavior and still works.
func TestDialPoolSingleConn(t *testing.T) {
	srv := NewServer(streamDB(25))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialPool(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Execute(lqp.Retrieve("BIG"))
			if err != nil {
				t.Errorf("execute: %v", err)
				return
			}
			if r.Cardinality() != 25 {
				t.Errorf("retrieved %d tuples", r.Cardinality())
			}
		}()
	}
	wg.Wait()
	c.mu.Lock()
	n := c.nconns
	c.mu.Unlock()
	if n > 1 {
		t.Fatalf("single-conn pool grew to %d connections", n)
	}
}

// TestPooledConnSurvivesServerIdleDrop: a server idle-timeout (or restart)
// that drops pooled connections must not surface as a query failure — the
// client retries a reused connection's transport failure once on a fresh
// dial.
func TestPooledConnSurvivesServerIdleDrop(t *testing.T) {
	srv := NewServer(streamDB(25))
	srv.IdleTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Grow the pool to several connections so the drop leaves multiple
	// stale idle conns — the retry must flush them all and dial fresh, not
	// draw the next stale one.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Execute(lqp.Retrieve("BIG")); err != nil {
				t.Errorf("warm-up execute: %v", err)
			}
		}()
	}
	wg.Wait()
	// Let the server drop every pooled connection, then query again: the
	// stale conn fails, the retry dials afresh, the caller never notices.
	time.Sleep(200 * time.Millisecond)
	r, err := c.Execute(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatalf("query after server idle-drop: %v", err)
	}
	if r.Cardinality() != 25 {
		t.Fatalf("retrieved %d tuples", r.Cardinality())
	}
}
