package wire

import (
	"net"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/lqp"
	"repro/internal/rel"
)

// TestPooledConnRetirementUnderTransportFaults: every accepted connection is
// killed after a fixed read budget (faultinject.FlakyConn via ConnHook), so
// pooled client connections keep dying mid-exchange. The client must retire
// each poisoned connection — never return it to the idle pool — and keep
// answering on fresh dials: the pool ends the loop holding only working
// connections, with the accounting (nconns vs idle) intact.
func TestPooledConnRetirementUnderTransportFaults(t *testing.T) {
	db := catalog.NewDatabase("CD")
	db.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO"), "FNAME")
	if err := db.Insert("FIRM",
		rel.Tuple{rel.String("IBM"), rel.String("John Ackers")},
		rel.Tuple{rel.String("DEC"), rel.String("Ken Olsen")},
	); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db)
	var mu sync.Mutex
	var accepted []*faultinject.FlakyConn
	srv.ConnHook = func(conn net.Conn) net.Conn {
		fc := faultinject.WrapConn(conn, faultinject.ConnProfile{CutAfterReads: 24})
		mu.Lock()
		accepted = append(accepted, fc)
		mu.Unlock()
		return fc
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Enough exchanges to blow through several connections' read budgets.
	// Cuts on a reused pooled connection are absorbed by the client's
	// flush-and-retry; a cut during a fresh connection's first exchange may
	// still surface — count, don't fail.
	surfaced := 0
	for i := 0; i < 40; i++ {
		if _, err := c.Execute(lqp.Retrieve("FIRM")); err != nil {
			surfaced++
		}
	}
	// Whatever happened mid-loop, the client must answer now: every dead
	// connection was retired, not re-pooled.
	r, err := c.Execute(lqp.Retrieve("FIRM"))
	if err != nil {
		t.Fatalf("client did not recover after transport cuts: %v", err)
	}
	if r.Cardinality() != 2 {
		t.Fatalf("recovered answer has %d rows, want 2", r.Cardinality())
	}
	if surfaced > 40/2 {
		t.Errorf("%d of 40 calls failed; retirement plus retry should absorb most cuts", surfaced)
	}

	mu.Lock()
	conns, cuts := len(accepted), 0
	for _, fc := range accepted {
		if fc.Cut() {
			cuts++
		}
	}
	mu.Unlock()
	if cuts == 0 {
		t.Fatal("no connection was ever cut — the fault injection never fired")
	}
	if conns < 2 {
		t.Fatalf("server accepted %d connection(s); retirement should have forced fresh dials", conns)
	}

	// Pool accounting: at quiescence every live connection is idle (none
	// leaked broken into the pool, none lost from the count).
	c.mu.Lock()
	nconns, idle := c.nconns, len(c.idle)
	c.mu.Unlock()
	if nconns != idle {
		t.Errorf("pool holds %d connections but %d idle — a retired connection leaked", nconns, idle)
	}
}
