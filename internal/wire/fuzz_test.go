package wire

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// byteDriver turns a fuzz input into bounded decisions: each draw consumes
// one byte (zero once exhausted), so every input maps deterministically to
// one batch shape and the fuzzer's mutations explore the shape space.
type byteDriver struct {
	b  []byte
	at int
}

func (d *byteDriver) next() byte {
	if d.at >= len(d.b) {
		return 0
	}
	v := d.b[d.at]
	d.at++
	return v
}

func (d *byteDriver) intn(n int) int { return int(d.next()) % n }

func (d *byteDriver) value() rel.Value {
	switch d.intn(8) {
	case 0:
		return rel.Null()
	case 1:
		return rel.String("")
	case 2:
		return rel.String(strings.Repeat("x", d.intn(9)))
	case 3:
		return rel.Int(int64(d.next()) - 128)
	case 4:
		return rel.Float(math.NaN())
	case 5:
		return rel.Float(math.Copysign(0, -1))
	case 6:
		return rel.Bool(d.next()%2 == 0)
	default:
		return rel.Float(float64(d.next()) / 3)
	}
}

func (d *byteDriver) set(reg *sourceset.Registry) sourceset.Set {
	switch d.intn(4) {
	case 0:
		return sourceset.Empty()
	case 1: // overflow set: 70 sources spill past the 64-bit fast path
		s := sourceset.Empty()
		for i := 0; i < 70; i++ {
			s = s.With(reg.Intern(string(rune('A'+i%26)) + string(rune('a'+i/26))))
		}
		return s
	default:
		s := sourceset.Empty()
		for i := 0; i <= d.intn(3); i++ {
			s = s.With(reg.Intern("fz" + string(rune('0'+d.intn(8)))))
		}
		return s
	}
}

// FuzzFrameRoundTrip drives the binary codec from both ends: the input
// derives a batch that must survive encode/decode unchanged (rel and core
// frames), and the raw input is also thrown at both decoders, which must
// return an error — never panic, and never allocate past the payload size.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed with valid encodings so the fuzzer starts inside the grammar.
	seedRel := rel.NewColBatch(rel.SchemaOf("A", "B"))
	seedRel.AppendTuple(rel.Tuple{rel.Int(1), rel.String("s")})
	seedRel.AppendTuple(rel.Tuple{rel.Null(), rel.Bool(true)})
	f.Add(appendRelFrame(nil, seedRel))
	reg := sourceset.NewRegistry()
	seedCore := core.NewColBatch("S", reg, []core.Attr{{Name: "A"}})
	seedCore.AppendTuple(core.Tuple{{D: rel.Float(1.5), O: sourceset.Of(reg.Intern("db")), I: sourceset.Empty()}})
	f.Add(appendCoreFrame(nil, seedCore))
	f.Add([]byte{magicPlain, 1, 0})
	f.Add([]byte{magicTagged})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		// Leg 1: raw bytes at the decoders. Decode may succeed or fail, but
		// must never panic; a success must survive a further round trip.
		// (Byte-for-byte canonicality is NOT asserted — binary.Uvarint
		// accepts non-minimal varints the encoder never emits.)
		schema := rel.SchemaOf("A", "B")
		if b, err := decodeRelFrame(in, schema); err == nil {
			if _, err := decodeRelFrame(appendRelFrame(nil, b), schema); err != nil {
				t.Fatalf("rel frame re-round-trip: %v", err)
			}
		}
		attrs := []core.Attr{{Name: "A"}}
		if b, err := decodeCoreFrame(in, "F", attrs, sourceset.NewRegistry()); err == nil {
			if _, err := decodeCoreFrame(appendCoreFrame(nil, b), "F", attrs, sourceset.NewRegistry()); err != nil {
				t.Fatalf("core frame re-round-trip: %v", err)
			}
		}

		// Leg 2: derive a batch from the input; it must round-trip exactly.
		d := &byteDriver{b: in}
		ncols := 1 + d.intn(3)
		nrows := d.intn(12)
		names := make([]string, ncols)
		for i := range names {
			names[i] = "C" + string(rune('0'+i))
		}
		rb := rel.NewColBatch(rel.SchemaOf(names...))
		reg := sourceset.NewRegistry()
		cattrs := make([]core.Attr, ncols)
		for i := range cattrs {
			cattrs[i] = core.Attr{Name: names[i]}
		}
		cb := core.NewColBatch("F", reg, cattrs)
		rrow := make(rel.Tuple, ncols)
		crow := make(core.Tuple, ncols)
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				v := d.value()
				rrow[c] = v
				crow[c] = core.Cell{D: v, O: d.set(reg), I: d.set(reg)}
			}
			rb.AppendTuple(rrow)
			cb.AppendTuple(crow)
		}

		gotRel, err := decodeRelFrame(appendRelFrame(nil, rb), rb.Schema())
		if err != nil {
			t.Fatalf("rel round trip: %v", err)
		}
		if gotRel.Len() != nrows {
			t.Fatalf("rel round trip: %d rows, want %d", gotRel.Len(), nrows)
		}
		for r := 0; r < nrows; r++ {
			for c := 0; c < ncols; c++ {
				if !rb.Value(r, c).Identical(gotRel.Value(r, c)) {
					t.Fatalf("rel cell (%d,%d) diverged: %v != %v", r, c, gotRel.Value(r, c), rb.Value(r, c))
				}
			}
		}

		gotCore, err := decodeCoreFrame(appendCoreFrame(nil, cb), "F", cattrs, sourceset.NewRegistry())
		if err != nil {
			t.Fatalf("core round trip: %v", err)
		}
		want, have := renderTagged(cb.Relation()), renderTagged(gotCore.Relation())
		if !sameLines(want, have) {
			t.Fatalf("core round trip diverged:\ngot:\n%s\nwant:\n%s",
				strings.Join(have, "\n"), strings.Join(want, "\n"))
		}
	})
}
