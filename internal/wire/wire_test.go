package wire

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

func serve(t *testing.T) (*Server, *Client) {
	t.Helper()
	db := catalog.NewDatabase("CD")
	db.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO", "HQ"), "FNAME")
	rows := [][3]string{
		{"IBM", "John Ackers", "Armonk, NY"},
		{"DEC", "Ken Olsen", "Maynard, MA"},
		{"Apple", "John Sculley", "Cupertino, CA"},
	}
	for _, r := range rows {
		if err := db.Insert("FIRM", rel.Tuple{rel.String(r[0]), rel.String(r[1]), rel.String(r[2])}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestClientName(t *testing.T) {
	_, c := serve(t)
	if c.Name() != "CD" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestClientRelations(t *testing.T) {
	_, c := serve(t)
	rels, err := c.Relations()
	if err != nil || len(rels) != 1 || rels[0] != "FIRM" {
		t.Errorf("Relations = %v, %v", rels, err)
	}
}

func TestClientRetrieve(t *testing.T) {
	_, c := serve(t)
	r, err := c.Execute(lqp.Retrieve("FIRM"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 3 || r.Schema.Len() != 3 {
		t.Errorf("retrieved %dx%d", r.Cardinality(), r.Schema.Len())
	}
	if r.Name != "FIRM" {
		t.Errorf("relation name = %q", r.Name)
	}
	if r.Tuples[0][0].Str() != "IBM" {
		t.Errorf("first tuple = %v", r.Tuples[0])
	}
}

func TestClientSelect(t *testing.T) {
	_, c := serve(t)
	r, err := c.Execute(lqp.Select("FIRM", "FNAME", rel.ThetaEQ, rel.String("DEC")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 1 || r.Tuples[0][1].Str() != "Ken Olsen" {
		t.Errorf("select result = %v", r)
	}
}

func TestClientProject(t *testing.T) {
	_, c := serve(t)
	r, err := c.Execute(lqp.Project("FIRM", "CEO"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 3 || r.Schema.Len() != 1 {
		t.Errorf("project result = %v", r)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	_, c := serve(t)
	_, err := c.Execute(lqp.Retrieve("MISSING"))
	if err == nil {
		t.Fatal("expected error for missing relation")
	}
	// The connection must survive an application-level error.
	if _, err := c.Execute(lqp.Retrieve("FIRM")); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := serve(t)
	addr := srv.listener.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				r, err := c.Execute(lqp.Retrieve("FIRM"))
				if err != nil {
					errs <- err
					return
				}
				if r.Cardinality() != 3 {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentRequestsOneClient(t *testing.T) {
	_, c := serve(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Execute(lqp.Retrieve("FIRM")); err != nil {
				t.Errorf("concurrent execute: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := serve(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestClientAfterServerClose(t *testing.T) {
	srv, c := serve(t)
	srv.Close()
	if _, err := c.Execute(lqp.Retrieve("FIRM")); err == nil {
		t.Error("execute after server close should fail")
	}
}

func TestValueKindsSurviveWire(t *testing.T) {
	db := catalog.NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("S", "I", "F", "B", "N"))
	db.Insert("T", rel.Tuple{rel.String("x"), rel.Int(-5), rel.Float(3.99), rel.Bool(true), rel.Null()})
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Execute(lqp.Retrieve("T"))
	if err != nil {
		t.Fatal(err)
	}
	tu := r.Tuples[0]
	if tu[0].Kind() != rel.KindString || tu[1].Kind() != rel.KindInt ||
		tu[2].Kind() != rel.KindFloat || tu[3].Kind() != rel.KindBool || !tu[4].IsNull() {
		t.Errorf("kinds lost over the wire: %v", tu)
	}
	if tu[1].IntVal() != -5 || tu[2].FloatVal() != 3.99 || !tu[3].BoolVal() {
		t.Errorf("payloads lost over the wire: %v", tu)
	}
}

// TestLargeRelationTransfer pushes a 20k-tuple relation through the
// protocol, checking nothing truncates and the stream stays usable.
func TestLargeRelationTransfer(t *testing.T) {
	db := catalog.NewDatabase("BIG")
	db.MustCreate("T", rel.SchemaOf("K", "A", "B"))
	tuples := make([]rel.Tuple, 0, 20000)
	for i := 0; i < 20000; i++ {
		tuples = append(tuples, rel.Tuple{
			rel.Int(int64(i)),
			rel.String("value-with-some-length-" + rel.Int(int64(i)).String()),
			rel.Float(float64(i) * 1.5)})
	}
	if err := db.Insert("T", tuples...); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 2; round++ {
		r, err := c.Execute(lqp.Retrieve("T"))
		if err != nil {
			t.Fatal(err)
		}
		if r.Cardinality() != 20000 {
			t.Fatalf("round %d: got %d tuples", round, r.Cardinality())
		}
		if r.Tuples[19999][0].IntVal() != 19999 {
			t.Fatal("last tuple corrupted")
		}
	}
}
