package wire

import (
	"io"
	"testing"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

func planFixture(t *testing.T) (*Server, *Client) {
	t.Helper()
	db := catalog.NewDatabase("WD")
	db.MustCreate("T", rel.SchemaOf("K", "C", "V"), "K")
	rows := make([]rel.Tuple, 0, 600)
	for i := 0; i < 600; i++ {
		cat := "a"
		if i%3 == 0 {
			cat = "b"
		}
		rows = append(rows, rel.Tuple{rel.Int(int64(i)), rel.String(cat), rel.Int(int64(i * 2))})
	}
	if err := db.Insert("T", rows...); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

// TestExecutePlanRoundTrip: the "execplan" request evaluates the whole
// subplan server-side; only the filtered, narrowed relation crosses the
// wire.
func TestExecutePlanRoundTrip(t *testing.T) {
	_, client := planFixture(t)
	p := lqp.PlanOf(
		lqp.Retrieve("T"),
		lqp.Select("T", "C", rel.ThetaEQ, rel.String("b")),
		lqp.Project("T", "V"),
	)
	r, err := client.ExecutePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 200 || r.Schema.Len() != 1 {
		t.Errorf("plan result %dx%d, want 200x1", len(r.Tuples), r.Schema.Len())
	}
	// An invalid plan fails client-side before touching the wire.
	if _, err := client.ExecutePlan(lqp.Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
	// A server-side evaluation error comes back as an error response.
	bad := lqp.PlanOf(lqp.Retrieve("T"), lqp.Select("T", "NOPE", rel.ThetaEQ, rel.String("x")))
	if _, err := client.ExecutePlan(bad); err == nil {
		t.Error("plan referencing a missing attribute accepted")
	}
}

// TestOpenPlanStreamRoundTrip: the "openplan" request streams the filtered
// batches on a dedicated connection.
func TestOpenPlanStreamRoundTrip(t *testing.T) {
	_, client := planFixture(t)
	cur, err := client.OpenPlan(lqp.PlanOf(
		lqp.Retrieve("T"),
		lqp.Select("T", "C", rel.ThetaEQ, rel.String("a")),
	))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := cur.Schema().Len(); got != 3 {
		t.Fatalf("stream schema has %d columns, want 3", got)
	}
	rows := 0
	for {
		batch, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += len(batch)
	}
	if rows != 400 {
		t.Errorf("streamed %d rows, want 400", rows)
	}
}

// TestStatsRoundTrip: the "stats" request serves the statistics capability
// remotely, so stats.Collect works across the wire.
func TestStatsRoundTrip(t *testing.T) {
	_, client := planFixture(t)
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || st[0].Name != "T" || st[0].Rows != 600 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st[0].Columns; len(got) != 3 || got[0] != "K" {
		t.Errorf("columns = %v", got)
	}
	if len(st[0].Key) != 1 || st[0].Key[0] != "K" {
		t.Errorf("key = %v", st[0].Key)
	}
}
