package wire

// This file is the mediator side of the wire protocol: where wire.go lets a
// PQP reach remote LQPs, query.go lets remote clients reach a whole PQP —
// the mediator-as-a-service layer (cmd/polygend fronting internal/mediator).
// A "session" request opens a server-side session (audit trail, federation
// metadata for thin shells); "query" runs one polygen query and returns the
// composite answer with its source tags; "queryopen" streams the answer as
// tagged row-batch frames on a dedicated connection, reusing the frame
// protocol of the LQP streams.
//
// Source tags travel as per-message directories: every tagged relation or
// frame carries the list of source names its cells reference, and cells
// store small indexes into it. The client re-interns the names into its own
// sourceset.Registry, so tag identity survives the wire without the client
// and server sharing registry IDs.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Mediator is the service the wire server fronts for "session", "query" and
// "queryopen" requests — implemented by internal/mediator over a shared
// *pqp.PQP. All methods must be safe for concurrent use; the server calls
// them from one goroutine per client connection.
type Mediator interface {
	// Federation names the federation (the mediator server's "name" answer).
	Federation() string
	// OpenSession creates a session and returns its ID plus the federation
	// metadata a thin client needs (scheme names, attribute mappings).
	OpenSession(opts SessionOptions) (SessionInfo, error)
	// CloseSession ends a session. Closing an unknown session is an error.
	CloseSession(id string) error
	// Query runs one polygen query — SQL, or paper algebra when algebraic —
	// and returns the materialized tagged answer. session may be "" for a
	// sessionless (un-audited) query.
	Query(session, text string, algebraic bool) (*MediatedAnswer, error)
	// OpenQuery runs the query's translation pipeline and returns the
	// answer as a tagged cursor; the caller (the server stream loop) owns
	// the cursor.
	OpenQuery(session, text string, algebraic bool) (*MediatedStream, error)
}

// SessionOptions is what a client asks of its session.
type SessionOptions struct {
	// Policy is the degradation policy of every query the session runs:
	// "fail" (the whole query fails when a source exhausts its replicas),
	// "partial" (exhausted scatter legs drop out, named in the answer's
	// diagnostics), or "" for the mediator's default.
	Policy string
}

// MediatedAnswer is one materialized mediator answer.
type MediatedAnswer struct {
	// Relation is the composite answer with source tags.
	Relation *core.Relation
	// PlanRows is the executed (optimized) plan, one row per line.
	PlanRows []string
	// CacheHit reports the plan came from the mediator's plan cache.
	CacheHit bool
	// Diag is the query's fault-handling record.
	Diag federation.Report
}

// MediatedStream is one streaming mediator answer.
type MediatedStream struct {
	// Cursor yields the tagged answer batches.
	Cursor core.Cursor
	// PlanRows / CacheHit are as in MediatedAnswer.
	PlanRows []string
	CacheHit bool
	// Diag, when non-nil, snapshots the query's fault-handling record; the
	// server calls it after the stream completes (the record keeps growing
	// while batches flow — mid-stream failovers count) and ships it on the
	// Done frame.
	Diag func() federation.Report
}

// SessionInfo is the answer to a "session" request.
type SessionInfo struct {
	// ID names the session in subsequent requests.
	ID string
	// Federation is the federation name.
	Federation string
	// Sources lists the federation's local database names in the server
	// registry's canonical order. OpenSession pre-interns them client-side,
	// so tag sets render in the same order on both ends of the wire.
	Sources []string
	// Schemes is the polygen schema's metadata, enough for a thin shell's
	// \schemes and \describe without catalog access.
	Schemes []SchemeInfo
	// Policy echoes the session's effective degradation policy ("fail" or
	// "partial") after the mediator resolved the requested one against its
	// default.
	Policy string
}

// SchemeInfo describes one polygen scheme to thin clients.
type SchemeInfo struct {
	Name string
	// Key is the scheme's primary key attribute.
	Key string
	// Attrs lists the scheme's attributes with their local mappings.
	Attrs []SchemeAttrInfo
}

// SchemeAttrInfo is one polygen attribute and the local attributes it maps.
type SchemeAttrInfo struct {
	Name string
	// Mapping renders each mapped local attribute ("DB.SCHEME.ATTR").
	Mapping []string
}

// SchemeInfos renders a polygen schema's metadata into the wire form — the
// "session" handshake payload, shared by the mediator service and the local
// shell backend so thin and thick clients describe schemes identically.
func SchemeInfos(schema *core.Schema) []SchemeInfo {
	names := schema.SchemeNames()
	infos := make([]SchemeInfo, 0, len(names))
	for _, name := range names {
		scheme, ok := schema.Scheme(name)
		if !ok {
			continue
		}
		info := SchemeInfo{Name: scheme.Name, Key: scheme.Key}
		for _, pa := range scheme.Attrs {
			ai := SchemeAttrInfo{Name: pa.Name, Mapping: make([]string, len(pa.Mapping))}
			for i, la := range pa.Mapping {
				ai.Mapping[i] = la.String()
			}
			info.Attrs = append(info.Attrs, ai)
		}
		infos = append(infos, info)
	}
	return infos
}

// flatPoly is the wire form of core.Relation: attributes as-is (the Attr
// struct is flat and exported), cells flattened into datum plus tag-index
// lists, and a directory mapping those indexes to source names. In a stream
// header Tuples and Sources are empty; tagged rows follow in frames, each
// frame carrying its own directory.
type flatPoly struct {
	Name    string
	Attrs   []core.Attr
	Sources []string
	Tuples  []flatTuple
}

// flatTuple is one tagged row.
type flatTuple []flatCell

// flatCell is one polygen cell: the datum and the origin/intermediate tag
// sets as indexes into the enclosing message's Sources directory.
type flatCell struct {
	D rel.Value
	O []int32
	I []int32
}

// tagEncoder flattens sourceset.Sets of one message, building the Sources
// directory as it goes.
type tagEncoder struct {
	reg   *sourceset.Registry
	index map[sourceset.ID]int32
	names []string
}

func newTagEncoder(reg *sourceset.Registry) *tagEncoder {
	return &tagEncoder{reg: reg, index: make(map[sourceset.ID]int32)}
}

func (e *tagEncoder) set(s sourceset.Set) []int32 {
	if s.IsEmpty() {
		return nil
	}
	ids := s.IDs()
	out := make([]int32, len(ids))
	for i, id := range ids {
		wi, ok := e.index[id]
		if !ok {
			wi = int32(len(e.names))
			e.index[id] = wi
			e.names = append(e.names, e.reg.Name(id))
		}
		out[i] = wi
	}
	return out
}

// flattenBatch flattens one batch of tagged rows with a per-batch source
// directory.
func flattenBatch(batch []core.Tuple, reg *sourceset.Registry) ([]flatTuple, []string) {
	enc := newTagEncoder(reg)
	tuples := make([]flatTuple, len(batch))
	for bi, t := range batch {
		row := make(flatTuple, len(t))
		for i, c := range t {
			row[i] = flatCell{D: c.D, O: enc.set(c.O), I: enc.set(c.I)}
		}
		tuples[bi] = row
	}
	return tuples, enc.names
}

func flattenPoly(p *core.Relation) flatPoly {
	tuples, sources := flattenBatch(p.Tuples, p.Reg)
	return flatPoly{
		Name:    p.Name,
		Attrs:   append([]core.Attr(nil), p.Attrs...),
		Sources: sources,
		Tuples:  tuples,
	}
}

// tagDecoder rebuilds sourceset.Sets from one message's directory,
// re-interning the source names into the receiver's registry.
type tagDecoder struct {
	ids []sourceset.ID
}

func newTagDecoder(reg *sourceset.Registry, sources []string) *tagDecoder {
	d := &tagDecoder{ids: make([]sourceset.ID, len(sources))}
	for i, name := range sources {
		d.ids[i] = reg.Intern(name)
	}
	return d
}

func (d *tagDecoder) set(idx []int32) (sourceset.Set, error) {
	var s sourceset.Set
	for _, wi := range idx {
		if wi < 0 || int(wi) >= len(d.ids) {
			return s, fmt.Errorf("wire: tag index %d outside source directory (%d entries)", wi, len(d.ids))
		}
		s = s.With(d.ids[wi])
	}
	return s, nil
}

// unflattenBatch rebuilds one batch of tagged rows into out's attribute
// space, appending nothing — rows are returned for the caller to use.
func unflattenBatch(tuples []flatTuple, sources []string, reg *sourceset.Registry, width int) ([]core.Tuple, error) {
	dec := newTagDecoder(reg, sources)
	rows := make([]core.Tuple, len(tuples))
	for bi, ft := range tuples {
		if len(ft) != width {
			return nil, fmt.Errorf("wire: tagged tuple degree %d does not match schema width %d", len(ft), width)
		}
		row := make(core.Tuple, len(ft))
		for i, fc := range ft {
			o, err := dec.set(fc.O)
			if err != nil {
				return nil, err
			}
			in, err := dec.set(fc.I)
			if err != nil {
				return nil, err
			}
			row[i] = core.Cell{D: fc.D, O: o, I: in}
		}
		rows[bi] = row
	}
	return rows, nil
}

func unflattenPoly(f flatPoly, reg *sourceset.Registry) (*core.Relation, error) {
	p := core.NewRelation(f.Name, reg, f.Attrs...)
	rows, err := unflattenBatch(f.Tuples, f.Sources, reg, len(f.Attrs))
	if err != nil {
		return nil, err
	}
	p.Tuples = rows
	return p, nil
}

// handleMediator serves the round-trip mediator kinds ("session",
// "endsession", "query").
func (s *Server) handleMediator(req request) response {
	if s.mediator == nil {
		return response{Err: fmt.Sprintf("wire: server %q is not a mediator (request kind %q)", s.serverName(), req.Kind)}
	}
	switch req.Kind {
	case "session":
		info, err := s.mediator.OpenSession(SessionOptions{Policy: req.Policy})
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Session: info}
	case "endsession":
		if err := s.mediator.CloseSession(req.Session); err != nil {
			return response{Err: err.Error()}
		}
		return response{}
	case "query":
		ans, err := s.mediator.Query(req.Session, req.Text, req.Algebraic)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Poly: flattenPoly(ans.Relation), HasPoly: true, PlanRows: ans.PlanRows, CacheHit: ans.CacheHit, Diag: ans.Diag}
	default:
		return response{Err: fmt.Sprintf("wire: unknown mediator request kind %q", req.Kind)}
	}
}

// serveQueryStream answers one "queryopen" request: a header response with
// the answer's attributes and plan, then tagged row-batch frames, then a
// done frame — the tagged twin of serveStream. The returned error is
// non-nil only for transport failures.
func (s *Server) serveQueryStream(conn net.Conn, enc *gob.Encoder, req request) error {
	if s.mediator == nil {
		return s.send(conn, enc, response{Err: fmt.Sprintf("wire: server %q is not a mediator (request kind %q)", s.serverName(), req.Kind)})
	}
	ms, err := s.mediator.OpenQuery(req.Session, req.Text, req.Algebraic)
	if err != nil {
		return s.send(conn, enc, response{Err: err.Error()})
	}
	defer ms.Cursor.Close()
	binary := s.useBinary(req)
	header := response{Poly: flatPoly{Name: ms.Cursor.Name(), Attrs: ms.Cursor.Attrs()}, HasPoly: true, PlanRows: ms.PlanRows, CacheHit: ms.CacheHit}
	if binary {
		header.Codec = codecBinary
	}
	if err := s.send(conn, enc, header); err != nil {
		return err
	}
	reg := ms.Cursor.Registry()
	cc, _ := ms.Cursor.(core.ColCursor)
	var buf []byte
	for {
		if binary {
			cb, err := nextCoreColBatch(ms.Cursor, cc)
			if err == io.EOF {
				done := frame{Done: true}
				if ms.Diag != nil {
					done.Diag = ms.Diag()
				}
				return s.send(conn, enc, done)
			}
			if err != nil {
				return s.send(conn, enc, frame{Err: err.Error()})
			}
			buf = appendCoreFrame(buf[:0], cb)
			if err := s.send(conn, enc, frame{Bin: buf}); err != nil {
				return err
			}
			continue
		}
		batch, err := ms.Cursor.Next()
		if err == io.EOF {
			done := frame{Done: true}
			if ms.Diag != nil {
				done.Diag = ms.Diag()
			}
			return s.send(conn, enc, done)
		}
		if err != nil {
			return s.send(conn, enc, frame{Err: err.Error()})
		}
		tuples, sources := flattenBatch(batch, reg)
		if err := s.send(conn, enc, frame{Poly: tuples, Sources: sources}); err != nil {
			return err
		}
	}
}

// nextCoreColBatch pulls the next tagged batch in columnar form: natively
// from a columnar cursor, otherwise by columnarizing the row batch (which
// also interns its tag sets into the frame's dictionary).
func nextCoreColBatch(cur core.Cursor, cc core.ColCursor) (*core.ColBatch, error) {
	if cc != nil {
		return cc.NextCol()
	}
	batch, err := cur.Next()
	if err != nil {
		return nil, err
	}
	b := core.NewColBatch(cur.Name(), cur.Registry(), cur.Attrs())
	for _, t := range batch {
		b.AppendTuple(t)
	}
	return b, nil
}

// OpenSession opens a mediator session with default options and returns
// its ID plus the federation metadata. The federation's source names are
// interned into the client registry in the server's canonical order, so
// decoded tag sets format identically on both ends.
func (c *Client) OpenSession() (SessionInfo, error) {
	return c.OpenSessionWith(SessionOptions{})
}

// OpenSessionWith is OpenSession with explicit session options (e.g. the
// "partial" degradation policy).
func (c *Client) OpenSessionWith(opts SessionOptions) (SessionInfo, error) {
	resp, err := c.roundTrip(request{Kind: "session", Policy: opts.Policy})
	if err != nil {
		return SessionInfo{}, err
	}
	for _, name := range resp.Session.Sources {
		c.Reg.Intern(name)
	}
	return resp.Session, nil
}

// CloseSession ends a mediator session.
func (c *Client) CloseSession(id string) error {
	_, err := c.roundTrip(request{Kind: "endsession", Session: id})
	return err
}

// QueryAnswer is a mediator query result on the client side.
type QueryAnswer struct {
	// Relation is the tagged composite answer (tags interned into the
	// client's registry, c.Reg). Nil on the streaming path.
	Relation *core.Relation
	// PlanRows is the executed plan, one row per line.
	PlanRows []string
	// CacheHit reports the mediator answered from its plan cache.
	CacheHit bool
	// Diag is the query's fault-handling record: retries, hedges, replicas
	// used and — under the partial policy — the sources the answer is
	// missing. On the streaming path it arrives with the Done frame; read
	// it from the cursor (Diagnosed) instead.
	Diag federation.Report
}

// Query runs one polygen query on the mediator and returns the
// materialized tagged answer. session may be "" for a sessionless query;
// algebraic selects the paper-algebra parser over the SQL front end.
func (c *Client) Query(session, text string, algebraic bool) (*QueryAnswer, error) {
	resp, err := c.roundTrip(request{Kind: "query", Session: session, Text: text, Algebraic: algebraic})
	if err != nil {
		return nil, err
	}
	if !resp.HasPoly {
		return nil, fmt.Errorf("wire: query response carried no relation")
	}
	p, err := unflattenPoly(resp.Poly, c.Reg)
	if err != nil {
		return nil, err
	}
	return &QueryAnswer{Relation: p, PlanRows: resp.PlanRows, CacheHit: resp.CacheHit, Diag: resp.Diag}, nil
}

// Diagnosed is the capability of streamed answers whose final frame
// carried the query's fault-handling record — the cursor returned by
// OpenQuery implements it. The record is complete (and ok true) only after
// Next has returned io.EOF; an aborted stream never learns it.
type Diagnosed interface {
	Diagnostics() (federation.Report, bool)
}

// OpenQuery runs one polygen query on the mediator and streams the tagged
// answer batches on a dedicated connection. The returned answer carries the
// plan (Relation is nil — the rows are in the cursor). The caller owns the
// cursor and must Close it; Client.Close aborts it with the rest.
func (c *Client) OpenQuery(session, text string, algebraic bool) (core.Cursor, *QueryAnswer, error) {
	conn, dec, resp, err := c.startStream(request{Kind: "queryopen", Session: session, Text: text, Algebraic: algebraic, Codec: c.streamCodec()})
	if err != nil {
		return nil, nil, err
	}
	if !resp.HasPoly {
		c.unregisterStream(conn)
		conn.Close()
		return nil, nil, fmt.Errorf("wire: queryopen response carried no schema")
	}
	cur := &polyStreamCursor{
		client:  c,
		conn:    conn,
		dec:     dec,
		name:    resp.Poly.Name,
		attrs:   append([]core.Attr(nil), resp.Poly.Attrs...),
		timeout: c.timeout(),
	}
	return cur, &QueryAnswer{PlanRows: resp.PlanRows, CacheHit: resp.CacheHit}, nil
}

// polyStreamCursor decodes the tagged frames of one "queryopen" stream into
// core.Cursor batches. It is a core.ColCursor: on a binary-codec stream
// each frame maps onto column vectors plus a per-frame tag-set dictionary
// with O(columns + distinct sets) allocations; on a gob stream the flat
// cells are decoded as before.
type polyStreamCursor struct {
	client  *Client
	conn    net.Conn
	dec     *gob.Decoder
	name    string
	attrs   []core.Attr
	timeout time.Duration
	done    bool
	closed  bool
	diag    federation.Report
	hasDiag bool
}

// Diagnostics returns the fault-handling record shipped on the stream's
// Done frame; ok is false until the stream has drained to io.EOF.
func (pc *polyStreamCursor) Diagnostics() (federation.Report, bool) {
	return pc.diag, pc.hasDiag
}

func (pc *polyStreamCursor) Name() string                  { return pc.name }
func (pc *polyStreamCursor) Attrs() []core.Attr            { return pc.attrs }
func (pc *polyStreamCursor) Registry() *sourceset.Registry { return pc.client.Reg }

// nextFrame decodes frames until a batch arrives, in whichever framing the
// stream uses: exactly one of the returned batch forms is non-empty.
func (pc *polyStreamCursor) nextFrame() ([]core.Tuple, *core.ColBatch, error) {
	if pc.done || pc.closed {
		return nil, nil, io.EOF
	}
	for {
		pc.conn.SetReadDeadline(time.Now().Add(pc.timeout))
		var f frame
		if err := pc.dec.Decode(&f); err != nil {
			pc.done = true
			pc.Close()
			return nil, nil, fmt.Errorf("wire: receive frame from %s: %w", pc.client.addr, err)
		}
		switch {
		case f.Err != "":
			pc.done = true
			return nil, nil, errors.New(f.Err)
		case f.Done:
			pc.done = true
			pc.diag = f.Diag
			pc.hasDiag = true
			return nil, nil, io.EOF
		case len(f.Bin) > 0:
			cb, err := decodeCoreFrame(f.Bin, pc.name, pc.attrs, pc.client.Reg)
			if err != nil {
				pc.done = true
				pc.Close()
				return nil, nil, fmt.Errorf("wire: decode frame from %s: %w", pc.client.addr, err)
			}
			if cb.Len() == 0 {
				continue
			}
			return nil, cb, nil
		case len(f.Poly) > 0:
			batch, err := unflattenBatch(f.Poly, f.Sources, pc.client.Reg, len(pc.attrs))
			if err != nil {
				pc.done = true
				pc.Close()
				return nil, nil, err
			}
			return batch, nil, nil
		}
	}
}

func (pc *polyStreamCursor) Next() ([]core.Tuple, error) {
	batch, cb, err := pc.nextFrame()
	if err != nil {
		return nil, err
	}
	if cb != nil {
		return cb.Rows(), nil
	}
	return batch, nil
}

// NextCol implements core.ColCursor.
func (pc *polyStreamCursor) NextCol() (*core.ColBatch, error) {
	batch, cb, err := pc.nextFrame()
	if err != nil {
		return nil, err
	}
	if cb == nil {
		cb = core.NewColBatch(pc.name, pc.client.Reg, pc.attrs)
		for _, t := range batch {
			cb.AppendTuple(t)
		}
	}
	return cb, nil
}

func (pc *polyStreamCursor) Close() error {
	if pc.closed {
		return nil
	}
	pc.closed = true
	pc.client.unregisterStream(pc.conn)
	return pc.conn.Close()
}

var _ core.ColCursor = (*polyStreamCursor)(nil)
var _ Diagnosed = (*polyStreamCursor)(nil)
