package wire

// The binary frame codec: the zero-copy columnar wire format that replaces
// gob for the row frames of streamed results. Control messages (requests,
// responses, the frame envelope itself) stay gob — the codec's payload rides
// inside the envelope as one opaque byte slice (frame.Bin), because a gob
// decoder buffers ahead and cannot share a connection with raw interleaved
// bytes.
//
// The byte layout itself lives beside the batch types it serializes —
// rel/codec.go for plain frames (0xC1), core/codec.go for source-tagged
// frames (0xC2) — because the write-ahead segment log (internal/store) and
// the spill files of the budgeted hash operators persist the very same
// frames. This file only binds the codec into the protocol: the negotiation
// token and the per-stream append/decode helpers.

import (
	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

const (
	// codecBinary is the negotiation token: a client asks for the binary
	// frame codec by sending request.Codec = "bin"; a server that understands
	// echoes it in the stream header's response.Codec. Old peers drop the
	// unknown gob field silently, so either side falls back to gob frames.
	codecBinary = "bin"

	magicPlain  = rel.FrameMagicPlain   // untagged columnar frame (rel.ColBatch)
	magicTagged = core.FrameMagicTagged // source-tagged columnar frame (core.ColBatch)
)

// appendRelFrame appends one plain columnar frame to buf and returns it.
func appendRelFrame(buf []byte, b *rel.ColBatch) []byte { return rel.AppendFrame(buf, b) }

// appendCoreFrame appends one tagged columnar frame to buf and returns it.
func appendCoreFrame(buf []byte, b *core.ColBatch) []byte { return core.AppendFrame(buf, b) }

// decodeRelFrame decodes one plain columnar frame against the stream's
// schema.
func decodeRelFrame(payload []byte, schema *rel.Schema) (*rel.ColBatch, error) {
	return rel.DecodeFrame(payload, schema)
}

// decodeCoreFrame decodes one tagged columnar frame into the receiver's
// attribute space, re-interning the frame's source names into reg.
func decodeCoreFrame(payload []byte, name string, attrs []core.Attr, reg *sourceset.Registry) (*core.ColBatch, error) {
	return core.DecodeFrame(payload, name, attrs, reg)
}
