package wire

// This file implements the binary frame codec: the zero-copy columnar wire
// format that replaces gob for the row frames of streamed results. Control
// messages (requests, responses, the frame envelope itself) stay gob — the
// codec's payload rides inside the envelope as one opaque byte slice
// (frame.Bin), because a gob decoder buffers ahead and cannot share a
// connection with raw interleaved bytes.
//
// A payload is one column-major batch:
//
//	plain frame ("open"/"openplan" streams)
//	+-------+--------+--------+----------------- ... -----+
//	| 0xC1  | ncols  | nrows  | column 0 | column 1 | ... |
//	+-------+--------+--------+----------------- ... -----+
//
//	tagged frame ("queryopen" streams)
//	+-------+--------+--------+---------+--------+---------------- ... ----+
//	| 0xC2  | ncols  | nrows  | sources | sets   | tagged col 0 | ...      |
//	+-------+--------+--------+---------+--------+---------------- ... ----+
//
// where every integer is an unsigned varint and every column is
//
//	+------------------+-------------------+---------------+-----------+
//	| kinds (nrows B)  | packed payloads   | string lens   | blob      |
//	+------------------+-------------------+---------------+-----------+
//
//	kinds     one rel.Kind byte per row
//	payloads  row order: Int/Float 8 B little-endian, Bool 1 B, else none
//	lens      one uvarint per string row (byte length)
//	blob      the string bytes, concatenated in row order
//
// A tagged column is a plain column followed by two tag-index vectors, one
// uvarint per row each (origin then intermediate), indexing the frame's set
// directory. The directories come once per frame:
//
//	sources   uvarint count, then per name: uvarint len + bytes
//	sets      uvarint count (>= 1; set 0 is the empty set), then per set:
//	          uvarint member count + one uvarint source index per member
//
// Decoding is O(columns + directory entries) allocations, not O(rows x
// columns): each column materializes as a few packed vectors, each string
// column as one blob copy sliced into zero-copy substrings, and each
// distinct tag set once — cells hold uint32 indexes. Every length prefix is
// validated against the bytes actually remaining before anything is
// allocated, so a corrupt or hostile payload fails with an error instead of
// an over-allocation or a panic.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

const (
	// codecBinary is the negotiation token: a client asks for the binary
	// frame codec by sending request.Codec = "bin"; a server that understands
	// echoes it in the stream header's response.Codec. Old peers drop the
	// unknown gob field silently, so either side falls back to gob frames.
	codecBinary = "bin"

	magicPlain  = 0xC1 // untagged columnar frame (rel.ColBatch)
	magicTagged = 0xC2 // source-tagged columnar frame (core.ColBatch)
)

// appendColumn appends one plain column in wire order: kinds, packed
// payloads, string lengths, string blob.
func appendColumn(buf []byte, c *rel.Column) []byte {
	for _, k := range c.Kinds {
		buf = append(buf, byte(k))
	}
	for i, k := range c.Kinds {
		switch k {
		case rel.KindInt, rel.KindFloat:
			var w uint64
			if c.Nums != nil {
				w = c.Nums[i]
			}
			buf = binary.LittleEndian.AppendUint64(buf, w)
		case rel.KindBool:
			var b byte
			if c.Nums != nil && c.Nums[i] != 0 {
				b = 1
			}
			buf = append(buf, b)
		}
	}
	for i, k := range c.Kinds {
		if k == rel.KindString {
			var s string
			if c.Strs != nil {
				s = c.Strs[i]
			}
			buf = binary.AppendUvarint(buf, uint64(len(s)))
		}
	}
	for i, k := range c.Kinds {
		if k == rel.KindString && c.Strs != nil {
			buf = append(buf, c.Strs[i]...)
		}
	}
	return buf
}

// appendRelFrame appends one plain columnar frame to buf and returns it.
func appendRelFrame(buf []byte, b *rel.ColBatch) []byte {
	d := b.Schema().Len()
	buf = append(buf, magicPlain)
	buf = binary.AppendUvarint(buf, uint64(d))
	buf = binary.AppendUvarint(buf, uint64(b.Len()))
	for ci := 0; ci < d; ci++ {
		buf = appendColumn(buf, b.Col(ci))
	}
	return buf
}

// appendCoreFrame appends one tagged columnar frame to buf and returns it.
// The frame carries its own source-name directory (resolved through the
// batch's registry), so the receiver re-interns names instead of trusting
// registry IDs across the wire.
func appendCoreFrame(buf []byte, b *core.ColBatch) []byte {
	d := b.Degree()
	buf = append(buf, magicTagged)
	buf = binary.AppendUvarint(buf, uint64(d))
	buf = binary.AppendUvarint(buf, uint64(b.Len()))

	// Source-name directory: every ID referenced by the set dictionary, in
	// first-reference order.
	index := make(map[sourceset.ID]uint64)
	var names []string
	for _, s := range b.Sets {
		for _, id := range s.IDs() {
			if _, ok := index[id]; !ok {
				index[id] = uint64(len(names))
				names = append(names, b.Reg.Name(id))
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}

	// Set directory: the batch's tag dictionary, each set as source indexes.
	buf = binary.AppendUvarint(buf, uint64(len(b.Sets)))
	for _, s := range b.Sets {
		ids := s.IDs()
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, index[id])
		}
	}

	for ci := 0; ci < d; ci++ {
		buf = appendColumn(buf, &b.Data[ci])
		for _, ix := range b.OTag[ci] {
			buf = binary.AppendUvarint(buf, uint64(ix))
		}
		for _, ix := range b.ITag[ci] {
			buf = binary.AppendUvarint(buf, uint64(ix))
		}
	}
	return buf
}

// byteReader walks a payload with explicit bounds checks; every read that
// would pass the end fails with an error instead of panicking.
type byteReader struct {
	b  []byte
	at int
}

func (r *byteReader) remaining() int { return len(r.b) - r.at }

func (r *byteReader) u8() (byte, error) {
	if r.at >= len(r.b) {
		return 0, fmt.Errorf("wire: frame truncated at byte %d", r.at)
	}
	v := r.b[r.at]
	r.at++
	return v, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("wire: frame claims %d bytes with %d remaining", n, r.remaining())
	}
	b := r.b[r.at : r.at+n : r.at+n]
	r.at += n
	return b, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.at:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: frame has invalid varint at byte %d", r.at)
	}
	r.at += n
	return v, nil
}

// length reads a uvarint that sizes a later read or allocation, rejecting
// values beyond limit — the cap that keeps a hostile length prefix from
// driving a huge allocation before the (absent) bytes are ever read.
func (r *byteReader) length(limit int) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(limit) {
		return 0, fmt.Errorf("wire: frame length %d exceeds %d available bytes", v, limit)
	}
	return int(v), nil
}

// decodeColumn decodes one plain column of n rows.
func decodeColumn(r *byteReader, n int) (rel.Column, error) {
	var col rel.Column
	kb, err := r.take(n)
	if err != nil {
		return col, err
	}
	kinds := make([]rel.Kind, n)
	payload, strs := 0, 0
	for i, b := range kb {
		k := rel.Kind(b)
		kinds[i] = k
		switch k {
		case rel.KindNull:
		case rel.KindInt, rel.KindFloat:
			payload += 8
		case rel.KindBool:
			payload++
		case rel.KindString:
			strs++
		default:
			return col, fmt.Errorf("wire: frame has invalid kind tag %d", b)
		}
	}
	col.Kinds = kinds
	for i, k := range kinds {
		if k == rel.KindNull {
			col.SetNull(i)
		}
	}
	if payload > 0 {
		pb, err := r.take(payload)
		if err != nil {
			return col, err
		}
		col.Nums = make([]uint64, n)
		at := 0
		for i, k := range kinds {
			switch k {
			case rel.KindInt, rel.KindFloat:
				col.Nums[i] = binary.LittleEndian.Uint64(pb[at:])
				at += 8
			case rel.KindBool:
				if pb[at] > 1 {
					return col, fmt.Errorf("wire: frame has invalid bool payload %d", pb[at])
				}
				col.Nums[i] = uint64(pb[at])
				at++
			}
		}
	}
	if strs > 0 {
		// Lengths precede the blob, so the running total is always bounded by
		// the bytes still unread; one string(...) conversion per column, rows
		// sliced out of it zero-copy.
		lens := make([]int, 0, strs)
		total := 0
		for _, k := range kinds {
			if k != rel.KindString {
				continue
			}
			l, err := r.length(r.remaining())
			if err != nil {
				return col, err
			}
			total += l
			if total > r.remaining() {
				return col, fmt.Errorf("wire: frame string blob of %d bytes exceeds %d remaining", total, r.remaining())
			}
			lens = append(lens, l)
		}
		blob, err := r.take(total)
		if err != nil {
			return col, err
		}
		bs := string(blob)
		col.Strs = make([]string, n)
		at, li := 0, 0
		for i, k := range kinds {
			if k == rel.KindString {
				col.Strs[i] = bs[at : at+lens[li]]
				at += lens[li]
				li++
			}
		}
	}
	return col, nil
}

// decodeRelFrame decodes one plain columnar frame against the stream's
// schema.
func decodeRelFrame(payload []byte, schema *rel.Schema) (*rel.ColBatch, error) {
	r := &byteReader{b: payload}
	magic, err := r.u8()
	if err != nil {
		return nil, err
	}
	if magic != magicPlain {
		return nil, fmt.Errorf("wire: frame magic %#x, want %#x", magic, magicPlain)
	}
	// ncols needs no byte-bound cap (a zero-row frame is smaller than its
	// column count): it must equal the schema width, which bounds it.
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols != uint64(schema.Len()) {
		return nil, fmt.Errorf("wire: frame has %d columns for schema %s", ncols, schema)
	}
	// Every row costs at least one kind byte per column, and zero-width
	// frames carry no rows; either way nrows is bounded by the payload size.
	nrows, err := r.length(r.remaining())
	if err != nil {
		return nil, err
	}
	cols := make([]rel.Column, ncols)
	for ci := range cols {
		if cols[ci], err = decodeColumn(r, nrows); err != nil {
			return nil, fmt.Errorf("wire: column %d: %w", ci, err)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: frame has %d trailing bytes", r.remaining())
	}
	return rel.BuildColBatch(schema, cols, nrows)
}

// decodeTagVector decodes one per-row tag-index vector, validating every
// index against the set directory.
func decodeTagVector(r *byteReader, n, nsets int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(nsets) {
			return nil, fmt.Errorf("wire: frame tag index %d outside set directory of %d", v, nsets)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// decodeCoreFrame decodes one tagged columnar frame into the receiver's
// attribute space, re-interning the frame's source names into reg.
func decodeCoreFrame(payload []byte, name string, attrs []core.Attr, reg *sourceset.Registry) (*core.ColBatch, error) {
	r := &byteReader{b: payload}
	magic, err := r.u8()
	if err != nil {
		return nil, err
	}
	if magic != magicTagged {
		return nil, fmt.Errorf("wire: frame magic %#x, want %#x", magic, magicTagged)
	}
	// As in decodeRelFrame, ncols is bounded by the attribute list, not by
	// the payload size.
	ncols, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if ncols != uint64(len(attrs)) {
		return nil, fmt.Errorf("wire: frame has %d columns for %d attributes", ncols, len(attrs))
	}
	nrows, err := r.length(r.remaining())
	if err != nil {
		return nil, err
	}

	// Source directory: each name costs at least its length prefix.
	nsources, err := r.length(r.remaining())
	if err != nil {
		return nil, err
	}
	ids := make([]sourceset.ID, nsources)
	for i := range ids {
		l, err := r.length(r.remaining())
		if err != nil {
			return nil, err
		}
		nb, err := r.take(l)
		if err != nil {
			return nil, err
		}
		ids[i] = reg.Intern(string(nb))
	}

	// Set directory: each set costs at least its member-count varint.
	nsets, err := r.length(r.remaining())
	if err != nil {
		return nil, err
	}
	if nsets < 1 {
		return nil, fmt.Errorf("wire: frame has an empty set directory")
	}
	sets := make([]sourceset.Set, nsets)
	for i := range sets {
		members, err := r.length(r.remaining())
		if err != nil {
			return nil, err
		}
		var s sourceset.Set
		for m := 0; m < members; m++ {
			si, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if si >= uint64(len(ids)) {
				return nil, fmt.Errorf("wire: frame source index %d outside directory of %d", si, len(ids))
			}
			s = s.With(ids[si])
		}
		sets[i] = s
	}

	data := make([]rel.Column, ncols)
	otag := make([][]uint32, ncols)
	itag := make([][]uint32, ncols)
	for ci := range data {
		if data[ci], err = decodeColumn(r, nrows); err != nil {
			return nil, fmt.Errorf("wire: column %d: %w", ci, err)
		}
		if otag[ci], err = decodeTagVector(r, nrows, nsets); err != nil {
			return nil, fmt.Errorf("wire: column %d origin tags: %w", ci, err)
		}
		if itag[ci], err = decodeTagVector(r, nrows, nsets); err != nil {
			return nil, fmt.Errorf("wire: column %d intermediate tags: %w", ci, err)
		}
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: frame has %d trailing bytes", r.remaining())
	}
	return core.BuildColBatch(name, reg, attrs, data, otag, itag, sets, nrows)
}
