package wire

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

func streamDB(n int) *catalog.Database {
	db := catalog.NewDatabase("SD")
	db.MustCreate("BIG", rel.SchemaOf("K", "V"))
	for i := 0; i < n; i++ {
		if err := db.Insert("BIG", rel.Tuple{rel.Int(int64(i)), rel.String("v")}); err != nil {
			panic(err)
		}
	}
	return db
}

func startStreamServer(t *testing.T, n int) (*Server, *Client) {
	t.Helper()
	srv := NewServer(streamDB(n))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestClientOpenStreamsBatches: a multi-batch relation arrives framed, in
// order, and matches the materialized Execute result.
func TestClientOpenStreamsBatches(t *testing.T) {
	const n = 1000
	_, c := startStreamServer(t, n)
	cur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	batches, total := 0, 0
	for {
		b, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
		for _, tup := range b {
			if tup[0].IntVal() != int64(total) {
				t.Fatalf("tuple %d out of order: %v", total, tup)
			}
			total++
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("streamed %d tuples, want %d", total, n)
	}
	if batches < 2 {
		t.Fatalf("result arrived in %d frame(s); want row batches", batches)
	}
	// The request/response path is unaffected by the stream.
	r, err := c.Execute(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != n {
		t.Fatalf("execute after stream retrieved %d tuples, want %d", r.Cardinality(), n)
	}
}

// TestClientOpenPushedSelect: server-side selection streams only matches.
func TestClientOpenPushedSelect(t *testing.T) {
	_, c := startStreamServer(t, 600)
	cur, err := c.Open(lqp.Select("BIG", "K", rel.ThetaLT, rel.Int(10)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Drain(cur)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 10 {
		t.Fatalf("selected %d tuples, want 10", got.Cardinality())
	}
}

// TestClientOpenError: a failing local operation reports in the header and
// leaves the main connection usable.
func TestClientOpenError(t *testing.T) {
	_, c := startStreamServer(t, 10)
	if _, err := c.Open(lqp.Retrieve("MISSING")); err == nil {
		t.Fatal("missing relation accepted")
	}
	if _, err := c.Execute(lqp.Retrieve("BIG")); err != nil {
		t.Fatalf("main connection broken after stream error: %v", err)
	}
}

// TestClientOpenAbandoned: closing a stream cursor mid-flight costs only
// its own connection; the client and other streams keep working.
func TestClientOpenAbandoned(t *testing.T) {
	_, c := startStreamServer(t, 100000)
	cur, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want io.EOF", err)
	}
	cur2, err := c.Open(lqp.Retrieve("BIG"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Drain(cur2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 100000 {
		t.Fatalf("second stream retrieved %d tuples, want 100000", got.Cardinality())
	}
}

// TestClientOpenAfterClose: a closed client refuses to dial new stream
// connections — shutdown actually stops streamed work.
func TestClientOpenAfterClose(t *testing.T) {
	srv := NewServer(streamDB(10))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("closed client opened a stream")
	}
}

// TestClientTimeoutOnStalledServer: a server that accepts but never
// answers trips the client deadline instead of wedging the query, and the
// poisoned connection is retired from the pool — the next call dials afresh
// and is bounded by its own deadline, never wedged.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn // hold open, never respond
		}
	}()
	defer func() {
		for {
			select {
			case conn := <-accepted:
				conn.Close()
			default:
				return
			}
		}
	}()

	start := time.Now()
	c := newClient(ln.Addr().String(), 1)
	c.Timeout = 100 * time.Millisecond
	if _, err := c.Execute(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("stalled server produced a result")
	} else if !strings.Contains(err.Error(), "wire:") {
		t.Fatalf("error = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not fire; call took %v", elapsed)
	}
	// The poisoned connection was retired; the next call dials afresh and is
	// again bounded by the deadline (generous slack for loaded CI runners).
	start = time.Now()
	if _, err := c.Execute(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("stalled server produced a result on a fresh connection")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry did not respect the deadline; call took %v", elapsed)
	}

	// The streaming path times out too.
	if _, err := c.Open(lqp.Retrieve("BIG")); err == nil {
		t.Fatal("stalled server produced a stream")
	}
}
