package wire

import (
	"testing"

	"repro/internal/lqp"
	"repro/internal/rel"
)

func TestClientInsert(t *testing.T) {
	_, c := serve(t)
	err := c.Insert("FIRM", []rel.Tuple{
		{rel.String("Polygen"), rel.String("A. Mediator"), rel.String("Cambridge, MA")},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Execute(lqp.Retrieve("FIRM"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cardinality() != 4 {
		t.Fatalf("cardinality after insert = %d", r.Cardinality())
	}
	found := false
	for _, tu := range r.Tuples {
		if tu[0].Str() == "Polygen" {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted row not retrieved")
	}
}

func TestClientInsertErrors(t *testing.T) {
	_, c := serve(t)
	// Key violation surfaces as an application error, not a transport one.
	err := c.Insert("FIRM", []rel.Tuple{
		{rel.String("IBM"), rel.String("dup"), rel.String("dup")},
	})
	if err == nil {
		t.Fatal("duplicate key accepted over the wire")
	}
	if err := c.Insert("NOPE", []rel.Tuple{{rel.String("x")}}); err == nil {
		t.Fatal("insert into missing relation accepted")
	}
}

func TestMediatorServerRefusesInsert(t *testing.T) {
	// A server without a local LQP must refuse writes cleanly.
	srv := &Server{WriteTimeout: DefaultTimeout}
	resp := srv.handle(request{Kind: "insert", Op: lqp.Op{Relation: "FIRM"}})
	if resp.Err == "" {
		t.Fatal("mediator-only server accepted an insert")
	}
}
