// Package wire implements the network protocol between the Polygen Query
// Processor and remote Local Query Processors (paper, Figure 1: the PQP
// "routes [local queries] to the Local Query Processors"). The protocol is
// gob-encoded messages over TCP in two shapes:
//
//   - request/response: one request carries one lqp.Op, one pushed-down
//     lqp.Plan, or a metadata query ("name", "relations", "stats"); one
//     response carries the materialized relation, the statistics, or an
//     error — the materializing path (Client.Execute / ExecutePlan /
//     Stats).
//   - streaming: an "open" (or "openplan") request is answered by a schema
//     header followed by row-batch frames and a final done frame, on a
//     connection dedicated to that stream — the streaming path
//     (Client.Open / OpenPlan). The server starts framing as soon as the
//     local operation yields rows, so remote retrieval overlaps with
//     PQP-side operator work; a pushed-down plan evaluates entirely
//     server-side, so only the filtered, narrowed rows are framed at all.
//
// Both directions guard against stalled peers: the client sets read/write
// deadlines around every exchange and every frame, the server sets write
// deadlines (and an optional idle read deadline), and transport errors
// close the connection — a wedged LQP fails a federation query instead of
// hanging it forever.
//
// Server serves a catalog.Database; Client implements lqp.LQP plus every
// optional capability (lqp.Streamer, lqp.PlanRunner, lqp.PlanStreamer,
// lqp.StatsProvider), so the PQP — and the cost-based optimizer behind it —
// is oblivious to whether an LQP is in-process or remote.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

// DefaultTimeout is the deadline applied to wire reads and writes when the
// Client or Server does not set its own: long enough for a big batch over a
// wide-area link, short enough that a dead peer cannot wedge a query.
const DefaultTimeout = 2 * time.Minute

// request is one client→server message.
type request struct {
	// Kind selects the operation: "name", "relations", "stats", "execute",
	// "open", "execplan" or "openplan".
	Kind string
	// Op is the local operation for Kind == "execute" / "open".
	Op lqp.Op
	// Plan is the pushed-down subplan for Kind == "execplan" / "openplan":
	// the whole pipeline evaluates server-side and only the filtered,
	// narrowed rows cross the wire — the transfer saving the cost-based
	// optimizer plans for.
	Plan lqp.Plan
}

// response is one server→client message.
type response struct {
	Err       string
	Name      string
	Relations []string
	Relation  flatRelation
	HasRel    bool
	// Stats carries the per-relation statistics for Kind == "stats".
	Stats []lqp.RelationStats
}

// frame is one row batch of a streamed result ("open"). A stream is a
// response carrying the schema (an empty Relation) followed by frames until
// Done or Err. Tuples is the cursor batch as-is: gob encodes the named
// slice types by their underlying form, so no per-batch conversion is
// needed on either side.
type frame struct {
	Err    string
	Done   bool
	Tuples []rel.Tuple
}

// flatRelation is the wire form of rel.Relation: schema flattened into the
// exported Attr structs, values relying on rel.Value's gob encoding. In a
// stream header Tuples is empty; the rows follow in frames.
type flatRelation struct {
	Name   string
	Attrs  []rel.Attr
	Tuples [][]rel.Value
}

func flatten(r *rel.Relation) flatRelation {
	f := flatRelation{Name: r.Name, Attrs: r.Schema.Attrs(), Tuples: make([][]rel.Value, len(r.Tuples))}
	for i, t := range r.Tuples {
		f.Tuples[i] = t
	}
	return f
}

func (f flatRelation) unflatten() *rel.Relation {
	r := rel.NewRelation(f.Name, rel.NewSchema(f.Attrs...))
	for _, t := range f.Tuples {
		r.Tuples = append(r.Tuples, rel.Tuple(t))
	}
	return r
}

// Server exposes one local database as an LQP over TCP.
type Server struct {
	local *lqp.Local

	// WriteTimeout bounds every response or frame write (defaults to
	// DefaultTimeout); a client that stops reading gets its connection
	// dropped instead of blocking the serving goroutine forever.
	WriteTimeout time.Duration
	// IdleTimeout, when positive, bounds the wait for the next request on a
	// connection; idle clients beyond it are disconnected. Zero (the
	// default) keeps idle connections open indefinitely — the PQP holds one
	// connection per LQP across queries.
	IdleTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer returns a server for db.
func NewServer(db *catalog.Database) *Server {
	return &Server{local: lqp.NewLocal(db), WriteTimeout: DefaultTimeout, conns: make(map[net.Conn]struct{})}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away, stalled or sent garbage; drop the connection
		}
		if req.Kind == "open" || req.Kind == "openplan" {
			open := func() (rel.Cursor, string, error) {
				if req.Kind == "openplan" {
					cur, err := s.local.OpenPlan(req.Plan)
					return cur, req.Plan.Relation(), err
				}
				cur, err := s.local.Open(req.Op)
				return cur, req.Op.Relation, err
			}
			if err := s.serveStream(conn, enc, open); err != nil {
				return // transport failure mid-stream; the connection is poisoned
			}
			continue
		}
		resp := s.handle(req)
		if err := s.send(conn, enc, resp); err != nil {
			return
		}
	}
}

// send encodes one message under the write deadline.
func (s *Server) send(conn net.Conn, enc *gob.Encoder, msg any) error {
	timeout := s.WriteTimeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	return enc.Encode(msg)
}

// serveStream answers one "open"/"openplan" request: a schema header
// response, then row-batch frames, then a done frame. A local-operation
// error before any row is reported in the header; one mid-stream is
// reported in an error frame. The returned error is non-nil only for
// transport failures.
func (s *Server) serveStream(conn net.Conn, enc *gob.Encoder, open func() (rel.Cursor, string, error)) error {
	cur, name, err := open()
	if err != nil {
		return s.send(conn, enc, response{Err: err.Error()})
	}
	defer cur.Close()
	header := flatRelation{Name: name, Attrs: cur.Schema().Attrs()}
	if err := s.send(conn, enc, response{Relation: header, HasRel: true}); err != nil {
		return err
	}
	for {
		batch, err := cur.Next()
		if err == io.EOF {
			return s.send(conn, enc, frame{Done: true})
		}
		if err != nil {
			return s.send(conn, enc, frame{Err: err.Error()})
		}
		if err := s.send(conn, enc, frame{Tuples: batch}); err != nil {
			return err
		}
	}
}

func (s *Server) handle(req request) response {
	switch req.Kind {
	case "name":
		return response{Name: s.local.Name()}
	case "relations":
		rels, err := s.local.Relations()
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relations: rels}
	case "execute":
		r, err := s.local.Execute(req.Op)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relation: flatten(r), HasRel: true}
	case "execplan":
		r, err := s.local.ExecutePlan(req.Plan)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relation: flatten(r), HasRel: true}
	case "stats":
		st, err := s.local.Stats()
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Stats: st}
	default:
		return response{Err: fmt.Sprintf("wire: unknown request kind %q", req.Kind)}
	}
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// Client is a remote LQP. It implements lqp.LQP over a single TCP
// connection — requests are serialized by a mutex (the PQP issues local
// queries one plan step at a time, and independent LQPs use independent
// clients) — and lqp.Streamer over one dedicated connection per stream, so
// several streams and the request/response exchange never block each other.
type Client struct {
	// Timeout bounds every wire read and write: the initial exchange of a
	// round trip, and each frame of a stream. Zero means DefaultTimeout.
	Timeout time.Duration

	addr string

	mu     sync.Mutex
	conn   net.Conn
	dec    *gob.Decoder
	enc    *gob.Encoder
	name   string
	broken bool
}

// Dial connects to a wire server and caches the remote database name.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{addr: addr, conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
	resp, err := c.roundTrip(request{Kind: "name"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		return response{}, fmt.Errorf("wire: connection to %s is closed after an earlier failure", c.addr)
	}
	// A transport failure (including a blown deadline) poisons the gob
	// stream; close the connection so a stalled LQP cannot wedge the
	// federation query, and fail subsequent calls fast.
	fail := func(err error) (response, error) {
		c.broken = true
		c.conn.Close()
		return response{}, err
	}
	c.conn.SetDeadline(time.Now().Add(c.timeout()))
	defer c.conn.SetDeadline(time.Time{})
	if err := c.enc.Encode(req); err != nil {
		return fail(fmt.Errorf("wire: send: %w", err))
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return fail(fmt.Errorf("wire: server closed connection"))
		}
		return fail(fmt.Errorf("wire: receive: %w", err))
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Name implements lqp.LQP.
func (c *Client) Name() string { return c.name }

// Relations implements lqp.LQP.
func (c *Client) Relations() ([]string, error) {
	resp, err := c.roundTrip(request{Kind: "relations"})
	if err != nil {
		return nil, err
	}
	return resp.Relations, nil
}

// Execute implements lqp.LQP.
func (c *Client) Execute(op lqp.Op) (*rel.Relation, error) {
	resp, err := c.roundTrip(request{Kind: "execute", Op: op})
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		return nil, fmt.Errorf("wire: execute response carried no relation")
	}
	return resp.Relation.unflatten(), nil
}

// ExecutePlan implements lqp.PlanRunner: the whole pushed-down subplan
// evaluates server-side and only its final result crosses the wire.
func (c *Client) ExecutePlan(p lqp.Plan) (*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(request{Kind: "execplan", Plan: p})
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		return nil, fmt.Errorf("wire: execplan response carried no relation")
	}
	return resp.Relation.unflatten(), nil
}

// Stats implements lqp.StatsProvider over the wire.
func (c *Client) Stats() ([]lqp.RelationStats, error) {
	resp, err := c.roundTrip(request{Kind: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Open implements lqp.Streamer: the operation is evaluated remotely and its
// rows arrive as frames on a connection dedicated to this stream, so the
// server transfers ahead (into the sockets' buffers) while the caller
// consumes — remote retrieval overlaps with PQP-side work. The cursor must
// be closed; an abandoned stream only costs its own connection.
func (c *Client) Open(op lqp.Op) (rel.Cursor, error) {
	return c.openStream(request{Kind: "open", Op: op})
}

// OpenPlan implements lqp.PlanStreamer: the subplan evaluates remotely and
// only the filtered row batches stream back.
func (c *Client) OpenPlan(p lqp.Plan) (rel.Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return c.openStream(request{Kind: "openplan", Plan: p})
}

func (c *Client) openStream(req request) (rel.Cursor, error) {
	c.mu.Lock()
	broken := c.broken
	c.mu.Unlock()
	if broken {
		return nil, fmt.Errorf("wire: connection to %s is closed after an earlier failure", c.addr)
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout())
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	sc := &streamCursor{conn: conn, dec: gob.NewDecoder(conn), timeout: c.timeout()}
	conn.SetDeadline(time.Now().Add(sc.timeout))
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	var resp response
	if err := sc.dec.Decode(&resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	if resp.Err != "" {
		conn.Close()
		return nil, errors.New(resp.Err)
	}
	if !resp.HasRel {
		conn.Close()
		return nil, fmt.Errorf("wire: open response carried no schema")
	}
	sc.schema = rel.NewSchema(resp.Relation.Attrs...)
	return sc, nil
}

// streamCursor decodes the frames of one streamed result.
type streamCursor struct {
	conn    net.Conn
	dec     *gob.Decoder
	schema  *rel.Schema
	timeout time.Duration
	done    bool
	closed  bool
}

func (sc *streamCursor) Schema() *rel.Schema { return sc.schema }

func (sc *streamCursor) Next() ([]rel.Tuple, error) {
	if sc.done || sc.closed {
		return nil, io.EOF
	}
	for {
		sc.conn.SetReadDeadline(time.Now().Add(sc.timeout))
		var f frame
		if err := sc.dec.Decode(&f); err != nil {
			sc.done = true
			sc.conn.Close()
			sc.closed = true
			return nil, fmt.Errorf("wire: receive frame: %w", err)
		}
		switch {
		case f.Err != "":
			sc.done = true
			return nil, errors.New(f.Err)
		case f.Done:
			sc.done = true
			return nil, io.EOF
		case len(f.Tuples) > 0:
			return f.Tuples, nil
		}
	}
}

func (sc *streamCursor) Close() error {
	if sc.closed {
		return nil
	}
	sc.closed = true
	return sc.conn.Close()
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	return c.conn.Close()
}

var (
	_ lqp.LQP           = (*Client)(nil)
	_ lqp.Streamer      = (*Client)(nil)
	_ lqp.PlanRunner    = (*Client)(nil)
	_ lqp.PlanStreamer  = (*Client)(nil)
	_ lqp.StatsProvider = (*Client)(nil)
)
