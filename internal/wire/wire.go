// Package wire implements the network protocol between the Polygen Query
// Processor and remote Local Query Processors (paper, Figure 1: the PQP
// "routes [local queries] to the Local Query Processors"). The protocol is a
// simple request/response exchange of gob-encoded messages over TCP: one
// request carries one lqp.Op, one response carries the resulting relation or
// an error.
//
// Server serves a catalog.Database; Client implements lqp.LQP, so the PQP is
// oblivious to whether an LQP is in-process or remote.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/catalog"
	"repro/internal/lqp"
	"repro/internal/rel"
)

// request is one client→server message.
type request struct {
	// Kind selects the operation: "name", "relations" or "execute".
	Kind string
	// Op is the local operation for Kind == "execute".
	Op lqp.Op
}

// response is one server→client message.
type response struct {
	Err       string
	Name      string
	Relations []string
	Relation  flatRelation
	HasRel    bool
}

// flatRelation is the wire form of rel.Relation: schema flattened into the
// exported Attr structs, values relying on rel.Value's gob encoding.
type flatRelation struct {
	Name   string
	Attrs  []rel.Attr
	Tuples [][]rel.Value
}

func flatten(r *rel.Relation) flatRelation {
	f := flatRelation{Name: r.Name, Attrs: r.Schema.Attrs(), Tuples: make([][]rel.Value, len(r.Tuples))}
	for i, t := range r.Tuples {
		f.Tuples[i] = t
	}
	return f
}

func (f flatRelation) unflatten() *rel.Relation {
	r := rel.NewRelation(f.Name, rel.NewSchema(f.Attrs...))
	for _, t := range f.Tuples {
		r.Tuples = append(r.Tuples, rel.Tuple(t))
	}
	return r
}

// Server exposes one local database as an LQP over TCP.
type Server struct {
	local *lqp.Local

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer returns a server for db.
func NewServer(db *catalog.Database) *Server {
	return &Server{local: lqp.NewLocal(db), conns: make(map[net.Conn]struct{})}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away or sent garbage; drop the connection
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req request) response {
	switch req.Kind {
	case "name":
		return response{Name: s.local.Name()}
	case "relations":
		rels, err := s.local.Relations()
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relations: rels}
	case "execute":
		r, err := s.local.Execute(req.Op)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relation: flatten(r), HasRel: true}
	default:
		return response{Err: fmt.Sprintf("wire: unknown request kind %q", req.Kind)}
	}
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// Client is a remote LQP. It implements lqp.LQP over a single TCP
// connection; requests are serialized by a mutex (the PQP issues local
// queries one plan step at a time, and independent LQPs use independent
// clients).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
	name string
}

// Dial connects to a wire server and caches the remote database name.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}
	resp, err := c.roundTrip(request{Kind: "name"})
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return response{}, fmt.Errorf("wire: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return response{}, fmt.Errorf("wire: server closed connection")
		}
		return response{}, fmt.Errorf("wire: receive: %w", err)
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// Name implements lqp.LQP.
func (c *Client) Name() string { return c.name }

// Relations implements lqp.LQP.
func (c *Client) Relations() ([]string, error) {
	resp, err := c.roundTrip(request{Kind: "relations"})
	if err != nil {
		return nil, err
	}
	return resp.Relations, nil
}

// Execute implements lqp.LQP.
func (c *Client) Execute(op lqp.Op) (*rel.Relation, error) {
	resp, err := c.roundTrip(request{Kind: "execute", Op: op})
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		return nil, fmt.Errorf("wire: execute response carried no relation")
	}
	return resp.Relation.unflatten(), nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

var _ lqp.LQP = (*Client)(nil)
