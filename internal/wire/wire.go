// Package wire implements the network protocols of the polygen federation:
// between the Polygen Query Processor and remote Local Query Processors
// (paper, Figure 1: the PQP "routes [local queries] to the Local Query
// Processors"), and between thin clients and a mediator service wrapping a
// whole PQP (query.go — the paper's §V System P made networkable). Both are
// gob-encoded messages over TCP in two shapes:
//
//   - request/response: one request carries one lqp.Op, one pushed-down
//     lqp.Plan, a metadata query ("name", "relations", "stats"), or — on a
//     mediator server — a whole polygen query; one response carries the
//     materialized relation (plain or source-tagged), the statistics, or an
//     error.
//   - streaming: an "open"/"openplan" (or mediator "queryopen") request is
//     answered by a schema header followed by row-batch frames and a final
//     done frame, on a connection dedicated to that stream. The server
//     starts framing as soon as the operation yields rows, so remote
//     retrieval overlaps with client-side work; a pushed-down plan
//     evaluates entirely server-side, so only the filtered, narrowed rows
//     are framed at all.
//
// Both directions guard against stalled peers: the client sets read/write
// deadlines around every exchange and every frame, the server sets write
// deadlines (and an optional idle read deadline), and transport errors
// close the connection — a wedged peer fails a federation query instead of
// hanging it forever.
//
// Server serves a catalog.Database (NewServer) and/or fronts a mediator
// (NewMediatorServer); Client implements lqp.LQP plus every optional
// capability (lqp.Streamer, lqp.PlanRunner, lqp.PlanStreamer,
// lqp.StatsProvider), so the PQP — and the cost-based optimizer behind it —
// is oblivious to whether an LQP is in-process or remote. A Client holds a
// bounded pool of connections (DefaultMaxConns; DialPool sizes it), so
// concurrent Execute/ExecutePlan/Stats round trips against one server
// proceed in parallel instead of serializing on a single gob stream, and a
// transport failure poisons only the connection it happened on. Streams
// always run on their own dedicated connection, outside the pool.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// DefaultTimeout is the deadline applied to wire reads and writes when the
// Client or Server does not set its own: long enough for a big batch over a
// wide-area link, short enough that a dead peer cannot wedge a query.
const DefaultTimeout = 2 * time.Minute

// DefaultMaxConns is the connection-pool bound of a Client built by Dial:
// enough parallelism for a PQP fanning concurrent round trips at one LQP
// (or a handful of shell sessions sharing a mediator client) without
// letting one client monopolize a server's accept queue.
const DefaultMaxConns = 4

// request is one client→server message.
type request struct {
	// Kind selects the operation: "name", "relations", "stats", "execute",
	// "open", "execplan", "openplan", "insert" against an LQP server;
	// "session", "endsession", "query", "queryopen" against a mediator
	// server; "ping" against either (the health-check probe: the cheapest
	// possible round trip, answered without touching the database or the
	// mediator).
	Kind string
	// Op is the local operation for Kind == "execute" / "open"; for
	// "insert" only Op.Relation is meaningful (the target relation).
	Op lqp.Op
	// Tuples carries the rows for Kind == "insert".
	Tuples []rel.Tuple
	// Plan is the pushed-down subplan for Kind == "execplan" / "openplan":
	// the whole pipeline evaluates server-side and only the filtered,
	// narrowed rows cross the wire — the transfer saving the cost-based
	// optimizer plans for.
	Plan lqp.Plan
	// Session carries the session ID for mediator requests ("" runs the
	// query sessionless).
	Session string
	// Text is the polygen query for Kind == "query" / "queryopen".
	Text string
	// Algebraic selects the algebra parser instead of the SQL front end for
	// Kind == "query" / "queryopen".
	Algebraic bool
	// Policy is the degradation policy a "session" request asks for
	// ("", "fail" or "partial"); the mediator's default applies when empty.
	Policy string
	// Codec asks for a frame codec on stream kinds ("bin" for the binary
	// columnar codec of codec.go; empty for gob row frames). A server that
	// does not understand the field — or refuses the codec — streams gob
	// frames, and says so by omitting Codec from the stream header response.
	Codec string
}

// response is one server→client message.
type response struct {
	Err       string
	Name      string
	Relations []string
	Relation  flatRelation
	HasRel    bool
	// Stats carries the per-relation statistics for Kind == "stats".
	Stats []lqp.RelationStats
	// Session / Schemes answer a "session" request (query.go).
	Session SessionInfo
	// Poly carries a source-tagged result for Kind == "query", or the
	// schema header of a "queryopen" stream.
	Poly    flatPoly
	HasPoly bool
	// PlanRows is the executed (optimized) plan, one row per line, for
	// mediator queries.
	PlanRows []string
	// CacheHit reports that the mediator answered from its plan cache.
	CacheHit bool
	// Diag is the query's fault-handling record (retries, hedges, replicas
	// used, and — under the partial degradation policy — the sources the
	// answer is missing) for mediator "query" answers.
	Diag federation.Report
	// Codec, on a stream header, confirms the frame codec the server will
	// use ("bin"); empty means gob row frames follow (the server is old or
	// refused the requested codec).
	Codec string
}

// frame is one row batch of a streamed result. A stream is a response
// carrying the schema followed by frames until Done or Err. Tuples carries
// plain rows ("open"/"openplan"); Poly carries source-tagged rows
// ("queryopen"), each frame with its own source-name directory (query.go).
type frame struct {
	Err    string
	Done   bool
	Tuples []rel.Tuple
	// Poly / Sources carry one tagged batch (see flatPoly).
	Poly    []flatTuple
	Sources []string
	// Diag rides the Done frame of a "queryopen" stream: the query's final
	// fault-handling record, complete only once the answer has fully
	// streamed (mid-stream failovers count into it).
	Diag federation.Report
	// Bin carries one binary columnar frame (codec.go) when the stream
	// negotiated the "bin" codec; Tuples and Poly stay empty then. The
	// payload travels as one opaque byte slice inside the gob envelope
	// because a gob decoder reads ahead and cannot share the connection
	// with raw interleaved bytes.
	Bin []byte
}

// flatRelation is the wire form of rel.Relation: schema flattened into the
// exported Attr structs, values relying on rel.Value's gob encoding. In a
// stream header Tuples is empty; the rows follow in frames.
type flatRelation struct {
	Name  string
	Attrs []rel.Attr
	// Tuples encodes identically to the [][]rel.Value it once was —
	// rel.Tuple is []rel.Value — but needs no element-copy loop on either
	// side: flatten shares the relation's tuple slice as-is.
	Tuples []rel.Tuple
}

func flatten(r *rel.Relation) flatRelation {
	return flatRelation{Name: r.Name, Attrs: r.Schema.Attrs(), Tuples: r.Tuples}
}

func (f flatRelation) unflatten() *rel.Relation {
	r := rel.NewRelation(f.Name, rel.NewSchema(f.Attrs...))
	r.Tuples = f.Tuples
	return r
}

// LocalLQP is the full-capability LQP a Server serves: the base interface
// plus the streaming, plan-pushdown and statistics capabilities. lqp.Local
// satisfies it, and so does any wrapper that forwards all five interfaces —
// faultinject.Flaky wraps a Local this way so cmd/lqpd can serve a
// deliberately unreliable replica for chaos testing.
type LocalLQP interface {
	lqp.LQP
	lqp.Streamer
	lqp.PlanRunner
	lqp.PlanStreamer
	lqp.StatsProvider
}

// Server exposes one local database as an LQP, a mediator as a query
// service, or both, over TCP.
type Server struct {
	local    LocalLQP
	mediator Mediator

	// ConnHook, when set, wraps every accepted connection before it is
	// served — the fault-injection harness uses it to cut, stall or delay
	// the transport mid-exchange (faultinject.FlakyConn). Set before Listen.
	ConnHook func(net.Conn) net.Conn

	// LegacyFrames refuses the binary frame codec: every stream falls back
	// to gob row frames regardless of what clients request. An escape hatch
	// (the daemons' -legacy-frames flag) for debugging and for proving the
	// two framings byte-for-answer identical.
	LegacyFrames bool

	// WriteTimeout bounds every response or frame write (defaults to
	// DefaultTimeout); a client that stops reading gets its connection
	// dropped instead of blocking the serving goroutine forever.
	WriteTimeout time.Duration
	// IdleTimeout, when positive, bounds the wait for the next request on a
	// connection; idle clients beyond it are disconnected. Zero (the
	// default) keeps idle connections open indefinitely — the PQP holds
	// pooled connections per LQP across queries.
	IdleTimeout time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	active   sync.WaitGroup
}

// NewServer returns an LQP server for db.
func NewServer(db *catalog.Database) *Server {
	return NewServerFor(lqp.NewLocal(db))
}

// NewServerFor returns an LQP server for any full-capability LQP — the seam
// the fault-injection harness uses to serve a faultinject.Flaky-wrapped
// database (cmd/lqpd's -chaos-* flags).
func NewServerFor(l LocalLQP) *Server {
	return &Server{local: l, WriteTimeout: DefaultTimeout, conns: make(map[net.Conn]struct{})}
}

// NewMediatorServer returns a server fronting m: it answers "session",
// "query" and "queryopen" requests (plus "name" with the federation name)
// and refuses the LQP operation kinds — a mediator exposes answers, not its
// local databases.
func NewMediatorServer(m Mediator) *Server {
	return &Server{mediator: m, WriteTimeout: DefaultTimeout, conns: make(map[net.Conn]struct{})}
}

// serverName is what a "name" request answers: the local database for an
// LQP server, the federation name for a mediator server.
func (s *Server) serverName() string {
	if s.local != nil {
		return s.local.Name()
	}
	if s.mediator != nil {
		return s.mediator.Federation()
	}
	return ""
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and begins accepting
// connections in a background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.ConnHook != nil {
			conn = s.ConnHook(conn)
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// beginRequest marks one request in flight, unless the server is draining
// or closed — then the request is refused and the connection dropped.
// Shutdown waits for every in-flight request (including open streams) to
// finish before tearing connections down.
func (s *Server) beginRequest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining {
		return false
	}
	s.active.Add(1)
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if s.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return // client went away, stalled or sent garbage; drop the connection
		}
		if !s.beginRequest() {
			return // draining: finish nothing new on this connection
		}
		err := s.dispatch(conn, enc, req)
		s.active.Done()
		if err != nil {
			return // transport failure; the connection is poisoned
		}
	}
}

// dispatch serves one decoded request. The returned error is non-nil only
// for transport failures; application errors travel in responses.
func (s *Server) dispatch(conn net.Conn, enc *gob.Encoder, req request) error {
	switch req.Kind {
	case "open", "openplan":
		open := func() (rel.Cursor, string, error) {
			if s.local == nil {
				return nil, "", fmt.Errorf("wire: server %q does not serve local operations", s.serverName())
			}
			if req.Kind == "openplan" {
				cur, err := s.local.OpenPlan(req.Plan)
				return cur, req.Plan.Relation(), err
			}
			cur, err := s.local.Open(req.Op)
			return cur, req.Op.Relation, err
		}
		return s.serveStream(conn, enc, open, s.useBinary(req))
	case "queryopen":
		return s.serveQueryStream(conn, enc, req)
	default:
		return s.send(conn, enc, s.handle(req))
	}
}

// send encodes one message under the write deadline.
func (s *Server) send(conn net.Conn, enc *gob.Encoder, msg any) error {
	timeout := s.WriteTimeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	return enc.Encode(msg)
}

// useBinary decides a stream's frame codec: binary when the client asked
// for it and the server allows it.
func (s *Server) useBinary(req request) bool {
	return req.Codec == codecBinary && !s.LegacyFrames
}

// serveStream answers one "open"/"openplan" request: a schema header
// response, then row-batch frames, then a done frame. A local-operation
// error before any row is reported in the header; one mid-stream is
// reported in an error frame. The returned error is non-nil only for
// transport failures.
//
// With the binary codec negotiated, each batch ships as one columnar
// payload: cursors with the columnar capability (rel.ColCursor) hand their
// batches over as-is, others are columnarized per batch; the encode buffer
// is reused across frames (gob copies the bytes into the envelope).
func (s *Server) serveStream(conn net.Conn, enc *gob.Encoder, open func() (rel.Cursor, string, error), binary bool) error {
	cur, name, err := open()
	if err != nil {
		return s.send(conn, enc, response{Err: err.Error()})
	}
	defer cur.Close()
	header := response{Relation: flatRelation{Name: name, Attrs: cur.Schema().Attrs()}, HasRel: true}
	if binary {
		header.Codec = codecBinary
	}
	if err := s.send(conn, enc, header); err != nil {
		return err
	}
	schema := cur.Schema()
	cc, _ := cur.(rel.ColCursor)
	var buf []byte
	for {
		if binary {
			cb, err := nextRelColBatch(cur, cc, schema)
			if err == io.EOF {
				return s.send(conn, enc, frame{Done: true})
			}
			if err != nil {
				return s.send(conn, enc, frame{Err: err.Error()})
			}
			buf = appendRelFrame(buf[:0], cb)
			if err := s.send(conn, enc, frame{Bin: buf}); err != nil {
				return err
			}
			continue
		}
		batch, err := cur.Next()
		if err == io.EOF {
			return s.send(conn, enc, frame{Done: true})
		}
		if err != nil {
			return s.send(conn, enc, frame{Err: err.Error()})
		}
		if err := s.send(conn, enc, frame{Tuples: batch}); err != nil {
			return err
		}
	}
}

// nextRelColBatch pulls the next batch in columnar form: natively from a
// columnar cursor, otherwise by columnarizing the row batch.
func nextRelColBatch(cur rel.Cursor, cc rel.ColCursor, schema *rel.Schema) (*rel.ColBatch, error) {
	if cc != nil {
		return cc.NextCol()
	}
	batch, err := cur.Next()
	if err != nil {
		return nil, err
	}
	return rel.FromTuples(schema, batch), nil
}

func (s *Server) handle(req request) response {
	switch req.Kind {
	case "name", "ping":
		// "ping" is the health-check probe: answered from memory, without
		// touching the database or the mediator, so it measures liveness and
		// transport alone.
		return response{Name: s.serverName()}
	case "session", "endsession", "query":
		return s.handleMediator(req)
	}
	if s.local == nil {
		return response{Err: fmt.Sprintf("wire: server %q does not serve local operations (request kind %q)", s.serverName(), req.Kind)}
	}
	switch req.Kind {
	case "relations":
		rels, err := s.local.Relations()
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relations: rels}
	case "execute":
		r, err := s.local.Execute(req.Op)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relation: flatten(r), HasRel: true}
	case "execplan":
		r, err := s.local.ExecutePlan(req.Plan)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Relation: flatten(r), HasRel: true}
	case "stats":
		st, err := s.local.Stats()
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Stats: st}
	case "insert":
		ins, ok := s.local.(lqp.Inserter)
		if !ok {
			return response{Err: fmt.Sprintf("wire: server %q does not accept writes", s.serverName())}
		}
		if err := ins.Insert(req.Op.Relation, req.Tuples); err != nil {
			return response{Err: err.Error()}
		}
		return response{Name: s.serverName()}
	default:
		return response{Err: fmt.Sprintf("wire: unknown request kind %q", req.Kind)}
	}
}

// Close stops accepting and tears down open connections, in-flight or not.
// It is idempotent; Shutdown is the graceful variant.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
		if errors.Is(err, net.ErrClosed) {
			err = nil // Shutdown already stopped the listener
		}
	}
	for c := range s.conns {
		c.Close()
	}
	return err
}

// Shutdown drains the server: it stops accepting connections and requests,
// waits up to d for the requests already in flight — including open streams
// — to complete, then closes everything. A non-positive d waits without
// bound. The error reports a blown deadline (connections were cut with
// requests still running); Shutdown after Close (or a second Shutdown) is a
// no-op.
func (s *Server) Shutdown(d time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.listener
	s.mu.Unlock()
	if ln != nil {
		ln.Close() // stop accepting; acceptLoop exits
	}
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	timedOut := false
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			timedOut = true
		}
	} else {
		<-done
	}
	err := s.Close()
	if timedOut {
		return fmt.Errorf("wire: shutdown deadline %v expired with requests in flight", d)
	}
	return err
}

// Client is a remote LQP or a mediator-service client. It holds a bounded
// pool of TCP connections: concurrent round trips (Execute, ExecutePlan,
// Stats, Query, ...) each check a connection out of the pool, dialing new
// ones up to the bound and queueing beyond it, so calls against one server
// proceed in parallel instead of serializing on a single gob stream. A
// transport failure closes only the connection it happened on; the next
// call dials afresh. Streams (Open, OpenPlan, OpenQuery) run on a dedicated
// connection per stream, outside the pool, so several streams and the
// request/response traffic never block each other; Close tears stream
// connections down too, so an in-flight stream fails fast instead of
// leaking.
type Client struct {
	// Timeout bounds every wire read and write: the initial exchange of a
	// round trip, and each frame of a stream. Zero means DefaultTimeout.
	// Set it before sharing the client across goroutines.
	Timeout time.Duration
	// Reg interns the source tags of mediator query results. Dial installs
	// a fresh registry; replace it (before first use) to share one registry
	// across clients.
	Reg *sourceset.Registry
	// LegacyFrames stops the client from requesting the binary frame codec:
	// streams carry gob row frames, as pre-codec clients sent them. Set it
	// before opening streams; the negotiation is per stream, so old servers
	// fall back to gob automatically even when this is false.
	LegacyFrames bool

	addr     string
	name     string
	maxConns int

	mu      sync.Mutex
	cond    *sync.Cond
	idle    []*clientConn
	live    map[net.Conn]struct{} // every pooled conn, checked out or idle
	nconns  int
	closed  bool
	streams map[net.Conn]struct{} // dedicated per-stream conns
}

// clientConn is one pooled connection with its gob codecs.
type clientConn struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
}

// Dial connects with a DefaultMaxConns connection pool and caches the
// remote server name.
func Dial(addr string) (*Client, error) {
	return DialPool(addr, DefaultMaxConns)
}

// DialPool connects with a connection pool bounded to maxConns (values < 1
// mean 1: the pre-pool single-connection behavior).
func DialPool(addr string, maxConns int) (*Client, error) {
	c := newClient(addr, maxConns)
	resp, err := c.roundTrip(request{Kind: "name"})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.name = resp.Name
	return c, nil
}

// newClient builds an unconnected client; connections are dialed lazily by
// the pool.
func newClient(addr string, maxConns int) *Client {
	if maxConns < 1 {
		maxConns = 1
	}
	c := &Client{
		addr:     addr,
		maxConns: maxConns,
		Reg:      sourceset.NewRegistry(),
		live:     make(map[net.Conn]struct{}),
		streams:  make(map[net.Conn]struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Client) errClosed() error {
	return fmt.Errorf("wire: client for %s is closed", c.addr)
}

// dialConn opens one pooled connection.
func (c *Client) dialConn() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout())
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, dec: gob.NewDecoder(conn), enc: gob.NewEncoder(conn)}, nil
}

// acquire checks a connection out of the pool: an idle one if available, a
// fresh dial while under the bound, otherwise it waits for a release.
// reused reports that the connection sat idle in the pool — it may have
// been dropped by the server since (idle timeout, restart), so a transport
// failure on it is retriable.
func (c *Client) acquire() (cc *clientConn, reused bool, err error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, false, c.errClosed()
		}
		if n := len(c.idle); n > 0 {
			cc := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			return cc, true, nil
		}
		if c.nconns < c.maxConns {
			c.nconns++
			c.mu.Unlock()
			cc, err := c.dialConn()
			c.mu.Lock()
			if err != nil {
				c.nconns--
				c.cond.Signal()
				c.mu.Unlock()
				return nil, false, err
			}
			if c.closed {
				c.nconns--
				c.cond.Signal()
				c.mu.Unlock()
				cc.conn.Close()
				return nil, false, c.errClosed()
			}
			c.live[cc.conn] = struct{}{}
			c.mu.Unlock()
			return cc, false, nil
		}
		c.cond.Wait()
	}
}

// release returns a connection to the pool, or retires it when the exchange
// failed (a transport error poisons the gob stream) or the client closed.
func (c *Client) release(cc *clientConn, broken bool) {
	c.mu.Lock()
	if broken || c.closed {
		c.nconns--
		delete(c.live, cc.conn)
		c.cond.Signal()
		c.mu.Unlock()
		cc.conn.Close()
		return
	}
	c.idle = append(c.idle, cc)
	c.cond.Signal()
	c.mu.Unlock()
}

func (c *Client) roundTrip(req request) (response, error) {
	resp, reused, err := c.roundTripOnce(req)
	if err != nil && reused && req.Kind != "endsession" && req.Kind != "insert" {
		// The failure happened on a connection that sat idle in the pool —
		// the server may have dropped it (idle timeout, restart) before the
		// request ever ran. The sibling idle connections are almost surely
		// stale from the same event, so flush them all and retry once; the
		// retry then dials fresh instead of drawing the next stale conn.
		// Every request kind is safe to replay except "endsession" (a
		// replayed close would mis-report an already-closed session) and
		// "insert" (the server may have applied the write before the
		// response was lost; a replay could double-apply, so the caller
		// gets the ambiguous transport error instead);
		// "session" is replay-tolerant in the weak sense that a lost
		// response orphans one server-side session until its idle expiry.
		c.flushIdle()
		resp, _, err = c.roundTripOnce(req)
	}
	if err != nil {
		return response{}, err
	}
	if resp.Err != "" {
		return response{}, errors.New(resp.Err)
	}
	return resp, nil
}

// flushIdle retires every idle pooled connection — called when one of them
// turned out stale, which means its siblings (dropped by the same server
// event) almost surely are too.
func (c *Client) flushIdle() {
	c.mu.Lock()
	stale := c.idle
	c.idle = nil
	for _, cc := range stale {
		c.nconns--
		delete(c.live, cc.conn)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, cc := range stale {
		cc.conn.Close()
	}
}

// roundTripOnce performs one request/response exchange on one pooled
// connection. The returned error is transport-level only (application
// errors travel in resp.Err); reused reports the connection came from the
// idle pool, making a transport failure retriable.
func (c *Client) roundTripOnce(req request) (response, bool, error) {
	cc, reused, err := c.acquire()
	if err != nil {
		return response{}, false, err
	}
	// A transport failure (including a blown deadline) poisons this
	// connection's gob stream; retire it so a stalled server cannot wedge
	// the pool, and let the next call dial afresh.
	cc.conn.SetDeadline(time.Now().Add(c.timeout()))
	if err := cc.enc.Encode(req); err != nil {
		c.release(cc, true)
		return response{}, reused, fmt.Errorf("wire: send to %s: %w", c.addr, err)
	}
	var resp response
	if err := cc.dec.Decode(&resp); err != nil {
		c.release(cc, true)
		if errors.Is(err, io.EOF) {
			return response{}, reused, fmt.Errorf("wire: server %s closed connection", c.addr)
		}
		return response{}, reused, fmt.Errorf("wire: receive from %s: %w", c.addr, err)
	}
	cc.conn.SetDeadline(time.Time{})
	c.release(cc, false)
	return resp, reused, nil
}

// Name implements lqp.LQP.
func (c *Client) Name() string { return c.name }

// Addr returns the endpoint address the client dials — the label the
// federation layer uses to name replicas in health reports and diagnostics.
func (c *Client) Addr() string { return c.addr }

// Ping performs one health-check round trip bounded by d (<= 0 means the
// client's Timeout): dial, "ping", response, close — always on a fresh,
// dedicated connection. Probing outside the pool keeps a health check
// honest (a wedged pool would otherwise block the probe that is supposed
// to detect the wedge) and exercises the same dial path a failover would.
func (c *Client) Ping(d time.Duration) error {
	if d <= 0 {
		d = c.timeout()
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return c.errClosed()
	}
	conn, err := net.DialTimeout("tcp", c.addr, d)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(d))
	if err := gob.NewEncoder(conn).Encode(request{Kind: "ping"}); err != nil {
		return fmt.Errorf("wire: send to %s: %w", c.addr, err)
	}
	var resp response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return fmt.Errorf("wire: receive from %s: %w", c.addr, err)
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Relations implements lqp.LQP.
func (c *Client) Relations() ([]string, error) {
	resp, err := c.roundTrip(request{Kind: "relations"})
	if err != nil {
		return nil, err
	}
	return resp.Relations, nil
}

// Execute implements lqp.LQP.
func (c *Client) Execute(op lqp.Op) (*rel.Relation, error) {
	resp, err := c.roundTrip(request{Kind: "execute", Op: op})
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		return nil, fmt.Errorf("wire: execute response carried no relation")
	}
	return resp.Relation.unflatten(), nil
}

// ExecutePlan implements lqp.PlanRunner: the whole pushed-down subplan
// evaluates server-side and only its final result crosses the wire.
func (c *Client) ExecutePlan(p lqp.Plan) (*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(request{Kind: "execplan", Plan: p})
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		return nil, fmt.Errorf("wire: execplan response carried no relation")
	}
	return resp.Relation.unflatten(), nil
}

// Insert implements lqp.Inserter over the wire: a nil return means the
// server acknowledged the write (durably, if it serves a -data-dir store
// with fsync=always). A transport error leaves the outcome unknown — the
// request is never replayed on a retried connection, because the server may
// have applied it before the response was lost.
func (c *Client) Insert(relation string, tuples []rel.Tuple) error {
	_, err := c.roundTrip(request{Kind: "insert", Op: lqp.Op{Relation: relation}, Tuples: tuples})
	return err
}

// Stats implements lqp.StatsProvider over the wire.
func (c *Client) Stats() ([]lqp.RelationStats, error) {
	resp, err := c.roundTrip(request{Kind: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// Open implements lqp.Streamer: the operation is evaluated remotely and its
// rows arrive as frames on a connection dedicated to this stream, so the
// server transfers ahead (into the sockets' buffers) while the caller
// consumes — remote retrieval overlaps with PQP-side work. The cursor must
// be closed; an abandoned stream only costs its own connection, and
// Client.Close tears it down with the rest.
func (c *Client) Open(op lqp.Op) (rel.Cursor, error) {
	return c.openStream(request{Kind: "open", Op: op})
}

// OpenPlan implements lqp.PlanStreamer: the subplan evaluates remotely and
// only the filtered row batches stream back.
func (c *Client) OpenPlan(p lqp.Plan) (rel.Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return c.openStream(request{Kind: "openplan", Plan: p})
}

// startStream dials a dedicated connection, registers it with the client
// (so Close can abort the stream), sends req and decodes the header
// response. On error nothing stays registered or open.
func (c *Client) startStream(req request) (net.Conn, *gob.Decoder, response, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, nil, response{}, c.errClosed()
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout())
	if err != nil {
		return nil, nil, response{}, fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, nil, response{}, c.errClosed()
	}
	c.streams[conn] = struct{}{}
	c.mu.Unlock()
	fail := func(err error) (net.Conn, *gob.Decoder, response, error) {
		c.unregisterStream(conn)
		conn.Close()
		return nil, nil, response{}, err
	}
	dec := gob.NewDecoder(conn)
	conn.SetDeadline(time.Now().Add(c.timeout()))
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return fail(fmt.Errorf("wire: send to %s: %w", c.addr, err))
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return fail(fmt.Errorf("wire: receive from %s: %w", c.addr, err))
	}
	if resp.Err != "" {
		return fail(errors.New(resp.Err))
	}
	return conn, dec, resp, nil
}

func (c *Client) unregisterStream(conn net.Conn) {
	c.mu.Lock()
	delete(c.streams, conn)
	c.mu.Unlock()
}

// streamCodec is the frame codec a client requests for its streams.
func (c *Client) streamCodec() string {
	if c.LegacyFrames {
		return ""
	}
	return codecBinary
}

func (c *Client) openStream(req request) (rel.Cursor, error) {
	req.Codec = c.streamCodec()
	conn, dec, resp, err := c.startStream(req)
	if err != nil {
		return nil, err
	}
	if !resp.HasRel {
		c.unregisterStream(conn)
		conn.Close()
		return nil, fmt.Errorf("wire: open response carried no schema")
	}
	return &streamCursor{
		client:  c,
		conn:    conn,
		dec:     dec,
		schema:  rel.NewSchema(resp.Relation.Attrs...),
		timeout: c.timeout(),
	}, nil
}

// streamCursor decodes the frames of one streamed result. It is a
// rel.ColCursor: on a binary-codec stream NextCol maps each frame onto
// column vectors with O(columns) allocations and Next is the batch's cached
// row view; on a gob stream Next returns the decoded rows as before and
// NextCol columnarizes them.
type streamCursor struct {
	client  *Client
	conn    net.Conn
	dec     *gob.Decoder
	schema  *rel.Schema
	timeout time.Duration
	done    bool
	closed  bool
}

func (sc *streamCursor) Schema() *rel.Schema { return sc.schema }

// nextFrame decodes frames until a batch arrives, in whichever framing the
// stream uses: exactly one of the returned batch forms is non-empty.
func (sc *streamCursor) nextFrame() ([]rel.Tuple, *rel.ColBatch, error) {
	if sc.done || sc.closed {
		return nil, nil, io.EOF
	}
	for {
		sc.conn.SetReadDeadline(time.Now().Add(sc.timeout))
		var f frame
		if err := sc.dec.Decode(&f); err != nil {
			sc.done = true
			sc.Close()
			return nil, nil, fmt.Errorf("wire: receive frame from %s: %w", sc.client.addr, err)
		}
		switch {
		case f.Err != "":
			sc.done = true
			return nil, nil, errors.New(f.Err)
		case f.Done:
			sc.done = true
			return nil, nil, io.EOF
		case len(f.Bin) > 0:
			cb, err := decodeRelFrame(f.Bin, sc.schema)
			if err != nil {
				sc.done = true
				sc.Close()
				return nil, nil, fmt.Errorf("wire: decode frame from %s: %w", sc.client.addr, err)
			}
			if cb.Len() == 0 {
				continue
			}
			return nil, cb, nil
		case len(f.Tuples) > 0:
			return f.Tuples, nil, nil
		}
	}
}

func (sc *streamCursor) Next() ([]rel.Tuple, error) {
	batch, cb, err := sc.nextFrame()
	if err != nil {
		return nil, err
	}
	if cb != nil {
		return cb.Rows(), nil
	}
	return batch, nil
}

// NextCol implements rel.ColCursor.
func (sc *streamCursor) NextCol() (*rel.ColBatch, error) {
	batch, cb, err := sc.nextFrame()
	if err != nil {
		return nil, err
	}
	if cb == nil {
		cb = rel.FromTuples(sc.schema, batch)
	}
	return cb, nil
}

func (sc *streamCursor) Close() error {
	if sc.closed {
		return nil
	}
	sc.closed = true
	if sc.client != nil {
		sc.client.unregisterStream(sc.conn)
	}
	return sc.conn.Close()
}

// Close tears down the pool and every in-flight stream. Round trips and
// stream reads in progress fail with a transport error; later calls fail
// fast with a closed-client error. Close is idempotent and safe to call
// concurrently with any other method.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.live)+len(c.streams))
	for conn := range c.live {
		conns = append(conns, conn)
	}
	for conn := range c.streams {
		conns = append(conns, conn)
	}
	c.idle = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	return nil
}

var (
	_ lqp.LQP           = (*Client)(nil)
	_ lqp.Streamer      = (*Client)(nil)
	_ lqp.PlanRunner    = (*Client)(nil)
	_ lqp.PlanStreamer  = (*Client)(nil)
	_ lqp.StatsProvider = (*Client)(nil)
	_ rel.ColCursor     = (*streamCursor)(nil)
)
