package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCoversEveryTaskOnce: every index runs exactly once, for pool sizes
// and task counts around the interesting boundaries.
func TestDoCoversEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			p := NewPool(workers)
			counts := make([]int32, n)
			p.Do(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: task %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestNilPoolRunsInline: the nil pool is the serial engine.
func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	sum := 0
	p.Do(5, func(i int) { sum += i }) // no atomics: must be single-goroutine
	if sum != 10 {
		t.Fatalf("sum = %d, want 10", sum)
	}
	ran := false
	p.Submit(func() { ran = true })
	if !ran {
		t.Fatal("nil pool Submit must run inline")
	}
}

// TestDoBoundsParallelism: concurrent executors never exceed the pool size,
// even when many Do calls share one pool.
func TestDoBoundsParallelism(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var cur, peak atomic.Int32
	task := func(int) {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
	}
	var wg sync.WaitGroup
	const callers = 4
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(50, task)
		}()
	}
	wg.Wait()
	// Each caller participates in its own Do; the pool adds at most
	// workers-1 helpers on top of all callers combined.
	if max := int32(callers + workers - 1); peak.Load() > max {
		t.Fatalf("peak concurrency %d exceeds callers+helpers bound %d", peak.Load(), max)
	}
}

// TestSubmitRunsEverything: submitted tasks all execute, whether on helpers
// or inline.
func TestSubmitRunsEverything(t *testing.T) {
	p := NewPool(2)
	var done sync.WaitGroup
	var n atomic.Int32
	for i := 0; i < 100; i++ {
		done.Add(1)
		p.Submit(func() {
			defer done.Done()
			n.Add(1)
		})
	}
	done.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 submitted tasks", n.Load())
	}
}

// TestDoPropagatesMemory: the caller observes task writes without its own
// synchronization (Do is a barrier).
func TestDoPropagatesMemory(t *testing.T) {
	p := NewPool(4)
	out := make([]int, 512)
	p.Do(len(out), func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
