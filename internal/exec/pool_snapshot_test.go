package exec

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotOccupancy pins the Snapshot contract the V$POOL virtual table
// and /metrics rely on: Busy stays in [0, Workers-1] for every snapshot,
// Helpers and Submits are monotonic, and the nil pool reads as the
// single-worker pool.
func TestSnapshotOccupancy(t *testing.T) {
	var nilPool *Pool
	if s := nilPool.Snapshot(); s != (PoolStats{Workers: 1}) {
		t.Errorf("nil pool snapshot = %+v, want {Workers:1}", s)
	}

	p := NewPool(4)
	done := make(chan struct{})
	var workWG, watchWG sync.WaitGroup

	for g := 0; g < 3; g++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for i := 0; i < 50; i++ {
				p.Do(8, func(int) { time.Sleep(50 * time.Microsecond) })
			}
		}()
	}

	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		var prev PoolStats
		for {
			select {
			case <-done:
				return
			default:
			}
			s := p.Snapshot()
			if s.Workers != 4 {
				t.Errorf("Workers = %d, want 4", s.Workers)
				return
			}
			if s.Busy < 0 || s.Busy > int64(s.Workers-1) {
				t.Errorf("Busy = %d outside [0, %d]", s.Busy, s.Workers-1)
				return
			}
			if s.Helpers < prev.Helpers || s.Submits < prev.Submits {
				t.Errorf("monotonic counters shrank: %+v then %+v", prev, s)
				return
			}
			prev = s
		}
	}()

	workWG.Wait()
	close(done)
	watchWG.Wait()

	s := p.Snapshot()
	if s.Busy != 0 {
		t.Errorf("idle pool Busy = %d, want 0", s.Busy)
	}
	if s.Helpers == 0 {
		t.Error("no helpers ever started despite contended parallel work")
	}
}
