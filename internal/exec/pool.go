// Package exec provides the shared bounded worker pool behind the engine's
// morsel-driven intra-operator parallelism (HyPer-style: work is cut into
// fixed-size morsels that idle workers pull, so skewed partitions cannot
// leave cores idle behind one straggler).
//
// One pool belongs to one PQP. Every parallel operator of every concurrent
// query on that PQP draws helpers from the same pool, so a mediator serving
// many sessions cannot oversubscribe the machine: the pool bounds the
// *extra* goroutines the engine adds on top of the request goroutines that
// exist anyway. A caller always executes work itself — helpers only join
// when a pool slot is free — which makes sharing deadlock-free by
// construction: no task ever waits for a slot to start.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded source of helper goroutines. The zero value and the nil
// pool are valid and mean "no helpers": every Do and Submit runs inline on
// the caller. Pools are safe for concurrent use and have no shutdown — an
// idle pool holds no goroutines, only a channel.
type Pool struct {
	workers int
	// extra is a semaphore over the workers-1 helper slots. Callers
	// participate in their own Do, so a pool of W allows W-way parallelism
	// for one caller and never more than (callers + W - 1) goroutines in
	// total across all concurrent callers.
	extra chan struct{}

	// Occupancy counters, maintained by tryAcquire/release and read by
	// Snapshot (the V$POOL virtual table and the /metrics endpoint). busy is
	// a gauge of helper slots currently held — never above workers-1 because
	// the semaphore bounds acquisition; helpers and submits are monotonic.
	busy    atomic.Int64
	helpers atomic.Int64 // cumulative helper-slot acquisitions
	submits atomic.Int64 // cumulative Submit calls (inline runs included)
}

// PoolStats is a point-in-time snapshot of a pool's occupancy.
type PoolStats struct {
	// Workers is the parallelism bound (caller + helper slots).
	Workers int
	// Busy is the number of helper slots held at snapshot time. It is
	// always in [0, Workers-1]: helpers beyond the semaphore's capacity are
	// never spawned, work runs inline instead.
	Busy int64
	// Helpers counts helper goroutines ever started (monotonic).
	Helpers int64
	// Submits counts Submit calls ever made, whether they ran on a helper
	// or inline (monotonic).
	Submits int64
}

// Snapshot returns the pool's occupancy counters. The gauge and the
// monotonic counters are read individually (not under one lock), so a
// snapshot taken during concurrent work is approximate but each field is
// individually exact; Busy ≤ Workers-1 holds for every snapshot. A nil
// pool snapshots as a single-worker pool that never spawned.
func (p *Pool) Snapshot() PoolStats {
	if p == nil {
		return PoolStats{Workers: 1}
	}
	return PoolStats{
		Workers: p.Workers(),
		Busy:    p.busy.Load(),
		Helpers: p.helpers.Load(),
		Submits: p.submits.Load(),
	}
}

// NewPool returns a pool allowing up to workers concurrent executors per
// Do (the caller plus workers-1 helpers). workers <= 0 means GOMAXPROCS.
// A pool of 1 never spawns: it is the serial engine with extra steps
// skipped.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, extra: make(chan struct{}, workers-1)}
}

// Workers returns the pool's parallelism bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

func (p *Pool) tryAcquire() bool {
	if p == nil || p.extra == nil {
		return false
	}
	select {
	case p.extra <- struct{}{}:
		// busy moves inside the slot's lifetime (incremented after the
		// semaphore admits, decremented before it releases), so every
		// snapshot observes busy ≤ slots held ≤ workers-1.
		p.busy.Add(1)
		p.helpers.Add(1)
		return true
	default:
		return false
	}
}

func (p *Pool) release() {
	p.busy.Add(-1)
	<-p.extra
}

// Do runs fn(0), …, fn(n-1), each exactly once, with up to Workers
// concurrent executors. Tasks are pulled off a shared atomic counter
// (morsel-driven), so an uneven task costs at most one straggler, not a
// static share of the work. The caller participates; helper goroutines are
// spawned only while a pool slot is immediately free, so concurrent Do
// calls on a shared pool degrade toward inline execution instead of
// oversubscribing or blocking. Do returns when every task has finished.
//
// fn must be safe to call from multiple goroutines for distinct task
// indices; tasks see all writes that happened before Do, and the caller
// sees all task writes after Do returns.
func (p *Pool) Do(n int, fn func(task int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p == nil || p.workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 1; spawned < n && spawned < p.workers && p.tryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer p.release()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Submit runs fn on a helper goroutine when a pool slot is free, inline
// otherwise. It is the fire-and-forget face of the pool, used by pipeline
// stages that overlap with their caller (ParallelCursor batch workers);
// completion is the submitter's business to track.
func (p *Pool) Submit(fn func()) {
	if p != nil {
		p.submits.Add(1)
	}
	if p.tryAcquire() {
		go func() {
			defer p.release()
			fn()
		}()
		return
	}
	fn()
}
