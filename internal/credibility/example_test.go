package credibility_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/credibility"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Example shows credibility-ranked conflict resolution during Coalesce:
// two sources disagree and the more credible one's datum wins, with the
// loser recorded as a consulted intermediate.
func Example() {
	reg := sourceset.NewRegistry()
	rumor := reg.Intern("RUMOR")
	wire := reg.Intern("WIRE")
	rank := credibility.NewRanking(reg, map[string]float64{
		"RUMOR": 0.2,
		"WIRE":  0.9,
	}, 0.5)

	alg := core.NewAlgebra(nil)
	alg.SetConflictHandler(rank.Handler())

	p := core.NewRelation("P", reg, core.Attr{Name: "X"}, core.Attr{Name: "Y"})
	p.Append(core.Tuple{
		{D: rel.String("bankrupt!"), O: sourceset.Of(rumor)},
		{D: rel.String("profitable"), O: sourceset.Of(wire)},
	})
	got, _ := alg.Coalesce(p, "X", "Y", "STATUS")
	fmt.Println(got.Tuples[0][0].Format(reg))
	// Output: profitable, {WIRE}, {RUMOR}
}
