package credibility

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
	"repro/internal/workload"
)

func setup() (*sourceset.Registry, *Ranking, sourceset.ID, sourceset.ID, sourceset.ID) {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	pd := reg.Intern("PD")
	cd := reg.Intern("CD")
	rank := NewRanking(reg, map[string]float64{"AD": 0.9, "PD": 0.5, "CD": 0.7}, 0.3)
	return reg, rank, ad, pd, cd
}

func TestSourceScores(t *testing.T) {
	reg, rank, ad, _, _ := setup()
	if rank.Source(ad) != 0.9 {
		t.Errorf("AD score = %v", rank.Source(ad))
	}
	other := reg.Intern("XX")
	if rank.Source(other) != 0.3 {
		t.Errorf("default score = %v", rank.Source(other))
	}
}

func TestSetMin(t *testing.T) {
	_, rank, ad, pd, cd := setup()
	if got := rank.SetMin(sourceset.Of(ad, pd, cd)); got != 0.5 {
		t.Errorf("min = %v, want 0.5", got)
	}
	if got := rank.SetMin(sourceset.Of(ad)); got != 0.9 {
		t.Errorf("single = %v", got)
	}
	if got := rank.SetMin(sourceset.Empty()); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestCellAndTupleScores(t *testing.T) {
	_, rank, ad, pd, _ := setup()
	c1 := core.Cell{D: rel.String("x"), O: sourceset.Of(ad), I: sourceset.Of(pd)}
	if got := rank.Cell(c1); got != 0.9 {
		t.Errorf("cell = %v (intermediates must not lower the score)", got)
	}
	c2 := core.Cell{D: rel.String("y"), O: sourceset.Of(pd)}
	nilCell := core.NilCell(sourceset.Of(ad))
	tup := core.Tuple{c1, c2, nilCell}
	if got := rank.Tuple(tup); got != 0.5 {
		t.Errorf("tuple = %v, want 0.5 (weakest non-nil cell)", got)
	}
	if got := rank.Tuple(core.Tuple{nilCell}); got != 0 {
		t.Errorf("all-nil tuple = %v, want 0", got)
	}
}

func TestHandlerPrefersCredibleSource(t *testing.T) {
	reg, rank, ad, pd, _ := setup()
	alg := core.NewAlgebra(nil)
	alg.SetConflictHandler(rank.Handler())
	p := core.NewRelation("P", reg, core.Attr{Name: "X"}, core.Attr{Name: "Y"})
	// X from PD (0.5) conflicts with Y from AD (0.9): AD's datum must win.
	p.Append(core.Tuple{
		{D: rel.String("pd-says"), O: sourceset.Of(pd)},
		{D: rel.String("ad-says"), O: sourceset.Of(ad)},
	})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	c := got.Tuples[0][0]
	if c.D.Str() != "ad-says" {
		t.Errorf("winner = %q, want ad-says", c.D.Str())
	}
	if !c.O.Equal(sourceset.Of(ad)) {
		t.Errorf("winner origin = %s", c.O.Format(reg))
	}
	if !c.I.Contains(pd) {
		t.Error("loser source must appear as an intermediate")
	}
}

func TestHandlerTieKeepsLeft(t *testing.T) {
	reg, rank, ad, _, _ := setup()
	alg := core.NewAlgebra(nil)
	alg.SetConflictHandler(rank.Handler())
	p := core.NewRelation("P", reg, core.Attr{Name: "X"}, core.Attr{Name: "Y"})
	p.Append(core.Tuple{
		{D: rel.String("left"), O: sourceset.Of(ad)},
		{D: rel.String("right"), O: sourceset.Of(ad)},
	})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0][0].D.Str() != "left" {
		t.Error("tie should keep the left datum")
	}
}

func TestFindConflicts(t *testing.T) {
	f := workload.New(workload.Config{
		Databases: 3, Entities: 100, Overlap: 1, Categories: 3,
		ConflictRate: 0.5, Seed: 21,
	})
	rank := NewRanking(f.Registry, map[string]float64{"D0": 0.9, "D1": 0.4, "D2": 0.6}, 0.5)
	conflicts, err := FindConflicts(f.Scheme, rank, identity.Exact{}, f.TaggedFragments()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) == 0 {
		t.Fatal("no conflicts found in a conflict-seeded federation")
	}
	for _, c := range conflicts {
		if c.Attr != "CAT" {
			t.Errorf("conflict on %s; only CAT is shared", c.Attr)
		}
		if len(c.Values) < 2 {
			t.Errorf("conflict with %d values", len(c.Values))
		}
		// Sorted by descending credibility.
		for i := 1; i < len(c.Values); i++ {
			if c.Values[i-1].Score < c.Values[i].Score {
				t.Errorf("values not sorted by score: %v", c.Values)
			}
		}
		if !strings.Contains(c.String(), "PENTITY.CAT") {
			t.Errorf("render = %q", c.String())
		}
	}
}

func TestFindConflictsCleanFederation(t *testing.T) {
	f := workload.New(workload.Config{Databases: 3, Entities: 50, Overlap: 1, Categories: 3, Seed: 2})
	conflicts, err := FindConflicts(f.Scheme, nil, nil, f.TaggedFragments()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Errorf("clean federation reported %d conflicts: %v", len(conflicts), conflicts[0])
	}
}

func TestFindConflictsMissingKey(t *testing.T) {
	f := workload.New(workload.Config{Databases: 2, Entities: 5, Overlap: 1, Categories: 2, Seed: 2})
	frag := f.TaggedFragments()[0]
	for i := range frag.Attrs {
		frag.Attrs[i].Polygen = "" // strip annotations
	}
	if _, err := FindConflicts(f.Scheme, nil, nil, frag); err == nil {
		t.Error("fragment without key annotation accepted")
	}
}
