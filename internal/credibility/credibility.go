// Package credibility implements the research direction the paper motivates
// source tagging with (§I, §V): "knowing the data source credibility will
// enable the user or the query processor to further resolve potential
// conflicts amongst the data retrieved from different sources".
//
// A Ranking assigns each local database a credibility score. From it the
// package derives (a) per-cell and per-tuple credibility of polygen query
// results, (b) a core.ConflictHandler that lets Coalesce keep the datum from
// the most credible origin, and (c) a conflict report over the fragments of
// a polygen scheme.
package credibility

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Ranking maps local databases to credibility scores in [0, 1].
type Ranking struct {
	reg    *sourceset.Registry
	scores map[sourceset.ID]float64
	def    float64
}

// NewRanking builds a ranking over reg from per-database scores; databases
// absent from scores receive def.
func NewRanking(reg *sourceset.Registry, scores map[string]float64, def float64) *Ranking {
	r := &Ranking{reg: reg, scores: make(map[sourceset.ID]float64, len(scores)), def: def}
	for name, s := range scores {
		r.scores[reg.Intern(name)] = s
	}
	return r
}

// Source returns the score of one database.
func (r *Ranking) Source(id sourceset.ID) float64 {
	if s, ok := r.scores[id]; ok {
		return s
	}
	return r.def
}

// SetMin returns the weakest-link credibility of a source set: the minimum
// member score. The empty set — a nil-padded cell that no source vouches
// for — scores 0.
func (r *Ranking) SetMin(s sourceset.Set) float64 {
	if s.IsEmpty() {
		return 0
	}
	min := 1.0
	first := true
	for _, id := range s.IDs() {
		v := r.Source(id)
		if first || v < min {
			min = v
			first = false
		}
	}
	return min
}

// Cell scores a polygen cell: the weakest origin vouching for the datum.
// Intermediate sources influenced the *selection* of the datum, not its
// content, and do not lower the score.
func (r *Ranking) Cell(c core.Cell) float64 { return r.SetMin(c.O) }

// Tuple scores a polygen tuple: the weakest non-nil cell. Tuples made
// entirely of nil cells score 0.
func (r *Ranking) Tuple(t core.Tuple) float64 {
	min := 0.0
	first := true
	for _, c := range t {
		if c.D.IsNull() {
			continue
		}
		v := r.Cell(c)
		if first || v < min {
			min = v
			first = false
		}
	}
	if first {
		return 0
	}
	return min
}

// Handler returns a ConflictHandler for core.Algebra: when Coalesce meets
// two non-nil, non-matching data values it keeps the cell whose origin set
// is more credible (ties keep the left, matching the algebra's usual left
// precedence); the loser's origin and intermediates fold into the winner's
// intermediate set, recording that the losing source was consulted.
func (r *Ranking) Handler() core.ConflictHandler {
	return func(x, y core.Cell) core.Cell {
		if r.SetMin(y.O) > r.SetMin(x.O) {
			return core.Cell{D: y.D, O: y.O, I: y.I.Union(x.I).Union(x.O)}
		}
		return core.Cell{D: x.D, O: x.O, I: x.I.Union(y.I).Union(y.O)}
	}
}

// Conflict records one inter-source disagreement: two local databases
// reporting different values for the same polygen attribute of the same
// entity.
type Conflict struct {
	// Scheme and Attr locate the polygen attribute.
	Scheme string
	Attr   string
	// Key is the entity's key datum.
	Key rel.Value
	// Values lists the disagreeing (database, datum) pairs, sorted by
	// descending credibility then database name.
	Values []SourceValue
}

// SourceValue pairs a database name with the datum it reports.
type SourceValue struct {
	DB    string
	Datum rel.Value
	Score float64
}

// String renders the conflict compactly.
func (c Conflict) String() string {
	s := fmt.Sprintf("%s.%s[%s]:", c.Scheme, c.Attr, c.Key)
	for _, v := range c.Values {
		s += fmt.Sprintf(" %s=%q(%.2f)", v.DB, v.Datum, v.Score)
	}
	return s
}

// FindConflicts scans the tagged fragments of one polygen scheme (as
// retrieved by the PQP, with polygen annotations) and reports every
// attribute-level conflict. Entities are matched on the scheme's key under
// res (nil means exact); values are compared under res as well.
func FindConflicts(scheme *core.Scheme, rank *Ranking, res identity.Resolver, frags ...*core.Relation) ([]Conflict, error) {
	if res == nil {
		res = identity.Exact{}
	}
	type obs struct {
		db    string
		datum rel.Value
	}
	// (attr, canonical key) -> observations
	seen := make(map[string]map[string][]obs)
	keys := make(map[string]rel.Value)
	for _, a := range scheme.Attrs {
		if a.Name != scheme.Key {
			seen[a.Name] = make(map[string][]obs)
		}
	}
	for _, frag := range frags {
		ki := -1
		cols := make(map[int]string) // column -> polygen attr
		for i, at := range frag.Attrs {
			if at.Polygen == scheme.Key {
				ki = i
				continue
			}
			if at.Polygen != "" {
				if _, ok := seen[at.Polygen]; ok {
					cols[i] = at.Polygen
				}
			}
		}
		if ki < 0 {
			return nil, fmt.Errorf("credibility: fragment %q does not map the key %q", frag.Name, scheme.Key)
		}
		for _, t := range frag.Tuples {
			if t[ki].D.IsNull() {
				continue
			}
			ck := res.Canonical(t[ki].D)
			keys[ck] = t[ki].D
			for ci, pa := range cols {
				if t[ci].D.IsNull() {
					continue
				}
				db := ""
				if ids := t[ci].O.IDs(); len(ids) > 0 {
					db = frag.Reg.Name(ids[0])
				}
				seen[pa][ck] = append(seen[pa][ck], obs{db: db, datum: t[ci].D})
			}
		}
	}
	var out []Conflict
	for attr, byKey := range seen {
		for ck, observations := range byKey {
			if len(observations) < 2 {
				continue
			}
			distinct := make(map[string]bool)
			for _, o := range observations {
				distinct[res.Canonical(o.datum)] = true
			}
			if len(distinct) < 2 {
				continue
			}
			c := Conflict{Scheme: scheme.Name, Attr: attr, Key: keys[ck]}
			for _, o := range observations {
				score := 0.0
				if rank != nil {
					if id, ok := rankLookup(rank, o.db); ok {
						score = rank.Source(id)
					} else {
						score = rank.def
					}
				}
				c.Values = append(c.Values, SourceValue{DB: o.db, Datum: o.datum, Score: score})
			}
			sort.Slice(c.Values, func(i, j int) bool {
				if c.Values[i].Score != c.Values[j].Score {
					return c.Values[i].Score > c.Values[j].Score
				}
				return c.Values[i].DB < c.Values[j].DB
			})
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out, nil
}

func rankLookup(r *Ranking, db string) (sourceset.ID, bool) {
	if r.reg == nil {
		return 0, false
	}
	return r.reg.Lookup(db)
}
