package pqp

// The mediator service layer shares one PQP across every client session, so
// concurrent QuerySQL/QueryAlgebra on one instance must be indistinguishable
// from serial execution — cell for cell, origin and intermediate tags
// included. This property suite proves it: serial baselines first, then N
// goroutines hammering the same shared instance with the same and different
// queries (through the shared plan cache, resolver interner and statistics
// catalog), every answer compared against its baseline. The CI race job
// runs the whole test suite under -race, so these tests double as data-race
// probes for the shared paths.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/workload"
)

// canonRows renders a tagged relation registry-order-independently: every
// cell as datum plus sorted source-name sets, rows sorted.
func canonRows(p *core.Relation) string {
	rows := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		var b strings.Builder
		for i, c := range t {
			if i > 0 {
				b.WriteString(" | ")
			}
			o := c.O.Names(p.Reg)
			sort.Strings(o)
			in := c.I.Names(p.Reg)
			sort.Strings(in)
			fmt.Fprintf(&b, "%s {%s} {%s}", c.D, strings.Join(o, ","), strings.Join(in, ","))
		}
		rows = append(rows, b.String())
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

type concQuery struct {
	text      string
	algebraic bool
}

func (q *PQP) runConc(c concQuery) (*Result, error) {
	if c.algebraic {
		return q.QueryAlgebra(c.text)
	}
	return q.QuerySQL(c.text)
}

// hammer runs every query serially for baselines, then from workers
// goroutines × rounds repetitions each, comparing every concurrent answer
// to its serial baseline.
func hammer(t *testing.T, q *PQP, queries []concQuery, workers, rounds int) {
	t.Helper()
	want := make([]string, len(queries))
	for i, c := range queries {
		res, err := q.runConc(c)
		if err != nil {
			t.Fatalf("serial baseline %q: %v", c.text, err)
		}
		want[i] = canonRows(res.Relation)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger starting points so identical and different queries
				// overlap in every combination.
				for i := range queries {
					c := queries[(w+r+i)%len(queries)]
					res, err := q.runConc(c)
					if err != nil {
						t.Errorf("worker %d: %q: %v", w, c.text, err)
						return
					}
					if got := canonRows(res.Relation); got != want[(w+r+i)%len(queries)] {
						t.Errorf("worker %d: %q diverged from serial execution\n got: %s\nwant: %s",
							w, c.text, got, want[(w+r+i)%len(queries)])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentQueriesMatchSerialPaper: the paper federation under a
// case-folding resolver — merges, coalesces, domain mappings and the
// canonical-ID interner all shared.
func TestConcurrentQueriesMatchSerialPaper(t *testing.T) {
	fed := paperdata.New()
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	queries := []concQuery{
		{`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`, false},
		{`SELECT ANAME, DEGREE FROM PALUMNUS WHERE DEGREE = "MBA"`, false},
		{`( PALUMNUS [DEGREE = "MBA"] ) [ANAME]`, true},
		{`SELECT ONAME FROM PORGANIZATION`, false},
		{`( PCAREER [AID# = AID#] PALUMNUS ) [ANAME, ONAME]`, true},
	}
	hammer(t, q, queries, 8, 3)
}

// TestConcurrentQueriesMatchSerialStar: the star federation with statistics
// collected — the optimizer's stats observations and the plan cache churn
// concurrently with execution.
func TestConcurrentQueriesMatchSerialStar(t *testing.T) {
	cfg := workload.DefaultStarConfig()
	cfg.Facts = 500
	star := workload.NewStar(cfg)
	q := New(star.Schema, star.Registry, nil, star.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	queries := make([]concQuery, 0, len(workload.StarQueries()))
	for _, text := range workload.StarQueries() {
		queries = append(queries, concQuery{text, true})
	}
	hammer(t, q, queries, 8, 3)
}

// TestConcurrentQueriesNoPlanCache: the same property with the plan cache
// disabled — concurrent optimizer runs (including the join-order search)
// must also be independent.
func TestConcurrentQueriesNoPlanCache(t *testing.T) {
	fed := paperdata.New()
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	q.Plans = nil
	queries := []concQuery{
		{`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`, false},
		{`( PALUMNUS [DEGREE = "MBA"] ) [ANAME]`, true},
	}
	hammer(t, q, queries, 8, 2)
}

// TestPlanCacheHitSkipsOptimizer: the second identical query returns the
// cached matrices — pointer-identical plans, so the optimizer (and its
// reorder search) provably did not run again.
func TestPlanCacheHitSkipsOptimizer(t *testing.T) {
	fed := paperdata.New()
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	const query = `SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`
	first, err := q.QuerySQL(query)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first query reported a cache hit")
	}
	second, err := q.QuerySQL(query)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical query missed the plan cache")
	}
	if second.Plan != first.Plan || second.POM != first.POM {
		t.Error("cache hit rebuilt the plan matrices")
	}
	st := q.Plans.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Errorf("cache stats = %+v", st)
	}
	if got, want := canonRows(second.Relation), canonRows(first.Relation); got != want {
		t.Errorf("cached plan changed the answer\n got: %s\nwant: %s", got, want)
	}
	// Equivalent formatting of the same query normalizes to the same key.
	third, err := q.QuerySQL("SELECT  ONAME,  CEO  FROM PORGANIZATION  WHERE INDUSTRY = \"Banking\"")
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Error("reformatted query missed the plan cache")
	}
}

// TestPlanCacheInvalidation: a statistics change re-plans; flag changes
// key separately.
func TestPlanCacheInvalidation(t *testing.T) {
	cfg := workload.DefaultStarConfig()
	cfg.Facts = 200
	star := workload.NewStar(cfg)
	q := New(star.Schema, star.Registry, nil, star.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	const query = `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`
	if _, err := q.QueryAlgebra(query); err != nil {
		t.Fatal(err)
	}
	res, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("steady-state query missed the plan cache")
	}
	// A deliberate statistics change bumps the version: the next run must
	// re-plan.
	q.Stats.SetLatency("FD", 123)
	res, err = q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query hit a plan cached under stale statistics")
	}
	// Optimizer flags key separately too.
	q.RelaxedJoinReorder = true
	res, err = q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("flag change reused a plan cached under other options")
	}
}

// TestPlanCacheInvalidationOnRecollect: CollectStats installs a brand-new
// catalog; plans cached under the old one must miss even though the new
// catalog's version counter restarts (the key fingerprints the catalog
// instance, not just the version).
func TestPlanCacheInvalidationOnRecollect(t *testing.T) {
	cfg := workload.DefaultStarConfig()
	cfg.Facts = 200
	star := workload.NewStar(cfg)
	q := New(star.Schema, star.Registry, nil, star.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	const query = `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`
	if _, err := q.QueryAlgebra(query); err != nil {
		t.Fatal(err)
	}
	// Fresh catalog: its version counter restarts and may collide with the
	// old catalog's, but its process-unique ID cannot.
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	res, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query hit a plan cached under the replaced statistics catalog")
	}
}
