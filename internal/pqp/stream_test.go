package pqp

import (
	"strings"
	"testing"

	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/rel"
	"repro/internal/translate"
	"repro/internal/wire"
	"repro/internal/workload"
)

// streamQueries are the SQL queries the engine-parity tests run: the
// paper's worked example plus shapes covering every PQP-resident operator
// family the translator emits.
var streamQueries = []string{
	`SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`,
	`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`,
	`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`,
	`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`,
}

// TestStreamingMatchesMaterializedOnPaperQueries: the streaming engine, the
// materializing engine and the parallel engine return identical tagged
// answers (cell for cell, data and both tag sets) for the paper queries.
func TestStreamingMatchesMaterializedOnPaperQueries(t *testing.T) {
	q := newPQP(t)
	for _, sql := range streamQueries {
		res, err := q.QuerySQL(sql) // Run → streaming Execute
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		mat, err := q.ExecuteMaterialized(res.Plan)
		if err != nil {
			t.Fatalf("%s: materialized: %v", sql, err)
		}
		par, err := q.ExecuteParallel(res.Plan)
		if err != nil {
			t.Fatalf("%s: parallel: %v", sql, err)
		}
		str := strings.Join(render(res.Relation), "\n")
		if m := strings.Join(render(mat), "\n"); str != m {
			t.Errorf("%s:\nstreaming:\n%s\nmaterialized:\n%s", sql, str, m)
		}
		if p := strings.Join(render(par), "\n"); str != p {
			t.Errorf("%s:\nstreaming:\n%s\nparallel:\n%s", sql, str, p)
		}
		if res.Relation.AttrNames()[0] != mat.AttrNames()[0] || res.Relation.Degree() != mat.Degree() {
			t.Errorf("%s: attr layout diverged: %v vs %v", sql, res.Relation.AttrNames(), mat.AttrNames())
		}
	}
}

// TestStreamingMatchesMaterializedOnWorkload: engine parity on a synthetic
// federation whose Merge fans in several sources.
func TestStreamingMatchesMaterializedOnWorkload(t *testing.T) {
	f := workload.New(workload.Config{Databases: 4, Entities: 500, Overlap: 0.6, Categories: 7, Seed: 11})
	q := New(f.Schema, f.Registry, identity.Exact{}, f.LQPs())
	res, err := q.QuerySQL(`SELECT KEY, CAT FROM PENTITY WHERE CAT = "C3"`)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := q.ExecuteMaterialized(res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	a, b := strings.Join(render(res.Relation), "\n"), strings.Join(render(mat), "\n")
	if a != b {
		t.Errorf("workload answers diverged:\nstreaming:\n%s\nmaterialized:\n%s", a, b)
	}
}

// TestStreamingSharedRegister: a register consumed twice (self-join)
// materializes once and feeds both operands; the answer matches the
// materializing engine.
func TestStreamingSharedRegister(t *testing.T) {
	q := newPQP(t)
	plan := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("ALUMNUS"),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 2, Op: translate.OpJoin, LHR: translate.RegOperand(1), LHA: []string{"ANAME"},
			Theta: rel.ThetaEQ, HasTheta: true, RHA: translate.AttrComparand("ANAME"),
			RHR: translate.RegOperand(1), EL: "PQP"},
	}}
	str, err := q.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := q.ExecuteMaterialized(plan)
	if err != nil {
		t.Fatal(err)
	}
	if str.Cardinality() == 0 {
		t.Fatal("self-join returned nothing")
	}
	a, b := strings.Join(render(str), "\n"), strings.Join(render(mat), "\n")
	if a != b {
		t.Errorf("shared-register answers diverged:\nstreaming:\n%s\nmaterialized:\n%s", a, b)
	}
}

// TestStreamingRedefinedRegisterFallsBack: plans that reassign a register
// cannot compile to a cursor tree; Execute silently uses the materializing
// engine and still answers.
func TestStreamingRedefinedRegisterFallsBack(t *testing.T) {
	q := newPQP(t)
	plan := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("ALUMNUS"),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("CAREER"),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
	}}
	got, err := q.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := q.ExecuteMaterialized(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != mat.Cardinality() {
		t.Errorf("fallback answer has %d tuples, want %d", got.Cardinality(), mat.Cardinality())
	}
}

// TestStreamingBadPlans: the malformed plans the materializing engine
// rejects are rejected by the streaming engine too.
func TestStreamingBadPlans(t *testing.T) {
	q := newPQP(t)
	bad := []*translate.Matrix{
		{},
		{Rows: []translate.Row{{PR: 1, Op: translate.OpProject, LHR: translate.RegOperand(42),
			LHA: []string{"X"}, RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP"}}},
		{Rows: []translate.Row{{PR: 1, Op: translate.OpMerge, LHR: translate.RegOperand(1),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP"}}},
		{Rows: []translate.Row{{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("ALUMNUS"),
			RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "NOSUCHDB"}}},
	}
	for i, plan := range bad {
		if _, err := q.Execute(plan); err == nil {
			t.Errorf("bad plan %d accepted by streaming engine", i)
		}
	}
}

// TestStreamingPreservesLQPOpOrder: the streaming engine issues exactly the
// local operations of the materializing engine, in the same order — eager
// plan-order opens keep Counting-based pushdown assertions meaningful.
func TestStreamingPreservesLQPOpOrder(t *testing.T) {
	fed := paperdata.New()
	counters := make(map[string]*lqp.Counting, 3)
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range fed.LQPs() {
		c := lqp.NewCounting(l)
		counters[name] = c
		lqps[name] = c
	}
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	res, err := q.QuerySQL(streamQueries[3]) // streaming run
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(map[string]string)
	for name, c := range counters {
		ops := c.Ops()
		strs := make([]string, len(ops))
		for i, op := range ops {
			strs[i] = op.String()
		}
		streamed[name] = strings.Join(strs, "; ")
		c.Reset()
	}
	if _, err := q.ExecuteMaterialized(res.Plan); err != nil {
		t.Fatal(err)
	}
	for name, c := range counters {
		ops := c.Ops()
		strs := make([]string, len(ops))
		for i, op := range ops {
			strs[i] = op.String()
		}
		if got := strings.Join(strs, "; "); got != streamed[name] {
			t.Errorf("%s op sequence diverged:\nstreaming:     %s\nmaterializing: %s", name, streamed[name], got)
		}
	}
}

// TestStreamingOverTCP: the full Figure-1 path — PQP against three lqpd-style
// wire servers — streams row frames end to end and matches the in-process
// answer.
func TestStreamingOverTCP(t *testing.T) {
	fed := paperdata.New()
	lqps := make(map[string]lqp.LQP, 3)
	servers := []*wire.Server{wire.NewServer(fed.AD), wire.NewServer(fed.PD), wire.NewServer(fed.CD)}
	for _, srv := range servers {
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		lqps[client.Name()] = client
	}
	remote := New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	local := newPQP(t)
	for _, sql := range streamQueries {
		rr, err := remote.QuerySQL(sql)
		if err != nil {
			t.Fatalf("%s (remote): %v", sql, err)
		}
		lr, err := local.QuerySQL(sql)
		if err != nil {
			t.Fatalf("%s (local): %v", sql, err)
		}
		a, b := strings.Join(render(rr.Relation), "\n"), strings.Join(render(lr.Relation), "\n")
		if a != b {
			t.Errorf("%s: remote streaming answer diverged:\nremote:\n%s\nlocal:\n%s", sql, a, b)
		}
	}
}
