package pqp

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// Four-engine parity at the PQP level for intra-operator parallelism: the
// same queries over a federation big enough to cross the cost threshold
// must produce cell-for-cell identical answers — row order included — from
// a parallel-configured PQP (streaming and materializing engines, whose
// hash operators dispatch to the partitioned kernels) and a
// parallel-disabled one. Run under the CI -race job, this also holds the
// shared worker pool to the data-race contract.
func TestIntraOpParallelEnginesMatchSerial(t *testing.T) {
	f := workload.New(workload.Config{Databases: 2, Entities: 20000, Overlap: 0.6, Categories: 5, Seed: 9})
	queries := []string{
		// Union of two big selections: the Union operands carry ~1/5 of
		// 20k entities each, above the 1k threshold set below.
		`(PENTITY [CAT = "cat1"]) UNION (PENTITY [CAT = "cat2"])`,
		// Difference and intersection of overlapping selections (CAT maps
		// into every database, so both operands merge to the same degree).
		`(PENTITY [CAT >= "cat1"]) MINUS (PENTITY [CAT = "cat3"])`,
		`(PENTITY [CAT >= "cat1"]) INTERSECT (PENTITY [CAT <= "cat3"])`,
		// Projection collapsing 20k rows onto the CAT domain.
		`PENTITY [CAT, KEY]`,
	}
	serial := New(f.Schema, f.Registry, nil, f.LQPs())
	serial.SetParallel(-1, 0) // parallel path off: the serial reference
	par := New(f.Schema, f.Registry, nil, f.LQPs())
	par.SetParallel(4, 1024)
	for _, qt := range queries {
		want, err := serial.QueryAlgebra(qt)
		if err != nil {
			t.Fatalf("%s: serial: %v", qt, err)
		}
		got, err := par.QueryAlgebra(qt) // streaming engine
		if err != nil {
			t.Fatalf("%s: parallel streaming: %v", qt, err)
		}
		if a, b := strings.Join(render(want.Relation), "\n"), strings.Join(render(got.Relation), "\n"); a != b {
			t.Errorf("%s: parallel streaming answer diverged from serial", qt)
		}
		mat, err := par.ExecuteMaterialized(got.Plan)
		if err != nil {
			t.Fatalf("%s: parallel materializing: %v", qt, err)
		}
		if a, b := strings.Join(render(want.Relation), "\n"), strings.Join(render(mat), "\n"); a != b {
			t.Errorf("%s: parallel materializing answer diverged from serial", qt)
		}
	}
}
