package pqp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/domainmap"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/rel"
	"repro/internal/translate"
	"repro/internal/wire"
)

func newPQP(t *testing.T) *PQP {
	t.Helper()
	fed := paperdata.New()
	return New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
}

func TestQueryAlgebraPaperExpression(t *testing.T) {
	q := newPQP(t)
	res, err := q.QueryAlgebra(`( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 3 {
		t.Errorf("result cardinality = %d, want 3", res.Relation.Cardinality())
	}
	if res.POM.Cardinality() != 5 || res.Half.Cardinality() != 5 || res.IOM.Cardinality() != 10 {
		t.Errorf("pipeline shapes: POM=%d Half=%d IOM=%d", res.POM.Cardinality(), res.Half.Cardinality(), res.IOM.Cardinality())
	}
}

func TestQuerySQLSimpleSelect(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 5 {
		t.Errorf("cardinality = %d, want 5", res.Relation.Cardinality())
	}
	// The Select pushed down to the AD LQP, so — exactly as in Table 4 —
	// origins are {AD} and the intermediate sets stay empty (the tagging
	// happens after local execution).
	for _, tu := range res.Relation.Tuples {
		if tu[0].Format(q.Registry()) != tu[0].D.String()+", {AD}, {}" {
			t.Errorf("cell = %s", tu[0].Format(q.Registry()))
		}
	}
}

func TestQuerySQLAggregatedFinance(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT ONAME, PROFIT FROM PFINANCE WHERE YEAR = 1989`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 10 {
		t.Errorf("cardinality = %d, want 10", res.Relation.Cardinality())
	}
}

func TestTraceCallback(t *testing.T) {
	q := newPQP(t)
	var lines []string
	q.Trace = func(format string, args ...any) {
		lines = append(lines, format)
		_ = args
	}
	if _, err := q.QuerySQL(`SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("trace callback never invoked")
	}
}

func TestOptimizeToggle(t *testing.T) {
	q := newPQP(t)
	q.Optimize = false
	res, err := q.QuerySQL(`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != res.IOM {
		t.Error("with Optimize=false the plan must be the raw IOM")
	}
	q.Optimize = true
	res2, err := q.QuerySQL(`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := render(res2.Relation), render(res.Relation); strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("optimizer changed the answer:\n%v\nvs\n%v", got, want)
	}
}

func render(p *core.Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

func TestMergedSchemeQuery(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	rows := render(res.Relation)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// CitiCorp is the only Banking organization; its CEO came from CD with
	// AD and PD as intermediates (they supplied the INDUSTRY evidence).
	if !strings.Contains(rows[0], "CitiCorp, {AD, PD, CD}, {AD, PD, CD}") {
		t.Errorf("row = %s", rows[0])
	}
	if !strings.Contains(rows[0], "John Reed, {CD}, {AD, PD, CD}") {
		t.Errorf("row = %s", rows[0])
	}
}

func TestSetOperationsEndToEnd(t *testing.T) {
	q := newPQP(t)
	res, err := q.QueryAlgebra(`(PALUMNUS [DEGREE = "MBA"]) UNION (PALUMNUS [DEGREE = "MS"])`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 6 { // 5 MBA + 1 MS
		t.Errorf("cardinality = %d, want 6", res.Relation.Cardinality())
	}
	res2, err := q.QueryAlgebra(`(PALUMNUS) MINUS (PALUMNUS [DEGREE = "MBA"])`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Relation.Cardinality() != 3 { // BS, SF, MS alumni
		t.Errorf("difference cardinality = %d, want 3", res2.Relation.Cardinality())
	}
	res3, err := q.QueryAlgebra(`(PALUMNUS) INTERSECT (PALUMNUS [DEGREE = "MBA"])`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Relation.Cardinality() != 5 {
		t.Errorf("intersect cardinality = %d, want 5", res3.Relation.Cardinality())
	}
}

func TestExecuteErrors(t *testing.T) {
	q := newPQP(t)
	if _, err := q.Execute(&translate.Matrix{}); err == nil {
		t.Error("empty plan accepted")
	}
	// Unknown execution location.
	bad := &translate.Matrix{Rows: []translate.Row{{
		PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("X"),
		RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "NOPE",
	}}}
	if _, err := q.Execute(bad); err == nil {
		t.Error("unknown LQP accepted")
	}
	// Register referenced before computation.
	bad2 := &translate.Matrix{Rows: []translate.Row{{
		PR: 1, Op: translate.OpProject, LHR: translate.RegOperand(9),
		LHA: []string{"A"}, RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP",
	}}}
	if _, err := q.Execute(bad2); err == nil {
		t.Error("dangling register accepted")
	}
	// Merge without a scheme annotation.
	bad3 := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("ALUMNUS"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 2, Op: translate.OpMerge, LHR: translate.RegsOperand(1), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP", Scheme: "NOPE"},
	}}
	if _, err := q.Execute(bad3); err == nil {
		t.Error("merge with unknown scheme accepted")
	}
	// Local row with non-local operand.
	bad4 := &translate.Matrix{Rows: []translate.Row{{
		PR: 1, Op: translate.OpRetrieve, LHR: translate.RegOperand(1),
		RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD",
	}}}
	if _, err := q.Execute(bad4); err == nil {
		t.Error("local row with register operand accepted")
	}
}

func TestQuerySQLParseErrorPropagates(t *testing.T) {
	q := newPQP(t)
	if _, err := q.QuerySQL("SELECT FROM"); err == nil {
		t.Error("parse error swallowed")
	}
	if _, err := q.QueryAlgebra("((("); err == nil {
		t.Error("algebra parse error swallowed")
	}
}

// TestRemoteLQPEndToEnd runs the full paper query against LQPs served over
// TCP — Figure 1 with real sockets.
func TestRemoteLQPEndToEnd(t *testing.T) {
	fed := paperdata.New()
	lqps := make(map[string]lqp.LQP, 3)
	for _, db := range fed.Databases() {
		srv := wire.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		lqps[client.Name()] = client
	}
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	res, err := q.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`)
	if err != nil {
		t.Fatal(err)
	}
	rows := render(res.Relation)
	if len(rows) != 3 {
		t.Fatalf("remote result = %v", rows)
	}
	for _, want := range []string{
		"Genentech, {AD, CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}",
		"Langley Castle, {AD, CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}",
		"Citicorp, {AD, PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}",
	} {
		found := false
		for _, r := range rows {
			if r == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing row %q in %v", want, rows)
		}
	}
}

// TestTagRetrievedAnnotations: retrieved columns carry the polygen
// attributes the schema maps and the execution location as origin.
func TestTagRetrievedAnnotations(t *testing.T) {
	q := newPQP(t)
	plain := rel.NewRelation("CAREER", rel.SchemaOf("AID#", "BNAME", "POS"))
	plain.MustAppend(rel.String("012"), rel.String("Citicorp"), rel.String("MIS Director"))
	p, err := q.TagRetrieved(plain, "AD", "CAREER")
	if err != nil {
		t.Fatal(err)
	}
	if p.Attrs[1].Polygen != "ONAME" || p.Attrs[2].Polygen != "POSITION" {
		t.Errorf("annotations = %+v", p.Attrs)
	}
	if got := p.Tuples[0][0].Format(q.Registry()); got != "012, {AD}, {}" {
		t.Errorf("cell = %s", got)
	}
}

// TestTagRetrievedAppliesDomainMap: FIRM.HQ maps to its state at retrieval.
func TestTagRetrievedAppliesDomainMap(t *testing.T) {
	q := newPQP(t)
	plain := rel.NewRelation("FIRM", rel.SchemaOf("FNAME", "CEO", "HQ"))
	plain.MustAppend(rel.String("Langley Castle"), rel.String("Stu Madnick"), rel.String("Cambridge, MA"))
	p, err := q.TagRetrieved(plain, "CD", "FIRM")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Tuples[0][2].D.String(); got != "MA" {
		t.Errorf("HQ = %q, want MA", got)
	}
}

// TestSelectStarSingleSource: a bare SELECT * over a single-source scheme
// becomes one Retrieve at the owning LQP.
func TestSelectStarSingleSource(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT * FROM PALUMNUS`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 8 || res.Relation.Degree() != 4 {
		t.Errorf("shape = %dx%d, want 8x4", res.Relation.Cardinality(), res.Relation.Degree())
	}
	if res.Plan.Cardinality() != 1 {
		t.Errorf("plan:\n%s", res.Plan)
	}
}

// TestSelectStarMultiSource: SELECT * over PORGANIZATION retrieves all
// three local relations and merges them — the answer is Table 6.
func TestSelectStarMultiSource(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT * FROM PORGANIZATION`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 12 || res.Relation.Degree() != 4 {
		t.Errorf("shape = %dx%d, want 12x4", res.Relation.Cardinality(), res.Relation.Degree())
	}
	names := res.Relation.AttrNames()
	want := []string{"ONAME", "INDUSTRY", "HEADQUARTERS", "CEO"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v", names)
		}
	}
}

// TestSelectionPushdown uses counting LQPs to verify the data-driven
// translation routes work as Table 3 prescribes: AD receives the Select plus
// two Retrieves (CAREER, BUSINESS), PD and CD one Retrieve each, and no LQP
// ever ships ALUMNUS wholesale when a selection can run locally.
func TestSelectionPushdown(t *testing.T) {
	fed := paperdata.New()
	counters := make(map[string]*lqp.Counting, 3)
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range fed.LQPs() {
		c := lqp.NewCounting(l)
		counters[name] = c
		lqps[name] = c
	}
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	if _, err := q.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`); err != nil {
		t.Fatal(err)
	}
	ad := counters["AD"]
	if ad.Count(lqp.OpSelect) != 1 || ad.Count(lqp.OpRetrieve) != 2 || ad.Total() != 3 {
		t.Errorf("AD ops = %v", ad.Ops())
	}
	for _, op := range ad.Ops() {
		if op.Kind == lqp.OpRetrieve && op.Relation == "ALUMNUS" {
			t.Error("ALUMNUS retrieved wholesale despite a local selection")
		}
	}
	if counters["PD"].Total() != 1 || counters["PD"].Count(lqp.OpRetrieve) != 1 {
		t.Errorf("PD ops = %v", counters["PD"].Ops())
	}
	if counters["CD"].Total() != 1 || counters["CD"].Count(lqp.OpRetrieve) != 1 {
		t.Errorf("CD ops = %v", counters["CD"].Ops())
	}
}

// TestCountingReset covers the wrapper's bookkeeping.
func TestCountingReset(t *testing.T) {
	fed := paperdata.New()
	c := lqp.NewCounting(lqp.NewLocal(fed.AD))
	if _, err := c.Execute(lqp.Retrieve("ALUMNUS")); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 1 || c.Count(lqp.OpRetrieve) != 1 {
		t.Error("count wrong")
	}
	if c.Name() != "AD" {
		t.Error("name not forwarded")
	}
	if rels, err := c.Relations(); err != nil || len(rels) != 3 {
		t.Error("relations not forwarded")
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("reset did not clear")
	}
}

// TestDomainMappedSelection: a selection on a domain-mapped attribute is
// evaluated at the PQP on mapped values, not at the LQP on raw strings
// (examples/finance's scenario, reduced).
func TestDomainMappedSelection(t *testing.T) {
	fed := paperdata.New()
	fed.Schema.DomainMap.Set(paperdata.CD, "FINANCE", "PROFIT",
		domainmap.UnitSuffix(map[string]float64{"bil": 1e9, "mil": 1e6}))
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	res, err := q.QuerySQL(`SELECT ONAME, PROFIT FROM PFINANCE WHERE PROFIT > 1000000000`)
	if err != nil {
		t.Fatal(err)
	}
	// CitiCorp 1.7B, Ford 5.3B, IBM 5.5B, DEC 1.3B (AT&T's -1.7B excluded).
	if res.Relation.Cardinality() != 4 {
		t.Fatalf("rows = %v", render(res.Relation))
	}
	for _, tu := range res.Relation.Tuples {
		if tu[1].D.Kind() != rel.KindFloat || tu[1].D.FloatVal() <= 1e9 {
			t.Errorf("bad PROFIT %v", tu[1].D)
		}
	}
}

// TestStudentFloatQuery exercises the PSTUDENT scheme with float GPAs.
func TestStudentFloatQuery(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT SNAME, GPA FROM PSTUDENT WHERE GPA >= 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Cardinality() != 4 { // 3.5, 3.99, 3.6, 3.7
		t.Errorf("rows = %v", render(res.Relation))
	}
}

// TestInterviewJoinsOrganizations: students interviewing at organizations
// headquartered in NY — joins PINTERVIEW (PD) against the merged
// PORGANIZATION and PSTUDENT, a query shape the paper's schema supports but
// never demonstrates.
func TestInterviewJoinsOrganizations(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT SNAME, ONAME, HEADQUARTERS FROM PSTUDENT, PINTERVIEW, PORGANIZATION
		WHERE SID# = SID# AND ONAME = ONAME AND HEADQUARTERS = "NY"`)
	if err != nil {
		t.Fatal(err)
	}
	rows := render(res.Relation)
	// IBM (01 Forea Wang), Banker's Trust (23 Rich Bolsky), Citicorp
	// (34 John Smith) are NY-headquartered; Oracle (CA) is not.
	if len(rows) != 3 {
		t.Fatalf("rows = %v\nplan:\n%s", rows, res.Plan)
	}
	for _, r := range rows {
		if strings.Contains(r, "Oracle") {
			t.Errorf("CA organization leaked: %s", r)
		}
	}
}

// TestBalancedMergeFlag: the PQP yields the same answer with the balanced
// merge strategy (the paper's federation has consistent spellings only up
// to case, so compare case-folded).
func TestBalancedMergeFlag(t *testing.T) {
	q := newPQP(t)
	res, err := q.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	q.BalancedMerge = true
	res2, err := q.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if err != nil {
		t.Fatal(err)
	}
	a := strings.ToLower(strings.Join(render(res.Relation), "\n"))
	b := strings.ToLower(strings.Join(render(res2.Relation), "\n"))
	if a != b {
		t.Errorf("balanced merge changed the answer:\n%s\nvs\n%s", a, b)
	}
}
