// Package pqp implements the Polygen Query Processor of the paper's Figure
// 1: it translates polygen queries into Intermediate Operation Matrices
// (delegating to package translate), routes the local rows to the Local
// Query Processors, tags retrieved data with their originating sources, and
// evaluates the PQP-resident polygen operations with the polygen algebra,
// maintaining data and intermediate source tags throughout.
//
// Three engines evaluate plans, all producing cell-for-cell identical
// results (data and both tag sets):
//
//   - Execute is the streaming engine and the default: the plan is compiled
//     into a tree of cursors (stream.go) through which row batches flow, so
//     peak memory is bounded by the batches in flight plus the registers
//     that must materialize (those consumed more than once, and the
//     blocking points of Project/Union/Intersect/Merge), and remote LQP
//     retrieval overlaps with PQP-side operator work via per-stream
//     prefetch.
//   - ExecuteMaterialized is the register-at-a-time materializing engine
//     the reproduction shipped with, kept as the second reference
//     implementation (alongside the string-keyed core.Ref* operators);
//     ExecuteAll exposes it whenever every register is wanted, and
//     ExecuteParallel runs its steps with inter-row parallelism.
//
// Every engine runs the hash-native algebra: tuple identity is a 64-bit
// hash and join probes intern canonical IDs through the PQP's resolver. One
// PQP keeps one Algebra — and therefore one resolver intern table — across
// queries, so canonical IDs warm up once per federation rather than once
// per query.
//
// Within one query, hash operators over inputs at or above a cost
// threshold additionally run morsel-driven parallel (core/parallel.go):
// radix-partitioned builds and probes fan out across a worker pool shared
// by all of the PQP's concurrent sessions (SetParallel), with results —
// row order included — identical to the serial engines'. Small inputs
// never leave the serial path.
//
// Before execution, Run hands the IOM to the cost-based Query Optimizer
// (translate.OptimizeWithOptions) with the federation knowledge the PQP
// holds: the polygen schema, each LQP's pushdown capability, the instance
// resolver's exactness, and — after CollectStats — per-LQP cardinality and
// latency statistics (internal/stats). Optimized plans may carry
// pushed-down subplans on their LQP-resident rows; both engines execute
// those through lqp.ExecutePlanOn/OpenPlanOn and reconstruct the
// intermediate tags the displaced PQP-side filters would have written, so
// optimized and unoptimized plans agree cell for cell — data and both tag
// sets — which the property suite in opt_test.go enforces across all
// engines. See docs/ARCHITECTURE.md for the optimizer's full contract.
package pqp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/federation"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
	"repro/internal/stats"
	"repro/internal/translate"
)

// PQP is a polygen query processor bound to a polygen schema and a set of
// LQPs (one per local database).
type PQP struct {
	// id is a process-unique planner identity (see planKey): plans depend
	// on everything a PQP is wired with — schema, LQP set and capabilities,
	// resolver — none of which change after New, so the instance ID is the
	// sound cache fingerprint for all of them (an address would not be:
	// a successor's allocation can reuse a freed predecessor's).
	id     uint64
	schema *core.Schema
	reg    *sourceset.Registry
	alg    *core.Algebra
	lqps   map[string]lqp.LQP
	// Optimize enables the Query Optimizer stage (Figure 2). It defaults to
	// true; the optimizer ablation benchmarks turn it off. The optimizer
	// runs the cost-based federated passes of translate.OptimizeWithOptions:
	// pushdown of PQP-resident selections/projections into LQPs that accept
	// subplans, projection narrowing, and — when Stats is set and the
	// instance resolver is exact — greedy join reordering.
	Optimize bool
	// Stats, when non-nil, feeds the optimizer per-LQP cardinality and
	// column statistics (projection-narrowing width checks, join ordering)
	// and accumulates observed cardinalities and operation latencies as
	// queries run. CollectStats populates it from the LQPs' statistics
	// capability.
	Stats *stats.Catalog
	// RelaxedJoinReorder lets the optimizer pick join orders whose
	// intermediate tags differ from the unoptimized plan's (the polygen tag
	// calculus records evaluation order; see translate.Options). Data and
	// origin tags are unaffected. Off by default.
	RelaxedJoinReorder bool
	// BalancedMerge evaluates Merge rows with the balanced pairwise tree
	// (core.MergeBalanced) instead of the paper's left fold; the answers are
	// instance-identical and wide merges get cheaper (B-SRC ablation).
	BalancedMerge bool
	// Degrade is the default degradation policy for queries run without an
	// explicit one (RunPolicy/OpenPolicy override per call). PolicyFail —
	// the zero value — fails the whole query when a source exhausts all of
	// its replicas; PolicyPartial drops the exhausted scatter leg and
	// answers from the sources that remain, with the missing sources named
	// in the result's diagnostics. Only federation-backed LQPs
	// (internal/federation.Source) ever produce the typed exhaustion the
	// policy dispatches on; with plain LQPs both policies behave like
	// PolicyFail.
	Degrade federation.Policy
	// Plans caches translated, optimized plans keyed by canonical query
	// text, schema, statistics version and optimizer options, so a shared
	// long-lived PQP runs the translation pipeline — including the
	// optimizer's join-order search — once per distinct query instead of
	// once per request. New installs a DefaultPlanCacheSize cache; set nil
	// to translate every request from scratch (the B-SERVE ablation does).
	Plans *translate.PlanCache
	// Trace, when non-nil, receives one line per executed IOM row.
	Trace func(format string, args ...any)
}

// The flag fields above (Optimize, Stats, RelaxedJoinReorder, BalancedMerge,
// Plans, Trace) are configuration: set them while wiring the federation,
// before the PQP is shared. After that one PQP instance serves any number of
// goroutines concurrently — QuerySQL, QueryAlgebra, Run and Open are safe
// for concurrent use. Everything mutable underneath is either query-private
// (relations, cursor trees, register maps) or independently synchronized:
// the sourceset.Registry and stats.Catalog lock internally, the resolver's
// canonical-ID interner publishes through an atomic snapshot, and the plan
// cache locks around its LRU. The property suite in concurrent_test.go
// holds a shared instance to cell-for-cell serial equivalence under -race.

// New builds a PQP. resolver may be nil for exact instance matching; the
// paper's worked example needs identity.CaseFold to match "CitiCorp" with
// "Citicorp".
func New(schema *core.Schema, reg *sourceset.Registry, resolver identity.Resolver, lqps map[string]lqp.LQP) *PQP {
	q := &PQP{
		id:       nextPQPID.Add(1),
		schema:   schema,
		reg:      reg,
		alg:      core.NewAlgebra(resolver),
		lqps:     lqps,
		Optimize: true,
		Plans:    translate.NewPlanCache(0),
	}
	// Morsel-driven intra-operator parallelism is on by default: one
	// GOMAXPROCS-sized pool per PQP, shared by every concurrent session's
	// operators, with the cost threshold keeping small inputs — the paper's
	// worked example among them — on the untouched serial path. On a
	// single-core box the pool has one worker and the engine never leaves
	// that path.
	q.SetParallel(0, 0)
	return q
}

// SetParallel configures morsel-driven intra-operator parallelism: the
// hash operators (Union, Join, Project, Intersect, Difference — and the
// streaming Join/Difference build sides) of inputs at or above threshold
// tuples radix-partition their work across a worker pool shared by all of
// this PQP's concurrent queries. workers bounds the pool (0 = GOMAXPROCS);
// workers < 0 disables the parallel path entirely. threshold <= 0 means
// core.DefaultParallelThreshold. Like the flag fields, this is wiring-time
// configuration: call it before the PQP is shared across goroutines.
func (q *PQP) SetParallel(workers, threshold int) {
	if workers < 0 {
		q.alg.SetParallel(nil)
		return
	}
	q.alg.SetParallel(&core.Parallel{Pool: exec.NewPool(workers), Threshold: threshold})
}

// SetMemoryBudget bounds the blocking tuple state of every hash operator
// run by this PQP: past budget bytes, overflow partitions grace-spill to
// checksummed temp segments under tempDir ("" = the OS temp dir) and are
// processed from disk, so a query's working set no longer has to fit in
// memory (core/spill.go). budget <= 0 removes the bound. A budgeted PQP's
// operators build serially — the budget and the intra-operator parallel
// path (SetParallel) are mutually exclusive, and the budget wins. Like
// SetParallel this is wiring-time configuration: call it before the PQP is
// shared across goroutines.
func (q *PQP) SetMemoryBudget(budget int64, tempDir string) {
	if budget <= 0 {
		q.alg.SetMemory(nil)
		return
	}
	q.alg.SetMemory(&core.Memory{Budget: budget, TempDir: tempDir})
}

// MemoryConfig returns the PQP's spill budget, nil if none — the
// observability layer reads its counters into V$MEM and /metrics.
func (q *PQP) MemoryConfig() *core.Memory { return q.alg.Memory() }

// ParallelWorkers reports the size of the PQP's intra-operator worker pool
// (1 when the parallel path is disabled or single-worker) — benchmark
// labels include it so results are comparable across machines.
func (q *PQP) ParallelWorkers() int {
	par := q.alg.ParallelConfig()
	if par == nil {
		return 1
	}
	return par.Pool.Workers()
}

// Pool returns the intra-operator worker pool shared by all of this PQP's
// concurrent queries, or nil when the parallel path is disabled — the
// observability layer (V$POOL, /metrics) snapshots its occupancy through
// exec.Pool.Snapshot, which accepts the nil pool.
func (q *PQP) Pool() *exec.Pool {
	par := q.alg.ParallelConfig()
	if par == nil {
		return nil
	}
	return par.Pool
}

// nextPQPID hands out process-unique planner IDs.
var nextPQPID atomic.Uint64

// Algebra exposes the algebra evaluator (e.g. to install a conflict
// handler).
func (q *PQP) Algebra() *core.Algebra { return q.alg }

// CollectStats probes every LQP exposing the statistics capability
// (lqp.StatsProvider) and installs the resulting catalog as the PQP's
// optimizer statistics. With remote LQPs the probe is one "stats" wire
// round trip per database; the measured round-trip time seeds the link
// latency estimates.
func (q *PQP) CollectStats() error {
	c, err := stats.Collect(q.lqps)
	if err != nil {
		return err
	}
	q.Stats = c
	return nil
}

// optimizerOptions assembles the federation knowledge the cost-based
// optimizer needs: the schema (attribute and domain mappings), the
// statistics catalog, per-LQP pushdown capability, and whether the
// executing algebra resolves instances exactly.
func (q *PQP) optimizerOptions() translate.Options {
	return translate.Options{
		Schema: q.schema,
		Stats:  q.Stats,
		CanPush: func(db string) bool {
			l, ok := q.lqps[db]
			return ok && lqp.CanPush(l)
		},
		ExactResolver:      q.alg.ResolverIsExact(),
		RelaxedJoinReorder: q.RelaxedJoinReorder,
	}
}

// Registry returns the source registry shared by all results.
func (q *PQP) Registry() *sourceset.Registry { return q.reg }

// Schema returns the polygen schema.
func (q *PQP) Schema() *core.Schema { return q.schema }

// Result is a fully processed polygen query: every intermediate artifact of
// Figure 2's pipeline plus the final polygen relation.
type Result struct {
	// Expr is the polygen algebraic expression.
	Expr translate.Expr
	// POM is the Polygen Operation Matrix (Syntax Analyzer output).
	POM *translate.Matrix
	// Half is the half-processed IOM (pass one output).
	Half *translate.Matrix
	// IOM is the Intermediate Operation Matrix (pass two output).
	IOM *translate.Matrix
	// Plan is the executed plan: the IOM after the Query Optimizer.
	Plan *translate.Matrix
	// CacheHit reports that the matrices came from the plan cache — the
	// translation pipeline and the optimizer did not run for this request.
	CacheHit bool
	// Relation is the composite answer with source tags.
	Relation *core.Relation
	// Diag is the query's fault-handling collector: retries, hedges,
	// replicas used and — under PolicyPartial — the sources that went
	// missing. Run/RunPolicy results carry the completed record; for
	// Open/OpenPolicy the collector keeps accumulating while the answer
	// streams (mid-stream failovers), so snapshot it with Diag.Report()
	// after draining. Nil for results produced before execution.
	Diag *federation.Diagnostics
}

// PlanLines renders the executed plan one row per line — what the shell and
// the mediator protocol show as "the plan" without shipping matrices.
func (r *Result) PlanLines() []string {
	if r == nil || r.Plan == nil {
		return nil
	}
	lines := make([]string, len(r.Plan.Rows))
	for i, row := range r.Plan.Rows {
		lines[i] = row.String()
	}
	return lines
}

// QueryAlgebra runs a polygen algebraic expression (paper notation) through
// the full pipeline: parse → POM → pass one → pass two → optimize → execute.
func (q *PQP) QueryAlgebra(input string) (*Result, error) {
	e, err := translate.ParseExpr(input)
	if err != nil {
		return nil, err
	}
	return q.Run(e)
}

// QuerySQL runs a polygen SQL query through the SQL front end and the full
// pipeline.
func (q *PQP) QuerySQL(input string) (*Result, error) {
	e, err := translate.CompileSQL(input, q.schema)
	if err != nil {
		return nil, err
	}
	return q.Run(e)
}

// Run executes an already-built algebraic expression under the PQP's
// default degradation policy.
func (q *PQP) Run(e translate.Expr) (*Result, error) { return q.RunPolicy(e, q.Degrade) }

// RunPolicy is Run with an explicit per-query degradation policy — the
// mediator routes each session's policy through it.
func (q *PQP) RunPolicy(e translate.Expr, policy federation.Policy) (*Result, error) {
	res, err := q.plan(e)
	if err != nil {
		return nil, err
	}
	env := execEnv{policy: policy, diag: federation.NewDiagnostics()}
	if res.Relation, err = q.execute(res.Plan, env); err != nil {
		return nil, err
	}
	res.Diag = env.diag
	return res, nil
}

// execEnv is the per-query execution environment threaded through the
// engines: the degradation policy and the diagnostics collector every
// federation-backed LQP call reports into. The zero value (PolicyFail, no
// collector) is the behavior of the plain public entry points.
type execEnv struct {
	policy federation.Policy
	diag   *federation.Diagnostics
}

// boundLQP returns the diagnostics-bound view of l when the environment
// collects and l is federation-backed; otherwise l itself.
func (q *PQP) boundLQP(l lqp.LQP, env execEnv) lqp.LQP {
	if env.diag == nil {
		return l
	}
	if c, ok := l.(federation.Collectable); ok {
		return c.Bind(env.diag)
	}
	return l
}

// degrade decides what becomes of a failed local operation: under
// PolicyPartial an exhausted source (every replica tried, none answered)
// turns into an empty relation with the columns the operation would have
// produced — the dropped scatter leg — and a diagnostics entry; any other
// failure, or any failure under PolicyFail, stays fatal.
func (q *PQP) degrade(row translate.Row, plan lqp.Plan, env execEnv, cause error) (*rel.Relation, error) {
	var ex *federation.ExhaustedError
	if env.policy != federation.PolicyPartial || !errors.As(cause, &ex) {
		return nil, cause
	}
	cols, ok := q.degradedColumns(row.EL, plan)
	if !ok {
		return nil, fmt.Errorf("pqp: cannot degrade %s.%s (columns unknown): %w", row.EL, plan.Base().Relation, cause)
	}
	env.diag.AddMissing(row.EL)
	return rel.NewRelation(plan.Base().Relation, rel.SchemaOf(cols...)), nil
}

// degradedColumns shapes a dropped scatter leg's empty stand-in: a
// projecting subplan fixes the columns itself; otherwise the statistics
// catalog (populated by CollectStats) or the polygen schema's attribute
// mappings supply the source relation's column list.
func (q *PQP) degradedColumns(db string, plan lqp.Plan) ([]string, bool) {
	for i := len(plan.Ops) - 1; i >= 0; i-- {
		if plan.Ops[i].Kind == lqp.OpProject {
			return plan.Ops[i].Attrs, true
		}
	}
	if q.Stats != nil {
		if cols, ok := q.Stats.Columns(db, plan.Base().Relation); ok {
			return cols, true
		}
	}
	return q.schema.LocalColumns(db, plan.Base().Relation)
}

// Open runs the translation pipeline for e (through the plan cache) and
// returns the answer as a streaming cursor instead of a materialized
// relation — the mediator's "queryopen" path. The caller owns the cursor
// and must Close it. Plans the streaming engine cannot compile fall back to
// materializing and re-cutting into batches, exactly as Execute does.
func (q *PQP) Open(e translate.Expr) (core.Cursor, *Result, error) {
	return q.OpenPolicy(e, q.Degrade)
}

// OpenPolicy is Open with an explicit per-query degradation policy. The
// returned Result carries the live diagnostics collector (Result.Diag);
// mid-stream failovers keep reporting into it while the cursor drains.
func (q *PQP) OpenPolicy(e translate.Expr, policy federation.Policy) (core.Cursor, *Result, error) {
	res, err := q.plan(e)
	if err != nil {
		return nil, nil, err
	}
	env := execEnv{policy: policy, diag: federation.NewDiagnostics()}
	res.Diag = env.diag
	cur, err := q.openPlan(res.Plan, env)
	if errors.Is(err, errRedefinedRegister) {
		p, merr := q.executeMaterialized(res.Plan, env)
		if merr != nil {
			return nil, nil, merr
		}
		return core.CursorOf(p), res, nil
	}
	if err != nil {
		return nil, nil, err
	}
	return cur, res, nil
}

// planKey builds the cache key of e under the PQP's current planning
// inputs: the canonical query text, the schema instance, the statistics
// version the optimizer would consult, and the optimizer option
// fingerprint.
func (q *PQP) planKey(e translate.Expr) translate.PlanKey {
	var statsFP string
	if q.Stats != nil {
		// Instance identity + version: a fresh catalog (CollectStats) must
		// miss even if its restarted version counter collides with the old
		// catalog's. The ID is a process-unique monotonic counter, not an
		// address, so a successor catalog reusing the freed one's memory
		// still misses.
		statsFP = fmt.Sprintf("%d:%d", q.Stats.ID(), q.Stats.Version())
	}
	return translate.PlanKey{
		Query: e.String(),
		// The planner ID covers everything fixed at New: schema, the LQP
		// set and its pushdown capabilities, the resolver. The mutable
		// flags are fingerprinted separately below.
		Planner: fmt.Sprintf("pqp-%d", q.id),
		Stats:   statsFP,
		Options: fmt.Sprintf("opt=%t relaxed=%t exact=%t",
			q.Optimize, q.RelaxedJoinReorder, q.alg.ResolverIsExact()),
	}
}

// plan runs the translation pipeline for e — parse products through the
// Query Optimizer — consulting the plan cache first. The matrices of a
// cache hit are shared and immutable; execution never mutates a plan.
func (q *PQP) plan(e translate.Expr) (*Result, error) {
	res := &Result{Expr: e}
	var key translate.PlanKey
	if q.Plans != nil {
		key = q.planKey(e)
		if p, ok := q.Plans.Get(key); ok {
			res.POM, res.Half, res.IOM, res.Plan = p.POM, p.Half, p.IOM, p.Plan
			res.CacheHit = true
			return res, nil
		}
	}
	var err error
	if res.POM, err = translate.Analyze(e); err != nil {
		return nil, err
	}
	if res.Half, err = translate.PassOne(res.POM, q.schema); err != nil {
		return nil, err
	}
	if res.IOM, err = translate.PassTwo(res.Half, q.schema); err != nil {
		return nil, err
	}
	res.Plan = res.IOM
	if q.Optimize {
		if res.Plan, err = translate.OptimizeWithOptions(res.IOM, q.optimizerOptions()); err != nil {
			return nil, err
		}
	}
	if q.Plans != nil {
		q.Plans.Put(key, &translate.CachedPlan{POM: res.POM, Half: res.Half, IOM: res.IOM, Plan: res.Plan})
	}
	return res, nil
}

// ExecuteMaterialized evaluates an Intermediate Operation Matrix register
// by register, fully materializing each one, and returns the final
// register's relation. It is the reference engine the streaming Execute is
// proven against; the two agree cell for cell.
func (q *PQP) ExecuteMaterialized(iom *translate.Matrix) (*core.Relation, error) {
	return q.executeMaterialized(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) executeMaterialized(iom *translate.Matrix, env execEnv) (*core.Relation, error) {
	regs, err := q.executeAll(iom, env)
	if err != nil {
		return nil, err
	}
	return regs[iom.Rows[len(iom.Rows)-1].PR], nil
}

// ExecuteAll evaluates an Intermediate Operation Matrix with the
// materializing engine and returns every register — the reproduction
// harness uses it to compare each intermediate polygen relation against the
// paper's Tables 4–9. (Streaming would be no help here: every register is
// consumed by the caller, so each one must materialize anyway.)
func (q *PQP) ExecuteAll(iom *translate.Matrix) (map[int]*core.Relation, error) {
	return q.executeAll(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) executeAll(iom *translate.Matrix, env execEnv) (map[int]*core.Relation, error) {
	if iom.Cardinality() == 0 {
		return nil, fmt.Errorf("pqp: empty plan")
	}
	regs := make(map[int]*core.Relation, iom.Cardinality())
	for _, row := range iom.Rows {
		r, err := q.step(row, regs, env)
		if err != nil {
			return nil, fmt.Errorf("pqp: executing %s: %w", row, err)
		}
		regs[row.PR] = r
		if q.Trace != nil {
			q.Trace("%-60s -> %d tuples", row.String(), r.Cardinality())
		}
	}
	return regs, nil
}

func (q *PQP) step(row translate.Row, regs map[int]*core.Relation, env execEnv) (*core.Relation, error) {
	if row.EL != "PQP" {
		return q.runLocal(row, env)
	}
	operand := func(o translate.Operand) (*core.Relation, error) {
		if o.Kind != translate.OpdReg {
			return nil, fmt.Errorf("PQP operand must be a register, found %s", o)
		}
		r, ok := regs[o.Reg]
		if !ok {
			return nil, fmt.Errorf("register R(%d) not computed", o.Reg)
		}
		return r, nil
	}
	switch row.Op {
	case translate.OpSelect:
		p, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		if row.RHA.Kind != translate.CmpConst {
			return nil, fmt.Errorf("Select requires a constant RHA")
		}
		return q.alg.Select(p, row.LHA[0], row.Theta, row.RHA.Const)
	case translate.OpRestrict:
		p, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		switch row.RHA.Kind {
		case translate.CmpAttr:
			return q.alg.Restrict(p, row.LHA[0], row.Theta, row.RHA.Attr)
		case translate.CmpConst:
			return q.alg.Select(p, row.LHA[0], row.Theta, row.RHA.Const)
		default:
			return nil, fmt.Errorf("Restrict requires an RHA")
		}
	case translate.OpProject:
		p, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		return q.alg.Project(p, row.LHA)
	case translate.OpJoin:
		l, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		r, err := operand(row.RHR)
		if err != nil {
			return nil, err
		}
		return q.alg.Join(l, row.LHA[0], row.Theta, r, row.RHA.Attr)
	case translate.OpMerge:
		if row.LHR.Kind != translate.OpdRegs {
			return nil, fmt.Errorf("Merge requires a register list")
		}
		scheme, ok := q.schema.Scheme(row.Scheme)
		if !ok {
			return nil, fmt.Errorf("Merge row names unknown scheme %q", row.Scheme)
		}
		rels := make([]*core.Relation, 0, len(row.LHR.Regs))
		for _, rn := range row.LHR.Regs {
			r, ok := regs[rn]
			if !ok {
				return nil, fmt.Errorf("register R(%d) not computed", rn)
			}
			rels = append(rels, r)
		}
		if q.BalancedMerge {
			return q.alg.MergeBalanced(scheme, rels...)
		}
		return q.alg.Merge(scheme, rels...)
	case translate.OpUnion:
		return q.binary(row, regs, q.alg.Union)
	case translate.OpDifference:
		return q.binary(row, regs, q.alg.Difference)
	case translate.OpIntersect:
		return q.binary(row, regs, q.alg.Intersect)
	case translate.OpProduct:
		return q.binary(row, regs, q.alg.Product)
	default:
		return nil, fmt.Errorf("unsupported PQP operation %q", row.Op)
	}
}

func (q *PQP) binary(row translate.Row, regs map[int]*core.Relation, fn func(a, b *core.Relation) (*core.Relation, error)) (*core.Relation, error) {
	if row.LHR.Kind != translate.OpdReg || row.RHR.Kind != translate.OpdReg {
		return nil, fmt.Errorf("%s requires register operands", row.Op)
	}
	l, ok := regs[row.LHR.Reg]
	if !ok {
		return nil, fmt.Errorf("register R(%d) not computed", row.LHR.Reg)
	}
	r, ok := regs[row.RHR.Reg]
	if !ok {
		return nil, fmt.Errorf("register R(%d) not computed", row.RHR.Reg)
	}
	return fn(l, r)
}

// runLocal executes one LQP-resident row: it builds the local operation (or
// the pushed-down subplan, when the optimizer fused later rows into this
// one), sends it to the LQP named by the row's execution location, applies
// the schema's domain mappings, and tags every cell with the execution
// location as its originating source (paper §III: "when the execution
// location is an LQP ... it is also used as the originating source tag for
// each of the cells"). The intermediate set is empty for a plain local
// operation; when the subplan carries fused Select/Restrict steps it is
// {EL} — exactly what the displaced PQP-resident rows would have added,
// since every cell of a freshly retrieved relation has origin {EL}.
func (q *PQP) runLocal(row translate.Row, env execEnv) (*core.Relation, error) {
	processor, ok := q.lqps[row.EL]
	if !ok {
		return nil, fmt.Errorf("no LQP for local database %q", row.EL)
	}
	plan, err := localPlan(row)
	if err != nil {
		return nil, err
	}
	l := q.boundLQP(processor, env)
	start := time.Now()
	var plain *rel.Relation
	if len(plan.Ops) == 1 {
		plain, err = l.Execute(plan.Base())
	} else {
		plain, err = lqp.ExecutePlanOn(l, plan)
	}
	if err != nil {
		if plain, err = q.degrade(row, plan, env, err); err != nil {
			return nil, err
		}
	} else {
		q.observeLocal(row, plan, plain, time.Since(start))
	}
	return q.tagPlain(plain, row.EL, row.LHR.Name, plan.Mediates())
}

// observeLocal feeds the statistics catalog from executed local work: full
// Retrieves carry exact relation cardinalities, and every operation's wall
// time updates the LQP's latency average.
func (q *PQP) observeLocal(row translate.Row, plan lqp.Plan, plain *rel.Relation, d time.Duration) {
	if q.Stats == nil {
		return
	}
	q.Stats.ObserveLatency(row.EL, d)
	if plain != nil && len(plan.Ops) == 1 && plan.Base().Kind == lqp.OpRetrieve {
		q.Stats.ObserveCardinality(row.EL, row.LHR.Name, len(plain.Tuples))
	}
}

// localPlan builds the local subplan of an LQP-resident row: the row's own
// operation plus any steps the optimizer fused into it.
func localPlan(row translate.Row) (lqp.Plan, error) {
	base, err := localOp(row)
	if err != nil {
		return lqp.Plan{}, err
	}
	return lqp.PlanOf(base, row.Pushed...), nil
}

// localOp builds the local operation an LQP-resident row asks for; both the
// materializing and the streaming engine route rows through it.
func localOp(row translate.Row) (lqp.Op, error) {
	if row.LHR.Kind != translate.OpdLocal {
		return lqp.Op{}, fmt.Errorf("local row requires a local relation operand, found %s", row.LHR)
	}
	switch row.Op {
	case translate.OpRetrieve:
		return lqp.Retrieve(row.LHR.Name), nil
	case translate.OpSelect:
		if row.RHA.Kind != translate.CmpConst {
			return lqp.Op{}, fmt.Errorf("local Select requires a constant RHA")
		}
		return lqp.Select(row.LHR.Name, row.LHA[0], row.Theta, row.RHA.Const), nil
	case translate.OpRestrict:
		if row.RHA.Kind != translate.CmpAttr {
			return lqp.Op{}, fmt.Errorf("local Restrict requires an attribute RHA")
		}
		return lqp.Restrict(row.LHR.Name, row.LHA[0], row.Theta, row.RHA.Attr), nil
	case translate.OpProject:
		return lqp.Project(row.LHR.Name, row.LHA...), nil
	default:
		return lqp.Op{}, fmt.Errorf("operation %q cannot execute at an LQP", row.Op)
	}
}

// tagPlan computes, for each local column retrieved from db.localScheme,
// the polygen-annotated output attribute and the domain-map function to
// apply before tagging. Shared by TagRetrieved and the streaming tag
// cursor so both engines tag identically.
func (q *PQP) tagPlan(db, localScheme string, names []string) ([]core.Attr, []func(rel.Value) rel.Value) {
	attrs := make([]core.Attr, len(names))
	fns := make([]func(rel.Value) rel.Value, len(names))
	for i, n := range names {
		attrs[i] = core.Attr{Name: n}
		la := core.LocalAttr{DB: db, Scheme: localScheme, Attr: n}
		if sa, ok := q.schema.PolygenAttrOf(la); ok {
			attrs[i].Polygen = sa.Attr
		}
		fns[i] = q.schema.DomainMap.Lookup(db, localScheme, n)
	}
	return attrs, fns
}

// TagRetrieved converts a plain relation returned by the LQP of database db
// into a polygen relation: domain mappings apply first, then every cell is
// tagged with origin {db} and an empty intermediate set, and every column is
// annotated with the polygen attribute the schema maps it to.
func (q *PQP) TagRetrieved(plain *rel.Relation, db, localScheme string) (*core.Relation, error) {
	return q.tagPlain(plain, db, localScheme, false)
}

// tagPlain is TagRetrieved with the optimizer's intermediate-tag
// reconstruction: mediated results — subplans whose pushed steps include a
// Select or Restrict — tag every cell's intermediate set with {db}, the
// tags the displaced PQP-resident filters would have contributed.
func (q *PQP) tagPlain(plain *rel.Relation, db, localScheme string, mediated bool) (*core.Relation, error) {
	names := plain.Schema.Names()
	attrs, fns := q.tagPlan(db, localScheme, names)
	// Apply domain mappings column-wise before tagging. The relation is a
	// query-private snapshot, so mapping in place is safe here (the
	// streaming path, whose batches alias live base relations, copies).
	for ci := range names {
		fn := fns[ci]
		for _, t := range plain.Tuples {
			t[ci] = fn(t[ci])
		}
	}
	src := q.reg.Intern(db)
	p := core.FromPlain(plain, src, q.reg)
	p.Name = localScheme
	for i := range p.Attrs {
		p.Attrs[i].Polygen = attrs[i].Polygen
	}
	if mediated {
		inter := sourceset.Of(src)
		for _, t := range p.Tuples {
			for i := range t {
				t[i].I = t[i].I.Union(inter)
			}
		}
	}
	return p, nil
}
