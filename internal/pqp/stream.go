package pqp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
	"repro/internal/translate"
)

// This file is the streaming execution engine: a plan is compiled into a
// tree of core.Cursors (OpenPlan) and the answer is pulled through it batch
// by batch. Registers consumed exactly once never materialize — their rows
// flow straight into the consuming operator; registers consumed more than
// once (or by no one: dead rows still execute, for LQP-operation fidelity)
// are drained into relations at build time, exactly as the materializing
// engine would.
//
// LQP-resident rows are opened eagerly, in plan order, each behind a
// prefetching reader: every local retrieval proceeds on its own goroutine
// (bounded by prefetchDepth batches) while the PQP evaluates, so wide-area
// LQP latency overlaps both with PQP-side operator work and with the other
// retrievals — the streaming engine gets the B-PAR fan-out overlap without
// giving up the serial engine's deterministic operation order.

// prefetchDepth is how many batches a local stream may run ahead of its
// consumer: deep enough to absorb per-batch wide-area latency, shallow
// enough to bound every stream's buffered memory.
const prefetchDepth = 8

// errRedefinedRegister marks plans that assign one register twice; the
// streaming engine cannot compile those (a pending cursor would be
// clobbered), so Execute falls back to the materializing engine.
var errRedefinedRegister = errors.New("pqp: plan redefines a register")

// Execute evaluates an Intermediate Operation Matrix with the streaming
// engine and returns the final register's relation. The result is
// cell-for-cell identical to ExecuteMaterialized's (the property suite and
// the paper-table tests hold both engines to it).
func (q *PQP) Execute(iom *translate.Matrix) (*core.Relation, error) {
	return q.execute(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) execute(iom *translate.Matrix, env execEnv) (*core.Relation, error) {
	cur, err := q.openPlan(iom, env)
	if errors.Is(err, errRedefinedRegister) {
		return q.executeMaterialized(iom, env)
	}
	if err != nil {
		return nil, err
	}
	out, err := core.Drain(cur)
	if err != nil {
		// Streamed operators defer their work to the drain, so the failing
		// row cannot be named here — the wrapped error carries the failing
		// operator's own context (lqp/wire/core prefixes).
		return nil, fmt.Errorf("pqp: draining streamed plan: %w", err)
	}
	return out, nil
}

// OpenPlan compiles an Intermediate Operation Matrix into a tree of
// streaming cursors and returns the cursor for the final register. The
// caller owns the cursor and must Close it (draining it to completion also
// closes the whole tree). Local rows are opened against their LQPs during
// compilation, in plan order.
func (q *PQP) OpenPlan(iom *translate.Matrix) (core.Cursor, error) {
	return q.openPlan(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) openPlan(iom *translate.Matrix, env execEnv) (core.Cursor, error) {
	if iom.Cardinality() == 0 {
		return nil, fmt.Errorf("pqp: empty plan")
	}
	// Count how many times each register is consumed; the final register
	// gains one consumer — the caller.
	consumers := make(map[int]int, iom.Cardinality())
	defined := make(map[int]bool, iom.Cardinality())
	for _, row := range iom.Rows {
		if defined[row.PR] {
			return nil, fmt.Errorf("%w: R(%d)", errRedefinedRegister, row.PR)
		}
		defined[row.PR] = true
		for _, o := range [...]translate.Operand{row.LHR, row.RHR} {
			switch o.Kind {
			case translate.OpdReg:
				consumers[o.Reg]++
			case translate.OpdRegs:
				for _, r := range o.Regs {
					consumers[r]++
				}
			}
		}
	}
	last := iom.Rows[len(iom.Rows)-1].PR
	consumers[last]++

	pending := make(map[int]core.Cursor) // single-consumer registers, not yet claimed
	mats := make(map[int]*core.Relation) // multi-consumer (or dead) registers
	closePending := func() {
		for _, c := range pending {
			c.Close()
		}
	}
	takeReg := func(n int) (core.Cursor, error) {
		if c, ok := pending[n]; ok {
			delete(pending, n)
			return c, nil
		}
		if p, ok := mats[n]; ok {
			return core.CursorOf(p), nil
		}
		return nil, fmt.Errorf("register R(%d) not computed", n)
	}

	for _, row := range iom.Rows {
		c, err := q.openRow(row, takeReg, env)
		if err != nil {
			closePending()
			return nil, fmt.Errorf("pqp: executing %s: %w", row, err)
		}
		if consumers[row.PR] == 1 {
			pending[row.PR] = c
			if q.Trace != nil {
				q.Trace("%-60s -> streamed", row.String())
			}
			continue
		}
		p, err := core.Drain(c)
		if err != nil {
			closePending()
			return nil, fmt.Errorf("pqp: executing %s: %w", row, err)
		}
		mats[row.PR] = p
		if q.Trace != nil {
			q.Trace("%-60s -> %d tuples", row.String(), p.Cardinality())
		}
	}
	if c, ok := pending[last]; ok {
		delete(pending, last)
		closePending() // defensive: a well-formed plan leaves nothing pending
		return c, nil
	}
	closePending()
	return core.CursorOf(mats[last]), nil
}

// openRow builds the cursor for one plan row, claiming its register
// operands through takeReg.
func (q *PQP) openRow(row translate.Row, takeReg func(int) (core.Cursor, error), env execEnv) (core.Cursor, error) {
	if row.EL != "PQP" {
		return q.openLocal(row, env)
	}
	operand := func(o translate.Operand) (core.Cursor, error) {
		if o.Kind != translate.OpdReg {
			return nil, fmt.Errorf("PQP operand must be a register, found %s", o)
		}
		return takeReg(o.Reg)
	}
	binary := func(build func(l, r core.Cursor) (core.Cursor, error)) (core.Cursor, error) {
		l, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		r, err := operand(row.RHR)
		if err != nil {
			l.Close()
			return nil, err
		}
		return build(l, r)
	}
	switch row.Op {
	case translate.OpSelect:
		in, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		if row.RHA.Kind != translate.CmpConst {
			in.Close()
			return nil, fmt.Errorf("Select requires a constant RHA")
		}
		return q.alg.StreamSelect(in, row.LHA[0], row.Theta, row.RHA.Const)
	case translate.OpRestrict:
		in, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		switch row.RHA.Kind {
		case translate.CmpAttr:
			return q.alg.StreamRestrict(in, row.LHA[0], row.Theta, row.RHA.Attr)
		case translate.CmpConst:
			return q.alg.StreamSelect(in, row.LHA[0], row.Theta, row.RHA.Const)
		default:
			in.Close()
			return nil, fmt.Errorf("Restrict requires an RHA")
		}
	case translate.OpProject:
		in, err := operand(row.LHR)
		if err != nil {
			return nil, err
		}
		return q.alg.StreamProject(in, row.LHA)
	case translate.OpJoin:
		return binary(func(l, r core.Cursor) (core.Cursor, error) {
			return q.alg.StreamJoin(l, row.LHA[0], row.Theta, r, row.RHA.Attr)
		})
	case translate.OpMerge:
		if row.LHR.Kind != translate.OpdRegs {
			return nil, fmt.Errorf("Merge requires a register list")
		}
		scheme, ok := q.schema.Scheme(row.Scheme)
		if !ok {
			return nil, fmt.Errorf("Merge row names unknown scheme %q", row.Scheme)
		}
		ins := make([]core.Cursor, 0, len(row.LHR.Regs))
		for _, rn := range row.LHR.Regs {
			c, err := takeReg(rn)
			if err != nil {
				for _, open := range ins {
					open.Close()
				}
				return nil, err
			}
			ins = append(ins, c)
		}
		return q.alg.StreamMerge(scheme, q.BalancedMerge, ins...)
	case translate.OpUnion:
		return binary(q.alg.StreamUnion)
	case translate.OpDifference:
		return binary(q.alg.StreamDifference)
	case translate.OpIntersect:
		return binary(q.alg.StreamIntersect)
	case translate.OpProduct:
		return binary(q.alg.StreamProduct)
	default:
		return nil, fmt.Errorf("unsupported PQP operation %q", row.Op)
	}
}

// openLocal opens one LQP-resident row as a tagged stream: the LQP cursor
// is wrapped in a prefetching reader (so retrieval overlaps with PQP work)
// and a tagging cursor that applies domain mappings and attaches the
// execution location as every cell's originating source. Rows carrying
// optimizer-fused steps open as pushed-down subplans, so only the filtered,
// narrowed batches cross the LQP boundary; the tag cursor reconstructs the
// intermediate tags the displaced PQP-side filters would have added (see
// runLocal).
func (q *PQP) openLocal(row translate.Row, env execEnv) (core.Cursor, error) {
	processor, ok := q.lqps[row.EL]
	if !ok {
		return nil, fmt.Errorf("no LQP for local database %q", row.EL)
	}
	plan, err := localPlan(row)
	if err != nil {
		return nil, err
	}
	l := q.boundLQP(processor, env)
	var rc rel.Cursor
	if len(plan.Ops) == 1 {
		rc, err = lqp.OpenLQP(l, plan.Base())
	} else {
		rc, err = lqp.OpenPlanOn(l, plan)
	}
	if err != nil {
		// An exhausted source degrades (policy permitting) to an empty
		// stream with the columns the operation would have produced; no
		// prefetch needed for a stream with nothing to fetch. Mid-stream
		// exhaustion after a successful open stays fatal under either
		// policy: rows already delivered downstream cannot be recalled,
		// and a partial prefix must never masquerade as the leg's answer.
		plain, derr := q.degrade(row, plan, env, err)
		if derr != nil {
			return nil, derr
		}
		return q.newTagCursor(rel.CursorOf(plain), row.EL, row.LHR.Name, plan.Mediates()), nil
	}
	return q.newTagCursor(rel.Prefetch(rc, prefetchDepth), row.EL, row.LHR.Name, plan.Mediates()), nil
}

// tagCursor is the streaming counterpart of tagPlain: each batch of plain
// rows is domain-mapped and tagged with origin {db} into fresh polygen rows
// (the input batches may alias a live base relation and are never mutated).
// The intermediate set is empty, or {db} for mediated pushed-down subplans
// (see runLocal).
type tagCursor struct {
	name   string
	attrs  []core.Attr
	in     rel.Cursor
	fns    []func(rel.Value) rel.Value
	origin sourceset.Set
	inter  sourceset.Set
	out    *core.Relation // arena holder for output rows
}

func (q *PQP) newTagCursor(in rel.Cursor, db, localScheme string, mediated bool) *tagCursor {
	attrs, fns := q.tagPlan(db, localScheme, in.Schema().Names())
	c := &tagCursor{
		name:   localScheme,
		attrs:  attrs,
		in:     in,
		fns:    fns,
		origin: sourceset.Of(q.reg.Intern(db)),
		out:    core.NewRelation(localScheme, q.reg, attrs...),
	}
	if mediated {
		c.inter = c.origin
	}
	return c
}

func (c *tagCursor) Name() string                  { return c.name }
func (c *tagCursor) Attrs() []core.Attr            { return c.attrs }
func (c *tagCursor) Registry() *sourceset.Registry { return c.out.Reg }

func (c *tagCursor) Next() ([]core.Tuple, error) {
	batch, err := c.in.Next()
	if err != nil {
		return nil, err
	}
	rows := make([]core.Tuple, len(batch))
	for bi, t := range batch {
		row := c.out.NewRow(len(t))
		for i, v := range t {
			row[i] = core.Cell{D: c.fns[i](v), O: c.origin, I: c.inter}
		}
		rows[bi] = row
	}
	return rows, nil
}

// NextCol implements core.ColCursor: over a columnar input (a binary wire
// stream behind a prefetch, or a local slice cursor) the plain column batch
// is domain-mapped and tagged column-at-a-time, with the constant origin and
// intermediate sets as two dictionary indexes instead of a Set pair per
// cell. Row inputs are columnarized first.
func (c *tagCursor) NextCol() (*core.ColBatch, error) {
	var rb *rel.ColBatch
	if cc, ok := c.in.(rel.ColCursor); ok {
		b, err := cc.NextCol()
		if err != nil {
			return nil, err
		}
		rb = b
	} else {
		batch, err := c.in.Next()
		if err != nil {
			return nil, err
		}
		rb = rel.FromTuples(c.in.Schema(), batch)
	}
	return core.TagColumns(c.name, c.out.Reg, c.attrs, rb, c.fns, c.origin, c.inter), nil
}

func (c *tagCursor) Close() error { return c.in.Close() }

var _ core.ColCursor = (*tagCursor)(nil)
