package pqp

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/rel"
	"repro/internal/translate"
	"repro/internal/wire"
	"repro/internal/workload"
)

// This file holds the property suite of the cost-based federated optimizer:
// every optimized plan must produce the same polygen relation — data,
// origin tags AND intermediate tags, cell for cell — as the unoptimized
// plan, on both the streaming and the materializing engine. The optimizer
// is free to change WHERE work happens (pushed-down subplans, narrowed
// retrievals, swapped join operands); it is never free to change the
// answer.

// renderSorted renders a relation one line per tuple (cells in the paper's
// "datum, {o}, {i}" notation) and sorts the lines, so plans that produce
// rows in a different order — join-operand swaps legitimately do — still
// compare cell-for-cell.
func renderSorted(p *core.Relation) []string {
	out := render(p)
	sort.Strings(out)
	return out
}

func diffRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s: relations differ\n got:\n  %s\nwant:\n  %s",
			label, strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// paperQueries is the paperdata battery: selection chains (fusable),
// projection chains, merges (not fusable), domain-mapped attributes
// (PQP-pinned), joins, set operations, and the paper's worked example.
var paperQueries = []string{
	`(PALUMNUS [DEGREE = "MBA"])`,
	`(PALUMNUS [DEGREE = "MBA"]) [MAJOR = "IS"]`,
	`((PALUMNUS [DEGREE = "MBA"]) [MAJOR = "IS"]) [ANAME]`,
	`(PALUMNUS [DEGREE = "MBA"]) [ANAME, DEGREE]`,
	`(PORGANIZATION [INDUSTRY = "Banking"]) [ONAME, CEO]`,
	`(PORGANIZATION [INDUSTRY = "Banking"]) UNION (PORGANIZATION [INDUSTRY = "Energy"])`,
	`(PALUMNUS) MINUS (PALUMNUS [DEGREE = "MBA"])`,
	`( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`,
	`(PSTUDENT [GPA >= 3.5]) [SNAME, GPA]`,
}

// starQueries is the star-schema battery under an exact resolver with
// statistics: join chains that reorder, chains that fuse, and mixes.
var starQueries = []string{
	`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
	`((PDIM [DK = DK] PFACT) [VAL, DCAT])`,
	`(((PFACT [DK = DK] PDIM) [MK = MK] PMID) [VAL, DCAT, GRADE])`,
	`(((PFACT [CAT = "cat1"]) [DK = DK] PDIM) [VAL, DCAT])`,
}

// runAllEngines executes one query on a PQP in all four configurations and
// checks cell-for-cell agreement: optimized/unoptimized × streaming/
// materializing. It returns the optimized plan for shape assertions.
func runAllEngines(t *testing.T, q *PQP, query string) *translate.Matrix {
	t.Helper()
	q.Optimize = true
	opt, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatalf("optimized %s: %v", query, err)
	}
	optMat, err := q.ExecuteMaterialized(opt.Plan)
	if err != nil {
		t.Fatalf("optimized materialized %s: %v", query, err)
	}
	q.Optimize = false
	ref, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatalf("reference %s: %v", query, err)
	}
	refMat, err := q.ExecuteMaterialized(ref.Plan)
	if err != nil {
		t.Fatalf("reference materialized %s: %v", query, err)
	}
	q.Optimize = true

	want := renderSorted(ref.Relation)
	diffRows(t, query+" [optimized streaming vs reference]", renderSorted(opt.Relation), want)
	diffRows(t, query+" [optimized materialized vs reference]", renderSorted(optMat), want)
	diffRows(t, query+" [reference engines agree]", renderSorted(refMat), want)
	return opt.Plan
}

// TestOptimizedPlansMatchReferencePaper: the paperdata battery under the
// CaseFold resolver (so restrict pushdown and join reordering stay off, and
// fusion/narrowing carry the plans).
func TestOptimizedPlansMatchReferencePaper(t *testing.T) {
	fed := paperdata.New()
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	for _, query := range paperQueries {
		runAllEngines(t, q, query)
	}
}

// TestOptimizedPlansMatchReferenceStar: the star battery under an exact
// resolver with collected statistics — every cost-based pass is live, and
// the strict tag rule still holds cell-for-cell.
func TestOptimizedPlansMatchReferenceStar(t *testing.T) {
	star := workload.NewStar(workload.DefaultStarConfig())
	q := New(star.Schema, star.Registry, nil, star.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	for _, query := range starQueries {
		runAllEngines(t, q, query)
	}
}

// TestOptimizedPlansOverWire: the same agreement holds when the LQPs are
// remote — pushed-down subplans travel the new "execplan"/"openplan"
// request kinds and statistics the "stats" kind.
func TestOptimizedPlansOverWire(t *testing.T) {
	star := workload.NewStar(workload.StarConfig{Facts: 500, Dims: 20, Mids: 5, Categories: 5, Seed: 7})
	lqps := make(map[string]lqp.LQP, 3)
	for _, db := range star.Databases() {
		srv := wire.NewServer(db)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		client, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		lqps[client.Name()] = client
	}
	q := New(star.Schema, star.Registry, nil, lqps)
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	for _, query := range starQueries {
		runAllEngines(t, q, query)
	}
}

// TestRelaxedReorderPreservesDataAndOrigins: with RelaxedJoinReorder the
// optimizer may pick join orders whose intermediate tags record the new
// evaluation order; data and origin tags must still match the reference
// exactly.
func TestRelaxedReorderPreservesDataAndOrigins(t *testing.T) {
	star := workload.NewStar(workload.DefaultStarConfig())
	q := New(star.Schema, star.Registry, nil, star.LQPs())
	if err := q.CollectStats(); err != nil {
		t.Fatal(err)
	}
	q.RelaxedJoinReorder = true
	query := `(((PFACT [DK = DK] PDIM) [MK = MK] PMID) [VAL, DCAT, GRADE])`
	opt, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	q.Optimize = false
	ref, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDataOrigins(opt.Relation), renderDataOrigins(ref.Relation)
	sort.Strings(a)
	sort.Strings(b)
	diffRows(t, query+" [relaxed reorder, data+origins]", a, b)
}

// renderDataOrigins renders data and origin tags only (the relaxed mode's
// contract excludes intermediate tags).
func renderDataOrigins(p *core.Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.D.String() + ", " + c.O.Format(p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

// TestPushdownReducesTransfer: the whole point — a fused subplan ships only
// the filtered, narrowed rows. Counting LQPs meter the simulated transfer.
func TestPushdownReducesTransfer(t *testing.T) {
	star := workload.NewStar(workload.DefaultStarConfig())
	counters := make(map[string]*lqp.Counting, 3)
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range star.LQPs() {
		c := lqp.NewCounting(l)
		counters[name] = c
		lqps[name] = c
	}
	q := New(star.Schema, star.Registry, nil, lqps)
	query := `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`

	q.Optimize = false
	if _, err := q.QueryAlgebra(query); err != nil {
		t.Fatal(err)
	}
	unopt := counters["FD"].CellsTransferred()
	counters["FD"].Reset()

	q.Optimize = true
	res, err := q.QueryAlgebra(query)
	if err != nil {
		t.Fatal(err)
	}
	opt := counters["FD"].CellsTransferred()
	if opt >= unopt {
		t.Errorf("pushdown did not reduce transfer: %d cells optimized vs %d unoptimized\nplan:\n%s",
			opt, unopt, res.Plan)
	}
	// The fused subplan reached the LQP as one pushed plan with the chained
	// filter and the projection.
	plans := counters["FD"].Plans()
	if len(plans) != 1 || len(plans[0].Steps()) != 2 {
		t.Fatalf("expected one 2-step pushed plan at FD, got %v", plans)
	}
	// Optimized transfer is exactly the surviving rows × the single
	// projected column.
	if want := int64(res.Relation.Cardinality()); opt != want {
		t.Errorf("optimized transfer = %d cells, want %d (rows × 1 narrowed column)", opt, want)
	}
}

// noPushLQP hides every optional capability of an LQP, modeling a minimal
// federation member that only speaks the paper's four local operations.
type noPushLQP struct{ inner lqp.LQP }

func (n noPushLQP) Name() string                             { return n.inner.Name() }
func (n noPushLQP) Relations() ([]string, error)             { return n.inner.Relations() }
func (n noPushLQP) Execute(op lqp.Op) (*rel.Relation, error) { return n.inner.Execute(op) }

// TestPushdownSkippedForIncapableLQP: against capability-less LQPs the
// optimizer leaves chains PQP-side — no multi-op plans reach the LQP — and
// the answers still match the reference.
func TestPushdownSkippedForIncapableLQP(t *testing.T) {
	star := workload.NewStar(workload.DefaultStarConfig())
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range star.LQPs() {
		lqps[name] = noPushLQP{inner: l}
	}
	q := New(star.Schema, star.Registry, nil, lqps)
	query := `((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`
	plan := runAllEngines(t, q, query)
	for _, row := range plan.Rows {
		if len(row.Pushed) > 0 {
			t.Errorf("steps pushed to a capability-less LQP: %s", row)
		}
	}
}
