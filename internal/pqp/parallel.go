package pqp

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/translate"
)

// ExecuteParallel evaluates an Intermediate Operation Matrix with
// inter-row parallelism: every row starts as soon as the registers it
// references are materialized, so independent local queries — the Retrieve
// fan-out of a Merge, or the two sides of a relocated join — run against
// their LQPs concurrently. The paper's federation spanned MIT, England and
// Canada; with wide-area LQP latencies the fan-out dominates plan latency
// and parallel retrieval recovers it (benchmark B-PAR).
//
// The result is identical to Execute's: the polygen algebra is purely
// functional over immutable inputs, so evaluation order cannot affect tags
// or data (TestParallelMatchesSerial). Concurrent rows share the algebra's
// resolver; identity.Resolver.CanonicalID is safe for concurrent use and
// assigns one stable ID per canonical form, so interleaved interning cannot
// change any row's join result.
func (q *PQP) ExecuteParallel(iom *translate.Matrix) (*core.Relation, error) {
	return q.executeParallel(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) executeParallel(iom *translate.Matrix, env execEnv) (*core.Relation, error) {
	regs, err := q.executeAllParallel(iom, env)
	if err != nil {
		return nil, err
	}
	return regs[iom.Rows[len(iom.Rows)-1].PR], nil
}

// ExecuteAllParallel is ExecuteParallel returning every register.
func (q *PQP) ExecuteAllParallel(iom *translate.Matrix) (map[int]*core.Relation, error) {
	return q.executeAllParallel(iom, execEnv{policy: q.Degrade})
}

func (q *PQP) executeAllParallel(iom *translate.Matrix, env execEnv) (map[int]*core.Relation, error) {
	if iom.Cardinality() == 0 {
		return nil, fmt.Errorf("pqp: empty plan")
	}
	type slot struct {
		rel  *core.Relation
		err  error
		done chan struct{}
	}
	slots := make(map[int]*slot, iom.Cardinality())
	for _, row := range iom.Rows {
		if _, dup := slots[row.PR]; dup {
			return nil, fmt.Errorf("pqp: duplicate register R(%d) in plan", row.PR)
		}
		slots[row.PR] = &slot{done: make(chan struct{})}
	}

	deps := func(row translate.Row) ([]int, error) {
		var out []int
		add := func(o translate.Operand) error {
			switch o.Kind {
			case translate.OpdReg:
				if _, ok := slots[o.Reg]; !ok {
					return fmt.Errorf("pqp: plan references unknown register R(%d)", o.Reg)
				}
				out = append(out, o.Reg)
			case translate.OpdRegs:
				for _, r := range o.Regs {
					if _, ok := slots[r]; !ok {
						return fmt.Errorf("pqp: plan references unknown register R(%d)", r)
					}
					out = append(out, r)
				}
			}
			return nil
		}
		if err := add(row.LHR); err != nil {
			return nil, err
		}
		if err := add(row.RHR); err != nil {
			return nil, err
		}
		return out, nil
	}

	var wg sync.WaitGroup
	for _, row := range iom.Rows {
		row := row
		s := slots[row.PR]
		dd, err := deps(row)
		if err != nil {
			// Close every pending slot so spawned goroutines cannot leak.
			s.err = err
			close(s.done)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(s.done)
			view := make(map[int]*core.Relation, len(dd))
			for _, d := range dd {
				ds := slots[d]
				<-ds.done
				if ds.err != nil {
					s.err = fmt.Errorf("dependency R(%d): %w", d, ds.err)
					return
				}
				view[d] = ds.rel
			}
			s.rel, s.err = q.step(row, view, env)
			if q.Trace != nil && s.err == nil {
				q.Trace("%-60s -> %d tuples", row.String(), s.rel.Cardinality())
			}
		}()
	}
	wg.Wait()

	out := make(map[int]*core.Relation, len(slots))
	for _, row := range iom.Rows {
		s := slots[row.PR]
		if s.err != nil {
			return nil, fmt.Errorf("pqp: executing %s: %w", row, s.err)
		}
		out[row.PR] = s.rel
	}
	return out, nil
}

// RunParallel is Run with ExecuteParallel as the evaluation strategy. It
// shares Run's translation path — plan cache included.
func (q *PQP) RunParallel(e translate.Expr) (*Result, error) {
	res, err := q.plan(e)
	if err != nil {
		return nil, err
	}
	env := execEnv{policy: q.Degrade, diag: federation.NewDiagnostics()}
	if res.Relation, err = q.executeParallel(res.Plan, env); err != nil {
		return nil, err
	}
	res.Diag = env.diag
	return res, nil
}
