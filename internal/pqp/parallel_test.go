package pqp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/lqp"
	"repro/internal/paperdata"
	"repro/internal/translate"
)

// TestParallelMatchesSerial: identical tagged answers (and intermediate
// registers) under both evaluation strategies for the paper query.
func TestParallelMatchesSerial(t *testing.T) {
	q := newPQP(t)
	e, err := translate.CompileSQL(`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`, q.Schema())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := q.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := q.RunParallel(e)
	if err != nil {
		t.Fatal(err)
	}
	a := strings.Join(render(serial.Relation), "\n")
	b := strings.Join(render(parallel.Relation), "\n")
	if a != b {
		t.Errorf("parallel answer differs:\nserial:\n%s\nparallel:\n%s", a, b)
	}
}

// TestParallelOverlapsLQPLatency: with three LQPs at injected latency, the
// Merge's retrieve fan-out overlaps under both the parallel materializing
// engine and the streaming engine (whose prefetching local streams proceed
// concurrently); only the serial materializing engine pays one full round
// trip per local operation.
func TestParallelOverlapsLQPLatency(t *testing.T) {
	const latency = 20 * time.Millisecond
	fed := paperdata.New()
	lqps := make(map[string]lqp.LQP, 3)
	for name, l := range fed.LQPs() {
		c := lqp.NewCounting(l)
		c.Latency = latency
		lqps[name] = c
	}
	q := New(fed.Schema, fed.Registry, identity.CaseFold{}, lqps)
	e, err := translate.CompileSQL(`SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`, q.Schema())
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run(e) // plan once; time the engines below
	if err != nil {
		t.Fatal(err)
	}
	// Serial materializing: 3 sequential retrieves = 3 × latency minimum.
	start := time.Now()
	if _, err := q.ExecuteMaterialized(res.Plan); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)
	start = time.Now()
	if _, err := q.ExecuteParallel(res.Plan); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	start = time.Now()
	if _, err := q.Execute(res.Plan); err != nil {
		t.Fatal(err)
	}
	streaming := time.Since(start)
	if serial < 3*latency {
		t.Fatalf("serial run too fast (%v); latency injection broken?", serial)
	}
	if parallel >= serial {
		t.Errorf("parallel (%v) not faster than serial (%v)", parallel, serial)
	}
	if parallel > 2*latency {
		t.Errorf("parallel run %v; the three retrieves should overlap into ~one latency (%v)", parallel, latency)
	}
	if streaming >= serial {
		t.Errorf("streaming (%v) not faster than serial materializing (%v)", streaming, serial)
	}
}

// TestParallelErrorPropagation: a failing dependency aborts downstream rows
// with a chained error, and no goroutine deadlocks.
func TestParallelErrorPropagation(t *testing.T) {
	q := newPQP(t)
	bad := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("NOSUCH"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 2, Op: translate.OpProject, LHR: translate.RegOperand(1), LHA: []string{"X"}, RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP"},
	}}
	_, err := q.ExecuteParallel(bad)
	if err == nil {
		t.Fatal("missing relation accepted")
	}
	if !strings.Contains(err.Error(), "NOSUCH") && !strings.Contains(err.Error(), "dependency") {
		t.Errorf("error = %v", err)
	}
}

// TestParallelUnknownRegister: dangling references fail cleanly.
func TestParallelUnknownRegister(t *testing.T) {
	q := newPQP(t)
	bad := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpProject, LHR: translate.RegOperand(42), LHA: []string{"X"}, RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "PQP"},
	}}
	if _, err := q.ExecuteParallel(bad); err == nil {
		t.Error("dangling register accepted")
	}
	if _, err := q.ExecuteParallel(&translate.Matrix{}); err == nil {
		t.Error("empty plan accepted")
	}
}

// TestParallelDuplicateRegister: malformed plans are rejected up front.
func TestParallelDuplicateRegister(t *testing.T) {
	q := newPQP(t)
	bad := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("ALUMNUS"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("CAREER"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
	}}
	if _, err := q.ExecuteParallel(bad); err == nil {
		t.Error("duplicate register accepted")
	}
}
