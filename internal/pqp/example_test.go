package pqp_test

import (
	"fmt"

	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
)

// Example runs the paper's §III polygen query end to end over the embedded
// federation and prints the composite answer with its source tags (the
// paper's Table 9).
func Example() {
	fed := paperdata.New()
	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())

	res, err := processor.QuerySQL(`SELECT ONAME, CEO FROM PORGANIZATION, PALUMNUS
		WHERE CEO = ANAME AND ONAME IN
		(SELECT ONAME FROM PCAREER WHERE AID# IN
		(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, t := range res.Relation.Tuples {
		fmt.Printf("%s | %s\n", t[0].Format(fed.Registry), t[1].Format(fed.Registry))
	}
	// Output:
	// Genentech, {AD, CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}
	// Langley Castle, {AD, CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}
	// Citicorp, {AD, PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
}
