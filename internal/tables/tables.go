// Package tables is the reproduction harness for the paper's evaluation
// artifacts: it renders polygen relations and operation matrices in the
// paper's notation, carries the expected content of every table (Tables 1–9
// and A1–A9), and recomputes all of them from the embedded federation so
// that tests and cmd/paper-tables can diff paper-vs-got cell by cell.
package tables

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/translate"
)

// PaperExpr is the polygen algebraic expression of §III for the example
// polygen query (Table 1's source).
const PaperExpr = `( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID# = AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`

// PaperSQL is the SQL polygen query of §III.
const PaperSQL = `SELECT ONAME, CEO
FROM PORGANIZATION, PALUMNUS
WHERE CEO = ANAME AND ONAME IN
(SELECT ONAME FROM PCAREER WHERE AID# IN
(SELECT AID# FROM PALUMNUS WHERE DEGREE = "MBA"))`

// SectionOneSQL is the simpler polygen query of §I.
const SectionOneSQL = `SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"`

// RenderRelation renders a polygen relation as a header plus one line per
// tuple, each cell in the paper's "datum, {o...}, {i...}" notation and cells
// separated by " | ".
func RenderRelation(p *core.Relation) (header string, rows []string) {
	header = strings.Join(p.AttrNames(), " | ")
	rows = make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		rows = append(rows, strings.Join(parts, " | "))
	}
	return header, rows
}

// ParseExpected splits a multi-line expected table literal into header and
// rows, trimming indentation and blank lines.
func ParseExpected(s string) (header string, rows []string) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	for i, ln := range lines {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		if i == 0 {
			header = ln
			continue
		}
		rows = append(rows, ln)
	}
	return header, rows
}

// DiffRows compares two relations as multisets of rendered rows (polygen
// relations are sets; the paper's row order is presentational). It returns
// "" when equal, otherwise a human-readable description of the differences.
func DiffRows(want, got []string) string {
	w := append([]string(nil), want...)
	g := append([]string(nil), got...)
	sort.Strings(w)
	sort.Strings(g)
	var b strings.Builder
	i, j := 0, 0
	for i < len(w) || j < len(g) {
		switch {
		case i < len(w) && (j >= len(g) || w[i] < g[j]):
			fmt.Fprintf(&b, "missing: %s\n", w[i])
			i++
		case j < len(g) && (i >= len(w) || g[j] < w[i]):
			fmt.Fprintf(&b, "extra:   %s\n", g[j])
			j++
		default:
			i++
			j++
		}
	}
	return b.String()
}

// Diff compares a computed relation against an expected table literal,
// checking the header and the row multiset.
func Diff(expected string, p *core.Relation) string {
	wantHeader, wantRows := ParseExpected(expected)
	gotHeader, gotRows := RenderRelation(p)
	var b strings.Builder
	if wantHeader != gotHeader {
		fmt.Fprintf(&b, "header: want %q, got %q\n", wantHeader, gotHeader)
	}
	b.WriteString(DiffRows(wantRows, gotRows))
	return b.String()
}

// DiffMatrix compares a computed operation matrix against an expected
// literal (one row per line, in order — matrix row order is semantic).
func DiffMatrix(expected string, m *translate.Matrix) string {
	_, wantRows := ParseExpected("HEADER\n" + strings.TrimSpace(expected))
	var b strings.Builder
	got := make([]string, 0, len(m.Rows))
	for _, r := range m.Rows {
		got = append(got, r.String())
	}
	for i := 0; i < len(wantRows) || i < len(got); i++ {
		switch {
		case i >= len(wantRows):
			fmt.Fprintf(&b, "extra row:   %s\n", got[i])
		case i >= len(got):
			fmt.Fprintf(&b, "missing row: %s\n", wantRows[i])
		case wantRows[i] != got[i]:
			fmt.Fprintf(&b, "row %d:\n  want %s\n  got  %s\n", i+1, wantRows[i], got[i])
		}
	}
	return b.String()
}

// Artifacts holds every intermediate artifact of the worked example: the
// three matrices of §III and all polygen relations of §IV and Appendix A.
type Artifacts struct {
	Fed  *paperdata.Federation
	PQP  *pqp.PQP
	Expr translate.Expr
	POM  *translate.Matrix // Table 1
	Half *translate.Matrix // Table 2
	IOM  *translate.Matrix // Table 3
	// R maps Table 3's register numbers to computed relations: R[1] is
	// Table 4's relation, R[3] Table 5's, R[7] Table 6's, R[8] Table 7's,
	// R[9] Table 8's, R[10] Table 9's.
	R map[int]*core.Relation
	// A maps Appendix A step numbers (1–9) to relations: A[1]–A[3] are the
	// retrieved base relations, A[4] the outer join, A[5] the ONPJ, A[6]
	// the ONTJ of A1 and A2, A[7]–A[9] the corresponding steps against A3.
	A map[int]*core.Relation
}

// Compute builds the federation, runs the §III translation pipeline and the
// §IV execution, and recomputes every Appendix A step.
func Compute() (*Artifacts, error) {
	fed := paperdata.New()
	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	art := &Artifacts{Fed: fed, PQP: processor}

	var err error
	if art.Expr, err = translate.ParseExpr(PaperExpr); err != nil {
		return nil, err
	}
	if art.POM, err = translate.Analyze(art.Expr); err != nil {
		return nil, err
	}
	if art.Half, err = translate.PassOne(art.POM, fed.Schema); err != nil {
		return nil, err
	}
	if art.IOM, err = translate.PassTwo(art.Half, fed.Schema); err != nil {
		return nil, err
	}
	// §IV executes Table 3 as the plan "without further optimization".
	if art.R, err = processor.ExecuteAll(art.IOM); err != nil {
		return nil, err
	}
	if art.A, err = computeAppendixA(art); err != nil {
		return nil, err
	}
	return art, nil
}

// computeAppendixA replays the Merge of Table 3's row 7 step by step: two
// Outer Natural Total Joins, each decomposed into its outer join, primary
// coalesce and remaining coalesces, as Appendix A presents them.
func computeAppendixA(art *Artifacts) (map[int]*core.Relation, error) {
	alg := art.PQP.Algebra()
	a := make(map[int]*core.Relation, 9)
	// A1–A3 are the Retrieve results — registers 4–6 of Table 3.
	a[1], a[2], a[3] = art.R[4], art.R[5], art.R[6]

	var err error
	if a[4], err = alg.OuterJoin(a[1], "BNAME", a[2], "CNAME"); err != nil {
		return nil, fmt.Errorf("A4: %w", err)
	}
	if a[5], err = alg.Coalesce(a[4], "BNAME", "CNAME", "ONAME"); err != nil {
		return nil, fmt.Errorf("A5: %w", err)
	}
	a6, err := alg.Coalesce(a[5], "IND", "TRADE", "INDUSTRY")
	if err != nil {
		return nil, fmt.Errorf("A6 coalesce: %w", err)
	}
	if a[6], err = alg.Rename(a6, "STATE", "HEADQUARTERS"); err != nil {
		return nil, fmt.Errorf("A6 rename: %w", err)
	}
	if a[7], err = alg.OuterJoin(a[6], "ONAME", a[3], "FNAME"); err != nil {
		return nil, fmt.Errorf("A7: %w", err)
	}
	if a[8], err = alg.Coalesce(a[7], "ONAME", "FNAME", "ONAME"); err != nil {
		return nil, fmt.Errorf("A8: %w", err)
	}
	if a[9], err = alg.Coalesce(a[8], "HEADQUARTERS", "HQ", "HEADQUARTERS"); err != nil {
		return nil, fmt.Errorf("A9: %w", err)
	}
	return a, nil
}
