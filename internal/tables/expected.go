package tables

// Expected content of every table in the paper, in the rendering of
// RenderRelation / translate.Row.String. Each literal's first line is the
// header; subsequent lines are tuples (order-insensitive for relations,
// order-sensitive for operation matrices).
//
// Where the supplied paper text is internally inconsistent or OCR-damaged,
// the literals follow the paper's own base relations and algebra; every such
// correction is listed in EXPERIMENTS.md (notably: the MAJ value of alumnus
// 567 is "MGT" per the ALUMNUS relation, though Tables 4/5/7/8 misprint
// "MIT"; Table A7 is stated before the join attributes' origins are folded
// into the intermediate tags, though Table A4 — the same kind of step —
// folds them immediately; we fold immediately in both, which leaves A8 and
// A9 identical to the paper's).

// Table1 is the Polygen Operation Matrix for the example expression.
const Table1 = `
R(1) | Select | PALUMNUS | DEGREE | = | "MBA" | nil
R(2) | Join | R(1) | AID# | = | AID# | PCAREER
R(3) | Join | R(2) | ONAME | = | ONAME | PORGANIZATION
R(4) | Restrict | R(3) | CEO | = | ANAME | nil
R(5) | Project | R(4) | ONAME, CEO | nil | nil | nil
`

// Table2 is the half-processed IOM after pass one.
const Table2 = `
R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD
R(2) | Join | R(1) | AID# | = | AID# | PCAREER | PQP
R(3) | Join | R(2) | ONAME | = | ONAME | PORGANIZATION | PQP
R(4) | Restrict | R(3) | CEO | = | ANAME | nil | PQP
R(5) | Project | R(4) | ONAME, CEO | nil | nil | nil | PQP
`

// Table3 is the Intermediate Operation Matrix after pass two.
const Table3 = `
R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD
R(2) | Retrieve | CAREER | nil | nil | nil | nil | AD
R(3) | Join | R(1) | AID# | = | AID# | R(2) | PQP
R(4) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
R(5) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
R(6) | Retrieve | FIRM | nil | nil | nil | nil | CD
R(7) | Merge | R(4), R(5), R(6) | nil | nil | nil | nil | PQP
R(8) | Join | R(3) | ONAME | = | ONAME | R(7) | PQP
R(9) | Restrict | R(8) | CEO | = | ANAME | nil | PQP
R(10) | Project | R(9) | ONAME, CEO | nil | nil | nil | PQP
`

// Table4 is R(1): ALUMNUS[DEG = "MBA"] executed at AD and tagged.
const Table4 = `
AID# | ANAME | DEG | MAJ
012, {AD}, {} | John McCauley, {AD}, {} | MBA, {AD}, {} | IS, {AD}, {}
123, {AD}, {} | Bob Swanson, {AD}, {} | MBA, {AD}, {} | MGT, {AD}, {}
234, {AD}, {} | Stu Madnick, {AD}, {} | MBA, {AD}, {} | IS, {AD}, {}
456, {AD}, {} | Dave Horton, {AD}, {} | MBA, {AD}, {} | IS, {AD}, {}
567, {AD}, {} | John Reed, {AD}, {} | MBA, {AD}, {} | MGT, {AD}, {}
`

// Table5 is R(3): the join of R(1) with the retrieved CAREER relation.
const Table5 = `
AID# | ANAME | DEG | MAJ | BNAME | POS
012, {AD}, {AD} | John McCauley, {AD}, {AD} | MBA, {AD}, {AD} | IS, {AD}, {AD} | Citicorp, {AD}, {AD} | MIS Director, {AD}, {AD}
123, {AD}, {AD} | Bob Swanson, {AD}, {AD} | MBA, {AD}, {AD} | MGT, {AD}, {AD} | Genentech, {AD}, {AD} | CEO, {AD}, {AD}
234, {AD}, {AD} | Stu Madnick, {AD}, {AD} | MBA, {AD}, {AD} | IS, {AD}, {AD} | Langley Castle, {AD}, {AD} | CEO, {AD}, {AD}
456, {AD}, {AD} | Dave Horton, {AD}, {AD} | MBA, {AD}, {AD} | IS, {AD}, {AD} | Ford, {AD}, {AD} | Manager, {AD}, {AD}
567, {AD}, {AD} | John Reed, {AD}, {AD} | MBA, {AD}, {AD} | MGT, {AD}, {AD} | Citicorp, {AD}, {AD} | CEO, {AD}, {AD}
234, {AD}, {AD} | Stu Madnick, {AD}, {AD} | MBA, {AD}, {AD} | IS, {AD}, {AD} | MIT, {AD}, {AD} | Professor, {AD}, {AD}
`

// Table6 is R(7): Merge(BUSINESS, CORPORATION, FIRM) — identical to TableA9.
const Table6 = `
ONAME | INDUSTRY | HEADQUARTERS | CEO
Langley Castle, {AD, CD}, {AD, CD} | Hotel, {AD}, {AD, CD} | MA, {CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}
IBM, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Ackers, {CD}, {AD, PD, CD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
CitiCorp, {AD, PD, CD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
Oracle, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | CA, {PD, CD}, {AD, PD, CD} | Lawrence Ellison, {CD}, {AD, PD, CD}
Ford, {AD, CD}, {AD, CD} | Automobile, {AD}, {AD, CD} | MI, {CD}, {AD, CD} | Donald Peterson, {CD}, {AD, CD}
DEC, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | MA, {PD, CD}, {AD, PD, CD} | Ken Olsen, {CD}, {AD, PD, CD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Genentech, {AD, CD}, {AD, CD} | High Tech, {AD}, {AD, CD} | CA, {CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}
Apple, {PD, CD}, {PD, CD} | High Tech, {PD}, {PD, CD} | CA, {PD, CD}, {PD, CD} | John Sculley, {CD}, {PD, CD}
AT&T, {PD, CD}, {PD, CD} | High Tech, {PD}, {PD, CD} | NY, {PD, CD}, {PD, CD} | Robert Allen, {CD}, {PD, CD}
Banker's Trust, {PD, CD}, {PD, CD} | Finance, {PD}, {PD, CD} | NY, {PD, CD}, {PD, CD} | Charles Sanford, {CD}, {PD, CD}
`

// Table7 is R(8): the join of R(3) with R(7) on ONAME.
const Table7 = `
AID# | ANAME | DEG | MAJ | ONAME | POS | INDUSTRY | HEADQUARTERS | CEO
012, {AD}, {AD, PD, CD} | John McCauley, {AD}, {AD, PD, CD} | MBA, {AD}, {AD, PD, CD} | IS, {AD}, {AD, PD, CD} | Citicorp, {AD, PD, CD}, {AD, PD, CD} | MIS Director, {AD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
123, {AD}, {AD, CD} | Bob Swanson, {AD}, {AD, CD} | MBA, {AD}, {AD, CD} | MGT, {AD}, {AD, CD} | Genentech, {AD, CD}, {AD, CD} | CEO, {AD}, {AD, CD} | High Tech, {AD}, {AD, CD} | CA, {CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}
234, {AD}, {AD, CD} | Stu Madnick, {AD}, {AD, CD} | MBA, {AD}, {AD, CD} | IS, {AD}, {AD, CD} | Langley Castle, {AD, CD}, {AD, CD} | CEO, {AD}, {AD, CD} | Hotel, {AD}, {AD, CD} | MA, {CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}
456, {AD}, {AD, CD} | Dave Horton, {AD}, {AD, CD} | MBA, {AD}, {AD, CD} | IS, {AD}, {AD, CD} | Ford, {AD, CD}, {AD, CD} | Manager, {AD}, {AD, CD} | Automobile, {AD}, {AD, CD} | MI, {CD}, {AD, CD} | Donald Peterson, {CD}, {AD, CD}
567, {AD}, {AD, PD, CD} | John Reed, {AD}, {AD, PD, CD} | MBA, {AD}, {AD, PD, CD} | MGT, {AD}, {AD, PD, CD} | Citicorp, {AD, PD, CD}, {AD, PD, CD} | CEO, {AD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
234, {AD}, {AD} | Stu Madnick, {AD}, {AD} | MBA, {AD}, {AD} | IS, {AD}, {AD} | MIT, {AD}, {AD} | Professor, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
`

// Table8 is R(9): Table 7 restricted to CEO = ANAME.
const Table8 = `
AID# | ANAME | DEG | MAJ | ONAME | POS | INDUSTRY | HEADQUARTERS | CEO
123, {AD}, {AD, CD} | Bob Swanson, {AD}, {AD, CD} | MBA, {AD}, {AD, CD} | MGT, {AD}, {AD, CD} | Genentech, {AD, CD}, {AD, CD} | CEO, {AD}, {AD, CD} | High Tech, {AD}, {AD, CD} | CA, {CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}
234, {AD}, {AD, CD} | Stu Madnick, {AD}, {AD, CD} | MBA, {AD}, {AD, CD} | IS, {AD}, {AD, CD} | Langley Castle, {AD, CD}, {AD, CD} | CEO, {AD}, {AD, CD} | Hotel, {AD}, {AD, CD} | MA, {CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}
567, {AD}, {AD, PD, CD} | John Reed, {AD}, {AD, PD, CD} | MBA, {AD}, {AD, PD, CD} | MGT, {AD}, {AD, PD, CD} | Citicorp, {AD, PD, CD}, {AD, PD, CD} | CEO, {AD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
`

// Table9 is R(10): the final composite answer with source tags.
const Table9 = `
ONAME | CEO
Genentech, {AD, CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD}
Langley Castle, {AD, CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD}
Citicorp, {AD, PD, CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD}
`

// TableA1 is the retrieved BUSINESS relation.
const TableA1 = `
BNAME | IND
Langley Castle, {AD}, {} | Hotel, {AD}, {}
IBM, {AD}, {} | High Tech, {AD}, {}
MIT, {AD}, {} | Education, {AD}, {}
CitiCorp, {AD}, {} | Banking, {AD}, {}
Oracle, {AD}, {} | High Tech, {AD}, {}
Ford, {AD}, {} | Automobile, {AD}, {}
DEC, {AD}, {} | High Tech, {AD}, {}
BP, {AD}, {} | Energy, {AD}, {}
Genentech, {AD}, {} | High Tech, {AD}, {}
`

// TableA2 is the retrieved CORPORATION relation.
const TableA2 = `
CNAME | TRADE | STATE
Apple, {PD}, {} | High Tech, {PD}, {} | CA, {PD}, {}
Oracle, {PD}, {} | High Tech, {PD}, {} | CA, {PD}, {}
AT&T, {PD}, {} | High Tech, {PD}, {} | NY, {PD}, {}
IBM, {PD}, {} | High Tech, {PD}, {} | NY, {PD}, {}
Citicorp, {PD}, {} | Banking, {PD}, {} | NY, {PD}, {}
DEC, {PD}, {} | High Tech, {PD}, {} | MA, {PD}, {}
Banker's Trust, {PD}, {} | Finance, {PD}, {} | NY, {PD}, {}
`

// TableA3 is the retrieved FIRM relation, with HQ domain-mapped to states.
const TableA3 = `
FNAME | CEO | HQ
AT&T, {CD}, {} | Robert Allen, {CD}, {} | NY, {CD}, {}
Langley Castle, {CD}, {} | Stu Madnick, {CD}, {} | MA, {CD}, {}
Banker's Trust, {CD}, {} | Charles Sanford, {CD}, {} | NY, {CD}, {}
CitiCorp, {CD}, {} | John Reed, {CD}, {} | NY, {CD}, {}
Ford, {CD}, {} | Donald Peterson, {CD}, {} | MI, {CD}, {}
IBM, {CD}, {} | John Ackers, {CD}, {} | NY, {CD}, {}
Apple, {CD}, {} | John Sculley, {CD}, {} | CA, {CD}, {}
Oracle, {CD}, {} | Lawrence Ellison, {CD}, {} | CA, {CD}, {}
DEC, {CD}, {} | Ken Olsen, {CD}, {} | MA, {CD}, {}
Genentech, {CD}, {} | Bob Swanson, {CD}, {} | CA, {CD}, {}
`

// TableA4 is the outer join of A1 and A2 on BNAME = CNAME.
const TableA4 = `
BNAME | IND | CNAME | TRADE | STATE
Langley Castle, {AD}, {AD} | Hotel, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
IBM, {AD}, {AD, PD} | High Tech, {AD}, {AD, PD} | IBM, {PD}, {AD, PD} | High Tech, {PD}, {AD, PD} | NY, {PD}, {AD, PD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
CitiCorp, {AD}, {AD, PD} | Banking, {AD}, {AD, PD} | Citicorp, {PD}, {AD, PD} | Banking, {PD}, {AD, PD} | NY, {PD}, {AD, PD}
Oracle, {AD}, {AD, PD} | High Tech, {AD}, {AD, PD} | Oracle, {PD}, {AD, PD} | High Tech, {PD}, {AD, PD} | CA, {PD}, {AD, PD}
Ford, {AD}, {AD} | Automobile, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
DEC, {AD}, {AD, PD} | High Tech, {AD}, {AD, PD} | DEC, {PD}, {AD, PD} | High Tech, {PD}, {AD, PD} | MA, {PD}, {AD, PD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Genentech, {AD}, {AD} | High Tech, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
nil, {}, {PD} | nil, {}, {PD} | Apple, {PD}, {PD} | High Tech, {PD}, {PD} | CA, {PD}, {PD}
nil, {}, {PD} | nil, {}, {PD} | AT&T, {PD}, {PD} | High Tech, {PD}, {PD} | NY, {PD}, {PD}
nil, {}, {PD} | nil, {}, {PD} | Banker's Trust, {PD}, {PD} | Finance, {PD}, {PD} | NY, {PD}, {PD}
`

// TableA5 is the Outer Natural Primary Join of A1 and A2: A4 with the key
// columns coalesced into ONAME.
const TableA5 = `
ONAME | IND | TRADE | STATE
Langley Castle, {AD}, {AD} | Hotel, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
IBM, {AD, PD}, {AD, PD} | High Tech, {AD}, {AD, PD} | High Tech, {PD}, {AD, PD} | NY, {PD}, {AD, PD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
CitiCorp, {AD, PD}, {AD, PD} | Banking, {AD}, {AD, PD} | Banking, {PD}, {AD, PD} | NY, {PD}, {AD, PD}
Oracle, {AD, PD}, {AD, PD} | High Tech, {AD}, {AD, PD} | High Tech, {PD}, {AD, PD} | CA, {PD}, {AD, PD}
Ford, {AD}, {AD} | Automobile, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
DEC, {AD, PD}, {AD, PD} | High Tech, {AD}, {AD, PD} | High Tech, {PD}, {AD, PD} | MA, {PD}, {AD, PD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Genentech, {AD}, {AD} | High Tech, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Apple, {PD}, {PD} | nil, {}, {PD} | High Tech, {PD}, {PD} | CA, {PD}, {PD}
AT&T, {PD}, {PD} | nil, {}, {PD} | High Tech, {PD}, {PD} | NY, {PD}, {PD}
Banker's Trust, {PD}, {PD} | nil, {}, {PD} | Finance, {PD}, {PD} | NY, {PD}, {PD}
`

// TableA6 is the Outer Natural Total Join of A1 and A2: A5 with IND and
// TRADE coalesced into INDUSTRY and STATE renamed to HEADQUARTERS.
const TableA6 = `
ONAME | INDUSTRY | HEADQUARTERS
Langley Castle, {AD}, {AD} | Hotel, {AD}, {AD} | nil, {}, {AD}
IBM, {AD, PD}, {AD, PD} | High Tech, {AD, PD}, {AD, PD} | NY, {PD}, {AD, PD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD}
CitiCorp, {AD, PD}, {AD, PD} | Banking, {AD, PD}, {AD, PD} | NY, {PD}, {AD, PD}
Oracle, {AD, PD}, {AD, PD} | High Tech, {AD, PD}, {AD, PD} | CA, {PD}, {AD, PD}
Ford, {AD}, {AD} | Automobile, {AD}, {AD} | nil, {}, {AD}
DEC, {AD, PD}, {AD, PD} | High Tech, {AD, PD}, {AD, PD} | MA, {PD}, {AD, PD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD}
Genentech, {AD}, {AD} | High Tech, {AD}, {AD} | nil, {}, {AD}
Apple, {PD}, {PD} | High Tech, {PD}, {PD} | CA, {PD}, {PD}
AT&T, {PD}, {PD} | High Tech, {PD}, {PD} | NY, {PD}, {PD}
Banker's Trust, {PD}, {PD} | Finance, {PD}, {PD} | NY, {PD}, {PD}
`

// TableA7 is the outer join of A6 and A3 on ONAME = FNAME. Note (see the
// package comment in EXPERIMENTS.md): the paper prints this table before
// folding the join attributes' origins into the intermediate tags of the
// matched rows and folds them during the ONPJ instead; Table A4 — the
// corresponding earlier step — folds them immediately, as we do uniformly.
// A8 and A9 are unaffected.
const TableA7 = `
ONAME | INDUSTRY | HEADQUARTERS | FNAME | CEO | HQ
Langley Castle, {AD}, {AD, CD} | Hotel, {AD}, {AD, CD} | nil, {}, {AD, CD} | Langley Castle, {CD}, {AD, CD} | Stu Madnick, {CD}, {AD, CD} | MA, {CD}, {AD, CD}
IBM, {AD, PD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | NY, {PD}, {AD, PD, CD} | IBM, {CD}, {AD, PD, CD} | John Ackers, {CD}, {AD, PD, CD} | NY, {CD}, {AD, PD, CD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
CitiCorp, {AD, PD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD}, {AD, PD, CD} | CitiCorp, {CD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD} | NY, {CD}, {AD, PD, CD}
Oracle, {AD, PD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | CA, {PD}, {AD, PD, CD} | Oracle, {CD}, {AD, PD, CD} | Lawrence Ellison, {CD}, {AD, PD, CD} | CA, {CD}, {AD, PD, CD}
Ford, {AD}, {AD, CD} | Automobile, {AD}, {AD, CD} | nil, {}, {AD, CD} | Ford, {CD}, {AD, CD} | Donald Peterson, {CD}, {AD, CD} | MI, {CD}, {AD, CD}
DEC, {AD, PD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | MA, {PD}, {AD, PD, CD} | DEC, {CD}, {AD, PD, CD} | Ken Olsen, {CD}, {AD, PD, CD} | MA, {CD}, {AD, PD, CD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Genentech, {AD}, {AD, CD} | High Tech, {AD}, {AD, CD} | nil, {}, {AD, CD} | Genentech, {CD}, {AD, CD} | Bob Swanson, {CD}, {AD, CD} | CA, {CD}, {AD, CD}
Apple, {PD}, {PD, CD} | High Tech, {PD}, {PD, CD} | CA, {PD}, {PD, CD} | Apple, {CD}, {PD, CD} | John Sculley, {CD}, {PD, CD} | CA, {CD}, {PD, CD}
AT&T, {PD}, {PD, CD} | High Tech, {PD}, {PD, CD} | NY, {PD}, {PD, CD} | AT&T, {CD}, {PD, CD} | Robert Allen, {CD}, {PD, CD} | NY, {CD}, {PD, CD}
Banker's Trust, {PD}, {PD, CD} | Finance, {PD}, {PD, CD} | NY, {PD}, {PD, CD} | Banker's Trust, {CD}, {PD, CD} | Charles Sanford, {CD}, {PD, CD} | NY, {CD}, {PD, CD}
`

// TableA8 is the Outer Natural Primary Join of A6 and A3.
const TableA8 = `
ONAME | INDUSTRY | HEADQUARTERS | CEO | HQ
Langley Castle, {AD, CD}, {AD, CD} | Hotel, {AD}, {AD, CD} | nil, {}, {AD, CD} | Stu Madnick, {CD}, {AD, CD} | MA, {CD}, {AD, CD}
IBM, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | NY, {PD}, {AD, PD, CD} | John Ackers, {CD}, {AD, PD, CD} | NY, {CD}, {AD, PD, CD}
MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
CitiCorp, {AD, PD, CD}, {AD, PD, CD} | Banking, {AD, PD}, {AD, PD, CD} | NY, {PD}, {AD, PD, CD} | John Reed, {CD}, {AD, PD, CD} | NY, {CD}, {AD, PD, CD}
Oracle, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | CA, {PD}, {AD, PD, CD} | Lawrence Ellison, {CD}, {AD, PD, CD} | CA, {CD}, {AD, PD, CD}
Ford, {AD, CD}, {AD, CD} | Automobile, {AD}, {AD, CD} | nil, {}, {AD, CD} | Donald Peterson, {CD}, {AD, CD} | MI, {CD}, {AD, CD}
DEC, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | MA, {PD}, {AD, PD, CD} | Ken Olsen, {CD}, {AD, PD, CD} | MA, {CD}, {AD, PD, CD}
BP, {AD}, {AD} | Energy, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD} | nil, {}, {AD}
Genentech, {AD, CD}, {AD, CD} | High Tech, {AD}, {AD, CD} | nil, {}, {AD, CD} | Bob Swanson, {CD}, {AD, CD} | CA, {CD}, {AD, CD}
Apple, {PD, CD}, {PD, CD} | High Tech, {PD}, {PD, CD} | CA, {PD}, {PD, CD} | John Sculley, {CD}, {PD, CD} | CA, {CD}, {PD, CD}
AT&T, {PD, CD}, {PD, CD} | High Tech, {PD}, {PD, CD} | NY, {PD}, {PD, CD} | Robert Allen, {CD}, {PD, CD} | NY, {CD}, {PD, CD}
Banker's Trust, {PD, CD}, {PD, CD} | Finance, {PD}, {PD, CD} | NY, {PD}, {PD, CD} | Charles Sanford, {CD}, {PD, CD} | NY, {CD}, {PD, CD}
`

// TableA9 is the Outer Natural Total Join of A6 and A3 — the merged
// PORGANIZATION relation, shown in the body of the paper as Table 6.
const TableA9 = Table6
