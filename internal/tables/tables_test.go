package tables

import (
	"strings"
	"testing"

	"repro/internal/translate"
)

// art is computed once; the artifacts are read-only afterwards.
var art *Artifacts

func TestMain(m *testing.M) {
	var err error
	art, err = Compute()
	if err != nil {
		panic("computing paper artifacts: " + err.Error())
	}
	m.Run()
}

func diffMatrix(t *testing.T, name, expected string, m *translate.Matrix) {
	t.Helper()
	if d := DiffMatrix(expected, m); d != "" {
		t.Errorf("%s does not match the paper:\n%s", name, d)
	}
}

func diffRelation(t *testing.T, name, expected string, reg int, from map[int]interface{ Cardinality() int }) {
	t.Helper()
	_ = from
	_ = reg
	_ = name
	_ = expected
}

func TestTable1POM(t *testing.T) {
	diffMatrix(t, "Table 1 (POM)", Table1, art.POM)
}

func TestTable2HalfProcessedIOM(t *testing.T) {
	diffMatrix(t, "Table 2 (half-processed IOM)", Table2, art.Half)
}

func TestTable3IOM(t *testing.T) {
	diffMatrix(t, "Table 3 (IOM)", Table3, art.IOM)
}

func TestTable4SelectAtAD(t *testing.T) {
	if d := Diff(Table4, art.R[1]); d != "" {
		t.Errorf("Table 4 (R(1)) does not match the paper:\n%s", d)
	}
}

func TestTable5JoinWithCareer(t *testing.T) {
	if d := Diff(Table5, art.R[3]); d != "" {
		t.Errorf("Table 5 (R(3)) does not match the paper:\n%s", d)
	}
}

func TestTable6Merge(t *testing.T) {
	if d := Diff(Table6, art.R[7]); d != "" {
		t.Errorf("Table 6 (R(7)) does not match the paper:\n%s", d)
	}
}

func TestTable7JoinWithOrganization(t *testing.T) {
	if d := Diff(Table7, art.R[8]); d != "" {
		t.Errorf("Table 7 (R(8)) does not match the paper:\n%s", d)
	}
}

func TestTable8Restrict(t *testing.T) {
	if d := Diff(Table8, art.R[9]); d != "" {
		t.Errorf("Table 8 (R(9)) does not match the paper:\n%s", d)
	}
}

func TestTable9FinalProjection(t *testing.T) {
	if d := Diff(Table9, art.R[10]); d != "" {
		t.Errorf("Table 9 (R(10)) does not match the paper:\n%s", d)
	}
}

func TestTableA1Business(t *testing.T) {
	if d := Diff(TableA1, art.A[1]); d != "" {
		t.Errorf("Table A1 does not match the paper:\n%s", d)
	}
}

func TestTableA2Corporation(t *testing.T) {
	if d := Diff(TableA2, art.A[2]); d != "" {
		t.Errorf("Table A2 does not match the paper:\n%s", d)
	}
}

func TestTableA3Firm(t *testing.T) {
	if d := Diff(TableA3, art.A[3]); d != "" {
		t.Errorf("Table A3 does not match the paper:\n%s", d)
	}
}

func TestTableA4OuterJoin(t *testing.T) {
	if d := Diff(TableA4, art.A[4]); d != "" {
		t.Errorf("Table A4 does not match the paper:\n%s", d)
	}
}

func TestTableA5OuterNaturalPrimaryJoin(t *testing.T) {
	if d := Diff(TableA5, art.A[5]); d != "" {
		t.Errorf("Table A5 does not match the paper:\n%s", d)
	}
}

func TestTableA6OuterNaturalTotalJoin(t *testing.T) {
	if d := Diff(TableA6, art.A[6]); d != "" {
		t.Errorf("Table A6 does not match the paper:\n%s", d)
	}
}

func TestTableA7OuterJoinWithFirm(t *testing.T) {
	if d := Diff(TableA7, art.A[7]); d != "" {
		t.Errorf("Table A7 does not match (see EXPERIMENTS.md note on A7):\n%s", d)
	}
}

func TestTableA8OuterNaturalPrimaryJoinWithFirm(t *testing.T) {
	if d := Diff(TableA8, art.A[8]); d != "" {
		t.Errorf("Table A8 does not match the paper:\n%s", d)
	}
}

func TestTableA9OuterNaturalTotalJoinWithFirm(t *testing.T) {
	if d := Diff(TableA9, art.A[9]); d != "" {
		t.Errorf("Table A9 does not match the paper:\n%s", d)
	}
}

// TestTable6EqualsA9 checks the paper's statement that the Merge result of
// Table 3's row 7 is exactly the Appendix A ONTJ chain's result.
func TestTable6EqualsA9(t *testing.T) {
	h6, r6 := RenderRelation(art.R[7])
	h9, r9 := RenderRelation(art.A[9])
	if h6 != h9 {
		t.Fatalf("Merge header %q != Appendix A header %q", h6, h9)
	}
	if d := DiffRows(r6, r9); d != "" {
		t.Errorf("Merge result differs from Appendix A chain:\n%s", d)
	}
}

// TestSQLTranslation checks that the SQL front end compiles the §III SQL
// polygen query to exactly the paper's algebraic expression (and therefore
// the same POM).
func TestSQLTranslation(t *testing.T) {
	e, err := translate.CompileSQL(PaperSQL, art.Fed.Schema)
	if err != nil {
		t.Fatalf("compiling §III SQL: %v", err)
	}
	pom, err := translate.Analyze(e)
	if err != nil {
		t.Fatalf("analyzing compiled expression: %v", err)
	}
	if d := DiffMatrix(Table1, pom); d != "" {
		t.Errorf("POM from SQL differs from Table 1:\n%s\ncompiled expression: %s", d, e)
	}
}

// TestSQLEndToEnd runs the §III SQL query through the entire pipeline and
// checks the composite answer against Table 9.
func TestSQLEndToEnd(t *testing.T) {
	res, err := art.PQP.QuerySQL(PaperSQL)
	if err != nil {
		t.Fatalf("running §III SQL: %v", err)
	}
	if d := Diff(Table9, res.Relation); d != "" {
		t.Errorf("SQL end-to-end result differs from Table 9:\n%s", d)
	}
}

// TestSectionOneQuery runs §I's simpler query: the CEOs with MBA degrees.
// Its translation exercises Figure 4's "LHR and RHR both defined in the
// polygen schema" case (the PORGANIZATION–PALUMNUS join needs separate LQP
// retrievals first).
func TestSectionOneQuery(t *testing.T) {
	res, err := art.PQP.QuerySQL(SectionOneSQL)
	if err != nil {
		t.Fatalf("running §I SQL: %v", err)
	}
	_, rows := RenderRelation(res.Relation)
	want := []string{
		"Bob Swanson, {CD}, {AD, CD}",
		"Stu Madnick, {CD}, {AD, CD}",
		"John Reed, {CD}, {AD, CD}",
	}
	if d := DiffRows(want, rows); d != "" {
		t.Errorf("§I query result:\n%s\nplan:\n%s", d, res.Plan)
	}
}

// TestOptimizePreservesResult checks that the Query Optimizer's plan yields
// the identical final relation for the worked example.
func TestOptimizePreservesResult(t *testing.T) {
	opt, err := translate.Optimize(art.IOM)
	if err != nil {
		t.Fatalf("optimizing Table 3: %v", err)
	}
	got, err := art.PQP.Execute(opt)
	if err != nil {
		t.Fatalf("executing optimized plan: %v", err)
	}
	if d := Diff(Table9, got); d != "" {
		t.Errorf("optimized plan result differs from Table 9:\n%s\nplan:\n%s", d, opt)
	}
}

// TestObservations verifies the three observations the paper draws from
// Table 9 (§IV).
func TestObservations(t *testing.T) {
	final := art.R[10]
	_, rows := RenderRelation(final)
	joined := strings.Join(rows, "\n")
	// (1) Genentech's name is known to AD and CD only; its CEO datum
	// originated in CD with AD as an intermediate source.
	if !strings.Contains(joined, "Genentech, {AD, CD}, {AD, CD}") {
		t.Errorf("observation 1 (Genentech origins) not reproduced:\n%s", joined)
	}
	if !strings.Contains(joined, "Bob Swanson, {CD}, {AD, CD}") {
		t.Errorf("observation 1 (Genentech CEO from CD via AD) not reproduced:\n%s", joined)
	}
	// (2) Citicorp is known to all three databases; its CEO only to CD.
	if !strings.Contains(joined, "Citicorp, {AD, PD, CD}, {AD, PD, CD}") {
		t.Errorf("observation 2 (Citicorp origins) not reproduced:\n%s", joined)
	}
	if !strings.Contains(joined, "John Reed, {CD}, {AD, PD, CD}") {
		t.Errorf("observation 2 (Citicorp CEO) not reproduced:\n%s", joined)
	}
}
