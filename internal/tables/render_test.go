package tables

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/sourceset"
	"repro/internal/translate"
)

func TestParseExpected(t *testing.T) {
	header, rows := ParseExpected(`
A | B
x, {AD}, {} | y, {AD}, {}

z, {PD}, {} | w, {PD}, {}
`)
	if header != "A | B" {
		t.Errorf("header = %q", header)
	}
	if len(rows) != 2 || !strings.HasPrefix(rows[1], "z,") {
		t.Errorf("rows = %v", rows)
	}
}

func TestDiffRows(t *testing.T) {
	if d := DiffRows([]string{"a", "b"}, []string{"b", "a"}); d != "" {
		t.Errorf("order should not matter: %q", d)
	}
	d := DiffRows([]string{"a", "b"}, []string{"a", "c"})
	if !strings.Contains(d, "missing: b") || !strings.Contains(d, "extra:   c") {
		t.Errorf("diff = %q", d)
	}
	// Multiset semantics: duplicates count.
	if d := DiffRows([]string{"a", "a"}, []string{"a"}); !strings.Contains(d, "missing: a") {
		t.Errorf("diff = %q", d)
	}
	if d := DiffRows(nil, nil); d != "" {
		t.Errorf("empty diff = %q", d)
	}
}

func TestDiffHeaderMismatch(t *testing.T) {
	reg := sourceset.NewRegistry()
	reg.Intern("AD")
	p := core.NewRelation("P", reg, core.Attr{Name: "WRONG"})
	p.Append(core.Tuple{{D: rel.String("x"), O: sourceset.Of(0)}})
	d := Diff("A\nx, {AD}, {}", p)
	if !strings.Contains(d, "header") {
		t.Errorf("diff = %q", d)
	}
}

func TestDiffMatrix(t *testing.T) {
	m := &translate.Matrix{Rows: []translate.Row{
		{PR: 1, Op: translate.OpRetrieve, LHR: translate.LocalOperand("T"), RHA: translate.NoComparand(), RHR: translate.NoOperand(), EL: "AD"},
	}}
	if d := DiffMatrix("R(1) | Retrieve | T | nil | nil | nil | nil | AD", m); d != "" {
		t.Errorf("diff = %q", d)
	}
	if d := DiffMatrix("R(1) | Retrieve | U | nil | nil | nil | nil | AD", m); !strings.Contains(d, "row 1") {
		t.Errorf("diff = %q", d)
	}
	// Matrix row order is semantic: extra/missing rows are reported.
	if d := DiffMatrix("", m); !strings.Contains(d, "extra row") {
		t.Errorf("diff = %q", d)
	}
	two := "R(1) | Retrieve | T | nil | nil | nil | nil | AD\nR(2) | Retrieve | U | nil | nil | nil | nil | AD"
	if d := DiffMatrix(two, m); !strings.Contains(d, "missing row") {
		t.Errorf("diff = %q", d)
	}
}

func TestRenderRelationCellFormat(t *testing.T) {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	cd := reg.Intern("CD")
	p := core.NewRelation("P", reg, core.Attr{Name: "A"})
	p.Append(core.Tuple{{D: rel.String("x"), O: sourceset.Of(ad, cd), I: sourceset.Of(ad)}})
	p.Append(core.Tuple{core.NilCell(sourceset.Of(ad))})
	header, rows := RenderRelation(p)
	if header != "A" {
		t.Errorf("header = %q", header)
	}
	if rows[0] != "x, {AD, CD}, {AD}" {
		t.Errorf("row 0 = %q", rows[0])
	}
	if rows[1] != "nil, {}, {AD}" {
		t.Errorf("row 1 = %q (the paper's nil-cell notation)", rows[1])
	}
}
