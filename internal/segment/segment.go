// Package segment implements the checksummed record framing shared by every
// on-disk artifact of the persistence layer: the write-ahead segment log of
// internal/store, the spill files of the budgeted hash operators
// (core/spill.go), and — via the atomic-write helpers — the catalog snapshot
// files. It is a leaf package (stdlib only), so both the storage layer and
// the execution core can depend on it without import cycles.
//
// A segment is a flat append-only sequence of records:
//
//	+----------+----------+---------------------+
//	| len u32  | crc u32  | payload (len bytes) |
//	+----------+----------+---------------------+
//
// both integers little-endian, crc the CRC32-C (Castagnoli) checksum of the
// payload. The framing makes the torn-tail contract checkable: a crash can
// leave at most one partial record at the end of a segment, and a scan
// detects it — a header shorter than 8 bytes, a payload shorter than its
// length prefix, or a checksum mismatch — and reports the offset of the last
// clean record boundary so the caller can truncate and carry on. Bit rot
// anywhere in a record fails its checksum the same way.
//
// Durability is the caller's policy, not the package's: Writer buffers
// through bufio and exposes Sync (flush + fsync) so a store can choose
// per-record fsync or interval batching. The File and reader indirections
// exist for internal/faultinject's disk fault layer — short writes, fsync
// errors and read-time bit flips are injected by wrapping them.
package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// headerSize is the fixed per-record framing overhead: u32 length + u32 CRC.
const headerSize = 8

// MaxRecord bounds a single record's payload. A length prefix beyond it is
// treated as corruption (truncating the segment there), not as a request to
// allocate gigabytes: no writer produces records this large, so a huge
// length can only be a torn or rotted header.
const MaxRecord = 1 << 30

// castagnoli is the CRC32-C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C checksum of p.
func Checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// File is the writable handle a Writer appends to: an *os.File, or a fault
// wrapper around one (faultinject.FlakyFile injects short writes and fsync
// errors through exactly this seam).
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// CorruptError reports a scan stopping before end-of-file: a torn tail
// (crash mid-append) or a checksum mismatch (bit rot). Offset is the first
// byte that could not be trusted — the last clean record boundary, where
// recovery truncates.
type CorruptError struct {
	// Path names the segment when known (Scan fills it in via its path
	// argument; empty for anonymous readers).
	Path string
	// Offset is the byte offset of the first unreadable record.
	Offset int64
	// Reason says what failed: "torn header", "torn payload", "checksum
	// mismatch", "record too large".
	Reason string
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "segment"
	}
	return fmt.Sprintf("segment: %s corrupt at offset %d: %s", where, e.Offset, e.Reason)
}

// Writer appends checksummed records to a File. It is not safe for
// concurrent use; the owning store serializes appends under its own lock.
type Writer struct {
	f   File
	buf *bufio.Writer
	off int64 // bytes appended (clean record boundaries only)
	err error // sticky: a failed append poisons the writer
}

// NewWriter wraps f, whose current size must be off (0 for a fresh segment,
// the scanned clean tail when appending to a recovered one).
func NewWriter(f File, off int64) *Writer {
	return &Writer{f: f, buf: bufio.NewWriterSize(f, 1<<16), off: off}
}

// Offset returns the clean append position: the size the segment will have
// once buffered records are flushed.
func (w *Writer) Offset() int64 { return w.off }

// Err returns the sticky error, if any append or sync has failed.
func (w *Writer) Err() error { return w.err }

// Append buffers one record and returns its starting offset. A write error
// latches: the segment may hold a torn record beyond the last synced
// boundary, so the writer refuses further appends and the owner must
// recover by re-scanning.
func (w *Writer) Append(payload []byte) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("segment: record of %d bytes exceeds MaxRecord", len(payload))
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], Checksum(payload))
	start := w.off
	if _, err := w.buf.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("segment: appending record at %d: %w", start, err)
		return 0, w.err
	}
	if _, err := w.buf.Write(payload); err != nil {
		w.err = fmt.Errorf("segment: appending record at %d: %w", start, err)
		return 0, w.err
	}
	w.off += int64(headerSize + len(payload))
	return start, nil
}

// Sync flushes buffered records and fsyncs the file — the durability point.
// An error latches like a failed append.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.buf.Flush(); err != nil {
		w.err = fmt.Errorf("segment: flushing: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("segment: fsync: %w", err)
		return w.err
	}
	return nil
}

// Flush flushes buffered records to the OS without fsync — enough for a
// reader in the same process (spill files), not for crash durability.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.buf.Flush(); err != nil {
		w.err = fmt.Errorf("segment: flushing: %w", err)
	}
	return w.err
}

// Close flushes and closes the file without fsync; call Sync first when the
// records must be durable.
func (w *Writer) Close() error {
	flushErr := w.Flush()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Scan reads records from r, calling fn with each record's offset and
// payload (valid only during the call). It returns the clean tail — the
// offset just past the last whole, checksum-valid record — and, when the
// segment ends in a torn or corrupt record instead of a clean EOF, a
// *CorruptError describing it (scanning never continues past corruption:
// nothing after an untrusted length prefix has a trustworthy boundary). A
// non-nil error from fn aborts the scan and is returned verbatim.
func Scan(path string, r io.Reader, fn func(off int64, payload []byte) error) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var off int64
	var buf []byte
	for {
		var hdr [headerSize]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			return off, nil // clean end
		}
		if err == io.ErrUnexpectedEOF {
			return off, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("torn header (%d of %d bytes)", n, headerSize)}
		}
		if err != nil {
			return off, fmt.Errorf("segment: reading %s at %d: %w", path, off, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if length > MaxRecord {
			return off, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("record too large (%d bytes)", length)}
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if n, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return off, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("torn payload (%d of %d bytes)", n, length)}
			}
			return off, fmt.Errorf("segment: reading %s at %d: %w", path, off, err)
		}
		if got := Checksum(payload); got != want {
			return off, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("checksum mismatch (%#x != %#x)", got, want)}
		}
		if err := fn(off, payload); err != nil {
			return off, err
		}
		off += int64(headerSize + len(payload))
	}
}

// SyncDir fsyncs a directory, making renames and creates within it durable.
// The POSIX contract behind atomic snapshot rotation: rename(2) is atomic,
// but only the directory fsync persists which name the atomicity resolved
// to.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("segment: fsync dir %s: %w", dir, syncErr)
	}
	return closeErr
}

// WriteFileSync writes data to path atomically and durably: temp file in the
// same directory, write, fsync, rename over path, fsync the directory. After
// it returns, a crash observes either the old file or the complete new one —
// never a zero-length or torn file behind the rename.
func WriteFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}
