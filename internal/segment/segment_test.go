package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeRecords appends the payloads through a Writer into a byte buffer and
// returns the raw segment bytes plus each record's end offset.
func writeRecords(t *testing.T, payloads [][]byte) ([]byte, []int64) {
	t.Helper()
	var raw bytes.Buffer
	w := NewWriter(nopFile{&raw}, 0)
	ends := make([]int64, 0, len(payloads))
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, w.Offset())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes(), ends
}

type nopFile struct{ *bytes.Buffer }

func (nopFile) Sync() error  { return nil }
func (nopFile) Close() error { return nil }

func scanAll(raw []byte) ([][]byte, int64, error) {
	var got [][]byte
	tail, err := Scan("t", bytes.NewReader(raw), func(off int64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	return got, tail, err
}

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma"), {0, 1, 2, 3}}
	raw, ends := writeRecords(t, payloads)
	got, tail, err := scanAll(raw)
	if err != nil {
		t.Fatalf("clean segment scanned with error: %v", err)
	}
	if tail != int64(len(raw)) || tail != ends[len(ends)-1] {
		t.Fatalf("tail %d, want %d", tail, len(raw))
	}
	if len(got) != len(payloads) {
		t.Fatalf("scanned %d records, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], payloads[i])
		}
	}
}

// TestTornTailEveryTruncation crashes the segment at every byte: a segment
// truncated at c must scan exactly the records wholly contained in [0, c),
// with the clean tail at the last whole record boundary and a CorruptError
// for every c that is not a boundary.
func TestTornTailEveryTruncation(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), []byte("3"), []byte("fourfourfour")}
	raw, ends := writeRecords(t, payloads)
	boundary := map[int64]int{0: 0}
	for i, e := range ends {
		boundary[e] = i + 1
	}
	for c := 0; c <= len(raw); c++ {
		got, tail, err := scanAll(raw[:c])
		wantN := 0
		var wantTail int64
		for i, e := range ends {
			if e <= int64(c) {
				wantN = i + 1
				wantTail = e
			}
		}
		if len(got) != wantN || tail != wantTail {
			t.Fatalf("truncate at %d: scanned %d records to tail %d, want %d records to %d", c, len(got), tail, wantN, wantTail)
		}
		if _, clean := boundary[int64(c)]; clean {
			if err != nil {
				t.Fatalf("truncate at boundary %d: unexpected error %v", c, err)
			}
		} else {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("truncate at %d: want CorruptError, got %v", c, err)
			}
			if ce.Offset != wantTail {
				t.Fatalf("truncate at %d: corrupt offset %d, want %d", c, ce.Offset, wantTail)
			}
		}
	}
}

// TestBitFlipEveryByte rots each byte in turn: the scan must stop at (or
// before) the record containing the flip, never deliver a wrong payload, and
// name the failing boundary.
func TestBitFlipEveryByte(t *testing.T) {
	payloads := [][]byte{[]byte("aaaa"), []byte("bbbbbbb"), []byte("cc")}
	raw, ends := writeRecords(t, payloads)
	starts := []int64{0, ends[0], ends[1]}
	for p := 0; p < len(raw); p++ {
		flipped := append([]byte(nil), raw...)
		flipped[p] ^= 0x40
		got, _, err := scanAll(flipped)
		// Which record contains byte p?
		rec := 0
		for rec < len(starts)-1 && int64(p) >= starts[rec+1] {
			rec++
		}
		if err == nil {
			// A flip in a length prefix can reframe the stream; the only
			// acceptable error-free outcome is that every delivered payload
			// is a true prefix record (possible only when the flip created
			// a colliding checksum, which CRC32-C precludes for single-bit
			// flips of these sizes).
			t.Fatalf("flip at %d: scan reported no error", p)
		}
		if len(got) > rec {
			for i, g := range got[:min(len(got), rec)] {
				if !bytes.Equal(g, payloads[i]) {
					t.Fatalf("flip at %d: record %d delivered corrupted payload", p, i)
				}
			}
			t.Fatalf("flip at %d (record %d): delivered %d records", p, rec, len(got))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHugeLengthPrefixRejected(t *testing.T) {
	raw, _ := writeRecords(t, [][]byte{[]byte("x")})
	raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0x7f
	_, _, err := scanAll(raw)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason == "" {
		t.Fatalf("want CorruptError for huge length, got %v", err)
	}
}

func TestAppendAfterRecoveredTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 0)
	if _, err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Tear the tail: append garbage simulating a torn record.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, append(raw, 0xde, 0xad), 0o644)

	rf, _ := os.Open(path)
	tail, scanErr := Scan(path, rf, func(int64, []byte) error { return nil })
	rf.Close()
	var ce *CorruptError
	if !errors.As(scanErr, &ce) {
		t.Fatalf("want CorruptError, got %v", scanErr)
	}
	// Truncate and append from the clean tail.
	if err := os.Truncate(path, tail); err != nil {
		t.Fatal(err)
	}
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(af, tail)
	if _, err := w2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	rf2, _ := os.Open(path)
	var got [][]byte
	if _, err := Scan(path, rf2, func(_ int64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("scan after repair: %v", err)
	}
	rf2.Close()
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("after repair got %q", got)
	}
}

func TestWriteFileSyncAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteFileSync(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileSync(path, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("got %q, %v", got, err)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory litter: %v", names)
	}
}

func TestWriterErrorLatches(t *testing.T) {
	w := NewWriter(failFile{}, 0)
	if _, err := w.Append(bytes.Repeat([]byte("x"), 1<<17)); err == nil {
		// The bufio buffer is 64k; a 128k payload forces a write-through
		// that must surface the failure.
		t.Fatal("want error from failing file")
	}
	if _, err := w.Append([]byte("y")); err == nil {
		t.Fatal("error must latch")
	}
	if w.Err() == nil {
		t.Fatal("Err must report the latched failure")
	}
}

type failFile struct{}

func (failFile) Write([]byte) (int, error) { return 0, fmt.Errorf("disk on fire") }
func (failFile) Sync() error               { return fmt.Errorf("disk on fire") }
func (failFile) Close() error              { return nil }
