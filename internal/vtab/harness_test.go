package vtab

// Shared test scaffolding: a star federation with the V$ tables registered
// the way cmd/polygend wires them — federation layer under the LQPs, vtab
// schemes in the polygen schema, sources bound after the mediator exists —
// plus renderers that turn tagged answers into sorted comparison lines.

import (
	"io"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/pqp"
	"repro/internal/stats"
	"repro/internal/translate"
	"repro/internal/workload"
)

// harness is one fully wired federation-with-introspection: the mediator's
// PQP serves the star sources through the fault-tolerance layer plus the V$
// tables, and vt observes all of it.
type harness struct {
	star   *workload.Star
	vt     *Tables
	reg    *federation.Registry
	faults *stats.Catalog
	proc   *pqp.PQP
	svc    *mediator.Service
}

// harnessStarConfig keeps the data small enough for tight test loops but
// large enough that star joins multi-batch and the parallel path engages.
func harnessStarConfig() workload.StarConfig {
	return workload.StarConfig{Facts: 600, Dims: 20, Mids: 10, Categories: 5, Seed: 11}
}

// harnessQueries is the closed-loop mix: the B-SERVE star queries plus one
// PMID join so all three sources (MD included) see traffic.
func harnessQueries() []string {
	return append(workload.StarQueries(),
		`((PFACT [MK = MK] PMID) [CAT = "cat2"]) [VAL, GRADE]`)
}

// newHarness builds the wired federation. The federation layer runs with
// hedging disabled and no injected faults, so V$FAULT stays all-zero unless
// a test swaps in its own registry.
func newHarness(t *testing.T, medCfg mediator.Config) *harness {
	t.Helper()
	star := workload.NewStar(harnessStarConfig())
	faults := stats.NewCatalog()
	reg := federation.NewRegistry(federation.Config{
		CallTimeout: 10 * time.Second,
		HedgeDelay:  -1,
		Stats:       faults,
	})
	// DD is sharded two ways (via the same Slice/AddSharded path polygend
	// -shards uses) so V$SHARD has rows to observe; FD and MD stay plain.
	// The parity engines compare against star.LQPs() directly, so the
	// scatter-gather must stay answer-invisible.
	for name, l := range star.LQPs() {
		if name != star.DD.Name() {
			reg.Add(name, l)
		}
	}
	ddShards := make([][]lqp.LQP, 2)
	for i := range ddShards {
		slice, err := federation.Slice(star.DD, i, len(ddShards))
		if err != nil {
			t.Fatalf("Slice(DD, %d): %v", i, err)
		}
		ddShards[i] = []lqp.LQP{lqp.NewLocal(slice)}
	}
	dd := reg.AddSharded(star.DD.Name(), ddShards...)
	dd.SetShardKeys(federation.NewShardMap(star.DD, len(ddShards)).Keys)
	lqps := reg.LQPs()
	vt := New()
	lqps[SourceName] = vt
	schema, err := AugmentSchema(star.Schema)
	if err != nil {
		t.Fatalf("AugmentSchema: %v", err)
	}
	star.Registry.Intern(SourceName)
	proc := pqp.New(schema, star.Registry, nil, lqps)
	proc.SetParallel(4, 0)
	proc.Plans = translate.NewPlanCache(32)
	svc := mediator.New(proc, medCfg)
	vt.Bind(Sources{
		Sessions: svc,
		Plans:    proc.Plans,
		Pool:     proc.Pool(),
		Stats:    func() *stats.Catalog { return proc.Stats },
		Faults:   faults,
		Registry: reg,
	})
	return &harness{star: star, vt: vt, reg: reg, faults: faults, proc: proc, svc: svc}
}

// taggedRows renders a tagged relation one sorted line per tuple in the
// paper's "datum, {origins}, {intermediates}" notation — the cell-for-cell,
// tag-for-tag comparison key of the parity suite.
func taggedRows(p *core.Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	sort.Strings(out)
	return out
}

// drainTagged drains a tagged cursor into the same sorted lines as
// taggedRows, closing the cursor.
func drainTagged(t *testing.T, cur core.Cursor) []string {
	t.Helper()
	defer cur.Close()
	var out []string
	for {
		batch, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("draining cursor: %v", err)
		}
		for _, tu := range batch {
			parts := make([]string, len(tu))
			for i, c := range tu {
				parts[i] = c.Format(cur.Registry())
			}
			out = append(out, strings.Join(parts, " | "))
		}
	}
	sort.Strings(out)
	return out
}

// colIndex finds a column by polygen (or local) attribute name.
func colIndex(t *testing.T, attrs []core.Attr, name string) int {
	t.Helper()
	for i, a := range attrs {
		if a.Polygen == name || a.Name == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, attrs)
	return -1
}

// intCol reads row[col] of a tagged relation as an int64 datum.
func intCol(t *testing.T, p *core.Relation, row int, name string) int64 {
	t.Helper()
	return p.Tuples[row][colIndex(t, p.Attrs, name)].D.IntVal()
}

// strCol reads row[col] of a tagged relation as a string datum.
func strCol(t *testing.T, p *core.Relation, row int, name string) string {
	t.Helper()
	return p.Tuples[row][colIndex(t, p.Attrs, name)].D.Str()
}
