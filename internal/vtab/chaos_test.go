package vtab

// Satellite chaos suite: seeded fault injection (the faultinject matrix the
// federation tests pin) with the observability plane in the loop. For every
// seed the V$FAULT and V$SOURCE_STATS counters must deterministically match
// the per-query federation.Diagnostics the engine reported — the monitoring
// numbers are the fault-handling numbers, not an approximation of them.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/pqp"
	"repro/internal/stats"
	"repro/internal/workload"
)

var chaosSeeds = []int64{1, 7, 42}

// chaosQueries stresses the fault layer differently: one single-leg
// pushdown chain and two join orders that fan out over every source.
var chaosQueries = []string{
	`((PFACT [CAT = "cat3"]) [VAL >= 5000]) [VAL]`,
	`(((PFACT [MK = MK] PMID) [DK = DK] (PDIM [DCAT = "dcat0"])) [VAL, DCAT, GRADE])`,
	`(((PFACT [DK = DK] PDIM) [MK = MK] PMID) [VAL, DCAT, GRADE])`,
}

// chaosRun executes the query mix against a replicated star with replica 0
// of every source killed, observing through a fresh fault catalog, and
// returns the observability plane's view (sorted V$FAULT and V$SOURCE_STATS
// lines) plus the engine's own view (summed per-query diagnostics).
type chaosView struct {
	faultRows  []string
	statRows   []string
	retries    int
	hedges     int
	down       int
	perSource  map[string]stats.FaultCounters
	injectErrs int64
}

func chaosRunOnce(t *testing.T, seed int64) chaosView {
	t.Helper()
	faults := stats.NewCatalog()
	cfg := workload.FaultConfig{
		Star:     workload.StarConfig{Facts: 900, Dims: 20, Mids: 10, Categories: 5, Seed: 11},
		Scenario: workload.ScenarioKilled,
		Seed:     seed,
		Federation: federation.Config{
			CallTimeout: 500 * time.Millisecond,
			MaxRetries:  1,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
			HedgeDelay:  -1, // keep call counts exact: hedging has its own tests
			Seed:        seed,
			Stats:       faults,
		},
	}
	rs := workload.NewReplicatedStar(cfg)
	q := pqp.New(rs.Star.Schema, rs.Star.Registry, nil, rs.LQPs())

	view := chaosView{perSource: map[string]stats.FaultCounters{}}
	for _, query := range chaosQueries {
		res, err := q.QueryAlgebra(query)
		if err != nil {
			t.Fatalf("seed %d query %q: %v", seed, query, err)
		}
		rep := res.Diag.Report()
		view.retries += rep.Retries
		view.hedges += rep.Hedges
	}

	vt := New()
	vt.Bind(Sources{Faults: faults, Registry: rs.Registry})
	fr, err := vt.Execute(lqp.Retrieve("V$FAULT"))
	if err != nil {
		t.Fatalf("V$FAULT: %v", err)
	}
	for _, row := range fr.Tuples {
		view.faultRows = append(view.faultRows, row.Key())
		view.perSource[row[0].Str()] = stats.FaultCounters{
			Errors:  row[1].IntVal(),
			Retries: row[2].IntVal(),
			Hedges:  row[3].IntVal(),
		}
	}
	sr, err := vt.Execute(lqp.Project("V$SOURCE_STATS", "SOURCE", "REPLICA", "HEALTHY", "BREAKER_OPEN", "LAST_ERROR"))
	if err != nil {
		t.Fatalf("V$SOURCE_STATS: %v", err)
	}
	for _, row := range sr.Tuples {
		view.statRows = append(view.statRows, row.Key())
		if !row[2].BoolVal() { // HEALTHY
			view.down++
		}
	}
	view.injectErrs, _, _, _ = rs.InjectedFaults()
	return view
}

func TestChaosObservabilityMatrix(t *testing.T) {
	for _, seed := range chaosSeeds {
		view := chaosRunOnce(t, seed)

		// The table enumerates the whole federation, dead-quiet sources
		// included.
		if len(view.perSource) != 3 {
			t.Fatalf("seed %d: V$FAULT has %d sources, want FD, DD, MD", seed, len(view.perSource))
		}
		var totErrors, totRetries, totHedges int64
		for src, fc := range view.perSource {
			totErrors += fc.Errors
			totRetries += fc.Retries
			totHedges += fc.Hedges
			if fc.Errors < 1 {
				t.Errorf("seed %d: source %s shows %d errors; its killed replica was called", seed, src, fc.Errors)
			}
		}

		// V$FAULT's totals are the engine's own diagnostics, not estimates.
		if totRetries != int64(view.retries) {
			t.Errorf("seed %d: V$FAULT retries total %d != summed Diagnostics retries %d", seed, totRetries, view.retries)
		}
		if totHedges != int64(view.hedges) || totHedges != 0 {
			t.Errorf("seed %d: hedges: V$FAULT %d, Diagnostics %d, want 0 (hedging disabled)", seed, totHedges, view.hedges)
		}
		if totErrors < totRetries {
			t.Errorf("seed %d: %d errors but %d retries — every failover is preceded by a failure", seed, totErrors, totRetries)
		}
		if view.injectErrs < totErrors {
			t.Errorf("seed %d: catalog booked %d errors but only %d faults were injected", seed, totErrors, view.injectErrs)
		}

		// The killed replicas are visible in V$SOURCE_STATS: 3 sources x 3
		// replicas, with at least one marked down per source.
		if len(view.statRows) != 9 {
			t.Errorf("seed %d: V$SOURCE_STATS has %d replica rows, want 9", seed, len(view.statRows))
		}
		if view.down < 3 {
			t.Errorf("seed %d: only %d replicas marked unhealthy, want the killed replica of each source\n%v", seed, view.down, view.statRows)
		}

		// Determinism: the same seed reproduces the same counters bit for
		// bit — the chaos matrix is replayable evidence, not noise.
		again := chaosRunOnce(t, seed)
		if !reflect.DeepEqual(view.faultRows, again.faultRows) {
			t.Errorf("seed %d: V$FAULT not deterministic:\n run 1: %v\n run 2: %v", seed, view.faultRows, again.faultRows)
		}
		if view.retries != again.retries || view.hedges != again.hedges {
			t.Errorf("seed %d: diagnostics not deterministic: retries %d/%d hedges %d/%d",
				seed, view.retries, again.retries, view.hedges, again.hedges)
		}
	}
}
