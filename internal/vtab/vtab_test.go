package vtab

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/rel"
	"repro/internal/wire"
)

func TestTableNames(t *testing.T) {
	names := TableNames()
	want := []string{"V$SESSION", "V$STMT", "V$PLAN_CACHE", "V$POOL", "V$SOURCE_STATS", "V$FAULT", "V$SHARD", "V$STORE", "V$MEM"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("TableNames() = %v, want %v", names, want)
	}
}

// TestSchemes checks every virtual scheme maps its attributes 1:1 onto V$
// local attributes of the same name, keyed by the first column.
func TestSchemes(t *testing.T) {
	schemes := Schemes()
	if len(schemes) != len(specs) {
		t.Fatalf("Schemes() returned %d schemes, want %d", len(schemes), len(specs))
	}
	for i, sc := range schemes {
		sp := specs[i]
		if sc.Name != sp.name {
			t.Errorf("scheme %d name %q, want %q", i, sc.Name, sp.name)
		}
		if sc.Key != sp.columns[0] {
			t.Errorf("%s key %q, want first column %q", sc.Name, sc.Key, sp.columns[0])
		}
		if len(sc.Attrs) != len(sp.columns) {
			t.Fatalf("%s has %d attrs, want %d", sc.Name, len(sc.Attrs), len(sp.columns))
		}
		for j, a := range sc.Attrs {
			if a.Name != sp.columns[j] {
				t.Errorf("%s attr %d name %q, want %q", sc.Name, j, a.Name, sp.columns[j])
			}
			if len(a.Mapping) != 1 {
				t.Fatalf("%s.%s has %d mappings, want 1", sc.Name, a.Name, len(a.Mapping))
			}
			m := a.Mapping[0]
			if m.DB != SourceName || m.Scheme != sp.name || m.Attr != a.Name {
				t.Errorf("%s.%s maps to %v, want {%s %s %s}", sc.Name, a.Name, m, SourceName, sp.name, a.Name)
			}
		}
	}
}

func TestAugmentSchemaRejectsClash(t *testing.T) {
	base := core.MustSchema(&core.Scheme{
		Name: "V$POOL",
		Key:  "X",
		Attrs: []core.PolygenAttr{{
			Name:    "X",
			Mapping: []core.LocalAttr{{DB: "D", Scheme: "R", Attr: "X"}},
		}},
	})
	if _, err := AugmentSchema(base); err == nil {
		t.Fatal("AugmentSchema accepted a base schema that already defines V$POOL")
	}
}

// TestUnboundTablesServeEmpty: a Tables before Bind answers every scan with
// the right columns and no rows — except V$POOL, whose nil pool is the
// valid single-worker pool.
func TestUnboundTablesServeEmpty(t *testing.T) {
	vt := New()
	for _, sp := range specs {
		r, err := vt.Execute(lqp.Retrieve(sp.name))
		if err != nil {
			t.Fatalf("Execute(%s): %v", sp.name, err)
		}
		if got := r.Schema.Len(); got != len(sp.columns) {
			t.Errorf("%s has %d columns, want %d", sp.name, got, len(sp.columns))
		}
		wantRows := 0
		if sp.name == "V$POOL" {
			wantRows = 1
		}
		if len(r.Tuples) != wantRows {
			t.Errorf("%s unbound has %d rows, want %d", sp.name, len(r.Tuples), wantRows)
		}
		if sp.name == "V$POOL" {
			if workers := r.Tuples[0][1].IntVal(); workers != 1 {
				t.Errorf("unbound V$POOL WORKERS = %d, want 1 (nil pool)", workers)
			}
		}
	}
	if _, err := vt.Execute(lqp.Retrieve("V$NOPE")); err == nil {
		t.Error("Execute(V$NOPE) succeeded, want error")
	}
}

// TestSnapshotImmutable: a cursor opened over a V$ table streams the
// snapshot taken at Open time, untouched by later mediator activity.
func TestSnapshotImmutable(t *testing.T) {
	h := newHarness(t, mediator.Config{Federation: "test"})
	info, err := h.svc.OpenSession(wire.SessionOptions{})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	q := harnessQueries()[0]
	if _, err := h.svc.Query(info.ID, q, true); err != nil {
		t.Fatalf("Query: %v", err)
	}

	cur, err := h.vt.Open(lqp.Retrieve("V$STMT"))
	if err != nil {
		t.Fatalf("Open(V$STMT): %v", err)
	}
	// Mutate hard after the snapshot: more statements on the same session.
	for i := 0; i < 5; i++ {
		if _, err := h.svc.Query(info.ID, q, true); err != nil {
			t.Fatalf("Query %d: %v", i, err)
		}
	}
	rows := drainRel(t, cur)
	if len(rows) != 1 {
		t.Fatalf("V$STMT cursor saw %d rows, want the 1 statement present at Open time", len(rows))
	}

	// And an already-materialized snapshot never changes either.
	before, err := h.vt.Execute(lqp.Retrieve("V$SESSION"))
	if err != nil {
		t.Fatalf("Execute(V$SESSION): %v", err)
	}
	wantQueries := before.Tuples[0][3].IntVal()
	if _, err := h.svc.Query(info.ID, q, true); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := before.Tuples[0][3].IntVal(); got != wantQueries {
		t.Fatalf("materialized snapshot mutated: QUERIES %d -> %d", wantQueries, got)
	}
}

// TestSelectProjectPushdown: Select/Project ops against V$ tables evaluate
// like against any local source (the lqp.Local delegation path).
func TestSelectProjectPushdown(t *testing.T) {
	h := newHarness(t, mediator.Config{})
	info, err := h.svc.OpenSession(wire.SessionOptions{})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	if _, err := h.svc.Query(info.ID, harnessQueries()[0], true); err != nil {
		t.Fatalf("Query: %v", err)
	}

	r, err := h.vt.Execute(lqp.Select("V$SESSION", "SID", rel.ThetaEQ, rel.String(info.ID)))
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(r.Tuples) != 1 {
		t.Fatalf("Select(SID = %s) returned %d rows, want 1", info.ID, len(r.Tuples))
	}
	r, err = h.vt.Execute(lqp.Select("V$SESSION", "SID", rel.ThetaEQ, rel.String("no-such-session")))
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(r.Tuples) != 0 {
		t.Fatalf("Select(no-such-session) returned %d rows, want 0", len(r.Tuples))
	}

	r, err = h.vt.Execute(lqp.Project("V$POOL", "WORKERS", "BUSY"))
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if r.Schema.Len() != 2 || len(r.Tuples) != 1 {
		t.Fatalf("Project(V$POOL) = %d cols x %d rows, want 2x1", r.Schema.Len(), len(r.Tuples))
	}
	if workers := r.Tuples[0][0].IntVal(); workers != 4 {
		t.Errorf("V$POOL WORKERS = %d, want the harness's 4", workers)
	}
}

// TestStatsProvider: the statistics capability reports every table with its
// schema-order columns and current cardinality.
func TestStatsProvider(t *testing.T) {
	h := newHarness(t, mediator.Config{})
	if _, err := h.svc.OpenSession(wire.SessionOptions{}); err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	st, err := h.vt.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if len(st) != len(specs) {
		t.Fatalf("Stats() reported %d relations, want %d", len(st), len(specs))
	}
	byName := make(map[string]lqp.RelationStats, len(st))
	for _, s := range st {
		byName[s.Name] = s
	}
	for _, sp := range specs {
		s, ok := byName[sp.name]
		if !ok {
			t.Errorf("Stats() missing %s", sp.name)
			continue
		}
		if !reflect.DeepEqual(s.Columns, sp.columns) {
			t.Errorf("%s columns %v, want %v", sp.name, s.Columns, sp.columns)
		}
	}
	if byName["V$SESSION"].Rows != 1 {
		t.Errorf("V$SESSION cardinality %d, want 1 open session", byName["V$SESSION"].Rows)
	}
	if byName["V$POOL"].Rows != 1 {
		t.Errorf("V$POOL cardinality %d, want 1", byName["V$POOL"].Rows)
	}
}

// drainRel drains an untagged local cursor into its rows.
func drainRel(t *testing.T, cur rel.Cursor) []rel.Tuple {
	t.Helper()
	defer cur.Close()
	var out []rel.Tuple
	for {
		batch, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("draining: %v", err)
		}
		out = append(out, batch...)
	}
	return out
}
