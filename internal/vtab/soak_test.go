package vtab

// Tentpole harness: a closed-loop workload.Drive against a live polygend
// stack over TCP while a concurrent observer queries the V$ tables over the
// same wire, asserting the cross-layer accounting invariants end to end:
//
//   - sessions open == rows in V$SESSION
//   - V$PLAN_CACHE hits+misses == statements issued (exact at quiesce,
//     an upper bound while the loop runs)
//   - V$POOL busy stays below the worker bound
//   - V$SOURCE_STATS latency estimators are finite with monotone call counts
//   - V$FAULT matches the federation diagnostics (all-zero: no faults here)
//
// CI runs this under -race as its own pinned-duration smoke step.

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mediator"
	"repro/internal/wire"
	"repro/internal/workload"
)

// lockedBuf is an io.Writer safe to read after concurrent writers quiesce.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestSoakObservability(t *testing.T) {
	const (
		clients      = 4
		opsPerClient = 30
	)
	slowLog := &lockedBuf{}
	h := newHarness(t, mediator.Config{
		Federation: "soak",
		SlowQuery:  time.Nanosecond, // every statement logs: the lines are part of the audit
		SlowLog:    slowLog,
	})
	srv := wire.NewMediatorServer(h.svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// issued counts every statement sent to the mediator — workload and
	// observer alike, bumped before the request goes out. Every accepted
	// statement performs exactly one plan-cache Get before executing, so at
	// any instant hits+misses <= issued, with equality once the loop drains.
	var issued atomic.Uint64

	queries := harnessQueries()
	workers := make([]*wire.Client, clients)
	sessions := make([]string, clients)
	for w := range workers {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatalf("Dial worker %d: %v", w, err)
		}
		defer c.Close()
		info, err := c.OpenSession()
		if err != nil {
			t.Fatalf("OpenSession worker %d: %v", w, err)
		}
		workers[w], sessions[w] = c, info.ID
	}

	obs, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("Dial observer: %v", err)
	}
	defer obs.Close()
	if _, err := obs.OpenSession(); err != nil { // interns sources for tag decoding
		t.Fatalf("OpenSession observer: %v", err)
	}
	obsSession := "" // observer stays sessionless: no V$SESSION/V$STMT footprint
	observe := func(query string) *wire.QueryAnswer {
		t.Helper()
		issued.Add(1)
		ans, err := obs.Query(obsSession, query, true)
		if err != nil {
			t.Fatalf("observer %q: %v", query, err)
		}
		return ans
	}

	done := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		var prevGets, prevSubmits uint64
		prevCalls := map[string]int64{}
		for round := 0; ; round++ {
			select {
			case <-done:
				return
			default:
			}

			ans := observe(`V$POOL [POOL, WORKERS, BUSY, HELPERS, SUBMITS]`)
			p := ans.Relation
			if len(p.Tuples) != 1 {
				t.Errorf("V$POOL has %d rows, want 1", len(p.Tuples))
				return
			}
			busy, poolWorkers := intCol(t, p, 0, "BUSY"), intCol(t, p, 0, "WORKERS")
			if busy < 0 || busy >= poolWorkers {
				t.Errorf("V$POOL BUSY = %d outside [0, WORKERS-1] with WORKERS = %d", busy, poolWorkers)
			}
			if submits := intCol(t, p, 0, "SUBMITS"); uint64(submits) < prevSubmits {
				t.Errorf("V$POOL SUBMITS shrank: %d -> %d", prevSubmits, submits)
			} else {
				prevSubmits = uint64(submits)
			}

			ans = observe(`V$SESSION [SID, QUERIES, ERRORS]`)
			// The workload's sessions all pre-exist the loop; the observer is
			// sessionless — so V$SESSION must hold exactly the open sessions.
			if got := len(ans.Relation.Tuples); got != clients+1 { // +1: the observer's (idle) session
				t.Errorf("V$SESSION has %d rows, want %d open sessions", got, clients+1)
			}

			ans = observe(`V$PLAN_CACHE [CACHE, ENTRIES, HITS, MISSES, EVICTIONS]`)
			c := ans.Relation
			gets := uint64(intCol(t, c, 0, "HITS") + intCol(t, c, 0, "MISSES"))
			if gets < prevGets {
				t.Errorf("V$PLAN_CACHE hits+misses shrank: %d -> %d", prevGets, gets)
			}
			prevGets = gets
			if ceiling := issued.Load(); gets > ceiling {
				t.Errorf("V$PLAN_CACHE hits+misses = %d exceeds statements issued %d", gets, ceiling)
			}
			if entries := intCol(t, c, 0, "ENTRIES"); entries > 32 {
				t.Errorf("V$PLAN_CACHE ENTRIES = %d exceeds capacity 32", entries)
			}

			ans = observe(`V$SOURCE_STATS [SOURCE, REPLICA, CALLS, MEAN_US, P95_US]`)
			for i := range ans.Relation.Tuples {
				key := strCol(t, ans.Relation, i, "SOURCE") + "#" + strCol(t, ans.Relation, i, "REPLICA")
				calls, mean, p95 := intCol(t, ans.Relation, i, "CALLS"), intCol(t, ans.Relation, i, "MEAN_US"), intCol(t, ans.Relation, i, "P95_US")
				if calls < prevCalls[key] {
					t.Errorf("V$SOURCE_STATS CALLS for %s shrank: %d -> %d", key, prevCalls[key], calls)
				}
				prevCalls[key] = calls
				if mean < 0 || p95 < 0 {
					t.Errorf("V$SOURCE_STATS %s has negative latency estimate (mean %d, p95 %d)", key, mean, p95)
				}
			}

			ans = observe(`V$FAULT [SOURCE, ERRORS, RETRIES, HEDGES]`)
			for i := range ans.Relation.Tuples {
				src := strCol(t, ans.Relation, i, "SOURCE")
				for _, col := range []string{"ERRORS", "RETRIES", "HEDGES"} {
					if n := intCol(t, ans.Relation, i, col); n != 0 {
						t.Errorf("fault-free soak: V$FAULT %s %s = %d, want 0", src, col, n)
					}
				}
			}
		}
	}()

	res := workload.Drive(clients, opsPerClient, func(w, i int) error {
		issued.Add(1)
		_, err := workers[w].Query(sessions[w], queries[i%len(queries)], true)
		return err
	})
	close(done)
	obsWG.Wait()
	if res.Errors != 0 {
		t.Fatalf("workload errors: %s", res.String())
	}
	t.Logf("soak: %s", res.String())

	// Quiesced: the invariants tighten to equalities. The final counted
	// statement's own cache Get lands before its V$ snapshot, so the answer
	// counts itself.
	ans := observe(`V$PLAN_CACHE [CACHE, HITS, MISSES]`)
	gets := uint64(intCol(t, ans.Relation, 0, "HITS") + intCol(t, ans.Relation, 0, "MISSES"))
	if want := issued.Load(); gets != want {
		t.Errorf("at quiesce V$PLAN_CACHE hits+misses = %d, want exactly %d statements issued", gets, want)
	}

	ans = observe(`V$SESSION [SID, QUERIES, ERRORS, CACHE_HITS]`)
	if got := len(ans.Relation.Tuples); got != clients+1 {
		t.Errorf("V$SESSION has %d rows, want %d", got, clients+1)
	}
	var trailTotal int64
	for i := range ans.Relation.Tuples {
		trailTotal += intCol(t, ans.Relation, i, "QUERIES")
		if errs := intCol(t, ans.Relation, i, "ERRORS"); errs != 0 {
			t.Errorf("session %s has %d errored statements, want 0", strCol(t, ans.Relation, i, "SID"), errs)
		}
	}
	if want := int64(clients * opsPerClient); trailTotal != want {
		t.Errorf("V$SESSION QUERIES total = %d, want %d workload statements", trailTotal, want)
	}

	ans = observe(`V$STMT [STMT_ID, SID]`)
	if got, want := len(ans.Relation.Tuples), clients*opsPerClient; got != want {
		t.Errorf("V$STMT has %d rows, want %d audited statements", got, want)
	}

	// Every source took traffic: the mix touches FD, DD and MD.
	ans = observe(`V$SOURCE_STATS [SOURCE, REPLICA, CALLS]`)
	calls := map[string]int64{}
	for i := range ans.Relation.Tuples {
		calls[strCol(t, ans.Relation, i, "SOURCE")] += intCol(t, ans.Relation, i, "CALLS")
	}
	for _, src := range []string{"FD", "DD", "MD"} {
		if calls[src] == 0 {
			t.Errorf("V$SOURCE_STATS shows no calls against %s", src)
		}
	}

	// Service counters agree with the client-side count, and the slow-query
	// log carries one well-formed JSON line per statement (threshold 1ns).
	counters := h.svc.Counters()
	if counters.Queries != issued.Load() {
		t.Errorf("service counted %d queries, client issued %d", counters.Queries, issued.Load())
	}
	if counters.QueryErrors != 0 {
		t.Errorf("service counted %d query errors, want 0", counters.QueryErrors)
	}
	lines := strings.Split(strings.TrimSpace(slowLog.String()), "\n")
	if uint64(len(lines)) != counters.Slow {
		t.Errorf("slow log has %d lines, service counted %d slow statements", len(lines), counters.Slow)
	}
	for _, line := range lines {
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("slow-query line is not JSON: %v\n%s", err, line)
		}
		for _, key := range []string{"time", "text", "duration_ms"} {
			if _, ok := entry[key]; !ok {
				t.Errorf("slow-query line lacks %q: %s", key, line)
			}
		}
	}

	// Closing the sessions empties V$SESSION.
	for w, c := range workers {
		if err := c.CloseSession(sessions[w]); err != nil {
			t.Fatalf("CloseSession: %v", err)
		}
	}
	ans = observe(`V$SESSION [SID]`)
	if got := len(ans.Relation.Tuples); got != 1 { // only the observer's idle session remains
		t.Errorf("after closing workload sessions V$SESSION has %d rows, want 1", got)
	}
}
