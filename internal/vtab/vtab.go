// Package vtab serves the mediator's own operational state — sessions and
// their audited statements, plan-cache counters, worker-pool occupancy,
// per-source latency estimates and fault counters — as ordinary read-only
// relations under a synthetic LQP named "V$". Operators introspect the
// running federation with polygen queries themselves: the V$ tables join
// against each other and against real federated relations, and the tag
// calculus applies unchanged (every V$ cell carries origin {V$}), so the
// engine dogfoods its own machinery on a new kind of source — small, hot,
// constantly mutating tables.
//
// The nine tables are V$SESSION, V$STMT, V$PLAN_CACHE, V$POOL,
// V$SOURCE_STATS, V$FAULT, V$SHARD, V$STORE and V$MEM; see the specs below
// (and the schema reference table in docs/ARCHITECTURE.md) for their
// columns.
//
// # Snapshot consistency contract
//
// Each reference to a V$ table in a query materializes an independent
// snapshot at Execute/Open time. The snapshot is taken under the owning
// structure's own synchronization — the mediator's session-table lock and
// each session's trail lock (one acquisition per session, so a session's
// LAST_USED and statement rows agree), the plan cache's atomic counters,
// the pool's atomic occupancy gauges, the statistics catalog's lock, the
// registry's per-replica state — and is immutable afterward: the rows are
// freshly built tuples owned by the snapshot, never aliases of live state.
// Two references to the same table in one query (or in two concurrent
// queries) may therefore observe different counter values; within one
// snapshot the rows of one owner are mutually consistent.
//
// Tables reads its sources through a Bind-installed Sources value: the
// mediator service exists only after the PQP it serves, so polygend builds
// the Tables first (its schemes must be in the PQP's schema), registers it
// as an LQP, and binds the live sources once they all exist. Every source
// is optional; an unbound or nil source contributes no rows (V$POOL, whose
// nil pool is the valid "no helpers" pool, reports the single-worker pool).
package vtab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/rel"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/translate"
)

// SourceName is the reserved local-database name of the virtual tables.
// The '$' keeps it out of the way of real sources (both query front ends
// accept '$' inside identifiers precisely for these names).
const SourceName = "V$"

// Sources are the live structures the virtual tables snapshot. All fields
// are optional: a nil source serves empty (or default) rows, so a Tables
// can be registered before the federation is fully wired and bound later.
type Sources struct {
	// Sessions feeds V$SESSION and V$STMT.
	Sessions *mediator.Service
	// Plans feeds V$PLAN_CACHE.
	Plans *translate.PlanCache
	// Pool feeds V$POOL (nil is the valid single-worker pool).
	Pool *exec.Pool
	// Stats returns the current optimizer statistics catalog; it is a
	// closure because pqp.CollectStats replaces the catalog instance.
	// It feeds the LINK_EWMA_US column of V$SOURCE_STATS.
	Stats func() *stats.Catalog
	// Faults is the catalog receiving the federation layer's error/retry/
	// hedge observations (federation.Config.Stats); it feeds V$FAULT.
	// It is typically a different instance from Stats() — the optimizer
	// catalog is replaced wholesale by stats collection, while fault
	// accounting must survive for the life of the process.
	Faults *stats.Catalog
	// Registry feeds the per-replica health and latency-estimator columns
	// of V$SOURCE_STATS and enumerates sources for V$FAULT.
	Registry *federation.Registry
	// Stores enumerates the process's durable stores in name order
	// (store.Each fits directly); it feeds V$STORE. nil when the process
	// hosts no write-ahead-logged database.
	Stores func(fn func(name string, st store.Stats))
	// Memory is the engine's spill budget (core.Memory); it feeds V$MEM.
	// nil means unbudgeted execution, contributing no rows.
	Memory *core.Memory
}

// Tables is the synthetic LQP serving the V$ virtual tables. It implements
// the full capability surface — lqp.LQP, lqp.Streamer, lqp.PlanRunner,
// lqp.PlanStreamer, lqp.StatsProvider — by materializing the requested
// table into a throwaway single-relation catalog.Database and delegating to
// lqp.Local, so filters, projections and pushed-down subplans against V$
// tables evaluate exactly like against any other local source.
type Tables struct {
	mu  sync.RWMutex
	src Sources
}

// New returns an unbound Tables (every virtual table empty until Bind).
func New() *Tables { return &Tables{} }

// Bind installs the live sources. It may be called again to rebind (the
// mediator wires it once at startup); snapshots in flight keep the sources
// they started with.
func (v *Tables) Bind(s Sources) {
	v.mu.Lock()
	v.src = s
	v.mu.Unlock()
}

func (v *Tables) sources() Sources {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.src
}

// tableSpec declares one virtual table: its columns in schema order and the
// builder that snapshots its rows from the bound sources.
type tableSpec struct {
	name    string
	columns []string
	build   func(s Sources) []rel.Tuple
}

// specs lists the virtual tables in the order Relations reports them.
var specs = []tableSpec{
	{
		name: "V$SESSION",
		// QUERIES/ERRORS/CACHE_HITS count over the retained audit-trail
		// window (Config.TrailLimit), not the session's whole life.
		columns: []string{"SID", "CREATED", "LAST_USED", "QUERIES", "ERRORS", "CACHE_HITS", "POLICY"},
		build:   buildSessions,
	},
	{
		name: "V$STMT",
		// One row per retained audit-trail entry; SEQ numbers entries
		// within the retained window, STMT_ID is SID#SEQ.
		columns: []string{"STMT_ID", "SID", "SEQ", "STARTED", "KIND", "STMT_TEXT", "DURATION_US", "ROWS", "CACHE_HIT", "MISSING", "ERROR"},
		build:   buildStmts,
	},
	{
		name:    "V$PLAN_CACHE",
		columns: []string{"CACHE", "CAPACITY", "ENTRIES", "HITS", "MISSES", "EVICTIONS"},
		build:   buildPlanCache,
	},
	{
		name:    "V$POOL",
		columns: []string{"POOL", "WORKERS", "BUSY", "HELPERS", "SUBMITS"},
		build:   buildPool,
	},
	{
		name: "V$SOURCE_STATS",
		// One row per registry replica, plus one replica-less row for each
		// source known only to the statistics catalog's latency table.
		columns: []string{"SOURCE", "REPLICA", "HEALTHY", "BREAKER_OPEN", "CALLS", "MEAN_US", "P95_US", "LINK_EWMA_US", "LAST_ERROR"},
		build:   buildSourceStats,
	},
	{
		name:    "V$FAULT",
		columns: []string{"SOURCE", "ERRORS", "RETRIES", "HEDGES"},
		build:   buildFaults,
	},
	{
		name: "V$SHARD",
		// One row per (shard, replica) of every sharded source: where each
		// horizontal partition lives and how many rows it has served into
		// gathered answers (ROWS is per shard, repeated across its replicas).
		columns: []string{"SOURCE", "SHARD", "SHARDS", "REPLICA", "HEALTHY", "ROWS"},
		build:   buildShards,
	},
	{
		name: "V$STORE",
		// One row per durable store hosted by this process: write-ahead-log
		// generation and size, append/sync/compaction counters, what
		// recovery replayed and truncated at boot, and whether a log
		// failure has latched the store read-only.
		columns: []string{"STORE", "DIR", "GENERATION", "APPENDS", "APPENDED_BYTES", "SYNCS", "COMPACTIONS", "REPLAY_RECORDS", "REPLAY_BYTES", "TRUNCATED_BYTES", "LOG_BYTES", "BROKEN"},
		build:   buildStores,
	},
	{
		name: "V$MEM",
		// One row when a spill budget is configured: the budget and
		// fan-out, and the cumulative spill traffic (partitions, rows and
		// framed bytes written; partition files read back).
		columns: []string{"BUDGET_BYTES", "PARTITIONS", "SPILLS", "SPILLED_ROWS", "SPILLED_BYTES", "RELOADS"},
		build:   buildMem,
	},
}

func findSpec(name string) (tableSpec, bool) {
	for _, sp := range specs {
		if sp.name == name {
			return sp, true
		}
	}
	return tableSpec{}, false
}

// TableNames lists the virtual table names in declaration order.
func TableNames() []string {
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.name
	}
	return names
}

func fmtTime(t time.Time) rel.Value {
	return rel.String(t.UTC().Format(time.RFC3339Nano))
}

func buildSessions(s Sources) []rel.Tuple {
	if s.Sessions == nil {
		return nil
	}
	sessions := s.Sessions.Sessions()
	out := make([]rel.Tuple, 0, len(sessions))
	for _, sess := range sessions {
		lastUsed, trail := sess.Snapshot()
		var errs, hits int64
		for _, e := range trail {
			if e.Err != "" {
				errs++
			}
			if e.CacheHit {
				hits++
			}
		}
		out = append(out, rel.Tuple{
			rel.String(sess.ID),
			fmtTime(sess.Created),
			fmtTime(lastUsed),
			rel.Int(int64(len(trail))),
			rel.Int(errs),
			rel.Int(hits),
			rel.String(sess.Policy().String()),
		})
	}
	return out
}

func buildStmts(s Sources) []rel.Tuple {
	if s.Sessions == nil {
		return nil
	}
	var out []rel.Tuple
	for _, sess := range s.Sessions.Sessions() {
		_, trail := sess.Snapshot()
		for i, e := range trail {
			kind := "sql"
			if e.Algebraic {
				kind = "algebra"
			}
			out = append(out, rel.Tuple{
				rel.String(fmt.Sprintf("%s#%d", sess.ID, i)),
				rel.String(sess.ID),
				rel.Int(int64(i)),
				fmtTime(e.When),
				rel.String(kind),
				rel.String(e.Text),
				rel.Int(e.Duration.Microseconds()),
				rel.Int(int64(e.Rows)),
				rel.Bool(e.CacheHit),
				rel.String(strings.Join(e.Missing, ",")),
				rel.String(e.Err),
			})
		}
	}
	return out
}

func buildPlanCache(s Sources) []rel.Tuple {
	if s.Plans == nil {
		return nil
	}
	st := s.Plans.Stats()
	return []rel.Tuple{{
		rel.String("plans"),
		rel.Int(int64(s.Plans.Cap())),
		rel.Int(int64(st.Entries)),
		rel.Int(int64(st.Hits)),
		rel.Int(int64(st.Misses)),
		rel.Int(int64(st.Evictions)),
	}}
}

func buildPool(s Sources) []rel.Tuple {
	ps := s.Pool.Snapshot() // nil-safe: the nil pool is the 1-worker pool
	return []rel.Tuple{{
		rel.String("parallel"),
		rel.Int(int64(ps.Workers)),
		rel.Int(ps.Busy),
		rel.Int(ps.Helpers),
		rel.Int(ps.Submits),
	}}
}

func buildSourceStats(s Sources) []rel.Tuple {
	var lat map[string]time.Duration
	if s.Stats != nil {
		if c := s.Stats(); c != nil {
			lat = c.Latencies()
		}
	}
	var out []rel.Tuple
	seen := make(map[string]bool)
	if s.Registry != nil {
		for _, h := range s.Registry.Health() {
			seen[h.Source] = true
			out = append(out, rel.Tuple{
				rel.String(h.Source),
				rel.String(h.Replica),
				rel.Bool(h.Healthy),
				rel.Bool(h.BreakerOpen),
				rel.Int(h.Calls),
				rel.Int(h.MeanLatency.Microseconds()),
				rel.Int(h.P95.Microseconds()),
				rel.Int(lat[h.Source].Microseconds()),
				rel.String(h.LastError),
			})
		}
	}
	for db, d := range lat {
		if seen[db] {
			continue
		}
		// Sources the federation layer does not manage (plain in-process
		// LQPs, the V$ source itself) still have observed link latencies.
		out = append(out, rel.Tuple{
			rel.String(db), rel.String(""), rel.Bool(true), rel.Bool(false),
			rel.Int(0), rel.Int(0), rel.Int(0), rel.Int(d.Microseconds()), rel.String(""),
		})
	}
	sortTuples(out)
	return out
}

func buildFaults(s Sources) []rel.Tuple {
	var faults map[string]stats.FaultCounters
	if s.Faults != nil {
		faults = s.Faults.AllFaults()
	}
	names := make(map[string]bool, len(faults))
	for db := range faults {
		names[db] = true
	}
	if s.Registry != nil {
		// Sources that never faulted still get a zero row, so the table
		// enumerates the federation.
		for _, h := range s.Registry.Health() {
			names[h.Source] = true
		}
	}
	out := make([]rel.Tuple, 0, len(names))
	for db := range names {
		fc := faults[db]
		out = append(out, rel.Tuple{
			rel.String(db),
			rel.Int(fc.Errors),
			rel.Int(fc.Retries),
			rel.Int(fc.Hedges),
		})
	}
	sortTuples(out)
	return out
}

func buildShards(s Sources) []rel.Tuple {
	if s.Registry == nil {
		return nil
	}
	infos := s.Registry.Shards()
	out := make([]rel.Tuple, 0, len(infos))
	for _, si := range infos {
		out = append(out, rel.Tuple{
			rel.String(si.Source),
			rel.Int(int64(si.Shard)),
			rel.Int(int64(si.Shards)),
			rel.String(si.Replica),
			rel.Bool(si.Healthy),
			rel.Int(si.Rows),
		})
	}
	sortTuples(out)
	return out
}

func buildStores(s Sources) []rel.Tuple {
	if s.Stores == nil {
		return nil
	}
	var out []rel.Tuple
	s.Stores(func(name string, st store.Stats) {
		out = append(out, rel.Tuple{
			rel.String(name),
			rel.String(st.Dir),
			rel.Int(st.Generation),
			rel.Int(st.Appends),
			rel.Int(st.AppendedBytes),
			rel.Int(st.Syncs),
			rel.Int(st.Compactions),
			rel.Int(st.ReplayRecords),
			rel.Int(st.ReplayBytes),
			rel.Int(st.TruncatedBytes),
			rel.Int(st.LogBytes),
			rel.Bool(st.Broken),
		})
	})
	return out
}

func buildMem(s Sources) []rel.Tuple {
	m := s.Memory
	if m == nil || m.Budget <= 0 {
		return nil
	}
	parts := int64(m.Partitions)
	if parts <= 0 {
		parts = core.DefaultSpillPartitions
	}
	return []rel.Tuple{{
		rel.Int(m.Budget),
		rel.Int(parts),
		rel.Int(m.Spills.Load()),
		rel.Int(m.SpilledRows.Load()),
		rel.Int(m.SpilledBytes.Load()),
		rel.Int(m.Reloads.Load()),
	}}
}

// sortTuples orders snapshot rows by their rendered cells, so tables whose
// builders iterate maps come out deterministic.
func sortTuples(ts []rel.Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}

// snapshot materializes one virtual table into a throwaway single-relation
// database. The database is private to this call and immutable once built,
// so lqp.Local's zero-copy View path is safe on top of it.
func (v *Tables) snapshot(table string) (*catalog.Database, error) {
	sp, ok := findSpec(table)
	if !ok {
		return nil, fmt.Errorf("vtab: no virtual table %q", table)
	}
	db := catalog.NewDatabase(SourceName)
	db.MustCreate(sp.name, rel.SchemaOf(sp.columns...))
	if rows := sp.build(v.sources()); len(rows) > 0 {
		if err := db.Insert(sp.name, rows...); err != nil {
			return nil, fmt.Errorf("vtab: building %s: %w", sp.name, err)
		}
	}
	return db, nil
}

// Name implements lqp.LQP.
func (v *Tables) Name() string { return SourceName }

// Relations implements lqp.LQP.
func (v *Tables) Relations() ([]string, error) { return TableNames(), nil }

// Execute implements lqp.LQP against a fresh snapshot of the table.
func (v *Tables) Execute(op lqp.Op) (*rel.Relation, error) {
	db, err := v.snapshot(op.Relation)
	if err != nil {
		return nil, err
	}
	return lqp.NewLocal(db).Execute(op)
}

// Open implements lqp.Streamer: the cursor streams over the immutable
// snapshot taken here, never over live state.
func (v *Tables) Open(op lqp.Op) (rel.Cursor, error) {
	db, err := v.snapshot(op.Relation)
	if err != nil {
		return nil, err
	}
	return lqp.NewLocal(db).Open(op)
}

// ExecutePlan implements lqp.PlanRunner: one snapshot, then the pushed
// pipeline folds over it in-process.
func (v *Tables) ExecutePlan(p lqp.Plan) (*rel.Relation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	db, err := v.snapshot(p.Relation())
	if err != nil {
		return nil, err
	}
	return lqp.NewLocal(db).ExecutePlan(p)
}

// OpenPlan implements lqp.PlanStreamer.
func (v *Tables) OpenPlan(p lqp.Plan) (rel.Cursor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	db, err := v.snapshot(p.Relation())
	if err != nil {
		return nil, err
	}
	return lqp.NewLocal(db).OpenPlan(p)
}

// Stats implements lqp.StatsProvider: one fresh snapshot per table. The
// cardinalities are as volatile as the underlying counters; like every
// statistic they only influence plan choice, never results.
func (v *Tables) Stats() ([]lqp.RelationStats, error) {
	s := v.sources()
	out := make([]lqp.RelationStats, len(specs))
	for i, sp := range specs {
		out[i] = lqp.RelationStats{
			Name:    sp.name,
			Rows:    len(sp.build(s)),
			Columns: append([]string(nil), sp.columns...),
		}
	}
	return out, nil
}

var (
	_ lqp.LQP           = (*Tables)(nil)
	_ lqp.Streamer      = (*Tables)(nil)
	_ lqp.PlanRunner    = (*Tables)(nil)
	_ lqp.PlanStreamer  = (*Tables)(nil)
	_ lqp.StatsProvider = (*Tables)(nil)
)

// Schemes returns the polygen schemes of the virtual tables: one
// single-source scheme per table, every attribute mapping 1:1 to the V$
// local attribute of the same name (the same shape the star workload uses
// for its single-source schemes). The scheme key is the first column.
func Schemes() []*core.Scheme {
	out := make([]*core.Scheme, 0, len(specs))
	for _, sp := range specs {
		attrs := make([]core.PolygenAttr, len(sp.columns))
		for i, col := range sp.columns {
			attrs[i] = core.PolygenAttr{
				Name:    col,
				Mapping: []core.LocalAttr{{DB: SourceName, Scheme: sp.name, Attr: col}},
			}
		}
		out = append(out, &core.Scheme{Name: sp.name, Attrs: attrs, Key: sp.columns[0]})
	}
	return out
}

// AugmentSchema returns base's polygen schema extended with the V$ schemes,
// sharing base's domain-map table (V$ attributes have no domain mappings,
// so lookups fall through to identity). The base schema is not modified.
func AugmentSchema(base *core.Schema) (*core.Schema, error) {
	var all []*core.Scheme
	for _, name := range base.SchemeNames() {
		if _, clash := findSpec(name); clash {
			return nil, fmt.Errorf("vtab: schema already defines reserved scheme %q", name)
		}
		p, ok := base.Scheme(name)
		if !ok {
			return nil, fmt.Errorf("vtab: schema lists unknown scheme %q", name)
		}
		all = append(all, p)
	}
	all = append(all, Schemes()...)
	out, err := core.NewSchema(all...)
	if err != nil {
		return nil, fmt.Errorf("vtab: augmenting schema: %w", err)
	}
	out.DomainMap = base.DomainMap
	return out, nil
}
