package vtab

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/mediator"
	"repro/internal/wire"
)

var (
	metricComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	metricSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
)

// TestMetricsFormat scrapes a live handler and validates the exposition
// against the Prometheus text format: every line is a well-formed comment
// or sample, every sample's family is TYPE-declared before it, and the
// values agree with the V$ sources they render.
func TestMetricsFormat(t *testing.T) {
	h := newHarness(t, mediator.Config{Federation: "metrics"})
	info, err := h.svc.OpenSession(wire.SessionOptions{})
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	for _, q := range harnessQueries() {
		if _, err := h.svc.Query(info.ID, q, true); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}

	rec := httptest.NewRecorder()
	h.vt.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != metricsContentType {
		t.Errorf("Content-Type = %q, want %q", ct, metricsContentType)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(body, "\n") {
		t.Error("exposition does not end in a newline")
	}

	declared := map[string]bool{}
	values := map[string]string{} // unlabelled samples only
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# TYPE "):
			if !metricComment.MatchString(line) {
				t.Errorf("line %d: malformed TYPE comment: %q", i+1, line)
				continue
			}
			name := strings.Fields(line)[2]
			if declared[name] {
				t.Errorf("line %d: family %s TYPE-declared twice", i+1, name)
			}
			declared[name] = true
		case strings.HasPrefix(line, "#"):
			if !metricComment.MatchString(line) {
				t.Errorf("line %d: malformed comment: %q", i+1, line)
			}
		default:
			m := metricSample.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed sample: %q", i+1, line)
				continue
			}
			if !declared[m[1]] {
				t.Errorf("line %d: sample for %s precedes its TYPE declaration", i+1, m[1])
			}
			if m[2] == "" {
				values[m[1]] = line[strings.LastIndex(line, " ")+1:]
			}
		}
	}

	// Spot-check the families against their sources.
	intValue := func(name string) int64 {
		t.Helper()
		raw, ok := values[name]
		if !ok {
			t.Fatalf("exposition lacks %s", name)
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			t.Fatalf("%s value %q: %v", name, raw, err)
		}
		return n
	}
	if up := intValue("polygen_up"); up != 1 {
		t.Errorf("polygen_up = %d, want 1", up)
	}
	if got, want := intValue("polygen_sessions_open"), int64(h.svc.SessionCount()); got != want {
		t.Errorf("polygen_sessions_open = %d, want %d", got, want)
	}
	st := h.proc.Plans.Stats()
	if got := intValue("polygen_plan_cache_hits_total"); got != int64(st.Hits) {
		t.Errorf("polygen_plan_cache_hits_total = %d, cache reports %d", got, st.Hits)
	}
	if got := intValue("polygen_plan_cache_misses_total"); got != int64(st.Misses) {
		t.Errorf("polygen_plan_cache_misses_total = %d, cache reports %d", got, st.Misses)
	}
	if got, want := intValue("polygen_queries_total"), int64(h.svc.Counters().Queries); got != want {
		t.Errorf("polygen_queries_total = %d, service reports %d", got, want)
	}
	if got, want := intValue("polygen_pool_workers"), int64(4); got != want {
		t.Errorf("polygen_pool_workers = %d, want %d", got, want)
	}
	for _, labelled := range []string{"polygen_replica_healthy", "polygen_replica_calls_total"} {
		if !declared[labelled] {
			t.Errorf("exposition lacks the %s family", labelled)
		}
	}
	// Fault families render only once a fault was booked (empty families
	// are suppressed); book one and re-scrape.
	h.faults.ObserveError("FD")
	rec = httptest.NewRecorder()
	h.vt.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `polygen_source_errors_total{source="FD"} 1`) {
		t.Error("booked fault missing from polygen_source_errors_total")
	}

	// Label values with quotes and backslashes must escape cleanly.
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("escapeLabel = %q", got)
	}
}
