package vtab

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/store"
)

// TestStoreAndMemTables binds a live durable store and a spill budget and
// proves V$STORE / V$MEM and the matching /metrics families observe them.
func TestStoreAndMemTables(t *testing.T) {
	seed := catalog.NewDatabase("DUR")
	seed.MustCreate("R", rel.SchemaOf("K", "V"), "K")
	st, err := store.Open(t.TempDir(), "", seed, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Insert("R", rel.Tuple{rel.String("a"), rel.String("1")}); err != nil {
		t.Fatal(err)
	}
	mem := &core.Memory{Budget: 1 << 20, Partitions: 8}
	mem.Spills.Add(3)
	mem.SpilledRows.Add(42)

	store.Register("DUR", st)
	defer store.Unregister("DUR")
	vt := New()
	vt.Bind(Sources{Stores: store.Each, Memory: mem})

	r, err := vt.Execute(lqp.Retrieve("V$STORE"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 {
		t.Fatalf("V$STORE has %d rows, want 1", len(r.Tuples))
	}
	row := r.Tuples[0]
	if row[0].Str() != "DUR" {
		t.Fatalf("STORE = %q", row[0].Str())
	}
	if appends := row[3].IntVal(); appends != 1 {
		t.Fatalf("APPENDS = %d, want 1", appends)
	}
	if broken := row[11].BoolVal(); broken {
		t.Fatal("BROKEN = true for a healthy store")
	}

	m, err := vt.Execute(lqp.Retrieve("V$MEM"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tuples) != 1 {
		t.Fatalf("V$MEM has %d rows, want 1", len(m.Tuples))
	}
	if budget := m.Tuples[0][0].IntVal(); budget != 1<<20 {
		t.Fatalf("BUDGET_BYTES = %d", budget)
	}
	if spills := m.Tuples[0][2].IntVal(); spills != 3 {
		t.Fatalf("SPILLS = %d, want 3", spills)
	}

	rec := httptest.NewRecorder()
	vt.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`polygen_store_appends_total{store="DUR"} 1`,
		`polygen_store_broken{store="DUR"} 0`,
		"polygen_spill_budget_bytes 1048576",
		"polygen_spill_rows_total 42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
