package vtab

// Satellite property suite: every V$ relation round-trips the full engine
// matrix — serial materializing, streaming, morsel-parallel — and both wire
// codecs (gob row frames and the binary columnar codec) cell- and
// tag-identically. The observed sources are frozen before the matrix runs:
// the parity queries execute on separate PQPs with their own plan caches,
// pools and (absent) statistics catalogs, so every leg re-snapshots the
// same immutable counters and must render the same lines.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/mediator"
	"repro/internal/pqp"
	"repro/internal/translate"
	"repro/internal/wire"
)

// parityQueries covers every V$ table plus the join shapes the issue calls
// out: V$ x V$ and V$ x real federated relation.
var parityQueries = []string{
	`V$SESSION [SID, CREATED, LAST_USED, QUERIES, ERRORS, CACHE_HITS, POLICY]`,
	`V$STMT [STMT_ID, SID, SEQ, STARTED, KIND, STMT_TEXT, DURATION_US, ROWS, CACHE_HIT, MISSING, ERROR]`,
	`V$PLAN_CACHE [CACHE, CAPACITY, ENTRIES, HITS, MISSES, EVICTIONS]`,
	`V$POOL [POOL, WORKERS, BUSY, HELPERS, SUBMITS]`,
	`V$SOURCE_STATS [SOURCE, REPLICA, HEALTHY, BREAKER_OPEN, CALLS, MEAN_US, P95_US, LINK_EWMA_US, LAST_ERROR]`,
	`V$FAULT [SOURCE, ERRORS, RETRIES, HEDGES]`,
	`(V$STMT [SID = SID] V$SESSION) [STMT_ID, SEQ, KIND, POLICY]`,
	`(V$FAULT [SOURCE = SOURCE] V$SOURCE_STATS) [SOURCE, ERRORS, REPLICA, HEALTHY]`,
	`(V$POOL [POOL <> DCAT] (PDIM [DCAT = "dcat0"])) [POOL, WORKERS, DCAT]`,
	`V$SHARD [SOURCE, SHARD, SHARDS, REPLICA, HEALTHY, ROWS]`,
}

func TestEngineMatrixParity(t *testing.T) {
	h := newHarness(t, mediator.Config{Federation: "parity"})

	// Populate the observed state, then freeze: sessions with audit trails
	// (successes and one failure), plan-cache traffic, source estimators.
	for s := 0; s < 2; s++ {
		info, err := h.svc.OpenSession(wire.SessionOptions{})
		if err != nil {
			t.Fatalf("OpenSession: %v", err)
		}
		for _, q := range harnessQueries() {
			if _, err := h.svc.Query(info.ID, q, true); err != nil {
				t.Fatalf("populate %q: %v", q, err)
			}
		}
		if _, err := h.svc.Query(info.ID, `PFACT [NO_SUCH_ATTR = "x"]`, true); err == nil {
			t.Fatal("expected the bad populate query to fail")
		}
	}

	// Separate querying engines over the same frozen sources: private plan
	// caches, private pools, no statistics catalog — nothing they do moves
	// the counters the V$ snapshots read.
	newQueryPQP := func(workers, threshold int) *pqp.PQP {
		lqps := h.star.LQPs()
		lqps[SourceName] = h.vt
		schema, err := AugmentSchema(h.star.Schema)
		if err != nil {
			t.Fatalf("AugmentSchema: %v", err)
		}
		q := pqp.New(schema, h.star.Registry, nil, lqps)
		q.SetParallel(workers, threshold)
		return q
	}
	serial := newQueryPQP(-1, 0)
	parallel := newQueryPQP(4, 1) // threshold 1 forces the partitioned path

	// Wire legs: a second mediator over its own PQP serves the same vt;
	// one client negotiates the binary columnar codec, one refuses it.
	wireSvc := mediator.New(newQueryPQP(4, 1), mediator.Config{Federation: "parity-wire"})
	srv := wire.NewMediatorServer(wireSvc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	dial := func(legacy bool) (*wire.Client, string) {
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		c.LegacyFrames = legacy
		info, err := c.OpenSession() // pre-interns sources in canonical order
		if err != nil {
			t.Fatalf("OpenSession over wire: %v", err)
		}
		return c, info.ID
	}
	binClient, binSess := dial(false)
	gobClient, gobSess := dial(true)

	for _, query := range parityQueries {
		expr, err := translate.ParseExpr(query)
		if err != nil {
			t.Fatalf("parse %q: %v", query, err)
		}

		res, err := serial.Run(expr)
		if err != nil {
			t.Fatalf("serial run %q: %v", query, err)
		}
		want := taggedRows(res.Relation)

		legs := map[string][]string{}
		if cur, _, err := serial.Open(expr); err != nil {
			t.Fatalf("serial open %q: %v", query, err)
		} else {
			legs["serial-stream"] = drainTagged(t, cur)
		}
		if res, err := parallel.Run(expr); err != nil {
			t.Fatalf("parallel run %q: %v", query, err)
		} else {
			legs["parallel-materialized"] = taggedRows(res.Relation)
		}
		if cur, _, err := parallel.Open(expr); err != nil {
			t.Fatalf("parallel open %q: %v", query, err)
		} else {
			legs["parallel-stream"] = drainTagged(t, cur)
		}
		if ans, err := gobClient.Query(gobSess, query, true); err != nil {
			t.Fatalf("wire gob query %q: %v", query, err)
		} else {
			legs["wire-gob-materialized"] = taggedRows(ans.Relation)
		}
		if cur, _, err := gobClient.OpenQuery(gobSess, query, true); err != nil {
			t.Fatalf("wire gob open %q: %v", query, err)
		} else {
			legs["wire-gob-stream"] = drainTagged(t, cur)
		}
		if cur, _, err := binClient.OpenQuery(binSess, query, true); err != nil {
			t.Fatalf("wire binary open %q: %v", query, err)
		} else {
			legs["wire-binary-stream"] = drainTagged(t, cur)
		}

		for leg, got := range legs {
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s diverges on %q:\n  serial: %v\n  %s: %v", leg, query, want, leg, got)
			}
		}
		if len(want) == 0 {
			t.Errorf("%q returned no rows — parity vacuous", query)
		}
	}

	// The V$ x real join must compose tags across source kinds: the V$
	// origin and the dimension source in one tuple.
	res, err := serial.QueryAlgebra(parityQueries[8])
	if err != nil {
		t.Fatalf("tag query: %v", err)
	}
	lines := taggedRows(res.Relation)
	if len(lines) == 0 {
		t.Fatal("V$ x PDIM join returned no rows")
	}
	joined := ""
	for _, l := range lines {
		joined += l + "\n"
	}
	for _, wantTag := range []string{"{V$}", "{DD}"} {
		if !strings.Contains(joined, wantTag) {
			t.Errorf("V$ x PDIM join output lacks %s tags:\n%s", wantTag, joined)
		}
	}
}
