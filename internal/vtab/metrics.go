package vtab

// This file renders the same source snapshots the V$ tables serve as a
// Prometheus text-format exposition (/metrics). The metric families map
// 1:1 onto V$ columns — see the name-mapping table in docs/ARCHITECTURE.md
// — so a dashboard and a polygen query read the same counters.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/store"
)

// metricsContentType is the Prometheus text exposition format version.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// MetricsHandler returns an http.Handler serving the bound sources'
// counters in Prometheus text format. Each request takes fresh snapshots
// under the same per-owner synchronization as the V$ tables.
func (v *Tables) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", metricsContentType)
		var b strings.Builder
		v.writeMetrics(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

// sample is one metric sample: optional labels plus a value.
type sample struct {
	labels string // rendered `{k="v",...}`, "" for none
	value  string
}

// family writes one metric family: HELP/TYPE header plus samples sorted by
// label set, so output is deterministic.
func family(b *strings.Builder, name, typ, help string, samples []sample) {
	if len(samples) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
	for _, s := range samples {
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, s.value)
	}
}

func gauge(b *strings.Builder, name, help string, samples ...sample) {
	family(b, name, "gauge", help, samples)
}

func counter(b *strings.Builder, name, help string, samples ...sample) {
	family(b, name, "counter", help, samples)
}

func num(v int64) sample { return sample{value: fmt.Sprintf("%d", v)} }

func boolVal(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

func seconds(d time.Duration) string { return fmt.Sprintf("%g", d.Seconds()) }

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func labels(kv ...string) string {
	var parts []string
	for i := 0; i+1 < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, kv[i], escapeLabel(kv[i+1])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func (v *Tables) writeMetrics(b *strings.Builder) {
	s := v.sources()

	gauge(b, "polygen_up", "Whether the mediator is serving.", num(1))

	if s.Sessions != nil {
		gauge(b, "polygen_sessions_open", "Live sessions in the mediator's session table.",
			num(int64(s.Sessions.SessionCount())))
		c := s.Sessions.Counters()
		counter(b, "polygen_queries_total", "Statements accepted by the mediator, failed ones included.",
			num(int64(c.Queries)))
		counter(b, "polygen_query_errors_total", "Statements that failed (parse or execution).",
			num(int64(c.QueryErrors)))
		counter(b, "polygen_slow_queries_total", "Statements that crossed the slow-query threshold.",
			num(int64(c.Slow)))
	}

	if s.Plans != nil {
		st := s.Plans.Stats()
		counter(b, "polygen_plan_cache_hits_total", "Plan cache hits.", num(int64(st.Hits)))
		counter(b, "polygen_plan_cache_misses_total", "Plan cache misses.", num(int64(st.Misses)))
		counter(b, "polygen_plan_cache_evictions_total", "Plans dropped by the LRU bound.", num(int64(st.Evictions)))
		gauge(b, "polygen_plan_cache_entries", "Plans currently cached.", num(int64(st.Entries)))
		gauge(b, "polygen_plan_cache_capacity", "Plan cache capacity bound.", num(int64(s.Plans.Cap())))
	}

	ps := s.Pool.Snapshot()
	gauge(b, "polygen_pool_workers", "Intra-operator worker pool parallelism bound.", num(int64(ps.Workers)))
	gauge(b, "polygen_pool_busy", "Helper slots currently held (always below polygen_pool_workers).", num(ps.Busy))
	counter(b, "polygen_pool_helpers_total", "Helper goroutines ever started.", num(ps.Helpers))
	counter(b, "polygen_pool_submits_total", "Pipeline-stage submissions (inline runs included).", num(ps.Submits))

	if s.Registry != nil {
		var healthy, breaker, calls, mean, p95 []sample
		for _, h := range s.Registry.Health() {
			l := labels("source", h.Source, "replica", h.Replica)
			healthy = append(healthy, sample{labels: l, value: boolVal(h.Healthy)})
			breaker = append(breaker, sample{labels: l, value: boolVal(h.BreakerOpen)})
			calls = append(calls, sample{labels: l, value: fmt.Sprintf("%d", h.Calls)})
			mean = append(mean, sample{labels: l, value: seconds(h.MeanLatency)})
			p95 = append(p95, sample{labels: l, value: seconds(h.P95)})
		}
		family(b, "polygen_replica_healthy", "gauge", "Replica last-known liveness (1 healthy).", healthy)
		family(b, "polygen_replica_breaker_open", "gauge", "Replica circuit breaker currently rejecting calls.", breaker)
		family(b, "polygen_replica_calls_total", "counter", "Successful calls observed by the replica's latency estimator.", calls)
		family(b, "polygen_replica_latency_mean_seconds", "gauge", "Replica call latency EWMA mean.", mean)
		family(b, "polygen_replica_latency_p95_seconds", "gauge", "Replica call latency tail estimate (mean+3*deviation).", p95)

		var shardHealthy, shardRows []sample
		seenShard := make(map[string]bool)
		for _, si := range s.Registry.Shards() {
			l := labels("source", si.Source, "shard", fmt.Sprintf("%d", si.Shard), "replica", si.Replica)
			shardHealthy = append(shardHealthy, sample{labels: l, value: boolVal(si.Healthy)})
			// Rows are metered per shard leg, not per replica: emit one
			// sample per (source, shard) so sums across the family equal
			// rows gathered.
			sl := labels("source", si.Source, "shard", fmt.Sprintf("%d", si.Shard))
			if !seenShard[sl] {
				seenShard[sl] = true
				shardRows = append(shardRows, sample{labels: sl, value: fmt.Sprintf("%d", si.Rows)})
			}
		}
		family(b, "polygen_shard_replica_healthy", "gauge", "Shard replica last-known liveness (1 healthy).", shardHealthy)
		family(b, "polygen_shard_rows_total", "counter", "Rows each shard has served into gathered answers.", shardRows)
	}

	if s.Stats != nil {
		if c := s.Stats(); c != nil {
			var link []sample
			for db, d := range c.Latencies() {
				link = append(link, sample{labels: labels("source", db), value: seconds(d)})
			}
			family(b, "polygen_source_link_latency_seconds", "gauge", "Observed per-source link latency EWMA.", link)
		}
	}

	if s.Faults != nil {
		var errs, retries, hedges []sample
		all := s.Faults.AllFaults()
		for db, fc := range all {
			l := labels("source", db)
			errs = append(errs, sample{labels: l, value: fmt.Sprintf("%d", fc.Errors)})
			retries = append(retries, sample{labels: l, value: fmt.Sprintf("%d", fc.Retries)})
			hedges = append(hedges, sample{labels: l, value: fmt.Sprintf("%d", fc.Hedges)})
		}
		family(b, "polygen_source_errors_total", "counter", "Failed replica calls per source.", errs)
		family(b, "polygen_source_retries_total", "counter", "Retried (or failed-over) calls per source.", retries)
		family(b, "polygen_source_hedges_total", "counter", "Hedged requests launched per source.", hedges)
	}

	if s.Stores != nil {
		var gen, appends, appended, syncs, compactions, logBytes, truncated, broken []sample
		s.Stores(func(name string, st store.Stats) {
			l := labels("store", name)
			gen = append(gen, sample{labels: l, value: fmt.Sprintf("%d", st.Generation)})
			appends = append(appends, sample{labels: l, value: fmt.Sprintf("%d", st.Appends)})
			appended = append(appended, sample{labels: l, value: fmt.Sprintf("%d", st.AppendedBytes)})
			syncs = append(syncs, sample{labels: l, value: fmt.Sprintf("%d", st.Syncs)})
			compactions = append(compactions, sample{labels: l, value: fmt.Sprintf("%d", st.Compactions)})
			logBytes = append(logBytes, sample{labels: l, value: fmt.Sprintf("%d", st.LogBytes)})
			truncated = append(truncated, sample{labels: l, value: fmt.Sprintf("%d", st.TruncatedBytes)})
			broken = append(broken, sample{labels: l, value: boolVal(st.Broken)})
		})
		family(b, "polygen_store_generation", "gauge", "Current snapshot/log generation of the durable store.", gen)
		family(b, "polygen_store_appends_total", "counter", "Records appended to the write-ahead log this process.", appends)
		family(b, "polygen_store_appended_bytes_total", "counter", "Bytes appended to the write-ahead log this process.", appended)
		family(b, "polygen_store_syncs_total", "counter", "fsync calls issued against the write-ahead log.", syncs)
		family(b, "polygen_store_compactions_total", "counter", "Snapshot rotations (log compactions) performed.", compactions)
		family(b, "polygen_store_log_bytes", "gauge", "Current clean size of the write-ahead log.", logBytes)
		family(b, "polygen_store_truncated_bytes", "gauge", "Torn or corrupt log bytes discarded at recovery.", truncated)
		family(b, "polygen_store_broken", "gauge", "Whether a log failure has latched the store read-only.", broken)
	}

	if m := s.Memory; m != nil && m.Budget > 0 {
		gauge(b, "polygen_spill_budget_bytes", "Memory budget above which hash operators spill partitions to disk.", num(m.Budget))
		counter(b, "polygen_spill_partitions_total", "Operator partitions grace-spilled to temp segments.", num(m.Spills.Load()))
		counter(b, "polygen_spill_rows_total", "Tuples written to spill segments.", num(m.SpilledRows.Load()))
		counter(b, "polygen_spill_bytes_total", "Framed bytes written to spill segments.", num(m.SpilledBytes.Load()))
		counter(b, "polygen_spill_reloads_total", "Spilled partition files read back for processing.", num(m.Reloads.Load()))
	}
}
