package vtab

// Satellite race coverage for the snapshot-consistency fix: every V$
// snapshot is taken under the owning structure's own lock and is immutable
// afterward. This test hammers V$SESSION, V$STMT and V$POOL reads — direct
// and through the polygen engine — while sessions churn and parallel
// queries keep the worker pool busy. Its value is under -race (the CI soak
// step runs the package with it); the assertions here are the cheap
// consistency checks that stay valid mid-churn.

import (
	"sync"
	"testing"

	"repro/internal/lqp"
	"repro/internal/mediator"
	"repro/internal/wire"
)

func TestSessionChurnSnapshotRace(t *testing.T) {
	h := newHarness(t, mediator.Config{Federation: "churn"})
	h.proc.SetParallel(4, 1) // force the partitioned path: pool occupancy moves

	const (
		churners          = 3
		sessionsPerChurn  = 15
		queriesPerSession = 2
	)
	done := make(chan struct{})
	var churnWG, hammerWG sync.WaitGroup

	for c := 0; c < churners; c++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for s := 0; s < sessionsPerChurn; s++ {
				info, err := h.svc.OpenSession(wire.SessionOptions{})
				if err != nil {
					t.Errorf("OpenSession: %v", err)
					return
				}
				for i := 0; i < queriesPerSession; i++ {
					q := harnessQueries()[(s+i)%len(harnessQueries())]
					if _, err := h.svc.Query(info.ID, q, true); err != nil {
						t.Errorf("Query: %v", err)
						return
					}
				}
				if err := h.svc.CloseSession(info.ID); err != nil {
					t.Errorf("CloseSession: %v", err)
					return
				}
			}
		}()
	}

	// Direct V$ hammering: raw LQP scans racing the churn above.
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, table := range []string{"V$SESSION", "V$STMT", "V$POOL"} {
				r, err := h.vt.Execute(lqp.Retrieve(table))
				if err != nil {
					t.Errorf("Execute(%s): %v", table, err)
					return
				}
				if table == "V$POOL" {
					busy, workers := r.Tuples[0][2].IntVal(), r.Tuples[0][1].IntVal()
					if busy < 0 || busy >= workers {
						t.Errorf("V$POOL BUSY = %d outside [0, WORKERS-1], WORKERS = %d", busy, workers)
						return
					}
				}
			}
		}
	}()

	// Engine-path hammering: the same snapshots reached through the full
	// translate/optimize/execute pipeline, sessionless so the churned
	// session table is observed, never touched.
	hammerWG.Add(1)
	go func() {
		defer hammerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := h.svc.Query("", `(V$STMT [SID = SID] V$SESSION) [STMT_ID, POLICY]`, true); err != nil {
				t.Errorf("engine-path V$ join: %v", err)
				return
			}
		}
	}()

	churnWG.Wait()
	close(done)
	hammerWG.Wait()

	if n := h.svc.SessionCount(); n != 0 {
		t.Errorf("after churn %d sessions remain open, want 0", n)
	}
}
