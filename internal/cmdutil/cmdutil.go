// Package cmdutil holds the plumbing the daemons and CLIs share: fatal
// exits, dialing a federation's remote LQPs, and the graceful-drain signal
// loop — one implementation, so a fix to the drain path lands in lqpd and
// polygend at once.
package cmdutil

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/federation"
	"repro/internal/lqp"
	"repro/internal/wire"
)

// Fatal prints to stderr and exits 1.
func Fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// DialLQPs dials a comma-separated list of lqpd addresses and returns the
// LQP map keyed by remote database name, plus a closer for the clients.
// Progress is logged to stderr with the given prefix; a dial failure is
// fatal (a federation with a missing member cannot answer its queries).
func DialLQPs(addrs, logPrefix string) (map[string]lqp.LQP, func()) {
	lqps := make(map[string]lqp.LQP)
	clients := make([]*wire.Client, 0, 4)
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		client, err := wire.Dial(a)
		if err != nil {
			Fatal("%s: dialing LQP %s: %v", logPrefix, a, err)
		}
		clients = append(clients, client)
		lqps[client.Name()] = client
		fmt.Fprintf(os.Stderr, "%s: connected to LQP %s at %s\n", logPrefix, client.Name(), a)
	}
	return lqps, func() {
		for _, c := range clients {
			c.Close()
		}
	}
}

// DialReplicas dials a replicated federation spec — comma-separated
// NAME=addr|addr|... groups, each listing one logical source's lqpd
// replicas — and returns a started federation.Registry with one resilient
// source per name, plus a closer that stops the probe loop and hangs up the
// clients. Every replica must report the logical name it was declared
// under; a dial failure or name mismatch is fatal.
func DialReplicas(spec string, cfg federation.Config, logPrefix string) (*federation.Registry, func()) {
	reg := federation.NewRegistry(cfg)
	var clients []*wire.Client
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		eq := strings.IndexByte(group, '=')
		if eq <= 0 {
			Fatal("%s: bad replica group %q (want NAME=addr|addr|...)", logPrefix, group)
		}
		name := group[:eq]
		var reps []lqp.LQP
		for _, a := range strings.Split(group[eq+1:], "|") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			client, err := wire.Dial(a)
			if err != nil {
				Fatal("%s: dialing %s replica %s: %v", logPrefix, name, a, err)
			}
			clients = append(clients, client)
			if got := client.Name(); got != name {
				Fatal("%s: replica %s serves database %q, declared as %q", logPrefix, a, got, name)
			}
			reps = append(reps, client)
			fmt.Fprintf(os.Stderr, "%s: connected to %s replica at %s\n", logPrefix, name, a)
		}
		if len(reps) == 0 {
			Fatal("%s: replica group %q lists no addresses", logPrefix, group)
		}
		reg.Add(name, reps...)
	}
	reg.Start()
	return reg, func() {
		reg.Stop()
		for _, c := range clients {
			c.Close()
		}
	}
}

// DialShards dials a sharded federation spec — semicolon-separated
// NAME=addr,addr,... groups, each address list naming one logical source's
// shard endpoints in shard order (endpoint i must serve the slice
// `lqpd -shard i/N` of the same database), an address optionally listing
// |-separated replicas of that shard — and returns a started
// federation.Registry with one scatter-gather source per name, plus a
// closer that stops the probe loop and hangs up the clients. Every endpoint
// must report the logical name it was declared under; a dial failure or
// name mismatch is fatal. Placement keys prime from the shards' statistics
// on the first Stats call (polygend's startup collection), so key-equality
// pruning is live from the first query.
func DialShards(spec string, cfg federation.Config, logPrefix string) (*federation.Registry, func()) {
	reg := federation.NewRegistry(cfg)
	var clients []*wire.Client
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		eq := strings.IndexByte(group, '=')
		if eq <= 0 {
			Fatal("%s: bad shard group %q (want NAME=addr,addr,...)", logPrefix, group)
		}
		name := group[:eq]
		var shards [][]lqp.LQP
		for _, shardAddrs := range strings.Split(group[eq+1:], ",") {
			var reps []lqp.LQP
			for _, a := range strings.Split(shardAddrs, "|") {
				a = strings.TrimSpace(a)
				if a == "" {
					continue
				}
				client, err := wire.Dial(a)
				if err != nil {
					Fatal("%s: dialing %s shard %d at %s: %v", logPrefix, name, len(shards), a, err)
				}
				clients = append(clients, client)
				if got := client.Name(); got != name {
					Fatal("%s: endpoint %s serves database %q, declared as %q", logPrefix, a, got, name)
				}
				reps = append(reps, client)
				fmt.Fprintf(os.Stderr, "%s: connected to %s shard %d at %s\n", logPrefix, name, len(shards), a)
			}
			if len(reps) == 0 {
				Fatal("%s: shard group %q lists an empty shard", logPrefix, group)
			}
			shards = append(shards, reps)
		}
		if len(shards) == 0 {
			Fatal("%s: shard group %q lists no shards", logPrefix, group)
		}
		reg.AddSharded(name, shards...)
	}
	reg.Start()
	return reg, func() {
		reg.Stop()
		for _, c := range clients {
			c.Close()
		}
	}
}

// ServeUntilSignal blocks until SIGINT/SIGTERM, then drains srv gracefully:
// stop accepting, let in-flight requests finish up to the drain deadline,
// then tear down. A second signal forces immediate teardown. A blown drain
// deadline exits 1.
func ServeUntilSignal(srv *wire.Server, drain time.Duration, name string) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("%s: draining (deadline %v; signal again to force)\n", name, drain)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(drain) }()
	select {
	case err := <-done:
		if err != nil {
			Fatal("%s: %v", name, err)
		}
	case <-sig:
		fmt.Printf("%s: forced shutdown\n", name)
		srv.Close()
	}
}
