// Package cmdutil holds the plumbing the daemons and CLIs share: fatal
// exits, dialing a federation's remote LQPs, and the graceful-drain signal
// loop — one implementation, so a fix to the drain path lands in lqpd and
// polygend at once.
package cmdutil

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/lqp"
	"repro/internal/wire"
)

// Fatal prints to stderr and exits 1.
func Fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// DialLQPs dials a comma-separated list of lqpd addresses and returns the
// LQP map keyed by remote database name, plus a closer for the clients.
// Progress is logged to stderr with the given prefix; a dial failure is
// fatal (a federation with a missing member cannot answer its queries).
func DialLQPs(addrs, logPrefix string) (map[string]lqp.LQP, func()) {
	lqps := make(map[string]lqp.LQP)
	clients := make([]*wire.Client, 0, 4)
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		client, err := wire.Dial(a)
		if err != nil {
			Fatal("%s: dialing LQP %s: %v", logPrefix, a, err)
		}
		clients = append(clients, client)
		lqps[client.Name()] = client
		fmt.Fprintf(os.Stderr, "%s: connected to LQP %s at %s\n", logPrefix, client.Name(), a)
	}
	return lqps, func() {
		for _, c := range clients {
			c.Close()
		}
	}
}

// ServeUntilSignal blocks until SIGINT/SIGTERM, then drains srv gracefully:
// stop accepting, let in-flight requests finish up to the drain deadline,
// then tear down. A second signal forces immediate teardown. A blown drain
// deadline exits 1.
func ServeUntilSignal(srv *wire.Server, drain time.Duration, name string) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("%s: draining (deadline %v; signal again to force)\n", name, drain)
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(drain) }()
	select {
	case err := <-done:
		if err != nil {
			Fatal("%s: %v", name, err)
		}
	case <-sig:
		fmt.Printf("%s: forced shutdown\n", name)
		srv.Close()
	}
}
