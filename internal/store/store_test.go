package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/rel"
	"repro/internal/segment"
)

func seedDB() *catalog.Database {
	db := catalog.NewDatabase("CD")
	db.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO"), "FNAME")
	db.Insert("FIRM", rel.Tuple{rel.String("IBM"), rel.String("John Ackers")})
	return db
}

func tuple(i int) rel.Tuple {
	return rel.Tuple{rel.String(fmt.Sprintf("F%03d", i)), rel.String(fmt.Sprintf("CEO %d", i))}
}

// dump renders every relation cell-for-cell for whole-database comparison.
func dump(t *testing.T, db *catalog.Database) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.Relations() {
		r, err := db.Snapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		key, _ := db.Key(name)
		fmt.Fprintf(&sb, "%s %v key=%v\n", name, r.Schema.Attrs(), key)
		for _, tu := range r.Tuples {
			fmt.Fprintf(&sb, "  %v\n", tu)
		}
	}
	return sb.String()
}

func TestOpenSeedsAndReopens(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRelation("DIVISION", rel.SchemaOf("FNAME", "DIV"), "FNAME", "DIV"); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("FIRM", tuple(1), tuple(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("DIVISION", rel.Tuple{rel.String("IBM"), rel.String("storage")}); err != nil {
		t.Fatal(err)
	}
	want := dump(t, s.DB())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := dump(t, back.DB()); got != want {
		t.Fatalf("recovered database differs:\n%s\nwant:\n%s", got, want)
	}
	if back.DB().Name() != "CD" {
		t.Fatalf("name = %q", back.DB().Name())
	}
	st := back.Stats()
	if st.ReplayRecords != 3 {
		t.Fatalf("replayed %d records, want 3", st.ReplayRecords)
	}
}

func TestInsertValidationNotLogged(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate key and wrong degree must fail without poisoning the log.
	if err := s.Insert("FIRM", rel.Tuple{rel.String("IBM"), rel.String("x")}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := s.Insert("FIRM", rel.Tuple{rel.String("y")}); err == nil {
		t.Fatal("wrong degree accepted")
	}
	if err := s.Insert("FIRM", tuple(1)); err != nil {
		t.Fatal(err)
	}
	want := dump(t, s.DB())
	s.Close()
	back, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := dump(t, back.DB()); got != want {
		t.Fatalf("recovered database differs after rejected writes:\n%s\nwant:\n%s", got, want)
	}
	if st := back.Stats(); st.ReplayRecords != 1 {
		t.Fatalf("replayed %d records, want 1", st.ReplayRecords)
	}
}

func TestCompactRotatesGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(t, s.DB())
	st := s.Stats()
	if st.Generation != 1 || st.Compactions != 1 {
		t.Fatalf("generation %d compactions %d", st.Generation, st.Compactions)
	}
	s.Close()

	// Old generation files are gone.
	if _, err := os.Stat(snapPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("snap-0 still present: %v", err)
	}
	if _, err := os.Stat(walPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("wal-0 still present: %v", err)
	}

	back, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := dump(t, back.DB()); got != want {
		t.Fatalf("recovered database differs after compaction:\n%s\nwant:\n%s", got, want)
	}
	if bst := back.Stats(); bst.ReplayRecords != 5 {
		t.Fatalf("replayed %d records, want 5 (post-compaction tail only)", bst.ReplayRecords)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{CompactBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Fatal("no auto-compaction at a 256-byte threshold")
	}
	want := dump(t, s.DB())
	s.Close()
	back, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := dump(t, back.DB()); got != want {
		t.Fatal("recovered database differs after auto-compaction")
	}
}

func TestFsyncIntervalMode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Syncs == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Stats().Syncs == 0 {
		t.Fatal("interval syncer never fired")
	}
	want := dump(t, s.DB())
	s.Close()
	back, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := dump(t, back.DB()); got != want {
		t.Fatal("recovered database differs in interval mode")
	}
}

func TestLogFailureLatchesReadOnly(t *testing.T) {
	dir := t.TempDir()
	profile := faultinject.DiskProfile{Seed: 3, ShortWriteEvery: 4}
	s, err := Open(dir, "", seedDB(), Options{
		WrapFile: func(f *os.File) segment.File { return faultinject.WrapFile(f, profile) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var failed bool
	for i := 0; i < 32 && !failed; i++ {
		failed = s.Insert("FIRM", tuple(i)) != nil
	}
	if !failed {
		t.Fatal("short-write cadence never surfaced an error")
	}
	if err := s.Insert("FIRM", tuple(100)); err == nil {
		t.Fatal("store accepted a write after a log failure")
	}
	if !s.Stats().Broken {
		t.Fatal("stats do not report the latched failure")
	}
	if _, err := s.DB().Relation("FIRM"); err != nil {
		t.Fatalf("read side must survive: %v", err)
	}
}

func TestSyncErrorFailsAck(t *testing.T) {
	dir := t.TempDir()
	profile := faultinject.DiskProfile{Seed: 1, SyncErrEvery: 3}
	s, err := Open(dir, "", seedDB(), Options{
		WrapFile: func(f *os.File) segment.File { return faultinject.WrapFile(f, profile) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var failed bool
	for i := 0; i < 8 && !failed; i++ {
		failed = s.Insert("FIRM", tuple(i)) != nil
	}
	if !failed {
		t.Fatal("fsync-error cadence never surfaced")
	}
	if err := s.Insert("FIRM", tuple(101)); err == nil {
		t.Fatal("store accepted a write after an fsync error")
	}
}

func TestRecoveryToleratesBitRotInLog(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Read-time flips: recovery must never apply a rotted record — it
	// truncates at the first flip and yields the prefix before it.
	for seed := int64(0); seed < 4; seed++ {
		work := t.TempDir()
		copyDir(t, dir, work)
		back, err := Open(work, "", nil, Options{
			WrapReader: func(r io.Reader) io.Reader { return faultinject.NewFlipReader(r, 97, seed) },
		})
		if err != nil {
			// A flip inside the snapshot makes the whole generation
			// unreadable; with a single generation that is a hard error,
			// which is the correct refusal.
			continue
		}
		st := back.Stats()
		if st.ReplayRecords > 10 {
			t.Fatalf("seed %d: replayed %d records from a 10-record log", seed, st.ReplayRecords)
		}
		fr, _ := back.DB().Snapshot("FIRM")
		if len(fr.Tuples) > 11 {
			t.Fatalf("seed %d: recovered %d tuples", seed, len(fr.Tuples))
		}
		back.Close()
	}
}

func copyDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParseFsyncMode(t *testing.T) {
	if m, err := ParseFsyncMode("always"); err != nil || m != FsyncAlways {
		t.Fatal("always")
	}
	if m, err := ParseFsyncMode("interval"); err != nil || m != FsyncInterval {
		t.Fatal("interval")
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}
