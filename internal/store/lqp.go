package store

import (
	"sort"
	"sync"

	"repro/internal/lqp"
	"repro/internal/rel"
)

// LQP is a durable local query processor: lqp.Local for the read side
// (retrieval, plans, streaming — all promoted from the embedded processor),
// with mutations routed through the write-ahead log. It is what
// `lqpd -data-dir` serves.
type LQP struct {
	*lqp.Local
	st *Store
}

// NewLQP wraps a store as a durable LQP node.
func NewLQP(st *Store) *LQP {
	return &LQP{Local: lqp.NewLocal(st.DB()), st: st}
}

// Store returns the underlying store (for stats and compaction).
func (l *LQP) Store() *Store { return l.st }

// Insert implements lqp.Inserter: the write is logged and fsynced per the
// store's policy before a nil return acknowledges it.
func (l *LQP) Insert(relation string, tuples []rel.Tuple) error {
	return l.st.Insert(relation, tuples...)
}

// The process-wide registry backing the V$STORE virtual table and the
// polygen_store_* metrics: every open store a process serves, by database
// name.
var (
	regMu    sync.Mutex
	registry = map[string]*Store{}
)

// Register adds a store to the process registry under name, replacing any
// previous entry.
func Register(name string, s *Store) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = s
}

// Unregister removes a registry entry.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Each calls fn for every registered store in name order.
func Each(fn func(name string, stats Stats)) {
	regMu.Lock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	stores := make([]*Store, len(names))
	sort.Strings(names)
	for i, n := range names {
		stores[i] = registry[n]
	}
	regMu.Unlock()
	for i, n := range names {
		fn(n, stores[i].Stats())
	}
}
