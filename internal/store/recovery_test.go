package store

// The kill-matrix: property tests that crash a store at every possible
// point and prove the recovery invariant — the recovered database is the
// seed plus exactly a prefix of the acknowledged writes, in acknowledgment
// order, never a reordered, duplicated or corrupt state. Crash points
// covered: every byte of the log (record boundaries and mid-record), every
// intermediate file state of a snapshot rotation, and fsync-error seeds
// where the final write's acknowledgment failed but its bytes may or may
// not be durable.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/rel"
	"repro/internal/segment"
)

// crashAt reconstructs the post-crash directory: the snapshot as written,
// the log truncated at c bytes — the exact state a kill -9 after c durable
// log bytes leaves behind.
func crashAt(t *testing.T, scratch string, snap []byte, wal []byte, c int) string {
	t.Helper()
	os.Remove(filepath.Join(scratch, "snap-0"))
	os.Remove(filepath.Join(scratch, "wal-0.seg"))
	if err := os.WriteFile(filepath.Join(scratch, "snap-0"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(scratch, "wal-0.seg"), wal[:c], 0o644); err != nil {
		t.Fatal(err)
	}
	return scratch
}

func TestKillMatrixEveryByte(t *testing.T) {
	base := t.TempDir()
	s, err := Open(base, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// prefix[k] is the database after k acknowledged writes; ends[k-1] the
	// durable log size at the moment write k was acknowledged.
	prefix := []string{dump(t, s.DB())}
	var ends []int64
	const writes = 12
	for i := 0; i < writes; i++ {
		if i == 4 {
			if err := s.CreateRelation("DIVISION", rel.SchemaOf("FNAME", "DIV"), "FNAME", "DIV"); err != nil {
				t.Fatal(err)
			}
		} else if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, dump(t, s.DB()))
		ends = append(ends, s.Stats().LogBytes)
	}
	s.Close()

	snap, err := os.ReadFile(snapPath(base, 0))
	if err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(walPath(base, 0))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != ends[len(ends)-1] {
		t.Fatalf("log is %d bytes, acknowledged %d", len(wal), ends[len(ends)-1])
	}

	scratch := t.TempDir()
	for c := 0; c <= len(wal); c++ {
		dir := crashAt(t, scratch, snap, wal, c)
		rec, err := Open(dir, "", nil, Options{})
		if err != nil {
			t.Fatalf("crash at byte %d: recovery failed: %v", c, err)
		}
		// The acknowledged prefix wholly durable at c bytes.
		k := 0
		for k < len(ends) && ends[k] <= int64(c) {
			k++
		}
		if got := dump(t, rec.DB()); got != prefix[k] {
			t.Fatalf("crash at byte %d: recovered state is not the %d-write prefix:\n%s\nwant:\n%s", c, k, got, prefix[k])
		}
		wantTrunc := int64(c) - ends[max(k-1, 0)]
		if k == 0 {
			wantTrunc = int64(c)
		}
		if st := rec.Stats(); st.TruncatedBytes != wantTrunc {
			t.Fatalf("crash at byte %d: truncated %d bytes, want %d", c, st.TruncatedBytes, wantTrunc)
		}
		// The recovered store must accept writes again.
		if err := rec.Insert("FIRM", rel.Tuple{rel.String("POST"), rel.String("crash")}); err != nil {
			t.Fatalf("crash at byte %d: recovered store rejects writes: %v", c, err)
		}
		rec.Close()
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestKillMatrixRotation crashes between every step of a snapshot rotation
// and proves each intermediate file state recovers the full pre-rotation
// database.
func TestKillMatrixRotation(t *testing.T) {
	pre := t.TempDir()
	s, err := Open(pre, "", seedDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Insert("FIRM", tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(t, s.DB())
	s.Close()

	post := t.TempDir()
	copyDir(t, pre, post)
	s2, err := Open(post, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	snap1, err := os.ReadFile(snapPath(post, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Each crash state is a subset of {old snap, old wal, new snap, new
	// wal}, in the orders a crash inside compactLocked can leave.
	states := []struct {
		name  string
		build func(t *testing.T, dir string)
	}{
		{"before-rename", func(t *testing.T, dir string) {
			copyDir(t, pre, dir)
			// The WriteFileSync temp file may survive; it must be ignored.
			os.WriteFile(filepath.Join(dir, ".snap-1-12345"), snap1[:len(snap1)/2], 0o644)
		}},
		{"after-rename-no-new-wal", func(t *testing.T, dir string) {
			copyDir(t, pre, dir)
			os.WriteFile(snapPath(dir, 1), snap1, 0o644)
		}},
		{"after-new-wal", func(t *testing.T, dir string) {
			copyDir(t, pre, dir)
			os.WriteFile(snapPath(dir, 1), snap1, 0o644)
			os.WriteFile(walPath(dir, 1), nil, 0o644)
		}},
		{"old-snap-deleted", func(t *testing.T, dir string) {
			copyDir(t, pre, dir)
			os.WriteFile(snapPath(dir, 1), snap1, 0o644)
			os.WriteFile(walPath(dir, 1), nil, 0o644)
			os.Remove(snapPath(dir, 0))
		}},
		{"old-wal-deleted", func(t *testing.T, dir string) {
			copyDir(t, pre, dir)
			os.WriteFile(snapPath(dir, 1), snap1, 0o644)
			os.WriteFile(walPath(dir, 1), nil, 0o644)
			os.Remove(walPath(dir, 0))
		}},
		{"fully-rotated", func(t *testing.T, dir string) {
			copyDir(t, post, dir)
		}},
	}
	for _, state := range states {
		t.Run(state.name, func(t *testing.T) {
			dir := t.TempDir()
			state.build(t, dir)
			rec, err := Open(dir, "", nil, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer rec.Close()
			if got := dump(t, rec.DB()); got != want {
				t.Fatalf("recovered state differs:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestKillMatrixFsyncErrorSeeds drives stores whose log fails on seeded
// fsync cadences, then recovers each: every acknowledged write must
// survive, and the recovered state must be a clean prefix of the submission
// order — the write whose acknowledgment failed may or may not be present
// (its bytes may have reached the disk before the error), but nothing after
// it can be.
func TestKillMatrixFsyncErrorSeeds(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			profile := faultinject.DiskProfile{Seed: seed, SyncErrEvery: 5}
			s, err := Open(dir, "", seedDB(), Options{
				WrapFile: func(f *os.File) segment.File { return faultinject.WrapFile(f, profile) },
			})
			if err != nil {
				t.Fatal(err)
			}
			prefix := []string{dump(t, s.DB())}
			acked := 0
			for i := 0; i < 20; i++ {
				if err := s.Insert("FIRM", tuple(i)); err != nil {
					break
				}
				acked++
				prefix = append(prefix, dump(t, s.DB()))
			}
			s.Close()
			if acked == 20 {
				t.Fatal("fsync-error cadence never fired")
			}
			// One more state: the failed write's bytes may be durable.
			extra := seedDB()
			for i := 0; i <= acked; i++ {
				extra.Insert("FIRM", tuple(i))
			}
			prefix = append(prefix, dump(t, extra))

			rec, err := Open(dir, "", nil, Options{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer rec.Close()
			got := dump(t, rec.DB())
			if got != prefix[acked] && got != prefix[acked+1] {
				t.Fatalf("recovered state is neither the %d-write acked prefix nor acked+1:\n%s", acked, got)
			}
		})
	}
}

// TestConcurrentInsertsWithCompaction hammers the store from many
// goroutines while compactions rotate underneath — the -race leg of the
// matrix — then proves recovery sees every acknowledged write.
func TestConcurrentInsertsWithCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "", seedDB(), Options{CompactBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 25
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("W%d-%03d", w, i)
				if err := s.Insert("FIRM", rel.Tuple{rel.String(name), rel.String("ceo")}); err != nil {
					t.Errorf("insert %s: %v", name, err)
					return
				}
				mu.Lock()
				acked[name] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction under load")
	}
	s.Close()

	rec, err := Open(dir, "", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	firm, err := rec.DB().Snapshot("FIRM")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tu := range firm.Tuples {
		got[tu[0].Str()] = true
	}
	for name := range acked {
		if !got[name] {
			t.Fatalf("acknowledged write %s lost", name)
		}
	}
	if len(got) != len(acked)+1 { // +1 seed tuple
		t.Fatalf("recovered %d tuples, want %d", len(got), len(acked)+1)
	}
}
