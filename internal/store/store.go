// Package store gives an LQP node crash-safe persistence: an append-only,
// CRC32C-checksummed write-ahead segment log of mutations plus periodically
// compacted snapshots, in one data directory.
//
// Layout (all inside the data dir):
//
//	snap-<gen>     headered catalog snapshot (catalog.EncodeSnapshot)
//	wal-<gen>.seg  segment log of mutations since snap-<gen>
//
// A mutation is one segment record (see internal/segment for the framing):
//
//	+----------+-----------------------------------------+
//	| type (1) | body                                    |
//	+----------+-----------------------------------------+
//
//	type 1  create: gob{Name, Attrs, Key}
//	type 2  insert: uvarint len + relation name + plain columnar frame
//	        (rel/codec.go — the same 0xC1 frame the wire codec ships)
//
// The write path is: apply the mutation to the in-memory catalog (which
// validates degree and key constraints), append the record to the log, then
// fsync per policy — FsyncAlways before acknowledging, FsyncInterval on a
// timer. A log failure latches the store read-only: nothing is acknowledged
// that later writes could reorder around, so the log is always a prefix of
// acknowledged mutations in acknowledgment order.
//
// Recovery (Open on a non-empty dir) picks the newest generation whose
// snapshot decodes cleanly, replays that generation's log, truncates the log
// at the first torn or corrupt record (segment.CorruptError), and resumes
// appending at the clean tail. The invariant the kill-matrix tests
// (recovery_test.go) enforce at every crash point: the recovered database
// equals the seed plus exactly a prefix of the acknowledged mutations —
// never a reordered, duplicated, or corrupt state — and with FsyncAlways the
// prefix includes every acknowledged mutation.
//
// Compact rotates generations atomically: sync the log, write snap-<gen+1>
// with segment.WriteFileSync (temp + fsync + rename + dir fsync), open
// wal-<gen+1>.seg, fsync the directory, then best-effort delete the old
// generation. A crash between any two steps leaves either generation fully
// recoverable.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/rel"
	"repro/internal/segment"
)

// Record type tags.
const (
	recCreate = 1
	recInsert = 2
)

// FsyncMode selects the durability policy for log appends.
type FsyncMode int

const (
	// FsyncAlways syncs the log before every mutation is acknowledged:
	// an acked write survives any crash.
	FsyncAlways FsyncMode = iota
	// FsyncInterval batches syncs on a timer: an acked write from the last
	// interval may be lost to a crash, but recovery still yields a clean
	// prefix of acked writes.
	FsyncInterval
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode maps the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("store: unknown fsync mode %q (want always or interval)", s)
}

// Options configures a Store.
type Options struct {
	// Fsync is the append durability policy; default FsyncAlways.
	Fsync FsyncMode
	// FsyncInterval is the timer period for FsyncInterval; default 100ms.
	FsyncInterval time.Duration
	// CompactBytes rolls the log into a new snapshot generation once it
	// grows past this size; default 64 MiB. Zero uses the default; negative
	// disables auto-compaction.
	CompactBytes int64
	// WrapFile, when set, wraps the write-ahead log file handle — the seam
	// internal/faultinject/disk uses to inject short writes and fsync
	// errors.
	WrapFile func(f *os.File) segment.File
	// WrapReader, when set, wraps recovery-time readers — the seam for
	// injecting read-time bit flips.
	WrapReader func(r io.Reader) io.Reader
}

func (o *Options) fill() {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = 64 << 20
	}
}

// Stats is a point-in-time counter snapshot, surfaced as the V$STORE virtual
// table and the polygen_store_* metrics.
type Stats struct {
	Dir            string
	Generation     int64
	Appends        int64 // records appended this process
	AppendedBytes  int64
	Syncs          int64
	Compactions    int64
	ReplayRecords  int64 // records replayed at Open
	ReplayBytes    int64 // clean log bytes replayed at Open
	TruncatedBytes int64 // torn/corrupt bytes discarded at Open
	LogBytes       int64 // current log size (clean tail)
	Broken         bool  // a log failure latched the store read-only
}

// Store is a catalog.Database with a write-ahead log underneath it.
type Store struct {
	dir  string
	opts Options
	db   *catalog.Database

	mu     sync.Mutex // serializes mutations, rotation, and close
	wal    *segment.Writer
	walRaw segment.File
	gen    int64
	dirty  atomic.Bool // appended since last sync (interval mode)
	broken error       // latched log failure; store is read-only

	stopSync chan struct{} // interval-mode syncer
	syncDone chan struct{}

	appends       atomic.Int64
	appendedBytes atomic.Int64
	syncs         atomic.Int64
	compactions   atomic.Int64
	replayRecords int64
	replayBytes   int64
	truncated     int64
}

func snapPath(dir string, gen int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d", gen))
}

func walPath(dir string, gen int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.seg", gen))
}

// Open recovers (or initializes) a store in dir. On an empty dir the store
// starts from seed when given one, or an empty database named name
// otherwise, and writes the generation-0 snapshot so the directory is
// self-describing from the first byte. On a non-empty dir, seed is ignored
// and the state is recovered from the newest valid generation.
func Open(dir, name string, seed *catalog.Database, opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	gens, err := listGenerations(dir)
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		// Fresh directory: seed generation 0.
		if seed == nil {
			seed = catalog.NewDatabase(name)
		}
		s.db = seed
		s.gen = 0
		data, err := seed.EncodeSnapshot()
		if err != nil {
			return nil, err
		}
		if err := segment.WriteFileSync(snapPath(dir, 0), data); err != nil {
			return nil, err
		}
		if err := s.openWAL(0, 0); err != nil {
			return nil, err
		}
	} else if err := s.recover(gens); err != nil {
		return nil, err
	}

	if s.opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// listGenerations returns the generation numbers that have a snapshot file,
// ascending.
func listGenerations(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []int64
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "snap-") {
			continue
		}
		g, err := strconv.ParseInt(strings.TrimPrefix(e.Name(), "snap-"), 10, 64)
		if err != nil {
			continue // temp files from WriteFileSync, foreign litter
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// recover loads the newest generation whose snapshot decodes, replays its
// log to the clean tail, truncates the torn remainder, and opens the log for
// append.
func (s *Store) recover(gens []int64) error {
	var db *catalog.Database
	var gen int64 = -1
	for i := len(gens) - 1; i >= 0; i-- {
		d, err := s.openSnapshot(snapPath(s.dir, gens[i]))
		if err == nil {
			db, gen = d, gens[i]
			break
		}
		// A rotted snapshot: fall back to the previous generation, whose
		// snapshot + full log still reconstruct a (possibly older) valid
		// prefix. WriteFileSync makes torn snapshots impossible; this path
		// is bit rot or foreign truncation.
	}
	if db == nil {
		return fmt.Errorf("store: %s: no readable snapshot among generations %v", s.dir, gens)
	}
	s.db, s.gen = db, gen

	tail, err := s.replay(walPath(s.dir, gen))
	if err != nil {
		return err
	}
	return s.openWAL(gen, tail)
}

func (s *Store) openSnapshot(path string) (*catalog.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if s.opts.WrapReader != nil {
		r = s.opts.WrapReader(r)
	}
	return catalog.ReadSnapshot(r)
}

// replay applies the log's clean prefix to the recovered database and
// truncates the file at the first torn or corrupt record. A missing log file
// (crash between snapshot rename and log creation during rotation) is an
// empty log.
func (s *Store) replay(path string) (int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var r io.Reader = f
	if s.opts.WrapReader != nil {
		r = s.opts.WrapReader(r)
	}
	tail, scanErr := segment.Scan(path, r, func(off int64, payload []byte) error {
		if err := s.apply(payload); err != nil {
			// A record that cannot apply was never acknowledged (appends are
			// validated before logging), so it marks the same kind of
			// untrustworthy tail as a failed checksum.
			return &segment.CorruptError{Path: path, Offset: off, Reason: err.Error()}
		}
		s.replayRecords++
		return nil
	})
	f.Close()
	if scanErr != nil {
		if _, ok := scanErr.(*segment.CorruptError); !ok {
			return 0, scanErr
		}
		size := int64(0)
		if fi, err := os.Stat(path); err == nil {
			size = fi.Size()
		}
		s.truncated = size - tail
		if err := os.Truncate(path, tail); err != nil {
			return 0, fmt.Errorf("store: truncating %s at %d: %w", path, tail, err)
		}
	}
	s.replayBytes = tail
	return tail, nil
}

// apply replays one mutation record into the in-memory catalog.
func (s *Store) apply(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	body := payload[1:]
	switch payload[0] {
	case recCreate:
		var c createRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&c); err != nil {
			return fmt.Errorf("create record: %w", err)
		}
		_, err := s.db.Create(c.Name, rel.NewSchema(c.Attrs...), c.Key...)
		return err
	case recInsert:
		name, frame, err := splitInsert(body)
		if err != nil {
			return err
		}
		schema, _, err := s.db.View(name)
		if err != nil {
			return err
		}
		b, err := rel.DecodeFrame(frame, schema)
		if err != nil {
			return err
		}
		return s.db.Insert(name, b.Rows()...)
	}
	return fmt.Errorf("unknown record type %d", payload[0])
}

type createRecord struct {
	Name  string
	Attrs []rel.Attr
	Key   []string
}

func splitInsert(body []byte) (string, []byte, error) {
	l, n := binary.Uvarint(body)
	if n <= 0 || l > uint64(len(body)-n) {
		return "", nil, fmt.Errorf("insert record: bad name length")
	}
	return string(body[n : n+int(l)]), body[n+int(l):], nil
}

// openWAL opens (creating if needed) the generation's log for append at
// offset tail.
func (s *Store) openWAL(gen, tail int64) error {
	f, err := os.OpenFile(walPath(s.dir, gen), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	var sf segment.File = f
	if s.opts.WrapFile != nil {
		sf = s.opts.WrapFile(f)
	}
	s.walRaw = sf
	s.wal = segment.NewWriter(sf, tail)
	// The log file itself must be findable after a crash.
	return segment.SyncDir(s.dir)
}

// DB returns the in-memory catalog. Mutate only through the store; reads
// (Snapshot, View, query execution) are safe directly.
func (s *Store) DB() *catalog.Database { return s.db }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// CreateRelation creates a relation durably.
func (s *Store) CreateRelation(name string, schema *rel.Schema, key ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	if _, err := s.db.Create(name, schema, key...); err != nil {
		return err
	}
	var body bytes.Buffer
	body.WriteByte(recCreate)
	if err := gob.NewEncoder(&body).Encode(createRecord{Name: name, Attrs: schema.Attrs(), Key: key}); err != nil {
		return err
	}
	return s.appendLocked(body.Bytes())
}

// Insert inserts tuples durably: validated against the catalog, logged, and
// — under FsyncAlways — synced before returning nil.
func (s *Store) Insert(name string, tuples ...rel.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	schema, _, err := s.db.View(name)
	if err != nil {
		return err
	}
	if err := s.db.Insert(name, tuples...); err != nil {
		return err
	}
	payload := make([]byte, 0, 64+16*len(tuples))
	payload = append(payload, recInsert)
	payload = binary.AppendUvarint(payload, uint64(len(name)))
	payload = append(payload, name...)
	payload = rel.AppendFrame(payload, rel.FromTuples(schema, tuples))
	return s.appendLocked(payload)
}

// appendLocked logs one validated record and applies the fsync policy;
// callers hold s.mu. Any log failure latches the store read-only: the
// in-memory state may now be ahead of the log, and acknowledging further
// writes would break the prefix invariant.
func (s *Store) appendLocked(payload []byte) error {
	if _, err := s.wal.Append(payload); err != nil {
		s.broken = fmt.Errorf("store: log failed, store is read-only: %w", err)
		return s.broken
	}
	s.appends.Add(1)
	s.appendedBytes.Add(int64(len(payload)))
	switch s.opts.Fsync {
	case FsyncAlways:
		if err := s.wal.Sync(); err != nil {
			s.broken = fmt.Errorf("store: log failed, store is read-only: %w", err)
			return s.broken
		}
		s.syncs.Add(1)
	case FsyncInterval:
		// Flush to the OS now (a process crash loses nothing; only a system
		// crash can lose the tail), fsync on the timer.
		if err := s.wal.Flush(); err != nil {
			s.broken = fmt.Errorf("store: log failed, store is read-only: %w", err)
			return s.broken
		}
		s.dirty.Store(true)
	}
	if s.opts.CompactBytes > 0 && s.wal.Offset() >= s.opts.CompactBytes {
		return s.compactLocked()
	}
	return nil
}

// Sync forces the log to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.broken != nil {
		return s.broken
	}
	if err := s.wal.Sync(); err != nil {
		s.broken = fmt.Errorf("store: log failed, store is read-only: %w", err)
		return s.broken
	}
	s.syncs.Add(1)
	s.dirty.Store(false)
	return nil
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.dirty.Load() {
				s.Sync()
			}
		case <-s.stopSync:
			return
		}
	}
}

// Compact rotates to a new generation: snapshot the current state, start an
// empty log, drop the old generation.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken != nil {
		return s.broken
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// 1. Everything the snapshot will contain must be on disk first, so a
	//    crash before the rename still recovers the old generation fully.
	if err := s.syncLocked(); err != nil {
		return err
	}
	data, err := s.db.EncodeSnapshot()
	if err != nil {
		return err
	}
	next := s.gen + 1
	// 2. Atomic, durable snapshot for the new generation.
	if err := segment.WriteFileSync(snapPath(s.dir, next), data); err != nil {
		return err
	}
	// 3. Swap logs. From here, recovery prefers generation next.
	old, oldGen := s.walRaw, s.gen
	if err := s.openWAL(next, 0); err != nil {
		// The new snapshot is durable and its (absent) log is empty, so the
		// store on disk is already consistent at generation next; only this
		// process is wedged.
		s.broken = fmt.Errorf("store: opening log for generation %d: %w", next, err)
		return s.broken
	}
	s.gen = next
	old.Close()
	// 4. Old generation is now shadowed; deleting it is cleanup, not
	//    correctness.
	os.Remove(snapPath(s.dir, oldGen))
	os.Remove(walPath(s.dir, oldGen))
	segment.SyncDir(s.dir)
	s.compactions.Add(1)
	return nil
}

// Close syncs and closes the log. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	syncErr := error(nil)
	if s.broken == nil {
		syncErr = s.syncLocked()
	}
	closeErr := s.walRaw.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Stats returns a point-in-time counter snapshot.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	gen := s.gen
	logBytes := int64(0)
	if s.wal != nil {
		logBytes = s.wal.Offset()
	}
	broken := s.broken != nil
	s.mu.Unlock()
	return Stats{
		Dir:            s.dir,
		Generation:     gen,
		Appends:        s.appends.Load(),
		AppendedBytes:  s.appendedBytes.Load(),
		Syncs:          s.syncs.Load(),
		Compactions:    s.compactions.Load(),
		ReplayRecords:  s.replayRecords,
		ReplayBytes:    s.replayBytes,
		TruncatedBytes: s.truncated,
		LogBytes:       logBytes,
		Broken:         broken,
	}
}
