package shell

// Backend abstracts where the shell's queries run. The thick path wraps a
// local *pqp.PQP; the thin path (cmd/polygen -connect) wraps a wire.Client
// session against a polygend mediator, making the REPL a pure display
// layer: parsing, optimization and execution all happen server-side, and
// only the tagged answer crosses the wire.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pqp"
	"repro/internal/wire"
)

// Answer is one executed query as the shell displays it.
type Answer struct {
	// Relation is the composite answer with source tags.
	Relation *core.Relation
	// PlanRows is the executed (optimized) plan, one row per line.
	PlanRows []string
	// CacheHit reports the plan came from a plan cache.
	CacheHit bool
}

// Backend runs queries and serves federation metadata for one shell.
type Backend interface {
	// Query runs one polygen query: SQL, or paper algebra when algebraic.
	Query(text string, algebraic bool) (*Answer, error)
	// Schemes lists the polygen schemes with their attribute mappings.
	Schemes() ([]wire.SchemeInfo, error)
	// Close releases the backend (remote: ends the session).
	Close() error
}

// LocalBackend runs queries on an in-process PQP.
type LocalBackend struct {
	q *pqp.PQP
}

// NewLocalBackend wraps processor.
func NewLocalBackend(processor *pqp.PQP) *LocalBackend { return &LocalBackend{q: processor} }

// Query implements Backend.
func (b *LocalBackend) Query(text string, algebraic bool) (*Answer, error) {
	var res *pqp.Result
	var err error
	if algebraic {
		res, err = b.q.QueryAlgebra(text)
	} else {
		res, err = b.q.QuerySQL(text)
	}
	if err != nil {
		return nil, err
	}
	return &Answer{Relation: res.Relation, PlanRows: res.PlanLines(), CacheHit: res.CacheHit}, nil
}

// Schemes implements Backend.
func (b *LocalBackend) Schemes() ([]wire.SchemeInfo, error) {
	return wire.SchemeInfos(b.q.Schema()), nil
}

// Close implements Backend (a no-op: the PQP belongs to the caller).
func (b *LocalBackend) Close() error { return nil }

// RemoteBackend runs queries on a polygend mediator over one wire session.
type RemoteBackend struct {
	client  *wire.Client
	session string
	info    wire.SessionInfo
}

// NewRemoteBackend opens a session on the mediator behind client. The
// backend owns the session but not the client; Close ends the session and
// leaves the client to the caller.
func NewRemoteBackend(client *wire.Client) (*RemoteBackend, error) {
	info, err := client.OpenSession()
	if err != nil {
		return nil, fmt.Errorf("shell: opening mediator session: %w", err)
	}
	return &RemoteBackend{client: client, session: info.ID, info: info}, nil
}

// Session returns the mediator session ID.
func (b *RemoteBackend) Session() string { return b.session }

// Federation returns the remote federation name.
func (b *RemoteBackend) Federation() string { return b.info.Federation }

// Query implements Backend.
func (b *RemoteBackend) Query(text string, algebraic bool) (*Answer, error) {
	ans, err := b.client.Query(b.session, text, algebraic)
	if err != nil {
		return nil, err
	}
	return &Answer{Relation: ans.Relation, PlanRows: ans.PlanRows, CacheHit: ans.CacheHit}, nil
}

// Schemes implements Backend: the metadata came with the session handshake.
func (b *RemoteBackend) Schemes() ([]wire.SchemeInfo, error) {
	return b.info.Schemes, nil
}

// Close implements Backend: it ends the mediator session.
func (b *RemoteBackend) Close() error {
	return b.client.CloseSession(b.session)
}
