// Package shell implements the interactive front end of cmd/polygen: a
// line-oriented console in the spirit of the System P prototype the paper's
// §V announces. Plain lines are SQL polygen queries; backslash commands
// expose the federation's metadata — the polygen schema, attribute
// mappings, source lineage and the cardinality-inconsistency audit. The
// shell is an ordinary struct over io.Reader/io.Writer so that tests can
// drive it, and it runs over a Backend (backend.go): a local PQP, or — in
// -connect mode — a thin wire session against a polygend mediator.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/audit"
	"repro/internal/catalog"
	"repro/internal/identity"
	"repro/internal/pqp"
	"repro/internal/tables"
)

// Shell is one interactive session.
type Shell struct {
	// Backend runs the queries and serves scheme metadata.
	Backend Backend
	// PQP is set for local shells; it enables \audit (with Databases).
	PQP *pqp.PQP
	// Databases, when non-nil, enables \audit.
	Databases map[string]*catalog.Database
	// Resolver is used by \audit; nil means exact matching.
	Resolver identity.Resolver
	// ShowPlan echoes the optimized plan before each answer.
	ShowPlan bool
	// Prompt is printed before each input line (default "polygen> ").
	Prompt string
}

// New returns a shell over an in-process processor.
func New(processor *pqp.PQP) *Shell {
	return &Shell{Backend: NewLocalBackend(processor), PQP: processor, Prompt: "polygen> "}
}

// NewWithBackend returns a shell over any backend (e.g. a RemoteBackend
// against a polygend mediator). \audit is unavailable without catalog
// access.
func NewWithBackend(b Backend) *Shell {
	return &Shell{Backend: b, Prompt: "polygen> "}
}

// Run reads commands from in until EOF or \quit, writing results to out.
// The error is non-nil only for I/O failures; query errors are printed and
// the session continues.
func (s *Shell) Run(in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fmt.Fprint(out, s.Prompt)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if quit := s.Exec(line, out); quit {
				return nil
			}
		}
		fmt.Fprint(out, s.Prompt)
	}
	fmt.Fprintln(out)
	return sc.Err()
}

// Exec runs a single shell line and reports whether the session should end.
func (s *Shell) Exec(line string, out io.Writer) (quit bool) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(out, "panic: %v\n", r)
		}
	}()
	if strings.HasPrefix(line, `\`) {
		return s.command(line, out)
	}
	if kw := strings.ToLower(firstWord(line)); kw == "quit" || kw == "exit" {
		return true
	}
	s.query(line, out)
	return false
}

func firstWord(s string) string {
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i]
	}
	return s
}

func (s *Shell) command(line string, out io.Writer) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\q`, `\quit`:
		return true
	case `\help`, `\h`, `\?`:
		s.help(out)
	case `\schemes`:
		s.schemes(out)
	case `\describe`, `\d`:
		if len(fields) < 2 {
			fmt.Fprintln(out, `usage: \describe SCHEME`)
			break
		}
		s.describe(fields[1], out)
	case `\plan`:
		switch {
		case len(fields) >= 2 && fields[1] == "on":
			s.ShowPlan = true
		case len(fields) >= 2 && fields[1] == "off":
			s.ShowPlan = false
		default:
			fmt.Fprintln(out, `usage: \plan on|off`)
			return false
		}
		fmt.Fprintf(out, "plan display %v\n", map[bool]string{true: "on", false: "off"}[s.ShowPlan])
	case `\alg`:
		rest := strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
		if rest == "" {
			fmt.Fprintln(out, `usage: \alg POLYGEN-ALGEBRA-EXPRESSION`)
			break
		}
		s.algebra(rest, out)
	case `\audit`:
		s.audit(out)
	default:
		fmt.Fprintf(out, "unknown command %s (try \\help)\n", fields[0])
	}
	return false
}

func (s *Shell) help(out io.Writer) {
	fmt.Fprint(out, `commands:
  SELECT ...            run a SQL polygen query
  \alg EXPR             run a polygen algebraic expression
  \schemes              list the polygen schemes
  \describe SCHEME      show a scheme's attribute mappings
  \audit                cardinality-inconsistency report (multi-source attrs)
  \plan on|off          echo the optimized plan before answers
  \quit                 leave
`)
}

func (s *Shell) schemes(out io.Writer) {
	infos, err := s.Backend.Schemes()
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	for _, si := range infos {
		names := make([]string, len(si.Attrs))
		for i, a := range si.Attrs {
			names[i] = a.Name
		}
		fmt.Fprintf(out, "%s(%s) key=%s\n", si.Name, strings.Join(names, ", "), si.Key)
	}
}

func (s *Shell) describe(name string, out io.Writer) {
	infos, err := s.Backend.Schemes()
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	for _, si := range infos {
		if si.Name != name {
			continue
		}
		fmt.Fprintf(out, "%s (key: %s)\n", si.Name, si.Key)
		for _, a := range si.Attrs {
			fmt.Fprintf(out, "  %-14s <- %s\n", a.Name, strings.Join(a.Mapping, ", "))
		}
		return
	}
	fmt.Fprintf(out, "no polygen scheme %q\n", name)
}

func (s *Shell) audit(out io.Writer) {
	if s.Databases == nil || s.PQP == nil {
		fmt.Fprintln(out, `\audit needs direct catalog access (not available over remote LQPs or a mediator)`)
		return
	}
	covs, err := audit.AuditSchema(s.PQP.Schema(), s.Resolver, s.Databases)
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	if len(covs) == 0 {
		fmt.Fprintln(out, "no multi-source attributes to audit")
		return
	}
	sort.Slice(covs, func(i, j int) bool { return covs[i].Scheme+covs[i].Attr < covs[j].Scheme+covs[j].Attr })
	for _, c := range covs {
		fmt.Fprint(out, c.String())
	}
}

func (s *Shell) query(sql string, out io.Writer) {
	ans, err := s.Backend.Query(sql, false)
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	s.printResult(ans, out)
}

func (s *Shell) algebra(expr string, out io.Writer) {
	ans, err := s.Backend.Query(expr, true)
	if err != nil {
		fmt.Fprintln(out, err)
		return
	}
	s.printResult(ans, out)
}

func (s *Shell) printResult(ans *Answer, out io.Writer) {
	if s.ShowPlan {
		for _, row := range ans.PlanRows {
			fmt.Fprintln(out, "  "+row)
		}
	}
	header, rows := tables.RenderRelation(ans.Relation)
	fmt.Fprintln(out, header)
	for _, r := range rows {
		fmt.Fprintln(out, r)
	}
	fmt.Fprintf(out, "(%d tuples)\n", len(rows))
}
