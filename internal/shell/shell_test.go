package shell

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/identity"
	"repro/internal/paperdata"
	"repro/internal/pqp"
)

func newShell() *Shell {
	fed := paperdata.New()
	processor := pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
	sh := New(processor)
	sh.Databases = map[string]*catalog.Database{"AD": fed.AD, "PD": fed.PD, "CD": fed.CD}
	sh.Resolver = identity.CaseFold{}
	return sh
}

func runLines(t *testing.T, sh *Shell, lines ...string) string {
	t.Helper()
	var out strings.Builder
	if err := sh.Run(strings.NewReader(strings.Join(lines, "\n")+"\n"), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestShellQuery(t *testing.T) {
	out := runLines(t, newShell(), `SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`)
	if !strings.Contains(out, "Stu Madnick, {AD}, {}") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "(5 tuples)") {
		t.Errorf("output = %q", out)
	}
}

func TestShellAlgebra(t *testing.T) {
	out := runLines(t, newShell(), `\alg PALUMNUS [DEGREE = "MS"]`)
	if !strings.Contains(out, "Ken Olsen") || !strings.Contains(out, "(1 tuples)") {
		t.Errorf("output = %q", out)
	}
}

func TestShellSchemes(t *testing.T) {
	out := runLines(t, newShell(), `\schemes`)
	for _, want := range []string{"PALUMNUS", "PORGANIZATION", "key=ONAME"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestShellDescribe(t *testing.T) {
	out := runLines(t, newShell(), `\describe PORGANIZATION`)
	for _, want := range []string{"(AD, BUSINESS, BNAME)", "(CD, FIRM, FNAME)", "HEADQUARTERS"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	out2 := runLines(t, newShell(), `\describe NOPE`)
	if !strings.Contains(out2, `no polygen scheme "NOPE"`) {
		t.Errorf("output = %q", out2)
	}
	out3 := runLines(t, newShell(), `\describe`)
	if !strings.Contains(out3, "usage") {
		t.Errorf("output = %q", out3)
	}
}

func TestShellPlanToggle(t *testing.T) {
	sh := newShell()
	out := runLines(t, sh, `\plan on`, `SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`)
	if !strings.Contains(out, "R(1) | Select | ALUMNUS") {
		t.Errorf("plan not echoed: %q", out)
	}
	out2 := runLines(t, sh, `\plan off`, `SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MBA"`)
	if strings.Contains(out2, "R(1) | Select") {
		t.Errorf("plan echoed after off: %q", out2)
	}
	out3 := runLines(t, sh, `\plan maybe`)
	if !strings.Contains(out3, "usage") {
		t.Errorf("output = %q", out3)
	}
}

func TestShellAudit(t *testing.T) {
	out := runLines(t, newShell(), `\audit`)
	if !strings.Contains(out, "PORGANIZATION.ONAME: 12 distinct instances") {
		t.Errorf("audit output = %q", out)
	}
	// Without catalogs the command degrades gracefully.
	sh := newShell()
	sh.Databases = nil
	out2 := runLines(t, sh, `\audit`)
	if !strings.Contains(out2, "needs direct catalog access") {
		t.Errorf("output = %q", out2)
	}
}

func TestShellQuitForms(t *testing.T) {
	for _, q := range []string{`\q`, `\quit`, "quit", "exit"} {
		var out strings.Builder
		sh := newShell()
		if err := sh.Run(strings.NewReader(q+"\nSELECT * FROM PALUMNUS\n"), &out); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(out.String(), "tuples") {
			t.Errorf("%q did not quit before the query ran", q)
		}
	}
}

func TestShellErrorsKeepSessionAlive(t *testing.T) {
	out := runLines(t, newShell(),
		"SELECT FROM nonsense",
		`\nosuch`,
		`SELECT ANAME FROM PALUMNUS WHERE DEGREE = "MS"`,
	)
	if !strings.Contains(out, "unknown command") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "Ken Olsen") {
		t.Errorf("session died after error: %q", out)
	}
}

func TestShellHelp(t *testing.T) {
	out := runLines(t, newShell(), `\help`)
	for _, want := range []string{`\schemes`, `\describe`, `\audit`, `\plan`} {
		if !strings.Contains(out, want) {
			t.Errorf("help missing %q", want)
		}
	}
}

func TestShellEmptyLinesIgnored(t *testing.T) {
	out := runLines(t, newShell(), "", "   ", `\schemes`)
	if !strings.Contains(out, "PALUMNUS") {
		t.Errorf("output = %q", out)
	}
}
