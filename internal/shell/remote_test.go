package shell

// The remote backend makes the shell a thin client of a polygend-style
// mediator. These tests hold the two modes to the same observable behavior:
// a local shell and a remote shell over the same federation print the same
// answers, schemes and plans.

import (
	"strings"
	"testing"

	"repro/internal/identity"
	"repro/internal/mediator"
	"repro/internal/paperdata"
	"repro/internal/pqp"
	"repro/internal/wire"
)

func newPaperPQP() *pqp.PQP {
	fed := paperdata.New()
	return pqp.New(fed.Schema, fed.Registry, identity.CaseFold{}, fed.LQPs())
}

func startMediator(t *testing.T, processor *pqp.PQP) *wire.Client {
	t.Helper()
	svc := mediator.New(processor, mediator.Config{Federation: "paper"})
	srv := wire.NewMediatorServer(svc)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func execLines(t *testing.T, sh *Shell, lines ...string) string {
	t.Helper()
	var out strings.Builder
	for _, line := range lines {
		if quit := sh.Exec(line, &out); quit {
			break
		}
	}
	return out.String()
}

// TestRemoteShellMatchesLocal: the same script through a local shell and a
// thin remote shell produces identical output — answers, tags, schemes,
// describe, and the \plan echo.
func TestRemoteShellMatchesLocal(t *testing.T) {
	script := []string{
		`\plan on`,
		`SELECT ONAME, CEO FROM PORGANIZATION WHERE INDUSTRY = "Banking"`,
		`\alg ( PALUMNUS [DEGREE = "MBA"] ) [ANAME]`,
		`\schemes`,
		`\describe PORGANIZATION`,
	}

	local := New(newPaperPQP())
	want := execLines(t, local, script...)

	client := startMediator(t, newPaperPQP())
	backend, err := NewRemoteBackend(client)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	remote := NewWithBackend(backend)
	got := execLines(t, remote, script...)

	if got != want {
		t.Errorf("remote shell output differs from local\n--- local ---\n%s--- remote ---\n%s", want, got)
	}
}

// TestRemoteShellAuditUnavailable: \audit needs catalog access and must say
// so instead of panicking on the nil PQP.
func TestRemoteShellAuditUnavailable(t *testing.T) {
	client := startMediator(t, newPaperPQP())
	backend, err := NewRemoteBackend(client)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	out := execLines(t, NewWithBackend(backend), `\audit`)
	if !strings.Contains(out, "catalog access") {
		t.Errorf(`\audit output = %q`, out)
	}
}

// TestRemoteShellQueryError: a bad query prints the server's error and the
// session keeps working.
func TestRemoteShellQueryError(t *testing.T) {
	client := startMediator(t, newPaperPQP())
	backend, err := NewRemoteBackend(client)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	sh := NewWithBackend(backend)
	out := execLines(t, sh, `SELECT NOPE FROM NOWHERE`)
	if out == "" || strings.Contains(out, "panic") {
		t.Fatalf("bad query output = %q", out)
	}
	out = execLines(t, sh, `SELECT ONAME FROM PORGANIZATION WHERE INDUSTRY = "Banking"`)
	if !strings.Contains(out, "CitiCorp") {
		t.Fatalf("session unusable after error: %q", out)
	}
}
