package catalog

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func TestCreateAndRelation(t *testing.T) {
	db := NewDatabase("AD")
	if db.Name() != "AD" {
		t.Errorf("Name = %q", db.Name())
	}
	r, err := db.Create("T", rel.SchemaOf("A", "B"), "A")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "T" {
		t.Errorf("relation name = %q", r.Name)
	}
	got, err := db.Relation("T")
	if err != nil || got != r {
		t.Errorf("Relation lookup = %v, %v", got, err)
	}
	if _, err := db.Relation("Z"); err == nil {
		t.Error("missing relation lookup should fail")
	}
}

func TestCreateErrors(t *testing.T) {
	db := NewDatabase("X")
	if _, err := db.Create("T", rel.SchemaOf("A"), "NOPE"); err == nil {
		t.Error("unknown key attribute accepted")
	}
	if _, err := db.Create("T", rel.SchemaOf("A")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create("T", rel.SchemaOf("B")); err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestMustCreatePanics(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("A"))
	defer func() {
		if recover() == nil {
			t.Error("MustCreate duplicate did not panic")
		}
	}()
	db.MustCreate("T", rel.SchemaOf("A"))
}

func TestKey(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("A", "B"), "A", "B")
	key, err := db.Key("T")
	if err != nil || len(key) != 2 || key[0] != "A" {
		t.Errorf("Key = %v, %v", key, err)
	}
	if _, err := db.Key("Z"); err == nil {
		t.Error("Key of missing relation should fail")
	}
}

func TestRelationsSorted(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("B", rel.SchemaOf("A"))
	db.MustCreate("A", rel.SchemaOf("A"))
	db.MustCreate("C", rel.SchemaOf("A"))
	got := db.Relations()
	if len(got) != 3 || got[0] != "A" || got[1] != "B" || got[2] != "C" {
		t.Errorf("Relations = %v", got)
	}
}

func TestInsertDegreeAndKeyEnforcement(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("K", "V"), "K")
	if err := db.Insert("T", rel.Tuple{rel.Int(1), rel.String("a")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", rel.Tuple{rel.Int(1)}); err == nil {
		t.Error("degree mismatch accepted")
	}
	if err := db.Insert("T", rel.Tuple{rel.Int(1), rel.String("b")}); err == nil {
		t.Error("duplicate key accepted")
	}
	// Duplicate key within one batch.
	if err := db.Insert("T",
		rel.Tuple{rel.Int(2), rel.String("a")},
		rel.Tuple{rel.Int(2), rel.String("b")},
	); err == nil {
		t.Error("duplicate key within batch accepted")
	}
	// A failed batch must be atomic: nothing inserted.
	r, _ := db.Relation("T")
	if r.Cardinality() != 1 {
		t.Errorf("failed batch partially applied: %d tuples", r.Cardinality())
	}
	if err := db.Insert("Z"); err == nil {
		t.Error("insert into missing relation should fail")
	}
}

func TestInsertCompositeKey(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("A", "B"), "A", "B")
	ok := [][2]int64{{1, 1}, {1, 2}, {2, 1}}
	for _, p := range ok {
		if err := db.Insert("T", rel.Tuple{rel.Int(p[0]), rel.Int(p[1])}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("T", rel.Tuple{rel.Int(1), rel.Int(2)}); err == nil {
		t.Error("duplicate composite key accepted")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := NewDatabase("X")
	db.MustCreate("T", rel.SchemaOf("A"))
	db.Insert("T", rel.Tuple{rel.Int(1)})
	snap, err := db.Snapshot("T")
	if err != nil {
		t.Fatal(err)
	}
	db.Insert("T", rel.Tuple{rel.Int(2)})
	if snap.Cardinality() != 1 {
		t.Error("snapshot saw later insert")
	}
	snap.Tuples[0][0] = rel.Int(99)
	live, _ := db.Relation("T")
	if live.Tuples[0][0].IntVal() == 99 {
		t.Error("snapshot aliases live storage")
	}
	if _, err := db.Snapshot("Z"); err == nil {
		t.Error("snapshot of missing relation should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDatabase("X")
	csv := "NAME,AGE,CITY\nann,30,\"NY, NY\"\nbob,25,Boston\n"
	if err := db.LoadCSV("P", strings.NewReader(csv), "NAME"); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("P")
	if r.Cardinality() != 2 {
		t.Fatalf("loaded %d tuples", r.Cardinality())
	}
	if r.Tuples[0][1].Kind() != rel.KindInt {
		t.Error("AGE should parse as int")
	}
	if r.Tuples[0][2].Str() != "NY, NY" {
		t.Errorf("quoted field = %q", r.Tuples[0][2].Str())
	}
	var out strings.Builder
	if err := db.WriteCSV("P", &out); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase("Y")
	if err := db2.LoadCSV("P", strings.NewReader(out.String()), "NAME"); err != nil {
		t.Fatal(err)
	}
	r2, _ := db2.Relation("P")
	if r2.Cardinality() != 2 || !r2.Tuples[0].Equal(r.Tuples[0]) {
		t.Error("round trip changed data")
	}
}

func TestCSVErrors(t *testing.T) {
	db := NewDatabase("X")
	if err := db.LoadCSV("E", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail (no header)")
	}
	if err := db.LoadCSV("K", strings.NewReader("A,B\n1,2\n1,3\n"), "A"); err == nil {
		t.Error("duplicate keys in CSV should fail")
	}
	if err := db.WriteCSV("MISSING", &strings.Builder{}); err == nil {
		t.Error("writing missing relation should fail")
	}
}
