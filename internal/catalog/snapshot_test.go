package catalog

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/segment"
)

func snapshotDB() *Database {
	db := NewDatabase("CD")
	db.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO"), "FNAME")
	db.Insert("FIRM",
		rel.Tuple{rel.String("IBM"), rel.String("John Ackers")},
		rel.Tuple{rel.String("DEC"), rel.String("Ken Olsen")},
	)
	db.MustCreate("FINANCE", rel.SchemaOf("FNAME", "YR", "PROFIT"), "FNAME", "YR")
	db.Insert("FINANCE", rel.Tuple{rel.String("IBM"), rel.Int(1989), rel.Float(5.5e9)})
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotDB()
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "CD" {
		t.Errorf("name = %q", back.Name())
	}
	rels := back.Relations()
	if len(rels) != 2 || rels[0] != "FINANCE" || rels[1] != "FIRM" {
		t.Errorf("relations = %v", rels)
	}
	firm, err := back.Snapshot("FIRM")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Snapshot("FIRM")
	if firm.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", firm.Cardinality())
	}
	for i := range orig.Tuples {
		if !firm.Tuples[i].Equal(orig.Tuples[i]) {
			t.Errorf("tuple %d changed: %v vs %v", i, firm.Tuples[i], orig.Tuples[i])
		}
	}
	// Keys survive: duplicate insert must fail.
	if err := back.Insert("FIRM", rel.Tuple{rel.String("IBM"), rel.String("x")}); err == nil {
		t.Error("key constraint lost in snapshot")
	}
	// Value kinds survive.
	fin, _ := back.Snapshot("FINANCE")
	if fin.Tuples[0][1].Kind() != rel.KindInt || fin.Tuples[0][2].Kind() != rel.KindFloat {
		t.Error("value kinds lost")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	db := snapshotDB()
	path := filepath.Join(t.TempDir(), "cd.snapshot")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "CD" || len(back.Relations()) != 2 {
		t.Error("file round trip lost data")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// legacySnapshot encodes db as a headerless bare-gob snapshot, the on-disk
// format from before the integrity header existed.
func legacySnapshot(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(db.snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotLegacyHeaderless(t *testing.T) {
	raw := legacySnapshot(t, snapshotDB())
	back, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("legacy headerless snapshot rejected: %v", err)
	}
	if back.Name() != "CD" || len(back.Relations()) != 2 {
		t.Error("legacy round trip lost data")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	db := snapshotDB()
	data, err := db.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Torn header and torn payload both name the damage offset.
	for _, cut := range []int{snapshotHeaderSize - 1, snapshotHeaderSize + 5, len(data) - 1} {
		_, err := ReadSnapshot(bytes.NewReader(data[:cut]))
		var ce *segment.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncate at %d: want CorruptError, got %v", cut, err)
		}
		if ce.Offset < 0 || ce.Offset > int64(cut) {
			t.Fatalf("truncate at %d: offset %d out of range", cut, ce.Offset)
		}
	}
	// A cut shorter than the magic falls through to the legacy gob path and
	// still fails, just without the typed error.
	if _, err := ReadSnapshot(bytes.NewReader(data[:4])); err == nil {
		t.Fatal("4-byte prefix accepted")
	}
}

func TestSnapshotBitRot(t *testing.T) {
	db := snapshotDB()
	data, err := db.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rotted := append([]byte(nil), data...)
	rotted[snapshotHeaderSize+7] ^= 0x10
	_, rerr := ReadSnapshot(bytes.NewReader(rotted))
	var ce *segment.CorruptError
	if !errors.As(rerr, &ce) || !strings.Contains(ce.Reason, "checksum") {
		t.Fatalf("want checksum CorruptError, got %v", rerr)
	}
}

func TestSnapshotWrongVersion(t *testing.T) {
	db := snapshotDB()
	data, _ := db.EncodeSnapshot()
	data[6] = 99
	if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestOpenFileNamesPath(t *testing.T) {
	db := snapshotDB()
	data, _ := db.EncodeSnapshot()
	path := filepath.Join(t.TempDir(), "cd.snapshot")
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFile(path)
	var ce *segment.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptError, got %v", err)
	}
	if ce.Path != path {
		t.Fatalf("corrupt error names %q, want %q", ce.Path, path)
	}
}
