package catalog

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rel"
)

func snapshotDB() *Database {
	db := NewDatabase("CD")
	db.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO"), "FNAME")
	db.Insert("FIRM",
		rel.Tuple{rel.String("IBM"), rel.String("John Ackers")},
		rel.Tuple{rel.String("DEC"), rel.String("Ken Olsen")},
	)
	db.MustCreate("FINANCE", rel.SchemaOf("FNAME", "YR", "PROFIT"), "FNAME", "YR")
	db.Insert("FINANCE", rel.Tuple{rel.String("IBM"), rel.Int(1989), rel.Float(5.5e9)})
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := snapshotDB()
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "CD" {
		t.Errorf("name = %q", back.Name())
	}
	rels := back.Relations()
	if len(rels) != 2 || rels[0] != "FINANCE" || rels[1] != "FIRM" {
		t.Errorf("relations = %v", rels)
	}
	firm, err := back.Snapshot("FIRM")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := db.Snapshot("FIRM")
	if firm.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", firm.Cardinality())
	}
	for i := range orig.Tuples {
		if !firm.Tuples[i].Equal(orig.Tuples[i]) {
			t.Errorf("tuple %d changed: %v vs %v", i, firm.Tuples[i], orig.Tuples[i])
		}
	}
	// Keys survive: duplicate insert must fail.
	if err := back.Insert("FIRM", rel.Tuple{rel.String("IBM"), rel.String("x")}); err == nil {
		t.Error("key constraint lost in snapshot")
	}
	// Value kinds survive.
	fin, _ := back.Snapshot("FINANCE")
	if fin.Tuples[0][1].Kind() != rel.KindInt || fin.Tuples[0][2].Kind() != rel.KindFloat {
		t.Error("value kinds lost")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	db := snapshotDB()
	path := filepath.Join(t.TempDir(), "cd.snapshot")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "CD" || len(back.Relations()) != 2 {
		t.Error("file round trip lost data")
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
