package catalog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/rel"
	"repro/internal/segment"
)

// The gob snapshot format gives a local database durable storage: lqpd can
// serve a database from a snapshot file, and tools can persist a federation
// between runs. Values rely on rel.Value's gob encoding.
//
// Snapshots carry an integrity header so a torn or rotted file fails with a
// typed error naming the offset instead of a gob panic deep in decode:
//
//	+--------------+---------+------------------+------------------+---------+
//	| "PGSNAP" (6) | ver (1) | payload len u64  | payload crc u32  | gob ... |
//	+--------------+---------+------------------+------------------+---------+
//
// length and CRC32-C little-endian, covering the gob payload. ReadSnapshot
// still accepts headerless legacy files (anything not starting with the
// magic) for forward compatibility with snapshots written before the header
// existed.

type dbSnapshot struct {
	Name      string
	Relations []relSnapshot
}

type relSnapshot struct {
	Name   string
	Attrs  []rel.Attr
	Key    []string
	Tuples [][]rel.Value
}

var snapshotMagic = [6]byte{'P', 'G', 'S', 'N', 'A', 'P'}

const (
	snapshotVersion    = 1
	snapshotHeaderSize = 6 + 1 + 8 + 4
)

// snapshot gathers the database — schemas, keys and tuples — under the read
// lock.
func (d *Database) snapshot() dbSnapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	snap := dbSnapshot{Name: d.name}
	for _, name := range d.relationNamesLocked() {
		t := d.rels[name]
		rs := relSnapshot{
			Name:  name,
			Attrs: t.rel.Schema.Attrs(),
			Key:   append([]string(nil), t.key...),
		}
		for _, tup := range t.rel.Tuples {
			rs.Tuples = append(rs.Tuples, tup)
		}
		snap.Relations = append(snap.Relations, rs)
	}
	return snap
}

// EncodeSnapshot serializes the whole database to one headered snapshot
// byte slice — the unit SaveFile persists atomically and internal/store
// rotates into its data directory.
func (d *Database) EncodeSnapshot() ([]byte, error) {
	snap := d.snapshot()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, fmt.Errorf("catalog: encoding snapshot of %q: %w", snap.Name, err)
	}
	out := make([]byte, snapshotHeaderSize, snapshotHeaderSize+payload.Len())
	copy(out[0:6], snapshotMagic[:])
	out[6] = snapshotVersion
	binary.LittleEndian.PutUint64(out[7:15], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(out[15:19], segment.Checksum(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// WriteSnapshot writes the headered snapshot to w.
func (d *Database) WriteSnapshot(w io.Writer) error {
	data, err := d.EncodeSnapshot()
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("catalog: writing snapshot of %q: %w", d.name, err)
	}
	return nil
}

// relationNamesLocked returns relation names sorted; callers hold d.mu.
func (d *Database) relationNamesLocked() []string {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ReadSnapshot reconstructs a database from a snapshot. Headered snapshots
// are verified before decoding: a truncated or bit-rotted file fails with a
// *segment.CorruptError naming the offset of the damage. Headerless legacy
// files (written before the header existed) are decoded as bare gob.
func ReadSnapshot(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(snapshotMagic))
	if err == nil && bytes.Equal(head, snapshotMagic[:]) {
		return readHeadered(br)
	}
	// Legacy path: not a headered snapshot (or shorter than the magic);
	// the peeked bytes are still in the buffer for gob.
	return decodeSnapshot(br)
}

func readHeadered(br *bufio.Reader) (*Database, error) {
	var hdr [snapshotHeaderSize]byte
	if n, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, &segment.CorruptError{Path: "snapshot", Offset: int64(n), Reason: "torn header"}
	}
	if hdr[6] != snapshotVersion {
		return nil, fmt.Errorf("catalog: snapshot version %d not supported (want %d)", hdr[6], snapshotVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[7:15])
	want := binary.LittleEndian.Uint32(hdr[15:19])
	if length > segment.MaxRecord {
		return nil, &segment.CorruptError{Path: "snapshot", Offset: 7, Reason: fmt.Sprintf("payload length %d implausible", length)}
	}
	payload := make([]byte, length)
	if n, err := io.ReadFull(br, payload); err != nil {
		return nil, &segment.CorruptError{
			Path:   "snapshot",
			Offset: int64(snapshotHeaderSize + n),
			Reason: fmt.Sprintf("torn payload (%d of %d bytes)", n, length),
		}
	}
	if got := segment.Checksum(payload); got != want {
		return nil, &segment.CorruptError{
			Path:   "snapshot",
			Offset: snapshotHeaderSize,
			Reason: fmt.Sprintf("payload checksum mismatch (%#x != %#x)", got, want),
		}
	}
	return decodeSnapshot(bytes.NewReader(payload))
}

func decodeSnapshot(r io.Reader) (*Database, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: decoding snapshot: %w", err)
	}
	db := NewDatabase(snap.Name)
	for _, rs := range snap.Relations {
		if _, err := db.Create(rs.Name, rel.NewSchema(rs.Attrs...), rs.Key...); err != nil {
			return nil, err
		}
		for _, tup := range rs.Tuples {
			if err := db.Insert(rs.Name, rel.Tuple(tup)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveFile writes a snapshot to path atomically and durably: temp file in
// the same directory, fsync, rename, directory fsync — a crash at any point
// leaves either the previous file or the complete new one, never a
// zero-length or torn snapshot behind the rename.
func (d *Database) SaveFile(path string) error {
	data, err := d.EncodeSnapshot()
	if err != nil {
		return err
	}
	return segment.WriteFileSync(path, data)
}

// OpenFile reads a snapshot from path.
func OpenFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadSnapshot(f)
	if err != nil {
		var ce *segment.CorruptError
		if asCorrupt(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return db, nil
}

// asCorrupt is errors.As for *segment.CorruptError without importing errors
// twice; split out for clarity.
func asCorrupt(err error, target **segment.CorruptError) bool {
	for err != nil {
		if ce, ok := err.(*segment.CorruptError); ok {
			*target = ce
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
