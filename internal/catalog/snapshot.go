package catalog

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/rel"
)

// The gob snapshot format gives a local database durable storage: lqpd can
// serve a database from a snapshot file, and tools can persist a federation
// between runs. Values rely on rel.Value's gob encoding.

type dbSnapshot struct {
	Name      string
	Relations []relSnapshot
}

type relSnapshot struct {
	Name   string
	Attrs  []rel.Attr
	Key    []string
	Tuples [][]rel.Value
}

// WriteSnapshot serializes the whole database — schemas, keys and tuples —
// to w.
func (d *Database) WriteSnapshot(w io.Writer) error {
	d.mu.RLock()
	snap := dbSnapshot{Name: d.name}
	for _, name := range d.relationNamesLocked() {
		t := d.rels[name]
		rs := relSnapshot{
			Name:  name,
			Attrs: t.rel.Schema.Attrs(),
			Key:   append([]string(nil), t.key...),
		}
		for _, tup := range t.rel.Tuples {
			rs.Tuples = append(rs.Tuples, tup)
		}
		snap.Relations = append(snap.Relations, rs)
	}
	d.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("catalog: encoding snapshot of %q: %w", snap.Name, err)
	}
	return nil
}

// relationNamesLocked returns relation names sorted; callers hold d.mu.
func (d *Database) relationNamesLocked() []string {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ReadSnapshot reconstructs a database from a snapshot.
func ReadSnapshot(r io.Reader) (*Database, error) {
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("catalog: decoding snapshot: %w", err)
	}
	db := NewDatabase(snap.Name)
	for _, rs := range snap.Relations {
		if _, err := db.Create(rs.Name, rel.NewSchema(rs.Attrs...), rs.Key...); err != nil {
			return nil, err
		}
		for _, tup := range rs.Tuples {
			if err := db.Insert(rs.Name, rel.Tuple(tup)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveFile writes a snapshot to path (atomically via a temporary file in
// the same directory).
func (d *Database) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := d.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// OpenFile reads a snapshot from path.
func OpenFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
