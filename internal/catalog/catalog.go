// Package catalog implements the storage and metadata layer of a local
// database: a named collection of relations with declared primary keys. Each
// Local Query Processor serves exactly one catalog.Database (paper, Figure 1).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/rel"
)

// Database is a named set of relations. It is safe for concurrent readers
// and writers; LQPs may serve queries while tools load data.
type Database struct {
	name string

	mu   sync.RWMutex
	rels map[string]*table
}

type table struct {
	rel *rel.Relation
	key []string // primary key attribute names; may be empty
}

// NewDatabase returns an empty database with the given name (e.g. "AD").
func NewDatabase(name string) *Database {
	return &Database{name: name, rels: make(map[string]*table)}
}

// Name returns the database name.
func (d *Database) Name() string { return d.name }

// Create registers an empty relation with the given schema and primary key
// attributes. It fails if the name is taken or a key attribute is unknown.
func (d *Database) Create(name string, schema *rel.Schema, key ...string) (*rel.Relation, error) {
	for _, k := range key {
		if !schema.Has(k) {
			return nil, fmt.Errorf("catalog: key attribute %q not in schema %s of %q", k, schema, name)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.rels[name]; dup {
		return nil, fmt.Errorf("catalog: relation %q already exists in database %q", name, d.name)
	}
	r := rel.NewRelation(name, schema)
	d.rels[name] = &table{rel: r, key: append([]string(nil), key...)}
	return r, nil
}

// MustCreate is Create for statically-known schemas; it panics on error.
func (d *Database) MustCreate(name string, schema *rel.Schema, key ...string) *rel.Relation {
	r, err := d.Create(name, schema, key...)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation.
func (d *Database) Relation(name string) (*rel.Relation, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: database %q has no relation %q", d.name, name)
	}
	return t.rel, nil
}

// Key returns the primary key attribute names of the named relation.
func (d *Database) Key(name string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: database %q has no relation %q", d.name, name)
	}
	return append([]string(nil), t.key...), nil
}

// Relations returns the relation names in sorted order.
func (d *Database) Relations() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RelationInfo summarizes one stored relation for the statistics surface:
// the federated optimizer's cardinality estimates and column-pruning
// rewrites both start from these numbers.
type RelationInfo struct {
	// Name is the relation name.
	Name string
	// Rows is the stored tuple count at collection time.
	Rows int
	// Columns lists the attribute names in schema order.
	Columns []string
	// Key lists the primary key attribute names (empty when undeclared).
	Key []string
}

// Stats returns a RelationInfo for every stored relation, sorted by name,
// under one lock acquisition. LQPs expose it through the lqp.StatsProvider
// capability; internal/stats collects it into the optimizer's catalog.
func (d *Database) Stats() []RelationInfo {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]RelationInfo, 0, len(d.rels))
	for name, t := range d.rels {
		out = append(out, RelationInfo{
			Name:    name,
			Rows:    len(t.rel.Tuples),
			Columns: t.rel.Schema.Names(),
			Key:     append([]string(nil), t.key...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Insert appends tuples to the named relation, enforcing degree and — when a
// primary key is declared — key uniqueness.
func (d *Database) Insert(name string, tuples ...rel.Tuple) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.rels[name]
	if !ok {
		return fmt.Errorf("catalog: database %q has no relation %q", d.name, name)
	}
	var keyIdx []int
	if len(t.key) > 0 {
		keyIdx = make([]int, len(t.key))
		for i, k := range t.key {
			keyIdx[i] = t.rel.Schema.Index(k)
		}
	}
	seen := make(map[string]struct{})
	if keyIdx != nil {
		for _, existing := range t.rel.Tuples {
			seen[keyOf(existing, keyIdx)] = struct{}{}
		}
	}
	for _, tup := range tuples {
		if len(tup) != t.rel.Schema.Len() {
			return fmt.Errorf("catalog: tuple degree %d does not match %q%s", len(tup), name, t.rel.Schema)
		}
		if keyIdx != nil {
			k := keyOf(tup, keyIdx)
			if _, dup := seen[k]; dup {
				return fmt.Errorf("catalog: duplicate primary key %v in %q.%q", t.key, d.name, name)
			}
			seen[k] = struct{}{}
		}
	}
	for _, tup := range tuples {
		t.rel.Tuples = append(t.rel.Tuples, tup)
	}
	return nil
}

func keyOf(t rel.Tuple, idx []int) string {
	sub := make(rel.Tuple, len(idx))
	for i, ci := range idx {
		sub[i] = t[ci]
	}
	return sub.Key()
}

// Snapshot returns a deep copy of the named relation, isolating callers from
// subsequent inserts.
func (d *Database) Snapshot(name string) (*rel.Relation, error) {
	r, err := d.Relation(name)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return r.Clone(), nil
}

// View returns the schema and current tuples of the named relation without
// copying. The slice is a point-in-time view: concurrent inserts do not
// grow it, and stored tuples are never mutated in place, so readers need no
// further locking — but they must treat the tuples as immutable. The
// streaming LQP path reads base relations through View so that a Retrieve
// costs no per-tuple allocation.
func (d *Database) View(name string) (*rel.Schema, []rel.Tuple, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.rels[name]
	if !ok {
		return nil, nil, fmt.Errorf("catalog: database %q has no relation %q", d.name, name)
	}
	tuples := t.rel.Tuples
	return t.rel.Schema, tuples[:len(tuples):len(tuples)], nil
}
