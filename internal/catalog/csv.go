package catalog

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/rel"
)

// LoadCSV reads a relation from CSV. The first record is the header (the
// attribute names); remaining records are parsed with rel.Parse. The
// relation is created in d under name with the given primary key.
func (d *Database) LoadCSV(name string, r io.Reader, key ...string) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("catalog: reading CSV header for %q: %w", name, err)
	}
	if _, err := d.Create(name, rel.SchemaOf(header...), key...); err != nil {
		return err
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("catalog: reading CSV for %q: %w", name, err)
		}
		tup := make(rel.Tuple, len(rec))
		for i, f := range rec {
			tup[i] = rel.Parse(f)
		}
		if err := d.Insert(name, tup); err != nil {
			return err
		}
	}
}

// WriteCSV writes the named relation as CSV with a header row.
func (d *Database) WriteCSV(name string, w io.Writer) error {
	r, err := d.Snapshot(name)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	for _, t := range r.Tuples {
		rec := make([]string, len(t))
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
