package core

import "repro/internal/rel"

// dataIndex is the hash-native replacement for the map[string]int dedup
// tables the algebra's primitives used to build: tuples are bucketed by the
// 64-bit hash of their data portion (Tuple.DataHash64) through the shared
// rel.BucketIndex, and candidates are confirmed with DataEqual. Positions
// index into a caller-owned tuple slice, which keeps the index itself free
// of tuple copies.
type dataIndex struct {
	rel.BucketIndex
}

func newDataIndex(capacity int) dataIndex {
	return dataIndex{rel.NewBucketIndex(capacity)}
}

// find returns the position of the tuple in tuples whose data portion equals
// t(d), bucketing by h and confirming candidates with DataEqual.
func (ix dataIndex) find(tuples []Tuple, t Tuple, h uint64) (int, bool) {
	return ix.Find(h, func(at int) bool { return tuples[at].DataEqual(t) })
}

// add records that tuples[pos] hashes to h.
func (ix dataIndex) add(h uint64, pos int) { ix.Add(h, pos) }
