package core

import "repro/internal/rel"

// dataIndex is the hash-native replacement for the map[string]int dedup
// tables the algebra's primitives used to build: tuples are bucketed by the
// 64-bit hash of their data portion (Tuple.DataHash64) through the shared
// rel.BucketIndex, and candidates are confirmed with DataEqual. Positions
// index into a caller-owned tuple slice, which keeps the index itself free
// of tuple copies.
type dataIndex struct {
	rel.BucketIndex
}

func newDataIndex(capacity int) dataIndex {
	return dataIndex{rel.NewBucketIndex(capacity)}
}

// find returns the position of the tuple in tuples whose data portion equals
// t(d), bucketing by h and confirming candidates with DataEqual.
func (ix dataIndex) find(tuples []Tuple, t Tuple, h uint64) (int, bool) {
	return ix.Find(h, func(at int) bool { return tuples[at].DataEqual(t) })
}

// add records that tuples[pos] hashes to h.
func (ix dataIndex) add(h uint64, pos int) { ix.Add(h, pos) }

// dedupInsert inserts t into out under the algebra's set semantics: a tuple
// whose data portion is already present merges its tag sets into the
// existing tuple cell by cell (paper §II, Project/Union); a new data
// portion is appended as an arena row. It is the one dedup kernel shared
// by the materializing and streaming Project, Union and Intersect.
func dedupInsert(out *Relation, ix dataIndex, t Tuple) {
	dedupInsertHashed(out, ix, t, t.DataHash64())
}

// dedupInsertHashed is dedupInsert with the data hash already computed (the
// partitioned operators hash once to route a tuple to its partition and
// reuse the hash for the partition-local dedup). It reports whether t's
// data portion was new — i.e. whether a row was appended.
func dedupInsertHashed(out *Relation, ix dataIndex, t Tuple, h uint64) bool {
	if at, dup := ix.find(out.Tuples, t, h); dup {
		existing := out.Tuples[at]
		for i := range existing {
			existing[i] = existing[i].MergeTags(t[i])
		}
		return false
	}
	row := out.NewRow(len(t))
	copy(row, t)
	ix.add(h, len(out.Tuples))
	out.Tuples = append(out.Tuples, row)
	return true
}
