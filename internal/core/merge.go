package core

import (
	"fmt"
)

// ConflictHandler resolves a Coalesce between two non-nil, non-matching data
// values — a data conflict between sources, which the paper's assumptions
// rule out of the worked example but which real federations exhibit (§V
// names data conflict resolution as the research the polygen model founds).
// It returns the coalesced cell.
type ConflictHandler func(x, y Cell) Cell

// SetConflictHandler installs h for subsequent Coalesce operations. A nil h
// restores the default policy: keep x's datum and origin, and fold y's
// origin and intermediates into the intermediate set (y's source was
// consulted, but did not originate the surviving datum).
func (a *Algebra) SetConflictHandler(h ConflictHandler) { a.conflict = h }

func (a *Algebra) resolveConflict(x, y Cell) Cell {
	if a.conflict != nil {
		return a.conflict(x, y)
	}
	return Cell{D: x.D, O: x.O, I: x.I.Union(y.I).Union(y.O)}
}

// Coalesce implements the sixth orthogonal primitive p[x © y : w]: the two
// columns x and y collapse into one column w placed at x's position. Per
// §II, for each tuple:
//
//   - if t[x](d) = t[y](d): the datum is kept once with both origin sets and
//     both intermediate sets unioned;
//   - if t[y](d) = nil: x's cell passes through;
//   - if t[x](d) = nil: y's cell passes through.
//
// Data equality is instance equality under the algebra's resolver (Appendix
// A coalesces "CitiCorp" with "Citicorp"); on equal instances the left datum
// is kept, matching Table A5. Conflicting non-nil data — undefined in the
// paper — go through the ConflictHandler.
func (a *Algebra) Coalesce(p *Relation, x, y, w string) (*Relation, error) {
	xi, err := p.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p.Col(y)
	if err != nil {
		return nil, err
	}
	if xi == yi {
		return nil, fmt.Errorf("core: coalesce of attribute %q with itself", x)
	}
	attrs := make([]Attr, 0, len(p.Attrs)-1)
	for i, at := range p.Attrs {
		switch i {
		case xi:
			pg := at.Polygen
			if pg == "" {
				pg = p.Attrs[yi].Polygen
			}
			attrs = append(attrs, Attr{Name: w, Polygen: pg})
		case yi:
			// dropped
		default:
			attrs = append(attrs, at)
		}
	}
	out := NewRelation("", p.Reg, attrs...)
	for _, t := range p.Tuples {
		cx, cy := t[xi], t[yi]
		var cw Cell
		switch {
		case cy.D.IsNull():
			cw = cx
		case cx.D.IsNull():
			cw = cy
		case a.same(cx.D, cy.D):
			cw = Cell{D: cx.D, O: cx.O.Union(cy.O), I: cx.I.Union(cy.I)}
		default:
			cw = a.resolveConflict(cx, cy)
		}
		row := out.NewRow(len(t) - 1)[:0]
		for i, c := range t {
			switch i {
			case xi:
				row = append(row, cw)
			case yi:
				// dropped
			default:
				row = append(row, c)
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// OuterJoin computes the full outer equi-join of p1 and p2 on x = y (instance
// equality). Matched tuple pairs concatenate with the join attributes'
// origins added to every cell's intermediate set, exactly as Restrict does;
// an unmatched tuple is padded with nil cells carrying an empty origin set
// and the intermediate sets contributed by its own join attribute's origin
// (Table A4's "nil, {}, {AD}" cells).
func (a *Algebra) OuterJoin(p1 *Relation, x string, p2 *Relation, y string) (*Relation, error) {
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	attrs := productAttrs(p1.Attrs, p2.Name, p2.Attrs)
	out := NewRelation("", p1.Reg, attrs...)

	// Probe by interned canonical ID over position buckets, as Join does.
	res := a.Resolver()
	index := newIDIndex(res, p2.Tuples, yi)
	matched2 := make([]bool, len(p2.Tuples))
	for _, t1 := range p1.Tuples {
		var matches []int32
		if !t1[xi].D.IsNull() {
			matches = index.lookup(res.CanonicalID(t1[xi].D))
		}
		if len(matches) == 0 {
			// Unmatched left tuple: right side nil-padded; only the left
			// join attribute mediates.
			med := t1[xi].O
			row := out.NewRow(len(attrs))[:0]
			for _, c := range t1 {
				row = append(row, c.WithIntermediate(med))
			}
			for range p2.Attrs {
				row = append(row, NilCell(med))
			}
			out.Tuples = append(out.Tuples, row)
			continue
		}
		for _, mi := range matches {
			matched2[mi] = true
			t2 := p2.Tuples[mi]
			med := t1[xi].O.Union(t2[yi].O)
			row := out.NewRow(len(attrs))[:0]
			for _, c := range t1 {
				row = append(row, c.WithIntermediate(med))
			}
			for _, c := range t2 {
				row = append(row, c.WithIntermediate(med))
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	for i, t2 := range p2.Tuples {
		if matched2[i] {
			continue
		}
		med := t2[yi].O
		row := out.NewRow(len(attrs))[:0]
		for range p1.Attrs {
			row = append(row, NilCell(med))
		}
		for _, c := range t2 {
			row = append(row, c.WithIntermediate(med))
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// OuterNaturalPrimaryJoin is an outer join on the two operands' columns for
// the polygen key attribute, with those columns coalesced into one column
// named after the key (paper §II: "an Outer Natural Join on the primary key
// of a polygen relation"). x and y name the key columns in p1 and p2; w is
// the coalesced (polygen key) name.
func (a *Algebra) OuterNaturalPrimaryJoin(p1 *Relation, x string, p2 *Relation, y string, w string) (*Relation, error) {
	oj, err := a.OuterJoin(p1, x, p2, y)
	if err != nil {
		return nil, err
	}
	// The right key column may have been renamed by disambiguation; address
	// it by position.
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	xName := oj.Attrs[xi].Name
	yName := oj.Attrs[len(p1.Attrs)+yi].Name
	return a.Coalesce(oj, xName, yName, w)
}

// OuterNaturalTotalJoin performs the Outer Natural Primary Join of p1 and p2
// on the scheme's key and then coalesces every other polygen attribute both
// operands carry, renaming single-sided local columns to their polygen
// names (Appendix A, steps (1)–(3)). Both operands' columns must be
// annotated with the polygen attributes they map to — Retrieve establishes
// the annotation from the polygen schema.
func (a *Algebra) OuterNaturalTotalJoin(p1, p2 *Relation, scheme *Scheme) (*Relation, error) {
	x, err := colByPolygen(p1, scheme.Key)
	if err != nil {
		return nil, fmt.Errorf("core: ONTJ left operand: %w", err)
	}
	y, err := colByPolygen(p2, scheme.Key)
	if err != nil {
		return nil, fmt.Errorf("core: ONTJ right operand: %w", err)
	}
	cur, err := a.OuterNaturalPrimaryJoin(p1, p1.Attrs[x].Name, p2, p2.Attrs[y].Name, scheme.Key)
	if err != nil {
		return nil, err
	}
	for _, pa := range scheme.Attrs {
		if pa.Name == scheme.Key {
			continue
		}
		cols := colsByPolygen(cur, pa.Name)
		switch len(cols) {
		case 0:
			// Neither operand carries this polygen attribute.
		case 1:
			if cur.Attrs[cols[0]].Name != pa.Name {
				cur, err = a.Rename(cur, cur.Attrs[cols[0]].Name, pa.Name)
				if err != nil {
					return nil, err
				}
			}
		case 2:
			cur, err = a.Coalesce(cur, cur.Attrs[cols[0]].Name, cur.Attrs[cols[1]].Name, pa.Name)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: ONTJ: polygen attribute %q appears in %d columns", pa.Name, len(cols))
		}
	}
	return cur, nil
}

func colByPolygen(p *Relation, pa string) (int, error) {
	cols := colsByPolygen(p, pa)
	switch len(cols) {
	case 1:
		return cols[0], nil
	case 0:
		return 0, fmt.Errorf("no column maps to polygen attribute %q in %s", pa, p.describe())
	default:
		return 0, fmt.Errorf("polygen attribute %q is ambiguous in %s", pa, p.describe())
	}
}

func colsByPolygen(p *Relation, pa string) []int {
	var out []int
	for i, at := range p.Attrs {
		if at.Polygen == pa {
			out = append(out, i)
		}
	}
	return out
}

// Merge extends the Outer Natural Total Join to any number of polygen
// relations belonging to one polygen scheme (§II): a left fold of ONTJ. With
// a single operand it normalizes the column names to the polygen attribute
// names, which is what the total join would have produced. §II notes the
// fold order is immaterial; TestMergeOrderIndependence checks the instance-
// level form of that claim.
func (a *Algebra) Merge(scheme *Scheme, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("core: merge of zero relations for scheme %q", scheme.Name)
	}
	if len(rels) == 1 {
		return a.normalizeToScheme(rels[0], scheme)
	}
	cur := rels[0]
	var err error
	for _, next := range rels[1:] {
		cur, err = a.OuterNaturalTotalJoin(cur, next, scheme)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// MergeBalanced computes the same Merge as a balanced pairwise tree instead
// of a left fold: each round total-joins adjacent pairs, halving the operand
// count. The left fold rescans the whole accumulated relation at every step
// (Σᵢ O(N·i) work for i sources); the tree does O(N log J). §II's
// order-independence makes the two equivalent at the instance level —
// TestMergeBalancedMatchesFold checks it — and the B-SRC ablation bench
// measures the gap.
func (a *Algebra) MergeBalanced(scheme *Scheme, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("core: merge of zero relations for scheme %q", scheme.Name)
	}
	work := append([]*Relation(nil), rels...)
	for len(work) > 1 {
		next := make([]*Relation, 0, (len(work)+1)/2)
		for i := 0; i < len(work); i += 2 {
			if i+1 == len(work) {
				next = append(next, work[i])
				continue
			}
			m, err := a.OuterNaturalTotalJoin(work[i], work[i+1], scheme)
			if err != nil {
				return nil, err
			}
			next = append(next, m)
		}
		work = next
	}
	return a.normalizeToScheme(work[0], scheme)
}

// normalizeToScheme renames every polygen-annotated column of p to its
// polygen attribute name.
func (a *Algebra) normalizeToScheme(p *Relation, scheme *Scheme) (*Relation, error) {
	out := p.Clone()
	for i, at := range out.Attrs {
		if at.Polygen != "" && at.Name != at.Polygen {
			if _, ok := scheme.Attr(at.Polygen); ok {
				out.Attrs[i] = Attr{Name: at.Polygen, Polygen: at.Polygen}
			}
		}
	}
	return out, nil
}
