package core

import (
	"strings"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	la := LocalAttr{DB: "AD", Scheme: "T", Attr: "A"}
	ok := &Scheme{Name: "P", Attrs: []PolygenAttr{{Name: "A", Mapping: []LocalAttr{la}}}}
	s, err := NewSchema(ok)
	if err != nil {
		t.Fatal(err)
	}
	if got, found := s.Scheme("P"); !found || got != ok {
		t.Error("Scheme lookup failed")
	}
	if ok.Key != "A" {
		t.Errorf("key should default to the first attribute, got %q", ok.Key)
	}

	cases := []*Scheme{
		{Name: "E"}, // no attributes
		{Name: "D", Attrs: []PolygenAttr{ // duplicate attribute
			{Name: "A", Mapping: []LocalAttr{la}},
			{Name: "A", Mapping: []LocalAttr{la}},
		}},
		{Name: "M", Attrs: []PolygenAttr{{Name: "A"}}}, // empty mapping
		{Name: "K", Key: "Z", Attrs: []PolygenAttr{{Name: "A", // unknown key
			Mapping: []LocalAttr{la}}}},
	}
	for _, bad := range cases {
		if _, err := NewSchema(bad); err == nil {
			t.Errorf("scheme %q should be rejected", bad.Name)
		}
	}
	if _, err := NewSchema(ok, &Scheme{Name: "P", Attrs: ok.Attrs}); err == nil {
		t.Error("duplicate scheme name accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on invalid input")
		}
	}()
	MustSchema(&Scheme{Name: "E"})
}

func TestSchemaSchemeNames(t *testing.T) {
	la := LocalAttr{DB: "AD", Scheme: "T", Attr: "A"}
	s := MustSchema(
		&Scheme{Name: "B", Attrs: []PolygenAttr{{Name: "A", Mapping: []LocalAttr{la}}}},
		&Scheme{Name: "A", Attrs: []PolygenAttr{{Name: "A", Mapping: []LocalAttr{la}}}},
	)
	names := s.SchemeNames()
	if len(names) != 2 || names[0] != "B" || names[1] != "A" {
		t.Errorf("SchemeNames = %v (declaration order expected)", names)
	}
}

func TestPolygenAttrOf(t *testing.T) {
	s := MustSchema(orgScheme())
	sa, ok := s.PolygenAttrOf(LocalAttr{DB: "PD", Scheme: "CORPORATION", Attr: "STATE"})
	if !ok || sa.Scheme != "PORG" || sa.Attr != "HEADQUARTERS" {
		t.Errorf("PolygenAttrOf = %v, %v", sa, ok)
	}
	if _, ok := s.PolygenAttrOf(LocalAttr{DB: "XX", Scheme: "Y", Attr: "Z"}); ok {
		t.Error("unknown local attribute resolved")
	}
}

func TestResolveAttr(t *testing.T) {
	s := MustSchema(orgScheme())
	pa, err := s.ResolveAttr("PORG", "CEO")
	if err != nil || pa.Name != "CEO" || len(pa.Mapping) != 1 {
		t.Errorf("ResolveAttr = %v, %v", pa, err)
	}
	if _, err := s.ResolveAttr("NOPE", "CEO"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := s.ResolveAttr("PORG", "NOPE"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSchemeString(t *testing.T) {
	s := orgScheme()
	str := s.String()
	if !strings.Contains(str, "PORG") || !strings.Contains(str, "(AD, BUSINESS, BNAME)") {
		t.Errorf("String = %q", str)
	}
	la := LocalAttr{DB: "CD", Scheme: "FIRM", Attr: "CEO"}
	if la.String() != "(CD, FIRM, CEO)" {
		t.Errorf("LocalAttr.String = %q", la.String())
	}
	lr := LocalRelation{DB: "AD", Scheme: "BUSINESS"}
	if lr.String() != "AD.BUSINESS" {
		t.Errorf("LocalRelation.String = %q", lr.String())
	}
}

func TestSchemeAttrNames(t *testing.T) {
	s := orgScheme()
	names := s.AttrNames()
	want := []string{"ONAME", "INDUSTRY", "CEO", "HEADQUARTERS"}
	if len(names) != len(want) {
		t.Fatalf("AttrNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("AttrNames = %v", names)
		}
	}
}
