package core

import (
	"repro/internal/identity"
	"repro/internal/rel"
)

// Join implements the derived Join operator p1[x θ y]p2. Per §II, Join is
// "defined as the restriction of a Cartesian product". When the two join
// attributes denote the same polygen attribute — a natural join, as in the
// worked example's [AID# = AID#] and [ONAME = ONAME] — the example
// additionally shows the two join columns collapsed into a single column
// (Table 5 carries one AID#, Table 7 one ONAME), i.e. a Coalesce of the join
// attributes follows the restriction:
//
//	Coalesce( Restrict( p1 × p2, x θ y ), x © y : w )
//
// A θ-join between distinct attributes (the §I query's [CEO = ANAME]) keeps
// both columns, exactly the restriction of the product — Table 7 carries
// both CEO and ANAME. JoinViaPrimitives evaluates the literal primitive
// composition; Join itself is the hash-join fast path for θ = "=", falling
// back to the composition for other θ. A property-based test asserts the two
// agree.
func (a *Algebra) Join(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	if theta != rel.ThetaEQ {
		return a.JoinViaPrimitives(p1, x, theta, p2, y)
	}
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	attrs := joinAttrs(p1.Attrs, xi, p2.Name, p2.Attrs, yi, coalesce)
	if parts := a.parParts(len(p1.Tuples) + len(p2.Tuples)); parts > 1 {
		return a.parJoin(parts, p1, xi, p2, yi, coalesce, attrs), nil
	}
	out := NewRelation("", p1.Reg, attrs...)

	// Probe by interned canonical ID: the resolver guarantees equal IDs iff
	// equal canonical forms, so no per-probe canonical string is built and
	// no collision fallback is needed.
	res := a.Resolver()
	index := newIDIndex(res, p2.Tuples, yi)
	for _, t1 := range p1.Tuples {
		if t1[xi].D.IsNull() {
			continue
		}
		for _, mi := range index.lookup(res.CanonicalID(t1[xi].D)) {
			out.Tuples = append(out.Tuples, a.joinRow(out, t1, xi, p2.Tuples[mi], yi, coalesce))
		}
	}
	return out, nil
}

// idIndex is a build-side hash-join index keyed by interned canonical IDs.
// IDs are dense small integers (the resolver assigns them sequentially), so
// when the ID space is compact relative to the build side the buckets are
// stored in CSR form — a prefix-sum offsets slice over one backing array of
// positions — probed with two bounds-checked loads instead of a map lookup,
// and built with a constant number of allocations. A long-lived resolver
// whose table dwarfs the build relation falls back to a map. Buckets hold
// positions, not tuples: every layout is pointer-free and costs the garbage
// collector nothing.
type idIndex struct {
	offsets []int32 // dense path: bucket id spans backing[offsets[id]:offsets[id+1]]
	backing []int32
	sparse  map[uint64][]int32
}

func newIDIndex(res identity.Resolver, tuples []Tuple, yi int) idIndex {
	ids := make([]uint64, len(tuples))
	maxID := uint64(0)
	for i, t := range tuples {
		if t[yi].D.IsNull() {
			ids[i] = 0 // resolver IDs start at 1; 0 marks "skip"
			continue
		}
		id := res.CanonicalID(t[yi].D)
		ids[i] = id
		if id > maxID {
			maxID = id
		}
	}
	var ix idIndex
	if maxID <= uint64(4*len(tuples))+1024 && len(tuples) <= 1<<30 {
		// Counting sort into CSR buckets; within a bucket positions stay in
		// build order, matching the append order of the map layout.
		ix.offsets = make([]int32, maxID+2)
		for _, id := range ids {
			if id != 0 {
				ix.offsets[id+1]++
			}
		}
		for i := 1; i < len(ix.offsets); i++ {
			ix.offsets[i] += ix.offsets[i-1]
		}
		ix.backing = make([]int32, ix.offsets[len(ix.offsets)-1])
		cur := make([]int32, maxID+1)
		copy(cur, ix.offsets[:maxID+1])
		for i, id := range ids {
			if id != 0 {
				ix.backing[cur[id]] = int32(i)
				cur[id]++
			}
		}
		return ix
	}
	ix.sparse = make(map[uint64][]int32, len(tuples))
	for i, id := range ids {
		if id != 0 {
			ix.sparse[id] = append(ix.sparse[id], int32(i))
		}
	}
	return ix
}

func (ix idIndex) lookup(id uint64) []int32 {
	if ix.offsets != nil {
		if id+1 < uint64(len(ix.offsets)) {
			return ix.backing[ix.offsets[id]:ix.offsets[id+1]]
		}
		return nil
	}
	return ix.sparse[id]
}

// joinCoalesces reports whether a join on the two attributes is natural
// (same polygen attribute, or same display name when unannotated) and its
// join columns therefore coalesce.
func joinCoalesces(x, y Attr) bool {
	if x.Polygen != "" || y.Polygen != "" {
		return x.Polygen == y.Polygen
	}
	return x.Name == y.Name
}

// joinAttrs computes the output attribute list of a join: the left
// attributes (with x replaced by the coalesced column when coalescing)
// followed by the right attributes (minus y when coalescing), disambiguated
// against the left names. It operates on bare attribute lists so both the
// materializing and the streaming join share it.
func joinAttrs(attrs1 []Attr, xi int, name2 string, attrs2 []Attr, yi int, coalesce bool) []Attr {
	xAttr, yAttr := attrs1[xi], attrs2[yi]
	attrs := make([]Attr, 0, len(attrs1)+len(attrs2))
	attrs = append(attrs, attrs1...)
	if coalesce {
		coalesced := Attr{Name: xAttr.Name, Polygen: xAttr.Polygen}
		if xAttr.Polygen != "" && xAttr.Polygen == yAttr.Polygen {
			coalesced.Name = xAttr.Polygen
		}
		attrs[xi] = coalesced
	}
	for i, at := range attrs2 {
		if coalesce && i == yi {
			continue
		}
		name := at.Name
		if hasAttrName(attrs, name) {
			name = disambiguateName(attrs, name2, at.Name)
		}
		attrs = append(attrs, Attr{Name: name, Polygen: at.Polygen})
	}
	return attrs
}

// ResolveAttrIn resolves an attribute reference against a bare attribute
// list, with the same display-name-then-polygen-name rules as Relation.Col.
// The plan optimizer uses it to simulate column resolution without
// materializing relations.
func ResolveAttrIn(relName string, attrs []Attr, name string) (int, error) {
	return colIn(relName, attrs, name)
}

// JoinLayout returns the output attribute list a join of two inputs with the
// given attribute lists would produce, and whether its join columns
// coalesce. It is joinAttrs exposed for plan simulation: the optimizer
// replays candidate join orders over attribute lists alone and aborts any
// rewrite whose simulated layout diverges from the original's.
func JoinLayout(attrs1 []Attr, xi int, name2 string, attrs2 []Attr, yi int) ([]Attr, bool) {
	coalesce := joinCoalesces(attrs1[xi], attrs2[yi])
	return joinAttrs(attrs1, xi, name2, attrs2, yi, coalesce), coalesce
}

// joinRow builds one joined tuple, sliced from out's arena: every cell gains
// the join attributes' origins in its intermediate set (the Restrict step)
// and, for natural joins, the two join cells coalesce (the Coalesce step,
// equal-data case: union both tag sets).
func (a *Algebra) joinRow(out *Relation, t1 Tuple, xi int, t2 Tuple, yi int, coalesce bool) Tuple {
	mediators := t1[xi].O.Union(t2[yi].O)
	n := len(t1) + len(t2)
	if coalesce {
		n--
	}
	row := out.NewRow(n)[:0]
	for i, c := range t1 {
		if coalesce && i == xi {
			joined := Cell{
				D: t1[xi].D,
				O: t1[xi].O.Union(t2[yi].O),
				I: t1[xi].I.Union(t2[yi].I),
			}
			row = append(row, joined.WithIntermediate(mediators))
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	for i, c := range t2 {
		if coalesce && i == yi {
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	return row
}

// JoinViaPrimitives evaluates the join as the literal composition of the
// primitives: Cartesian product, then Restrict, then — for natural joins —
// Coalesce of the join columns. It is the reference semantics for Join and
// the general-θ path.
func (a *Algebra) JoinViaPrimitives(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	prod, err := a.Product(p1, p2)
	if err != nil {
		return nil, err
	}
	// Locate the two operand columns in the product by position: p1's
	// columns come first, then p2's (possibly renamed by disambiguation).
	xName := prod.Attrs[xi].Name
	yName := prod.Attrs[len(p1.Attrs)+yi].Name
	restricted, err := a.Restrict(prod, xName, theta, yName)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	wanted := joinAttrs(p1.Attrs, xi, p2.Name, p2.Attrs, yi, coalesce)
	if !coalesce {
		out := restricted
		if len(out.Attrs) == len(wanted) {
			out.Attrs = wanted
		}
		return out, nil
	}
	w := wanted[xi].Name
	out, err := a.Coalesce(restricted, xName, yName, w)
	if err != nil {
		return nil, err
	}
	// Coalesce keeps x's position and drops y's column, which reproduces the
	// join layout; restore the polygen annotations computed by joinAttrs.
	if len(out.Attrs) == len(wanted) {
		out.Attrs = wanted
	}
	return out, nil
}

// SemiJoin returns the tuples of p1 with a θ-match in p2 on x θ y, keeping
// only p1's columns. It is Project(Join(...), attrs(p1)) and is the
// algebraic reading of an IN-subquery; tags follow from that composition
// (match origins join the intermediate sets).
func (a *Algebra) SemiJoin(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	joined, err := a.Join(p1, x, theta, p2, y)
	if err != nil {
		return nil, err
	}
	// p1's columns occupy the first len(p1.Attrs) positions in every join
	// layout; project them back out by position.
	names := make([]string, len(p1.Attrs))
	for i := range p1.Attrs {
		names[i] = joined.Attrs[i].Name
	}
	out, err := a.Project(joined, names)
	if err != nil {
		return nil, err
	}
	out.Attrs = append([]Attr(nil), p1.Attrs...)
	return out, nil
}
