package core

import (
	"repro/internal/rel"
)

// Join implements the derived Join operator p1[x θ y]p2. Per §II, Join is
// "defined as the restriction of a Cartesian product". When the two join
// attributes denote the same polygen attribute — a natural join, as in the
// worked example's [AID# = AID#] and [ONAME = ONAME] — the example
// additionally shows the two join columns collapsed into a single column
// (Table 5 carries one AID#, Table 7 one ONAME), i.e. a Coalesce of the join
// attributes follows the restriction:
//
//	Coalesce( Restrict( p1 × p2, x θ y ), x © y : w )
//
// A θ-join between distinct attributes (the §I query's [CEO = ANAME]) keeps
// both columns, exactly the restriction of the product — Table 7 carries
// both CEO and ANAME. JoinViaPrimitives evaluates the literal primitive
// composition; Join itself is the hash-join fast path for θ = "=", falling
// back to the composition for other θ. A property-based test asserts the two
// agree.
func (a *Algebra) Join(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	if theta != rel.ThetaEQ {
		return a.JoinViaPrimitives(p1, x, theta, p2, y)
	}
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	attrs := a.joinAttrs(p1, xi, p2, yi, coalesce)
	out := NewRelation("", p1.Reg, attrs...)

	index := make(map[string][]Tuple, len(p2.Tuples))
	for _, t2 := range p2.Tuples {
		if t2[yi].D.IsNull() {
			continue
		}
		k := a.Resolver().Canonical(t2[yi].D)
		index[k] = append(index[k], t2)
	}
	for _, t1 := range p1.Tuples {
		if t1[xi].D.IsNull() {
			continue
		}
		for _, t2 := range index[a.Resolver().Canonical(t1[xi].D)] {
			out.Tuples = append(out.Tuples, a.joinRow(t1, xi, t2, yi, coalesce))
		}
	}
	return out, nil
}

// joinCoalesces reports whether a join on the two attributes is natural
// (same polygen attribute, or same display name when unannotated) and its
// join columns therefore coalesce.
func joinCoalesces(x, y Attr) bool {
	if x.Polygen != "" || y.Polygen != "" {
		return x.Polygen == y.Polygen
	}
	return x.Name == y.Name
}

// joinAttrs computes the output attribute list of a join: p1's attributes
// (with x replaced by the coalesced column when coalescing) followed by p2's
// attributes (minus y when coalescing), disambiguated against p1's names.
func (a *Algebra) joinAttrs(p1 *Relation, xi int, p2 *Relation, yi int, coalesce bool) []Attr {
	xAttr, yAttr := p1.Attrs[xi], p2.Attrs[yi]
	attrs := make([]Attr, 0, len(p1.Attrs)+len(p2.Attrs))
	attrs = append(attrs, p1.Attrs...)
	if coalesce {
		coalesced := Attr{Name: xAttr.Name, Polygen: xAttr.Polygen}
		if xAttr.Polygen != "" && xAttr.Polygen == yAttr.Polygen {
			coalesced.Name = xAttr.Polygen
		}
		attrs[xi] = coalesced
	}
	for i, at := range p2.Attrs {
		if coalesce && i == yi {
			continue
		}
		name := at.Name
		if hasAttrName(attrs, name) {
			name = disambiguateName(attrs, p2.Name, at.Name)
		}
		attrs = append(attrs, Attr{Name: name, Polygen: at.Polygen})
	}
	return attrs
}

// joinRow builds one joined tuple: every cell gains the join attributes'
// origins in its intermediate set (the Restrict step) and, for natural
// joins, the two join cells coalesce (the Coalesce step, equal-data case:
// union both tag sets).
func (a *Algebra) joinRow(t1 Tuple, xi int, t2 Tuple, yi int, coalesce bool) Tuple {
	mediators := t1[xi].O.Union(t2[yi].O)
	row := make(Tuple, 0, len(t1)+len(t2))
	for i, c := range t1 {
		if coalesce && i == xi {
			joined := Cell{
				D: t1[xi].D,
				O: t1[xi].O.Union(t2[yi].O),
				I: t1[xi].I.Union(t2[yi].I),
			}
			row = append(row, joined.WithIntermediate(mediators))
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	for i, c := range t2 {
		if coalesce && i == yi {
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	return row
}

// JoinViaPrimitives evaluates the join as the literal composition of the
// primitives: Cartesian product, then Restrict, then — for natural joins —
// Coalesce of the join columns. It is the reference semantics for Join and
// the general-θ path.
func (a *Algebra) JoinViaPrimitives(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	prod, err := a.Product(p1, p2)
	if err != nil {
		return nil, err
	}
	// Locate the two operand columns in the product by position: p1's
	// columns come first, then p2's (possibly renamed by disambiguation).
	xName := prod.Attrs[xi].Name
	yName := prod.Attrs[len(p1.Attrs)+yi].Name
	restricted, err := a.Restrict(prod, xName, theta, yName)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	wanted := a.joinAttrs(p1, xi, p2, yi, coalesce)
	if !coalesce {
		out := restricted
		if len(out.Attrs) == len(wanted) {
			out.Attrs = wanted
		}
		return out, nil
	}
	w := wanted[xi].Name
	out, err := a.Coalesce(restricted, xName, yName, w)
	if err != nil {
		return nil, err
	}
	// Coalesce keeps x's position and drops y's column, which reproduces the
	// join layout; restore the polygen annotations computed by joinAttrs.
	if len(out.Attrs) == len(wanted) {
		out.Attrs = wanted
	}
	return out, nil
}

// SemiJoin returns the tuples of p1 with a θ-match in p2 on x θ y, keeping
// only p1's columns. It is Project(Join(...), attrs(p1)) and is the
// algebraic reading of an IN-subquery; tags follow from that composition
// (match origins join the intermediate sets).
func (a *Algebra) SemiJoin(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	joined, err := a.Join(p1, x, theta, p2, y)
	if err != nil {
		return nil, err
	}
	// p1's columns occupy the first len(p1.Attrs) positions in every join
	// layout; project them back out by position.
	names := make([]string, len(p1.Attrs))
	for i := range p1.Attrs {
		names[i] = joined.Attrs[i].Name
	}
	out, err := a.Project(joined, names)
	if err != nil {
		return nil, err
	}
	out.Attrs = append([]Attr(nil), p1.Attrs...)
	return out, nil
}
