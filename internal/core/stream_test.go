package core

import (
	"io"
	"testing"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// trackedCursor wraps a cursor and records whether it was closed.
type trackedCursor struct {
	Cursor
	closed int
}

func (c *trackedCursor) Close() error {
	c.closed++
	return c.Cursor.Close()
}

func streamEnv() (*testEnv, *Algebra) {
	return newEnv(), NewAlgebra(nil)
}

// TestStreamCloseWithoutDrainClosesInputs: abandoning a composed stream
// closes every input cursor exactly once — no leaked producers.
func TestStreamCloseWithoutDrainClosesInputs(t *testing.T) {
	e, alg := streamEnv()
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", 1}, []any{"y", 2})
	p2 := e.prel("P2", sourceset.Of(e.pd), attrs("A", "B"), []any{"x", 3})

	mk := func() (*trackedCursor, *trackedCursor) {
		return &trackedCursor{Cursor: CursorOf(p1)}, &trackedCursor{Cursor: CursorOf(p2)}
	}

	for _, tc := range []struct {
		name  string
		build func(l, r Cursor) (Cursor, error)
	}{
		{"union", alg.StreamUnion},
		{"difference", alg.StreamDifference},
		{"intersect", alg.StreamIntersect},
		{"product", alg.StreamProduct},
		{"join", func(l, r Cursor) (Cursor, error) { return alg.StreamJoin(l, "A", rel.ThetaEQ, r, "A") }},
	} {
		l, r := mk()
		c, err := tc.build(l, r)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := c.Close(); err != nil {
			t.Fatalf("%s: close: %v", tc.name, err)
		}
		if l.closed != 1 || r.closed != 1 {
			t.Errorf("%s: inputs closed (%d, %d) times, want (1, 1)", tc.name, l.closed, r.closed)
		}
	}
}

// TestStreamConstructionErrorClosesInputs: a bad attribute reference at
// construction time must not leak the input cursors.
func TestStreamConstructionErrorClosesInputs(t *testing.T) {
	e, alg := streamEnv()
	p := e.prel("P", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	in := &trackedCursor{Cursor: CursorOf(p)}
	if _, err := alg.StreamSelect(in, "NOPE", rel.ThetaEQ, rel.String("x")); err == nil {
		t.Fatal("bad attribute accepted")
	}
	if in.closed != 1 {
		t.Errorf("input closed %d times, want 1", in.closed)
	}
	l := &trackedCursor{Cursor: CursorOf(p)}
	r := &trackedCursor{Cursor: CursorOf(p)}
	if _, err := alg.StreamJoin(l, "NOPE", rel.ThetaEQ, r, "A"); err == nil {
		t.Fatal("bad join attribute accepted")
	}
	if l.closed != 1 || r.closed != 1 {
		t.Errorf("join inputs closed (%d, %d) times, want (1, 1)", l.closed, r.closed)
	}
}

// TestStreamDegreeMismatch: the set operators reject incompatible inputs at
// construction and close them.
func TestStreamDegreeMismatch(t *testing.T) {
	e, alg := streamEnv()
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", 1})
	p2 := e.prel("P2", sourceset.Of(e.pd), attrs("A"), []any{"x"})
	for _, tc := range []struct {
		name  string
		build func(l, r Cursor) (Cursor, error)
	}{
		{"union", alg.StreamUnion},
		{"difference", alg.StreamDifference},
		{"intersect", alg.StreamIntersect},
	} {
		l := &trackedCursor{Cursor: CursorOf(p1)}
		r := &trackedCursor{Cursor: CursorOf(p2)}
		if _, err := tc.build(l, r); err == nil {
			t.Fatalf("%s: degree mismatch accepted", tc.name)
		}
		if l.closed != 1 || r.closed != 1 {
			t.Errorf("%s: inputs closed (%d, %d) times, want (1, 1)", tc.name, l.closed, r.closed)
		}
	}
}

// TestStreamProductPaginates: a product larger than one batch is emitted in
// bounded batches, in materializing order.
func TestStreamProductPaginates(t *testing.T) {
	e, alg := streamEnv()
	left := NewRelation("L", e.reg, attrs("A")...)
	for i := 0; i < 40; i++ {
		left.Tuples = append(left.Tuples, Tuple{Cell{D: rel.Int(int64(i)), O: sourceset.Of(e.ad)}})
	}
	right := NewRelation("R", e.reg, attrs("B")...)
	for i := 0; i < 30; i++ {
		right.Tuples = append(right.Tuples, Tuple{Cell{D: rel.Int(int64(i)), O: sourceset.Of(e.pd)}})
	}
	c, err := alg.StreamProduct(NewRelationCursor(left, 7), NewRelationCursor(right, 11))
	if err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	for {
		batch, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > rel.DefaultBatchSize {
			t.Fatalf("batch of %d rows exceeds bound %d", len(batch), rel.DefaultBatchSize)
		}
		got = append(got, batch...)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mat, err := alg.Product(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(mat.Tuples) {
		t.Fatalf("product emitted %d rows, want %d", len(got), len(mat.Tuples))
	}
	for i := range got {
		if !got[i].Equal(mat.Tuples[i]) {
			t.Fatalf("row %d diverged from materializing order", i)
		}
	}
}

// TestStreamJoinPaginatesSkewedFanOut: a many-to-many join on one shared
// key must emit bounded batches, not the whole |l|×|r| fan-out in one
// Next, and still produce the materializing engine's rows in order.
func TestStreamJoinPaginatesSkewedFanOut(t *testing.T) {
	e, alg := streamEnv()
	mk := func(name string, n int, src sourceset.ID) *Relation {
		p := NewRelation(name, e.reg, attrs("K/PK", name+"V")...)
		for i := 0; i < n; i++ {
			p.Tuples = append(p.Tuples, Tuple{
				{D: rel.String("k"), O: sourceset.Of(src)},
				{D: rel.Int(int64(i)), O: sourceset.Of(src)},
			})
		}
		return p
	}
	left, right := mk("L", 300, e.ad), mk("R", 300, e.pd)
	c, err := alg.StreamJoin(CursorOf(left), "K", rel.ThetaEQ, CursorOf(right), "K")
	if err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	for {
		batch, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) > rel.DefaultBatchSize {
			t.Fatalf("join batch of %d rows exceeds bound %d", len(batch), rel.DefaultBatchSize)
		}
		got = append(got, batch...)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	mat, err := alg.Join(left, "K", rel.ThetaEQ, right, "K")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(mat.Tuples) {
		t.Fatalf("join emitted %d rows, want %d", len(got), len(mat.Tuples))
	}
	for i := range got {
		if !got[i].Equal(mat.Tuples[i]) {
			t.Fatalf("row %d diverged from materializing order", i)
		}
	}
}

// TestStreamDifferenceEmitsProbeSideEarly: the probe side streams — output
// appears after only part of the left input has been pulled.
func TestStreamDifferenceEmitsProbeSideEarly(t *testing.T) {
	e, alg := streamEnv()
	left := NewRelation("L", e.reg, attrs("A")...)
	for i := 0; i < 1000; i++ {
		left.Tuples = append(left.Tuples, Tuple{Cell{D: rel.Int(int64(i)), O: sourceset.Of(e.ad)}})
	}
	right := NewRelation("R", e.reg, attrs("A")...)
	right.Tuples = append(right.Tuples, Tuple{Cell{D: rel.Int(-1), O: sourceset.Of(e.pd)}})

	lc := &countingNext{Cursor: NewRelationCursor(left, 10)}
	c, err := alg.StreamDifference(lc, CursorOf(right))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if lc.nexts > 2 {
		t.Errorf("first output batch needed %d probe-side pulls; difference is not streaming its probe side", lc.nexts)
	}
}

// countingNext counts Next calls on a wrapped cursor.
type countingNext struct {
	Cursor
	nexts int
}

func (c *countingNext) Next() ([]Tuple, error) {
	c.nexts++
	return c.Cursor.Next()
}
