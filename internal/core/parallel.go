package core

import (
	"fmt"
	"io"

	"repro/internal/exec"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// This file implements morsel-driven intra-operator parallelism for the
// hash operators: the classic shared-nothing partitioned-hashing design
// (Wisconsin parallel hash joins) mapped onto the hash-native kernels. Every
// parallel operator follows the same three phases:
//
//  1. parallel partition — hash every input tuple's data portion once, in
//     fixed-size morsels pulled by pool workers (rel.PartitionOf routes each
//     hash to one of P contiguous hash ranges);
//  2. parallel per-partition build/probe — worker w owns partition w
//     outright: its dedup table, drop index or join buckets hold only
//     hashes in w's range, so builds and tag merges need no locks (every
//     tuple that could deduplicate, match or collide with another shares
//     its partition);
//  3. ordered concat — each partition records, per emitted row, the
//     position its data portion first occurred at in the serial engine's
//     scan order, and a k-way merge re-interleaves the partitions on those
//     positions. The output is therefore cell-for-cell identical to the
//     serial operator's, row order and tags included, and deterministic
//     across runs and partition counts.
//
// The Par* operators are exported with an explicit partition count for
// direct use (and the four-engine property suite); the serial entry points
// (Project, Union, Difference, Intersect, Join) dispatch here on their own
// when the algebra carries a Parallel configuration and the input is at or
// above the cost threshold — small inputs stay on the serial path, whose
// code is untouched.

// DefaultParallelThreshold is the minimum total input cardinality at which
// the serial entry points switch to the partitioned operators. Below it the
// fixed costs — hash array, per-partition scan, goroutine wakeups, ordered
// merge — outweigh the win; the paper's tiny worked example never crosses
// it. Chosen as roughly the size where partitioned runs break even at two
// workers in the B-PAR family.
const DefaultParallelThreshold = 8192

// Parallel configures morsel-driven intra-operator parallelism on an
// Algebra. One Pool is shared by every operator of every concurrent query
// on the algebra (one pool per PQP), so a mediator's sessions divide the
// machine instead of oversubscribing it.
type Parallel struct {
	// Pool supplies the workers. A nil pool runs partitioned code inline
	// (useful for testing partition counts); operators still go parallel
	// only when the threshold is crossed.
	Pool *exec.Pool
	// Threshold is the minimum total input tuples for the parallel path;
	// <= 0 means DefaultParallelThreshold.
	Threshold int
	// Partitions fixes the partition count; <= 0 means Pool.Workers().
	Partitions int
}

// SetParallel installs (or, with nil, removes) the parallel execution
// configuration. Like the other Algebra knobs it is wiring-time state: set
// it before the algebra is shared across goroutines.
func (a *Algebra) SetParallel(p *Parallel) { a.par = p }

// ParallelConfig returns the installed configuration, nil when serial.
func (a *Algebra) ParallelConfig() *Parallel { return a.par }

// parParts decides whether an operator over n total input tuples runs
// partitioned, returning the partition count (0 = stay serial).
func (a *Algebra) parParts(n int) int {
	if a == nil || a.par == nil {
		return 0
	}
	thr := a.par.Threshold
	if thr <= 0 {
		thr = DefaultParallelThreshold
	}
	if n < thr {
		return 0
	}
	parts := a.par.Partitions
	if parts <= 0 {
		parts = a.par.Pool.Workers()
	}
	if parts < 2 {
		return 0 // one worker: the serial path is the same work minus the merge
	}
	return parts
}

func (a *Algebra) parPool() *exec.Pool {
	if a.par == nil {
		return nil
	}
	return a.par.Pool
}

// morselTuples is the fixed morsel size of the data-parallel scan phases.
// Big enough to amortize the task hand-off, small enough that a hundred
// thousand tuples split into dozens of morsels for work stealing.
const morselTuples = 4096

// morselCount returns how many morselTuples-sized morsels cover n tuples.
func morselCount(n int) int {
	m := (n + morselTuples - 1) / morselTuples
	if m < 1 {
		m = 1
	}
	return m
}

// morselRange returns the [lo, hi) tuple range of morsel i.
func morselRange(n, i int) (int, int) {
	lo := i * morselTuples
	hi := lo + morselTuples
	if hi > n {
		hi = n
	}
	return lo, hi
}

// parOut is one deduplicated output row paired with the global scan
// position of its first occurrence — the sort key of the ordered concat.
type parOut struct {
	pos int
	row Tuple
}

// mergeOrdered re-interleaves the partitions' outputs into the serial
// engine's row order. Each partition list is already ascending in pos (the
// partition scans the global order), so this is a k-way merge of sorted
// runs; with partition counts in the worker-count range the linear head
// scan beats a heap.
func mergeOrdered(out *Relation, parts [][]parOut) {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out.Tuples = make([]Tuple, 0, total)
	heads := make([]int, len(parts))
	for len(out.Tuples) < total {
		best := -1
		for w := range parts {
			if heads[w] >= len(parts[w]) {
				continue
			}
			if best < 0 || parts[w][heads[w]].pos < parts[best][heads[best]].pos {
				best = w
			}
		}
		out.Tuples = append(out.Tuples, parts[best][heads[best]].row)
		heads[best]++
	}
}

// hashAll computes at(i).DataHash64() for i in [0, n) in parallel morsels.
func hashAll(pool *exec.Pool, n int, at func(int) Tuple) []uint64 {
	hashes := make([]uint64, n)
	pool.Do(morselCount(n), func(m int) {
		lo, hi := morselRange(n, m)
		for i := lo; i < hi; i++ {
			hashes[i] = at(i).DataHash64()
		}
	})
	return hashes
}

// partitionPositions radix-scatters the positions [0, n) of a hash array
// into per-partition lists, each ascending — the scan order of every
// partition phase. Two parallel passes keep it O(n) total (not O(parts×n)
// with every worker filtering the whole array) and lock-free: morsel
// workers scatter into morsel-local buckets, then partition workers
// concatenate their own bucket across morsels in morsel order. route maps
// a hash to its partition (rel.PartitionOf for data hashes, idPartOf for
// canonical IDs — which also skips the zero "null" ID by routing it to -1).
func partitionPositions(pool *exec.Pool, parts int, hashes []uint64, route func(uint64) int) [][]int32 {
	n := len(hashes)
	m := morselCount(n)
	local := make([][][]int32, m)
	pool.Do(m, func(mi int) {
		lo, hi := morselRange(n, mi)
		buckets := make([][]int32, parts)
		for i := lo; i < hi; i++ {
			if w := route(hashes[i]); w >= 0 {
				buckets[w] = append(buckets[w], int32(i))
			}
		}
		local[mi] = buckets
	})
	out := make([][]int32, parts)
	pool.Do(parts, func(w int) {
		total := 0
		for mi := range local {
			total += len(local[mi][w])
		}
		list := make([]int32, 0, total)
		for mi := range local {
			list = append(list, local[mi][w]...)
		}
		out[w] = list
	})
	return out
}

// buildPartitionedDataIndex hashes tuples and builds a radix-partitioned
// bucket index over them in parallel — the build-side kernel shared by the
// materializing parDifference/parIntersect and the streaming Difference.
// It returns the index and the hash array (callers reuse the hashes).
func buildPartitionedDataIndex(pool *exec.Pool, parts int, tuples []Tuple) (*rel.PartitionedBucketIndex, []uint64) {
	hashes := hashAll(pool, len(tuples), func(i int) Tuple { return tuples[i] })
	ix := rel.NewPartitionedBucketIndex(parts, len(tuples)/parts+1)
	pos := partitionPositions(pool, parts, hashes, ix.Partition)
	pool.Do(parts, func(w int) {
		for _, i := range pos[w] {
			ix.Add(hashes[i], int(i))
		}
	})
	return ix, hashes
}

// ParUnion is the partitioned Union primitive: identical to Union cell for
// cell and row for row, evaluated over parts hash partitions (parts < 1
// means 1). Union itself dispatches here above the cost threshold.
func (a *Algebra) ParUnion(p1, p2 *Relation, parts int) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: union of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts < 1 {
		parts = 1
	}
	return a.parUnion(parts, p1, p2), nil
}

func (a *Algebra) parUnion(parts int, p1, p2 *Relation) *Relation {
	pool := a.parPool()
	n1, n := len(p1.Tuples), len(p1.Tuples)+len(p2.Tuples)
	at := func(i int) Tuple {
		if i < n1 {
			return p1.Tuples[i]
		}
		return p2.Tuples[i-n1]
	}
	hashes := hashAll(pool, n, at)
	pos := partitionPositions(pool, parts, hashes, func(h uint64) int { return rel.PartitionOf(h, parts) })
	lists := make([][]parOut, parts)
	pool.Do(parts, func(w int) {
		out := NewRelation("", p1.Reg, p1.Attrs...)
		ix := newDataIndex(len(pos[w]))
		var list []parOut
		for _, pi := range pos[w] {
			i := int(pi)
			if dedupInsertHashed(out, ix, at(i), hashes[i]) {
				list = append(list, parOut{pos: i, row: out.Tuples[len(out.Tuples)-1]})
			}
		}
		lists[w] = list
	})
	res := NewRelation("", p1.Reg, p1.Attrs...)
	mergeOrdered(res, lists)
	return res
}

// ParProject is the partitioned Project primitive p[X]: identical to
// Project cell for cell and row for row, evaluated over parts hash
// partitions. Project itself dispatches here above the cost threshold.
func (a *Algebra) ParProject(p *Relation, attrs []string, parts int) (*Relation, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]Attr, len(attrs))
	for i, name := range attrs {
		ci, err := p.Col(name)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = p.Attrs[ci]
	}
	if parts < 1 {
		parts = 1
	}
	return a.parProject(parts, p, idx, outAttrs), nil
}

// projHash64 hashes the data portion of t's idx-selected columns — exactly
// the DataHash64 of the projected scratch tuple, without building it.
func projHash64(t Tuple, idx []int) uint64 {
	h := uint64(rel.HashFoldInit)
	for _, ci := range idx {
		h = rel.HashFold(h, t[ci].D.Hash64(rel.Seed))
	}
	return h
}

func (a *Algebra) parProject(parts int, p *Relation, idx []int, outAttrs []Attr) *Relation {
	pool := a.parPool()
	n := len(p.Tuples)
	hashes := make([]uint64, n)
	pool.Do(morselCount(n), func(m int) {
		lo, hi := morselRange(n, m)
		for i := lo; i < hi; i++ {
			hashes[i] = projHash64(p.Tuples[i], idx)
		}
	})
	pos := partitionPositions(pool, parts, hashes, func(h uint64) int { return rel.PartitionOf(h, parts) })
	lists := make([][]parOut, parts)
	pool.Do(parts, func(w int) {
		out := NewRelation("", p.Reg, outAttrs...)
		ix := newDataIndex(len(pos[w]))
		scratch := make(Tuple, len(idx))
		var list []parOut
		for _, pi := range pos[w] {
			i := int(pi)
			for j, ci := range idx {
				scratch[j] = p.Tuples[i][ci]
			}
			if dedupInsertHashed(out, ix, scratch, hashes[i]) {
				list = append(list, parOut{pos: i, row: out.Tuples[len(out.Tuples)-1]})
			}
		}
		lists[w] = list
	})
	res := NewRelation("", p.Reg, outAttrs...)
	mergeOrdered(res, lists)
	return res
}

// ParDifference is the partitioned Difference primitive p1 − p2: identical
// to Difference cell for cell and row for row. Difference itself dispatches
// here above the cost threshold.
func (a *Algebra) ParDifference(p1, p2 *Relation, parts int) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: difference of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts < 1 {
		parts = 1
	}
	return a.parDifference(parts, p1, p2), nil
}

// originUnionPar computes p(o) with a parallel morsel reduction.
func originUnionPar(pool *exec.Pool, p *Relation) sourceset.Set {
	n := len(p.Tuples)
	m := morselCount(n)
	partials := make([]sourceset.Set, m)
	pool.Do(m, func(mi int) {
		lo, hi := morselRange(n, mi)
		var s sourceset.Set
		for i := lo; i < hi; i++ {
			s = s.Union(p.Tuples[i].OriginUnion())
		}
		partials[mi] = s
	})
	var s sourceset.Set
	for _, part := range partials {
		s = s.Union(part)
	}
	return s
}

func (a *Algebra) parDifference(parts int, p1, p2 *Relation) *Relation {
	pool := a.parPool()
	drop, _ := buildPartitionedDataIndex(pool, parts, p2.Tuples)
	h1 := hashAll(pool, len(p1.Tuples), func(i int) Tuple { return p1.Tuples[i] })
	pos := partitionPositions(pool, parts, h1, drop.Partition)
	p2o := originUnionPar(pool, p2)
	lists := make([][]parOut, parts)
	pool.Do(parts, func(w int) {
		out := NewRelation("", p1.Reg, p1.Attrs...)
		seen := newDataIndex(len(pos[w]))
		var list []parOut
		for _, pi := range pos[w] {
			i := int(pi)
			h := h1[i]
			t := p1.Tuples[i]
			if _, gone := drop.Find(h, func(at int) bool { return p2.Tuples[at].DataEqual(t) }); gone {
				continue
			}
			if _, dup := seen.find(out.Tuples, t, h); dup {
				continue
			}
			row := out.NewRow(len(t))
			for ci, c := range t {
				row[ci] = c.WithIntermediate(p2o)
			}
			seen.add(h, len(out.Tuples))
			out.Tuples = append(out.Tuples, row)
			list = append(list, parOut{pos: i, row: row})
		}
		lists[w] = list
	})
	res := NewRelation("", p1.Reg, p1.Attrs...)
	mergeOrdered(res, lists)
	return res
}

// ParIntersect is the partitioned Intersection: identical to Intersect cell
// for cell and row for row. Intersect itself dispatches here above the cost
// threshold.
func (a *Algebra) ParIntersect(p1, p2 *Relation, parts int) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: intersect of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts < 1 {
		parts = 1
	}
	return a.parIntersect(parts, p1, p2), nil
}

func (a *Algebra) parIntersect(parts int, p1, p2 *Relation) *Relation {
	pool := a.parPool()
	index, _ := buildPartitionedDataIndex(pool, parts, p2.Tuples)
	h1 := hashAll(pool, len(p1.Tuples), func(i int) Tuple { return p1.Tuples[i] })
	positions := partitionPositions(pool, parts, h1, index.Partition)
	lists := make([][]parOut, parts)
	pool.Do(parts, func(w int) {
		out := NewRelation("", p1.Reg, p1.Attrs...)
		pos := newDataIndex(len(positions[w]))
		scratch := make(Tuple, p1.Degree())
		var list []parOut
		for _, pi := range positions[w] {
			i := int(pi)
			h := h1[i]
			t := p1.Tuples[i]
			matched := false
			row := scratch[:len(t)]
			index.ForEach(h, func(mi int) bool {
				m := p2.Tuples[mi]
				if !m.DataEqual(t) {
					return true
				}
				if !matched {
					matched = true
					copy(row, t)
				}
				mediators := t.OriginUnion().Union(m.OriginUnion())
				for ci := range row {
					row[ci] = row[ci].MergeTags(m[ci]).WithIntermediate(mediators)
				}
				return true
			})
			if !matched {
				continue
			}
			if dedupInsertHashed(out, pos, row, h) {
				list = append(list, parOut{pos: i, row: out.Tuples[len(out.Tuples)-1]})
			}
		}
		lists[w] = list
	})
	res := NewRelation("", p1.Reg, p1.Attrs...)
	mergeOrdered(res, lists)
	return res
}

// joinIndex is what a hash-join probe needs from a build-side index; the
// serial CSR/map idIndex and the partitioned parIDIndex both satisfy it.
type joinIndex interface {
	lookup(id uint64) []int32
}

// idPartMix spreads the resolver's dense sequential canonical IDs across
// the 64-bit space (Fibonacci hashing) so rel.PartitionOf — which reads
// high bits — balances the ID partitions.
const idPartMix = 0x9E3779B97F4A7C15

func idPartOf(id uint64, parts int) int {
	return rel.PartitionOf(id*idPartMix, parts)
}

// parIDIndex is the partitioned build-side hash-join index: partition w
// holds only canonical IDs with idPartOf(id) == w, so the parallel build
// shares no state between workers. Within a bucket, positions stay in build
// order — the serial probe order.
type parIDIndex struct {
	shards []map[uint64][]int32
}

// buildParIDIndex computes the build side's canonical IDs in parallel
// morsels (CanonicalID is safe for concurrent use and interns one stable ID
// per canonical form) and builds the parts shards in parallel.
func buildParIDIndex(pool *exec.Pool, parts int, res identity.Resolver, tuples []Tuple, yi int) parIDIndex {
	n := len(tuples)
	ids := make([]uint64, n)
	pool.Do(morselCount(n), func(m int) {
		lo, hi := morselRange(n, m)
		for i := lo; i < hi; i++ {
			if tuples[i][yi].D.IsNull() {
				ids[i] = 0 // resolver IDs start at 1; 0 marks "skip"
				continue
			}
			ids[i] = res.CanonicalID(tuples[i][yi].D)
		}
	})
	pos := partitionPositions(pool, parts, ids, func(id uint64) int {
		if id == 0 {
			return -1 // null build key: indexed nowhere
		}
		return idPartOf(id, parts)
	})
	ix := parIDIndex{shards: make([]map[uint64][]int32, parts)}
	pool.Do(parts, func(w int) {
		shard := make(map[uint64][]int32, len(pos[w]))
		for _, pi := range pos[w] {
			id := ids[pi]
			shard[id] = append(shard[id], pi)
		}
		ix.shards[w] = shard
	})
	return ix
}

func (ix parIDIndex) lookup(id uint64) []int32 {
	return ix.shards[idPartOf(id, len(ix.shards))][id]
}

// ParJoin is the partitioned hash Join p1[x = y]p2: identical to Join cell
// for cell and row for row. Join itself dispatches here above the cost
// threshold; non-equality θ falls back to the primitive composition, same
// as Join.
func (a *Algebra) ParJoin(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string, parts int) (*Relation, error) {
	if theta != rel.ThetaEQ {
		return a.JoinViaPrimitives(p1, x, theta, p2, y)
	}
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	attrs := joinAttrs(p1.Attrs, xi, p2.Name, p2.Attrs, yi, coalesce)
	if parts < 1 {
		parts = 1
	}
	return a.parJoin(parts, p1, xi, p2, yi, coalesce, attrs), nil
}

// parJoin: parallel partitioned build over p2, then a parallel probe over
// p1 in order-preserving morsels. The probe is embarrassingly parallel —
// the built index is read-only and each morsel's output concatenates in
// morsel order, reproducing the serial probe order exactly.
func (a *Algebra) parJoin(parts int, p1 *Relation, xi int, p2 *Relation, yi int, coalesce bool, attrs []Attr) *Relation {
	pool := a.parPool()
	res := a.Resolver()
	index := buildParIDIndex(pool, parts, res, p2.Tuples, yi)
	n := len(p1.Tuples)
	m := morselCount(n)
	outs := make([][]Tuple, m)
	pool.Do(m, func(mi int) {
		lo, hi := morselRange(n, mi)
		scratch := NewRelation("", p1.Reg, attrs...) // morsel-local arena
		var rows []Tuple
		for i := lo; i < hi; i++ {
			t1 := p1.Tuples[i]
			if t1[xi].D.IsNull() {
				continue
			}
			for _, pi := range index.lookup(res.CanonicalID(t1[xi].D)) {
				rows = append(rows, a.joinRow(scratch, t1, xi, p2.Tuples[pi], yi, coalesce))
			}
		}
		outs[mi] = rows
	})
	out := NewRelation("", p1.Reg, attrs...)
	total := 0
	for _, rows := range outs {
		total += len(rows)
	}
	out.Tuples = make([]Tuple, 0, total)
	for _, rows := range outs {
		out.Tuples = append(out.Tuples, rows...)
	}
	return out
}

// ---------------------------------------------------------------------------
// ParallelCursor: the streaming engine's fan-out/re-sequence stage.

// parBatch is one processed output chunk handed from a worker to the
// consumer.
type parBatch struct {
	rows []Tuple
	err  error
}

// slotChunkDepth bounds how many output chunks one in-flight input batch
// may buffer ahead of the consumer. Together with the slot depth and fn's
// per-chunk cap it bounds the cursor's peak buffered rows — a high-fanout
// join cannot materialize a whole batch's expansion at once; its worker
// blocks on emit until the consumer catches up.
const slotChunkDepth = 2

// parallelCursor fans input batches out to pool workers through fn and
// re-sequences the results to input order: a dispatcher pulls batches,
// queues one result slot per batch (bounding the batches in flight), and
// hands the batch to a pool worker, which streams its output chunks into
// the slot; Next consumes slots in queue order, chunks in emit order, so
// output order is input order regardless of which worker finishes first.
type parallelCursor struct {
	header
	in     Cursor
	pool   *exec.Pool
	fn     func(batch []Tuple, emit func([]Tuple) bool) error
	slots  chan chan parBatch
	cur    chan parBatch // slot currently being consumed
	stop   chan struct{}
	done   chan struct{}
	err    error
	closed bool
}

// ParallelCursor wraps in so that fn runs on pool workers, up to depth
// input batches ahead of and concurrently with the consumer, with output
// re-sequenced to input order. fn processes one input batch and hands its
// output to emit chunk by chunk (rel.DefaultBatchSize-ish chunks; empty
// chunks are dropped); emit applies flow control and returns false when
// the cursor is closing, at which point fn must abandon its batch. fn
// must be safe for concurrent invocation on distinct batches, and each
// emitted chunk must be immutable once handed over. The first error —
// fn's or the input's, io.EOF included — is delivered in input order and
// latches.
func ParallelCursor(in Cursor, pool *exec.Pool, depth int, fn func(batch []Tuple, emit func([]Tuple) bool) error) Cursor {
	if depth < 1 {
		depth = 1
	}
	c := &parallelCursor{
		header: header{name: in.Name(), attrs: in.Attrs(), reg: in.Registry()},
		in:     in,
		pool:   pool,
		fn:     fn,
		slots:  make(chan chan parBatch, depth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.dispatch()
	return c
}

func (c *parallelCursor) dispatch() {
	defer close(c.done)
	defer close(c.slots)
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		batch, err := c.in.Next()
		if err != nil {
			slot := make(chan parBatch, 1)
			slot <- parBatch{err: err}
			close(slot)
			select {
			case c.slots <- slot:
			case <-c.stop:
			}
			return
		}
		slot := make(chan parBatch, slotChunkDepth)
		select {
		case c.slots <- slot: // blocks at depth batches in flight
		case <-c.stop:
			return
		}
		b := batch
		c.pool.Submit(func() {
			defer close(slot)
			ferr := c.fn(b, func(rows []Tuple) bool {
				if len(rows) == 0 {
					return true
				}
				select {
				case slot <- parBatch{rows: rows}:
					return true
				case <-c.stop:
					return false
				}
			})
			if ferr != nil {
				select {
				case slot <- parBatch{err: ferr}:
				case <-c.stop:
				}
			}
		})
	}
}

func (c *parallelCursor) Next() ([]Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	for {
		if c.cur == nil {
			slot, ok := <-c.slots
			if !ok {
				// Dispatcher stopped without a terminal slot (Close raced
				// it): treat as exhaustion.
				c.err = io.EOF
				return nil, io.EOF
			}
			c.cur = slot
		}
		pb, ok := <-c.cur
		if !ok {
			c.cur = nil // slot exhausted; move to the next input batch
			continue
		}
		if pb.err != nil {
			c.err = pb.err
			return nil, pb.err
		}
		return pb.rows, nil // emit drops empty chunks
	}
}

func (c *parallelCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.err = io.EOF
	close(c.stop)
	select {
	case <-c.done:
		return c.in.Close()
	default:
		// The dispatcher may be parked inside in.Next (a stalled remote
		// stream). Close the inner cursor the moment it returns, off the
		// caller's goroutine — same policy as rel.Prefetch.
		go func() {
			<-c.done
			c.in.Close()
		}()
		return nil
	}
}
