package core

import (
	"fmt"
	"io"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// This file implements the streaming execution engine for the polygen
// algebra: every operator consumes Cursors and is one, so a plan runs as a
// tree of cursors with batches flowing through it instead of a sequence of
// fully materialized relations. Each operator pipelines as far as its §II
// semantics allow:
//
//   - Select, Restrict and Product are fully pipelined: one input batch (plus,
//     for Product, the materialized right operand) is in flight at a time.
//   - Join and Difference build their hash side (the right operand) by
//     draining its cursor, then stream the probe side batch-at-a-time.
//   - Project, Union and Intersect consume their inputs batch-at-a-time but
//     emit only at end-of-input: collapsing duplicate data portions unions
//     tag sets into already-accepted tuples (paper §II), so no tuple's tags
//     are final until all input has been seen. Their memory is bounded by
//     the deduplicated output, not by the inputs.
//   - Merge is a pipeline breaker: the Outer Natural Total Join fold rescans
//     its accumulator, so the operands are materialized and the merged
//     result is streamed out.
//
// The operators share the materializing engine's kernels — dedupInsert
// set-semantics insertion, interned-ID join probes, arena rows — and the
// property suite (property_test.go) proves streaming, materializing and
// string-keyed reference engines agree cell for cell, data and both tag
// sets.

// streamFilter implements the fully pipelined operators (Select, Restrict):
// tuples that satisfy keep survive with the mediators' origins added to
// every cell's intermediate set.
type streamFilter struct {
	header
	in   Cursor
	out  *Relation // arena holder for output rows
	keep func(Tuple) bool
	med  func(Tuple) sourceset.Set
}

func (c *streamFilter) Next() ([]Tuple, error) {
	for {
		batch, err := c.in.Next()
		if err != nil {
			return nil, err
		}
		var rows []Tuple
		for _, t := range batch {
			if !c.keep(t) {
				continue
			}
			med := c.med(t)
			row := c.out.NewRow(len(t))
			for i, cell := range t {
				row[i] = cell.WithIntermediate(med)
			}
			rows = append(rows, row)
		}
		if len(rows) > 0 {
			return rows, nil
		}
	}
}

func (c *streamFilter) Close() error { return c.in.Close() }

// StreamSelect is the streaming Select primitive p[x θ const]: fully
// pipelined, semantics identical to Select.
func (a *Algebra) StreamSelect(in Cursor, x string, theta rel.Theta, constant rel.Value) (Cursor, error) {
	xi, err := colIn(in.Name(), in.Attrs(), x)
	if err != nil {
		in.Close()
		return nil, err
	}
	return &streamFilter{
		header: header{attrs: in.Attrs(), reg: in.Registry()},
		in:     in,
		out:    NewRelation("", in.Registry(), in.Attrs()...),
		keep:   func(t Tuple) bool { return theta.Eval(t[xi].D, constant) },
		med:    func(t Tuple) sourceset.Set { return t[xi].O },
	}, nil
}

// StreamRestrict is the streaming Restrict primitive p[x θ y]: fully
// pipelined, semantics identical to Restrict.
func (a *Algebra) StreamRestrict(in Cursor, x string, theta rel.Theta, y string) (Cursor, error) {
	xi, err := colIn(in.Name(), in.Attrs(), x)
	if err != nil {
		in.Close()
		return nil, err
	}
	yi, err := colIn(in.Name(), in.Attrs(), y)
	if err != nil {
		in.Close()
		return nil, err
	}
	return &streamFilter{
		header: header{attrs: in.Attrs(), reg: in.Registry()},
		in:     in,
		out:    NewRelation("", in.Registry(), in.Attrs()...),
		keep:   func(t Tuple) bool { return a.evalTheta(t[xi].D, theta, t[yi].D) },
		med:    func(t Tuple) sourceset.Set { return t[xi].O.Union(t[yi].O) },
	}, nil
}

// deferredStream consumes its inputs on the first Next call (via build,
// which must close them) and then streams the built relation. It is the
// shape of the semi-blocking operators: input is never materialized as a
// whole, but output emission waits for end-of-input. A build failure is
// sticky: every subsequent Next returns it again.
type deferredStream struct {
	header
	ins   []Cursor
	build func() (*Relation, error)
	emit  Cursor
	built bool
	err   error
}

func (c *deferredStream) Next() ([]Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if !c.built {
		c.built = true
		p, err := c.build()
		if err != nil {
			c.err = err
			return nil, err
		}
		c.emit = NewRelationCursor(p, rel.DefaultBatchSize)
	}
	batch, err := c.emit.Next()
	if err != nil {
		c.err = err
	}
	return batch, err
}

func (c *deferredStream) Close() error {
	if c.built {
		return nil // build already closed the inputs
	}
	c.built = true
	c.err = io.EOF
	return closeAll(c.ins)
}

// probeStream is the common state of the build-then-probe operators (Join,
// Difference, Product): the right operand r is drained on the first Next,
// then the left l is streamed through it. Errors — the build failure, a
// probe-side failure, and exhaustion — latch into err so a retried Next
// cannot observe half-built state.
type probeStream struct {
	header
	l, r  Cursor
	built bool
	err   error
}

// fail latches err and returns it.
func (c *probeStream) fail(err error) ([]Tuple, error) {
	c.err = err
	return nil, err
}

func (c *probeStream) Close() error {
	c.err = io.EOF
	err := c.l.Close()
	if !c.built {
		c.built = true
		if rerr := c.r.Close(); err == nil {
			err = rerr
		}
	}
	return err
}

// StreamProject is the streaming Project primitive p[X]: input consumed
// batch-at-a-time, duplicates collapsed with tag unions as they arrive, the
// deduplicated result emitted at end-of-input.
func (a *Algebra) StreamProject(in Cursor, attrs []string) (Cursor, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]Attr, len(attrs))
	for i, name := range attrs {
		ci, err := colIn(in.Name(), in.Attrs(), name)
		if err != nil {
			in.Close()
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = in.Attrs()[ci]
	}
	reg := in.Registry()
	build := func() (*Relation, error) {
		if mem := a.memActive(); mem != nil {
			d := newDedupSpill(mem, outAttrs, reg)
			defer d.release()
			scratch := make(Tuple, len(idx))
			err := consumeErr(in, func(t Tuple) error {
				for i, ci := range idx {
					scratch[i] = t[ci]
				}
				return d.add(scratch)
			})
			if err != nil {
				return nil, err
			}
			return d.result()
		}
		out := NewRelation("", reg, outAttrs...)
		ix := newDataIndex(rel.DefaultBatchSize)
		scratch := make(Tuple, len(idx))
		err := consume(in, func(t Tuple) {
			for i, ci := range idx {
				scratch[i] = t[ci]
			}
			dedupInsert(out, ix, scratch)
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return &deferredStream{
		header: header{attrs: outAttrs, reg: reg},
		ins:    []Cursor{in},
		build:  build,
	}, nil
}

// StreamUnion is the streaming Union primitive: both inputs consumed
// batch-at-a-time into the dedup table (tag unions on duplicate data), the
// result emitted at end-of-input.
func (a *Algebra) StreamUnion(l, r Cursor) (Cursor, error) {
	if len(l.Attrs()) != len(r.Attrs()) {
		closeAll([]Cursor{l, r})
		return nil, fmt.Errorf("core: union of degree %d with degree %d", len(l.Attrs()), len(r.Attrs()))
	}
	attrs := l.Attrs()
	reg := l.Registry()
	build := func() (*Relation, error) {
		if mem := a.memActive(); mem != nil {
			d := newDedupSpill(mem, attrs, reg)
			defer d.release()
			if err := consumeErr(l, d.add); err != nil {
				r.Close()
				return nil, err
			}
			if err := consumeErr(r, d.add); err != nil {
				return nil, err
			}
			return d.result()
		}
		out := NewRelation("", reg, attrs...)
		ix := newDataIndex(rel.DefaultBatchSize)
		if err := consume(l, func(t Tuple) { dedupInsert(out, ix, t) }); err != nil {
			r.Close()
			return nil, err
		}
		if err := consume(r, func(t Tuple) { dedupInsert(out, ix, t) }); err != nil {
			return nil, err
		}
		return out, nil
	}
	return &deferredStream{
		header: header{attrs: attrs, reg: reg},
		ins:    []Cursor{l, r},
		build:  build,
	}, nil
}

// StreamIntersect is the streaming Intersection: the right operand is
// drained into a hash index, the left is consumed batch-at-a-time against
// it, and — because matching merges tags into already-accepted tuples — the
// result is emitted at end-of-input.
func (a *Algebra) StreamIntersect(l, r Cursor) (Cursor, error) {
	if len(l.Attrs()) != len(r.Attrs()) {
		closeAll([]Cursor{l, r})
		return nil, fmt.Errorf("core: intersect of degree %d with degree %d", len(l.Attrs()), len(r.Attrs()))
	}
	attrs := l.Attrs()
	reg := l.Registry()
	degree := len(attrs)
	build := func() (*Relation, error) {
		p2, err := Drain(r)
		if err != nil {
			l.Close()
			return nil, err
		}
		index := newDataIndex(len(p2.Tuples))
		for i, t := range p2.Tuples {
			index.add(t.DataHash64(), i)
		}
		out := NewRelation("", reg, attrs...)
		pos := newDataIndex(rel.DefaultBatchSize)
		scratch := make(Tuple, 0, degree)
		err = consume(l, func(t Tuple) {
			h := t.DataHash64()
			matched := false
			row := scratch[:len(t)]
			index.ForEach(h, func(mi int) bool {
				m := p2.Tuples[mi]
				if !m.DataEqual(t) {
					return true
				}
				if !matched {
					matched = true
					copy(row, t)
				}
				mediators := t.OriginUnion().Union(m.OriginUnion())
				for i := range row {
					row[i] = row[i].MergeTags(m[i]).WithIntermediate(mediators)
				}
				return true
			})
			if !matched {
				return
			}
			dedupInsert(out, pos, row)
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return &deferredStream{
		header: header{attrs: attrs, reg: reg},
		ins:    []Cursor{l, r},
		build:  build,
	}, nil
}

// differenceStream is the streaming Difference p1 − p2: p2 drained into the
// drop index on the first Next, then p1 streamed through it — surviving
// first occurrences are emitted batch-at-a-time with p2(o) added to their
// intermediate sets.
type differenceStream struct {
	probeStream
	a    *Algebra
	out  *Relation
	drop func(t Tuple, h uint64) bool
	p2o  sourceset.Set
	seen dataIndex
	// spill, when non-nil, is the budgeted build: the drop side partitioned
	// by data hash with overflow partitions on disk (spill.go). Probe rows
	// hashing to a spilled partition are deferred to probes and anti-joined
	// partition-locally once the probe side is exhausted.
	spill     *spillParts
	probes    []*spillFile
	spillDone bool
}

// StreamDifference is the streaming Difference primitive. On a
// parallel-configured algebra, a build side at or above the cost threshold
// is hashed and radix-partitioned across the worker pool (the probe stays
// serial: its first-occurrence dedup is inherently sequential state).
func (a *Algebra) StreamDifference(l, r Cursor) (Cursor, error) {
	if len(l.Attrs()) != len(r.Attrs()) {
		closeAll([]Cursor{l, r})
		return nil, fmt.Errorf("core: difference of degree %d with degree %d", len(l.Attrs()), len(r.Attrs()))
	}
	return &differenceStream{
		probeStream: probeStream{
			header: header{attrs: l.Attrs(), reg: l.Registry()},
			l:      l,
			r:      r,
		},
		a:    a,
		out:  NewRelation("", l.Registry(), l.Attrs()...),
		seen: newDataIndex(rel.DefaultBatchSize),
	}, nil
}

func (c *differenceStream) Next() ([]Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if !c.built {
		c.built = true
		if mem := c.a.memActive(); mem != nil {
			if err := c.buildSpilled(mem); err != nil {
				return c.fail(err)
			}
			return c.probe()
		}
		p2, err := Drain(c.r)
		if err != nil {
			return c.fail(err)
		}
		if parts := c.a.parParts(len(p2.Tuples)); parts > 1 {
			pool := c.a.parPool()
			ix, _ := buildPartitionedDataIndex(pool, parts, p2.Tuples)
			c.drop = func(t Tuple, h uint64) bool {
				_, gone := ix.Find(h, func(at int) bool { return p2.Tuples[at].DataEqual(t) })
				return gone
			}
			c.p2o = originUnionPar(pool, p2)
		} else {
			ix := newDataIndex(len(p2.Tuples))
			for i, t := range p2.Tuples {
				ix.add(t.DataHash64(), i)
			}
			c.drop = func(t Tuple, h uint64) bool {
				_, gone := ix.find(p2.Tuples, t, h)
				return gone
			}
			c.p2o = p2.OriginUnion()
		}
	}
	return c.probe()
}

// probe streams the left operand through the drop index, deferring rows
// that hash to spilled partitions, and finishes with the disk phase.
func (c *differenceStream) probe() ([]Tuple, error) {
	for {
		batch, err := c.l.Next()
		if err != nil {
			if err == io.EOF && c.spill != nil && !c.spillDone {
				rows, derr := c.drainSpilled()
				if derr != nil {
					return c.fail(derr)
				}
				if len(rows) > 0 {
					c.err = io.EOF
					return rows, nil
				}
			}
			return c.fail(err)
		}
		start := len(c.out.Tuples)
		for _, t := range batch {
			h := t.DataHash64()
			if c.spill != nil && c.spill.spilled(rel.PartitionOf(h, c.spill.parts())) {
				if err := c.deferProbe(t, h); err != nil {
					return c.fail(err)
				}
				continue
			}
			if c.drop(t, h) {
				continue
			}
			if _, dup := c.seen.find(c.out.Tuples, t, h); dup {
				continue
			}
			row := c.out.NewRow(len(t))
			for i, cell := range t {
				row[i] = cell.WithIntermediate(c.p2o)
			}
			c.seen.add(h, len(c.out.Tuples))
			c.out.Tuples = append(c.out.Tuples, row)
		}
		if len(c.out.Tuples) > start {
			return c.out.Tuples[start:len(c.out.Tuples):len(c.out.Tuples)], nil
		}
	}
}

// buildSpilled drains the drop side into a budget-bounded partition set,
// accumulating the p2(o) intermediate union as it goes (exact regardless of
// which partitions stay resident), then indexes the resident rows.
func (c *differenceStream) buildSpilled(mem *Memory) error {
	sp := newSpillParts(mem, c.r.Name(), c.r.Attrs(), c.r.Registry())
	err := consumeErr(c.r, func(t Tuple) error {
		c.p2o = c.p2o.Union(t.OriginUnion())
		return sp.add(rel.PartitionOf(t.DataHash64(), sp.parts()), t)
	})
	if err != nil {
		sp.release()
		return err
	}
	memT := sp.memTuples()
	ix := newDataIndex(len(memT))
	for i, t := range memT {
		ix.add(t.DataHash64(), i)
	}
	c.drop = func(t Tuple, h uint64) bool {
		_, gone := ix.find(memT, t, h)
		return gone
	}
	if sp.anySpilled() {
		c.spill = sp
		c.probes = make([]*spillFile, sp.parts())
	} else {
		sp.release()
	}
	return nil
}

// deferProbe routes a probe row whose data hash lands in a spilled drop
// partition to that partition's probe file. Its duplicates co-partition, so
// skipping the global seen dedup here cannot double-emit.
func (c *differenceStream) deferProbe(t Tuple, h uint64) error {
	p := rel.PartitionOf(h, c.spill.parts())
	if c.probes[p] == nil {
		f, err := newSpillFile(c.spill.mem, "", c.attrs, c.reg)
		if err != nil {
			return err
		}
		c.probes[p] = f
	}
	return c.probes[p].add(t)
}

// drainSpilled runs the disk phase: each spilled drop partition is reloaded
// and its deferred probe rows anti-joined against it, survivors emitted
// with the (already complete) p2(o) union in their intermediate sets.
func (c *differenceStream) drainSpilled() ([]Tuple, error) {
	c.spillDone = true
	start := len(c.out.Tuples)
	for p := 0; p < c.spill.parts(); p++ {
		pf := c.probes[p]
		if pf == nil {
			continue // no probe rows hashed here: nothing can survive
		}
		drops, err := c.spill.files[p].load()
		if err != nil {
			return nil, err
		}
		ix := newDataIndex(len(drops))
		for i, t := range drops {
			ix.add(t.DataHash64(), i)
		}
		probe, err := pf.load()
		if err != nil {
			return nil, err
		}
		pf.discard()
		c.probes[p] = nil
		for _, t := range probe {
			h := t.DataHash64()
			if _, gone := ix.find(drops, t, h); gone {
				continue
			}
			if _, dup := c.seen.find(c.out.Tuples, t, h); dup {
				continue
			}
			row := c.out.NewRow(len(t))
			for i, cell := range t {
				row[i] = cell.WithIntermediate(c.p2o)
			}
			c.seen.add(h, len(c.out.Tuples))
			c.out.Tuples = append(c.out.Tuples, row)
		}
	}
	c.spill.release()
	return c.out.Tuples[start:len(c.out.Tuples):len(c.out.Tuples)], nil
}

// Close releases any spill segments still on disk.
func (c *differenceStream) Close() error {
	c.spill.release()
	for _, f := range c.probes {
		f.discard()
	}
	c.probes = nil
	return c.probeStream.Close()
}

// joinStream is the streaming hash Join for θ = "=": the right operand is
// drained into the interned-ID index on the first Next, then the left is
// streamed through it, joined rows emitted in batches capped at
// DefaultBatchSize — a skewed many-to-many key cannot blow one Next() up
// to the full fan-out.
type joinStream struct {
	probeStream
	a        *Algebra
	xi, yi   int
	coalesce bool
	out      *Relation
	p2       *Relation
	index    joinIndex
	// delegate, when set after the build, is the parallel probe path: a
	// ParallelCursor fanning left batches out to pool workers and
	// re-sequencing their joined rows to input order.
	delegate Cursor
	cur      []Tuple // current left batch
	li       int     // current left tuple within cur
	matches  []int32 // pending build-side matches of cur[li]
	mi       int     // next match to emit
	// bspill, when non-nil, is the hybrid-hash state (spill.go): the build
	// side partitioned by canonical key ID with overflow partitions on
	// disk. Resident partitions are indexed in index/p2 and probed in
	// stream; probe rows keyed into spilled partitions are deferred to
	// probes and joined partition-at-a-time once the left is exhausted
	// (leftDone), p2/index swapping to each reloaded partition in turn.
	bspill   *spillParts
	probes   []*spillFile
	leftDone bool
	nextPart int
}

// StreamJoin is the streaming derived Join operator p1[x θ y]p2. For θ = "="
// it is a hash join that builds on the right and streams the left; for
// other θ it falls back to the primitive composition over the drained
// operands (semantics identical to JoinViaPrimitives), emitting the result
// as a stream.
func (a *Algebra) StreamJoin(l Cursor, x string, theta rel.Theta, r Cursor, y string) (Cursor, error) {
	xi, err := colIn(l.Name(), l.Attrs(), x)
	if err != nil {
		closeAll([]Cursor{l, r})
		return nil, err
	}
	yi, err := colIn(r.Name(), r.Attrs(), y)
	if err != nil {
		closeAll([]Cursor{l, r})
		return nil, err
	}
	coalesce := joinCoalesces(l.Attrs()[xi], r.Attrs()[yi])
	attrs := joinAttrs(l.Attrs(), xi, r.Name(), r.Attrs(), yi, coalesce)
	reg := l.Registry()
	if theta != rel.ThetaEQ {
		build := func() (*Relation, error) {
			p1, err := Drain(l)
			if err != nil {
				r.Close()
				return nil, err
			}
			p2, err := Drain(r)
			if err != nil {
				return nil, err
			}
			return a.JoinViaPrimitives(p1, x, theta, p2, y)
		}
		return &deferredStream{
			header: header{attrs: attrs, reg: reg},
			ins:    []Cursor{l, r},
			build:  build,
		}, nil
	}
	return &joinStream{
		probeStream: probeStream{
			header: header{attrs: attrs, reg: reg},
			l:      l,
			r:      r,
		},
		a:        a,
		xi:       xi,
		yi:       yi,
		coalesce: coalesce,
		out:      NewRelation("", reg, attrs...),
	}, nil
}

func (c *joinStream) Next() ([]Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if !c.built {
		c.built = true
		if mem := c.a.memActive(); mem != nil {
			if err := c.buildSpilled(mem); err != nil {
				return c.fail(err)
			}
		} else {
			p2, err := Drain(c.r)
			if err != nil {
				return c.fail(err)
			}
			c.p2 = p2
			if parts := c.a.parParts(len(p2.Tuples)); parts > 1 {
				// Parallel partitioned build, then fan the probe out: each left
				// batch joins against the (now read-only) index on a pool
				// worker; re-sequencing keeps the serial engine's row order.
				pool := c.a.parPool()
				c.index = buildParIDIndex(pool, parts, c.a.Resolver(), p2.Tuples, c.yi)
				c.delegate = ParallelCursor(c.l, pool, 2*pool.Workers(), c.probeBatch)
			} else {
				c.index = newIDIndex(c.a.Resolver(), p2.Tuples, c.yi)
			}
		}
	}
	if c.delegate != nil {
		rows, err := c.delegate.Next()
		if err != nil {
			c.err = err
			return nil, err
		}
		return rows, nil
	}
	res := c.a.Resolver()
	rows := make([]Tuple, 0, rel.DefaultBatchSize)
	for {
		// Emit pending matches of the current left tuple, up to the cap.
		for c.mi < len(c.matches) && len(rows) < rel.DefaultBatchSize {
			rows = append(rows, c.a.joinRow(c.out, c.cur[c.li], c.xi, c.p2.Tuples[c.matches[c.mi]], c.yi, c.coalesce))
			c.mi++
		}
		if len(rows) >= rel.DefaultBatchSize {
			return rows, nil
		}
		// Advance to the next left tuple, pulling the next batch at the end
		// (tolerating empty batches, though cursors do not produce them).
		c.li++
		for c.li >= len(c.cur) {
			batch, err := c.nextProbe()
			if err != nil {
				if err == io.EOF && len(rows) > 0 {
					c.err = io.EOF
					return rows, nil
				}
				return c.fail(err)
			}
			c.cur, c.li = batch, 0
		}
		t1 := c.cur[c.li]
		c.matches, c.mi = nil, 0
		if !t1[c.xi].D.IsNull() {
			id := res.CanonicalID(t1[c.xi].D)
			if c.bspill != nil && !c.leftDone {
				if p := idPartOf(id, c.bspill.parts()); c.bspill.spilled(p) {
					if err := c.deferProbe(p, t1); err != nil {
						return c.fail(err)
					}
					continue
				}
			}
			c.matches = c.index.lookup(id)
		}
	}
}

// buildSpilled drains the build side into a budget-bounded partition set
// keyed by canonical join-key ID (null keys, which can never match, ride in
// partition 0), then indexes the resident rows. If nothing overflowed, the
// result is the plain serial hash join over exactly the drained rows.
func (c *joinStream) buildSpilled(mem *Memory) error {
	res := c.a.Resolver()
	name, attrs, reg := c.r.Name(), c.r.Attrs(), c.r.Registry()
	sp := newSpillParts(mem, name, attrs, reg)
	err := consumeErr(c.r, func(t Tuple) error {
		p := 0
		if !t[c.yi].D.IsNull() {
			p = idPartOf(res.CanonicalID(t[c.yi].D), sp.parts())
		}
		return sp.add(p, t)
	})
	if err != nil {
		sp.release()
		return err
	}
	memT := sp.memTuples()
	c.p2 = NewRelation(name, reg, attrs...)
	c.p2.Tuples = memT
	c.index = newIDIndex(res, memT, c.yi)
	if sp.anySpilled() {
		c.bspill = sp
		c.probes = make([]*spillFile, sp.parts())
	} else {
		sp.release()
	}
	return nil
}

// deferProbe routes a probe row whose key lands in a spilled build
// partition to that partition's probe file.
func (c *joinStream) deferProbe(p int, t Tuple) error {
	if c.probes[p] == nil {
		f, err := newSpillFile(c.bspill.mem, c.l.Name(), c.l.Attrs(), c.reg)
		if err != nil {
			return err
		}
		c.probes[p] = f
	}
	return c.probes[p].add(t)
}

// nextProbe returns the next probe batch: left batches while the left
// lasts, then — in hybrid mode — each spilled partition's deferred probe
// rows, with p2 and the index swapped to that partition's reloaded build
// rows first (safe at a batch boundary: all prior matches are emitted).
func (c *joinStream) nextProbe() ([]Tuple, error) {
	if !c.leftDone {
		batch, err := c.l.Next()
		if err != io.EOF || c.bspill == nil {
			return batch, err
		}
		c.leftDone = true
	}
	res := c.a.Resolver()
	for c.nextPart < c.bspill.parts() {
		p := c.nextPart
		c.nextPart++
		pf := c.probes[p]
		if pf == nil {
			continue // no probe rows keyed into this partition
		}
		build, err := c.bspill.files[p].load()
		if err != nil {
			return nil, err
		}
		c.bspill.files[p].discard()
		c.bspill.files[p] = nil
		probe, err := pf.load()
		if err != nil {
			return nil, err
		}
		pf.discard()
		c.probes[p] = nil
		if len(probe) == 0 {
			continue
		}
		c.p2.Tuples = build
		c.index = newIDIndex(res, build, c.yi)
		return probe, nil
	}
	return nil, io.EOF
}

// probeBatch is the ParallelCursor fn of the parallel probe path: join one
// left batch against the built index, emitting DefaultBatchSize-capped
// chunks so a high-fanout key streams through the cursor's flow control
// instead of materializing a batch's whole expansion (the serial path's
// bounded-batch guarantee, kept). Rows are carved from a batch-local arena
// (concurrent workers must not share one relation's arena); the resolver's
// canonical-ID interner is safe for concurrent probes.
func (c *joinStream) probeBatch(batch []Tuple, emit func([]Tuple) bool) error {
	res := c.a.Resolver()
	scratch := NewRelation("", c.reg, c.attrs...)
	rows := make([]Tuple, 0, rel.DefaultBatchSize)
	for _, t1 := range batch {
		if t1[c.xi].D.IsNull() {
			continue
		}
		for _, pi := range c.index.lookup(res.CanonicalID(t1[c.xi].D)) {
			rows = append(rows, c.a.joinRow(scratch, t1, c.xi, c.p2.Tuples[pi], c.yi, c.coalesce))
			if len(rows) >= rel.DefaultBatchSize {
				if !emit(rows) {
					return nil // cursor closing: abandon the batch
				}
				rows = make([]Tuple, 0, rel.DefaultBatchSize)
			}
		}
	}
	emit(rows)
	return nil
}

// Close overrides probeStream.Close: once the parallel probe is delegated,
// the ParallelCursor owns the left cursor (its dispatcher may be inside
// l.Next) and must be the one to close it.
func (c *joinStream) Close() error {
	c.bspill.release()
	for _, f := range c.probes {
		f.discard()
	}
	c.probes = nil
	if c.delegate != nil {
		c.err = io.EOF
		err := c.delegate.Close()
		// built is true whenever delegate is set; r was drained already.
		return err
	}
	return c.probeStream.Close()
}

// productStream is the streaming Cartesian Product: the right operand is
// drained on the first Next, then each left batch is expanded against it,
// emitting at most DefaultBatchSize rows per Next.
type productStream struct {
	probeStream
	out    *Relation
	right  *Relation
	cur    []Tuple // current left batch
	li, ri int
}

// StreamProduct is the streaming Cartesian Product primitive p1 × p2.
func (a *Algebra) StreamProduct(l, r Cursor) (Cursor, error) {
	attrs := productAttrs(l.Attrs(), r.Name(), r.Attrs())
	return &productStream{
		probeStream: probeStream{
			header: header{attrs: attrs, reg: l.Registry()},
			l:      l,
			r:      r,
		},
		out: NewRelation("", l.Registry(), attrs...),
	}, nil
}

func (c *productStream) Next() ([]Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if !c.built {
		c.built = true
		right, err := Drain(c.r)
		if err != nil {
			return c.fail(err)
		}
		c.right = right
	}
	if len(c.right.Tuples) == 0 {
		return c.fail(io.EOF)
	}
	rows := make([]Tuple, 0, rel.DefaultBatchSize)
	for {
		if c.li >= len(c.cur) {
			batch, err := c.l.Next()
			if err == io.EOF {
				c.err = io.EOF
				if len(rows) > 0 {
					return rows, nil
				}
				return nil, io.EOF
			}
			if err != nil {
				return c.fail(err)
			}
			c.cur, c.li, c.ri = batch, 0, 0
		}
		t1 := c.cur[c.li]
		for c.ri < len(c.right.Tuples) && len(rows) < rel.DefaultBatchSize {
			t2 := c.right.Tuples[c.ri]
			row := c.out.NewRow(len(t1) + len(t2))
			copy(row, t1)
			copy(row[len(t1):], t2)
			rows = append(rows, row)
			c.ri++
		}
		if c.ri >= len(c.right.Tuples) {
			c.ri = 0
			c.li++
		}
		if len(rows) >= rel.DefaultBatchSize {
			return rows, nil
		}
	}
}

// StreamMerge is the streaming face of Merge: the Outer Natural Total Join
// fold rescans its accumulator, so the operands are drained (batch-at-a-
// time) and merged eagerly, and the merged relation is streamed out. With
// balanced set the fold is the balanced pairwise tree (MergeBalanced).
func (a *Algebra) StreamMerge(scheme *Scheme, balanced bool, ins ...Cursor) (Cursor, error) {
	rels := make([]*Relation, len(ins))
	for i, c := range ins {
		p, err := Drain(c)
		if err != nil {
			closeAll(ins[i+1:])
			return nil, err
		}
		rels[i] = p
	}
	var m *Relation
	var err error
	if balanced {
		m, err = a.MergeBalanced(scheme, rels...)
	} else {
		m, err = a.Merge(scheme, rels...)
	}
	if err != nil {
		return nil, err
	}
	return CursorOf(m), nil
}

// consume pulls every tuple of c through fn and closes c. It is the input
// loop of the semi-blocking operators.
func consume(c Cursor, fn func(Tuple)) error {
	for {
		batch, err := c.Next()
		if err == io.EOF {
			return c.Close()
		}
		if err != nil {
			c.Close()
			return err
		}
		for _, t := range batch {
			fn(t)
		}
	}
}
