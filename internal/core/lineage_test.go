package core

import (
	"testing"

	"repro/internal/sourceset"
)

func lineageSchema() (*Schema, *sourceset.Registry) {
	reg := sourceset.NewRegistry()
	reg.Intern("AD")
	reg.Intern("PD")
	reg.Intern("CD")
	return MustSchema(orgScheme()), reg
}

// TestLineagePaperObservation reproduces §IV observation (3): (ONAME,
// {AD, CD}) resolves to BUSINESS.BNAME in AD and FIRM.FNAME in CD.
func TestLineagePaperObservation(t *testing.T) {
	s, reg := lineageSchema()
	ad, _ := reg.Lookup("AD")
	cd, _ := reg.Lookup("CD")
	got := s.Lineage("ONAME", sourceset.Of(ad, cd), reg)
	want := []LocalAttr{
		{DB: "AD", Scheme: "BUSINESS", Attr: "BNAME"},
		{DB: "CD", Scheme: "FIRM", Attr: "FNAME"},
	}
	if len(got) != len(want) {
		t.Fatalf("lineage = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lineage = %v, want %v", got, want)
		}
	}
}

func TestLineageFiltersByOrigin(t *testing.T) {
	s, reg := lineageSchema()
	pd, _ := reg.Lookup("PD")
	got := s.Lineage("ONAME", sourceset.Of(pd), reg)
	if len(got) != 1 || got[0].Scheme != "CORPORATION" {
		t.Errorf("lineage = %v", got)
	}
	if got := s.Lineage("ONAME", sourceset.Empty(), reg); len(got) != 0 {
		t.Errorf("empty origin lineage = %v", got)
	}
	if got := s.Lineage("NOSUCH", sourceset.Of(pd), reg); len(got) != 0 {
		t.Errorf("unknown attribute lineage = %v", got)
	}
}

func TestCellLineage(t *testing.T) {
	s, reg := lineageSchema()
	ad, _ := reg.Lookup("AD")
	cd, _ := reg.Lookup("CD")
	p := NewRelation("P", reg, Attr{Name: "ONAME", Polygen: "ONAME"}, Attr{Name: "X"})
	p.Append(Tuple{
		{D: lit("Genentech"), O: sourceset.Of(ad, cd)},
		{D: lit("x"), O: sourceset.Of(ad)},
	})
	got := s.CellLineage(p, 0, 0)
	if len(got) != 2 {
		t.Fatalf("cell lineage = %v", got)
	}
	// Unannotated column: no lineage.
	if got := s.CellLineage(p, 1, 0); got != nil {
		t.Errorf("unannotated lineage = %v", got)
	}
	// Out-of-range indices are nil, not panics.
	if s.CellLineage(p, 5, 0) != nil || s.CellLineage(p, 0, 9) != nil || s.CellLineage(p, -1, -1) != nil {
		t.Error("out-of-range lineage should be nil")
	}
}
