package core

import (
	"testing"

	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

func TestNaturalJoinCoalescesColumns(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/KEY", "V"),
		[]any{"k1", "v1"}, []any{"k2", "v2"}, []any{"k3", "v3"},
	)
	r := e.prel("R", sourceset.Of(e.cd), attrs("K2/KEY", "W"),
		[]any{"k1", "w1"}, []any{"k2", "w2"}, []any{"k9", "w9"},
	)
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K2")
	if err != nil {
		t.Fatal(err)
	}
	// Same polygen attribute on both sides: one KEY column, named after it.
	wantNames(t, got, "KEY", "V", "W")
	wantRows(t, got,
		"k1, {AD, CD}, {AD, CD} | v1, {AD}, {AD, CD} | w1, {CD}, {AD, CD}",
		"k2, {AD, CD}, {AD, CD} | v2, {AD}, {AD, CD} | w2, {CD}, {AD, CD}",
	)
}

func TestThetaJoinKeepsBothColumns(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.cd), attrs("CEO/CEO"), []any{"Bob Swanson"})
	r := e.prel("R", sourceset.Of(e.ad), attrs("ANAME/ANAME", "DEG/DEGREE"),
		[]any{"Bob Swanson", "MBA"}, []any{"Ken Olsen", "MS"},
	)
	got, err := alg.Join(l, "CEO", rel.ThetaEQ, r, "ANAME")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct polygen attributes: both columns survive (§I query, Table 7).
	wantNames(t, got, "CEO", "ANAME", "DEG")
	wantRows(t, got,
		"Bob Swanson, {CD}, {AD, CD} | Bob Swanson, {AD}, {AD, CD} | MBA, {AD}, {AD, CD}",
	)
}

func TestJoinUnannotatedSameNameCoalesces(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K"), []any{"x"})
	r := e.prel("R", sourceset.Of(e.pd), attrs("K"), []any{"x"})
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "K")
	wantRows(t, got, "x, {AD, PD}, {AD, PD}")
}

func TestJoinManyToMany(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK", "V"),
		[]any{"k", "v1"}, []any{"k", "v2"},
	)
	r := e.prel("R", sourceset.Of(e.pd), attrs("K/PK", "W"),
		[]any{"k", "w1"}, []any{"k", "w2"},
	)
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 4 {
		t.Errorf("cardinality = %d, want 4", got.Cardinality())
	}
}

func TestJoinSkipsNullKeys(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := NewRelation("L", e.reg, attrs("K/PK")...)
	l.Append(Tuple{NilCell(sourceset.Empty())})
	l.Append(Tuple{e.cell("k", sourceset.Of(e.ad), sourceset.Empty())})
	r := NewRelation("R", e.reg, attrs("K/PK")...)
	r.Append(Tuple{NilCell(sourceset.Empty())})
	r.Append(Tuple{e.cell("k", sourceset.Of(e.pd), sourceset.Empty())})
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 1 {
		t.Errorf("null keys joined: %v", render(got))
	}
}

func TestJoinWithResolver(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(identity.CaseFold{})
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK"), []any{"CitiCorp"})
	r := e.prel("R", sourceset.Of(e.pd), attrs("K/PK"), []any{"Citicorp"})
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	// Instance-equal keys join; the left datum is kept.
	wantRows(t, got, "CitiCorp, {AD, PD}, {AD, PD}")
}

func TestJoinNonEqualityTheta(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("A"), []any{1}, []any{5})
	r := e.prel("R", sourceset.Of(e.pd), attrs("B"), []any{3})
	got, err := alg.Join(l, "A", rel.ThetaLT, r, "B")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "A", "B")
	wantRows(t, got, "1, {AD}, {AD, PD} | 3, {PD}, {AD, PD}")
}

// TestJoinMatchesPrimitiveComposition is the reference-semantics check: the
// hash Join must agree with Coalesce(Restrict(Product)) cell for cell.
func TestJoinMatchesPrimitiveComposition(t *testing.T) {
	e := newEnv()
	for _, resolver := range []identity.Resolver{identity.Exact{}, identity.CaseFold{}} {
		alg := NewAlgebra(resolver)
		l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK", "V"),
			[]any{"k1", "v1"}, []any{"K1", "v1b"}, []any{"k2", "v2"}, []any{"k3", "v3"},
		)
		r := e.prel("R", sourceset.Of(e.cd), attrs("K/PK", "W"),
			[]any{"k1", "w1"}, []any{"k2", "w2"}, []any{"k2", "w2b"},
		)
		fast, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.JoinViaPrimitives(l, "K", rel.ThetaEQ, r, "K")
		if err != nil {
			t.Fatal(err)
		}
		wantRows(t, fast, render(ref)...)
		wantNames(t, fast, ref.AttrNames()...)
	}
}

func TestJoinErrors(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	r := e.prel("R", sourceset.Of(e.pd), attrs("B"), []any{"y"})
	if _, err := alg.Join(l, "NOPE", rel.ThetaEQ, r, "B"); err == nil {
		t.Error("missing left attribute accepted")
	}
	if _, err := alg.Join(l, "A", rel.ThetaEQ, r, "NOPE"); err == nil {
		t.Error("missing right attribute accepted")
	}
}

func TestSemiJoin(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK", "V"),
		[]any{"k1", "v1"}, []any{"k2", "v2"},
	)
	r := e.prel("R", sourceset.Of(e.cd), attrs("K/PK"), []any{"k1"})
	got, err := alg.SemiJoin(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "K", "V")
	// The matched tuple survives; the match's origin appears in both the
	// coalesced key's origin and everyone's intermediates.
	wantRows(t, got, "k1, {AD, CD}, {AD, CD} | v1, {AD}, {AD, CD}")
}

func TestJoinNameCollisionFromRight(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK", "V"), []any{"k", "vl"})
	r := e.prel("R", sourceset.Of(e.pd), attrs("K/PK", "V"), []any{"k", "vr"})
	got, err := alg.Join(l, "K", rel.ThetaEQ, r, "K")
	if err != nil {
		t.Fatal(err)
	}
	// The coalesced key takes the polygen name (as Table 7's ONAME does);
	// the colliding right V is qualified.
	wantNames(t, got, "PK", "V", "R.V")
}
