package core

import (
	"strings"
	"testing"

	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

func TestProjectKeepsTagsAndOrder(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := e.prel("P", sourceset.Of(e.ad), attrs("A", "B", "C"),
		[]any{"x", 1, "c1"},
		[]any{"y", 2, "c2"},
	)
	got, err := alg.Project(p, []string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "C", "A")
	wantRows(t, got,
		"c1, {AD}, {} | x, {AD}, {}",
		"c2, {AD}, {} | y, {AD}, {}",
	)
}

// TestProjectMergesDuplicateTags checks §II's Project: when projected data
// portions coincide, the surviving tuple unions the collapsed tuples' tags
// attribute by attribute.
func TestProjectMergesDuplicateTags(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("A", "B")...)
	p.Append(Tuple{e.cell("x", sourceset.Of(e.ad), sourceset.Empty()), e.cell(1, sourceset.Of(e.ad), sourceset.Empty())})
	p.Append(Tuple{e.cell("x", sourceset.Of(e.cd), sourceset.Of(e.pd)), e.cell(2, sourceset.Of(e.cd), sourceset.Empty())})
	got, err := alg.Project(p, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, "x, {AD, CD}, {PD}")
}

func TestProjectUnknownAttr(t *testing.T) {
	e := newEnv()
	p := e.prel("P", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	if _, err := NewAlgebra(nil).Project(p, []string{"Z"}); err == nil {
		t.Error("projecting a missing attribute should fail")
	}
}

func TestProductConcatenatesWithoutTagUpdates(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("L", sourceset.Of(e.ad), attrs("A"), []any{"x"}, []any{"y"})
	p2 := e.prel("R", sourceset.Of(e.pd), attrs("B"), []any{1}, []any{2})
	got, err := alg.Product(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got,
		"x, {AD}, {} | 1, {PD}, {}",
		"x, {AD}, {} | 2, {PD}, {}",
		"y, {AD}, {} | 1, {PD}, {}",
		"y, {AD}, {} | 2, {PD}, {}",
	)
}

func TestProductDisambiguatesNames(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("L", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	p2 := e.prel("R", sourceset.Of(e.pd), attrs("A"), []any{"y"})
	got, err := alg.Product(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "A", "R.A")
}

// TestRestrictUpdatesIntermediates checks §II's Restrict: the origins of the
// two operand attributes join every surviving cell's intermediate set.
func TestRestrictUpdatesIntermediates(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("X", "Y", "Z")...)
	p.Append(Tuple{
		e.cell("v", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("v", sourceset.Of(e.cd), sourceset.Empty()),
		e.cell("other", sourceset.Of(e.pd), sourceset.Empty()),
	})
	p.Append(Tuple{
		e.cell("v", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("w", sourceset.Of(e.cd), sourceset.Empty()),
		e.cell("gone", sourceset.Of(e.pd), sourceset.Empty()),
	})
	got, err := alg.Restrict(p, "X", rel.ThetaEQ, "Y")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got,
		"v, {AD}, {AD, CD} | v, {CD}, {AD, CD} | other, {PD}, {AD, CD}",
	)
}

func TestRestrictThetaOrdering(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := e.prel("P", sourceset.Of(e.ad), attrs("A", "B"),
		[]any{1, 2}, []any{2, 2}, []any{3, 2},
	)
	lt, err := alg.Restrict(p, "A", rel.ThetaLT, "B")
	if err != nil {
		t.Fatal(err)
	}
	if lt.Cardinality() != 1 || lt.Tuples[0][0].D.IntVal() != 1 {
		t.Errorf("LT restrict = %v", render(lt))
	}
	ge, _ := alg.Restrict(p, "A", rel.ThetaGE, "B")
	if ge.Cardinality() != 2 {
		t.Errorf("GE restrict = %v", render(ge))
	}
}

func TestRestrictNullNeverMatches(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("A", "B")...)
	p.Append(Tuple{NilCell(sourceset.Empty()), NilCell(sourceset.Empty())})
	for _, theta := range []rel.Theta{rel.ThetaEQ, rel.ThetaNE, rel.ThetaLE} {
		got, err := alg.Restrict(p, "A", theta, "B")
		if err != nil {
			t.Fatal(err)
		}
		if got.Cardinality() != 0 {
			t.Errorf("nil %v nil matched", theta)
		}
	}
}

// TestSelectAddsOperandOrigin: Select is defined through Restrict (§II) and
// adds the operand attribute's origin to every cell's intermediate set.
func TestSelectAddsOperandOrigin(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("A", "B")...)
	p.Append(Tuple{
		e.cell("MBA", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("x", sourceset.Of(e.cd), sourceset.Empty()),
	})
	p.Append(Tuple{
		e.cell("BS", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("y", sourceset.Of(e.cd), sourceset.Empty()),
	})
	got, err := alg.Select(p, "A", rel.ThetaEQ, rel.String("MBA"))
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, "MBA, {AD}, {AD} | x, {CD}, {AD}")
}

// TestSelectConstantIsExact: constant selection does not apply instance
// resolution (Table 4 matches DEG = "MBA" literally).
func TestSelectConstantIsExact(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(identity.CaseFold{})
	p := e.prel("P", sourceset.Of(e.ad), attrs("A"), []any{"mba"})
	got, err := alg.Select(p, "A", rel.ThetaEQ, rel.String("MBA"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 0 {
		t.Error("constant select applied case folding")
	}
}

func TestUnionMergesTagsOnDuplicates(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A"), []any{"x"}, []any{"only1"})
	p2 := e.prel("P2", sourceset.Of(e.cd), attrs("A"), []any{"x"}, []any{"only2"})
	got, err := alg.Union(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got,
		"x, {AD, CD}, {}",
		"only1, {AD}, {}",
		"only2, {CD}, {}",
	)
	if _, err := alg.Union(p1, e.prel("W", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", "y"})); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestUnionDoesNotMutateOperands(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	p2 := e.prel("P2", sourceset.Of(e.cd), attrs("A"), []any{"x"})
	if _, err := alg.Union(p1, p2); err != nil {
		t.Fatal(err)
	}
	if !p1.Tuples[0][0].O.Equal(sourceset.Of(e.ad)) {
		t.Error("union mutated its left operand")
	}
	if !p2.Tuples[0][0].O.Equal(sourceset.Of(e.cd)) {
		t.Error("union mutated its right operand")
	}
}

// TestDifferenceAddsP2Origins checks §II's Difference: every surviving cell
// gains p2(o) — the union of ALL origin sets in p2 — in its intermediates.
func TestDifferenceAddsP2Origins(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A"), []any{"keep"}, []any{"drop"})
	p2 := NewRelation("P2", e.reg, attrs("A")...)
	p2.Append(Tuple{e.cell("drop", sourceset.Of(e.pd), sourceset.Empty())})
	p2.Append(Tuple{e.cell("unrelated", sourceset.Of(e.cd), sourceset.Empty())})
	got, err := alg.Difference(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, "keep, {AD}, {PD, CD}")
	if _, err := alg.Difference(p1, e.prel("W", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", "y"})); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestDifferenceAgainstEmpty(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	empty := NewRelation("E", e.reg, attrs("A")...)
	got, err := alg.Difference(p1, empty)
	if err != nil {
		t.Fatal(err)
	}
	// p2(o) of an empty relation is {}: tuples pass through untouched.
	wantRows(t, got, "x, {AD}, {}")
}

func TestIntersectTagsBothSides(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p1 := e.prel("P1", sourceset.Of(e.ad), attrs("A"), []any{"both"}, []any{"only1"})
	p2 := e.prel("P2", sourceset.Of(e.cd), attrs("A"), []any{"both"}, []any{"only2"})
	got, err := alg.Intersect(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection is the projection of a join over all attributes (§II):
	// origins union, and both sides mediate.
	wantRows(t, got, "both, {AD, CD}, {AD, CD}")
	if _, err := alg.Intersect(p1, e.prel("W", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", "y"})); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestRename(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := e.prel("P", sourceset.Of(e.pd), attrs("STATE"), []any{"NY"})
	got, err := alg.Rename(p, "STATE", "HEADQUARTERS")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "HEADQUARTERS")
	if got.Attrs[0].Polygen != "HEADQUARTERS" {
		t.Error("rename should annotate the polygen attribute")
	}
	if p.Attrs[0].Name != "STATE" {
		t.Error("rename mutated its operand")
	}
	if _, err := alg.Rename(p, "NOPE", "X"); err == nil {
		t.Error("renaming a missing attribute should fail")
	}
}

func TestResolverEquality(t *testing.T) {
	e := newEnv()
	exact := NewAlgebra(identity.Exact{})
	folded := NewAlgebra(identity.CaseFold{})
	p := NewRelation("P", e.reg, attrs("X", "Y")...)
	p.Append(Tuple{
		e.cell("CitiCorp", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("Citicorp", sourceset.Of(e.pd), sourceset.Empty()),
	})
	re, _ := exact.Restrict(p, "X", rel.ThetaEQ, "Y")
	if re.Cardinality() != 0 {
		t.Error("exact resolver matched CitiCorp with Citicorp")
	}
	rf, _ := folded.Restrict(p, "X", rel.ThetaEQ, "Y")
	if rf.Cardinality() != 1 {
		t.Error("case-folding resolver should match CitiCorp with Citicorp")
	}
	// NE under a resolver: the pair is *not* different.
	ne, _ := folded.Restrict(p, "X", rel.ThetaNE, "Y")
	if ne.Cardinality() != 0 {
		t.Error("NE matched instance-equal values")
	}
}

func TestZeroAlgebraUsesExact(t *testing.T) {
	var alg Algebra
	if alg.Resolver() == nil {
		t.Fatal("zero algebra has nil resolver")
	}
	if alg.Resolver().Canonical(rel.String("A")) == alg.Resolver().Canonical(rel.String("a")) {
		t.Error("zero algebra should compare exactly")
	}
}

func TestFromPlain(t *testing.T) {
	e := newEnv()
	r := rel.NewRelation("T", rel.SchemaOf("A", "B"))
	r.MustAppend(rel.String("x"), rel.Int(1))
	p := FromPlain(r, e.cd, e.reg)
	wantRows(t, p, "x, {CD}, {} | 1, {CD}, {}")
	if p.Name != "T" {
		t.Errorf("name = %q", p.Name)
	}
}

func TestRelationColResolution(t *testing.T) {
	e := newEnv()
	p := NewRelation("P", e.reg, attrs("BNAME/ONAME", "POS/POSITION")...)
	if i, err := p.Col("BNAME"); err != nil || i != 0 {
		t.Errorf("display name lookup = %d, %v", i, err)
	}
	if i, err := p.Col("ONAME"); err != nil || i != 0 {
		t.Errorf("polygen name lookup = %d, %v", i, err)
	}
	if _, err := p.Col("NOPE"); err == nil {
		t.Error("missing attribute accepted")
	}
	// Display names shadow polygen names; duplicates are ambiguous.
	q := NewRelation("Q", e.reg, attrs("A/PG", "B/PG")...)
	if _, err := q.Col("PG"); err == nil {
		t.Error("ambiguous polygen reference accepted")
	}
	dup := NewRelation("D", e.reg, Attr{Name: "X"}, Attr{Name: "X"})
	if _, err := dup.Col("X"); err == nil {
		t.Error("ambiguous display reference accepted")
	}
}

func TestRelationDataStripsTags(t *testing.T) {
	e := newEnv()
	p := e.prel("P", sourceset.Of(e.ad), attrs("A", "B"), []any{"x", 1})
	d := p.Data()
	if d.Cardinality() != 1 || d.Schema.Len() != 2 {
		t.Fatalf("Data shape wrong")
	}
	if !d.Tuples[0][0].Equal(rel.String("x")) || !d.Tuples[0][1].Equal(rel.Int(1)) {
		t.Error("Data lost values")
	}
}

func TestOriginUnion(t *testing.T) {
	e := newEnv()
	p := NewRelation("P", e.reg, attrs("A", "B")...)
	p.Append(Tuple{
		e.cell("x", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("y", sourceset.Of(e.pd), sourceset.Empty()),
	})
	p.Append(Tuple{
		e.cell("z", sourceset.Of(e.cd), sourceset.Empty()),
		NilCell(sourceset.Empty()),
	})
	got := p.OriginUnion()
	if !got.Equal(sourceset.Of(e.ad, e.pd, e.cd)) {
		t.Errorf("OriginUnion = %v", got.Format(e.reg))
	}
}

func TestRelationStringRendering(t *testing.T) {
	e := newEnv()
	p := NewRelation("P", e.reg, attrs("A", "BNAME/ONAME")...)
	p.Append(Tuple{
		e.cell("x", sourceset.Of(e.ad), sourceset.Empty()),
		NilCell(sourceset.Of(e.pd)),
	})
	s := p.String()
	for _, want := range []string{"P(A, BNAME/ONAME)", "x, {AD}, {}", "nil, {}, {PD}"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestRelationAppendDegreeChecked(t *testing.T) {
	e := newEnv()
	p := NewRelation("P", e.reg, attrs("A", "B")...)
	if err := p.Append(Tuple{e.cell("x", sourceset.Empty(), sourceset.Empty())}); err == nil {
		t.Error("degree mismatch accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := newEnv()
	p := e.prel("P", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	c := p.Clone()
	c.Tuples[0][0] = e.cell("mutated", sourceset.Of(e.pd), sourceset.Empty())
	c.Attrs[0].Name = "Z"
	if p.Tuples[0][0].D.Str() != "x" || p.Attrs[0].Name != "A" {
		t.Error("Clone aliases the original")
	}
}
