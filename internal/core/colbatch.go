package core

import (
	"fmt"
	"io"
	"slices"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// This file implements the tagged column-major batch: the polygen triplet
// (c(d), c(o), c(i)) in struct-of-arrays form. The data portion of each
// attribute is a rel.Column; the two tag portions are fixed-width columns of
// uint32 indexes into a per-batch dictionary of distinct sourceset.Sets.
// Dictionary encoding is what keeps tag columns cheap: a federation query
// touches a handful of distinct tag sets, repeated across hundreds of
// thousands of cells, so each cell's two tags cost eight bytes instead of
// two 32-byte Set headers — and tag-set unions in the columnar kernels are
// memoized per distinct index pair instead of recomputed per cell.

// ColBatch is a column-major polygen batch: one data vector plus two tag
// index columns per attribute, all rows the same length.
//
// Sets is the batch's tag dictionary; Sets[0] is always the empty set, so a
// zeroed tag column means "no tags". OTag[ci][row] and ITag[ci][row] index
// Sets. The exported fields let the wire codec map decoded frames directly
// onto a batch; use BuildColBatch to validate untrusted vectors.
type ColBatch struct {
	Name  string
	Attrs []Attr
	Reg   *sourceset.Registry
	Data  []rel.Column
	OTag  [][]uint32
	ITag  [][]uint32
	Sets  []sourceset.Set

	n     int
	setIx rel.BucketIndex // interns Sets: hash -> dictionary index
	rows  []Tuple         // lazy row-view cache; see Rows
}

// NewColBatch returns an empty tagged columnar batch.
func NewColBatch(name string, reg *sourceset.Registry, attrs []Attr) *ColBatch {
	d := len(attrs)
	b := &ColBatch{
		Name:  name,
		Attrs: attrs,
		Reg:   reg,
		Data:  make([]rel.Column, d),
		OTag:  make([][]uint32, d),
		ITag:  make([][]uint32, d),
		Sets:  []sourceset.Set{sourceset.Empty()},
		setIx: rel.NewBucketIndex(8),
	}
	b.setIx.Add(sourceset.Empty().Hash64(), 0)
	return b
}

// BuildColBatch assembles a batch from decoded vectors (the wire codec's
// entry point), validating every vector length and tag index against n. The
// sets dictionary must have the empty set at index 0.
func BuildColBatch(name string, reg *sourceset.Registry, attrs []Attr, data []rel.Column, otag, itag [][]uint32, sets []sourceset.Set, n int) (*ColBatch, error) {
	d := len(attrs)
	if len(data) != d || len(otag) != d || len(itag) != d {
		return nil, fmt.Errorf("core: batch has %d/%d/%d columns for %d attributes", len(data), len(otag), len(itag), d)
	}
	if len(sets) == 0 || !sets[0].IsEmpty() {
		return nil, fmt.Errorf("core: tag dictionary must start with the empty set")
	}
	for ci := 0; ci < d; ci++ {
		if err := data[ci].Validate(n); err != nil {
			return nil, fmt.Errorf("core: attribute %d: %w", ci, err)
		}
		if len(otag[ci]) != n || len(itag[ci]) != n {
			return nil, fmt.Errorf("core: attribute %d has %d/%d tag rows for %d rows", ci, len(otag[ci]), len(itag[ci]), n)
		}
		for _, ix := range otag[ci] {
			if int(ix) >= len(sets) {
				return nil, fmt.Errorf("core: origin tag index %d outside dictionary of %d", ix, len(sets))
			}
		}
		for _, ix := range itag[ci] {
			if int(ix) >= len(sets) {
				return nil, fmt.Errorf("core: intermediate tag index %d outside dictionary of %d", ix, len(sets))
			}
		}
	}
	b := &ColBatch{Name: name, Attrs: attrs, Reg: reg, Data: data, OTag: otag, ITag: itag, Sets: sets, n: n}
	b.setIx = rel.NewBucketIndex(len(sets))
	for i, s := range sets {
		b.setIx.Add(s.Hash64(), i)
	}
	return b, nil
}

// FromRelation converts a materialized polygen relation to columnar form.
func FromRelation(p *Relation) *ColBatch {
	b := NewColBatch(p.Name, p.Reg, p.Attrs)
	for _, t := range p.Tuples {
		b.AppendTuple(t)
	}
	return b
}

// Len returns the number of rows.
func (b *ColBatch) Len() int { return b.n }

// Degree returns the number of attributes.
func (b *ColBatch) Degree() int { return len(b.Attrs) }

// Grow reserves capacity for n more rows in every data and tag vector —
// the kernels call it with their output bound so the append loops don't pay
// the growth series.
func (b *ColBatch) Grow(n int) {
	for ci := range b.Data {
		b.Data[ci].Grow(n)
		b.OTag[ci] = slices.Grow(b.OTag[ci], n)
		b.ITag[ci] = slices.Grow(b.ITag[ci], n)
	}
}

// InternSet returns the dictionary index of s, adding it on first use.
func (b *ColBatch) InternSet(s sourceset.Set) uint32 {
	if s.IsEmpty() {
		return 0
	}
	h := s.Hash64()
	if at, ok := b.setIx.Find(h, func(pos int) bool { return b.Sets[pos].Equal(s) }); ok {
		return uint32(at)
	}
	ix := uint32(len(b.Sets))
	b.Sets = append(b.Sets, s)
	b.setIx.Add(h, int(ix))
	return ix
}

// AppendTuple adds one row, interning its tag sets.
func (b *ColBatch) AppendTuple(t Tuple) {
	for ci := range b.Data {
		c := t[ci]
		b.Data[ci].Append(c.D)
		b.OTag[ci] = append(b.OTag[ci], b.InternSet(c.O))
		b.ITag[ci] = append(b.ITag[ci], b.InternSet(c.I))
	}
	b.n++
	b.rows = nil
}

// Cell reconstructs the polygen cell at (row, col).
func (b *ColBatch) Cell(row, col int) Cell {
	return Cell{
		D: b.Data[col].Value(row),
		O: b.Sets[b.OTag[col][row]],
		I: b.Sets[b.ITag[col][row]],
	}
}

// DataHashes fills dst (grown if needed) with Tuple.DataHash64 of every row,
// one column stripe at a time, and returns the filled slice. The result is
// bit-identical to the row-major hash, so columnar and row-built indexes
// interoperate.
func (b *ColBatch) DataHashes(dst []uint64) []uint64 {
	if cap(dst) < b.n {
		dst = make([]uint64, b.n)
	}
	dst = dst[:b.n]
	for i := range dst {
		dst[i] = rel.HashFoldInit
	}
	for ci := range b.Data {
		b.Data[ci].HashFoldInto(rel.Seed, dst)
	}
	return dst
}

// dataEqualAt reports whether row i of a and row j of c have identical data
// portions — the columnar form of Tuple.DataEqual.
func dataEqualAt(a *ColBatch, i int, c *ColBatch, j int) bool {
	for ci := range a.Data {
		if !a.Data[ci].Value(i).Identical(c.Data[ci].Value(j)) {
			return false
		}
	}
	return true
}

// Rows returns row views over the batch: cell tuples carved from one
// batch-owned arena (computed once and cached), satisfying the core.Cursor
// batch contract — immutable and valid for the life of the batch.
func (b *ColBatch) Rows() []Tuple {
	if b.rows != nil || b.n == 0 {
		return b.rows
	}
	d := len(b.Attrs)
	if d == 0 {
		rows := make([]Tuple, b.n)
		for i := range rows {
			rows[i] = Tuple{}
		}
		b.rows = rows
		return b.rows
	}
	arena := make([]Cell, b.n*d)
	for ci := range b.Data {
		col := &b.Data[ci]
		ot, it := b.OTag[ci], b.ITag[ci]
		for i := 0; i < b.n; i++ {
			arena[i*d+ci] = Cell{D: col.Value(i), O: b.Sets[ot[i]], I: b.Sets[it[i]]}
		}
	}
	rows := make([]Tuple, b.n)
	for i := range rows {
		rows[i] = arena[i*d : (i+1)*d : (i+1)*d]
	}
	b.rows = rows
	return b.rows
}

// Relation materializes the batch as a polygen relation (rows alias the
// batch's row-view arena).
func (b *ColBatch) Relation() *Relation {
	return &Relation{Name: b.Name, Attrs: b.Attrs, Reg: b.Reg, Tuples: b.Rows()}
}

// TagColumns converts a plain columnar batch into a tagged one: every value
// mapped through its column's fn (nil slice or nil fn means identity), every
// cell tagged with the constant origin and intermediate sets — the columnar
// form of the PQP's tagging scan. The tag columns are a constant-fill of two
// dictionary indexes, so tagging a batch costs the value mapping plus two
// uint32 vectors per column, not a Set pair per cell.
func TagColumns(name string, reg *sourceset.Registry, attrs []Attr, rb *rel.ColBatch, fns []func(rel.Value) rel.Value, origin, inter sourceset.Set) *ColBatch {
	b := NewColBatch(name, reg, attrs)
	o := b.InternSet(origin)
	it := b.InternSet(inter)
	n := rb.Len()
	for ci := range b.Data {
		col := rb.Col(ci)
		var fn func(rel.Value) rel.Value
		if fns != nil {
			fn = fns[ci]
		}
		for ri := 0; ri < n; ri++ {
			v := col.Value(ri)
			if fn != nil {
				v = fn(v)
			}
			b.Data[ci].Append(v)
		}
		ot := make([]uint32, n)
		itv := make([]uint32, n)
		for ri := range ot {
			ot[ri] = o
			itv[ri] = it
		}
		b.OTag[ci] = ot
		b.ITag[ci] = itv
	}
	b.n = n
	return b
}

// ColCursor is the columnar capability of a core.Cursor: NextCol yields the
// next batch in column-major form (nil, io.EOF when exhausted). Next is
// NextCol plus the row view, so interleaving is allowed.
type ColCursor interface {
	Cursor
	NextCol() (*ColBatch, error)
}

// colBatchCursor streams prebuilt tagged column batches.
type colBatchCursor struct {
	header
	batches []*ColBatch
	at      int
}

// NewColBatchCursor returns a cursor over a sequence of tagged column
// batches. Empty batches are skipped.
func NewColBatchCursor(name string, reg *sourceset.Registry, attrs []Attr, batches []*ColBatch) ColCursor {
	return &colBatchCursor{header: header{name: name, attrs: attrs, reg: reg}, batches: batches}
}

func (c *colBatchCursor) NextCol() (*ColBatch, error) {
	for c.at < len(c.batches) {
		b := c.batches[c.at]
		c.at++
		if b.Len() > 0 {
			return b, nil
		}
	}
	return nil, io.EOF
}

func (c *colBatchCursor) Next() ([]Tuple, error) {
	b, err := c.NextCol()
	if err != nil {
		return nil, err
	}
	return b.Rows(), nil
}

func (c *colBatchCursor) Close() error {
	c.at = len(c.batches)
	return nil
}

// colSliceCursor cuts a tuple slice into tagged column batches.
type colSliceCursor struct {
	header
	tuples []Tuple
	at     int
	batch  int
}

// NewColSliceCursor returns a columnar cursor over a relation's tuples with
// the given batch size (values < 1 mean rel.DefaultBatchSize).
func NewColSliceCursor(p *Relation, batch int) ColCursor {
	if batch < 1 {
		batch = rel.DefaultBatchSize
	}
	return &colSliceCursor{header: header{name: p.Name, attrs: p.Attrs, reg: p.Reg}, tuples: p.Tuples, batch: batch}
}

func (c *colSliceCursor) NextCol() (*ColBatch, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := NewColBatch(c.name, c.reg, c.attrs)
	for _, t := range c.tuples[c.at:end] {
		b.AppendTuple(t)
	}
	c.at = end
	return b, nil
}

func (c *colSliceCursor) Next() ([]Tuple, error) {
	b, err := c.NextCol()
	if err != nil {
		return nil, err
	}
	return b.Rows(), nil
}

func (c *colSliceCursor) Close() error {
	c.at = len(c.tuples)
	return nil
}
