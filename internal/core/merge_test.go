package core

import (
	"strings"
	"testing"

	"repro/internal/identity"
	"repro/internal/sourceset"
)

func TestCoalesceThreeCases(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("X", "Y", "Z")...)
	// Equal data: union both tag sets, keep left datum.
	p.Append(Tuple{
		e.cell("v", sourceset.Of(e.ad), sourceset.Of(e.ad)),
		e.cell("v", sourceset.Of(e.pd), sourceset.Of(e.pd)),
		e.cell("z1", sourceset.Of(e.cd), sourceset.Empty()),
	})
	// Right nil: left passes through.
	p.Append(Tuple{
		e.cell("l", sourceset.Of(e.ad), sourceset.Of(e.ad)),
		NilCell(sourceset.Of(e.pd)),
		e.cell("z2", sourceset.Of(e.cd), sourceset.Empty()),
	})
	// Left nil: right passes through.
	p.Append(Tuple{
		NilCell(sourceset.Of(e.ad)),
		e.cell("r", sourceset.Of(e.pd), sourceset.Of(e.pd)),
		e.cell("z3", sourceset.Of(e.cd), sourceset.Empty()),
	})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "W", "Z")
	wantRows(t, got,
		"v, {AD, PD}, {AD, PD} | z1, {CD}, {}",
		"l, {AD}, {AD} | z2, {CD}, {}",
		"r, {PD}, {PD} | z3, {CD}, {}",
	)
}

func TestCoalesceBothNil(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("X", "Y")...)
	p.Append(Tuple{NilCell(sourceset.Of(e.ad)), NilCell(sourceset.Of(e.pd))})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	// Both nil hits the "y is nil" case: x (nil) passes through.
	wantRows(t, got, "nil, {}, {AD}")
}

func TestCoalesceConflictDefaultPolicy(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := NewRelation("P", e.reg, attrs("X", "Y")...)
	p.Append(Tuple{
		e.cell("left", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("right", sourceset.Of(e.cd), sourceset.Of(e.pd)),
	})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	// Default conflict policy: keep x's datum/origin; y's origin and
	// intermediates join the intermediates (its source was consulted).
	wantRows(t, got, "left, {AD}, {PD, CD}")
}

func TestCoalesceConflictCustomHandler(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	alg.SetConflictHandler(func(x, y Cell) Cell {
		return Cell{D: y.D, O: y.O, I: x.O.Union(x.I).Union(y.I)}
	})
	p := NewRelation("P", e.reg, attrs("X", "Y")...)
	p.Append(Tuple{
		e.cell("left", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("right", sourceset.Of(e.cd), sourceset.Empty()),
	})
	got, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got, "right, {CD}, {AD}")
	alg.SetConflictHandler(nil)
	got2, err := alg.Coalesce(p, "X", "Y", "W")
	if err != nil {
		t.Fatal(err)
	}
	wantRows(t, got2, "left, {AD}, {CD}")
}

func TestCoalesceErrors(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	p := e.prel("P", sourceset.Of(e.ad), attrs("X", "Y"), []any{"a", "b"})
	if _, err := alg.Coalesce(p, "X", "X", "W"); err == nil {
		t.Error("coalescing an attribute with itself accepted")
	}
	if _, err := alg.Coalesce(p, "NOPE", "Y", "W"); err == nil {
		t.Error("missing x accepted")
	}
	if _, err := alg.Coalesce(p, "X", "NOPE", "W"); err == nil {
		t.Error("missing y accepted")
	}
}

func TestCoalesceResolverEquality(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(identity.CaseFold{})
	p := NewRelation("P", e.reg, attrs("X", "Y")...)
	p.Append(Tuple{
		e.cell("CitiCorp", sourceset.Of(e.ad), sourceset.Empty()),
		e.cell("Citicorp", sourceset.Of(e.pd), sourceset.Empty()),
	})
	got, err := alg.Coalesce(p, "X", "Y", "ONAME")
	if err != nil {
		t.Fatal(err)
	}
	// Instance-equal (Table A5): left spelling kept, origins unioned.
	wantRows(t, got, "CitiCorp, {AD, PD}, {}")
}

func TestOuterJoinShapes(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("K/PK", "V"),
		[]any{"both", "vl"}, []any{"leftonly", "v2"},
	)
	r := e.prel("R", sourceset.Of(e.pd), attrs("K2/PK", "W"),
		[]any{"both", "wr"}, []any{"rightonly", "w2"},
	)
	got, err := alg.OuterJoin(l, "K", r, "K2")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "K", "V", "K2", "W")
	wantRows(t, got,
		// matched: both origins mediate everywhere
		"both, {AD}, {AD, PD} | vl, {AD}, {AD, PD} | both, {PD}, {AD, PD} | wr, {PD}, {AD, PD}",
		// unmatched left: nil-padded right with o = {}, i = left key origin
		"leftonly, {AD}, {AD} | v2, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}",
		// unmatched right: mirrored
		"nil, {}, {PD} | nil, {}, {PD} | rightonly, {PD}, {PD} | w2, {PD}, {PD}",
	)
}

func TestOuterJoinNullKeysNeverMatch(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := NewRelation("L", e.reg, attrs("K/PK")...)
	l.Append(Tuple{NilCell(sourceset.Empty())})
	r := NewRelation("R", e.reg, attrs("K2/PK")...)
	r.Append(Tuple{NilCell(sourceset.Empty())})
	got, err := alg.OuterJoin(l, "K", r, "K2")
	if err != nil {
		t.Fatal(err)
	}
	// Two unmatched rows, not one matched row.
	if got.Cardinality() != 2 {
		t.Errorf("null keys matched in outer join:\n%s", strings.Join(render(got), "\n"))
	}
}

func TestOuterNaturalPrimaryJoin(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	l := e.prel("L", sourceset.Of(e.ad), attrs("BNAME/ONAME", "IND/INDUSTRY"),
		[]any{"IBM", "High Tech"},
	)
	r := e.prel("R", sourceset.Of(e.pd), attrs("CNAME/ONAME", "TRADE/INDUSTRY"),
		[]any{"IBM", "High Tech"},
	)
	got, err := alg.OuterNaturalPrimaryJoin(l, "BNAME", r, "CNAME", "ONAME")
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "ONAME", "IND", "TRADE")
	wantRows(t, got,
		"IBM, {AD, PD}, {AD, PD} | High Tech, {AD}, {AD, PD} | High Tech, {PD}, {AD, PD}",
	)
}

func orgScheme() *Scheme {
	return &Scheme{
		Name: "PORG",
		Key:  "ONAME",
		Attrs: []PolygenAttr{
			{Name: "ONAME", Mapping: []LocalAttr{
				{DB: "AD", Scheme: "BUSINESS", Attr: "BNAME"},
				{DB: "PD", Scheme: "CORPORATION", Attr: "CNAME"},
				{DB: "CD", Scheme: "FIRM", Attr: "FNAME"},
			}},
			{Name: "INDUSTRY", Mapping: []LocalAttr{
				{DB: "AD", Scheme: "BUSINESS", Attr: "IND"},
				{DB: "PD", Scheme: "CORPORATION", Attr: "TRADE"},
			}},
			{Name: "CEO", Mapping: []LocalAttr{{DB: "CD", Scheme: "FIRM", Attr: "CEO"}}},
			{Name: "HEADQUARTERS", Mapping: []LocalAttr{
				{DB: "PD", Scheme: "CORPORATION", Attr: "STATE"},
				{DB: "CD", Scheme: "FIRM", Attr: "HQ"},
			}},
		},
	}
}

func (e *testEnv) orgRelations() (*Relation, *Relation, *Relation) {
	business := e.prel("BUSINESS", sourceset.Of(e.ad), attrs("BNAME/ONAME", "IND/INDUSTRY"),
		[]any{"IBM", "High Tech"},
		[]any{"MIT", "Education"},
	)
	corp := e.prel("CORPORATION", sourceset.Of(e.pd), attrs("CNAME/ONAME", "TRADE/INDUSTRY", "STATE/HEADQUARTERS"),
		[]any{"IBM", "High Tech", "NY"},
		[]any{"Apple", "High Tech", "CA"},
	)
	firm := e.prel("FIRM", sourceset.Of(e.cd), attrs("FNAME/ONAME", "CEO/CEO", "HQ/HEADQUARTERS"),
		[]any{"IBM", "John Ackers", "NY"},
		[]any{"Apple", "John Sculley", "CA"},
	)
	return business, corp, firm
}

func TestOuterNaturalTotalJoin(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	business, corp, _ := e.orgRelations()
	got, err := alg.OuterNaturalTotalJoin(business, corp, orgScheme())
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "ONAME", "INDUSTRY", "HEADQUARTERS")
	wantRows(t, got,
		"IBM, {AD, PD}, {AD, PD} | High Tech, {AD, PD}, {AD, PD} | NY, {PD}, {AD, PD}",
		"MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD}",
		"Apple, {PD}, {PD} | High Tech, {PD}, {PD} | CA, {PD}, {PD}",
	)
}

func TestMergeThreeSources(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	business, corp, firm := e.orgRelations()
	got, err := alg.Merge(orgScheme(), business, corp, firm)
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "ONAME", "INDUSTRY", "HEADQUARTERS", "CEO")
	wantRows(t, got,
		"IBM, {AD, PD, CD}, {AD, PD, CD} | High Tech, {AD, PD}, {AD, PD, CD} | NY, {PD, CD}, {AD, PD, CD} | John Ackers, {CD}, {AD, PD, CD}",
		"MIT, {AD}, {AD} | Education, {AD}, {AD} | nil, {}, {AD} | nil, {}, {AD}",
		"Apple, {PD, CD}, {PD, CD} | High Tech, {PD}, {PD, CD} | CA, {PD, CD}, {PD, CD} | John Sculley, {CD}, {PD, CD}",
	)
}

func TestMergeSingleRelationNormalizes(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	business, _, _ := e.orgRelations()
	got, err := alg.Merge(orgScheme(), business)
	if err != nil {
		t.Fatal(err)
	}
	wantNames(t, got, "ONAME", "INDUSTRY")
}

func TestMergeZeroRelationsFails(t *testing.T) {
	if _, err := NewAlgebra(nil).Merge(orgScheme()); err == nil {
		t.Error("merge of zero relations accepted")
	}
}

// TestMergeOrderIndependence checks §II's claim: "the order in which Outer
// Natural Total Join are performed over a set of polygen relations in a
// Merge is immaterial". Column order follows the fold, so the comparison
// projects each result onto the scheme's attribute order; datum spellings
// are compared under the instance resolver (the first operand's spelling
// wins presentationally).
func TestMergeOrderIndependence(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(identity.CaseFold{})
	b, c, f := e.orgRelations()
	orders := [][3]*Relation{
		{b, c, f}, {b, f, c}, {c, b, f}, {c, f, b}, {f, b, c}, {f, c, b},
	}
	scheme := orgScheme()
	var reference []string
	for oi, ord := range orders {
		m, err := alg.Merge(scheme, ord[0], ord[1], ord[2])
		if err != nil {
			t.Fatalf("order %d: %v", oi, err)
		}
		proj, err := alg.Project(m, scheme.AttrNames())
		if err != nil {
			t.Fatalf("order %d: project: %v", oi, err)
		}
		rows := render(proj)
		canon := make([]string, len(rows))
		for i, r := range rows {
			canon[i] = strings.ToLower(r)
		}
		if oi == 0 {
			reference = canon
			continue
		}
		if d := diffMultiset(reference, canon); d != "" {
			t.Errorf("order %d differs from order 0:\n%s", oi, d)
		}
	}
}

func diffMultiset(want, got []string) string {
	seen := make(map[string]int)
	for _, w := range want {
		seen[w]++
	}
	var b strings.Builder
	for _, g := range got {
		if seen[g] == 0 {
			b.WriteString("extra: " + g + "\n")
			continue
		}
		seen[g]--
	}
	for w, n := range seen {
		for i := 0; i < n; i++ {
			b.WriteString("missing: " + w + "\n")
		}
	}
	return b.String()
}

func TestONTJErrorsWithoutKeyAnnotation(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(nil)
	// No polygen annotations at all: the key cannot be located.
	l := e.prel("L", sourceset.Of(e.ad), attrs("A"), []any{"x"})
	r := e.prel("R", sourceset.Of(e.pd), attrs("B"), []any{"y"})
	if _, err := alg.OuterNaturalTotalJoin(l, r, orgScheme()); err == nil {
		t.Error("ONTJ without key annotations accepted")
	}
}

func TestSchemeLocalSchemes(t *testing.T) {
	s := orgScheme()
	lrs := s.LocalSchemes()
	want := []LocalRelation{
		{DB: "AD", Scheme: "BUSINESS"},
		{DB: "PD", Scheme: "CORPORATION"},
		{DB: "CD", Scheme: "FIRM"},
	}
	if len(lrs) != len(want) {
		t.Fatalf("LocalSchemes = %v", lrs)
	}
	for i := range want {
		if lrs[i] != want[i] {
			t.Fatalf("LocalSchemes = %v, want %v", lrs, want)
		}
	}
}

func TestSchemeLocalAttrsOf(t *testing.T) {
	s := orgScheme()
	pairs := s.LocalAttrsOf(LocalRelation{DB: "CD", Scheme: "FIRM"})
	if len(pairs) != 3 {
		t.Fatalf("LocalAttrsOf = %v", pairs)
	}
	if pairs[0] != (AttrPair{Local: "FNAME", Polygen: "ONAME"}) {
		t.Errorf("first pair = %v", pairs[0])
	}
}

// TestMergeBalancedMatchesFold: the balanced tree computes the same merged
// relation as the paper's left fold, modulo instance spelling (compared
// case-folded) and column order (projected onto scheme order).
func TestMergeBalancedMatchesFold(t *testing.T) {
	e := newEnv()
	alg := NewAlgebra(identity.CaseFold{})
	scheme := orgScheme()
	b, c, f := e.orgRelations()
	for _, rels := range [][]*Relation{
		{b}, {b, c}, {b, c, f}, {f, c, b},
	} {
		fold, err := alg.Merge(scheme, rels...)
		if err != nil {
			t.Fatal(err)
		}
		bal, err := alg.MergeBalanced(scheme, rels...)
		if err != nil {
			t.Fatal(err)
		}
		attrs := []string{}
		for _, pa := range scheme.Attrs {
			if _, err := fold.Col(pa.Name); err == nil {
				attrs = append(attrs, pa.Name)
			}
		}
		pf, err := alg.Project(fold, attrs)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := alg.Project(bal, attrs)
		if err != nil {
			t.Fatal(err)
		}
		lf, lb := render(pf), render(pb)
		for i := range lf {
			lf[i] = strings.ToLower(lf[i])
		}
		for i := range lb {
			lb[i] = strings.ToLower(lb[i])
		}
		if d := diffMultiset(lf, lb); d != "" {
			t.Errorf("balanced merge of %d relations differs:\n%s", len(rels), d)
		}
	}
}

func TestMergeBalancedZeroFails(t *testing.T) {
	if _, err := NewAlgebra(nil).MergeBalanced(orgScheme()); err == nil {
		t.Error("balanced merge of zero relations accepted")
	}
}
