package core

import (
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// The columnar kernels are the fifth engine of the parity contract: every
// ColBatch operator must equal the serial row operator cell for cell AND row
// for row (the columnar kernels reproduce first-occurrence order exactly),
// on inputs covering mixed kinds, NaN/-0 and >64-source overflow tag sets.

// colOver converts a relation to a single tagged column batch.
func colOver(p *Relation) *ColBatch { return FromRelation(p) }

// cellsSame compares rows datum-identically (all NaNs are one datum — the
// engine's identity notion; Value.Equal would make NaN rows incomparable)
// plus tag-set equality.
func cellsSame(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].D.Kind() != b[i].D.Kind() || !a[i].D.Identical(b[i].D) ||
			!a[i].O.Equal(b[i].O) || !a[i].I.Equal(b[i].I) {
			return false
		}
	}
	return true
}

func wantSameOrderedCol(t *testing.T, label string, i int, got *ColBatch, ref *Relation) {
	t.Helper()
	gr, rr := render(got.Relation()), render(ref)
	if !equalStrings(gr, rr) {
		t.Fatalf("iteration %d: %s: columnar row order or cells diverged from serial:\ncol:\n%s\nserial:\n%s",
			i, label, strings.Join(gr, "\n"), strings.Join(rr, "\n"))
	}
}

// TestPropertyColOpsMatchAllEngines: for random wide inputs every columnar
// kernel must equal the serial operator row for row and the string-keyed
// reference engine cell for cell.
func TestPropertyColOpsMatchAllEngines(t *testing.T) {
	g, reg := newWideGen(90)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")

		ser, err := alg.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		col, err := ColUnion(colOver(p1), colOver(p2))
		if err != nil {
			t.Fatal(err)
		}
		wantSameOrderedCol(t, "col union", i, col, ser)
		ref, err := alg.RefUnion(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "col union vs reference", i, col.Relation(), ref)

		ser, err = alg.Difference(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		col, err = ColDifference(colOver(p1), colOver(p2))
		if err != nil {
			t.Fatal(err)
		}
		wantSameOrderedCol(t, "col difference", i, col, ser)
		ref, err = alg.RefDifference(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "col difference vs reference", i, col.Relation(), ref)

		ser, err = alg.Intersect(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		col, err = ColIntersect(colOver(p1), colOver(p2))
		if err != nil {
			t.Fatal(err)
		}
		wantSameOrderedCol(t, "col intersect", i, col, ser)
		ref, err = alg.RefIntersect(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "col intersect vs reference", i, col.Relation(), ref)
	}
}

// TestColBatchRoundTrip: relation -> ColBatch -> Rows is the identity, tags
// included, and the columnar data hashes match the row-major DataHash64
// bit for bit (the combinable-hash contract).
func TestColBatchRoundTrip(t *testing.T) {
	g, reg := newWideGen(91)
	for i := 0; i < 200; i++ {
		p := g.wideRelation(reg, "A", "B", "C")
		b := FromRelation(p)
		if b.Len() != len(p.Tuples) {
			t.Fatalf("iteration %d: batch length %d for %d tuples", i, b.Len(), len(p.Tuples))
		}
		rows := b.Rows()
		for ri, want := range p.Tuples {
			if !cellsSame(rows[ri], want) {
				t.Fatalf("iteration %d: row %d diverged:\ncol: %v\nrow: %v", i, ri, rows[ri], want)
			}
			for ci := range want {
				c := b.Cell(ri, ci)
				if !cellsSame(Tuple{c}, Tuple{want[ci]}) {
					t.Fatalf("iteration %d: cell (%d,%d) diverged: %v vs %v", i, ri, ci, c, want[ci])
				}
			}
		}
		hashes := b.DataHashes(nil)
		for ri, want := range p.Tuples {
			if hashes[ri] != want.DataHash64() {
				t.Fatalf("iteration %d: row %d columnar hash %x != row hash %x", i, ri, hashes[ri], want.DataHash64())
			}
		}
	}
}

// TestColBatchSpecialValues: NaN unification, -0 round-trip, empty strings
// and >64-source overflow sets survive the columnar representation.
func TestColBatchSpecialValues(t *testing.T) {
	reg := sourceset.NewRegistry()
	big := sourceset.Empty()
	for i := 0; i < 70; i++ {
		big = big.With(reg.Intern(fmt.Sprintf("src%02d", i)))
	}
	p := NewRelation("S", reg, Attr{Name: "A"}, Attr{Name: "B"})
	nan := math.NaN()
	negz := math.Copysign(0, -1)
	rows := []Tuple{
		{Cell{D: rel.Float(nan), O: big}, Cell{D: rel.String("")}},
		{Cell{D: rel.Float(negz), I: big}, Cell{D: rel.Null()}},
		{Cell{D: rel.Bool(false), O: big, I: big}, Cell{D: rel.Int(0)}},
	}
	p.Tuples = rows
	b := FromRelation(p)
	got := b.Rows()
	for i := range rows {
		for ci := range rows[i] {
			w, g := rows[i][ci], got[i][ci]
			if w.D.Kind() != g.D.Kind() || !w.D.Identical(g.D) || !w.O.Equal(g.O) || !w.I.Equal(g.I) {
				t.Fatalf("row %d col %d: %v, %v, %v != %v, %v, %v", i, ci, g.D, g.O, g.I, w.D, w.O, w.I)
			}
		}
	}
	// -0 round-trips bit-exactly through the packed column.
	if math.Copysign(1, got[1][0].D.FloatVal()) != -1 {
		t.Fatal("-0 lost its sign through the columnar round trip")
	}
	// NaN hashes like every NaN.
	h := b.DataHashes(nil)
	alt := Tuple{Cell{D: rel.Float(math.NaN())}, Cell{D: rel.String("")}}
	if h[0] != alt.DataHash64() {
		t.Fatal("columnar NaN hash diverges from unified row NaN hash")
	}
}

// TestColCursorBatchEdges: the tagged columnar cursors across batch size 1,
// empty input, a final short batch, and mid-batch Close.
func TestColCursorBatchEdges(t *testing.T) {
	g, reg := newWideGen(92)
	p := g.wideRelation(reg, "A", "B")
	for len(p.Tuples) < 7 {
		p = g.wideRelation(reg, "A", "B")
	}
	p.Tuples = p.Tuples[:7]

	// Batch size 1: seven singleton batches, rows in order.
	c := NewColSliceCursor(p, 1)
	var rows []Tuple
	for {
		b, err := c.NextCol()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Len() != 1 {
			t.Fatalf("batch size 1 yielded %d rows", b.Len())
		}
		rows = append(rows, b.Rows()...)
	}
	if len(rows) != 7 {
		t.Fatalf("batch size 1 yielded %d rows in total", len(rows))
	}
	for i := range rows {
		if !cellsSame(rows[i], p.Tuples[i]) {
			t.Fatalf("row %d diverged through batch-1 cursor", i)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Empty input: immediate EOF on both row and columnar forms.
	empty := NewRelation("E", reg, Attr{Name: "A"}, Attr{Name: "B"})
	c = NewColSliceCursor(empty, 3)
	if _, err := c.NextCol(); err != io.EOF {
		t.Fatalf("empty columnar cursor: err %v, want EOF", err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("empty columnar cursor Next: err %v, want EOF", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Final short batch: 7 rows at batch 3 is 3+3+1.
	c = NewColSliceCursor(p, 3)
	var sizes []int
	for {
		b, err := c.NextCol()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, b.Len())
	}
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 3 || sizes[2] != 1 {
		t.Fatalf("batch sizes %v, want [3 3 1]", sizes)
	}
	c.Close()

	// Mid-batch Close: Close after the first batch ends the stream.
	c = NewColSliceCursor(p, 3)
	if _, err := c.NextCol(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextCol(); err != io.EOF {
		t.Fatalf("NextCol after Close: err %v, want EOF", err)
	}

	// Prebuilt batch cursor skips empty batches and interleaves Next with
	// NextCol (both advance the same stream).
	b1 := FromRelation(p)
	e := NewColBatch("", reg, p.Attrs)
	bc := NewColBatchCursor("", reg, p.Attrs, []*ColBatch{e, b1, e})
	batch, err := bc.Next()
	if err != nil || len(batch) != 7 {
		t.Fatalf("batch cursor: %d rows, err %v", len(batch), err)
	}
	if _, err := bc.NextCol(); err != io.EOF {
		t.Fatalf("batch cursor after last: err %v, want EOF", err)
	}
	bc.Close()
}
