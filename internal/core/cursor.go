package core

import (
	"io"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Cursor is the tagged counterpart of rel.Cursor: a pull-based producer of
// polygen tuple batches over a fixed attribute list. It is the unit the
// streaming execution engine composes — every streaming polygen operator
// (stream.go) consumes cursors and is one, so a plan becomes a tree of
// cursors through which batches flow without materializing intermediate
// relations.
//
// The contract mirrors rel.Cursor: Next returns the next non-empty batch or
// (nil, io.EOF); batches are immutable and stay valid across Next calls;
// cursors are single-consumer; Close is idempotent and must always be
// called, including after an error and on early abandonment (closing a
// composed cursor closes its inputs).
type Cursor interface {
	// Name is the relation name the batches belong to ("" for derived
	// results), used for attribute disambiguation in joins and products.
	Name() string
	// Attrs describes the columns of every batch.
	Attrs() []Attr
	// Registry resolves source IDs in the cells' tag sets.
	Registry() *sourceset.Registry
	// Next returns the next batch, or (nil, io.EOF) when exhausted.
	Next() ([]Tuple, error)
	// Close releases the cursor's resources.
	Close() error
}

// header carries the static part of a Cursor; the operator cursors embed it.
type header struct {
	name  string
	attrs []Attr
	reg   *sourceset.Registry
}

func (h *header) Name() string                  { return h.name }
func (h *header) Attrs() []Attr                 { return h.attrs }
func (h *header) Registry() *sourceset.Registry { return h.reg }

// relationCursor cuts a materialized polygen relation into batches.
type relationCursor struct {
	header
	tuples []Tuple
	at     int
	batch  int
}

// NewRelationCursor returns a cursor over p's tuples with the given batch
// size (values < 1 mean rel.DefaultBatchSize). The tuples are aliased, not
// copied.
func NewRelationCursor(p *Relation, batch int) Cursor {
	if batch < 1 {
		batch = rel.DefaultBatchSize
	}
	return &relationCursor{
		header: header{name: p.Name, attrs: p.Attrs, reg: p.Reg},
		tuples: p.Tuples,
		batch:  batch,
	}
}

// CursorOf returns a cursor over p's tuples in rel.DefaultBatchSize batches.
func CursorOf(p *Relation) Cursor { return NewRelationCursor(p, rel.DefaultBatchSize) }

func (c *relationCursor) Next() ([]Tuple, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := c.tuples[c.at:end:end]
	c.at = end
	return b, nil
}

// NextCol implements ColCursor: the next batch-sized run, columnarized
// (tag sets interned into the batch dictionary). Next keeps its zero-copy
// row batches; only columnar consumers (the mediator server's binary
// frames) pay for the conversion.
func (c *relationCursor) NextCol() (*ColBatch, error) {
	if c.at >= len(c.tuples) {
		return nil, io.EOF
	}
	end := c.at + c.batch
	if end > len(c.tuples) {
		end = len(c.tuples)
	}
	b := NewColBatch(c.name, c.reg, c.attrs)
	for _, t := range c.tuples[c.at:end] {
		b.AppendTuple(t)
	}
	c.at = end
	return b, nil
}

func (c *relationCursor) Close() error { return nil }

var _ ColCursor = (*relationCursor)(nil)

// Drain materializes a cursor into a polygen relation and closes it. Batch
// tuples are retained, not copied — the Cursor contract keeps them valid
// and immutable.
func Drain(c Cursor) (*Relation, error) {
	out := NewRelation(c.Name(), c.Registry(), c.Attrs()...)
	for {
		batch, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			c.Close()
			return nil, err
		}
		out.Tuples = append(out.Tuples, batch...)
	}
	return out, c.Close()
}

// closeAll closes every cursor, keeping the first error.
func closeAll(cs []Cursor) error {
	var first error
	for _, c := range cs {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
