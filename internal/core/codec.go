package core

// This file implements the tagged half of the binary columnar codec: a plain
// rel frame (see rel/codec.go) extended with the source-tag machinery a
// core.ColBatch carries. The wire protocol sends these as "queryopen" stream
// frames; the spill layer (core/spill.go) writes them into checksummed temp
// segments so a partition re-probed from disk keeps its provenance tags.
//
//	+-------+--------+--------+---------+--------+---------------- ... ----+
//	| 0xC2  | ncols  | nrows  | sources | sets   | tagged col 0 | ...      |
//	+-------+--------+--------+---------+--------+---------------- ... ----+
//
// A tagged column is a plain column followed by two tag-index vectors, one
// uvarint per row each (origin then intermediate), indexing the frame's set
// directory. The directories come once per frame:
//
//	sources   uvarint count, then per name: uvarint len + bytes
//	sets      uvarint count (>= 1; set 0 is the empty set), then per set:
//	          uvarint member count + one uvarint source index per member
//
// The frame carries its own source-name directory, so a receiver re-interns
// names into its registry instead of trusting registry IDs across processes.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// FrameMagicTagged opens a source-tagged columnar frame (a core.ColBatch).
const FrameMagicTagged = 0xC2

// AppendFrame appends one tagged columnar frame to buf and returns it.
func AppendFrame(buf []byte, b *ColBatch) []byte {
	d := b.Degree()
	buf = append(buf, FrameMagicTagged)
	buf = binary.AppendUvarint(buf, uint64(d))
	buf = binary.AppendUvarint(buf, uint64(b.Len()))

	// Source-name directory: every ID referenced by the set dictionary, in
	// first-reference order.
	index := make(map[sourceset.ID]uint64)
	var names []string
	for _, s := range b.Sets {
		for _, id := range s.IDs() {
			if _, ok := index[id]; !ok {
				index[id] = uint64(len(names))
				names = append(names, b.Reg.Name(id))
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}

	// Set directory: the batch's tag dictionary, each set as source indexes.
	buf = binary.AppendUvarint(buf, uint64(len(b.Sets)))
	for _, s := range b.Sets {
		ids := s.IDs()
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, index[id])
		}
	}

	for ci := 0; ci < d; ci++ {
		buf = rel.AppendColumnData(buf, &b.Data[ci])
		for _, ix := range b.OTag[ci] {
			buf = binary.AppendUvarint(buf, uint64(ix))
		}
		for _, ix := range b.ITag[ci] {
			buf = binary.AppendUvarint(buf, uint64(ix))
		}
	}
	return buf
}

// decodeTagVector decodes one per-row tag-index vector, validating every
// index against the set directory.
func decodeTagVector(r *rel.FrameReader, n, nsets int) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(nsets) {
			return nil, fmt.Errorf("core: frame tag index %d outside set directory of %d", v, nsets)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

// DecodeFrame decodes one tagged columnar frame into the receiver's
// attribute space, re-interning the frame's source names into reg.
func DecodeFrame(payload []byte, name string, attrs []Attr, reg *sourceset.Registry) (*ColBatch, error) {
	r := rel.NewFrameReader(payload)
	magic, err := r.U8()
	if err != nil {
		return nil, err
	}
	if magic != FrameMagicTagged {
		return nil, fmt.Errorf("core: frame magic %#x, want %#x", magic, FrameMagicTagged)
	}
	// As in rel.DecodeFrame, ncols is bounded by the attribute list, not by
	// the payload size.
	ncols, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ncols != uint64(len(attrs)) {
		return nil, fmt.Errorf("core: frame has %d columns for %d attributes", ncols, len(attrs))
	}
	nrows, err := r.Length(r.Remaining())
	if err != nil {
		return nil, err
	}

	// Source directory: each name costs at least its length prefix.
	nsources, err := r.Length(r.Remaining())
	if err != nil {
		return nil, err
	}
	ids := make([]sourceset.ID, nsources)
	for i := range ids {
		l, err := r.Length(r.Remaining())
		if err != nil {
			return nil, err
		}
		nb, err := r.Take(l)
		if err != nil {
			return nil, err
		}
		ids[i] = reg.Intern(string(nb))
	}

	// Set directory: each set costs at least its member-count varint.
	nsets, err := r.Length(r.Remaining())
	if err != nil {
		return nil, err
	}
	if nsets < 1 {
		return nil, fmt.Errorf("core: frame has an empty set directory")
	}
	sets := make([]sourceset.Set, nsets)
	for i := range sets {
		members, err := r.Length(r.Remaining())
		if err != nil {
			return nil, err
		}
		var s sourceset.Set
		for m := 0; m < members; m++ {
			si, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if si >= uint64(len(ids)) {
				return nil, fmt.Errorf("core: frame source index %d outside directory of %d", si, len(ids))
			}
			s = s.With(ids[si])
		}
		sets[i] = s
	}

	data := make([]rel.Column, ncols)
	otag := make([][]uint32, ncols)
	itag := make([][]uint32, ncols)
	for ci := range data {
		if data[ci], err = r.DecodeColumn(nrows); err != nil {
			return nil, fmt.Errorf("core: column %d: %w", ci, err)
		}
		if otag[ci], err = decodeTagVector(r, nrows, nsets); err != nil {
			return nil, fmt.Errorf("core: column %d origin tags: %w", ci, err)
		}
		if itag[ci], err = decodeTagVector(r, nrows, nsets); err != nil {
			return nil, fmt.Errorf("core: column %d intermediate tags: %w", ci, err)
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("core: frame has %d trailing bytes", r.Remaining())
	}
	return BuildColBatch(name, reg, attrs, data, otag, itag, sets, nrows)
}
