package core

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// This file implements the columnar kernels: Union, Difference and
// Intersection over ColBatch operands, cell-for-cell and tag-for-tag
// identical to the serial row operators (algebra.go) — same first-occurrence
// row order, same tag merges — but running per-column over vectors. Hashing
// is a column-stripe pass (DataHashes), tag sets are dictionary indexes
// merged through a per-pair memo instead of per-cell Set unions, and output
// rows are appended to growing column vectors instead of boxed Cell rows.
// The parity suite (columnar_test.go) proves the equivalence property-style,
// making the columnar path the fifth engine beside serial, streaming,
// parallel and the string-keyed reference.

// tagMerger memoizes tag-set unions inside one output batch: merging two
// dictionary indexes is computed once per distinct (a, b) pair, then reused
// for every cell that repeats the pair — which in federation workloads is
// nearly all of them.
type tagMerger struct {
	out  *ColBatch
	memo map[uint64]uint32
}

func newTagMerger(out *ColBatch) *tagMerger {
	return &tagMerger{out: out, memo: make(map[uint64]uint32)}
}

// merge returns the dictionary index of Sets[a] ∪ Sets[b].
func (m *tagMerger) merge(a, b uint32) uint32 {
	if a == b || b == 0 {
		return a
	}
	if a == 0 {
		return b
	}
	key := uint64(a)<<32 | uint64(b)
	if r, ok := m.memo[key]; ok {
		return r
	}
	r := m.out.InternSet(m.out.Sets[a].Union(m.out.Sets[b]))
	m.memo[key] = r
	return r
}

// mergeSet returns the dictionary index of Sets[a] ∪ s.
func (m *tagMerger) mergeSet(a uint32, s sourceset.Set) uint32 {
	return m.merge(a, m.out.InternSet(s))
}

// importDict interns every set of in's dictionary into out, returning the
// index translation vector — after which a whole input batch's tag columns
// read as out-dictionary indexes with one array lookup per cell.
func importDict(out, in *ColBatch) []uint32 {
	d := make([]uint32, len(in.Sets))
	for i, s := range in.Sets {
		d[i] = out.InternSet(s)
	}
	return d
}

// colInserter inserts rows of one source batch into an output batch under
// the algebra's set semantics: a duplicate data portion merges its tag
// indexes into the existing output row; a new one appends a row to the
// column vectors — the columnar dedupInsertHashed. The equality closure is
// built once per source batch and reads the probe row through the struct,
// so the per-row Find calls don't allocate a capture.
type colInserter struct {
	out  *ColBatch
	ix   rel.BucketIndex
	m    *tagMerger
	src  *ColBatch
	dict []uint32 // src dictionary index -> out dictionary index
	row  int
	same func(int) bool
}

func newColInserter(out *ColBatch, ix rel.BucketIndex, m *tagMerger, src *ColBatch) *colInserter {
	ins := &colInserter{out: out, ix: ix, m: m, src: src, dict: importDict(out, src)}
	ins.same = func(at int) bool { return dataEqualAt(ins.out, at, ins.src, ins.row) }
	return ins
}

// insert adds row i of src (pre-hashed to h), reporting whether a row was
// appended rather than merged.
func (ins *colInserter) insert(i int, h uint64) bool {
	out, src, dict := ins.out, ins.src, ins.dict
	ins.row = i
	if at, dup := ins.ix.Find(h, ins.same); dup {
		for ci := range out.Data {
			out.OTag[ci][at] = ins.m.merge(out.OTag[ci][at], dict[src.OTag[ci][i]])
			out.ITag[ci][at] = ins.m.merge(out.ITag[ci][at], dict[src.ITag[ci][i]])
		}
		return false
	}
	for ci := range out.Data {
		out.Data[ci].Append(src.Data[ci].Value(i))
		out.OTag[ci] = append(out.OTag[ci], dict[src.OTag[ci][i]])
		out.ITag[ci] = append(out.ITag[ci], dict[src.ITag[ci][i]])
	}
	ins.ix.Add(h, out.n)
	out.n++
	out.rows = nil
	return true
}

// reserveDoubling keeps out's vectors ahead of its append loop when the
// output size is unknown: capacity doubles from a 1024-row floor, so the
// growth series totals ~2x the final size instead of the ~5x that append's
// large-slice growth factor accumulates. It returns the new reservation.
func reserveDoubling(out *ColBatch, reserved int) int {
	if out.n < reserved {
		return reserved
	}
	step := reserved
	if step < 1024 {
		step = 1024
	}
	out.Grow(step)
	return reserved + step
}

// originUnionCol returns b(o): the union of every origin set referenced by
// b's tag columns — each distinct dictionary entry folded in once.
func originUnionCol(b *ColBatch) sourceset.Set {
	var s sourceset.Set
	folded := make([]bool, len(b.Sets))
	for ci := range b.OTag {
		for _, ix := range b.OTag[ci] {
			if !folded[ix] {
				folded[ix] = true
				s = s.Union(b.Sets[ix])
			}
		}
	}
	return s
}

// rowOriginUnion returns the union of the origin sets of row i's cells.
func rowOriginUnion(b *ColBatch, i int) sourceset.Set {
	var s sourceset.Set
	for ci := range b.OTag {
		s = s.Union(b.Sets[b.OTag[ci][i]])
	}
	return s
}

// ColUnion is the columnar Union primitive: the deduplicated rows of p1 then
// p2 in first-occurrence order, duplicate data portions merging their tag
// sets cell by cell — identical to Algebra.Union on the row views.
func ColUnion(p1, p2 *ColBatch) (*ColBatch, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: union of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	out := NewColBatch("", p1.Reg, p1.Attrs)
	m := newTagMerger(out)
	n := p1.Len()
	if p2.Len() > n {
		n = p2.Len()
	}
	// Reserve the larger input's row count: union outputs rarely exceed it
	// (duplicates merge), and a miss only resumes append growth.
	out.Grow(n)
	ix := rel.NewBucketIndex(n)
	var hashes []uint64
	for _, src := range [...]*ColBatch{p1, p2} {
		hashes = src.DataHashes(hashes)
		ins := newColInserter(out, ix, m, src)
		for i := 0; i < src.Len(); i++ {
			ins.insert(i, hashes[i])
		}
	}
	return out, nil
}

// ColDifference is the columnar Difference primitive p1 − p2: the rows of
// p1 whose data portion does not occur in p2 (first occurrences only), with
// p2(o) added to every cell's intermediate set — identical to
// Algebra.Difference on the row views.
func ColDifference(p1, p2 *ColBatch) (*ColBatch, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: difference of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	drop := rel.NewBucketIndex(p2.Len())
	h2 := p2.DataHashes(nil)
	for i := range h2 {
		drop.Add(h2[i], i)
	}
	p2o := originUnionCol(p2)
	out := NewColBatch("", p1.Reg, p1.Attrs)
	seen := rel.NewBucketIndex(p1.Len())
	dict := importDict(out, p1)
	// iDict maps p1's intermediate tag indexes to their p2o-augmented output
	// indexes lazily — one union per distinct input set, not per cell.
	iDict := make([]uint32, len(p1.Sets))
	iDone := make([]bool, len(p1.Sets))
	// drop keeps its own copy of every entry's hash, so h2's buffer is free
	// to reuse for the probe side.
	h1 := p1.DataHashes(h2)
	// The probe closures are built once and read the loop row through probe,
	// so the per-row Find calls don't allocate captures.
	probe := 0
	reserved := 0
	dropSame := func(at int) bool { return dataEqualAt(p2, at, p1, probe) }
	seenSame := func(at int) bool { return dataEqualAt(out, at, p1, probe) }
	for i := 0; i < p1.Len(); i++ {
		h := h1[i]
		probe = i
		if _, gone := drop.Find(h, dropSame); gone {
			continue
		}
		if _, dup := seen.Find(h, seenSame); dup {
			continue
		}
		reserved = reserveDoubling(out, reserved)
		for ci := range out.Data {
			out.Data[ci].Append(p1.Data[ci].Value(i))
			out.OTag[ci] = append(out.OTag[ci], dict[p1.OTag[ci][i]])
			it := p1.ITag[ci][i]
			if !iDone[it] {
				iDict[it] = out.InternSet(p1.Sets[it].Union(p2o))
				iDone[it] = true
			}
			out.ITag[ci] = append(out.ITag[ci], iDict[it])
		}
		seen.Add(h, out.n)
		out.n++
	}
	out.rows = nil
	return out, nil
}

// ColIntersect is the columnar Intersection: rows of p1 whose data portion
// occurs in p2, each match merging the p2 row's tags and adding both rows'
// origin unions to every cell's intermediate set, deduplicated in
// first-occurrence order — identical to Algebra.Intersect on the row views.
func ColIntersect(p1, p2 *ColBatch) (*ColBatch, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: intersect of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	ix2 := rel.NewBucketIndex(p2.Len())
	h2 := p2.DataHashes(nil)
	for i := range h2 {
		ix2.Add(h2[i], i)
	}
	out := NewColBatch("", p1.Reg, p1.Attrs)
	m := newTagMerger(out)
	dict1 := importDict(out, p1)
	dict2 := importDict(out, p2)
	// o2ix caches the per-build-row origin-union dictionary index, computed
	// on first match.
	o2ix := make([]uint32, p2.Len())
	o2done := make([]bool, p2.Len())
	pos := rel.NewBucketIndex(rel.DefaultBatchSize)
	degree := p1.Degree()
	// The scratch row accumulates its tags as output-dictionary indexes, so
	// every union in the probe loop runs through the tag-merge memo — the
	// Set work is one union per distinct index pair, not one per match.
	rowD := make([]rel.Value, degree)
	rowO := make([]uint32, degree)
	rowI := make([]uint32, degree)
	// ix2 keeps its own copy of every entry's hash; reuse h2's buffer.
	h1 := p1.DataHashes(h2)
	// One match closure for the whole probe, reading the loop row (and the
	// matched flag) through captured locals — no per-row allocation.
	probe := 0
	reserved := 0
	matched := false
	var o1ix uint32
	match := func(mi int) bool {
		if !dataEqualAt(p2, mi, p1, probe) {
			return true
		}
		if !matched {
			matched = true
			o1ix = 0
			for ci := 0; ci < degree; ci++ {
				rowD[ci] = p1.Data[ci].Value(probe)
				rowO[ci] = dict1[p1.OTag[ci][probe]]
				rowI[ci] = dict1[p1.ITag[ci][probe]]
				o1ix = m.merge(o1ix, rowO[ci])
			}
		}
		if !o2done[mi] {
			var o uint32
			for ci := 0; ci < degree; ci++ {
				o = m.merge(o, dict2[p2.OTag[ci][mi]])
			}
			o2ix[mi] = o
			o2done[mi] = true
		}
		// mediators: the union of both rows' origin sets, added to every
		// cell's intermediate set (WithIntermediate on the row path).
		mix := m.merge(o1ix, o2ix[mi])
		for ci := 0; ci < degree; ci++ {
			rowO[ci] = m.merge(rowO[ci], dict2[p2.OTag[ci][mi]])
			rowI[ci] = m.merge(rowI[ci], m.merge(dict2[p2.ITag[ci][mi]], mix))
		}
		return true
	}
	posSame := func(at int) bool {
		for ci := range rowD {
			if !out.Data[ci].Value(at).Identical(rowD[ci]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < p1.Len(); i++ {
		probe, matched = i, false
		ix2.ForEach(h1[i], match)
		if !matched {
			continue
		}
		if at, dup := pos.Find(h1[i], posSame); dup {
			for ci := range out.Data {
				out.OTag[ci][at] = m.merge(out.OTag[ci][at], rowO[ci])
				out.ITag[ci][at] = m.merge(out.ITag[ci][at], rowI[ci])
			}
			continue
		}
		reserved = reserveDoubling(out, reserved)
		for ci := range out.Data {
			out.Data[ci].Append(rowD[ci])
			out.OTag[ci] = append(out.OTag[ci], rowO[ci])
			out.ITag[ci] = append(out.ITag[ci], rowI[ci])
		}
		pos.Add(h1[i], out.n)
		out.n++
		out.rows = nil
	}
	return out, nil
}

// dataEqualRowValues reports whether output row at matches the scratch data
// row — kept for kernels that probe with materialized values.
func dataEqualRowValues(out *ColBatch, at int, row []rel.Value) bool {
	for ci := range row {
		if !out.Data[ci].Value(at).Identical(row[ci]) {
			return false
		}
	}
	return true
}
