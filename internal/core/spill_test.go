package core

import (
	"os"
	"testing"

	"repro/internal/identity"
	"repro/internal/rel"
)

// The spill parity suite: every budgeted operator must agree cell for cell
// (data, origin tags, intermediate tags) with its unbudgeted materialized
// twin, under budgets tiny enough that partitions are provably forced to
// disk, and must leave no temp segments behind.

// spillAlgebra returns an algebra whose budget forces spilling on even the
// tiny property-test relations, spilling into a per-test temp dir.
func spillAlgebra(t *testing.T, res identity.Resolver, budget int64) (*Algebra, *Memory) {
	t.Helper()
	alg := NewAlgebra(res)
	mem := &Memory{Budget: budget, TempDir: t.TempDir(), Partitions: 4}
	alg.SetMemory(mem)
	return alg, mem
}

// wantSpilled asserts the budget actually engaged and the temp dir is clean.
func wantSpilled(t *testing.T, mem *Memory) {
	t.Helper()
	if mem.Spills.Load() == 0 {
		t.Fatal("budget never forced a spill")
	}
	if mem.Reloads.Load() == 0 {
		t.Fatal("no spilled partition was ever reloaded")
	}
	entries, err := os.ReadDir(mem.TempDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill segments leaked in %s", len(entries), mem.TempDir)
	}
}

func TestPropertySpillProjectMatchesMaterialized(t *testing.T) {
	g, reg := newWideGen(90)
	ref := NewAlgebra(nil)
	for _, budget := range []int64{1, 512} {
		alg, mem := spillAlgebra(t, nil, budget)
		for i := 0; i < 150; i++ {
			p := g.wideRelation(reg, "A", "B", "C")
			mat, err := ref.Project(p, []string{"C", "A"})
			if err != nil {
				t.Fatal(err)
			}
			str := mustDrain(alg.StreamProject(cursorOver(p), []string{"C", "A"}))
			wantSameRendered(t, "spill project", i, str, mat)
		}
		if budget == 1 {
			wantSpilled(t, mem)
		}
	}
}

func TestPropertySpillUnionMatchesMaterialized(t *testing.T) {
	g, reg := newWideGen(91)
	ref := NewAlgebra(nil)
	alg, mem := spillAlgebra(t, nil, 1)
	for i := 0; i < 150; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")
		mat, err := ref.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		str := mustDrain(alg.StreamUnion(cursorOver(p1), cursorOver(p2)))
		wantSameRendered(t, "spill union", i, str, mat)
	}
	wantSpilled(t, mem)
}

func TestPropertySpillDifferenceMatchesMaterialized(t *testing.T) {
	g, reg := newWideGen(92)
	ref := NewAlgebra(nil)
	alg, mem := spillAlgebra(t, nil, 1)
	for i := 0; i < 150; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")
		mat, err := ref.Difference(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		str := mustDrain(alg.StreamDifference(cursorOver(p1), cursorOver(p2)))
		wantSameRendered(t, "spill difference", i, str, mat)
	}
	wantSpilled(t, mem)
}

func TestPropertySpillJoinMatchesEngines(t *testing.T) {
	resolvers := []identity.Resolver{
		identity.Exact{},
		identity.CaseFold{},
		identity.NewSynonyms(identity.CaseFold{},
			[]rel.Value{rel.String("a"), rel.String("b")},
			[]rel.Value{rel.String("c"), rel.String("d")},
		),
	}
	for ri, res := range resolvers {
		g, reg := newWideGen(int64(93 + ri))
		// The resolver's interned-ID table is per-algebra state, so the
		// budgeted and reference algebras each get their own instance.
		ref := NewAlgebra(res)
		alg, mem := spillAlgebra(t, res, 1)
		for i := 0; i < 100; i++ {
			p1 := g.wideRelation(reg, "K/PK", "V")
			p2 := g.wideRelation(reg, "K2/PK", "W")
			mat, err := ref.Join(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			str := mustDrain(alg.StreamJoin(cursorOver(p1), "K", rel.ThetaEQ, cursorOver(p2), "K2"))
			wantSameRendered(t, "spill join", i, str, mat)
		}
		wantSpilled(t, mem)
	}
}

// TestSpillJoinModerateBudget forces only part of the build side to disk —
// the genuinely hybrid regime where resident and spilled partitions coexist.
func TestSpillJoinModerateBudget(t *testing.T) {
	g, reg := newWideGen(97)
	res := identity.CaseFold{}
	ref := NewAlgebra(res)
	alg, mem := spillAlgebra(t, res, 400)
	for i := 0; i < 150; i++ {
		p1 := g.wideRelation(reg, "K/PK", "V")
		p2 := g.wideRelation(reg, "K2/PK", "W")
		mat, err := ref.Join(p1, "K", rel.ThetaEQ, p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		str := mustDrain(alg.StreamJoin(cursorOver(p1), "K", rel.ThetaEQ, cursorOver(p2), "K2"))
		wantSameRendered(t, "hybrid join", i, str, mat)
	}
	wantSpilled(t, mem)
}

// TestSpillEarlyCloseCleansUp closes a spilling join mid-probe and asserts
// no temp segments survive.
func TestSpillEarlyCloseCleansUp(t *testing.T) {
	g, reg := newWideGen(98)
	alg, mem := spillAlgebra(t, nil, 1)
	p1 := g.wideRelation(reg, "K/PK", "V")
	p2 := g.wideRelation(reg, "K2/PK", "W")
	c, err := alg.StreamJoin(cursorOver(p1), "K", rel.ThetaEQ, cursorOver(p2), "K2")
	if err != nil {
		t.Fatal(err)
	}
	c.Next() // trigger the build (and with it the spilling)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.Spills.Load() == 0 {
		t.Skip("inputs too small to spill") // generator-dependent; never expected
	}
	entries, err := os.ReadDir(mem.TempDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("%d spill segments leaked after early close", len(entries))
	}
}

// TestMemoryZeroBudgetDisables proves SetMemory with no budget leaves every
// operator on the in-memory path.
func TestMemoryZeroBudgetDisables(t *testing.T) {
	g, reg := newWideGen(99)
	alg := NewAlgebra(nil)
	mem := &Memory{TempDir: t.TempDir()}
	alg.SetMemory(mem)
	p1 := g.wideRelation(reg, "A", "B")
	p2 := g.wideRelation(reg, "A", "B")
	if _, err := Drain(must(alg.StreamUnion(cursorOver(p1), cursorOver(p2)))); err != nil {
		t.Fatal(err)
	}
	if mem.Spills.Load() != 0 || mem.SpilledRows.Load() != 0 {
		t.Fatal("zero budget spilled")
	}
}

func must(c Cursor, err error) Cursor {
	if err != nil {
		panic(err)
	}
	return c
}
