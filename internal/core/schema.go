package core

import (
	"fmt"
	"strings"

	"repro/internal/domainmap"
)

// LocalAttr identifies one attribute of one relation of one local database —
// the (LD, LS, LA) triplets of the paper's attribute mapping relationships.
type LocalAttr struct {
	// DB is the local database name (LD), e.g. "AD".
	DB string
	// Scheme is the local scheme name (LS), e.g. "BUSINESS".
	Scheme string
	// Attr is the local attribute name (LA), e.g. "BNAME".
	Attr string
}

// String renders the triplet as "(AD, BUSINESS, BNAME)".
func (l LocalAttr) String() string {
	return fmt.Sprintf("(%s, %s, %s)", l.DB, l.Scheme, l.Attr)
}

// PolygenAttr is one attribute of a polygen scheme together with its mapping
// set MA = {(LD, LS, LA), ...}.
type PolygenAttr struct {
	// Name is the polygen attribute name (PA), e.g. "ONAME".
	Name string
	// Mapping is MA: the local attributes this polygen attribute draws
	// values from.
	Mapping []LocalAttr
}

// Scheme is a polygen scheme P = ((PA1, MA1), ..., (PAn, MAn)).
type Scheme struct {
	// Name is the polygen scheme name, e.g. "PORGANIZATION".
	Name string
	// Attrs lists the polygen attributes in order.
	Attrs []PolygenAttr
	// Key is the primary key polygen attribute (the underlined attribute of
	// the paper's schemes); the Outer Natural Primary Join joins on it.
	Key string
}

// Attr returns the named polygen attribute.
func (s *Scheme) Attr(name string) (PolygenAttr, bool) {
	for _, a := range s.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return PolygenAttr{}, false
}

// AttrNames returns the polygen attribute names in order.
func (s *Scheme) AttrNames() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// LocalSchemes returns the distinct (DB, Scheme) pairs the scheme draws from,
// in first-appearance order over the key attribute then the rest. For
// PORGANIZATION this is [(AD, BUSINESS), (PD, CORPORATION), (CD, FIRM)] —
// the retrieval fan-out of the POI's multi-source case (Figure 3).
func (s *Scheme) LocalSchemes() []LocalRelation {
	var out []LocalRelation
	seen := make(map[LocalRelation]bool)
	add := func(la LocalAttr) {
		lr := LocalRelation{DB: la.DB, Scheme: la.Scheme}
		if !seen[lr] {
			seen[lr] = true
			out = append(out, lr)
		}
	}
	// Key attribute first: every local relation participating in the scheme
	// must map the key (it is the join attribute of the Merge).
	if key, ok := s.Attr(s.Key); ok {
		for _, la := range key.Mapping {
			add(la)
		}
	}
	for _, a := range s.Attrs {
		for _, la := range a.Mapping {
			add(la)
		}
	}
	return out
}

// LocalRelation identifies one local relation (LD, LS).
type LocalRelation struct {
	DB     string
	Scheme string
}

// String renders as "AD.BUSINESS".
func (l LocalRelation) String() string { return l.DB + "." + l.Scheme }

// LocalAttrsOf returns, for the given local relation, the pairs
// (local attribute name, polygen attribute name) that the scheme maps.
func (s *Scheme) LocalAttrsOf(lr LocalRelation) []AttrPair {
	var out []AttrPair
	for _, a := range s.Attrs {
		for _, la := range a.Mapping {
			if la.DB == lr.DB && la.Scheme == lr.Scheme {
				out = append(out, AttrPair{Local: la.Attr, Polygen: a.Name})
			}
		}
	}
	return out
}

// AttrPair relates a local attribute name to its polygen attribute name.
type AttrPair struct {
	Local   string
	Polygen string
}

// String renders the scheme in the paper's notation.
func (s *Scheme) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		ms := make([]string, len(a.Mapping))
		for j, la := range a.Mapping {
			ms[j] = la.String()
		}
		parts[i] = fmt.Sprintf("(%s, {%s})", a.Name, strings.Join(ms, ", "))
	}
	return fmt.Sprintf("%s = (%s)", s.Name, strings.Join(parts, ", "))
}

// Schema is a polygen schema: a set of polygen schemes plus the attribute
// mapping metadata the Polygen Operation Interpreter consumes — including
// the reverse mapping PA(LS, LA) used by pass two (Figure 4, footnote 12)
// and the domain mapping table the paper assumes is "available to the PQP".
type Schema struct {
	schemes map[string]*Scheme
	order   []string
	// reverse maps a local attribute to the polygen attributes it feeds.
	reverse map[LocalAttr][]SchemeAttr
	// DomainMap holds per-local-attribute value conversions applied at
	// Retrieve time (see package domainmap).
	DomainMap *domainmap.Table
}

// SchemeAttr names one polygen attribute within one scheme.
type SchemeAttr struct {
	Scheme string
	Attr   string
}

// NewSchema builds a schema from schemes. Scheme keys default to the first
// attribute. It fails on duplicate scheme names, empty schemes, unknown key
// attributes, or attributes with empty mapping sets.
func NewSchema(schemes ...*Scheme) (*Schema, error) {
	s := &Schema{
		schemes:   make(map[string]*Scheme, len(schemes)),
		reverse:   make(map[LocalAttr][]SchemeAttr),
		DomainMap: domainmap.NewTable(),
	}
	for _, p := range schemes {
		if len(p.Attrs) == 0 {
			return nil, fmt.Errorf("core: polygen scheme %q has no attributes", p.Name)
		}
		if _, dup := s.schemes[p.Name]; dup {
			return nil, fmt.Errorf("core: duplicate polygen scheme %q", p.Name)
		}
		if p.Key == "" {
			p.Key = p.Attrs[0].Name
		}
		if _, ok := p.Attr(p.Key); !ok {
			return nil, fmt.Errorf("core: scheme %q key %q is not one of its attributes", p.Name, p.Key)
		}
		seen := make(map[string]bool)
		for _, a := range p.Attrs {
			if seen[a.Name] {
				return nil, fmt.Errorf("core: scheme %q has duplicate attribute %q", p.Name, a.Name)
			}
			seen[a.Name] = true
			if len(a.Mapping) == 0 {
				return nil, fmt.Errorf("core: scheme %q attribute %q has an empty mapping set", p.Name, a.Name)
			}
			for _, la := range a.Mapping {
				s.reverse[la] = append(s.reverse[la], SchemeAttr{Scheme: p.Name, Attr: a.Name})
			}
		}
		s.schemes[p.Name] = p
		s.order = append(s.order, p.Name)
	}
	return s, nil
}

// MustSchema is NewSchema for statically-known schemas; it panics on error.
func MustSchema(schemes ...*Scheme) *Schema {
	s, err := NewSchema(schemes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Scheme returns the named polygen scheme.
func (s *Schema) Scheme(name string) (*Scheme, bool) {
	p, ok := s.schemes[name]
	return p, ok
}

// SchemeNames returns the scheme names in declaration order.
func (s *Schema) SchemeNames() []string { return append([]string(nil), s.order...) }

// PolygenAttrOf implements the PA(local scheme, local attribute) function of
// the pass-two algorithm: given a local attribute it returns the polygen
// attribute name it maps to. When the local attribute feeds several polygen
// attributes the first (declaration order) wins; the worked example's schema
// has no such sharing.
func (s *Schema) PolygenAttrOf(la LocalAttr) (SchemeAttr, bool) {
	if sas, ok := s.reverse[la]; ok && len(sas) > 0 {
		return sas[0], true
	}
	return SchemeAttr{}, false
}

// LocalColumns enumerates the column names of db's local scheme that the
// polygen schema knows about, in scheme-declaration order, duplicates
// removed. The federation's graceful-degradation path uses it to shape the
// empty stand-in relation of a source whose replicas are all exhausted —
// when the source cannot be asked for its schema, the polygen mappings are
// the authority on what its columns would have been.
func (s *Schema) LocalColumns(db, localScheme string) ([]string, bool) {
	var cols []string
	seen := make(map[string]bool)
	for _, name := range s.order {
		for _, a := range s.schemes[name].Attrs {
			for _, la := range a.Mapping {
				if la.DB == db && la.Scheme == localScheme && !seen[la.Attr] {
					seen[la.Attr] = true
					cols = append(cols, la.Attr)
				}
			}
		}
	}
	return cols, len(cols) > 0
}

// ResolveAttr finds which scheme-attribute a (scheme, polygen attr name)
// reference denotes, confirming the attribute exists.
func (s *Schema) ResolveAttr(scheme, attr string) (PolygenAttr, error) {
	p, ok := s.schemes[scheme]
	if !ok {
		return PolygenAttr{}, fmt.Errorf("core: no polygen scheme %q", scheme)
	}
	a, ok := p.Attr(attr)
	if !ok {
		return PolygenAttr{}, fmt.Errorf("core: scheme %q has no attribute %q", scheme, attr)
	}
	return a, nil
}
