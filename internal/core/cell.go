// Package core implements the paper's primary contribution: the polygen
// model and the polygen algebra (Wang & Madnick 1990, §II).
//
// A polygen relation is a relation whose every cell is an ordered triplet
//
//	c = (c(d), c(o), c(i))
//
// where c(d) is the datum, c(o) the set of local databases the datum
// originates from, and c(i) the set of local databases whose data led to the
// selection of the datum (the intermediate sources). The six orthogonal
// primitives — Project, Cartesian Product, Restrict, Union, Difference and
// Coalesce — propagate the two tag sets exactly as §II prescribes; Select,
// Join, Intersection, Retrieve, Outer Natural Primary Join, Outer Natural
// Total Join and Merge are derived from them.
package core

import (
	"fmt"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Cell is one polygen cell: the datum plus its originating and intermediate
// source tags.
type Cell struct {
	// D is the datum portion c(d).
	D rel.Value
	// O is the originating source portion c(o): the local databases the
	// datum came from.
	O sourceset.Set
	// I is the intermediate source portion c(i): the local databases whose
	// data led to the selection of this datum.
	I sourceset.Set
}

// NilCell returns the nil-padded cell produced by outer joins: no datum, no
// origin, and the given intermediate sources.
func NilCell(i sourceset.Set) Cell { return Cell{D: rel.Null(), I: i} }

// WithIntermediate returns the cell with extra added to its intermediate set.
func (c Cell) WithIntermediate(extra sourceset.Set) Cell {
	return Cell{D: c.D, O: c.O, I: c.I.Union(extra)}
}

// MergeTags returns the cell with d's origin and intermediate sets folded in,
// as Project and Union do when collapsing duplicate data.
func (c Cell) MergeTags(d Cell) Cell {
	return Cell{D: c.D, O: c.O.Union(d.O), I: c.I.Union(d.I)}
}

// Equal reports full equality: datum, origin set and intermediate set.
func (c Cell) Equal(d Cell) bool {
	return c.D.Equal(d.D) && c.O.Equal(d.O) && c.I.Equal(d.I)
}

// Format renders the cell in the paper's table notation, e.g.
// "Genentech, {AD, CD}, {AD, CD}".
func (c Cell) Format(reg *sourceset.Registry) string {
	return fmt.Sprintf("%s, %s, %s", c.D, c.O.Format(reg), c.I.Format(reg))
}

// Tuple is an ordered list of polygen cells.
type Tuple []Cell

// DataKey returns a string key over the data portion t(d) only — the notion
// of tuple identity used by Project, Union and Difference, which compare
// "the data portion" of tuples (paper, §II). It is the reference form kept
// for rendering and for the string-keyed reference operators (reference.go);
// the hot paths bucket by DataHash64 and confirm with DataEqual instead.
func (t Tuple) DataKey() string {
	vals := make(rel.Tuple, len(t))
	for i, c := range t {
		vals[i] = c.D
	}
	return vals.Key()
}

// DataHash64 returns the 64-bit hash of the data portion t(d) under the
// engine-wide seed (rel.Seed). Tuples with Equal data hash identically;
// distinct data collide only with ordinary hash probability, so callers
// bucket by the hash and confirm candidates with DataEqual.
func (t Tuple) DataHash64() uint64 {
	h := uint64(rel.HashFoldInit)
	for _, c := range t {
		h = rel.HashFold(h, c.D.Hash64(rel.Seed))
	}
	return h
}

// DataEqual reports whether two tuples have identical data portions (tags
// are ignored) — the collision-verification fallback for DataHash64
// buckets. Identity is Value.Identical, not Equal: DataKey formats every
// NaN the same way, so the hash engine must also treat all NaNs as one
// datum to reproduce the string-keyed reference semantics.
func (t Tuple) DataEqual(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].D.Identical(u[i].D) {
			return false
		}
	}
	return true
}

// Data returns the data portion t(d) as a plain tuple.
func (t Tuple) Data() rel.Tuple {
	vals := make(rel.Tuple, len(t))
	for i, c := range t {
		vals[i] = c.D
	}
	return vals
}

// Equal reports cell-wise full equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// OriginUnion returns the union of the origin sets of all cells — p(o)
// restricted to one tuple. Difference uses the relation-level version.
func (t Tuple) OriginUnion() sourceset.Set {
	var s sourceset.Set
	for _, c := range t {
		s = s.Union(c.O)
	}
	return s
}
