package core

import (
	"strings"
	"testing"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// testEnv bundles a registry with the three paper databases interned in
// order, so rendered tags read {AD, PD, CD}.
type testEnv struct {
	reg        *sourceset.Registry
	ad, pd, cd sourceset.ID
}

func newEnv() *testEnv {
	reg := sourceset.NewRegistry()
	return &testEnv{
		reg: reg,
		ad:  reg.Intern("AD"),
		pd:  reg.Intern("PD"),
		cd:  reg.Intern("CD"),
	}
}

// cell builds a polygen cell from a literal datum and tag sets.
func (e *testEnv) cell(d any, o, i sourceset.Set) Cell {
	return Cell{D: lit(d), O: o, I: i}
}

func lit(d any) rel.Value {
	switch x := d.(type) {
	case nil:
		return rel.Null()
	case string:
		return rel.String(x)
	case int:
		return rel.Int(int64(x))
	case float64:
		return rel.Float(x)
	case rel.Value:
		return x
	default:
		panic("unsupported literal")
	}
}

// prel builds a polygen relation whose every cell carries origin o and empty
// intermediates — the state of a freshly retrieved base relation.
func (e *testEnv) prel(name string, o sourceset.Set, attrs []Attr, rows ...[]any) *Relation {
	p := NewRelation(name, e.reg, attrs...)
	for _, row := range rows {
		t := make(Tuple, len(row))
		for i, d := range row {
			t[i] = Cell{D: lit(d), O: o}
		}
		if err := p.Append(t); err != nil {
			panic(err)
		}
	}
	return p
}

func attrs(names ...string) []Attr {
	out := make([]Attr, len(names))
	for i, n := range names {
		// "NAME/PG" annotates a polygen attribute.
		if j := strings.IndexByte(n, '/'); j >= 0 {
			out[i] = Attr{Name: n[:j], Polygen: n[j+1:]}
		} else {
			out[i] = Attr{Name: n}
		}
	}
	return out
}

// render formats the relation rows compactly for comparisons.
func render(p *Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		out = append(out, strings.Join(parts, " | "))
	}
	return out
}

func wantRows(t *testing.T, p *Relation, want ...string) {
	t.Helper()
	got := render(p)
	if len(got) != len(want) {
		t.Fatalf("got %d rows:\n%s\nwant %d rows:\n%s",
			len(got), strings.Join(got, "\n"), len(want), strings.Join(want, "\n"))
	}
	seen := make(map[string]int)
	for _, g := range got {
		seen[g]++
	}
	for _, w := range want {
		if seen[w] == 0 {
			t.Errorf("missing row:\n  %s\ngot:\n  %s", w, strings.Join(got, "\n  "))
			continue
		}
		seen[w]--
	}
}

func wantNames(t *testing.T, p *Relation, want ...string) {
	t.Helper()
	got := p.AttrNames()
	if len(got) != len(want) {
		t.Fatalf("attr names = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("attr names = %v, want %v", got, want)
		}
	}
}
