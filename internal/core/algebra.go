package core

import (
	"fmt"

	"repro/internal/identity"
	"repro/internal/rel"
)

// Algebra evaluates polygen algebraic operators. It carries the
// inter-database instance resolver used for attribute–attribute equality
// (paper §I assumes instance identifier mismatches are resolved and "the
// information is available for the PQP to use"); the zero value — or
// NewAlgebra(nil) — compares exactly.
type Algebra struct {
	resolver identity.Resolver
	conflict ConflictHandler
	exact    bool
	// par, when non-nil, enables morsel-driven intra-operator parallelism:
	// hash operators over inputs at or above the cost threshold partition
	// by hash and fan out across the shared worker pool (parallel.go). Set
	// while wiring, before the Algebra is shared; nil means serial.
	par *Parallel
	// mem, when non-nil with a positive budget, bounds the blocking state
	// of the streaming hash operators: partitions past the budget
	// grace-spill to checksummed temp segments and are processed from disk
	// (spill.go). A budgeted algebra builds serially.
	mem *Memory
}

// NewAlgebra returns an Algebra using r to canonicalize values in
// attribute–attribute equality comparisons. A nil r means exact comparison.
// The resolver is wrapped in an identity.Scoped, so the canonical-ID intern
// table the hot paths probe lives and dies with this Algebra.
func NewAlgebra(r identity.Resolver) *Algebra {
	exact := r == nil
	if r == nil {
		r = identity.Exact{}
	} else if _, ok := r.(identity.Exact); ok {
		exact = true
	}
	return &Algebra{resolver: identity.NewScoped(r), exact: exact}
}

// ResolverIsExact reports whether the algebra compares instances exactly
// (nil or identity.Exact resolver). The plan optimizer consults it: rewrites
// that move an attribute–attribute comparison across the LQP boundary, or
// reorder which operand of a Coalesce survives, are only identity-preserving
// when instance equality is plain value equality.
func (a *Algebra) ResolverIsExact() bool {
	return a.exact || a.resolver == nil
}

// Resolver returns the instance resolver in use.
func (a *Algebra) Resolver() identity.Resolver {
	if a.resolver == nil {
		return identity.Exact{}
	}
	return a.resolver
}

// same reports whether two data values denote the same instance under the
// algebra's resolver. Nulls never match. It compares interned canonical IDs
// — a pair of map probes — instead of materializing two canonical strings.
func (a *Algebra) same(x, y rel.Value) bool {
	if x.IsNull() || y.IsNull() {
		return false
	}
	r := a.Resolver()
	return r.CanonicalID(x) == r.CanonicalID(y)
}

// evalTheta applies θ between two data values, routing equality and
// inequality through the instance resolver and ordered comparisons through
// plain value ordering.
func (a *Algebra) evalTheta(x rel.Value, theta rel.Theta, y rel.Value) bool {
	switch theta {
	case rel.ThetaEQ:
		return a.same(x, y)
	case rel.ThetaNE:
		if x.IsNull() || y.IsNull() {
			return false
		}
		return !a.same(x, y)
	default:
		return theta.Eval(x, y)
	}
}

// Project implements the Project primitive p[X]: the columns of X, with
// tuples whose data portions coincide collapsed into one tuple whose tag
// sets are the unions of the collapsed tuples' tags, attribute by attribute.
func (a *Algebra) Project(p *Relation, attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]Attr, len(attrs))
	for i, name := range attrs {
		ci, err := p.Col(name)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = p.Attrs[ci]
	}
	if parts := a.parParts(len(p.Tuples)); parts > 1 {
		return a.parProject(parts, p, idx, outAttrs), nil
	}
	out := NewRelation("", p.Reg, outAttrs...)
	ix := newDataIndex(len(p.Tuples))
	scratch := make(Tuple, len(idx))
	for _, t := range p.Tuples {
		for i, ci := range idx {
			scratch[i] = t[ci]
		}
		dedupInsert(out, ix, scratch)
	}
	return out, nil
}

// Product implements the Cartesian Product primitive p1 × p2: tuple
// concatenation with no tag updates. Column names of p2 colliding with p1
// are qualified with p2's name (or a positional suffix); the polygen
// attribute annotations are preserved.
func (a *Algebra) Product(p1, p2 *Relation) (*Relation, error) {
	attrs := productAttrs(p1.Attrs, p2.Name, p2.Attrs)
	out := NewRelation("", p1.Reg, attrs...)
	for _, t1 := range p1.Tuples {
		for _, t2 := range p2.Tuples {
			row := out.NewRow(len(t1) + len(t2))
			copy(row, t1)
			copy(row[len(t1):], t2)
			out.Tuples = append(out.Tuples, row)
		}
	}
	return out, nil
}

// productAttrs computes the output attribute list of a Cartesian product:
// the left attributes followed by the right ones, with colliding right
// names qualified by the right relation's name (or a positional suffix).
// Shared by the materializing and streaming Product.
func productAttrs(attrs1 []Attr, name2 string, attrs2 []Attr) []Attr {
	attrs := append([]Attr(nil), attrs1...)
	for _, at := range attrs2 {
		name := at.Name
		if hasAttrName(attrs, name) {
			name = disambiguateName(attrs, name2, at.Name)
		}
		attrs = append(attrs, Attr{Name: name, Polygen: at.Polygen})
	}
	return attrs
}

func hasAttrName(attrs []Attr, name string) bool {
	for _, a := range attrs {
		if a.Name == name {
			return true
		}
	}
	return false
}

func disambiguateName(attrs []Attr, relName, attrName string) string {
	cand := attrName
	if relName != "" {
		cand = relName + "." + attrName
	}
	for i := 2; hasAttrName(attrs, cand); i++ {
		cand = fmt.Sprintf("%s#%d", attrName, i)
	}
	return cand
}

// Restrict implements the Restrict primitive p[x θ y] between two attributes
// of p: tuples satisfying the condition survive with their data and origin
// tags unchanged and with the origins of the two operand attributes added to
// the intermediate set of every cell — "to signify their mediating role"
// (paper, §II).
func (a *Algebra) Restrict(p *Relation, x string, theta rel.Theta, y string) (*Relation, error) {
	xi, err := p.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p.Col(y)
	if err != nil {
		return nil, err
	}
	out := NewRelation("", p.Reg, p.Attrs...)
	for _, t := range p.Tuples {
		if !a.evalTheta(t[xi].D, theta, t[yi].D) {
			continue
		}
		mediators := t[xi].O.Union(t[yi].O)
		row := out.NewRow(len(t))
		for i, c := range t {
			row[i] = c.WithIntermediate(mediators)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// Select implements the derived Select operator p[x θ const]. Per §II,
// Select is defined through Restrict and therefore updates t(i): the origin
// of the operand attribute is added to every cell's intermediate set. The
// constant is compared exactly (no instance resolution), matching Table 4's
// DEG = "MBA".
func (a *Algebra) Select(p *Relation, x string, theta rel.Theta, constant rel.Value) (*Relation, error) {
	xi, err := p.Col(x)
	if err != nil {
		return nil, err
	}
	out := NewRelation("", p.Reg, p.Attrs...)
	for _, t := range p.Tuples {
		if !theta.Eval(t[xi].D, constant) {
			continue
		}
		mediators := t[xi].O
		row := out.NewRow(len(t))
		for i, c := range t {
			row[i] = c.WithIntermediate(mediators)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// Union implements the Union primitive over two union-compatible relations:
// tuples present (by data portion) in only one operand pass through; tuples
// present in both are emitted once with both operands' tags unioned cell by
// cell.
func (a *Algebra) Union(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: union of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts := a.parParts(len(p1.Tuples) + len(p2.Tuples)); parts > 1 {
		return a.parUnion(parts, p1, p2), nil
	}
	out := NewRelation("", p1.Reg, p1.Attrs...)
	ix := newDataIndex(len(p1.Tuples) + len(p2.Tuples))
	for _, src := range [...]*Relation{p1, p2} {
		for _, t := range src.Tuples {
			dedupInsert(out, ix, t)
		}
	}
	return out, nil
}

// Difference implements the Difference primitive p1 − p2: the tuples of p1
// whose data portion does not occur in p2, with p2(o) — the union of all
// origin sets in p2 — added to every cell's intermediate set, because every
// p1 tuple had to be compared against all of p2 to be selected.
func (a *Algebra) Difference(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: difference of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts := a.parParts(len(p1.Tuples) + len(p2.Tuples)); parts > 1 {
		return a.parDifference(parts, p1, p2), nil
	}
	drop := newDataIndex(len(p2.Tuples))
	for i, t := range p2.Tuples {
		drop.add(t.DataHash64(), i)
	}
	p2o := p2.OriginUnion()
	out := NewRelation("", p1.Reg, p1.Attrs...)
	seen := newDataIndex(len(p1.Tuples))
	for _, t := range p1.Tuples {
		h := t.DataHash64()
		if _, gone := drop.find(p2.Tuples, t, h); gone {
			continue
		}
		if _, dup := seen.find(out.Tuples, t, h); dup {
			continue
		}
		row := out.NewRow(len(t))
		for i, c := range t {
			row[i] = c.WithIntermediate(p2o)
		}
		seen.add(h, len(out.Tuples))
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// Intersect implements the derived Intersection operator, defined in §II as
// "the project of a join over all the attributes in each of the relations".
// Data-identical tuples of both operands survive; since the join mediates on
// every attribute, the origins of both operands' cells join the intermediate
// sets.
func (a *Algebra) Intersect(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: intersect of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	if parts := a.parParts(len(p1.Tuples) + len(p2.Tuples)); parts > 1 {
		return a.parIntersect(parts, p1, p2), nil
	}
	index := newDataIndex(len(p2.Tuples))
	for i, t := range p2.Tuples {
		index.add(t.DataHash64(), i)
	}
	out := NewRelation("", p1.Reg, p1.Attrs...)
	pos := newDataIndex(len(p1.Tuples))
	scratch := make(Tuple, 0, p1.Degree())
	for _, t := range p1.Tuples {
		h := t.DataHash64()
		// All p2 tuples with data equal to t(d); candidates in the bucket
		// with merely colliding hashes are filtered by DataEqual.
		matched := false
		row := scratch[:len(t)]
		index.ForEach(h, func(mi int) bool {
			m := p2.Tuples[mi]
			if !m.DataEqual(t) {
				return true
			}
			if !matched {
				matched = true
				copy(row, t)
			}
			mediators := t.OriginUnion().Union(m.OriginUnion())
			for i := range row {
				row[i] = row[i].MergeTags(m[i]).WithIntermediate(mediators)
			}
			return true
		})
		if !matched {
			continue
		}
		dedupInsert(out, pos, row)
	}
	return out, nil
}

// Rename returns p with column old renamed to new and annotated as polygen
// attribute new — the "mapping of the local attribute STATE into the polygen
// attribute HEADQUARTERS" step of Appendix A.
func (a *Algebra) Rename(p *Relation, old, new string) (*Relation, error) {
	ci, err := p.Col(old)
	if err != nil {
		return nil, err
	}
	out := p.Clone()
	out.Attrs[ci] = Attr{Name: new, Polygen: new}
	return out, nil
}
