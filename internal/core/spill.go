package core

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/rel"
	"repro/internal/segment"
	"repro/internal/sourceset"
)

// This file implements memory-budgeted spill-to-disk for the streaming hash
// operators. An Algebra configured with a Memory (SetMemory) bounds the
// bytes of tuple state its blocking sides may hold: when an operator's
// accumulated build or dedup state crosses the budget, whole hash
// partitions grace-spill to checksummed temp segments (the same framing as
// the lqpd write-ahead log, with the tagged column codec as the payload, so
// origin and intermediate tag sets survive the disk round trip) and are
// re-read and processed partition-at-a-time once the streaming phase ends.
//
// The spilling operators are the ones with unbounded blocking state:
//
//   - Join (θ = "="): the build side is radix-partitioned by canonical key
//     ID as it drains. Resident partitions are indexed and probed in
//     stream; probe rows that hash to a spilled partition are deferred to
//     per-partition probe files and joined partition-by-partition at probe
//     end — the classic hybrid hash join (Shapiro '86 via DeWitt).
//   - Project and Union: the dedup table is partitioned by data hash.
//     A spilled partition's rows (tags already partially merged) are
//     re-deduplicated partition-locally on reload; duplicates co-partition
//     because the partition is a function of the data hash, and tag-set
//     union is associative and commutative, so re-merging pre-merged runs
//     yields exactly the in-memory result.
//   - Difference: the drop side partitions like the dedup table; probe
//     rows hashing to spilled partitions are deferred and anti-joined
//     partition-locally at the end. The p2(o) intermediate union is
//     accumulated while draining, so it is exact regardless of residency.
//
// Intersect and Merge keep their in-memory builds (Intersect's state is
// bounded by the smaller operand, Merge's fold rescans its accumulator), as
// does the non-equality Join fallback. Row order differs from the in-memory
// path (spilled partitions emit last); the polygen algebra is set-semantic,
// and the property suites compare order-insensitively.
//
// A budgeted Algebra builds serially: the budget decides residency
// per-partition, which the parallel fan-out paths (parallel.go) assume away
// by holding the whole build in memory. Configure one or the other.

// DefaultSpillPartitions is the spill fan-out when Memory.Partitions is
// unset: enough that a single resident partition is ~1/16 of the input.
const DefaultSpillPartitions = 16

// spillFrameRows is how many tuples accumulate in a column batch before it
// is framed and appended to the temp segment.
const spillFrameRows = 256

// Memory is the per-algebra memory budget: operators spill to disk rather
// than exceed Budget bytes of blocking tuple state. The zero value (or a
// nil *Memory) disables spilling. The counters are cumulative across every
// operator sharing the Memory and are safe for concurrent reads — they feed
// the V$STORE-style observability surfaces.
type Memory struct {
	// Budget is the soft cap, in bytes, on an operator's resident blocking
	// state (build side, dedup table). <= 0 disables spilling.
	Budget int64
	// TempDir is where spill segments are created; "" means os.TempDir().
	TempDir string
	// Partitions is the spill fan-out; <= 0 means DefaultSpillPartitions.
	Partitions int

	// Spills counts partitions written to disk; SpilledRows and
	// SpilledBytes the tuples and framed bytes that crossed. Reloads
	// counts partition files read back.
	Spills       atomic.Int64
	SpilledRows  atomic.Int64
	SpilledBytes atomic.Int64
	Reloads      atomic.Int64
}

// SetMemory configures the memory budget. Like SetParallel it must be
// called while wiring, before the Algebra is shared.
func (a *Algebra) SetMemory(m *Memory) { a.mem = m }

// Memory returns the configured budget, nil if none.
func (a *Algebra) Memory() *Memory { return a.mem }

// memActive returns the Memory when spilling is enabled, else nil.
func (a *Algebra) memActive() *Memory {
	if a.mem != nil && a.mem.Budget > 0 {
		return a.mem
	}
	return nil
}

func (m *Memory) partitions() int {
	if m.Partitions > 0 {
		return m.Partitions
	}
	return DefaultSpillPartitions
}

func (m *Memory) dir() string {
	if m.TempDir != "" {
		return m.TempDir
	}
	return os.TempDir()
}

// approxTupleBytes estimates the resident cost of a tuple: the cell structs
// plus string payloads. Tag sets are interned and shared, so they are
// charged at header cost only. The budget is a soft target; the estimate
// errs cheap so spilling engages before, not after, real pressure.
func approxTupleBytes(t Tuple) int64 {
	n := int64(48 * len(t))
	for _, c := range t {
		n += int64(len(c.D.Str()))
	}
	return n
}

// spillFile is one checksummed temp segment of tagged column frames. Writes
// buffer into a ColBatch and frame every spillFrameRows tuples; load seeks
// back and decodes every frame. The file is unlinked on discard.
type spillFile struct {
	mem   *Memory
	f     *os.File
	w     *segment.Writer
	pend  *ColBatch
	name  string
	attrs []Attr
	reg   *sourceset.Registry
	rows  int
	buf   []byte
}

func newSpillFile(mem *Memory, name string, attrs []Attr, reg *sourceset.Registry) (*spillFile, error) {
	f, err := os.CreateTemp(mem.dir(), "polygen-spill-*.seg")
	if err != nil {
		return nil, fmt.Errorf("core: creating spill segment: %w", err)
	}
	mem.Spills.Add(1)
	return &spillFile{mem: mem, f: f, w: segment.NewWriter(f, 0), name: name, attrs: attrs, reg: reg}, nil
}

// add buffers one tuple (copied — the caller may reuse t).
func (s *spillFile) add(t Tuple) error {
	if s.pend == nil {
		s.pend = NewColBatch(s.name, s.reg, s.attrs)
	}
	s.pend.AppendTuple(t)
	s.rows++
	s.mem.SpilledRows.Add(1)
	if s.pend.Len() >= spillFrameRows {
		return s.flushFrame()
	}
	return nil
}

func (s *spillFile) flushFrame() error {
	if s.pend == nil || s.pend.Len() == 0 {
		return nil
	}
	s.buf = AppendFrame(s.buf[:0], s.pend)
	if _, err := s.w.Append(s.buf); err != nil {
		return err
	}
	s.mem.SpilledBytes.Add(int64(len(s.buf)))
	s.pend = nil
	return nil
}

// load returns every spilled tuple. Unlike WAL recovery, a torn or rotted
// spill segment is a hard error — it is live query state, not a crash tail.
func (s *spillFile) load() ([]Tuple, error) {
	if err := s.flushFrame(); err != nil {
		return nil, err
	}
	if err := s.w.Flush(); err != nil { // no fsync: spill data dies with the query
		return nil, err
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: rewinding spill segment: %w", err)
	}
	s.mem.Reloads.Add(1)
	rows := make([]Tuple, 0, s.rows)
	_, err := segment.Scan(s.f.Name(), s.f, func(off int64, payload []byte) error {
		b, err := DecodeFrame(payload, s.name, s.attrs, s.reg)
		if err != nil {
			return err
		}
		rows = append(rows, b.Rows()...)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: reading spill segment: %w", err)
	}
	if len(rows) != s.rows {
		return nil, fmt.Errorf("core: spill segment %s holds %d rows, wrote %d", s.f.Name(), len(rows), s.rows)
	}
	return rows, nil
}

// discard closes and unlinks the segment.
func (s *spillFile) discard() {
	if s == nil || s.f == nil {
		return
	}
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
	s.f = nil
}

// spillParts is a budget-bounded partitioned tuple accumulator — the shared
// build-side state of the hybrid hash Join and the Difference drop side.
// The caller routes each tuple to a partition (by canonical key ID or data
// hash); when the resident total crosses the budget the largest resident
// partition is evicted to a spillFile, and every later arrival for it goes
// straight to disk.
type spillParts struct {
	mem   *Memory
	name  string
	attrs []Attr
	reg   *sourceset.Registry

	rows  [][]Tuple
	bytes []int64
	files []*spillFile
	inMem int64
}

func newSpillParts(mem *Memory, name string, attrs []Attr, reg *sourceset.Registry) *spillParts {
	n := mem.partitions()
	return &spillParts{
		mem: mem, name: name, attrs: attrs, reg: reg,
		rows:  make([][]Tuple, n),
		bytes: make([]int64, n),
		files: make([]*spillFile, n),
	}
}

func (sp *spillParts) parts() int { return len(sp.rows) }

func (sp *spillParts) add(p int, t Tuple) error {
	if f := sp.files[p]; f != nil {
		return f.add(t)
	}
	sp.rows[p] = append(sp.rows[p], t)
	sz := approxTupleBytes(t)
	sp.bytes[p] += sz
	sp.inMem += sz
	if sp.inMem > sp.mem.Budget {
		return sp.evictLargest()
	}
	return nil
}

// evictLargest spills the resident partition holding the most bytes.
func (sp *spillParts) evictLargest() error {
	best := -1
	for p := range sp.rows {
		if sp.files[p] == nil && len(sp.rows[p]) > 0 && (best < 0 || sp.bytes[p] > sp.bytes[best]) {
			best = p
		}
	}
	if best < 0 {
		return nil // everything already on disk
	}
	f, err := newSpillFile(sp.mem, sp.name, sp.attrs, sp.reg)
	if err != nil {
		return err
	}
	for _, t := range sp.rows[best] {
		if err := f.add(t); err != nil {
			f.discard()
			return err
		}
	}
	sp.files[best] = f
	sp.inMem -= sp.bytes[best]
	sp.rows[best], sp.bytes[best] = nil, 0
	return nil
}

func (sp *spillParts) spilled(p int) bool { return sp.files[p] != nil }

func (sp *spillParts) anySpilled() bool {
	for _, f := range sp.files {
		if f != nil {
			return true
		}
	}
	return false
}

// memTuples concatenates the resident partitions.
func (sp *spillParts) memTuples() []Tuple {
	total := 0
	for _, r := range sp.rows {
		total += len(r)
	}
	out := make([]Tuple, 0, total)
	for _, r := range sp.rows {
		out = append(out, r...)
	}
	return out
}

// release unlinks every remaining spill segment.
func (sp *spillParts) release() {
	if sp == nil {
		return
	}
	for p, f := range sp.files {
		f.discard()
		sp.files[p] = nil
	}
}

// dedupSpill is the budget-aware replacement for the single (Relation,
// dataIndex) dedup table of Project and Union: one partition-local table
// per data-hash partition, the largest resident partition evicted when the
// budget is crossed. result() reloads spilled partitions and re-dedups them
// partition-locally, which is exact (see the file comment).
type dedupSpill struct {
	mem   *Memory
	attrs []Attr
	reg   *sourceset.Registry

	outs  []*Relation
	ixs   []dataIndex
	bytes []int64
	files []*spillFile
	inMem int64
}

func newDedupSpill(mem *Memory, attrs []Attr, reg *sourceset.Registry) *dedupSpill {
	n := mem.partitions()
	return &dedupSpill{
		mem: mem, attrs: attrs, reg: reg,
		outs:  make([]*Relation, n),
		ixs:   make([]dataIndex, n),
		bytes: make([]int64, n),
		files: make([]*spillFile, n),
	}
}

func (d *dedupSpill) add(t Tuple) error {
	h := t.DataHash64()
	p := rel.PartitionOf(h, len(d.outs))
	if f := d.files[p]; f != nil {
		// Dedup against disk is deferred to result(); the raw row goes out
		// with its tags and is merged partition-locally on reload.
		return f.add(t)
	}
	if d.outs[p] == nil {
		d.outs[p] = NewRelation("", d.reg, d.attrs...)
		d.ixs[p] = newDataIndex(rel.DefaultBatchSize)
	}
	if dedupInsertHashed(d.outs[p], d.ixs[p], t, h) {
		sz := approxTupleBytes(t)
		d.bytes[p] += sz
		d.inMem += sz
		if d.inMem > d.mem.Budget {
			return d.evictLargest()
		}
	}
	return nil
}

func (d *dedupSpill) evictLargest() error {
	best := -1
	for p := range d.outs {
		if d.files[p] == nil && d.outs[p] != nil && len(d.outs[p].Tuples) > 0 &&
			(best < 0 || d.bytes[p] > d.bytes[best]) {
			best = p
		}
	}
	if best < 0 {
		return nil
	}
	f, err := newSpillFile(d.mem, "", d.attrs, d.reg)
	if err != nil {
		return err
	}
	for _, t := range d.outs[best].Tuples {
		if err := f.add(t); err != nil {
			f.discard()
			return err
		}
	}
	d.files[best] = f
	d.inMem -= d.bytes[best]
	d.outs[best], d.ixs[best], d.bytes[best] = nil, dataIndex{}, 0
	return nil
}

// result assembles the final deduplicated relation: resident partitions
// verbatim, spilled partitions reloaded and re-deduplicated locally.
func (d *dedupSpill) result() (*Relation, error) {
	out := NewRelation("", d.reg, d.attrs...)
	for p := range d.outs {
		if f := d.files[p]; f != nil {
			rows, err := f.load()
			if err != nil {
				return nil, err
			}
			f.discard()
			d.files[p] = nil
			sub := NewRelation("", d.reg, d.attrs...)
			ix := newDataIndex(len(rows))
			for _, t := range rows {
				dedupInsert(sub, ix, t)
			}
			out.Tuples = append(out.Tuples, sub.Tuples...)
		} else if d.outs[p] != nil {
			out.Tuples = append(out.Tuples, d.outs[p].Tuples...)
		}
	}
	return out, nil
}

func (d *dedupSpill) release() {
	if d == nil {
		return
	}
	for p, f := range d.files {
		f.discard()
		d.files[p] = nil
	}
}

// consumeErr is consume with a fallible visitor: the first error closes the
// cursor and propagates.
func consumeErr(c Cursor, fn func(Tuple) error) error {
	for {
		batch, err := c.Next()
		if err == io.EOF {
			return c.Close()
		}
		if err != nil {
			c.Close()
			return err
		}
		for _, t := range batch {
			if err := fn(t); err != nil {
				c.Close()
				return err
			}
		}
	}
}
