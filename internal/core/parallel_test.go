package core

import (
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Four-engine property suite: the partitioned parallel operators join the
// serial materializing engine, the streaming engine and the string-keyed
// Ref* reference operators in the cell-for-cell parity contract — and make
// a stronger promise on top: row order identical to the serial engine, at
// every partition count, deterministically across runs. Partition counts
// cover 1 (degenerate), 2, 7 (non-power-of-two: the radix split must not
// assume power-of-two masks) and 16 (more partitions than tuples).

var parTestParts = []int{1, 2, 7, 16}

// wantSameOrdered asserts two relations agree cell for cell in the same
// row order — the parallel engine's ordered-concat guarantee, stronger
// than wantSameRendered's order-insensitive parity.
func wantSameOrdered(t *testing.T, label string, i int, got, ref *Relation) {
	t.Helper()
	gr, rr := render(got), render(ref)
	if !equalStrings(gr, rr) {
		t.Fatalf("iteration %d: %s: parallel row order or cells diverged from serial:\npar:\n%s\nserial:\n%s",
			i, label, strings.Join(gr, "\n"), strings.Join(rr, "\n"))
	}
}

// TestPropertyParOpsMatchAllEngines: for random wide inputs (mixed kinds,
// NaN/-0, >64-source tag sets) every Par* operator must equal the serial
// operator row for row, and the streaming and reference engines cell for
// cell, at all partition counts.
func TestPropertyParOpsMatchAllEngines(t *testing.T) {
	g, reg := newWideGen(80)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")
		for _, parts := range parTestParts {
			// Union.
			ser, err := alg.Union(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			par, err := alg.ParUnion(p1, p2, parts)
			if err != nil {
				t.Fatal(err)
			}
			wantSameOrdered(t, "par union", i, par, ser)
			ref, err := alg.RefUnion(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "par union vs reference", i, par, ref)
			str := mustDrain(alg.StreamUnion(cursorOver(p1), cursorOver(p2)))
			wantSameRendered(t, "par union vs streaming", i, par, str)

			// Difference.
			ser, err = alg.Difference(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			par, err = alg.ParDifference(p1, p2, parts)
			if err != nil {
				t.Fatal(err)
			}
			wantSameOrdered(t, "par difference", i, par, ser)
			ref, err = alg.RefDifference(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "par difference vs reference", i, par, ref)
			str = mustDrain(alg.StreamDifference(cursorOver(p1), cursorOver(p2)))
			wantSameRendered(t, "par difference vs streaming", i, par, str)

			// Intersect.
			ser, err = alg.Intersect(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			par, err = alg.ParIntersect(p1, p2, parts)
			if err != nil {
				t.Fatal(err)
			}
			wantSameOrdered(t, "par intersect", i, par, ser)
			ref, err = alg.RefIntersect(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "par intersect vs reference", i, par, ref)
			str = mustDrain(alg.StreamIntersect(cursorOver(p1), cursorOver(p2)))
			wantSameRendered(t, "par intersect vs streaming", i, par, str)

			// Project.
			ser, err = alg.Project(p1, []string{"B", "A"})
			if err != nil {
				t.Fatal(err)
			}
			par, err = alg.ParProject(p1, []string{"B", "A"}, parts)
			if err != nil {
				t.Fatal(err)
			}
			wantSameOrdered(t, "par project", i, par, ser)
			ref, err = alg.RefProject(p1, []string{"B", "A"})
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "par project vs reference", i, par, ref)
			str = mustDrain(alg.StreamProject(cursorOver(p1), []string{"B", "A"}))
			wantSameRendered(t, "par project vs streaming", i, par, str)
		}
	}
}

// TestPropertyParJoinMatchesAllEngines runs the join parity under every
// resolver kind (exact, case-folding, synonym groups) — the partitioned
// probe interns canonical IDs concurrently.
func TestPropertyParJoinMatchesAllEngines(t *testing.T) {
	resolvers := []identity.Resolver{
		identity.Exact{},
		identity.CaseFold{},
		identity.NewSynonyms(identity.CaseFold{},
			[]rel.Value{rel.String("a"), rel.String("b")},
			[]rel.Value{rel.String("c"), rel.String("d")},
		),
	}
	for ri, res := range resolvers {
		g, reg := newWideGen(int64(84 + ri))
		alg := NewAlgebra(res)
		for i := 0; i < 120; i++ {
			p1 := g.wideRelation(reg, "K/PK", "V")
			p2 := g.wideRelation(reg, "K2/PK", "W")
			ser, err := alg.Join(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range parTestParts {
				par, err := alg.ParJoin(p1, "K", rel.ThetaEQ, p2, "K2", parts)
				if err != nil {
					t.Fatal(err)
				}
				wantSameOrdered(t, "par join", i, par, ser)
			}
			ref, err := alg.RefJoin(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "par join vs reference", i, ser, ref)
			str := mustDrain(alg.StreamJoin(cursorOver(p1), "K", rel.ThetaEQ, cursorOver(p2), "K2"))
			wantSameRendered(t, "par join vs streaming", i, ser, str)
		}
	}
}

// parBigInput builds a pair of n-tuple relations with heavy duplicate data
// (every entity appears several times across both) and varied tag sets —
// big enough that partitioned runs on a real pool exercise true concurrent
// builds under -race.
func parBigInput(reg *sourceset.Registry, n int) (*Relation, *Relation) {
	mk := func(name string, base int) *Relation {
		p := NewRelation(name, reg, attrs("KEY/PK", "CAT", "VAL")...)
		for i := 0; i < n; i++ {
			e := base + i/3 // each entity thrice per relation
			origin := sourceset.Of(sourceset.ID(i % 90))
			inter := sourceset.Of(sourceset.ID((i + 7) % 90))
			row := p.NewRow(3)
			row[0] = Cell{D: rel.String("E" + string(rune('A'+e%26)) + string(rune('A'+(e/26)%26))), O: origin}
			row[1] = Cell{D: rel.Int(int64(e % 23)), O: origin, I: inter}
			row[2] = Cell{D: rel.Int(int64(e)), O: origin}
			p.Tuples = append(p.Tuples, row)
		}
		return p
	}
	return mk("P1", 0), mk("P2", n/6)
}

// TestParOpsDeterministicAcrossRunsAndParts: on a shared real worker pool,
// every partitioned operator's output — order included — is identical
// across repeated runs and across partition counts 1, 2, 7 and 16, and
// equal to the serial engine. This is the ordered-concat determinism the
// engine promises (and, under -race, the lock-freedom proof for the
// per-partition builds).
func TestParOpsDeterministicAcrossRunsAndParts(t *testing.T) {
	reg := sourceset.NewRegistry()
	for i := 0; i < 90; i++ {
		reg.Intern(workloadDBName(i))
	}
	p1, p2 := parBigInput(reg, 3000)
	serialAlg := NewAlgebra(nil)
	parAlg := NewAlgebra(nil)
	parAlg.SetParallel(&Parallel{Pool: exec.NewPool(4)})
	ops := []struct {
		name   string
		serial func() (*Relation, error)
		par    func(parts int) (*Relation, error)
	}{
		{"union", func() (*Relation, error) { return serialAlg.Union(p1, p2) },
			func(parts int) (*Relation, error) { return parAlg.ParUnion(p1, p2, parts) }},
		{"difference", func() (*Relation, error) { return serialAlg.Difference(p1, p2) },
			func(parts int) (*Relation, error) { return parAlg.ParDifference(p1, p2, parts) }},
		{"intersect", func() (*Relation, error) { return serialAlg.Intersect(p1, p2) },
			func(parts int) (*Relation, error) { return parAlg.ParIntersect(p1, p2, parts) }},
		{"project", func() (*Relation, error) { return serialAlg.Project(p1, []string{"CAT", "KEY"}) },
			func(parts int) (*Relation, error) { return parAlg.ParProject(p1, []string{"CAT", "KEY"}, parts) }},
		{"join", func() (*Relation, error) { return serialAlg.Join(p1, "KEY", rel.ThetaEQ, p2, "KEY") },
			func(parts int) (*Relation, error) { return parAlg.ParJoin(p1, "KEY", rel.ThetaEQ, p2, "KEY", parts) }},
	}
	for _, op := range ops {
		ser, err := op.serial()
		if err != nil {
			t.Fatal(err)
		}
		if len(ser.Tuples) == 0 {
			t.Fatalf("%s: degenerate fixture (empty serial result)", op.name)
		}
		for _, parts := range parTestParts {
			for run := 0; run < 2; run++ {
				par, err := op.par(parts)
				if err != nil {
					t.Fatal(err)
				}
				wantSameOrdered(t, op.name+" (parts/run sweep)", parts*10+run, par, ser)
			}
		}
	}
}

// TestAutoDispatchAboveThreshold: a parallel-configured algebra must
// produce serial-identical results from the plain entry points both below
// the threshold (serial path) and above it (partitioned path), for the
// materializing and streaming engines.
func TestAutoDispatchAboveThreshold(t *testing.T) {
	reg := sourceset.NewRegistry()
	for i := 0; i < 90; i++ {
		reg.Intern(workloadDBName(i))
	}
	serialAlg := NewAlgebra(nil)
	parAlg := NewAlgebra(nil)
	parAlg.SetParallel(&Parallel{Pool: exec.NewPool(4), Threshold: 64, Partitions: 7})
	for _, n := range []int{20, 3000} { // below and above Threshold=64
		p1, p2 := parBigInput(reg, n)
		ser, err := serialAlg.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parAlg.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		wantSameOrdered(t, "auto union", n, par, ser)

		ser, err = serialAlg.Join(p1, "KEY", rel.ThetaEQ, p2, "KEY")
		if err != nil {
			t.Fatal(err)
		}
		par, err = parAlg.Join(p1, "KEY", rel.ThetaEQ, p2, "KEY")
		if err != nil {
			t.Fatal(err)
		}
		wantSameOrdered(t, "auto join", n, par, ser)

		// Streaming: the parallel-configured algebra's StreamJoin builds
		// partitioned and probes through the ParallelCursor; row order must
		// still match the serial streaming engine's.
		serStr := mustDrain(serialAlg.StreamJoin(cursorOver(p1), "KEY", rel.ThetaEQ, cursorOver(p2), "KEY"))
		parStr := mustDrain(parAlg.StreamJoin(cursorOver(p1), "KEY", rel.ThetaEQ, cursorOver(p2), "KEY"))
		wantSameOrdered(t, "auto stream join", n, parStr, serStr)

		serStr = mustDrain(serialAlg.StreamDifference(cursorOver(p1), cursorOver(p2)))
		parStr = mustDrain(parAlg.StreamDifference(cursorOver(p1), cursorOver(p2)))
		wantSameOrdered(t, "auto stream difference", n, parStr, serStr)
	}
}

// TestParallelCursorPreservesOrder: batches processed on a real pool come
// back in input order whatever order the workers finish in.
func TestParallelCursorPreservesOrder(t *testing.T) {
	reg := sourceset.NewRegistry()
	src := reg.Intern("D0")
	p := NewRelation("P", reg, attrs("A")...)
	for i := 0; i < 5000; i++ {
		p.Tuples = append(p.Tuples, Tuple{Cell{D: rel.Int(int64(i)), O: sourceset.Of(src)}})
	}
	in := NewRelationCursor(p, 16)
	c := ParallelCursor(in, exec.NewPool(4), 8, func(batch []Tuple, emit func([]Tuple) bool) error {
		// Uneven work: later batches finish first without re-sequencing.
		if batch[0][0].D.IntVal()%7 == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		// Emit in two chunks: chunk order within a slot must be kept too.
		emit(batch[:len(batch)/2])
		emit(batch[len(batch)/2:])
		return nil
	})
	out, err := Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tuples) != 5000 {
		t.Fatalf("drained %d rows, want 5000", len(out.Tuples))
	}
	for i, tup := range out.Tuples {
		if tup[0].D.IntVal() != int64(i) {
			t.Fatalf("row %d out of order: %v", i, tup[0].D)
		}
	}
}

// TestParallelCursorPropagatesErrors: fn errors latch, in input order.
func TestParallelCursorPropagatesErrors(t *testing.T) {
	reg := sourceset.NewRegistry()
	p := NewRelation("P", reg, attrs("A")...)
	for i := 0; i < 100; i++ {
		p.Tuples = append(p.Tuples, Tuple{Cell{D: rel.Int(int64(i))}})
	}
	boom := errors.New("boom")
	c := ParallelCursor(NewRelationCursor(p, 10), exec.NewPool(2), 4, func(batch []Tuple, emit func([]Tuple) bool) error {
		if batch[0][0].D.IntVal() >= 50 {
			return boom
		}
		emit(batch)
		return nil
	})
	defer c.Close()
	rows := 0
	for {
		batch, err := c.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("error = %v, want boom", err)
			}
			break
		}
		rows += len(batch)
	}
	if rows != 50 {
		t.Fatalf("delivered %d rows before the error, want 50", rows)
	}
	if _, err := c.Next(); !errors.Is(err, boom) {
		t.Fatal("errors must latch")
	}
}

// closeCounterCursor records Close calls on a wrapped cursor (atomically:
// an abandoning Close may hand the inner close to the dispatcher).
type closeCounterCursor struct {
	Cursor
	closes atomic.Int32
}

func (c *closeCounterCursor) Close() error { c.closes.Add(1); return c.Cursor.Close() }

// TestParallelCursorEarlyClose: closing before exhaustion stops the
// dispatcher and closes the input exactly once — no goroutine leak, no
// deadlock on a full slot queue (run under -race).
func TestParallelCursorEarlyClose(t *testing.T) {
	reg := sourceset.NewRegistry()
	p := NewRelation("P", reg, attrs("A")...)
	for i := 0; i < 100000; i++ {
		p.Tuples = append(p.Tuples, Tuple{Cell{D: rel.Int(int64(i))}})
	}
	inner := &closeCounterCursor{Cursor: NewRelationCursor(p, 8)}
	c := ParallelCursor(inner, exec.NewPool(2), 2, func(batch []Tuple, emit func([]Tuple) bool) error {
		emit(batch)
		return nil
	})
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for inner.closes.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := inner.closes.Load(); n != 1 {
		t.Fatalf("inner cursor closed %d times, want 1", n)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next after Close = %v, want EOF", err)
	}
}
