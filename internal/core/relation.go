package core

import (
	"fmt"
	"strings"

	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Attr describes one column of a runtime polygen relation. Right after a
// Retrieve the column still bears its local attribute name (the paper's
// Table 5 shows BNAME, not ONAME); the polygen attribute it maps to — when
// known from the polygen schema — is carried alongside so that later
// operations can resolve polygen attribute names (the Join "[ONAME = ONAME]"
// of Table 3 finds Table 5's BNAME column through this mapping) and so that
// Coalesce/Merge can name their outputs.
type Attr struct {
	// Name is the current display name of the column.
	Name string
	// Polygen is the polygen attribute name the column corresponds to, or
	// "" when the column does not (yet) correspond to one.
	Polygen string
}

// Relation is a runtime polygen relation: a set of polygen tuples over a
// list of attributes. All relations within one federation share a source
// registry, which is carried here for rendering and tag interpretation.
type Relation struct {
	// Name optionally names the relation (base relations keep their local
	// scheme name; derived relations are usually unnamed).
	Name string
	// Attrs describes the columns.
	Attrs []Attr
	// Tuples holds the rows.
	Tuples []Tuple
	// Reg resolves source IDs in the cells' tag sets to database names.
	Reg *sourceset.Registry
	// arena backs rows produced by the algebra: operators slice output rows
	// out of relation-owned chunks (NewRow) instead of one make per row.
	// Rows carved from retired chunks stay valid — they keep the old backing
	// array alive — so the arena only ever grows forward.
	arena []Cell
}

// arenaChunkCells is the cell count of one freshly-grown arena chunk.
const arenaChunkCells = 4096

// NewRow returns a zeroed row of n cells sliced out of the relation's arena.
// The row's capacity is clamped to n, so appending to it cannot scribble
// over neighboring rows. Relations are built by a single goroutine; NewRow
// is not safe for concurrent use on one relation.
func (p *Relation) NewRow(n int) Tuple {
	if n == 0 {
		return Tuple{}
	}
	if cap(p.arena)-len(p.arena) < n {
		chunk := arenaChunkCells
		if chunk < n {
			chunk = n
		}
		p.arena = make([]Cell, 0, chunk)
	}
	s := len(p.arena)
	p.arena = p.arena[:s+n]
	return p.arena[s : s+n : s+n]
}

// NewRelation returns an empty polygen relation.
func NewRelation(name string, reg *sourceset.Registry, attrs ...Attr) *Relation {
	return &Relation{Name: name, Attrs: attrs, Reg: reg}
}

// Degree returns the number of attributes.
func (p *Relation) Degree() int { return len(p.Attrs) }

// Cardinality returns the number of tuples.
func (p *Relation) Cardinality() int { return len(p.Tuples) }

// AttrNames returns the display names of the columns.
func (p *Relation) AttrNames() []string {
	names := make([]string, len(p.Attrs))
	for i, a := range p.Attrs {
		names[i] = a.Name
	}
	return names
}

// Col resolves an attribute reference to a column index. A reference matches
// a column if it equals the column's display name, or — failing any display
// name match — if it equals the column's polygen attribute name. An
// ambiguous reference (two columns match) is an error; the polygen query
// translator produces unambiguous plans for well-formed queries.
func (p *Relation) Col(name string) (int, error) {
	return colIn(p.Name, p.Attrs, name)
}

// colIn is Col over a bare attribute list, shared with the streaming
// operators, whose inputs are cursors rather than materialized relations.
func colIn(relName string, attrs []Attr, name string) (int, error) {
	found := -1
	for i, a := range attrs {
		if a.Name == name {
			if found >= 0 {
				return 0, fmt.Errorf("core: attribute %q is ambiguous in %s", name, describeAttrs(relName, attrs))
			}
			found = i
		}
	}
	if found >= 0 {
		return found, nil
	}
	for i, a := range attrs {
		if a.Polygen == name {
			if found >= 0 {
				return 0, fmt.Errorf("core: polygen attribute %q is ambiguous in %s", name, describeAttrs(relName, attrs))
			}
			found = i
		}
	}
	if found >= 0 {
		return found, nil
	}
	return 0, fmt.Errorf("core: no attribute %q in %s", name, describeAttrs(relName, attrs))
}

func (p *Relation) describe() string { return describeAttrs(p.Name, p.Attrs) }

func describeAttrs(relName string, attrs []Attr) string {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		if a.Polygen != "" && a.Polygen != a.Name {
			names[i] = a.Name + "/" + a.Polygen
		} else {
			names[i] = a.Name
		}
	}
	if relName == "" {
		relName = "relation"
	}
	return fmt.Sprintf("%s(%s)", relName, strings.Join(names, ", "))
}

// Append adds a tuple, checking its degree.
func (p *Relation) Append(t Tuple) error {
	if len(t) != len(p.Attrs) {
		return fmt.Errorf("core: tuple degree %d does not match %s", len(t), p.describe())
	}
	p.Tuples = append(p.Tuples, t)
	return nil
}

// Clone returns a deep copy. The copy's rows are carved from its own arena.
func (p *Relation) Clone() *Relation {
	c := &Relation{Name: p.Name, Attrs: append([]Attr(nil), p.Attrs...), Reg: p.Reg, Tuples: make([]Tuple, len(p.Tuples))}
	for i, t := range p.Tuples {
		row := c.NewRow(len(t))
		copy(row, t)
		c.Tuples[i] = row
	}
	return c
}

// Data strips the tags and returns the plain data relation — used to compare
// polygen results against the untagged baseline and to hand results to
// consumers that only want t(d).
func (p *Relation) Data() *rel.Relation {
	r := rel.NewRelation(p.Name, rel.SchemaOf(p.AttrNames()...))
	for _, t := range p.Tuples {
		r.Tuples = append(r.Tuples, t.Data())
	}
	return r
}

// OriginUnion returns p(o): the union of all originating source sets of all
// cells, as used by the Difference primitive.
func (p *Relation) OriginUnion() sourceset.Set {
	var s sourceset.Set
	for _, t := range p.Tuples {
		s = s.Union(t.OriginUnion())
	}
	return s
}

// FromPlain tags every cell of a plain relation with origin {src} and an
// empty intermediate set — exactly what the PQP does to a relation returned
// by an LQP, with src the execution location (paper, §III: the EL "is also
// used as the originating source tag for each of the cells"). The polygen
// attribute names are left unset; callers with schema knowledge annotate
// them afterwards.
func FromPlain(r *rel.Relation, src sourceset.ID, reg *sourceset.Registry) *Relation {
	attrs := make([]Attr, r.Schema.Len())
	for i, a := range r.Schema.Attrs() {
		attrs[i] = Attr{Name: a.Name}
	}
	p := NewRelation(r.Name, reg, attrs...)
	origin := sourceset.Of(src)
	for _, t := range r.Tuples {
		row := p.NewRow(len(t))
		for i, v := range t {
			row[i] = Cell{D: v, O: origin}
		}
		p.Tuples = append(p.Tuples, row)
	}
	return p
}

// String renders the relation with every cell in the paper's
// "datum, {o...}, {i...}" notation.
func (p *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%d tuples]\n", p.describe(), len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.Format(p.Reg)
		}
		b.WriteString("  " + strings.Join(parts, " | ") + "\n")
	}
	return b.String()
}
