package core

import (
	"fmt"

	"repro/internal/rel"
)

// This file preserves the string-keyed implementations the polygen algebra
// shipped with before the hash-native engine: tuple identity as a
// concatenated string key (Tuple.DataKey), join probes as canonical strings
// (Resolver.Canonical), and one make per output row. They are the reference
// semantics — the property suite asserts the hash-keyed operators agree with
// them cell for cell (data and both tag sets), and the B-KEY ablation
// benchmark measures the representation gap against them. They are not used
// on any query path.

// sameRef is same() over canonical strings instead of interned IDs.
func (a *Algebra) sameRef(x, y rel.Value) bool {
	if x.IsNull() || y.IsNull() {
		return false
	}
	return a.Resolver().Canonical(x) == a.Resolver().Canonical(y)
}

// RefProject is the string-keyed reference implementation of Project.
func (a *Algebra) RefProject(p *Relation, attrs []string) (*Relation, error) {
	idx := make([]int, len(attrs))
	outAttrs := make([]Attr, len(attrs))
	for i, name := range attrs {
		ci, err := p.Col(name)
		if err != nil {
			return nil, err
		}
		idx[i] = ci
		outAttrs[i] = p.Attrs[ci]
	}
	out := NewRelation("", p.Reg, outAttrs...)
	pos := make(map[string]int, len(p.Tuples))
	for _, t := range p.Tuples {
		proj := make(Tuple, len(idx))
		for i, ci := range idx {
			proj[i] = t[ci]
		}
		k := proj.DataKey()
		if at, dup := pos[k]; dup {
			existing := out.Tuples[at]
			for i := range existing {
				existing[i] = existing[i].MergeTags(proj[i])
			}
			continue
		}
		pos[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, proj)
	}
	return out, nil
}

// RefUnion is the string-keyed reference implementation of Union.
func (a *Algebra) RefUnion(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: union of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	out := NewRelation("", p1.Reg, p1.Attrs...)
	pos := make(map[string]int, len(p1.Tuples)+len(p2.Tuples))
	for _, src := range [...]*Relation{p1, p2} {
		for _, t := range src.Tuples {
			k := t.DataKey()
			if at, dup := pos[k]; dup {
				existing := out.Tuples[at]
				for i := range existing {
					existing[i] = existing[i].MergeTags(t[i])
				}
				continue
			}
			pos[k] = len(out.Tuples)
			out.Tuples = append(out.Tuples, append(Tuple(nil), t...))
		}
	}
	return out, nil
}

// RefDifference is the string-keyed reference implementation of Difference.
func (a *Algebra) RefDifference(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: difference of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	drop := make(map[string]struct{}, len(p2.Tuples))
	for _, t := range p2.Tuples {
		drop[t.DataKey()] = struct{}{}
	}
	p2o := p2.OriginUnion()
	out := NewRelation("", p1.Reg, p1.Attrs...)
	seen := make(map[string]struct{}, len(p1.Tuples))
	for _, t := range p1.Tuples {
		k := t.DataKey()
		if _, gone := drop[k]; gone {
			continue
		}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		row := make(Tuple, len(t))
		for i, c := range t {
			row[i] = c.WithIntermediate(p2o)
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// RefIntersect is the string-keyed reference implementation of Intersect.
func (a *Algebra) RefIntersect(p1, p2 *Relation) (*Relation, error) {
	if p1.Degree() != p2.Degree() {
		return nil, fmt.Errorf("core: intersect of degree %d with degree %d", p1.Degree(), p2.Degree())
	}
	index := make(map[string][]Tuple, len(p2.Tuples))
	for _, t := range p2.Tuples {
		k := t.DataKey()
		index[k] = append(index[k], t)
	}
	out := NewRelation("", p1.Reg, p1.Attrs...)
	pos := make(map[string]int, len(p1.Tuples))
	for _, t := range p1.Tuples {
		k := t.DataKey()
		matches, ok := index[k]
		if !ok {
			continue
		}
		row := make(Tuple, len(t))
		copy(row, t)
		for _, m := range matches {
			mediators := t.OriginUnion().Union(m.OriginUnion())
			for i := range row {
				row[i] = row[i].MergeTags(m[i]).WithIntermediate(mediators)
			}
		}
		if at, dup := pos[k]; dup {
			existing := out.Tuples[at]
			for i := range existing {
				existing[i] = existing[i].MergeTags(row[i])
			}
			continue
		}
		pos[k] = len(out.Tuples)
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// refJoinRow is joinRow without the arena: one make per output row.
func (a *Algebra) refJoinRow(t1 Tuple, xi int, t2 Tuple, yi int, coalesce bool) Tuple {
	mediators := t1[xi].O.Union(t2[yi].O)
	row := make(Tuple, 0, len(t1)+len(t2))
	for i, c := range t1 {
		if coalesce && i == xi {
			joined := Cell{
				D: t1[xi].D,
				O: t1[xi].O.Union(t2[yi].O),
				I: t1[xi].I.Union(t2[yi].I),
			}
			row = append(row, joined.WithIntermediate(mediators))
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	for i, c := range t2 {
		if coalesce && i == yi {
			continue
		}
		row = append(row, c.WithIntermediate(mediators))
	}
	return row
}

// RefJoin is the string-keyed reference implementation of the equi-Join fast
// path: the hash index is keyed by canonical strings, allocated per probe.
func (a *Algebra) RefJoin(p1 *Relation, x string, theta rel.Theta, p2 *Relation, y string) (*Relation, error) {
	if theta != rel.ThetaEQ {
		return a.JoinViaPrimitives(p1, x, theta, p2, y)
	}
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	coalesce := joinCoalesces(p1.Attrs[xi], p2.Attrs[yi])
	attrs := joinAttrs(p1.Attrs, xi, p2.Name, p2.Attrs, yi, coalesce)
	out := NewRelation("", p1.Reg, attrs...)

	index := make(map[string][]Tuple, len(p2.Tuples))
	for _, t2 := range p2.Tuples {
		if t2[yi].D.IsNull() {
			continue
		}
		k := a.Resolver().Canonical(t2[yi].D)
		index[k] = append(index[k], t2)
	}
	for _, t1 := range p1.Tuples {
		if t1[xi].D.IsNull() {
			continue
		}
		for _, t2 := range index[a.Resolver().Canonical(t1[xi].D)] {
			out.Tuples = append(out.Tuples, a.refJoinRow(t1, xi, t2, yi, coalesce))
		}
	}
	return out, nil
}

// RefOuterJoin is the string-keyed reference implementation of OuterJoin.
func (a *Algebra) RefOuterJoin(p1 *Relation, x string, p2 *Relation, y string) (*Relation, error) {
	xi, err := p1.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p2.Col(y)
	if err != nil {
		return nil, err
	}
	attrs := append([]Attr(nil), p1.Attrs...)
	for _, at := range p2.Attrs {
		name := at.Name
		if hasAttrName(attrs, name) {
			name = disambiguateName(attrs, p2.Name, at.Name)
		}
		attrs = append(attrs, Attr{Name: name, Polygen: at.Polygen})
	}
	out := NewRelation("", p1.Reg, attrs...)

	index := make(map[string][]int, len(p2.Tuples))
	for i, t2 := range p2.Tuples {
		if t2[yi].D.IsNull() {
			continue
		}
		k := a.Resolver().Canonical(t2[yi].D)
		index[k] = append(index[k], i)
	}
	matched2 := make([]bool, len(p2.Tuples))
	for _, t1 := range p1.Tuples {
		var matches []int
		if !t1[xi].D.IsNull() {
			matches = index[a.Resolver().Canonical(t1[xi].D)]
		}
		if len(matches) == 0 {
			med := t1[xi].O
			row := make(Tuple, 0, len(attrs))
			for _, c := range t1 {
				row = append(row, c.WithIntermediate(med))
			}
			for range p2.Attrs {
				row = append(row, NilCell(med))
			}
			out.Tuples = append(out.Tuples, row)
			continue
		}
		for _, mi := range matches {
			matched2[mi] = true
			t2 := p2.Tuples[mi]
			med := t1[xi].O.Union(t2[yi].O)
			row := make(Tuple, 0, len(attrs))
			for _, c := range t1 {
				row = append(row, c.WithIntermediate(med))
			}
			for _, c := range t2 {
				row = append(row, c.WithIntermediate(med))
			}
			out.Tuples = append(out.Tuples, row)
		}
	}
	for i, t2 := range p2.Tuples {
		if matched2[i] {
			continue
		}
		med := t2[yi].O
		row := make(Tuple, 0, len(attrs))
		for range p1.Attrs {
			row = append(row, NilCell(med))
		}
		for _, c := range t2 {
			row = append(row, c.WithIntermediate(med))
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// RefCoalesce is Coalesce with instance equality via canonical strings.
func (a *Algebra) RefCoalesce(p *Relation, x, y, w string) (*Relation, error) {
	xi, err := p.Col(x)
	if err != nil {
		return nil, err
	}
	yi, err := p.Col(y)
	if err != nil {
		return nil, err
	}
	if xi == yi {
		return nil, fmt.Errorf("core: coalesce of attribute %q with itself", x)
	}
	attrs := make([]Attr, 0, len(p.Attrs)-1)
	for i, at := range p.Attrs {
		switch i {
		case xi:
			pg := at.Polygen
			if pg == "" {
				pg = p.Attrs[yi].Polygen
			}
			attrs = append(attrs, Attr{Name: w, Polygen: pg})
		case yi:
			// dropped
		default:
			attrs = append(attrs, at)
		}
	}
	out := NewRelation("", p.Reg, attrs...)
	for _, t := range p.Tuples {
		cx, cy := t[xi], t[yi]
		var cw Cell
		switch {
		case cy.D.IsNull():
			cw = cx
		case cx.D.IsNull():
			cw = cy
		case a.sameRef(cx.D, cy.D):
			cw = Cell{D: cx.D, O: cx.O.Union(cy.O), I: cx.I.Union(cy.I)}
		default:
			cw = a.resolveConflict(cx, cy)
		}
		row := make(Tuple, 0, len(t)-1)
		for i, c := range t {
			switch i {
			case xi:
				row = append(row, cw)
			case yi:
				// dropped
			default:
				row = append(row, c)
			}
		}
		out.Tuples = append(out.Tuples, row)
	}
	return out, nil
}

// RefOuterNaturalTotalJoin is OuterNaturalTotalJoin over the string-keyed
// reference operators.
func (a *Algebra) RefOuterNaturalTotalJoin(p1, p2 *Relation, scheme *Scheme) (*Relation, error) {
	x, err := colByPolygen(p1, scheme.Key)
	if err != nil {
		return nil, fmt.Errorf("core: ONTJ left operand: %w", err)
	}
	y, err := colByPolygen(p2, scheme.Key)
	if err != nil {
		return nil, fmt.Errorf("core: ONTJ right operand: %w", err)
	}
	oj, err := a.RefOuterJoin(p1, p1.Attrs[x].Name, p2, p2.Attrs[y].Name)
	if err != nil {
		return nil, err
	}
	xName := oj.Attrs[x].Name
	yName := oj.Attrs[len(p1.Attrs)+y].Name
	cur, err := a.RefCoalesce(oj, xName, yName, scheme.Key)
	if err != nil {
		return nil, err
	}
	for _, pa := range scheme.Attrs {
		if pa.Name == scheme.Key {
			continue
		}
		cols := colsByPolygen(cur, pa.Name)
		switch len(cols) {
		case 0:
		case 1:
			if cur.Attrs[cols[0]].Name != pa.Name {
				cur, err = a.Rename(cur, cur.Attrs[cols[0]].Name, pa.Name)
				if err != nil {
					return nil, err
				}
			}
		case 2:
			cur, err = a.RefCoalesce(cur, cur.Attrs[cols[0]].Name, cur.Attrs[cols[1]].Name, pa.Name)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: ONTJ: polygen attribute %q appears in %d columns", pa.Name, len(cols))
		}
	}
	return cur, nil
}

// RefMerge is Merge (the paper's left fold) over the string-keyed reference
// operators.
func (a *Algebra) RefMerge(scheme *Scheme, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("core: merge of zero relations for scheme %q", scheme.Name)
	}
	if len(rels) == 1 {
		return a.normalizeToScheme(rels[0], scheme)
	}
	cur := rels[0]
	var err error
	for _, next := range rels[1:] {
		cur, err = a.RefOuterNaturalTotalJoin(cur, next, scheme)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}
