package core

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/relalg"
	"repro/internal/sourceset"
)

// Property-based tests for the polygen algebra. Random polygen relations are
// generated over a small value domain (to force collisions) and random tag
// sets, and the §II invariants are checked against them:
//
//   - the data portion of every polygen operator's result equals the plain
//     relational operator applied to the data portions (tagging never
//     changes what data a query returns);
//   - intermediate tags only grow (monotonicity);
//   - Project/Union idempotence and commutativity on the data portion;
//   - Join agrees with its primitive composition (also in join_test.go on
//     fixed cases).

type gen struct{ r *rand.Rand }

func (g *gen) set() sourceset.Set {
	var s sourceset.Set
	n := g.r.Intn(3)
	for i := 0; i < n; i++ {
		s = s.With(sourceset.ID(g.r.Intn(3)))
	}
	return s
}

func (g *gen) value() rel.Value {
	// Small domain: collisions are the interesting case.
	switch g.r.Intn(6) {
	case 0:
		return rel.Null()
	default:
		return rel.String(string(rune('a' + g.r.Intn(4))))
	}
}

func (g *gen) relation(reg *sourceset.Registry, names ...string) *Relation {
	p := NewRelation("G", reg, attrs(names...)...)
	n := g.r.Intn(8)
	for i := 0; i < n; i++ {
		t := make(Tuple, len(names))
		for j := range t {
			t[j] = Cell{D: g.value(), O: g.set(), I: g.set()}
		}
		p.Tuples = append(p.Tuples, t)
	}
	return p
}

func newGen(seed int64) (*gen, *sourceset.Registry) {
	reg := sourceset.NewRegistry()
	reg.Intern("AD")
	reg.Intern("PD")
	reg.Intern("CD")
	return &gen{r: rand.New(rand.NewSource(seed))}, reg
}

// dataRows renders the data portion of a polygen relation as a sorted
// multiset of strings.
func dataRows(p *Relation) []string {
	out := make([]string, 0, len(p.Tuples))
	for _, t := range p.Tuples {
		parts := make([]string, len(t))
		for i, c := range t {
			parts[i] = c.D.Key()
		}
		out = append(out, strings.Join(parts, "\x01"))
	}
	sort.Strings(out)
	return out
}

// plainRows renders a plain relation the same way (set semantics: callers
// pass deduplicated relations).
func plainRows(r *rel.Relation) []string {
	out := make([]string, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.Key()
		}
		out = append(out, strings.Join(parts, "\x01"))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dedup returns the set-semantics version of a plain relation.
func dedup(r *rel.Relation) *rel.Relation {
	out, err := relalg.Project(r, r.Schema.Names())
	if err != nil {
		panic(err)
	}
	return out
}

func TestPropertySelectDataAgreesWithBaseline(t *testing.T) {
	g, reg := newGen(1)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p := g.relation(reg, "A", "B")
		c := g.value()
		got, err := alg.Select(p, "A", rel.ThetaEQ, c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := relalg.Select(p.Data(), "A", rel.ThetaEQ, c)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(got), plainRows(want)) {
			t.Fatalf("iteration %d: select data diverged from baseline", i)
		}
	}
}

func TestPropertyRestrictDataAgreesWithBaseline(t *testing.T) {
	g, reg := newGen(2)
	alg := NewAlgebra(nil)
	thetas := []rel.Theta{rel.ThetaEQ, rel.ThetaNE, rel.ThetaLT, rel.ThetaGE}
	for i := 0; i < 300; i++ {
		p := g.relation(reg, "A", "B")
		theta := thetas[g.r.Intn(len(thetas))]
		got, err := alg.Restrict(p, "A", theta, "B")
		if err != nil {
			t.Fatal(err)
		}
		want, err := relalg.Restrict(p.Data(), "A", theta, "B")
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(got), plainRows(want)) {
			t.Fatalf("iteration %d (θ=%v): restrict data diverged from baseline", i, theta)
		}
	}
}

func TestPropertyProjectDataAgreesWithBaseline(t *testing.T) {
	g, reg := newGen(3)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p := g.relation(reg, "A", "B", "C")
		got, err := alg.Project(p, []string{"B", "A"})
		if err != nil {
			t.Fatal(err)
		}
		want, err := relalg.Project(p.Data(), []string{"B", "A"})
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(got), plainRows(want)) {
			t.Fatalf("iteration %d: project data diverged from baseline", i)
		}
	}
}

func TestPropertyUnionDifferenceAgreeWithBaseline(t *testing.T) {
	g, reg := newGen(4)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p1 := g.relation(reg, "A", "B")
		p2 := g.relation(reg, "A", "B")
		u, err := alg.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		ubase, err := relalg.Union(dedup(p1.Data()), dedup(p2.Data()))
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(u), plainRows(ubase)) {
			t.Fatalf("iteration %d: union data diverged", i)
		}
		d, err := alg.Difference(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		dbase, err := relalg.Difference(dedup(p1.Data()), dedup(p2.Data()))
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(d), plainRows(dbase)) {
			t.Fatalf("iteration %d: difference data diverged", i)
		}
	}
}

func TestPropertyJoinAgreesWithPrimitives(t *testing.T) {
	g, reg := newGen(5)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p1 := g.relation(reg, "K/PK", "V")
		p2 := g.relation(reg, "K2/PK", "W")
		fast, err := alg.Join(p1, "K", rel.ThetaEQ, p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.JoinViaPrimitives(p1, "K", rel.ThetaEQ, p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		// Full-cell comparison, tags included.
		fr := render(fast)
		rr := render(ref)
		sort.Strings(fr)
		sort.Strings(rr)
		if !equalStrings(fr, rr) {
			t.Fatalf("iteration %d: hash join diverged from primitive composition:\nfast:\n%s\nref:\n%s",
				i, strings.Join(fr, "\n"), strings.Join(rr, "\n"))
		}
	}
}

// TestPropertyIntermediateMonotonic: no polygen operator ever removes a
// source from an intermediate tag of a surviving cell.
func TestPropertyIntermediateMonotonic(t *testing.T) {
	g, reg := newGen(6)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p := g.relation(reg, "A", "B")
		// Duplicate data tuples may carry different tags; a surviving tuple
		// is monotone if SOME input tuple with the same data has a subset
		// intermediate tag.
		before := make(map[string][]sourceset.Set)
		for _, t := range p.Tuples {
			before[t.DataKey()] = append(before[t.DataKey()], t[0].I)
		}
		got, err := alg.Restrict(p, "A", rel.ThetaEQ, "B")
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range got.Tuples {
			candidates, ok := before[tu.DataKey()]
			if !ok {
				t.Fatalf("iteration %d: restrict invented a tuple", i)
			}
			monotone := false
			for _, b := range candidates {
				if b.Subset(tu[0].I) {
					monotone = true
					break
				}
			}
			if !monotone {
				t.Fatalf("iteration %d: intermediate set shrank", i)
			}
		}
	}
}

// TestPropertyProjectIdempotent: projecting onto all attributes twice equals
// projecting once (set semantics with tag merging is stable).
func TestPropertyProjectIdempotent(t *testing.T) {
	g, reg := newGen(7)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p := g.relation(reg, "A", "B")
		once, err := alg.Project(p, []string{"A", "B"})
		if err != nil {
			t.Fatal(err)
		}
		twice, err := alg.Project(once, []string{"A", "B"})
		if err != nil {
			t.Fatal(err)
		}
		o, w := render(once), render(twice)
		sort.Strings(o)
		sort.Strings(w)
		if !equalStrings(o, w) {
			t.Fatalf("iteration %d: project not idempotent", i)
		}
	}
}

// TestPropertyUnionCommutativeOnTags: Union(p1,p2) and Union(p2,p1) carry
// identical tags cell for cell (data order may differ).
func TestPropertyUnionCommutativeOnTags(t *testing.T) {
	g, reg := newGen(8)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p1 := g.relation(reg, "A")
		p2 := g.relation(reg, "A")
		u12, err := alg.Union(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		u21, err := alg.Union(p2, p1)
		if err != nil {
			t.Fatal(err)
		}
		a, b := render(u12), render(u21)
		sort.Strings(a)
		sort.Strings(b)
		if !equalStrings(a, b) {
			t.Fatalf("iteration %d: union tags not commutative", i)
		}
	}
}

// TestPropertyUnionIdempotentData: p ∪ p has p's data (deduplicated).
func TestPropertyUnionIdempotentData(t *testing.T) {
	g, reg := newGen(9)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p := g.relation(reg, "A", "B")
		u, err := alg.Union(p, p)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(dataRows(u), plainRows(dedup(p.Data()))) {
			t.Fatalf("iteration %d: p ∪ p data != dedup(p)", i)
		}
	}
}

// TestPropertyDifferenceDisjoint: (p1 − p2) shares no data tuple with p2.
func TestPropertyDifferenceDisjoint(t *testing.T) {
	g, reg := newGen(10)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p1 := g.relation(reg, "A")
		p2 := g.relation(reg, "A")
		d, err := alg.Difference(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		inP2 := make(map[string]bool)
		for _, t2 := range p2.Tuples {
			inP2[t2.DataKey()] = true
		}
		for _, td := range d.Tuples {
			if inP2[td.DataKey()] {
				t.Fatalf("iteration %d: difference kept a p2 tuple", i)
			}
		}
	}
}

// TestPropertyOuterJoinCoversBothOperands: every operand tuple's data
// appears in some outer-join row (left rows in the left columns, right rows
// in the right columns).
func TestPropertyOuterJoinCoversBothOperands(t *testing.T) {
	g, reg := newGen(11)
	alg := NewAlgebra(nil)
	for i := 0; i < 150; i++ {
		p1 := g.relation(reg, "K/PK", "V")
		p2 := g.relation(reg, "K2/PK", "W")
		oj, err := alg.OuterJoin(p1, "K", p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		leftSeen := make(map[string]bool)
		rightSeen := make(map[string]bool)
		for _, t := range oj.Tuples {
			leftSeen[Tuple(t[:2]).DataKey()] = true
			rightSeen[Tuple(t[2:]).DataKey()] = true
		}
		for _, t1 := range p1.Tuples {
			if !leftSeen[t1.DataKey()] {
				t.Fatalf("iteration %d: outer join lost a left tuple", i)
			}
		}
		for _, t2 := range p2.Tuples {
			if !rightSeen[t2.DataKey()] {
				t.Fatalf("iteration %d: outer join lost a right tuple", i)
			}
		}
	}
}

// TestPropertyCoalesceKeepsDegreeAndCardinality: coalesce removes exactly
// one column and no tuples.
func TestPropertyCoalesceKeepsDegreeAndCardinality(t *testing.T) {
	g, reg := newGen(12)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p := g.relation(reg, "X", "Y", "Z")
		c, err := alg.Coalesce(p, "X", "Y", "W")
		if err != nil {
			t.Fatal(err)
		}
		if c.Degree() != p.Degree()-1 {
			t.Fatalf("iteration %d: degree %d, want %d", i, c.Degree(), p.Degree()-1)
		}
		if c.Cardinality() != p.Cardinality() {
			t.Fatalf("iteration %d: cardinality changed", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Hash-keyed engine vs. string-keyed reference (reference.go).
//
// The rewritten operators bucket by Tuple.DataHash64 / Resolver.CanonicalID;
// the reference operators key maps by Tuple.DataKey / Resolver.Canonical
// strings. The two must agree cell for cell — data and both tag sets. Tag
// sets are drawn from up to 100 sources so the sourceset overflow path
// (IDs >= 64, stored in the sorted rest slice) is exercised as well.

// newWideGen is newGen with 100 databases interned, so rendered tags can
// name IDs beyond the 64-bit bitmask.
func newWideGen(seed int64) (*gen, *sourceset.Registry) {
	reg := sourceset.NewRegistry()
	for i := 0; i < 100; i++ {
		reg.Intern(workloadDBName(i))
	}
	return &gen{r: rand.New(rand.NewSource(seed))}, reg
}

func workloadDBName(i int) string { return "D" + strconv.Itoa(i) }

// wideSet draws up to three source IDs from [0, 100) — beyond 64 the set
// spills into the overflow slice.
func (g *gen) wideSet() sourceset.Set {
	var s sourceset.Set
	n := g.r.Intn(4)
	for i := 0; i < n; i++ {
		s = s.With(sourceset.ID(g.r.Intn(100)))
	}
	return s
}

// wideRelation is relation() with wideSet tags and mixed-kind values.
func (g *gen) wideRelation(reg *sourceset.Registry, names ...string) *Relation {
	p := NewRelation("G", reg, attrs(names...)...)
	n := g.r.Intn(10)
	for i := 0; i < n; i++ {
		t := make(Tuple, len(names))
		for j := range t {
			t[j] = Cell{D: g.mixedValue(), O: g.wideSet(), I: g.wideSet()}
		}
		p.Tuples = append(p.Tuples, t)
	}
	return p
}

// mixedValue draws from a small mixed-kind domain (strings, ints, floats,
// bools, nulls, NaN) so kind-tagged hashing is exercised, with heavy
// collisions. NaN is included because it is the one value where Equal and
// the engines' datum identity (Value.Identical / DataKey) deliberately
// disagree.
func (g *gen) mixedValue() rel.Value {
	switch g.r.Intn(9) {
	case 0:
		return rel.Null()
	case 1:
		return rel.Int(int64(g.r.Intn(3)))
	case 2:
		return rel.Float(float64(g.r.Intn(3)) / 2)
	case 3:
		return rel.Bool(g.r.Intn(2) == 0)
	case 4:
		return rel.Float(math.NaN())
	case 5:
		return rel.Float(math.Copysign(0, -1)) // -0: one datum with +0 everywhere
	default:
		return rel.String(string(rune('a' + g.r.Intn(4))))
	}
}

// wantSameRendered asserts two relations agree cell for cell (data, origin
// and intermediate tags), order-insensitively.
func wantSameRendered(t *testing.T, label string, i int, got, ref *Relation) {
	t.Helper()
	gr, rr := render(got), render(ref)
	sort.Strings(gr)
	sort.Strings(rr)
	if !equalStrings(gr, rr) {
		t.Fatalf("iteration %d: %s: hash-keyed result diverged from string-keyed reference:\nhash:\n%s\nref:\n%s",
			i, label, strings.Join(gr, "\n"), strings.Join(rr, "\n"))
	}
}

func TestPropertyHashProjectMatchesReference(t *testing.T) {
	g, reg := newWideGen(20)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p := g.wideRelation(reg, "A", "B", "C")
		got, err := alg.Project(p, []string{"C", "A"})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.RefProject(p, []string{"C", "A"})
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "project", i, got, ref)
	}
}

func TestPropertyHashUnionDifferenceIntersectMatchReference(t *testing.T) {
	g, reg := newWideGen(21)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")
		for _, op := range []struct {
			name string
			fast func(_, _ *Relation) (*Relation, error)
			ref  func(_, _ *Relation) (*Relation, error)
		}{
			{"union", alg.Union, alg.RefUnion},
			{"difference", alg.Difference, alg.RefDifference},
			{"intersect", alg.Intersect, alg.RefIntersect},
		} {
			got, err := op.fast(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := op.ref(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, op.name, i, got, ref)
		}
	}
}

func TestPropertyHashJoinMatchesReference(t *testing.T) {
	resolvers := []identity.Resolver{
		identity.Exact{},
		identity.CaseFold{},
		identity.NewSynonyms(identity.CaseFold{},
			[]rel.Value{rel.String("a"), rel.String("b")},
			[]rel.Value{rel.String("c"), rel.String("d")},
		),
	}
	for ri, res := range resolvers {
		g, reg := newWideGen(int64(30 + ri))
		alg := NewAlgebra(res)
		for i := 0; i < 200; i++ {
			p1 := g.wideRelation(reg, "K/PK", "V")
			p2 := g.wideRelation(reg, "K2/PK", "W")
			got, err := alg.Join(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := alg.RefJoin(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "join", i, got, ref)
		}
	}
}

func TestPropertyHashOuterJoinMatchesReference(t *testing.T) {
	g, reg := newWideGen(40)
	alg := NewAlgebra(identity.CaseFold{})
	for i := 0; i < 200; i++ {
		p1 := g.wideRelation(reg, "K/PK", "V")
		p2 := g.wideRelation(reg, "K2/PK", "W")
		got, err := alg.OuterJoin(p1, "K", p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.RefOuterJoin(p1, "K", p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "outer join", i, got, ref)
	}
}

func TestPropertyHashMergeMatchesReference(t *testing.T) {
	scheme := &Scheme{
		Name: "PG",
		Key:  "K",
		Attrs: []PolygenAttr{
			{Name: "K"}, {Name: "A"}, {Name: "B"},
		},
	}
	g, reg := newWideGen(50)
	alg := NewAlgebra(identity.CaseFold{})
	for i := 0; i < 100; i++ {
		p1 := g.wideRelation(reg, "K/K", "A/A")
		p2 := g.wideRelation(reg, "K2/K", "B/B")
		p3 := g.wideRelation(reg, "K3/K", "A2/A")
		got, err := alg.Merge(scheme, p1, p2, p3)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.RefMerge(scheme, p1, p2, p3)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "merge", i, got, ref)
	}
}

// ---------------------------------------------------------------------------
// Streaming engine vs. materializing engine vs. string-keyed reference.
//
// The streaming operators (stream.go) consume cursors batch-at-a-time; the
// cursors here use a deliberately tiny batch size so every operator crosses
// many batch boundaries. Inputs are wide relations: mixed-kind data
// including NaN and -0 (the data where engine identity rules are subtle)
// and tag sets drawn from 100 sources (exercising the >64-ID sourceset
// overflow path). All three engines must agree cell for cell — data,
// origin tags and intermediate tags.

// streamBatch is the batch size used by the streaming property tests: small
// enough that even the tiny random relations span several batches.
const streamBatch = 3

// cursorOver cuts p into streamBatch-sized batches.
func cursorOver(p *Relation) Cursor { return NewRelationCursor(p, streamBatch) }

// mustDrain runs a streaming operator construction to completion; its
// signature matches the (Cursor, error) returns of the Stream* operators so
// calls compose directly.
func mustDrain(c Cursor, err error) *Relation {
	if err != nil {
		panic(err)
	}
	out, err := Drain(c)
	if err != nil {
		panic(err)
	}
	return out
}

func TestPropertyStreamSelectRestrictMatchMaterialized(t *testing.T) {
	g, reg := newWideGen(70)
	alg := NewAlgebra(nil)
	thetas := []rel.Theta{rel.ThetaEQ, rel.ThetaNE, rel.ThetaLT, rel.ThetaGE}
	for i := 0; i < 300; i++ {
		p := g.wideRelation(reg, "A", "B")
		c := g.mixedValue()
		theta := thetas[g.r.Intn(len(thetas))]

		sMat, err := alg.Select(p, "A", theta, c)
		if err != nil {
			t.Fatal(err)
		}
		sStr := mustDrain(alg.StreamSelect(cursorOver(p), "A", theta, c))
		wantSameRendered(t, "stream select", i, sStr, sMat)

		rMat, err := alg.Restrict(p, "A", theta, "B")
		if err != nil {
			t.Fatal(err)
		}
		rStr := mustDrain(alg.StreamRestrict(cursorOver(p), "A", theta, "B"))
		wantSameRendered(t, "stream restrict", i, rStr, rMat)
	}
}

func TestPropertyStreamProjectMatchesEngines(t *testing.T) {
	g, reg := newWideGen(71)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p := g.wideRelation(reg, "A", "B", "C")
		mat, err := alg.Project(p, []string{"C", "A"})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.RefProject(p, []string{"C", "A"})
		if err != nil {
			t.Fatal(err)
		}
		str := mustDrain(alg.StreamProject(cursorOver(p), []string{"C", "A"}))
		wantSameRendered(t, "stream project vs materialized", i, str, mat)
		wantSameRendered(t, "stream project vs reference", i, str, ref)
	}
}

func TestPropertyStreamBinaryOpsMatchEngines(t *testing.T) {
	g, reg := newWideGen(72)
	alg := NewAlgebra(nil)
	for i := 0; i < 300; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "B")
		for _, op := range []struct {
			name   string
			stream func(_, _ Cursor) (Cursor, error)
			mat    func(_, _ *Relation) (*Relation, error)
			ref    func(_, _ *Relation) (*Relation, error)
		}{
			{"union", alg.StreamUnion, alg.Union, alg.RefUnion},
			{"difference", alg.StreamDifference, alg.Difference, alg.RefDifference},
			{"intersect", alg.StreamIntersect, alg.Intersect, alg.RefIntersect},
		} {
			str := mustDrain(op.stream(cursorOver(p1), cursorOver(p2)))
			mat, err := op.mat(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := op.ref(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "stream "+op.name+" vs materialized", i, str, mat)
			wantSameRendered(t, "stream "+op.name+" vs reference", i, str, ref)
		}
	}
}

func TestPropertyStreamProductMatchesMaterialized(t *testing.T) {
	g, reg := newWideGen(73)
	alg := NewAlgebra(nil)
	for i := 0; i < 200; i++ {
		p1 := g.wideRelation(reg, "A", "B")
		p2 := g.wideRelation(reg, "A", "C")
		str := mustDrain(alg.StreamProduct(cursorOver(p1), cursorOver(p2)))
		mat, err := alg.Product(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "stream product", i, str, mat)
	}
}

func TestPropertyStreamJoinMatchesEngines(t *testing.T) {
	resolvers := []identity.Resolver{
		identity.Exact{},
		identity.CaseFold{},
		identity.NewSynonyms(identity.CaseFold{},
			[]rel.Value{rel.String("a"), rel.String("b")},
			[]rel.Value{rel.String("c"), rel.String("d")},
		),
	}
	for ri, res := range resolvers {
		g, reg := newWideGen(int64(74 + ri))
		alg := NewAlgebra(res)
		for i := 0; i < 200; i++ {
			p1 := g.wideRelation(reg, "K/PK", "V")
			p2 := g.wideRelation(reg, "K2/PK", "W")
			str := mustDrain(alg.StreamJoin(cursorOver(p1), "K", rel.ThetaEQ, cursorOver(p2), "K2"))
			mat, err := alg.Join(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			ref, err := alg.RefJoin(p1, "K", rel.ThetaEQ, p2, "K2")
			if err != nil {
				t.Fatal(err)
			}
			wantSameRendered(t, "stream join vs materialized", i, str, mat)
			wantSameRendered(t, "stream join vs reference", i, str, ref)
		}
	}
}

// TestPropertyStreamThetaJoinMatchesMaterialized covers the non-equality
// fallback (the primitive composition, streamed).
func TestPropertyStreamThetaJoinMatchesMaterialized(t *testing.T) {
	g, reg := newWideGen(77)
	alg := NewAlgebra(nil)
	for i := 0; i < 100; i++ {
		p1 := g.wideRelation(reg, "K", "V")
		p2 := g.wideRelation(reg, "K2", "W")
		str := mustDrain(alg.StreamJoin(cursorOver(p1), "K", rel.ThetaLT, cursorOver(p2), "K2"))
		mat, err := alg.Join(p1, "K", rel.ThetaLT, p2, "K2")
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "stream theta join", i, str, mat)
	}
}

func TestPropertyStreamMergeMatchesEngines(t *testing.T) {
	scheme := &Scheme{
		Name: "PG",
		Key:  "K",
		Attrs: []PolygenAttr{
			{Name: "K"}, {Name: "A"}, {Name: "B"},
		},
	}
	g, reg := newWideGen(78)
	alg := NewAlgebra(identity.CaseFold{})
	for i := 0; i < 100; i++ {
		p1 := g.wideRelation(reg, "K/K", "A/A")
		p2 := g.wideRelation(reg, "K2/K", "B/B")
		p3 := g.wideRelation(reg, "K3/K", "A2/A")
		str := mustDrain(alg.StreamMerge(scheme, false, cursorOver(p1), cursorOver(p2), cursorOver(p3)))
		mat, err := alg.Merge(scheme, p1, p2, p3)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := alg.RefMerge(scheme, p1, p2, p3)
		if err != nil {
			t.Fatal(err)
		}
		wantSameRendered(t, "stream merge vs materialized", i, str, mat)
		wantSameRendered(t, "stream merge vs reference", i, str, ref)
	}
}

// TestNaNDatumIdentity pins the NaN semantics of the hash engine against
// the string-keyed reference: DataKey formats every NaN identically, so
// duplicate elimination and joins must treat all NaNs as one datum even
// though rel's Equal follows IEEE (NaN != NaN).
func TestNaNDatumIdentity(t *testing.T) {
	_, reg := newGen(60)
	alg := NewAlgebra(nil)
	p := NewRelation("N", reg, attrs("A")...)
	p.Tuples = append(p.Tuples,
		Tuple{Cell{D: rel.Float(math.NaN()), O: sourceset.Of(0)}},
		Tuple{Cell{D: rel.Float(math.NaN()), O: sourceset.Of(1)}},
	)
	u, err := alg.Union(p, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := alg.RefUnion(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cardinality() != 1 || ref.Cardinality() != 1 {
		t.Fatalf("Union(p,p) over NaN tuples: hash=%d rows, reference=%d rows, want 1 and 1",
			u.Cardinality(), ref.Cardinality())
	}
	wantSameRendered(t, "nan union", 0, u, ref)
	j, err := alg.Join(p, "A", rel.ThetaEQ, p, "A")
	if err != nil {
		t.Fatal(err)
	}
	jr, err := alg.RefJoin(p, "A", rel.ThetaEQ, p, "A")
	if err != nil {
		t.Fatal(err)
	}
	wantSameRendered(t, "nan join", 0, j, jr)
	su := mustDrain(alg.StreamUnion(cursorOver(p), cursorOver(p)))
	wantSameRendered(t, "nan stream union", 0, su, ref)
	sj := mustDrain(alg.StreamJoin(cursorOver(p), "A", rel.ThetaEQ, cursorOver(p), "A"))
	wantSameRendered(t, "nan stream join", 0, sj, jr)
}

// TestSignedZeroDatumIdentity pins the ±0 semantics: Equal, Identical, Key
// and CanonicalID all treat +0.0 and -0.0 as one datum, so both engines
// must deduplicate and join them identically.
func TestSignedZeroDatumIdentity(t *testing.T) {
	_, reg := newGen(61)
	alg := NewAlgebra(nil)
	p := NewRelation("Z", reg, attrs("A")...)
	p.Tuples = append(p.Tuples,
		Tuple{Cell{D: rel.Float(0), O: sourceset.Of(0)}},
		Tuple{Cell{D: rel.Float(math.Copysign(0, -1)), O: sourceset.Of(1)}},
	)
	u, err := alg.Union(p, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := alg.RefUnion(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if u.Cardinality() != 1 || ref.Cardinality() != 1 {
		t.Fatalf("Union(p,p) over ±0 tuples: hash=%d rows, reference=%d rows, want 1 and 1",
			u.Cardinality(), ref.Cardinality())
	}
	wantSameRendered(t, "signed-zero union", 0, u, ref)
	j, err := alg.Join(p, "A", rel.ThetaEQ, p, "A")
	if err != nil {
		t.Fatal(err)
	}
	jr, err := alg.RefJoin(p, "A", rel.ThetaEQ, p, "A")
	if err != nil {
		t.Fatal(err)
	}
	wantSameRendered(t, "signed-zero join", 0, j, jr)
	su := mustDrain(alg.StreamUnion(cursorOver(p), cursorOver(p)))
	wantSameRendered(t, "signed-zero stream union", 0, su, ref)
	sj := mustDrain(alg.StreamJoin(cursorOver(p), "A", rel.ThetaEQ, cursorOver(p), "A"))
	wantSameRendered(t, "signed-zero stream join", 0, sj, jr)
}
