package core

import (
	"repro/internal/sourceset"
)

// Lineage answers the paper's third §IV observation: "From the polygen
// schema and the information of (ONAME, {AD, CD}), the polygen query
// processor can derive the information that Genentech is from the BNAME
// column, BUSINESS relation in the Alumni Database and from the FNAME
// column, FIRM relation in the Company Database. This information can be
// shown to the user upon request with a simple mapping."
//
// Given a polygen attribute name and an origin set, it returns the (LD, LS,
// LA) triplets of the attribute's mapping whose database appears in the
// origin set — the local columns the datum can have come from.
func (s *Schema) Lineage(polygenAttr string, origins sourceset.Set, reg *sourceset.Registry) []LocalAttr {
	var out []LocalAttr
	seen := make(map[LocalAttr]bool)
	for _, name := range s.order {
		scheme := s.schemes[name]
		pa, ok := scheme.Attr(polygenAttr)
		if !ok {
			continue
		}
		for _, la := range pa.Mapping {
			if seen[la] {
				continue
			}
			id, ok := reg.Lookup(la.DB)
			if !ok || !origins.Contains(id) {
				continue
			}
			seen[la] = true
			out = append(out, la)
		}
	}
	return out
}

// CellLineage resolves the lineage of one cell of a polygen relation: the
// local attributes its datum can originate from, derived from the column's
// polygen annotation and the cell's origin tag. Columns without a polygen
// annotation have no schema-level lineage and yield nil.
func (s *Schema) CellLineage(p *Relation, col int, row int) []LocalAttr {
	if col < 0 || col >= len(p.Attrs) || row < 0 || row >= len(p.Tuples) {
		return nil
	}
	pa := p.Attrs[col].Polygen
	if pa == "" {
		return nil
	}
	return s.Lineage(pa, p.Tuples[row][col].O, p.Reg)
}
