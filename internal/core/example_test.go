package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Example demonstrates the polygen model's cell structure: every datum
// carries where it came from and which sources mediated its selection.
func Example() {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	cd := reg.Intern("CD")

	cell := core.Cell{
		D: rel.String("Bob Swanson"),
		O: sourceset.Of(cd),
		I: sourceset.Of(ad, cd),
	}
	fmt.Println(cell.Format(reg))
	// Output: Bob Swanson, {CD}, {AD, CD}
}

// ExampleAlgebra_Select shows that Select updates the intermediate tags:
// the operand attribute's origins mediate every surviving cell (§II).
func ExampleAlgebra_Select() {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	cd := reg.Intern("CD")

	p := core.NewRelation("P", reg,
		core.Attr{Name: "DEG"}, core.Attr{Name: "CEO"})
	p.Append(core.Tuple{
		{D: rel.String("MBA"), O: sourceset.Of(ad)},
		{D: rel.String("John Reed"), O: sourceset.Of(cd)},
	})
	p.Append(core.Tuple{
		{D: rel.String("BS"), O: sourceset.Of(ad)},
		{D: rel.String("Ken Olsen"), O: sourceset.Of(cd)},
	})

	alg := core.NewAlgebra(nil)
	got, _ := alg.Select(p, "DEG", rel.ThetaEQ, rel.String("MBA"))
	for _, t := range got.Tuples {
		fmt.Println(t[1].Format(reg))
	}
	// Output: John Reed, {CD}, {AD}
}

// ExampleAlgebra_Coalesce shows the sixth primitive on its three cases.
func ExampleAlgebra_Coalesce() {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	pd := reg.Intern("PD")

	p := core.NewRelation("P", reg,
		core.Attr{Name: "BNAME"}, core.Attr{Name: "CNAME"})
	// Same instance known to both databases.
	p.Append(core.Tuple{
		{D: rel.String("IBM"), O: sourceset.Of(ad)},
		{D: rel.String("IBM"), O: sourceset.Of(pd)},
	})
	// Known only to AD: the right cell is nil-padded.
	p.Append(core.Tuple{
		{D: rel.String("MIT"), O: sourceset.Of(ad)},
		core.NilCell(sourceset.Empty()),
	})

	alg := core.NewAlgebra(identity.CaseFold{})
	got, _ := alg.Coalesce(p, "BNAME", "CNAME", "ONAME")
	for _, t := range got.Tuples {
		fmt.Println(t[0].Format(reg))
	}
	// Output:
	// IBM, {AD, PD}, {}
	// MIT, {AD}, {}
}

// ExampleAlgebra_Merge builds the paper's multi-source organization
// relation from two fragments.
func ExampleAlgebra_Merge() {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	pd := reg.Intern("PD")

	scheme := &core.Scheme{
		Name: "PORG", Key: "ONAME",
		Attrs: []core.PolygenAttr{
			{Name: "ONAME", Mapping: []core.LocalAttr{
				{DB: "AD", Scheme: "BUSINESS", Attr: "BNAME"},
				{DB: "PD", Scheme: "CORPORATION", Attr: "CNAME"},
			}},
			{Name: "INDUSTRY", Mapping: []core.LocalAttr{
				{DB: "AD", Scheme: "BUSINESS", Attr: "IND"},
				{DB: "PD", Scheme: "CORPORATION", Attr: "TRADE"},
			}},
		},
	}

	business := core.NewRelation("BUSINESS", reg,
		core.Attr{Name: "BNAME", Polygen: "ONAME"},
		core.Attr{Name: "IND", Polygen: "INDUSTRY"})
	business.Append(core.Tuple{
		{D: rel.String("IBM"), O: sourceset.Of(ad)},
		{D: rel.String("High Tech"), O: sourceset.Of(ad)},
	})
	corporation := core.NewRelation("CORPORATION", reg,
		core.Attr{Name: "CNAME", Polygen: "ONAME"},
		core.Attr{Name: "TRADE", Polygen: "INDUSTRY"})
	corporation.Append(core.Tuple{
		{D: rel.String("IBM"), O: sourceset.Of(pd)},
		{D: rel.String("High Tech"), O: sourceset.Of(pd)},
	})

	alg := core.NewAlgebra(identity.CaseFold{})
	merged, _ := alg.Merge(scheme, business, corporation)
	for _, t := range merged.Tuples {
		fmt.Println(t[0].Format(reg), "|", t[1].Format(reg))
	}
	// Output: IBM, {AD, PD}, {AD, PD} | High Tech, {AD, PD}, {AD, PD}
}

// ExampleSchema_Lineage reproduces §IV observation (3): mapping a tagged
// cell back to the local columns it can originate from.
func ExampleSchema_Lineage() {
	reg := sourceset.NewRegistry()
	ad := reg.Intern("AD")
	reg.Intern("PD")
	cd := reg.Intern("CD")

	schema := core.MustSchema(&core.Scheme{
		Name: "PORGANIZATION", Key: "ONAME",
		Attrs: []core.PolygenAttr{{Name: "ONAME", Mapping: []core.LocalAttr{
			{DB: "AD", Scheme: "BUSINESS", Attr: "BNAME"},
			{DB: "PD", Scheme: "CORPORATION", Attr: "CNAME"},
			{DB: "CD", Scheme: "FIRM", Attr: "FNAME"},
		}}},
	})
	for _, la := range schema.Lineage("ONAME", sourceset.Of(ad, cd), reg) {
		fmt.Println(la)
	}
	// Output:
	// (AD, BUSINESS, BNAME)
	// (CD, FIRM, FNAME)
}
