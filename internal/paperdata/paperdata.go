// Package paperdata embeds the worked example of the paper (§II and §IV):
// the three local databases — the Alumni Database (AD), the Placement
// Database (PD) and the Company Database (CD) — and the six-scheme polygen
// schema with its attribute mapping relationships. All relation contents are
// the paper's, reconstructed verbatim from §IV; OCR defects in the supplied
// text and their reconstructions are catalogued in EXPERIMENTS.md.
package paperdata

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/domainmap"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/sourceset"
)

// Database names as tagged in the paper's tables.
const (
	AD = "AD" // Alumni Database
	PD = "PD" // Placement Database
	CD = "CD" // Company Database
)

// Federation bundles the paper's three local databases, the polygen schema
// and a shared source registry, ready to be served by LQPs and queried by a
// PQP.
type Federation struct {
	// Registry interns AD, PD, CD (in that order, so rendered tag sets list
	// sources in the paper's order).
	Registry *sourceset.Registry
	// AD, PD, CD are the local databases.
	AD, PD, CD *catalog.Database
	// Schema is the polygen schema of §II, including the FIRM.HQ →
	// HEADQUARTERS domain mapping.
	Schema *core.Schema
}

// New builds the federation with all of the paper's data loaded.
func New() *Federation {
	f := &Federation{
		Registry: sourceset.NewRegistry(),
		AD:       catalog.NewDatabase(AD),
		PD:       catalog.NewDatabase(PD),
		CD:       catalog.NewDatabase(CD),
	}
	f.Registry.Intern(AD)
	f.Registry.Intern(PD)
	f.Registry.Intern(CD)
	f.loadAD()
	f.loadPD()
	f.loadCD()
	f.Schema = Schema()
	return f
}

// LQPs returns in-process Local Query Processors for the three databases,
// keyed by database name.
func (f *Federation) LQPs() map[string]lqp.LQP {
	return map[string]lqp.LQP{
		AD: lqp.NewLocal(f.AD),
		PD: lqp.NewLocal(f.PD),
		CD: lqp.NewLocal(f.CD),
	}
}

// Databases returns the three catalogs in AD, PD, CD order.
func (f *Federation) Databases() []*catalog.Database {
	return []*catalog.Database{f.AD, f.PD, f.CD}
}

func s(v string) rel.Value   { return rel.String(v) }
func fl(v float64) rel.Value { return rel.Float(v) }
func in(v int64) rel.Value   { return rel.Int(v) }

func (f *Federation) loadAD() {
	f.AD.MustCreate("ALUMNUS", rel.SchemaOf("AID#", "ANAME", "DEG", "MAJ"), "AID#")
	mustInsert(f.AD, "ALUMNUS",
		row(s("012"), s("John McCauley"), s("MBA"), s("IS")),
		row(s("123"), s("Bob Swanson"), s("MBA"), s("MGT")),
		row(s("234"), s("Stu Madnick"), s("MBA"), s("IS")),
		row(s("345"), s("James Yao"), s("BS"), s("EECS")),
		row(s("456"), s("Dave Horton"), s("MBA"), s("IS")),
		row(s("567"), s("John Reed"), s("MBA"), s("MGT")),
		row(s("678"), s("Bob Horton"), s("SF"), s("MGT")),
		row(s("789"), s("Ken Olsen"), s("MS"), s("EE")),
	)

	f.AD.MustCreate("CAREER", rel.SchemaOf("AID#", "BNAME", "POS"), "AID#", "BNAME")
	mustInsert(f.AD, "CAREER",
		row(s("012"), s("Citicorp"), s("MIS Director")),
		row(s("123"), s("Genentech"), s("CEO")),
		row(s("234"), s("Langley Castle"), s("CEO")),
		row(s("345"), s("Oracle"), s("Manager")),
		row(s("456"), s("Ford"), s("Manager")),
		row(s("567"), s("Citicorp"), s("CEO")),
		row(s("678"), s("BP"), s("CEO")),
		row(s("789"), s("DEC"), s("CEO")),
		row(s("234"), s("MIT"), s("Professor")),
	)

	f.AD.MustCreate("BUSINESS", rel.SchemaOf("BNAME", "IND"), "BNAME")
	mustInsert(f.AD, "BUSINESS",
		row(s("Langley Castle"), s("Hotel")),
		row(s("IBM"), s("High Tech")),
		row(s("MIT"), s("Education")),
		row(s("CitiCorp"), s("Banking")),
		row(s("Oracle"), s("High Tech")),
		row(s("Ford"), s("Automobile")),
		row(s("DEC"), s("High Tech")),
		row(s("BP"), s("Energy")),
		row(s("Genentech"), s("High Tech")),
	)
}

func (f *Federation) loadPD() {
	f.PD.MustCreate("STUDENT", rel.SchemaOf("SID#", "SNAME", "GPA", "MAJOR"), "SID#")
	mustInsert(f.PD, "STUDENT",
		row(s("01"), s("Forea Wang"), fl(3.5), s("Math")),
		row(s("12"), s("Yeuk Yuan"), fl(3.99), s("EECS")),
		row(s("23"), s("Rich Bolsky"), fl(3.2), s("Finance")),
		row(s("34"), s("John Smith"), fl(3.6), s("Finance")),
		row(s("45"), s("Mike Lavine"), fl(3.7), s("IS")),
	)

	f.PD.MustCreate("INTERVIEW", rel.SchemaOf("SID#", "CNAME", "JOB", "LOC"), "SID#", "CNAME")
	mustInsert(f.PD, "INTERVIEW",
		row(s("01"), s("IBM"), s("System Analyst"), s("NY")),
		row(s("12"), s("Oracle"), s("Product Manager"), s("CA")),
		row(s("23"), s("Banker's Trust"), s("CFO"), s("NY")),
		row(s("34"), s("Citicorp"), s("Far East Manager"), s("NY")),
	)

	f.PD.MustCreate("CORPORATION", rel.SchemaOf("CNAME", "TRADE", "STATE"), "CNAME")
	mustInsert(f.PD, "CORPORATION",
		row(s("Apple"), s("High Tech"), s("CA")),
		row(s("Oracle"), s("High Tech"), s("CA")),
		row(s("AT&T"), s("High Tech"), s("NY")),
		row(s("IBM"), s("High Tech"), s("NY")),
		row(s("Citicorp"), s("Banking"), s("NY")),
		row(s("DEC"), s("High Tech"), s("MA")),
		row(s("Banker's Trust"), s("Finance"), s("NY")),
	)
}

func (f *Federation) loadCD() {
	f.CD.MustCreate("FIRM", rel.SchemaOf("FNAME", "CEO", "HQ"), "FNAME")
	mustInsert(f.CD, "FIRM",
		row(s("AT&T"), s("Robert Allen"), s("NY, NY")),
		row(s("Langley Castle"), s("Stu Madnick"), s("Cambridge, MA")),
		row(s("Banker's Trust"), s("Charles Sanford"), s("NY, NY")),
		row(s("CitiCorp"), s("John Reed"), s("NY, NY")),
		row(s("Ford"), s("Donald Peterson"), s("Dearborn, MI")),
		row(s("IBM"), s("John Ackers"), s("Armonk, NY")),
		row(s("Apple"), s("John Sculley"), s("Cupertino, CA")),
		row(s("Oracle"), s("Lawrence Ellison"), s("Belmont, CA")),
		row(s("DEC"), s("Ken Olsen"), s("Maynard, MA")),
		row(s("Genentech"), s("Bob Swanson"), s("So. San Francisco, CA")),
	)

	f.CD.MustCreate("FINANCE", rel.SchemaOf("FNAME", "YR", "PROFIT"), "FNAME", "YR")
	mustInsert(f.CD, "FINANCE",
		row(s("AT&T"), in(1989), s("-1.7 bil")),
		row(s("Langley Castle"), in(1989), s("1 mil")),
		row(s("Banker's Trust"), in(1989), s("648 mil")),
		row(s("CitiCorp"), in(1989), s("1.7 bil")),
		row(s("Ford"), in(1989), s("5.3 bil")),
		row(s("IBM"), in(1989), s("5.5 bil")),
		row(s("Apple"), in(1989), s("400 mil")),
		row(s("Oracle"), in(1989), s("43 mil")),
		row(s("DEC"), in(1989), s("1.3 bil")),
		row(s("Genentech"), in(1989), s("21 mil")),
	)
}

func row(vals ...rel.Value) rel.Tuple { return rel.Tuple(vals) }

func mustInsert(db *catalog.Database, name string, tuples ...rel.Tuple) {
	if err := db.Insert(name, tuples...); err != nil {
		panic(err)
	}
}

// Schema returns the paper's polygen schema (§II) with attribute mapping
// relationships and the FIRM.HQ → HEADQUARTERS domain mapping.
func Schema() *core.Schema {
	la := func(db, scheme, attr string) core.LocalAttr {
		return core.LocalAttr{DB: db, Scheme: scheme, Attr: attr}
	}
	pa := func(name string, mapping ...core.LocalAttr) core.PolygenAttr {
		return core.PolygenAttr{Name: name, Mapping: mapping}
	}
	schema := core.MustSchema(
		&core.Scheme{Name: "PALUMNUS", Key: "AID#", Attrs: []core.PolygenAttr{
			pa("AID#", la(AD, "ALUMNUS", "AID#")),
			pa("ANAME", la(AD, "ALUMNUS", "ANAME")),
			pa("DEGREE", la(AD, "ALUMNUS", "DEG")),
			pa("MAJOR", la(AD, "ALUMNUS", "MAJ")),
		}},
		&core.Scheme{Name: "PCAREER", Key: "AID#", Attrs: []core.PolygenAttr{
			pa("AID#", la(AD, "CAREER", "AID#")),
			pa("ONAME", la(AD, "CAREER", "BNAME")),
			pa("POSITION", la(AD, "CAREER", "POS")),
		}},
		&core.Scheme{Name: "PORGANIZATION", Key: "ONAME", Attrs: []core.PolygenAttr{
			pa("ONAME", la(AD, "BUSINESS", "BNAME"), la(PD, "CORPORATION", "CNAME"), la(CD, "FIRM", "FNAME")),
			pa("INDUSTRY", la(AD, "BUSINESS", "IND"), la(PD, "CORPORATION", "TRADE")),
			pa("CEO", la(CD, "FIRM", "CEO")),
			pa("HEADQUARTERS", la(PD, "CORPORATION", "STATE"), la(CD, "FIRM", "HQ")),
		}},
		&core.Scheme{Name: "PSTUDENT", Key: "SID#", Attrs: []core.PolygenAttr{
			pa("SID#", la(PD, "STUDENT", "SID#")),
			pa("SNAME", la(PD, "STUDENT", "SNAME")),
			pa("GPA", la(PD, "STUDENT", "GPA")),
			pa("MAJOR", la(PD, "STUDENT", "MAJOR")),
		}},
		&core.Scheme{Name: "PINTERVIEW", Key: "SID#", Attrs: []core.PolygenAttr{
			pa("SID#", la(PD, "INTERVIEW", "SID#")),
			pa("ONAME", la(PD, "INTERVIEW", "CNAME")),
			pa("JOB", la(PD, "INTERVIEW", "JOB")),
			pa("LOCATION", la(PD, "INTERVIEW", "LOC")),
		}},
		&core.Scheme{Name: "PFINANCE", Key: "ONAME", Attrs: []core.PolygenAttr{
			pa("ONAME", la(CD, "FINANCE", "FNAME")),
			pa("YEAR", la(CD, "FINANCE", "YR")),
			pa("PROFIT", la(CD, "FINANCE", "PROFIT")),
		}},
	)
	// The Company Database stores headquarters as "city, state"; the polygen
	// HEADQUARTERS domain is the state (compare §IV's Firm relation with
	// Table A3).
	schema.DomainMap.Set(CD, "FIRM", "HQ", domainmap.LastCommaField)
	return schema
}
