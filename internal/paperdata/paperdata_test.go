package paperdata

import (
	"testing"

	"repro/internal/core"
)

func TestFederationShape(t *testing.T) {
	f := New()
	if f.AD.Name() != "AD" || f.PD.Name() != "PD" || f.CD.Name() != "CD" {
		t.Error("database names wrong")
	}
	// Registry interned in paper order so tags render {AD, PD, CD}.
	if id, _ := f.Registry.Lookup("AD"); id != 0 {
		t.Error("AD must intern first")
	}
	if id, _ := f.Registry.Lookup("CD"); id != 2 {
		t.Error("CD must intern third")
	}
	if len(f.LQPs()) != 3 {
		t.Error("expected 3 LQPs")
	}
	if len(f.Databases()) != 3 {
		t.Error("expected 3 databases")
	}
}

func TestPaperCardinalities(t *testing.T) {
	f := New()
	cases := []struct {
		db   string
		rel  string
		card int
	}{
		{"AD", "ALUMNUS", 8},
		{"AD", "CAREER", 9},
		{"AD", "BUSINESS", 9},
		{"PD", "STUDENT", 5},
		{"PD", "INTERVIEW", 4},
		{"PD", "CORPORATION", 7},
		{"CD", "FIRM", 10},
		{"CD", "FINANCE", 10},
	}
	dbs := map[string]interface {
		Snapshot(string) (interface{ Cardinality() int }, error)
	}{}
	_ = dbs
	for _, c := range cases {
		var db = f.AD
		switch c.db {
		case "PD":
			db = f.PD
		case "CD":
			db = f.CD
		}
		r, err := db.Snapshot(c.rel)
		if err != nil {
			t.Fatalf("%s.%s: %v", c.db, c.rel, err)
		}
		if r.Cardinality() != c.card {
			t.Errorf("%s.%s has %d tuples, want %d (per §IV)", c.db, c.rel, r.Cardinality(), c.card)
		}
	}
}

func TestSchemaMatchesPaper(t *testing.T) {
	s := Schema()
	names := s.SchemeNames()
	want := []string{"PALUMNUS", "PCAREER", "PORGANIZATION", "PSTUDENT", "PINTERVIEW", "PFINANCE"}
	if len(names) != len(want) {
		t.Fatalf("schemes = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("schemes = %v, want %v", names, want)
		}
	}
	org, _ := s.Scheme("PORGANIZATION")
	if org.Key != "ONAME" {
		t.Errorf("PORGANIZATION key = %q", org.Key)
	}
	oname, _ := org.Attr("ONAME")
	if len(oname.Mapping) != 3 {
		t.Errorf("ONAME mapping = %v", oname.Mapping)
	}
	ceo, _ := org.Attr("CEO")
	if len(ceo.Mapping) != 1 || ceo.Mapping[0] != (core.LocalAttr{DB: "CD", Scheme: "FIRM", Attr: "CEO"}) {
		t.Errorf("CEO mapping = %v", ceo.Mapping)
	}
	hq, _ := org.Attr("HEADQUARTERS")
	if len(hq.Mapping) != 2 {
		t.Errorf("HEADQUARTERS mapping = %v", hq.Mapping)
	}
}

func TestSchemaDomainMapping(t *testing.T) {
	s := Schema()
	if s.DomainMap.Len() != 1 {
		t.Errorf("domain map has %d entries, want 1 (FIRM.HQ)", s.DomainMap.Len())
	}
}

// TestLocalSchemaMatchesPaper: attribute names of each local relation.
func TestLocalSchemaMatchesPaper(t *testing.T) {
	f := New()
	r, err := f.AD.Snapshot("ALUMNUS")
	if err != nil {
		t.Fatal(err)
	}
	names := r.Schema.Names()
	want := []string{"AID#", "ANAME", "DEG", "MAJ"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ALUMNUS schema = %v", names)
		}
	}
	// Keys per the paper's underlines.
	key, err := f.AD.Key("ALUMNUS")
	if err != nil || len(key) != 1 || key[0] != "AID#" {
		t.Errorf("ALUMNUS key = %v", key)
	}
	key2, _ := f.AD.Key("CAREER")
	if len(key2) != 2 {
		t.Errorf("CAREER key = %v (composite per the paper's underline)", key2)
	}
}

// TestNewIsDeterministic: two federations carry identical data.
func TestNewIsDeterministic(t *testing.T) {
	a, b := New(), New()
	ra, _ := a.CD.Snapshot("FIRM")
	rb, _ := b.CD.Snapshot("FIRM")
	if ra.Cardinality() != rb.Cardinality() {
		t.Fatal("non-deterministic load")
	}
	for i := range ra.Tuples {
		if !ra.Tuples[i].Equal(rb.Tuples[i]) {
			t.Fatalf("tuple %d differs", i)
		}
	}
}
