package translate

import (
	"fmt"

	"repro/internal/core"
)

// Interpret runs the two-pass Polygen Operation Interpreter over a Polygen
// Operation Matrix, producing the Intermediate Operation Matrix (Figure 2's
// POI component; the passes are the algorithms of Figures 3 and 4).
func Interpret(pom *Matrix, schema *core.Schema) (*Matrix, error) {
	h, err := PassOne(pom, schema)
	if err != nil {
		return nil, err
	}
	return PassTwo(h, schema)
}

// PassOne processes the left-hand side of every POM row (Figure 3). A
// left-hand relation defined in the polygen schema is resolved through the
// attribute mapping: if all referenced attributes map into one local
// relation, the operation is pushed to that LQP (the row's EL becomes the
// local database and the attribute names become local names); if the
// mapping fans out over several local relations, Retrieve rows for each and
// a Merge row are emitted first and the operation runs at the PQP. Register
// references are renumbered into the output matrix.
func PassOne(pom *Matrix, schema *core.Schema) (*Matrix, error) {
	h := &Matrix{}
	regMap := make(map[int]int) // POM register -> H register
	for k := range pom.Rows {
		row := pom.Rows[k]
		if err := passOneRow(row, schema, h, regMap); err != nil {
			return nil, fmt.Errorf("translate: pass one, POM row R(%d): %w", row.PR, err)
		}
	}
	return h, nil
}

func passOneRow(row Row, schema *core.Schema, h *Matrix, regMap map[int]int) error {
	out := row // copy; operands rewritten below
	// Pass one renumbers rows when it expands a scheme into
	// retrieve-and-merge sequences, so a register-valued RHR must be
	// remapped here as well (Figure 3 elides this: its example's RHRs are
	// schemes or nil).
	if row.RHR.Kind == OpdReg {
		mapped, ok := regMap[row.RHR.Reg]
		if !ok {
			return fmt.Errorf("right-hand register R(%d) not yet computed", row.RHR.Reg)
		}
		out.RHR = RegOperand(mapped)
	}
	switch row.LHR.Kind {
	case OpdScheme:
		scheme, ok := schema.Scheme(row.LHR.Name)
		if !ok {
			return fmt.Errorf("no polygen scheme %q", row.LHR.Name)
		}
		lr, localAttrs, single, err := localTarget(scheme, row, schema)
		if err != nil {
			return err
		}
		if single {
			// Case: MAi has a single element — push the operation down.
			out.LHR = LocalOperand(lr.Scheme)
			out.LHA = localAttrs
			if row.RHA.Kind == CmpAttr && row.RHR.Kind == OpdNone {
				la, err := localNameOf(scheme, lr, row.RHA.Attr)
				if err != nil {
					return err
				}
				out.RHA = AttrComparand(la)
			}
			out.EL = lr.DB
			out.PR = len(h.Rows) + 1
			h.Rows = append(h.Rows, out)
			regMap[row.PR] = out.PR
			return nil
		}
		// Case: MAi = {(LD1,LS1,LA1), ..., (LDJ,LSJ,LAJ)} — retrieve all
		// local relations, merge at the PQP, then operate on the merge.
		mergeReg, err := emitRetrieveMerge(scheme, h)
		if err != nil {
			return err
		}
		if row.Op == OpRetrieve {
			// Retrieving a multi-source scheme IS the merge; no further
			// operation row is needed.
			regMap[row.PR] = mergeReg
			return nil
		}
		out.LHR = RegOperand(mergeReg)
		out.EL = "PQP"
		out.PR = len(h.Rows) + 1
		h.Rows = append(h.Rows, out)
		regMap[row.PR] = out.PR
		return nil
	case OpdReg:
		// Case: R(#) — update the register reference; the relation resides
		// in the PQP.
		mapped, ok := regMap[row.LHR.Reg]
		if !ok {
			return fmt.Errorf("left-hand register R(%d) not yet computed", row.LHR.Reg)
		}
		out.LHR = RegOperand(mapped)
		out.EL = "PQP"
		out.PR = len(h.Rows) + 1
		h.Rows = append(h.Rows, out)
		regMap[row.PR] = out.PR
		return nil
	default:
		return fmt.Errorf("unsupported left-hand operand %s", row.LHR)
	}
}

// localTarget decides, for an operation whose LHR is a polygen scheme,
// whether it can execute at a single LQP. It returns the local relation and
// the localized attribute list when it can (single == true). The decision
// follows Figure 3 — MAi of the operand attribute — generalized to rows
// that reference zero (Retrieve, set operations) or several (Project)
// polygen attributes: all referenced attributes must map into one common
// local relation; rows referencing none use the scheme's full fan-out.
func localTarget(scheme *core.Scheme, row Row, schema *core.Schema) (core.LocalRelation, []string, bool, error) {
	referenced := append([]string(nil), row.LHA...)
	if row.RHA.Kind == CmpAttr && row.RHR.Kind == OpdNone {
		// A Restrict's RHA is an attribute of the same relation.
		referenced = append(referenced, row.RHA.Attr)
	}
	lrs := scheme.LocalSchemes()
	if len(referenced) == 0 {
		if len(lrs) == 1 {
			return lrs[0], nil, true, nil
		}
		return core.LocalRelation{}, nil, false, nil
	}
	// Candidate local relations: those providing every referenced attribute.
	var candidates []core.LocalRelation
	for _, lr := range lrs {
		ok := true
		for _, attr := range referenced {
			if _, err := localNameOf(scheme, lr, attr); err != nil {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, lr)
		}
	}
	// The operation is local only when the referenced attributes resolve to
	// exactly one source overall — i.e. each referenced attribute has a
	// singleton mapping (Figure 3's MAi singleton test) and they agree.
	if len(candidates) >= 1 {
		allSingleton := true
		for _, attr := range referenced {
			pa, ok := scheme.Attr(attr)
			if !ok {
				return core.LocalRelation{}, nil, false, fmt.Errorf("scheme %q has no attribute %q", scheme.Name, attr)
			}
			if len(pa.Mapping) != 1 {
				allSingleton = false
				break
			}
		}
		// A condition on a domain-mapped attribute cannot run at the LQP:
		// the mapping applies when the PQP tags the retrieved data, so the
		// LQP would compare against unmapped local values. Force the
		// retrieve-then-operate path for such rows.
		if allSingleton && (row.Op == OpSelect || row.Op == OpRestrict) {
			lr := candidates[0]
			for _, attr := range referenced {
				la, err := localNameOf(scheme, lr, attr)
				if err != nil {
					return core.LocalRelation{}, nil, false, err
				}
				if schema.DomainMap.Has(lr.DB, lr.Scheme, la) {
					allSingleton = false
					break
				}
			}
		}
		if allSingleton {
			lr := candidates[0]
			locals := make([]string, len(row.LHA))
			for i, attr := range row.LHA {
				la, err := localNameOf(scheme, lr, attr)
				if err != nil {
					return core.LocalRelation{}, nil, false, err
				}
				locals[i] = la
			}
			return lr, locals, true, nil
		}
	}
	// Verify the referenced attributes at least exist before falling back to
	// retrieve-and-merge.
	for _, attr := range referenced {
		if _, ok := scheme.Attr(attr); !ok {
			return core.LocalRelation{}, nil, false, fmt.Errorf("scheme %q has no attribute %q", scheme.Name, attr)
		}
	}
	return core.LocalRelation{}, nil, false, nil
}

// localNameOf maps a polygen attribute name to its local name within one
// local relation.
func localNameOf(scheme *core.Scheme, lr core.LocalRelation, attr string) (string, error) {
	pa, ok := scheme.Attr(attr)
	if !ok {
		return "", fmt.Errorf("scheme %q has no attribute %q", scheme.Name, attr)
	}
	for _, la := range pa.Mapping {
		if la.DB == lr.DB && la.Scheme == lr.Scheme {
			return la.Attr, nil
		}
	}
	return "", fmt.Errorf("attribute %q of scheme %q has no mapping in %s", attr, scheme.Name, lr)
}

// emitRetrieveMerge emits Retrieve rows for every local relation of the
// scheme followed by a Merge row, returning the Merge's register.
func emitRetrieveMerge(scheme *core.Scheme, m *Matrix) (int, error) {
	lrs := scheme.LocalSchemes()
	if len(lrs) == 0 {
		return 0, fmt.Errorf("scheme %q maps to no local relations", scheme.Name)
	}
	regs := make([]int, 0, len(lrs))
	for _, lr := range lrs {
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: OpRetrieve, LHR: LocalOperand(lr.Scheme),
			RHA: NoComparand(), RHR: NoOperand(), EL: lr.DB,
		})
		regs = append(regs, pr)
	}
	if len(regs) == 1 {
		return regs[0], nil
	}
	pr := len(m.Rows) + 1
	m.Rows = append(m.Rows, Row{
		PR: pr, Op: OpMerge, LHR: RegsOperand(regs...),
		RHA: NoComparand(), RHR: NoOperand(), EL: "PQP", Scheme: scheme.Name,
	})
	return pr, nil
}

// PassTwo processes the right-hand side of every half-processed row (Figure
// 4), expanding scheme-valued RHRs into Retrieves (and a Merge when the
// mapping fans out) and relocating to the PQP any operation whose left-hand
// side pass one had kept at an LQP — the "LHR and RHR both as defined in the
// polygen schema" case, where "separate LQP operations need to be performed
// first".
func PassTwo(h *Matrix, schema *core.Schema) (*Matrix, error) {
	iom := &Matrix{}
	regMap := make(map[int]int) // H register -> IOM register
	for k := range h.Rows {
		row := h.Rows[k]
		if err := passTwoRow(row, schema, iom, regMap); err != nil {
			return nil, fmt.Errorf("translate: pass two, row R(%d): %w", row.PR, err)
		}
	}
	return iom, nil
}

func passTwoRow(row Row, schema *core.Schema, iom *Matrix, regMap map[int]int) error {
	mapReg := func(o Operand) (Operand, error) {
		switch o.Kind {
		case OpdReg:
			m, ok := regMap[o.Reg]
			if !ok {
				return o, fmt.Errorf("register R(%d) not yet computed", o.Reg)
			}
			return RegOperand(m), nil
		case OpdRegs:
			regs := make([]int, len(o.Regs))
			for i, r := range o.Regs {
				m, ok := regMap[r]
				if !ok {
					return o, fmt.Errorf("register R(%d) not yet computed", r)
				}
				regs[i] = m
			}
			return RegsOperand(regs...), nil
		default:
			return o, nil
		}
	}

	if row.RHR.Kind != OpdScheme {
		// Case: R(#) or nil. A row whose RHS is a PQP-resident register but
		// whose LHS pass one pushed to an LQP must be relocated: retrieve
		// the LHS and run the operation at the PQP. Otherwise copy the row
		// with registers renumbered.
		if row.RHR.Kind == OpdReg && row.EL != "PQP" && row.EL != "" {
			rhr, err := mapReg(row.RHR)
			if err != nil {
				return err
			}
			lhsReg := emitRetrieve(iom, row.LHR.Name, row.EL)
			if err := emitRelocatedOp(iom, row, schema, lhsReg, rhr.Reg, regMap); err != nil {
				return err
			}
			return nil
		}
		out := row
		var err error
		if out.LHR, err = mapReg(out.LHR); err != nil {
			return err
		}
		if out.RHR, err = mapReg(out.RHR); err != nil {
			return err
		}
		out.PR = len(iom.Rows) + 1
		iom.Rows = append(iom.Rows, out)
		regMap[row.PR] = out.PR
		return nil
	}

	scheme, ok := schema.Scheme(row.RHR.Name)
	if !ok {
		return fmt.Errorf("no polygen scheme %q", row.RHR.Name)
	}
	// Resolve the RHS relation: single local relation, or retrieve+merge.
	var rhsReg int
	single, lr, err := rhsTarget(scheme, row)
	if err != nil {
		return err
	}
	// When the LHS is still local (pass one pushed the operation to an LQP
	// but the RHS needs PQP work), the LHS local relation must be retrieved
	// first and the operation relocated to the PQP. Figure 4 interleaves
	// this with the RHS handling; the emission order below reproduces the
	// register numbering of the paper's cases.
	lhsLocal := row.EL != "PQP" && row.EL != ""

	if single {
		if lhsLocal {
			// Retrieve the LHS local relation at its LQP.
			lhsReg := emitRetrieve(iom, row.LHR.Name, row.EL)
			rhsReg = emitRetrieve(iom, lr.Scheme, lr.DB)
			return emitRelocatedOp(iom, row, schema, lhsReg, rhsReg, regMap)
		}
		rhsReg = emitRetrieve(iom, lr.Scheme, lr.DB)
		return emitPQPOp(iom, row, rhsReg, regMap, mapReg)
	}

	// Multi-source RHS: retrieve every local relation of the scheme, merge.
	lrs := scheme.LocalSchemes()
	regs := make([]int, 0, len(lrs))
	for _, l := range lrs {
		regs = append(regs, emitRetrieve(iom, l.Scheme, l.DB))
	}
	pr := len(iom.Rows) + 1
	iom.Rows = append(iom.Rows, Row{
		PR: pr, Op: OpMerge, LHR: RegsOperand(regs...),
		RHA: NoComparand(), RHR: NoOperand(), EL: "PQP", Scheme: scheme.Name,
	})
	rhsReg = pr
	if lhsLocal {
		lhsReg := emitRetrieve(iom, row.LHR.Name, row.EL)
		return emitRelocatedOp(iom, row, schema, lhsReg, rhsReg, regMap)
	}
	return emitPQPOp(iom, row, rhsReg, regMap, mapReg)
}

// rhsTarget decides whether the RHS scheme resolves to one local relation.
// Per Figure 4 this is MAi of the right-hand attribute; rows without an RHA
// (set operations against a scheme) use the scheme's full fan-out.
func rhsTarget(scheme *core.Scheme, row Row) (bool, core.LocalRelation, error) {
	if row.RHA.Kind != CmpAttr {
		lrs := scheme.LocalSchemes()
		if len(lrs) == 1 {
			return true, lrs[0], nil
		}
		return false, core.LocalRelation{}, nil
	}
	pa, ok := scheme.Attr(row.RHA.Attr)
	if !ok {
		return false, core.LocalRelation{}, fmt.Errorf("scheme %q has no attribute %q", scheme.Name, row.RHA.Attr)
	}
	if len(pa.Mapping) == 1 {
		la := pa.Mapping[0]
		return true, core.LocalRelation{DB: la.DB, Scheme: la.Scheme}, nil
	}
	return false, core.LocalRelation{}, nil
}

func emitRetrieve(m *Matrix, localScheme, db string) int {
	pr := len(m.Rows) + 1
	m.Rows = append(m.Rows, Row{
		PR: pr, Op: OpRetrieve, LHR: LocalOperand(localScheme),
		RHA: NoComparand(), RHR: NoOperand(), EL: db,
	})
	return pr
}

// emitPQPOp emits the operation row for the case where the LHS already
// resides in the PQP: LHR is the renumbered register, RHR the retrieved (or
// merged) RHS.
func emitPQPOp(iom *Matrix, row Row, rhsReg int, regMap map[int]int, mapReg func(Operand) (Operand, error)) error {
	out := row
	var err error
	if out.LHR, err = mapReg(out.LHR); err != nil {
		return err
	}
	out.RHR = RegOperand(rhsReg)
	out.EL = "PQP"
	out.PR = len(iom.Rows) + 1
	iom.Rows = append(iom.Rows, out)
	regMap[row.PR] = out.PR
	return nil
}

// emitRelocatedOp emits the operation row for the "LHR and RHR both as
// defined in the polygen schema" case: both sides have been retrieved, the
// operation executes at the PQP, and the pass-one localization of the LHA is
// undone through PA(local scheme, local attribute) — Figure 4, footnote 12.
func emitRelocatedOp(iom *Matrix, row Row, schema *core.Schema, lhsReg, rhsReg int, regMap map[int]int) error {
	out := row
	out.LHR = RegOperand(lhsReg)
	out.RHR = RegOperand(rhsReg)
	// Undo pass one: map local attribute names back to polygen names.
	lha := make([]string, len(row.LHA))
	for i, la := range row.LHA {
		sa, ok := schema.PolygenAttrOf(core.LocalAttr{DB: row.EL, Scheme: row.LHR.Name, Attr: la})
		if !ok {
			return fmt.Errorf("no polygen attribute for local %s.%s.%s", row.EL, row.LHR.Name, la)
		}
		lha[i] = sa.Attr
	}
	out.LHA = lha
	out.EL = "PQP"
	out.PR = len(iom.Rows) + 1
	iom.Rows = append(iom.Rows, out)
	regMap[row.PR] = out.PR
	return nil
}
