package translate

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPlanCacheConcurrentIntrospection pins the CacheStats monotonicity
// contract introspection relies on (the V$PLAN_CACHE virtual table, the
// /metrics endpoint): while writers hammer Get/Put, concurrent Stats
// readers must see each counter individually non-decreasing, Entries within
// the capacity bound, and Hits+Misses never ahead of the Gets issued; once
// the writers quiesce, Hits+Misses equals the Get count exactly.
func TestPlanCacheConcurrentIntrospection(t *testing.T) {
	const (
		writers        = 4
		getsPerWriter  = 4000
		distinctPlans  = 32 // 4x the capacity: evictions happen continuously
		readers        = 2
		cacheCapacity  = 8
		expectedTotals = writers * getsPerWriter
	)
	c := NewPlanCache(cacheCapacity)
	var gets atomic.Uint64 // bumped before each Get: Hits+Misses <= gets always
	done := make(chan struct{})
	var writeWG, readWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < getsPerWriter; i++ {
				k := PlanKey{Query: fmt.Sprintf("q%d", (w+i)%distinctPlans), Planner: "p1"}
				gets.Add(1)
				if _, ok := c.Get(k); !ok {
					c.Put(k, &CachedPlan{})
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			var prev CacheStats
			for {
				select {
				case <-done:
					return
				default:
				}
				s := c.Stats()
				if s.Hits < prev.Hits || s.Misses < prev.Misses || s.Evictions < prev.Evictions {
					t.Errorf("counters shrank between snapshots: %+v then %+v", prev, s)
					return
				}
				if s.Entries > cacheCapacity {
					t.Errorf("Entries = %d exceeds capacity %d", s.Entries, cacheCapacity)
					return
				}
				if ceiling := gets.Load(); s.Hits+s.Misses > ceiling {
					t.Errorf("Hits+Misses = %d ahead of the %d Gets issued", s.Hits+s.Misses, ceiling)
					return
				}
				prev = s
			}
		}()
	}

	writeWG.Wait()
	close(done)
	readWG.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != expectedTotals {
		t.Errorf("at quiesce Hits+Misses = %d, want the %d Gets issued", s.Hits+s.Misses, expectedTotals)
	}
	if s.Evictions == 0 {
		t.Error("no evictions despite 4x capacity key pressure — the eviction counter path went unexercised")
	}
	if s.Entries != cacheCapacity {
		t.Errorf("Entries = %d, want a full cache of %d", s.Entries, cacheCapacity)
	}
	if c.Cap() != cacheCapacity {
		t.Errorf("Cap() = %d, want %d", c.Cap(), cacheCapacity)
	}
}
