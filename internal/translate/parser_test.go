package translate

import (
	"strings"
	"testing"

	"repro/internal/rel"
)

func TestParseSelectExpr(t *testing.T) {
	e, err := ParseExpr(`PALUMNUS [DEGREE = "MBA"]`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := e.(*SelectExpr)
	if !ok {
		t.Fatalf("parsed %T, want *SelectExpr", e)
	}
	if sel.Attr != "DEGREE" || sel.Theta != rel.ThetaEQ || !sel.Const.Equal(rel.String("MBA")) {
		t.Errorf("select = %+v", sel)
	}
	if _, ok := sel.In.(*SchemeRef); !ok {
		t.Errorf("select input = %T", sel.In)
	}
}

func TestParseSelectNumericConst(t *testing.T) {
	e, err := ParseExpr(`PSTUDENT [GPA >= 3.5]`)
	if err != nil {
		t.Fatal(err)
	}
	sel := e.(*SelectExpr)
	if sel.Theta != rel.ThetaGE || !sel.Const.Equal(rel.Float(3.5)) {
		t.Errorf("select = %+v", sel)
	}
	e2, err := ParseExpr(`PFINANCE [YEAR = 1989]`)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.(*SelectExpr).Const.Equal(rel.Int(1989)) {
		t.Error("integer constant parsed wrong")
	}
}

func TestParseRestrictExpr(t *testing.T) {
	e, err := ParseExpr(`R [CEO = ANAME]`)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := e.(*RestrictExpr)
	if !ok {
		t.Fatalf("parsed %T, want *RestrictExpr", e)
	}
	if res.X != "CEO" || res.Y != "ANAME" {
		t.Errorf("restrict = %+v", res)
	}
}

func TestParseJoinExpr(t *testing.T) {
	e, err := ParseExpr(`A [X = Y] B`)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := e.(*JoinExpr)
	if !ok {
		t.Fatalf("parsed %T, want *JoinExpr", e)
	}
	if j.X != "X" || j.Y != "Y" {
		t.Errorf("join = %+v", j)
	}
	if j.L.(*SchemeRef).Name != "A" || j.R.(*SchemeRef).Name != "B" {
		t.Error("join operands wrong")
	}
}

func TestParseProjectExpr(t *testing.T) {
	e, err := ParseExpr(`A [ONAME, CEO]`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := e.(*ProjectExpr)
	if !ok {
		t.Fatalf("parsed %T, want *ProjectExpr", e)
	}
	if len(p.Attrs) != 2 || p.Attrs[0] != "ONAME" || p.Attrs[1] != "CEO" {
		t.Errorf("project = %+v", p)
	}
	// Single attribute also parses as a projection.
	e2, err := ParseExpr(`A [CEO]`)
	if err != nil {
		t.Fatal(err)
	}
	if p2 := e2.(*ProjectExpr); len(p2.Attrs) != 1 {
		t.Errorf("single project = %+v", p2)
	}
}

func TestParsePaperExpression(t *testing.T) {
	const paper = `( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`
	e, err := ParseExpr(paper)
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := e.(*ProjectExpr)
	if !ok {
		t.Fatalf("top = %T, want *ProjectExpr", e)
	}
	restr, ok := proj.In.(*RestrictExpr)
	if !ok {
		t.Fatalf("next = %T, want *RestrictExpr", proj.In)
	}
	join2, ok := restr.In.(*JoinExpr)
	if !ok {
		t.Fatalf("next = %T, want *JoinExpr", restr.In)
	}
	if join2.R.(*SchemeRef).Name != "PORGANIZATION" {
		t.Error("outer join RHS wrong")
	}
	join1 := join2.L.(*JoinExpr)
	if join1.R.(*SchemeRef).Name != "PCAREER" {
		t.Error("inner join RHS wrong")
	}
	sel := join1.L.(*SelectExpr)
	if sel.In.(*SchemeRef).Name != "PALUMNUS" {
		t.Error("innermost select input wrong")
	}
}

func TestParseBinaryOps(t *testing.T) {
	cases := map[string]OpName{
		"A UNION B":     OpUnion,
		"A MINUS B":     OpDifference,
		"A INTERSECT B": OpIntersect,
		"A TIMES B":     OpProduct,
		"A union B":     OpUnion, // case-insensitive keywords
	}
	for in, op := range cases {
		e, err := ParseExpr(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		b, ok := e.(*BinaryExpr)
		if !ok || b.Op != op {
			t.Errorf("%q parsed to %T/%v", in, e, op)
		}
	}
	// Left associativity.
	e, err := ParseExpr("A UNION B UNION C")
	if err != nil {
		t.Fatal(err)
	}
	top := e.(*BinaryExpr)
	if _, ok := top.L.(*BinaryExpr); !ok {
		t.Error("UNION should left-associate")
	}
}

func TestParseBinaryWithSuffix(t *testing.T) {
	e, err := ParseExpr(`(A UNION B) [X = "v"]`)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := e.(*SelectExpr)
	if !ok {
		t.Fatalf("parsed %T", e)
	}
	if _, ok := sel.In.(*BinaryExpr); !ok {
		t.Errorf("select input = %T", sel.In)
	}
}

func TestParseJoinAgainstRestrict(t *testing.T) {
	// Followed by UNION keyword: the bracket is a restrict, not a join.
	e, err := ParseExpr(`A [X = Y] UNION B`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := e.(*BinaryExpr)
	if !ok || b.Op != OpUnion {
		t.Fatalf("parsed %T", e)
	}
	if _, ok := b.L.(*RestrictExpr); !ok {
		t.Errorf("left operand = %T, want *RestrictExpr", b.L)
	}
}

func TestParseSingleQuotedString(t *testing.T) {
	e, err := ParseExpr(`A [X = 'Langley Castle']`)
	if err != nil {
		t.Fatal(err)
	}
	if !e.(*SelectExpr).Const.Equal(rel.String("Langley Castle")) {
		t.Error("single-quoted literal wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(A",
		"A [",
		"A [X",
		"A [X =",
		`A [X = "unterminated`,
		"A ]",
		"A [X = Y] [",
		"A UNION",
		"[X]",
		"A B",       // trailing input
		"A [X ~ Y]", // unknown comparison
		"A [X = Y, Z]",
	}
	for _, in := range bad {
		if _, err := ParseExpr(in); err == nil {
			t.Errorf("ParseExpr(%q) should fail", in)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseExpr did not panic")
		}
	}()
	MustParseExpr("(")
}

// TestExprStringRoundTrips: the rendered form of an expression re-parses to
// an expression with the same rendered form.
func TestExprStringRoundTrips(t *testing.T) {
	inputs := []string{
		`PALUMNUS [DEGREE = "MBA"]`,
		`A [X = Y] B`,
		`A [X < Y]`,
		`A [P, Q, R]`,
		`A UNION B`,
		`A MINUS B`,
		`(A [X = "v"]) [Y = Z] (B [W])`,
		`( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`,
	}
	for _, in := range inputs {
		e1, err := ParseExpr(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		s1 := e1.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("round trip changed rendering:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestIdentifiersWithHash(t *testing.T) {
	e, err := ParseExpr(`PALUMNUS [AID# = AID#] PCAREER`)
	if err != nil {
		t.Fatal(err)
	}
	j := e.(*JoinExpr)
	if j.X != "AID#" || j.Y != "AID#" {
		t.Errorf("join attrs = %q, %q", j.X, j.Y)
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"A ! B", "A @ B", `A [X = "oops]`} {
		if _, err := lex(in); err == nil && !strings.Contains(in, "!") {
			t.Errorf("lex(%q) should fail", in)
		}
	}
	if _, err := lex("A != B"); err != nil {
		t.Errorf("!= should lex: %v", err)
	}
}

// TestParseStringEscapes: double-quoted literals process Go escapes (the
// renderer emits %q); single-quoted literals are raw.
func TestParseStringEscapes(t *testing.T) {
	e, err := ParseExpr(`A [X = "a\"b\\c"]`)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.(*SelectExpr).Const.Str(); got != `a"b\c` {
		t.Errorf("escaped literal = %q", got)
	}
	e2, err := ParseExpr(`A [X = 'raw\nstuff']`)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.(*SelectExpr).Const.Str(); got != `raw\nstuff` {
		t.Errorf("raw literal = %q", got)
	}
	if _, err := ParseExpr(`A [X = "bad \q escape"]`); err == nil {
		t.Error("invalid escape accepted")
	}
}
