package translate

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// This file implements the plan cache of the mediator service layer: the
// translation pipeline — Analyze, the two interpreter passes, and above all
// the cost-based Query Optimizer with its join-order search (reorder.go) —
// is pure function of (query, schema, statistics, optimizer options), so a
// long-lived PQP serving many clients runs it once per distinct query and
// replays the result for every later request. Matrices handed out by the
// cache are shared, immutable plan objects: nothing in either execution
// engine mutates a Matrix (rows are read-only during execution), so one
// cached plan may be executed by any number of goroutines concurrently.

// PlanKey identifies one cacheable translation: the normalized query text
// (the algebraic expression's canonical rendering — both the SQL front end
// and the algebra parser funnel into it, so formatting differences in the
// source text collapse), the planner the query was planned by, the
// statistics-catalog version the optimizer consulted, and the optimizer
// option fingerprint. Any component changing re-plans; everything else hits.
type PlanKey struct {
	// Query is the canonical query text (Expr.String()).
	Query string
	// Planner fingerprints the planning context fixed at construction —
	// for a PQP: its schema, LQP set (and pushdown capabilities) and
	// resolver. It must be process-unique per planner instance (the PQP
	// uses a monotonic ID, never an address — a freed planner's address
	// can be reused by its successor).
	Planner string
	// Stats fingerprints the statistics the optimizer consulted: catalog
	// instance identity plus stats.Catalog.Version() at planning time (""
	// when the planner ran without statistics). The instance identity
	// matters: a re-collection (pqp.CollectStats) installs a brand-new
	// catalog whose version counter restarts and can land on the old
	// value, and plans cached under the stale cardinalities must not hit.
	Stats string
	// Options fingerprints the optimizer options (enabled passes, relaxed
	// join reorder, resolver exactness).
	Options string
}

// CachedPlan is one cached translation: every artifact of Figure 2's
// pipeline up to (but excluding) execution. All four matrices are immutable
// and shared between the cache and every Result that hits.
type CachedPlan struct {
	// POM is the Polygen Operation Matrix (Syntax Analyzer output).
	POM *Matrix
	// Half is the half-processed IOM (pass one output).
	Half *Matrix
	// IOM is the Intermediate Operation Matrix (pass two output).
	IOM *Matrix
	// Plan is the optimized IOM the engines execute.
	Plan *Matrix
}

// CacheStats is a point-in-time snapshot of a PlanCache's counters.
//
// Hits, Misses and Evictions are monotonic: they only ever grow over a
// cache's lifetime (Reset is the single exception, and it is a wiring-time
// operation, not something concurrent with serving). Introspection reads —
// the V$PLAN_CACHE virtual table, the /metrics endpoint, a test polling
// Stats in a loop — may therefore assume that for any two snapshots taken
// t1 ≤ t2, each counter at t2 is ≥ its value at t1, and that Hits+Misses
// equals the number of Get calls issued so far. Entries is a gauge.
type CacheStats struct {
	Hits, Misses uint64
	// Entries is the number of plans currently cached.
	Entries int
	// Evictions counts plans dropped by the LRU bound.
	Evictions uint64
}

// DefaultPlanCacheSize bounds a plan cache constructed with a non-positive
// capacity: generous for any interactive workload, small enough that even
// pathological query generators cannot balloon the mediator's memory.
const DefaultPlanCacheSize = 512

// PlanCache is a bounded, concurrency-safe LRU cache of translated plans.
// One cache serves one PQP; sharing one across several is safe (the key
// carries each planner's fingerprint) but entries are never shared between
// planners, so it only pools the capacity bound.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List                // front = most recently used
	entries map[PlanKey]*list.Element // value: *cacheEntry

	// The counters are atomics, not fields under mu, so introspection
	// (Stats) never contends with the Get/Put fast path beyond the map
	// lock it already takes for Entries — and so each counter is
	// individually monotonic even when read mid-operation. A Stats
	// snapshot is not a single linearization point across all three
	// counters; the monotonicity and Hits+Misses == Gets guarantees
	// documented on CacheStats are per-counter and hold regardless.
	hits, misses, evictions atomic.Uint64
}

type cacheEntry struct {
	key  PlanKey
	plan *CachedPlan
}

// NewPlanCache returns a cache bounded to capacity plans (non-positive means
// DefaultPlanCacheSize).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &PlanCache{cap: capacity, order: list.New(), entries: make(map[PlanKey]*list.Element)}
}

// Get returns the cached plan for k, marking it most recently used.
func (c *PlanCache) Get(k PlanKey) (*CachedPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// Put stores the plan for k, evicting the least recently used entry when the
// cache is full. Concurrent Puts for the same key are idempotent — the
// pipeline is deterministic, so whichever plan lands last is equivalent.
func (c *PlanCache) Put(k PlanKey, p *CachedPlan) {
	if p == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, plan: p})
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Cap returns the cache's capacity bound in plans.
func (c *PlanCache) Cap() int { return c.cap }

// Stats returns a snapshot of the cache counters. It is safe to call
// concurrently with Get/Put from any number of goroutines; see CacheStats
// for the monotonicity contract introspectors may rely on.
func (c *PlanCache) Stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	c.mu.Lock()
	s.Entries = len(c.entries)
	c.mu.Unlock()
	return s
}

// Reset empties the cache and zeroes the counters. It is a wiring-time
// operation: calling it while the cache serves queries breaks the
// monotonicity contract introspection relies on.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[PlanKey]*list.Element)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}
