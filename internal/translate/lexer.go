package translate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens shared by the algebra parser and the SQL
// parser.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // quoted literal
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokOp   // = <> < <= > >=
	tokStar // *
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes an algebra or SQL string. Identifiers may contain '#' (the
// paper's AID#, SID#), '.', '_' and '&' ("AT&T" never appears as an
// identifier, but qualified names like PD.STUDENT do). Both single- and
// double-quoted string literals are accepted.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '<':
			switch {
			case strings.HasPrefix(input[i:], "<>"):
				toks = append(toks, token{tokOp, "<>", i})
				i += 2
			case strings.HasPrefix(input[i:], "<="):
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			default:
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if strings.HasPrefix(input[i:], ">=") {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '!':
			if strings.HasPrefix(input[i:], "!=") {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("translate: unexpected '!' at offset %d", i)
			}
		case c == '"':
			// Double-quoted strings support Go escape sequences, so that
			// the renderer's %q output always re-parses to the same value.
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("translate: unterminated string starting at offset %d", i)
			}
			text, err := strconv.Unquote(input[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("translate: bad string literal at offset %d: %v", i, err)
			}
			toks = append(toks, token{tokString, text, i})
			i = j + 1
		case c == '\'':
			// Single-quoted strings are raw (no escapes).
			j := i + 1
			var sb strings.Builder
			for j < len(input) && input[j] != '\'' {
				sb.WriteByte(input[j])
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("translate: unterminated string starting at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < len(input) && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("translate: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(input)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	// '$' admits the V$ virtual-table names (V$SESSION, ...) served by the
	// vtab source; it is not an identifier start, so "$1" stays rejected.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#' || r == '.' || r == '$'
}
