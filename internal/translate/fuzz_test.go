package translate

import (
	"testing"
)

// FuzzParseExpr checks that the algebra parser never panics and that any
// expression it accepts renders to a form it accepts again with a stable
// rendering (parse ∘ render is idempotent).
func FuzzParseExpr(f *testing.F) {
	seeds := []string{
		`PALUMNUS [DEGREE = "MBA"]`,
		`( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`,
		`A [X <= 3.5]`,
		`A UNION B MINUS C`,
		`A [P, Q]`,
		`(((`,
		`A [X = Y] [Z]`,
		`A ['quoted literal' = X]`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ParseExpr(input)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("accepted %q but rejected its rendering %q: %v", input, s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("rendering unstable: %q -> %q", s1, s2)
		}
	})
}
