package translate

import (
	"testing"

	"repro/internal/rel"
)

// TestOptimizeDeduplicatesRetrieveMerge: a query touching the same
// multi-source scheme twice retrieves and merges it once after optimization.
func TestOptimizeDeduplicatesRetrieveMerge(t *testing.T) {
	_, _, iom := translateAll(t, `(PORGANIZATION [INDUSTRY = "Banking"]) UNION (PORGANIZATION [INDUSTRY = "Energy"])`)
	if iom.Cardinality() != 11 {
		t.Fatalf("unoptimized IOM has %d rows, want 11:\n%s", iom.Cardinality(), matrixLines(iom))
	}
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix(t, opt,
		"R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD",
		"R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD",
		"R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP",
		`R(5) | Select | R(4) | INDUSTRY | = | "Banking" | nil | PQP`,
		`R(6) | Select | R(4) | INDUSTRY | = | "Energy" | nil | PQP`,
		"R(7) | Union | R(5) | nil | nil | nil | R(6) | PQP",
	)
}

// TestOptimizeIdenticalSelectsCollapse: byte-identical rows collapse even
// when they carry constants.
func TestOptimizeIdenticalSelectsCollapse(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) UNION (PALUMNUS [DEGREE = "MBA"])`)
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix(t, opt,
		`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD`,
		"R(2) | Union | R(1) | nil | nil | nil | R(1) | PQP",
	)
}

// TestOptimizeKeepsDistinctConstants: selects with different constants must
// NOT collapse.
func TestOptimizeKeepsDistinctConstants(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) UNION (PALUMNUS [DEGREE = "MS"])`)
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cardinality() != 3 {
		t.Fatalf("optimized to %d rows, want 3:\n%s", opt.Cardinality(), matrixLines(opt))
	}
}

// TestOptimizeDeadRowElimination: rows not feeding the final result drop.
func TestOptimizeDeadRowElimination(t *testing.T) {
	iom := &Matrix{Rows: []Row{
		{PR: 1, Op: OpRetrieve, LHR: LocalOperand("ALUMNUS"), RHA: NoComparand(), RHR: NoOperand(), EL: "AD"},
		{PR: 2, Op: OpRetrieve, LHR: LocalOperand("CAREER"), RHA: NoComparand(), RHR: NoOperand(), EL: "AD"}, // dead
		{PR: 3, Op: OpProject, LHR: RegOperand(1), LHA: []string{"ANAME"}, RHA: NoComparand(), RHR: NoOperand(), EL: "PQP"},
	}}
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix(t, opt,
		"R(1) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(2) | Project | R(1) | ANAME | nil | nil | nil | PQP",
	)
}

// TestOptimizeMergeOrderInsensitive: Merge rows differing only in register
// order collapse (§II: merge order immaterial).
func TestOptimizeMergeOrderInsensitive(t *testing.T) {
	retrieve := func(pr int, ls, db string) Row {
		return Row{PR: pr, Op: OpRetrieve, LHR: LocalOperand(ls), RHA: NoComparand(), RHR: NoOperand(), EL: db}
	}
	iom := &Matrix{Rows: []Row{
		retrieve(1, "BUSINESS", "AD"),
		retrieve(2, "CORPORATION", "PD"),
		{PR: 3, Op: OpMerge, LHR: RegsOperand(1, 2), RHA: NoComparand(), RHR: NoOperand(), EL: "PQP", Scheme: "PORGANIZATION"},
		{PR: 4, Op: OpMerge, LHR: RegsOperand(2, 1), RHA: NoComparand(), RHR: NoOperand(), EL: "PQP", Scheme: "PORGANIZATION"},
		{PR: 5, Op: OpUnion, LHR: RegOperand(3), RHA: NoComparand(), RHR: RegOperand(4), EL: "PQP"},
	}}
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	// Both merges collapse to one; the union references it twice.
	if opt.Cardinality() != 4 {
		t.Fatalf("optimized to %d rows, want 4:\n%s", opt.Cardinality(), matrixLines(opt))
	}
	last := opt.Rows[3]
	if last.LHR.Reg != last.RHR.Reg {
		t.Errorf("union should reference the single merge twice:\n%s", matrixLines(opt))
	}
}

func TestOptimizeEmptyMatrix(t *testing.T) {
	opt, err := Optimize(&Matrix{})
	if err != nil || opt.Cardinality() != 0 {
		t.Errorf("optimize empty = %v, %v", opt, err)
	}
}

func TestOptimizeForwardReferenceFails(t *testing.T) {
	iom := &Matrix{Rows: []Row{
		{PR: 1, Op: OpProject, LHR: RegOperand(99), LHA: []string{"A"}, RHA: NoComparand(), RHR: NoOperand(), EL: "PQP"},
	}}
	if _, err := Optimize(iom); err == nil {
		t.Error("forward register reference accepted")
	}
}

// TestOptimizePreservesPaperPlanSemantics: Table 3 has no redundancy, so
// optimization only renumbers (identity here).
func TestOptimizePaperPlanUnchanged(t *testing.T) {
	_, _, iom := translateAll(t, `( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER) [ONAME = ONAME] PORGANIZATION) [CEO = ANAME ] ) [ONAME, CEO]`)
	opt, err := Optimize(iom)
	if err != nil {
		t.Fatal(err)
	}
	if matrixLines(opt) != matrixLines(iom) {
		t.Errorf("Table 3 should be unchanged by optimization:\nbefore:\n%s\nafter:\n%s",
			matrixLines(iom), matrixLines(opt))
	}
}

func TestSignatureDistinguishesThetas(t *testing.T) {
	r1 := Row{Op: OpSelect, LHR: LocalOperand("T"), LHA: []string{"A"}, Theta: rel.ThetaLT, HasTheta: true, RHA: ConstComparand(rel.Int(1)), RHR: NoOperand(), EL: "AD"}
	r2 := r1
	r2.Theta = rel.ThetaGT
	if signature(r1) == signature(r2) {
		t.Error("signatures conflate different thetas")
	}
	r3 := r1
	r3.EL = "PD"
	if signature(r1) == signature(r3) {
		t.Error("signatures conflate different execution locations")
	}
}
