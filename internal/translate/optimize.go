package translate

import (
	"fmt"
	"sort"
	"strings"
)

// Optimize is the Query Optimizer stage of Figure 2. The paper declares its
// details beyond scope; this implementation applies two safe, plan-level
// rewrites that matter in a federation:
//
//   - common-subexpression elimination: duplicate rows (most commonly the
//     Retrieve/Merge fan-outs that pass two emits once per reference to a
//     multi-source scheme) collapse into a single computation;
//   - dead-row elimination: rows whose results no later row (and not the
//     final row) consumes are dropped.
//
// Registers are renumbered densely. The rewrite never changes the final
// relation — TestOptimizePreservesResult and the optimizer ablation bench
// (B-OPT) check exactly that.
func Optimize(iom *Matrix) (*Matrix, error) {
	out := &Matrix{}
	regMap := make(map[int]int)  // input register -> output register
	seen := make(map[string]int) // row signature -> output register
	for _, row := range iom.Rows {
		mapped, err := remapRow(row, regMap)
		if err != nil {
			return nil, fmt.Errorf("translate: optimize: %w", err)
		}
		sig := signature(mapped)
		if existing, dup := seen[sig]; dup {
			regMap[row.PR] = existing
			continue
		}
		mapped.PR = len(out.Rows) + 1
		out.Rows = append(out.Rows, mapped)
		regMap[row.PR] = mapped.PR
		seen[sig] = mapped.PR
	}
	return eliminateDead(out)
}

func remapRow(row Row, regMap map[int]int) (Row, error) {
	out := row
	var err error
	if out.LHR, err = remapOperand(out.LHR, regMap); err != nil {
		return out, err
	}
	if out.RHR, err = remapOperand(out.RHR, regMap); err != nil {
		return out, err
	}
	return out, nil
}

func remapOperand(o Operand, regMap map[int]int) (Operand, error) {
	switch o.Kind {
	case OpdReg:
		m, ok := regMap[o.Reg]
		if !ok {
			return o, fmt.Errorf("register R(%d) not yet computed", o.Reg)
		}
		return RegOperand(m), nil
	case OpdRegs:
		regs := make([]int, len(o.Regs))
		for i, r := range o.Regs {
			m, ok := regMap[r]
			if !ok {
				return o, fmt.Errorf("register R(%d) not yet computed", r)
			}
			regs[i] = m
		}
		return RegsOperand(regs...), nil
	default:
		return o, nil
	}
}

// signature canonicalizes a row (ignoring its own PR) for duplicate
// detection. Merge register lists are order-normalized: §II proves merge
// order immaterial, so {R(1),R(2),R(3)} and {R(2),R(1),R(3)} coincide.
func signature(r Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%s|%s", r.Op, operandSig(r.LHR), r.lhaString(), r.thetaString(), r.RHA, operandSig(r.RHR), r.EL)
	if r.Scheme != "" {
		fmt.Fprintf(&b, "|%s", r.Scheme)
	}
	return b.String()
}

func operandSig(o Operand) string {
	if o.Kind == OpdRegs {
		regs := append([]int(nil), o.Regs...)
		sort.Ints(regs)
		parts := make([]string, len(regs))
		for i, r := range regs {
			parts[i] = fmt.Sprintf("R(%d)", r)
		}
		return strings.Join(parts, ",")
	}
	return o.String()
}

// eliminateDead removes rows unreachable from the final row and renumbers.
func eliminateDead(m *Matrix) (*Matrix, error) {
	if len(m.Rows) == 0 {
		return m, nil
	}
	needed := make([]bool, len(m.Rows)+1)
	mark := func(o Operand) {
		switch o.Kind {
		case OpdReg:
			needed[o.Reg] = true
		case OpdRegs:
			for _, r := range o.Regs {
				needed[r] = true
			}
		}
	}
	needed[m.Rows[len(m.Rows)-1].PR] = true
	for i := len(m.Rows) - 1; i >= 0; i-- {
		row := m.Rows[i]
		if !needed[row.PR] {
			continue
		}
		mark(row.LHR)
		mark(row.RHR)
	}
	out := &Matrix{}
	regMap := make(map[int]int)
	for _, row := range m.Rows {
		if !needed[row.PR] {
			continue
		}
		mapped, err := remapRow(row, regMap)
		if err != nil {
			return nil, err
		}
		mapped.PR = len(out.Rows) + 1
		out.Rows = append(out.Rows, mapped)
		regMap[row.PR] = mapped.PR
	}
	return out, nil
}
