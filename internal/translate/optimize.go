package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/stats"
)

// This file is the Query Optimizer stage of Figure 2. The paper names the
// component but declares its details beyond scope; this implementation is a
// cost-based, source-tag-aware plan rewriter for federations. Every rewrite
// is identity-preserving at the cell level — data, origin tags and
// intermediate tags — which the pqp property suite enforces by running
// optimized plans against the unoptimized reference engines.
//
// Passes, in order:
//
//   - common-subexpression elimination: duplicate rows (most commonly the
//     Retrieve/Merge fan-outs that pass two emits once per reference to a
//     multi-source scheme) collapse into a single computation;
//   - local chain fusion (predicate and projection pushdown): a
//     PQP-resident Select/Restrict/Project whose only input is the output
//     of an LQP-resident row is fused into that row as a pushed-down local
//     step, so the LQP ships only the filtered, narrowed rows. Fusion
//     respects the polygen tag calculus (see fuseLocalChains);
//   - projection narrowing: a Retrieve whose downstream consumers demand
//     only a subset of its columns retrieves just that subset (plus every
//     column whose origin tags later operations consult — condition columns
//     are never projected away);
//   - greedy join reordering (reorder.go): with relation statistics
//     available and an exact instance resolver, left-deep equi-join chains
//     re-join smallest-first;
//   - dead-row elimination: rows whose results no later row (and not the
//     final row) consumes are dropped, and registers renumber densely.
//
// Optimize applies the statistics-free subset (it has no schema access and
// exists for compatibility and as the paper-faithful baseline);
// OptimizeWithOptions is the full rewriter the PQP drives.
//
// What is deliberately NOT rewritten, because the polygen tag semantics do
// not commute with it:
//
//   - selections do not push through Merge: a Select above a Merge filters
//     coalesced, multi-source values. Filtering each source first changes
//     which cells coalesce — a source whose row fails the predicate locally
//     would no longer contribute its other columns to the merged tuple, so
//     both data and tags can change. Selections on tag-bearing merged
//     attributes stay PQP-side.
//   - selections do not push through Join: a PQP Select after a join adds
//     the operand column's origins to the intermediate set of EVERY cell of
//     the surviving rows — including the other operand's cells. Pushed
//     below the join it could no longer reach those cells, so t(i) would
//     differ.
//   - selections and restrictions on domain-mapped attributes stay
//     PQP-side (the LQP would compare raw, unmapped values), and
//     projections never push when a projected column is domain-mapped (the
//     LQP would eliminate duplicates on raw values that map to equal
//     domain values, changing the result's cardinality).
//   - restrictions push only for ordered comparisons (<, <=, >, >=): the
//     PQP routes = and <> through the instance resolver's canonical IDs,
//     the LQP compares plain values with numeric coercion — the two
//     disagree even under an exact resolver (Int(5) vs Float(5)).

// Options configures the cost-based passes of OptimizeWithOptions. The zero
// value disables everything that needs federation knowledge, leaving CSE
// and dead-row elimination.
type Options struct {
	// Schema is the polygen schema; required by every pushdown pass (it
	// supplies the attribute mappings and the domain-map table).
	Schema *core.Schema
	// Stats, when non-nil, supplies per-LQP relation cardinalities, column
	// lists and link latencies. Join reordering and the width check of
	// projection narrowing require it.
	Stats *stats.Catalog
	// CanPush reports whether the named local database's LQP accepts
	// pushed-down subplans (lqp.PlanRunner). A nil CanPush means no LQP
	// does: fusion is skipped entirely and narrowing only rewrites bare
	// Retrieves (a single local Project every LQP supports).
	CanPush func(db string) bool
	// ExactResolver reports that the executing algebra's instance resolver
	// is exact. Join reordering is gated on it (a reorder may change which
	// operand of a coalesce keeps its datum, indistinguishable only when
	// equal instances are identical values).
	ExactResolver bool
	// RelaxedJoinReorder permits join orders whose intermediate tags differ
	// from the original plan's. The polygen tag calculus is operational —
	// t(i) records which sources each evaluation step consulted — so a
	// reordered chain produces a different but internally consistent audit
	// trail; data and origin tags are still proven identical. Off by
	// default: the strict mode only accepts orders whose tag algebra
	// coincides with the original (see reorder.go).
	RelaxedJoinReorder bool
}

// Optimize is the statistics-free Query Optimizer: common-subexpression
// elimination plus dead-row elimination, with registers renumbered densely.
// The rewrite never changes the final relation — TestOptimizePreservesResult
// and the optimizer ablation bench (B-OPT) check exactly that. The PQP
// calls OptimizeWithOptions instead, which layers the cost-based federated
// passes on top.
func Optimize(iom *Matrix) (*Matrix, error) {
	return OptimizeWithOptions(iom, Options{})
}

// OptimizeWithOptions runs the full rewriter described in the file comment.
func OptimizeWithOptions(iom *Matrix, opts Options) (*Matrix, error) {
	out, err := dedup(iom)
	if err != nil {
		return nil, fmt.Errorf("translate: optimize: %w", err)
	}
	if opts.Schema != nil {
		fuseLocalChains(out, opts)
		narrowRetrieves(out, opts)
		if opts.Stats != nil && opts.ExactResolver {
			reorderJoinChains(out, opts)
		}
	}
	return eliminateDead(out)
}

// dedup collapses duplicate rows (CSE) and renumbers densely.
func dedup(iom *Matrix) (*Matrix, error) {
	out := &Matrix{}
	regMap := make(map[int]int)  // input register -> output register
	seen := make(map[string]int) // row signature -> output register
	for _, row := range iom.Rows {
		mapped, err := remapRow(row, regMap)
		if err != nil {
			return nil, err
		}
		sig := signature(mapped)
		if existing, dup := seen[sig]; dup {
			regMap[row.PR] = existing
			continue
		}
		mapped.PR = len(out.Rows) + 1
		out.Rows = append(out.Rows, mapped)
		regMap[row.PR] = mapped.PR
		seen[sig] = mapped.PR
	}
	return out, nil
}

func remapRow(row Row, regMap map[int]int) (Row, error) {
	out := row
	var err error
	if out.LHR, err = remapOperand(out.LHR, regMap); err != nil {
		return out, err
	}
	if out.RHR, err = remapOperand(out.RHR, regMap); err != nil {
		return out, err
	}
	return out, nil
}

func remapOperand(o Operand, regMap map[int]int) (Operand, error) {
	switch o.Kind {
	case OpdReg:
		m, ok := regMap[o.Reg]
		if !ok {
			return o, fmt.Errorf("register R(%d) not yet computed", o.Reg)
		}
		return RegOperand(m), nil
	case OpdRegs:
		regs := make([]int, len(o.Regs))
		for i, r := range o.Regs {
			m, ok := regMap[r]
			if !ok {
				return o, fmt.Errorf("register R(%d) not yet computed", r)
			}
			regs[i] = m
		}
		return RegsOperand(regs...), nil
	default:
		return o, nil
	}
}

// signature canonicalizes a row (ignoring its own PR) for duplicate
// detection. Merge register lists are order-normalized: §II proves merge
// order immaterial, so {R(1),R(2),R(3)} and {R(2),R(1),R(3)} coincide.
func signature(r Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|%s|%s|%s|%s", r.Op, operandSig(r.LHR), r.lhaString(), r.thetaString(), r.RHA, operandSig(r.RHR), r.EL)
	if r.Scheme != "" {
		fmt.Fprintf(&b, "|%s", r.Scheme)
	}
	if len(r.Pushed) > 0 {
		fmt.Fprintf(&b, "|push:%s", lqp.StepsString(r.Pushed))
	}
	return b.String()
}

func operandSig(o Operand) string {
	if o.Kind == OpdRegs {
		regs := append([]int(nil), o.Regs...)
		sort.Ints(regs)
		parts := make([]string, len(regs))
		for i, r := range regs {
			parts[i] = fmt.Sprintf("R(%d)", r)
		}
		return strings.Join(parts, ",")
	}
	return o.String()
}

// isLocalRow reports whether the row executes at an LQP.
func isLocalRow(r Row) bool { return r.EL != "" && r.EL != "PQP" }

// planState indexes a working matrix: producer row and consumer count per
// register, plus a register alias map maintained as fusion collapses rows.
type planState struct {
	m         *Matrix
	producer  map[int]int // register -> row index
	consumers map[int]int // register -> number of consuming rows
	deleted   []bool
}

func newPlanState(m *Matrix) *planState {
	s := &planState{
		m:         m,
		producer:  make(map[int]int, len(m.Rows)),
		consumers: make(map[int]int, len(m.Rows)),
		deleted:   make([]bool, len(m.Rows)),
	}
	for i, row := range m.Rows {
		s.producer[row.PR] = i
		forEachReg(row, func(reg int) { s.consumers[reg]++ })
	}
	if len(m.Rows) > 0 {
		s.consumers[m.Rows[len(m.Rows)-1].PR]++ // the caller consumes the final register
	}
	return s
}

func forEachReg(row Row, fn func(int)) {
	for _, o := range [...]Operand{row.LHR, row.RHR} {
		switch o.Kind {
		case OpdReg:
			fn(o.Reg)
		case OpdRegs:
			for _, r := range o.Regs {
				fn(r)
			}
		}
	}
}

// fuseLocalChains is the predicate/projection pushdown pass. A PQP-resident
// Select, Restrict or Project whose left operand is the register of an
// LQP-resident row — and that register's only consumer — is fused into the
// local row as a pushed-down step, provided:
//
//   - the LQP advertises the pushdown capability (Options.CanPush);
//   - every referenced attribute maps to a column of the local relation
//     through the polygen schema, unambiguously;
//   - no condition column is domain-mapped (for Select/Restrict), and no
//     projected column is domain-mapped (for Project);
//   - for Restrict, the comparison is ordered (= and <> resolve through
//     the PQP's instance resolver and must stay PQP-side).
//
// The fused plan's answer is cell-for-cell identical to the unfused one:
// right after a retrieval every cell's origin set is exactly {LQP}, so the
// intermediate tags a PQP-side Select/Restrict would have added are the
// uniform {LQP} — which the PQP reconstructs when it tags the pushed plan's
// result (lqp.Plan.Mediates). Chains fuse transitively: Select ∘ Select ∘
// Project over one retrieval becomes one three-step local subplan.
func fuseLocalChains(m *Matrix, opts Options) {
	if opts.CanPush == nil || len(m.Rows) == 0 {
		return
	}
	finalPR := m.Rows[len(m.Rows)-1].PR
	s := newPlanState(m)
	for i := 0; i < len(m.Rows); i++ {
		row := m.Rows[i]
		if s.deleted[i] || row.EL != "PQP" || row.LHR.Kind != OpdReg || row.RHR.Kind != OpdNone {
			continue
		}
		switch row.Op {
		case OpSelect, OpRestrict, OpProject:
		default:
			continue
		}
		pi, ok := s.producer[row.LHR.Reg]
		if !ok || s.deleted[pi] {
			continue
		}
		p := m.Rows[pi]
		if !isLocalRow(p) || p.LHR.Kind != OpdLocal || s.consumers[row.LHR.Reg] != 1 {
			continue
		}
		if !opts.CanPush(p.EL) {
			continue
		}
		step, ok := localizeStep(opts, p, row)
		if !ok {
			continue
		}
		// Fuse: the producer absorbs the step and takes over the consumer's
		// register (downstream references keep working unchanged); the
		// consumer row dies.
		p.Pushed = append(p.Pushed, step)
		p.PR = row.PR
		m.Rows[pi] = p
		s.deleted[i] = true
		s.producer[row.PR] = pi
	}
	compact(m, s, finalPR)
}

// localizeStep translates one PQP-resident row into a local operation
// executable inside producer p's LQP, or reports that it cannot push.
func localizeStep(opts Options, p Row, row Row) (lqp.Op, bool) {
	db, lscheme := p.EL, p.LHR.Name
	known := outputColumns(p)
	l2p, p2l, ok := localAttrMaps(opts.Schema, db, lscheme)
	if !ok {
		return lqp.Op{}, false
	}
	resolve := func(name string) (string, bool) {
		return resolveLocalName(name, known, l2p, p2l)
	}
	mapped := func(local string) bool {
		return opts.Schema.DomainMap.Has(db, lscheme, local)
	}
	switch row.Op {
	case OpSelect:
		if row.RHA.Kind != CmpConst || len(row.LHA) != 1 || !row.HasTheta {
			return lqp.Op{}, false
		}
		local, ok := resolve(row.LHA[0])
		if !ok || mapped(local) {
			return lqp.Op{}, false
		}
		return lqp.Select(lscheme, local, row.Theta, row.RHA.Const), true
	case OpRestrict:
		switch row.RHA.Kind {
		case CmpConst:
			// A Restrict against a constant is a Select in disguise (the PQP
			// executes it as one).
			if len(row.LHA) != 1 || !row.HasTheta {
				return lqp.Op{}, false
			}
			local, ok := resolve(row.LHA[0])
			if !ok || mapped(local) {
				return lqp.Op{}, false
			}
			return lqp.Select(lscheme, local, row.Theta, row.RHA.Const), true
		case CmpAttr:
			// The PQP routes = and <> through the instance resolver's
			// canonical IDs (kind-sensitive: Int(5) never equals Float(5)),
			// while an LQP compares with rel.Theta.Eval, which coerces
			// numeric kinds — even an exact resolver diverges on mixed
			// columns. Ordered comparisons use Theta.Eval on both sides, so
			// only they may push.
			if row.Theta == rel.ThetaEQ || row.Theta == rel.ThetaNE ||
				len(row.LHA) != 1 || !row.HasTheta {
				return lqp.Op{}, false
			}
			x, okX := resolve(row.LHA[0])
			y, okY := resolve(row.RHA.Attr)
			if !okX || !okY || mapped(x) || mapped(y) {
				return lqp.Op{}, false
			}
			return lqp.Restrict(lscheme, x, row.Theta, y), true
		default:
			return lqp.Op{}, false
		}
	case OpProject:
		if len(row.LHA) == 0 {
			return lqp.Op{}, false
		}
		locals := make([]string, len(row.LHA))
		for i, name := range row.LHA {
			local, ok := resolve(name)
			if !ok || mapped(local) {
				return lqp.Op{}, false
			}
			locals[i] = local
		}
		return lqp.Project(lscheme, locals...), true
	}
	return lqp.Op{}, false
}

// outputColumns returns the known output column list of a local row, or nil
// when the row emits the relation's full (statically unknown) width. A
// Project base op or a pushed Project step fixes the list.
func outputColumns(p Row) []string {
	var cols []string
	if p.Op == OpProject {
		cols = p.LHA
	}
	for _, op := range p.Pushed {
		if op.Kind == lqp.OpProject {
			cols = op.Attrs
		}
	}
	return cols
}

// localAttrMaps builds, for one local relation, the local→polygen and
// polygen→local attribute name maps across every scheme that draws from it.
// Ambiguous polygen names (mapping to two different local columns) are
// dropped from the reverse map; a local column feeding two polygen
// attributes keeps its first (declaration-order) mapping, mirroring
// Schema.PolygenAttrOf.
func localAttrMaps(schema *core.Schema, db, lscheme string) (l2p, p2l map[string]string, ok bool) {
	l2p = make(map[string]string)
	p2l = make(map[string]string)
	ambiguous := make(map[string]bool)
	lr := core.LocalRelation{DB: db, Scheme: lscheme}
	found := false
	for _, sn := range schema.SchemeNames() {
		scheme, _ := schema.Scheme(sn)
		for _, pair := range scheme.LocalAttrsOf(lr) {
			found = true
			if _, dup := l2p[pair.Local]; !dup {
				l2p[pair.Local] = pair.Polygen
			}
			if prev, dup := p2l[pair.Polygen]; dup && prev != pair.Local {
				ambiguous[pair.Polygen] = true
			} else {
				p2l[pair.Polygen] = pair.Local
			}
		}
	}
	for pa := range ambiguous {
		delete(p2l, pa)
	}
	return l2p, p2l, found
}

// resolveLocalName resolves an attribute reference the way core.Relation.Col
// does — display (local) name first, then polygen annotation — against a
// local relation whose full column list may be unknown. known, when non-nil,
// is the current projected column list.
func resolveLocalName(name string, known []string, l2p, p2l map[string]string) (string, bool) {
	if known != nil {
		for _, c := range known {
			if c == name {
				return name, true
			}
		}
		if local, ok := p2l[name]; ok {
			for _, c := range known {
				if c == local {
					return local, true
				}
			}
		}
		return "", false
	}
	if _, isLocal := l2p[name]; isLocal {
		return name, true
	}
	if local, ok := p2l[name]; ok {
		return local, true
	}
	return "", false
}

// compact drops deleted rows and renumbers the remaining ones densely,
// remapping all register references. The row holding the plan's final
// register is restored to the last position: fusing the final PQP row into
// an earlier local row moves the final register up the list, and the
// executors take the positionally-last row as the answer. The move is safe
// because that row's only consumer was the fused (deleted) row.
func compact(m *Matrix, s *planState, finalPR int) {
	survivors := make([]Row, 0, len(m.Rows))
	fi := -1
	for i, row := range m.Rows {
		if s.deleted[i] {
			continue
		}
		if row.PR == finalPR {
			fi = len(survivors)
		}
		survivors = append(survivors, row)
	}
	if fi >= 0 && fi != len(survivors)-1 {
		final := survivors[fi]
		survivors = append(append(survivors[:fi:fi], survivors[fi+1:]...), final)
	}
	regMap := make(map[int]int, len(survivors))
	out := make([]Row, 0, len(survivors))
	for _, row := range survivors {
		mapped, err := remapRow(row, regMap)
		if err != nil {
			// Cannot happen on a well-formed matrix: deletions only ever
			// redirect a register to an earlier row, and the moved final row
			// has no register operands (it is LQP-resident).
			panic(fmt.Sprintf("translate: optimize: %v", err))
		}
		mapped.PR = len(out) + 1
		out = append(out, mapped)
		regMap[row.PR] = mapped.PR
	}
	m.Rows = out
}

// columnDemand is the set of output columns a row's consumers need: either
// everything (top) or a finite name set.
type columnDemand struct {
	top   bool
	names map[string]bool
}

func (d *columnDemand) addAll() { d.top = true }

func (d *columnDemand) add(names ...string) {
	if d.top {
		return
	}
	if d.names == nil {
		d.names = make(map[string]bool)
	}
	for _, n := range names {
		d.names[n] = true
	}
}

func (d *columnDemand) merge(o columnDemand) {
	if o.top {
		d.addAll()
		return
	}
	for n := range o.names {
		d.add(n)
	}
}

// narrowRetrieves is the projection-narrowing pass. It computes, for every
// register, which output columns its consumers can possibly observe —
// demand flows backwards through PQP-resident Select/Restrict rows (which
// pass their input through and additionally observe their condition
// columns) and is cut by Project rows to their projection list. Join,
// Merge, Product and the set operations observe every column of their
// inputs (they compare or emit whole tuples), so demand through them is
// total.
//
// A local row whose register has a finite demand retrieves only the
// demanded columns: a bare Retrieve becomes a local Project (every LQP
// supports that single operation), any other local row gains a pushed
// Project step (capability-gated). Condition columns are part of the
// demand by construction, so a column whose origin tags mediate a later
// selection — a tag-bearing column — is never projected away; and because
// finite demand implies every consumption path passes a duplicate-
// eliminating Project, the early duplicate elimination at the LQP cannot
// change the final relation (the collapsed rows carry identical tags).
func narrowRetrieves(m *Matrix, opts Options) {
	if len(m.Rows) == 0 {
		return
	}
	demand := make([]columnDemand, len(m.Rows)+1) // indexed by register
	demand[m.Rows[len(m.Rows)-1].PR].addAll()     // the final relation is fully visible
	for i := len(m.Rows) - 1; i >= 0; i-- {
		row := m.Rows[i]
		own := demand[row.PR]
		if row.EL == "PQP" && row.RHR.Kind == OpdNone && row.LHR.Kind == OpdReg {
			switch row.Op {
			case OpProject:
				demand[row.LHR.Reg].add(row.LHA...)
				continue
			case OpSelect:
				demand[row.LHR.Reg].merge(own)
				demand[row.LHR.Reg].add(row.LHA...)
				continue
			case OpRestrict:
				demand[row.LHR.Reg].merge(own)
				demand[row.LHR.Reg].add(row.LHA...)
				if row.RHA.Kind == CmpAttr {
					demand[row.LHR.Reg].add(row.RHA.Attr)
				}
				continue
			}
		}
		// Every other operation observes its register inputs entirely.
		forEachReg(row, func(reg int) { demand[reg].addAll() })
	}
	for i, row := range m.Rows {
		d := demand[row.PR]
		if d.top || len(d.names) == 0 || !isLocalRow(row) || row.LHR.Kind != OpdLocal {
			continue
		}
		if narrowed, ok := narrowLocalRow(row, d, opts); ok {
			m.Rows[i] = narrowed
		}
	}
}

// narrowLocalRow rewrites one local row to emit only the demanded columns,
// or reports that it cannot.
func narrowLocalRow(row Row, d columnDemand, opts Options) (Row, bool) {
	db, lscheme := row.EL, row.LHR.Name
	known := outputColumns(row)
	l2p, p2l, ok := localAttrMaps(opts.Schema, db, lscheme)
	if !ok {
		return row, false
	}
	locals := make([]string, 0, len(d.names))
	seen := make(map[string]bool, len(d.names))
	for name := range d.names {
		local, ok := resolveLocalName(name, known, l2p, p2l)
		if !ok {
			return row, false // a demanded column we cannot place — keep the full width
		}
		if !seen[local] {
			seen[local] = true
			locals = append(locals, local)
		}
	}
	sort.Strings(locals)
	if known != nil {
		// Already projected; only narrow further on a strict subset.
		if len(locals) >= len(known) {
			return row, false
		}
	} else if cols, ok := statsColumns(opts, db, lscheme); ok && len(locals) >= len(cols) {
		return row, false // demand covers the whole relation — nothing to save
	}
	if row.Op == OpRetrieve && len(row.Pushed) == 0 {
		row.Op = OpProject
		row.LHA = locals
		return row, true
	}
	if row.Op == OpProject && len(row.Pushed) == 0 {
		row.LHA = locals
		return row, true
	}
	if opts.CanPush == nil || !opts.CanPush(db) {
		return row, false
	}
	row.Pushed = append(append([]lqp.Op(nil), row.Pushed...), lqp.Project(lscheme, locals...))
	return row, true
}

func statsColumns(opts Options, db, relation string) ([]string, bool) {
	if opts.Stats == nil {
		return nil, false
	}
	return opts.Stats.Columns(db, relation)
}

// eliminateDead removes rows unreachable from the final row and renumbers.
func eliminateDead(m *Matrix) (*Matrix, error) {
	if len(m.Rows) == 0 {
		return m, nil
	}
	needed := make(map[int]bool, len(m.Rows))
	mark := func(o Operand) {
		switch o.Kind {
		case OpdReg:
			needed[o.Reg] = true
		case OpdRegs:
			for _, r := range o.Regs {
				needed[r] = true
			}
		}
	}
	needed[m.Rows[len(m.Rows)-1].PR] = true
	for i := len(m.Rows) - 1; i >= 0; i-- {
		row := m.Rows[i]
		if !needed[row.PR] {
			continue
		}
		mark(row.LHR)
		mark(row.RHR)
	}
	out := &Matrix{}
	regMap := make(map[int]int)
	for _, row := range m.Rows {
		if !needed[row.PR] {
			continue
		}
		mapped, err := remapRow(row, regMap)
		if err != nil {
			return nil, err
		}
		mapped.PR = len(out.Rows) + 1
		out.Rows = append(out.Rows, mapped)
		regMap[row.PR] = mapped.PR
	}
	return out, nil
}
