package translate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
)

// testSchema builds the paper's polygen schema inline (package translate
// cannot import paperdata without a cycle in the test build graph; the
// schema literal also keeps these tests self-contained).
func testSchema() *core.Schema {
	la := func(db, scheme, attr string) core.LocalAttr {
		return core.LocalAttr{DB: db, Scheme: scheme, Attr: attr}
	}
	pa := func(name string, mapping ...core.LocalAttr) core.PolygenAttr {
		return core.PolygenAttr{Name: name, Mapping: mapping}
	}
	return core.MustSchema(
		&core.Scheme{Name: "PALUMNUS", Key: "AID#", Attrs: []core.PolygenAttr{
			pa("AID#", la("AD", "ALUMNUS", "AID#")),
			pa("ANAME", la("AD", "ALUMNUS", "ANAME")),
			pa("DEGREE", la("AD", "ALUMNUS", "DEG")),
			pa("MAJOR", la("AD", "ALUMNUS", "MAJ")),
		}},
		&core.Scheme{Name: "PCAREER", Key: "AID#", Attrs: []core.PolygenAttr{
			pa("AID#", la("AD", "CAREER", "AID#")),
			pa("ONAME", la("AD", "CAREER", "BNAME")),
			pa("POSITION", la("AD", "CAREER", "POS")),
		}},
		&core.Scheme{Name: "PORGANIZATION", Key: "ONAME", Attrs: []core.PolygenAttr{
			pa("ONAME", la("AD", "BUSINESS", "BNAME"), la("PD", "CORPORATION", "CNAME"), la("CD", "FIRM", "FNAME")),
			pa("INDUSTRY", la("AD", "BUSINESS", "IND"), la("PD", "CORPORATION", "TRADE")),
			pa("CEO", la("CD", "FIRM", "CEO")),
			pa("HEADQUARTERS", la("PD", "CORPORATION", "STATE"), la("CD", "FIRM", "HQ")),
		}},
		&core.Scheme{Name: "PSTUDENT", Key: "SID#", Attrs: []core.PolygenAttr{
			pa("SID#", la("PD", "STUDENT", "SID#")),
			pa("SNAME", la("PD", "STUDENT", "SNAME")),
			pa("GPA", la("PD", "STUDENT", "GPA")),
			pa("MAJOR", la("PD", "STUDENT", "MAJOR")),
		}},
	)
}

func matrixLines(m *Matrix) string {
	var b strings.Builder
	for _, r := range m.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func wantMatrix(t *testing.T, m *Matrix, want ...string) {
	t.Helper()
	got := make([]string, 0, len(m.Rows))
	for _, r := range m.Rows {
		got = append(got, r.String())
	}
	if len(got) != len(want) {
		t.Fatalf("matrix has %d rows, want %d:\n%s", len(got), len(want), matrixLines(m))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d:\n  got  %s\n  want %s", i+1, got[i], want[i])
		}
	}
}

func translateAll(t *testing.T, expr string) (*Matrix, *Matrix, *Matrix) {
	t.Helper()
	schema := testSchema()
	e, err := ParseExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PassOne(pom, schema)
	if err != nil {
		t.Fatalf("pass one: %v\nPOM:\n%s", err, matrixLines(pom))
	}
	iom, err := PassTwo(h, schema)
	if err != nil {
		t.Fatalf("pass two: %v\nH:\n%s", err, matrixLines(h))
	}
	return pom, h, iom
}

// TestPassOneSingleSourceSelect is Figure 3's singleton-MAi case: the Select
// localizes to the Alumni Database with local attribute names.
func TestPassOneSingleSourceSelect(t *testing.T) {
	_, h, _ := translateAll(t, `PALUMNUS [DEGREE = "MBA"]`)
	wantMatrix(t, h, `R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD`)
}

// TestPassOneMultiSourceSelect is Figure 3's multi-element-MAi case: the
// scheme's local relations are retrieved and merged before the Select runs
// at the PQP.
func TestPassOneMultiSourceSelect(t *testing.T) {
	_, h, _ := translateAll(t, `PORGANIZATION [INDUSTRY = "Banking"]`)
	wantMatrix(t, h,
		"R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD",
		"R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD",
		"R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP",
		`R(5) | Select | R(4) | INDUSTRY | = | "Banking" | nil | PQP`,
	)
}

// TestPassOneRestrictBothAttrsLocalized: a Restrict on a single-source
// scheme localizes both attribute names.
func TestPassOneRestrictBothAttrsLocalized(t *testing.T) {
	_, h, _ := translateAll(t, `PALUMNUS [DEGREE = MAJOR]`)
	wantMatrix(t, h, "R(1) | Restrict | ALUMNUS | DEG | = | MAJ | nil | AD")
}

// TestPassOneProjectSingleSource: a multi-attribute Project on a
// single-source scheme localizes the projection list.
func TestPassOneProjectSingleSource(t *testing.T) {
	_, h, _ := translateAll(t, `PALUMNUS [ANAME, DEGREE]`)
	wantMatrix(t, h, "R(1) | Project | ALUMNUS | ANAME, DEG | nil | nil | nil | AD")
}

// TestPassOneProjectMultiSource: projecting attributes that fan out over
// several databases forces retrieve-and-merge.
func TestPassOneProjectMultiSource(t *testing.T) {
	_, h, _ := translateAll(t, `PORGANIZATION [ONAME, CEO]`)
	wantMatrix(t, h,
		"R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD",
		"R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD",
		"R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP",
		"R(5) | Project | R(4) | ONAME, CEO | nil | nil | nil | PQP",
	)
}

// TestPassTwoSingletonRHRWithPQPLHS reproduces Table 3's rows 2–3: a join
// whose LHS is already a PQP register and whose RHS is a single-source
// scheme becomes Retrieve + Join.
func TestPassTwoSingletonRHRWithPQPLHS(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [AID# = AID#] PCAREER`)
	wantMatrix(t, iom,
		`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD`,
		"R(2) | Retrieve | CAREER | nil | nil | nil | nil | AD",
		"R(3) | Join | R(1) | AID# | = | AID# | R(2) | PQP",
	)
}

// TestPassTwoBothSidesLocal reproduces the §I scenario Figure 4 describes:
// a join between two schemes that both localized in pass one requires
// separate LQP retrievals, and the pass-one localization of the LHA is
// undone (CEO stays CEO via PA(CD, FIRM, CEO)).
func TestPassTwoBothSidesLocal(t *testing.T) {
	_, h, iom := translateAll(t, `PORGANIZATION [CEO = ANAME] PALUMNUS`)
	wantMatrix(t, h, "R(1) | Join | FIRM | CEO | = | ANAME | PALUMNUS | CD")
	wantMatrix(t, iom,
		"R(1) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(2) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(3) | Join | R(1) | CEO | = | ANAME | R(2) | PQP",
	)
}

// TestPassTwoMultiSourceRHR reproduces Table 3's rows 4–8.
func TestPassTwoMultiSourceRHR(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [ANAME = ONAME] PORGANIZATION`)
	wantMatrix(t, iom,
		`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD`,
		"R(2) | Retrieve | BUSINESS | nil | nil | nil | nil | AD",
		"R(3) | Retrieve | CORPORATION | nil | nil | nil | nil | PD",
		"R(4) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(5) | Merge | R(2), R(3), R(4) | nil | nil | nil | nil | PQP",
		"R(6) | Join | R(1) | ANAME | = | ONAME | R(5) | PQP",
	)
}

// TestPassTwoMultiSourceRHRLocalLHS: both sides need work — local LHS plus
// multi-source RHS.
func TestPassTwoMultiSourceRHRLocalLHS(t *testing.T) {
	_, h, iom := translateAll(t, `PALUMNUS [ANAME = ONAME] PORGANIZATION`)
	wantMatrix(t, h, "R(1) | Join | ALUMNUS | ANAME | = | ONAME | PORGANIZATION | AD")
	wantMatrix(t, iom,
		"R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD",
		"R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD",
		"R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD",
		"R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP",
		"R(5) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(6) | Join | R(5) | ANAME | = | ONAME | R(4) | PQP",
	)
}

// TestPassTwoJoinLocalLHSRegisterRHS: pass one localizes the LHS but the
// RHS is a register; the LHS must be retrieved and the join relocated.
func TestPassTwoJoinLocalLHSRegisterRHS(t *testing.T) {
	_, _, iom := translateAll(t, `PALUMNUS [AID# = AID#] (PCAREER [POSITION = "CEO"])`)
	wantMatrix(t, iom,
		`R(1) | Select | CAREER | POS | = | "CEO" | nil | AD`,
		"R(2) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(3) | Join | R(2) | AID# | = | AID# | R(1) | PQP",
	)
}

// TestPassOneUnknownScheme and friends: error paths.
func TestInterpErrors(t *testing.T) {
	schema := testSchema()
	for _, expr := range []string{
		`NOSUCH [A = "x"]`,
		`PALUMNUS [NOSUCH = "x"]`,
		`PALUMNUS [AID# = AID#] NOSUCH`,
		`PALUMNUS [AID# = NOSUCH] PCAREER`,
	} {
		e, err := ParseExpr(expr)
		if err != nil {
			t.Fatal(err)
		}
		pom, err := Analyze(e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Interpret(pom, schema); err == nil {
			t.Errorf("Interpret(%q) should fail", expr)
		}
	}
}

// TestSetOperationsTranslate: UNION of two schemes expands both sides.
func TestSetOperationsTranslate(t *testing.T) {
	_, _, iom := translateAll(t, `PALUMNUS UNION PALUMNUS`)
	wantMatrix(t, iom,
		"R(1) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(2) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		"R(3) | Union | R(1) | nil | nil | nil | R(2) | PQP",
	)
}

func TestInterpretConvenience(t *testing.T) {
	schema := testSchema()
	pom, err := Analyze(MustParseExpr(`PALUMNUS [DEGREE = "MBA"]`))
	if err != nil {
		t.Fatal(err)
	}
	iom, err := Interpret(pom, schema)
	if err != nil {
		t.Fatal(err)
	}
	if iom.Cardinality() != 1 {
		t.Errorf("IOM:\n%s", matrixLines(iom))
	}
}

// TestOperandAndComparandStrings covers the rendering helpers.
func TestOperandAndComparandStrings(t *testing.T) {
	if NoOperand().String() != "nil" || RegOperand(3).String() != "R(3)" {
		t.Error("operand rendering wrong")
	}
	if RegsOperand(1, 2).String() != "R(1), R(2)" {
		t.Error("register list rendering wrong")
	}
	if SchemeOperand("P").String() != "P" || LocalOperand("L").String() != "L" {
		t.Error("scheme operand rendering wrong")
	}
	if NoComparand().String() != "nil" || AttrComparand("A").String() != "A" {
		t.Error("comparand rendering wrong")
	}
}

// TestPassOneDomainMappedSelectNotPushed: a selection on an attribute with a
// registered domain mapping must NOT execute at the LQP — the LQP would
// compare against unmapped local values. The translator retrieves and
// selects at the PQP instead.
func TestPassOneDomainMappedSelectNotPushed(t *testing.T) {
	schema := testSchema()
	schema.DomainMap.Set("AD", "ALUMNUS", "DEG", func(v rel.Value) rel.Value { return v })
	e := MustParseExpr(`PALUMNUS [DEGREE = "MBA"]`)
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PassOne(pom, schema)
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix(t, h,
		"R(1) | Retrieve | ALUMNUS | nil | nil | nil | nil | AD",
		`R(2) | Select | R(1) | DEGREE | = | "MBA" | nil | PQP`,
	)
	// An un-mapped attribute on the same scheme still pushes down.
	pom2, _ := Analyze(MustParseExpr(`PALUMNUS [MAJOR = "IS"]`))
	h2, err := PassOne(pom2, schema)
	if err != nil {
		t.Fatal(err)
	}
	wantMatrix(t, h2, `R(1) | Select | ALUMNUS | MAJ | = | "IS" | nil | AD`)
}

// TestPassOneDomainMappedRestrict: same guard for two-attribute restricts.
func TestPassOneDomainMappedRestrict(t *testing.T) {
	schema := testSchema()
	schema.DomainMap.Set("AD", "ALUMNUS", "MAJ", func(v rel.Value) rel.Value { return v })
	pom, _ := Analyze(MustParseExpr(`PALUMNUS [DEGREE = MAJOR]`))
	h, err := PassOne(pom, schema)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows[0].Op != OpRetrieve || h.Rows[1].EL != "PQP" {
		t.Errorf("restrict on mapped attribute pushed down:\n%s", matrixLines(h))
	}
}
