package translate

import (
	"fmt"
	"strings"

	"repro/internal/lqp"
	"repro/internal/rel"
)

// OpName names a polygen operation as spelled in the paper's matrices.
type OpName string

// Operation names appearing in Polygen Operation Matrices and Intermediate
// Operation Matrices.
const (
	OpSelect     OpName = "Select"
	OpRestrict   OpName = "Restrict"
	OpJoin       OpName = "Join"
	OpProject    OpName = "Project"
	OpRetrieve   OpName = "Retrieve"
	OpMerge      OpName = "Merge"
	OpUnion      OpName = "Union"
	OpDifference OpName = "Difference"
	OpIntersect  OpName = "Intersect"
	OpProduct    OpName = "Product"
)

// OperandKind classifies the LHR/RHR columns of a matrix row.
type OperandKind uint8

const (
	// OpdNone is the paper's "nil" operand.
	OpdNone OperandKind = iota
	// OpdScheme references a polygen scheme (POM rows, e.g. PALUMNUS).
	OpdScheme
	// OpdLocal references a local scheme (IOM rows, e.g. ALUMNUS).
	OpdLocal
	// OpdReg references a polygen base relation R(#).
	OpdReg
	// OpdRegs references a list of registers {R(a), ..., R(b)} (Merge rows).
	OpdRegs
)

// Operand is the LHR or RHR of a matrix row.
type Operand struct {
	Kind OperandKind
	Name string // scheme name for OpdScheme / OpdLocal
	Reg  int    // register number for OpdReg
	Regs []int  // register numbers for OpdRegs
}

// NoOperand is the "nil" operand.
func NoOperand() Operand { return Operand{Kind: OpdNone} }

// SchemeOperand references a polygen scheme.
func SchemeOperand(name string) Operand { return Operand{Kind: OpdScheme, Name: name} }

// LocalOperand references a local scheme.
func LocalOperand(name string) Operand { return Operand{Kind: OpdLocal, Name: name} }

// RegOperand references register n.
func RegOperand(n int) Operand { return Operand{Kind: OpdReg, Reg: n} }

// RegsOperand references registers ns.
func RegsOperand(ns ...int) Operand { return Operand{Kind: OpdRegs, Regs: ns} }

// String renders the operand in the paper's notation.
func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "nil"
	case OpdScheme, OpdLocal:
		return o.Name
	case OpdReg:
		return fmt.Sprintf("R(%d)", o.Reg)
	case OpdRegs:
		parts := make([]string, len(o.Regs))
		for i, r := range o.Regs {
			parts[i] = fmt.Sprintf("R(%d)", r)
		}
		return strings.Join(parts, ", ")
	default:
		return fmt.Sprintf("operand(%d)", uint8(o.Kind))
	}
}

// Comparand is the RHA column: an attribute name, a constant, or nil.
type Comparand struct {
	Kind  ComparandKind
	Attr  string
	Const rel.Value
}

// ComparandKind classifies a Comparand.
type ComparandKind uint8

const (
	// CmpNone is the paper's "nil" RHA.
	CmpNone ComparandKind = iota
	// CmpAttr is an attribute name.
	CmpAttr
	// CmpConst is a literal constant.
	CmpConst
)

// NoComparand is the "nil" RHA.
func NoComparand() Comparand { return Comparand{Kind: CmpNone} }

// AttrComparand references an attribute.
func AttrComparand(name string) Comparand { return Comparand{Kind: CmpAttr, Attr: name} }

// ConstComparand references a constant.
func ConstComparand(v rel.Value) Comparand { return Comparand{Kind: CmpConst, Const: v} }

// String renders the comparand; constants quote strings as the paper does.
func (c Comparand) String() string {
	switch c.Kind {
	case CmpNone:
		return "nil"
	case CmpAttr:
		return c.Attr
	case CmpConst:
		return formatConst(c.Const)
	default:
		return fmt.Sprintf("comparand(%d)", uint8(c.Kind))
	}
}

// Row is one row of a Polygen Operation Matrix or an Intermediate Operation
// Matrix: (PR, OP, LHR, LHA, θ, RHA, RHR[, EL]).
type Row struct {
	// PR is the result register number: the row computes R(PR).
	PR int
	// Op is the operation.
	Op OpName
	// LHR is the left-hand relation.
	LHR Operand
	// LHA is the left-hand attribute (Project rows carry the whole
	// projection list; other rows use at most one element).
	LHA []string
	// Theta is the comparison for Select/Restrict/Join rows.
	Theta rel.Theta
	// HasTheta reports whether Theta is meaningful (the paper renders "nil"
	// in the θ column otherwise).
	HasTheta bool
	// RHA is the right-hand attribute or constant.
	RHA Comparand
	// RHR is the right-hand relation.
	RHR Operand
	// EL is the execution location: a local database name or "PQP". Empty
	// in POM rows (the POM precedes location assignment).
	EL string
	// Scheme records, on Merge rows, the polygen scheme whose local
	// relations are being merged; the executor needs it for the key and the
	// coalesce groups. It is carried alongside the paper's columns.
	Scheme string
	// Pushed carries, on LQP-resident rows, the local operations the Query
	// Optimizer fused into this row from later PQP-resident rows (predicate
	// and projection pushdown). The operations execute at the row's LQP, in
	// order, after the row's own operation; attribute references are already
	// localized. Like Scheme, it rides alongside the paper's columns — the
	// paper's optimizer box is "beyond the scope", so its output has no
	// matrix notation to follow.
	Pushed []lqp.Op
}

// lhaString renders the LHA column.
func (r Row) lhaString() string {
	if len(r.LHA) == 0 {
		return "nil"
	}
	return strings.Join(r.LHA, ", ")
}

func (r Row) thetaString() string {
	if !r.HasTheta {
		return "nil"
	}
	return r.Theta.String()
}

// String renders the row as a pipe-separated line matching the paper's
// matrix layout: PR | OP | LHR | LHA | θ | RHA | RHR [| EL]. Rows carrying
// optimizer-fused local steps append one extra column, "push: [...]...",
// rendering each pushed operation's bracket part in pipeline order.
func (r Row) String() string {
	cols := []string{
		fmt.Sprintf("R(%d)", r.PR),
		string(r.Op),
		r.LHR.String(),
		r.lhaString(),
		r.thetaString(),
		r.RHA.String(),
		r.RHR.String(),
	}
	if r.EL != "" {
		cols = append(cols, r.EL)
	}
	if len(r.Pushed) > 0 {
		cols = append(cols, "push: "+lqp.StepsString(r.Pushed))
	}
	return strings.Join(cols, " | ")
}

// Matrix is an ordered list of rows — a POM, a half-processed IOM, or an
// IOM, depending on provenance.
type Matrix struct {
	Rows []Row
}

// Cardinality returns the number of rows.
func (m *Matrix) Cardinality() int { return len(m.Rows) }

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for _, r := range m.Rows {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Analyze is the Syntax Analyzer (Figure 2): it flattens a polygen algebraic
// expression into a Polygen Operation Matrix, numbering intermediate results
// R(1), R(2), ... in evaluation order (compare Table 1).
func Analyze(e Expr) (*Matrix, error) {
	m := &Matrix{}
	res, err := analyze(e, m)
	if err != nil {
		return nil, err
	}
	// A bare scheme reference ("SELECT * FROM PALUMNUS") emits no operation
	// rows of its own; materialize it with an explicit Retrieve so the plan
	// is non-empty.
	if res.Kind == OpdScheme {
		m.Rows = append(m.Rows, Row{
			PR: len(m.Rows) + 1, Op: OpRetrieve, LHR: res,
			RHA: NoComparand(), RHR: NoOperand(),
		})
	}
	return m, nil
}

// analyze emits rows for e and returns the operand referring to its result.
func analyze(e Expr, m *Matrix) (Operand, error) {
	switch n := e.(type) {
	case *SchemeRef:
		return SchemeOperand(n.Name), nil
	case *SelectExpr:
		in, err := analyze(n.In, m)
		if err != nil {
			return Operand{}, err
		}
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: OpSelect, LHR: in, LHA: []string{n.Attr},
			Theta: n.Theta, HasTheta: true, RHA: ConstComparand(n.Const), RHR: NoOperand(),
		})
		return RegOperand(pr), nil
	case *RestrictExpr:
		in, err := analyze(n.In, m)
		if err != nil {
			return Operand{}, err
		}
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: OpRestrict, LHR: in, LHA: []string{n.X},
			Theta: n.Theta, HasTheta: true, RHA: AttrComparand(n.Y), RHR: NoOperand(),
		})
		return RegOperand(pr), nil
	case *JoinExpr:
		l, err := analyze(n.L, m)
		if err != nil {
			return Operand{}, err
		}
		r, err := analyze(n.R, m)
		if err != nil {
			return Operand{}, err
		}
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: OpJoin, LHR: l, LHA: []string{n.X},
			Theta: n.Theta, HasTheta: true, RHA: AttrComparand(n.Y), RHR: r,
		})
		return RegOperand(pr), nil
	case *ProjectExpr:
		in, err := analyze(n.In, m)
		if err != nil {
			return Operand{}, err
		}
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: OpProject, LHR: in, LHA: append([]string(nil), n.Attrs...),
			RHA: NoComparand(), RHR: NoOperand(),
		})
		return RegOperand(pr), nil
	case *BinaryExpr:
		l, err := analyze(n.L, m)
		if err != nil {
			return Operand{}, err
		}
		r, err := analyze(n.R, m)
		if err != nil {
			return Operand{}, err
		}
		pr := len(m.Rows) + 1
		m.Rows = append(m.Rows, Row{
			PR: pr, Op: n.Op, LHR: l, RHA: NoComparand(), RHR: r,
		})
		return RegOperand(pr), nil
	default:
		return Operand{}, fmt.Errorf("translate: unknown expression node %T", e)
	}
}
