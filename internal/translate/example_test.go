package translate_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/translate"
)

func exampleSchema() *core.Schema {
	la := func(db, scheme, attr string) core.LocalAttr {
		return core.LocalAttr{DB: db, Scheme: scheme, Attr: attr}
	}
	return core.MustSchema(
		&core.Scheme{Name: "PALUMNUS", Key: "AID#", Attrs: []core.PolygenAttr{
			{Name: "AID#", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "AID#")}},
			{Name: "ANAME", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "ANAME")}},
			{Name: "DEGREE", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "DEG")}},
		}},
		&core.Scheme{Name: "PORGANIZATION", Key: "ONAME", Attrs: []core.PolygenAttr{
			{Name: "ONAME", Mapping: []core.LocalAttr{
				la("AD", "BUSINESS", "BNAME"),
				la("PD", "CORPORATION", "CNAME"),
				la("CD", "FIRM", "FNAME"),
			}},
			{Name: "CEO", Mapping: []core.LocalAttr{la("CD", "FIRM", "CEO")}},
		}},
	)
}

// Example walks a polygen algebraic expression through the paper's
// translation pipeline: Syntax Analyzer (POM), pass one, pass two (IOM).
func Example() {
	schema := exampleSchema()
	expr := translate.MustParseExpr(`(PALUMNUS [DEGREE = "MBA"]) [ANAME = ONAME] PORGANIZATION`)

	pom, _ := translate.Analyze(expr)
	fmt.Println("POM:")
	fmt.Print(pom)

	iom, _ := translate.Interpret(pom, schema)
	fmt.Println("IOM:")
	fmt.Print(iom)
	// Output:
	// POM:
	// R(1) | Select | PALUMNUS | DEGREE | = | "MBA" | nil
	// R(2) | Join | R(1) | ANAME | = | ONAME | PORGANIZATION
	// IOM:
	// R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD
	// R(2) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
	// R(3) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
	// R(4) | Retrieve | FIRM | nil | nil | nil | nil | CD
	// R(5) | Merge | R(2), R(3), R(4) | nil | nil | nil | nil | PQP
	// R(6) | Join | R(1) | ANAME | = | ONAME | R(5) | PQP
}

// ExampleCompileSQL shows the SQL front end producing the paper's algebra.
func ExampleCompileSQL() {
	schema := exampleSchema()
	e, _ := translate.CompileSQL(
		`SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"`, schema)
	fmt.Println(e)
	// Output: (((PORGANIZATION [CEO = ANAME] PALUMNUS) [DEGREE = "MBA"]) [CEO])
}

// ExampleOptimize shows the statistics-free optimizer collapsing the
// duplicate Retrieve/Merge fan-out of a scheme referenced twice: the
// eleven-row IOM becomes a seven-row plan that retrieves and merges
// PORGANIZATION once.
func ExampleOptimize() {
	schema := exampleSchema()
	expr := translate.MustParseExpr(
		`(PORGANIZATION [ONAME = "IBM"]) UNION (PORGANIZATION [ONAME = "DEC"])`)
	pom, _ := translate.Analyze(expr)
	iom, _ := translate.Interpret(pom, schema)
	fmt.Printf("before (%d rows):\n%s", iom.Cardinality(), iom)

	plan, _ := translate.Optimize(iom)
	fmt.Printf("after (%d rows):\n%s", plan.Cardinality(), plan)
	// Output:
	// before (11 rows):
	// R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
	// R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
	// R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD
	// R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP
	// R(5) | Select | R(4) | ONAME | = | "IBM" | nil | PQP
	// R(6) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
	// R(7) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
	// R(8) | Retrieve | FIRM | nil | nil | nil | nil | CD
	// R(9) | Merge | R(6), R(7), R(8) | nil | nil | nil | nil | PQP
	// R(10) | Select | R(9) | ONAME | = | "DEC" | nil | PQP
	// R(11) | Union | R(5) | nil | nil | nil | R(10) | PQP
	// after (7 rows):
	// R(1) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
	// R(2) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
	// R(3) | Retrieve | FIRM | nil | nil | nil | nil | CD
	// R(4) | Merge | R(1), R(2), R(3) | nil | nil | nil | nil | PQP
	// R(5) | Select | R(4) | ONAME | = | "IBM" | nil | PQP
	// R(6) | Select | R(4) | ONAME | = | "DEC" | nil | PQP
	// R(7) | Union | R(5) | nil | nil | nil | R(6) | PQP
}

// ExampleOptimizeWithOptions shows the cost-based pushdown path: a
// PQP-resident selection chain over a single-source scheme fuses into one
// pushed-down subplan executed entirely inside the owning LQP, so only the
// filtered, single-column rows cross the wide-area boundary. The extra
// matrix column renders the fused local steps.
func ExampleOptimizeWithOptions() {
	schema := exampleSchema()
	expr := translate.MustParseExpr(`((PALUMNUS [DEGREE = "MBA"]) [ANAME = "Stu Madnick"]) [ANAME]`)
	pom, _ := translate.Analyze(expr)
	iom, _ := translate.Interpret(pom, schema)
	fmt.Print("before:\n", iom)

	plan, _ := translate.OptimizeWithOptions(iom, translate.Options{
		Schema:  schema,
		CanPush: func(db string) bool { return true }, // every LQP accepts subplans
	})
	fmt.Print("after:\n", plan)
	// Output:
	// before:
	// R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD
	// R(2) | Select | R(1) | ANAME | = | "Stu Madnick" | nil | PQP
	// R(3) | Project | R(2) | ANAME | nil | nil | nil | PQP
	// after:
	// R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD | push: [ANAME = "Stu Madnick"][ANAME]
}
