package translate_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/translate"
)

func exampleSchema() *core.Schema {
	la := func(db, scheme, attr string) core.LocalAttr {
		return core.LocalAttr{DB: db, Scheme: scheme, Attr: attr}
	}
	return core.MustSchema(
		&core.Scheme{Name: "PALUMNUS", Key: "AID#", Attrs: []core.PolygenAttr{
			{Name: "AID#", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "AID#")}},
			{Name: "ANAME", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "ANAME")}},
			{Name: "DEGREE", Mapping: []core.LocalAttr{la("AD", "ALUMNUS", "DEG")}},
		}},
		&core.Scheme{Name: "PORGANIZATION", Key: "ONAME", Attrs: []core.PolygenAttr{
			{Name: "ONAME", Mapping: []core.LocalAttr{
				la("AD", "BUSINESS", "BNAME"),
				la("PD", "CORPORATION", "CNAME"),
				la("CD", "FIRM", "FNAME"),
			}},
			{Name: "CEO", Mapping: []core.LocalAttr{la("CD", "FIRM", "CEO")}},
		}},
	)
}

// Example walks a polygen algebraic expression through the paper's
// translation pipeline: Syntax Analyzer (POM), pass one, pass two (IOM).
func Example() {
	schema := exampleSchema()
	expr := translate.MustParseExpr(`(PALUMNUS [DEGREE = "MBA"]) [ANAME = ONAME] PORGANIZATION`)

	pom, _ := translate.Analyze(expr)
	fmt.Println("POM:")
	fmt.Print(pom)

	iom, _ := translate.Interpret(pom, schema)
	fmt.Println("IOM:")
	fmt.Print(iom)
	// Output:
	// POM:
	// R(1) | Select | PALUMNUS | DEGREE | = | "MBA" | nil
	// R(2) | Join | R(1) | ANAME | = | ONAME | PORGANIZATION
	// IOM:
	// R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD
	// R(2) | Retrieve | BUSINESS | nil | nil | nil | nil | AD
	// R(3) | Retrieve | CORPORATION | nil | nil | nil | nil | PD
	// R(4) | Retrieve | FIRM | nil | nil | nil | nil | CD
	// R(5) | Merge | R(2), R(3), R(4) | nil | nil | nil | nil | PQP
	// R(6) | Join | R(1) | ANAME | = | ONAME | R(5) | PQP
}

// ExampleCompileSQL shows the SQL front end producing the paper's algebra.
func ExampleCompileSQL() {
	schema := exampleSchema()
	e, _ := translate.CompileSQL(
		`SELECT CEO FROM PORGANIZATION, PALUMNUS WHERE CEO = ANAME AND DEGREE = "MBA"`, schema)
	fmt.Println(e)
	// Output: (((PORGANIZATION [CEO = ANAME] PALUMNUS) [DEGREE = "MBA"]) [CEO])
}
