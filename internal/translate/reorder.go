package translate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/stats"
)

// This file is the greedy join-reordering pass of the Query Optimizer: with
// per-LQP relation statistics available it rewrites left-deep chains of
// equi-joins so that the smallest estimated relations join first, keeping
// intermediate results — the rows the PQP must hash, probe and tag — small.
//
// Reordering a polygen join chain is subtle, because the polygen tag
// calculus is OPERATIONAL: a join adds the origins of its two operand
// columns to the intermediate set of every cell of every surviving row, so
// a leaf's cells only accumulate the mediator tags of joins executed after
// that leaf entered the composite. Permuting the chain therefore changes
// t(i) — the audit trail of which sources were consulted — even though the
// data and origin tags are provably order-independent. The pass honors
// that:
//
//   - in the default (strict) mode, a candidate order is accepted only when
//     the simulated per-column intermediate tags of the reordered chain
//     equal the original's exactly. Swapping the operands of the chain's
//     bottom join always qualifies (both of its leaves accumulate every
//     join's mediators in either orientation), which is how the pass picks
//     the cheaper hash-join build side; broader permutations qualify only
//     when the tag algebra happens to coincide.
//   - with Options.RelaxedJoinReorder set, the full greedy order is
//     accepted as long as data and origin tags are preserved; the
//     intermediate sets then record the reordered evaluation — a different
//     but internally consistent audit trail. The PQP leaves this off; the
//     B-OPT benchmarks measure what it buys.
//
// Independent of tag handling, every candidate is verified structurally
// before rewriting — the pass SIMULATES original and candidate plans over
// attribute lists (leaf schemas from the statistics catalog, composite
// layouts from core.JoinLayout) and requires:
//
//   - identical coalesce partition: every output column merges exactly the
//     same set of leaf columns in both layouts (tag-set unions commute, and
//     with an exact instance resolver — Options.ExactResolver, required —
//     the coalesced datum is the same value regardless of operand order);
//   - identical resolution of every attribute referenced above the chain
//     (later selections, restrictions and the terminal projection), by
//     provenance, name and polygen annotation;
//   - no simulated layout needs join-column disambiguation (renamed
//     duplicate columns depend on runtime relation names the simulation
//     cannot know);
//   - the chain feeds, possibly through single-consumer PQP selections and
//     restrictions, a terminal Project, which pins the visible column order
//     in both layouts.
func reorderJoinChains(m *Matrix, opts Options) {
	// Rewrites shift row indices; rescan from scratch after each success.
	for rounds := 0; rounds < len(m.Rows); rounds++ {
		if !reorderOneChain(m, opts) {
			return
		}
	}
}

func reorderOneChain(m *Matrix, opts Options) bool {
	s := newPlanState(m)
	sim := newSimulator(m, s, opts)
	for i := range m.Rows {
		if !sim.eligibleJoin(m.Rows[i]) {
			continue
		}
		// Chain bottom: an eligible join whose left operand is not itself an
		// eligible single-consumer join.
		if pi, ok := s.producer[m.Rows[i].LHR.Reg]; ok &&
			sim.eligibleJoin(m.Rows[pi]) && s.consumers[m.Rows[i].LHR.Reg] == 1 {
			continue
		}
		if chain := collectChain(m, s, sim, i); chain != nil {
			if chain.reorder(m, opts) {
				return true
			}
		}
	}
	return false
}

// joinChain is one left-deep chain of eligible joins plus the validated
// tower of rows above it, ending in the terminal Project.
type joinChain struct {
	s     *planState
	sim   *simulator
	joins []int // row indexes, bottom-up
	// leaves[0] feeds the first join's LHR; leaves[i] (i >= 1) feeds join
	// i-1's RHR.
	leaves []int
	above  []int // row indexes from the chain top to the terminal Project
}

// eligibleJoin reports whether a row is a PQP equi-join over two registers.
func (sim *simulator) eligibleJoin(r Row) bool {
	return r.Op == OpJoin && r.EL == "PQP" && r.HasTheta && r.Theta == rel.ThetaEQ &&
		r.LHR.Kind == OpdReg && r.RHR.Kind == OpdReg &&
		len(r.LHA) == 1 && r.RHA.Kind == CmpAttr
}

// collectChain walks upward from the bottom join, then validates the tower
// above the chain top. It returns nil when the shape does not qualify.
func collectChain(m *Matrix, s *planState, sim *simulator, bottom int) *joinChain {
	c := &joinChain{s: s, sim: sim}
	c.joins = append(c.joins, bottom)
	c.leaves = append(c.leaves, 0) // placeholder for the bottom-left leaf, fixed below
	i := bottom
	for {
		row := m.Rows[i]
		ri, ok := s.producer[row.RHR.Reg]
		if !ok || s.consumers[row.RHR.Reg] != 1 {
			return nil
		}
		c.leaves = append(c.leaves, ri)
		// Extend upward while this join's register feeds exactly one
		// consumer that is itself an eligible join's LHR.
		if s.consumers[row.PR] != 1 {
			break
		}
		ni := consumerOf(m, row.PR)
		if ni < 0 || !sim.eligibleJoin(m.Rows[ni]) || m.Rows[ni].LHR.Reg != row.PR {
			break
		}
		c.joins = append(c.joins, ni)
		i = ni
	}
	// A single-join chain still qualifies: the bottom-operand swap picks the
	// cheaper hash-join build side.
	li, ok := s.producer[m.Rows[bottom].LHR.Reg]
	if !ok || s.consumers[m.Rows[bottom].LHR.Reg] != 1 {
		return nil
	}
	c.leaves[0] = li
	// Validate the tower above the top join: single-consumer PQP
	// selections/restrictions, terminated by a Project.
	reg := m.Rows[c.joins[len(c.joins)-1]].PR
	for {
		if c.s.consumers[reg] != 1 {
			return nil
		}
		ti := consumerOf(m, reg)
		if ti < 0 {
			return nil
		}
		t := m.Rows[ti]
		if t.EL != "PQP" || t.LHR.Kind != OpdReg || t.LHR.Reg != reg || t.RHR.Kind != OpdNone {
			return nil
		}
		c.above = append(c.above, ti)
		switch t.Op {
		case OpSelect, OpRestrict:
			reg = t.PR
			continue
		case OpProject:
			return c
		default:
			return nil
		}
	}
}

// consumerOf finds the single row consuming reg (-1 if none).
func consumerOf(m *Matrix, reg int) int {
	for i, row := range m.Rows {
		found := false
		forEachReg(row, func(r int) {
			if r == reg {
				found = true
			}
		})
		if found {
			return i
		}
	}
	return -1
}

// chainEdge is one join predicate of the original chain: x resolved against
// the left composite, y against the right-hand leaf. Equality predicates
// are symmetric, so candidates may use an edge in either orientation.
type chainEdge struct {
	xName, yName string
	leaf         int
}

// chainStep is one join of a rebuilt chain: attach leaf via
// composite[xName] = leaf[yName].
type chainStep struct {
	leaf         int
	xName, yName string
}

// leafInfo is the simulated shape of one chain leaf.
type leafInfo struct {
	attrs []core.Attr
	rows  float64
	// fullRows is the unfiltered cardinality of the leaf's base relation
	// and keyCol the index of its single-column primary key in attrs (-1
	// when unknown, composite, or projected away). Together they sharpen
	// the join-output estimate: a join whose predicate hits a primary key
	// yields |other side| × (rows / fullRows) instead of the independence
	// guess.
	fullRows float64
	keyCol   int
	// db and mediated describe the leaf's constant tag state when the leaf
	// is an LQP-resident row: every cell's origin is {db}, every cell's
	// intermediate set is {db} (mediated pushdown) or {} — which makes the
	// whole chain's tag algebra a compile-time constant per column. tagged
	// is false for other leaves (e.g. Merges), whose per-row origins the
	// simulation cannot know.
	db       string
	mediated bool
	tagged   bool
}

// reorder estimates, generates candidate orders, simulates, verifies, and
// rewrites. It reports whether the matrix changed.
func (c *joinChain) reorder(m *Matrix, opts Options) bool {
	n := len(c.leaves)
	leaves := make([]leafInfo, n)
	for i, li := range c.leaves {
		leaves[i].attrs = c.sim.attrsOf(li)
		if leaves[i].attrs == nil {
			return false
		}
		est, ok := c.sim.rowsOf(li)
		if !ok {
			return false
		}
		leaves[i].rows = est
		leaves[i].keyCol = -1
		row := m.Rows[li]
		if isLocalRow(row) {
			leaves[i].tagged = true
			leaves[i].db = row.EL
			for _, op := range row.Pushed {
				if op.Kind == lqp.OpSelect || op.Kind == lqp.OpRestrict {
					leaves[i].mediated = true
				}
			}
			if rs, ok := opts.Stats.Relation(row.EL, row.LHR.Name); ok {
				leaves[i].fullRows = float64(rs.Rows)
				if len(rs.Key) == 1 {
					for ci, at := range leaves[i].attrs {
						if at.Name == rs.Key[0] {
							leaves[i].keyCol = ci
						}
					}
				}
			}
		}
	}
	// Simulate the original chain, extracting the predicates.
	edges := make([]chainEdge, 0, n-1)
	comp := newComposite(leaves[0], 0)
	for ji, idx := range c.joins {
		row := m.Rows[idx]
		e := chainEdge{xName: row.LHA[0], yName: row.RHA.Attr, leaf: ji + 1}
		var ok bool
		comp, ok = comp.join(e.xName, leaves[e.leaf], e.leaf, e.yName)
		if !ok {
			return false
		}
		edges = append(edges, e)
	}
	orig := comp
	origSteps := make([]chainStep, len(edges))
	for i, e := range edges {
		origSteps[i] = chainStep{leaf: e.leaf, xName: e.xName, yName: e.yName}
	}
	origCost, ok := chainCost(0, origSteps, leaves)
	if !ok {
		return false
	}

	for _, cand := range c.candidates(leaves, edges, opts) {
		// Strict improvement stabilizes the pass: every accepted rewrite
		// lowers the deterministic cost estimate, so rescans terminate
		// instead of oscillating between equivalent orders.
		candCost, ok := chainCost(cand.start, cand.steps, leaves)
		if !ok || candCost >= origCost*0.99 {
			continue
		}
		newComp, ok := applySteps(cand.start, cand.steps, leaves)
		if !ok || !compositesEqual(orig, newComp) {
			continue
		}
		if !opts.RelaxedJoinReorder && !tagsEqual(orig, newComp) {
			continue
		}
		resolved := true
		for _, ti := range c.above {
			for _, name := range referencedNames(m.Rows[ti]) {
				if !sameResolution(orig, newComp, name) {
					resolved = false
				}
			}
		}
		if !resolved {
			continue
		}
		c.rewrite(m, cand.start, cand.steps)
		return true
	}
	return false
}

// candidate is one proposed chain order.
type candidate struct {
	start int
	steps []chainStep
}

// candidates proposes orders worth verifying, best first: the greedy
// smallest-first order, then the bottom-operand swap (which preserves the
// tag algebra by construction and picks the cheaper hash build side).
func (c *joinChain) candidates(leaves []leafInfo, edges []chainEdge, opts Options) []candidate {
	var out []candidate
	if g, ok := greedyOrder(leaves, edges); ok && !sameAsOriginal(g, edges) {
		out = append(out, g)
	}
	// Bottom swap: worthwhile when the bottom-left leaf is the smaller one —
	// core's hash join builds its index over the right operand.
	if len(edges) >= 1 && leaves[0].rows < leaves[1].rows {
		steps := make([]chainStep, 0, len(edges))
		steps = append(steps, chainStep{leaf: 0, xName: edges[0].yName, yName: edges[0].xName})
		for _, e := range edges[1:] {
			steps = append(steps, chainStep{leaf: e.leaf, xName: e.xName, yName: e.yName})
		}
		out = append(out, candidate{start: 1, steps: steps})
	}
	return out
}

// sameAsOriginal reports whether a candidate reproduces the original
// left-deep order.
func sameAsOriginal(cand candidate, edges []chainEdge) bool {
	if cand.start != 0 {
		return false
	}
	for i, st := range cand.steps {
		if st.leaf != edges[i].leaf || st.xName != edges[i].xName || st.yName != edges[i].yName {
			return false
		}
	}
	return true
}

// stepCost estimates one join step — 2×build + probe + output, the build
// side weighted because hashing costs more per row than probing — and the
// output cardinality that becomes the next probe side. A predicate hitting
// a single-column primary key (on either side, located through the
// composite's provenance) caps the output at |other side| × the keyed
// relation's filter selectivity; otherwise the independence guess applies.
func stepCost(comp composite, inter float64, st chainStep, leaves []leafInfo) (cost, out float64, ok bool) {
	leaf := leaves[st.leaf]
	xi, err := core.ResolveAttrIn("", comp.attrs, st.xName)
	if err != nil {
		return 0, 0, false
	}
	yi, err := core.ResolveAttrIn("", leaf.attrs, st.yName)
	if err != nil {
		return 0, 0, false
	}
	out = inter * leaf.rows * stats.DefaultFilterSelectivity
	if yi == leaf.keyCol && leaf.fullRows > 0 {
		out = min(out, inter*leaf.rows/leaf.fullRows)
	}
	if len(comp.prov[xi]) == 1 {
		for lc := range comp.prov[xi] {
			la := leaves[lc.leaf]
			if lc.col == la.keyCol && la.fullRows > 0 {
				out = min(out, inter*leaf.rows/la.fullRows)
			}
		}
	}
	return 2*leaf.rows + inter + out, out, true
}

// chainCost estimates a whole chain order. Deterministic in its inputs —
// the strict-improvement gate in reorder relies on that.
func chainCost(start int, steps []chainStep, leaves []leafInfo) (float64, bool) {
	comp := newComposite(leaves[start], start)
	inter := leaves[start].rows
	total := 0.0
	for _, st := range steps {
		cost, out, ok := stepCost(comp, inter, st, leaves)
		if !ok {
			return 0, false
		}
		comp, ok = comp.join(st.xName, leaves[st.leaf], st.leaf, st.yName)
		if !ok {
			return 0, false
		}
		total += cost
		inter = out
	}
	return total, true
}

// greedyOrder searches for a cheap order: for every possible start leaf it
// grows the chain by repeatedly attaching the resolvable step with the
// lowest estimated cost, and returns the best complete candidate.
func greedyOrder(leaves []leafInfo, edges []chainEdge) (candidate, bool) {
	n := len(leaves)
	var best candidate
	bestCost := 0.0
	found := false
	for start := 0; start < n; start++ {
		used := make([]bool, n)
		used[start] = true
		comp := newComposite(leaves[start], start)
		inter := leaves[start].rows
		steps := make([]chainStep, 0, n-1)
		total := 0.0
		for len(steps) < n-1 {
			picked := false
			var pick chainStep
			var pickComp composite
			pickCost, pickOut := 0.0, 0.0
			// A spurious resolution (same polygen name on an unrelated leaf)
			// can only cost a rewrite: the partition check rejects any
			// candidate whose final layout differs from the original's.
			for _, e := range edges {
				for u := 0; u < n; u++ {
					if used[u] {
						continue
					}
					for _, st := range [2]chainStep{
						{leaf: u, xName: e.xName, yName: e.yName},
						{leaf: u, xName: e.yName, yName: e.xName},
					} {
						cand, ok := comp.join(st.xName, leaves[u], u, st.yName)
						if !ok {
							continue
						}
						cost, out, ok := stepCost(comp, inter, st, leaves)
						if !ok {
							continue
						}
						if !picked || cost < pickCost {
							picked = true
							pick = st
							pickComp = cand
							pickCost, pickOut = cost, out
						}
						break
					}
				}
			}
			if !picked {
				break // disconnected under greedy growth from this start
			}
			used[pick.leaf] = true
			comp = pickComp
			inter = pickOut
			total += pickCost
			steps = append(steps, pick)
		}
		if len(steps) != n-1 {
			continue
		}
		if !found || total < bestCost {
			found = true
			bestCost = total
			best = candidate{start: start, steps: steps}
		}
	}
	return best, found
}

// applySteps simulates a candidate order from scratch.
func applySteps(start int, steps []chainStep, leaves []leafInfo) (composite, bool) {
	comp := newComposite(leaves[start], start)
	for _, st := range steps {
		var ok bool
		comp, ok = comp.join(st.xName, leaves[st.leaf], st.leaf, st.yName)
		if !ok {
			return composite{}, false
		}
	}
	return comp, true
}

// referencedNames lists the attribute names a tower row resolves against
// the chain's output.
func referencedNames(r Row) []string {
	names := append([]string(nil), r.LHA...)
	if r.RHA.Kind == CmpAttr {
		names = append(names, r.RHA.Attr)
	}
	return names
}

// rewrite replaces the chain's join rows with the reordered chain. Leaves
// and every other row keep their relative positions; the k join rows
// collect at the end of the chain's span, reusing the original join
// registers in ascending order so the top register — the only one visible
// outside the chain — is unchanged.
func (c *joinChain) rewrite(m *Matrix, start int, steps []chainStep) {
	joinSet := make(map[int]bool, len(c.joins))
	prs := make([]int, 0, len(c.joins))
	first, last := c.joins[0], c.joins[0]
	for _, ji := range c.joins {
		joinSet[ji] = true
		prs = append(prs, m.Rows[ji].PR)
		if ji < first {
			first = ji
		}
		if ji > last {
			last = ji
		}
	}
	sort.Ints(prs)
	out := make([]Row, 0, len(m.Rows))
	out = append(out, m.Rows[:first]...)
	for i := first; i <= last; i++ {
		if !joinSet[i] {
			out = append(out, m.Rows[i])
		}
	}
	reg := m.Rows[c.leaves[start]].PR
	for i, st := range steps {
		out = append(out, Row{
			PR:       prs[i],
			Op:       OpJoin,
			LHR:      RegOperand(reg),
			LHA:      []string{st.xName},
			Theta:    rel.ThetaEQ,
			HasTheta: true,
			RHA:      AttrComparand(st.yName),
			RHR:      RegOperand(m.Rows[c.leaves[st.leaf]].PR),
			EL:       "PQP",
		})
		reg = prs[i]
	}
	out = append(out, m.Rows[last+1:]...)
	m.Rows = out
}

// ---------------------------------------------------------------------------
// Chain simulation: layouts, provenance, tag algebra.

// tagSet is a set of local database names — a compile-time origin or
// intermediate set.
type tagSet map[string]bool

func tagOf(names ...string) tagSet {
	s := make(tagSet, len(names))
	for _, n := range names {
		if n != "" {
			s[n] = true
		}
	}
	return s
}

func (s tagSet) union(o tagSet) tagSet {
	out := make(tagSet, len(s)+len(o))
	for n := range s {
		out[n] = true
	}
	for n := range o {
		out[n] = true
	}
	return out
}

func (s tagSet) key() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// composite is a simulated join composite: the attribute list plus, per
// column, the set of leaf columns coalesced into it and — when every leaf's
// tag state is a compile-time constant — the column's origin and
// intermediate tag sets.
type composite struct {
	attrs []core.Attr
	prov  []provSet
	// tagged is true while the per-column tag algebra is known exactly.
	tagged  bool
	origins []tagSet
	inters  []tagSet
}

type provSet map[leafCol]bool

type leafCol struct{ leaf, col int }

func (p provSet) key() string {
	cols := make([]string, 0, len(p))
	for lc := range p {
		cols = append(cols, fmt.Sprintf("%d.%d", lc.leaf, lc.col))
	}
	sort.Strings(cols)
	return strings.Join(cols, ",")
}

func (p provSet) union(o provSet) provSet {
	out := make(provSet, len(p)+len(o))
	for lc := range p {
		out[lc] = true
	}
	for lc := range o {
		out[lc] = true
	}
	return out
}

func newComposite(leaf leafInfo, idx int) composite {
	c := composite{
		attrs:  append([]core.Attr(nil), leaf.attrs...),
		prov:   make([]provSet, len(leaf.attrs)),
		tagged: leaf.tagged,
	}
	for i := range leaf.attrs {
		c.prov[i] = provSet{leafCol{leaf: idx, col: i}: true}
	}
	if c.tagged {
		c.origins = make([]tagSet, len(leaf.attrs))
		c.inters = make([]tagSet, len(leaf.attrs))
		for i := range leaf.attrs {
			c.origins[i] = tagOf(leaf.db)
			if leaf.mediated {
				c.inters[i] = tagOf(leaf.db)
			} else {
				c.inters[i] = tagOf()
			}
		}
	}
	return c
}

// join simulates joining the composite (left) with a leaf (right) on
// xName = yName, refusing any layout that needs disambiguation, and — when
// the tag algebra is known — applying the polygen join tag semantics: the
// operand columns' origins join every column's intermediate set, and the
// coalesced column unions both operands' tags.
func (c composite) join(xName string, leaf leafInfo, idx int, yName string) (composite, bool) {
	right := leaf.attrs
	xi, err := core.ResolveAttrIn("", c.attrs, xName)
	if err != nil {
		return composite{}, false
	}
	yi, err := core.ResolveAttrIn("", right, yName)
	if err != nil {
		return composite{}, false
	}
	out, coalesce := core.JoinLayout(c.attrs, xi, "", right, yi)
	// Reject layouts that renamed anything: runtime disambiguation depends
	// on relation names the simulation cannot reproduce.
	for i, at := range out {
		var want core.Attr
		switch {
		case i < len(c.attrs):
			if coalesce && i == xi {
				continue // the coalesced column may adopt the polygen name
			}
			want = c.attrs[i]
		case coalesce:
			want = rightAttrSkipping(right, yi, i-len(c.attrs))
		default:
			want = right[i-len(c.attrs)]
		}
		if at.Name != want.Name {
			return composite{}, false
		}
	}
	rc := newComposite(leaf, idx)
	n := composite{attrs: out, tagged: c.tagged && rc.tagged}
	n.prov = append(n.prov, c.prov...)
	if coalesce {
		n.prov[xi] = c.prov[xi].union(rc.prov[yi])
	}
	for i := range right {
		if coalesce && i == yi {
			continue
		}
		n.prov = append(n.prov, rc.prov[i])
	}
	if n.tagged {
		med := c.origins[xi].union(rc.origins[yi])
		for i := range c.attrs {
			o, in := c.origins[i], c.inters[i].union(med)
			if coalesce && i == xi {
				o = med
				in = c.inters[xi].union(rc.inters[yi]).union(med)
			}
			n.origins = append(n.origins, o)
			n.inters = append(n.inters, in)
		}
		for i := range right {
			if coalesce && i == yi {
				continue
			}
			n.origins = append(n.origins, rc.origins[i])
			n.inters = append(n.inters, rc.inters[i].union(med))
		}
	}
	return n, true
}

func rightAttrSkipping(right []core.Attr, yi, i int) core.Attr {
	if i >= yi {
		i++
	}
	return right[i]
}

// compositesEqual compares two simulated layouts as multisets of
// (provenance set, name, polygen annotation) — column order is free, the
// terminal Project pins it.
func compositesEqual(a, b composite) bool {
	if len(a.attrs) != len(b.attrs) {
		return false
	}
	sig := func(c composite) []string {
		out := make([]string, len(c.attrs))
		for i, at := range c.attrs {
			out[i] = c.prov[i].key() + "|" + at.Name + "|" + at.Polygen
		}
		sort.Strings(out)
		return out
	}
	sa, sb := sig(a), sig(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// tagsEqual reports that both layouts' per-column tag algebra is known and
// identical: same origin and intermediate sets for the same provenance.
func tagsEqual(a, b composite) bool {
	if !a.tagged || !b.tagged || len(a.attrs) != len(b.attrs) {
		return false
	}
	sig := func(c composite) []string {
		out := make([]string, len(c.attrs))
		for i := range c.attrs {
			out[i] = c.prov[i].key() + "|" + c.origins[i].key() + "|" + c.inters[i].key()
		}
		sort.Strings(out)
		return out
	}
	sa, sb := sig(a), sig(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// sameResolution checks that name resolves in both layouts to a column with
// identical provenance, name and annotation.
func sameResolution(a, b composite, name string) bool {
	ai, errA := core.ResolveAttrIn("", a.attrs, name)
	bi, errB := core.ResolveAttrIn("", b.attrs, name)
	if errA != nil || errB != nil {
		return false
	}
	return a.prov[ai].key() == b.prov[bi].key() &&
		a.attrs[ai] == b.attrs[bi]
}

// ---------------------------------------------------------------------------
// Simulator: per-row layouts and cardinality estimates.

// simulator derives per-row output attribute lists and cardinality
// estimates from the statistics catalog and the polygen schema.
type simulator struct {
	m     *Matrix
	s     *planState
	opts  Options
	attrs map[int][]core.Attr // row index -> simulated output attrs (nil = unknown)
	rows  map[int]float64     // row index -> estimated cardinality
}

func newSimulator(m *Matrix, s *planState, opts Options) *simulator {
	return &simulator{m: m, s: s, opts: opts, attrs: make(map[int][]core.Attr), rows: make(map[int]float64)}
}

// attrsOf returns the simulated output attribute list of row idx, nil when
// it cannot be derived faithfully.
func (sim *simulator) attrsOf(idx int) []core.Attr {
	if a, ok := sim.attrs[idx]; ok {
		return a
	}
	sim.attrs[idx] = nil // cycle guard
	a := sim.deriveAttrs(idx)
	sim.attrs[idx] = a
	return a
}

func (sim *simulator) deriveAttrs(idx int) []core.Attr {
	row := sim.m.Rows[idx]
	if isLocalRow(row) {
		return sim.localAttrs(row)
	}
	input := func(o Operand) []core.Attr {
		if o.Kind != OpdReg {
			return nil
		}
		pi, ok := sim.s.producer[o.Reg]
		if !ok {
			return nil
		}
		return sim.attrsOf(pi)
	}
	switch row.Op {
	case OpSelect, OpRestrict:
		return input(row.LHR)
	case OpProject:
		in := input(row.LHR)
		if in == nil {
			return nil
		}
		out := make([]core.Attr, len(row.LHA))
		for i, name := range row.LHA {
			ci, err := core.ResolveAttrIn("", in, name)
			if err != nil {
				return nil
			}
			out[i] = in[ci]
		}
		return out
	case OpJoin:
		l, r := input(row.LHR), input(row.RHR)
		if l == nil || r == nil || len(row.LHA) != 1 || row.RHA.Kind != CmpAttr {
			return nil
		}
		lc := newComposite(leafInfo{attrs: l}, 0)
		out, ok := lc.join(row.LHA[0], leafInfo{attrs: r}, 1, row.RHA.Attr)
		if !ok {
			return nil
		}
		return out.attrs
	case OpMerge:
		return sim.mergeAttrs(row)
	case OpUnion, OpDifference, OpIntersect:
		return input(row.LHR)
	default:
		return nil
	}
}

// localAttrs simulates an LQP-resident row: the relation's column list from
// the statistics catalog, annotated through the schema, filtered by the
// row's own projection and pushed steps.
func (sim *simulator) localAttrs(row Row) []core.Attr {
	if row.LHR.Kind != OpdLocal || sim.opts.Stats == nil {
		return nil
	}
	db, lscheme := row.EL, row.LHR.Name
	cols, ok := sim.opts.Stats.Columns(db, lscheme)
	if !ok {
		return nil
	}
	if row.Op == OpProject {
		cols = row.LHA
	}
	for _, op := range row.Pushed {
		if op.Kind == lqp.OpProject {
			cols = op.Attrs
		}
	}
	l2p, _, _ := localAttrMaps(sim.opts.Schema, db, lscheme)
	out := make([]core.Attr, len(cols))
	for i, c := range cols {
		out[i] = core.Attr{Name: c, Polygen: l2p[c]}
	}
	return out
}

// mergeAttrs simulates a Merge row: the scheme's attributes under their
// polygen names — valid only when every column of every source relation is
// mapped by the scheme (an unmapped physical column would survive the merge
// under its local name, which the simulation cannot see).
func (sim *simulator) mergeAttrs(row Row) []core.Attr {
	scheme, ok := sim.opts.Schema.Scheme(row.Scheme)
	if !ok || sim.opts.Stats == nil {
		return nil
	}
	for _, lr := range scheme.LocalSchemes() {
		cols, ok := sim.opts.Stats.Columns(lr.DB, lr.Scheme)
		if !ok {
			return nil
		}
		mapped := make(map[string]bool)
		for _, pair := range scheme.LocalAttrsOf(lr) {
			mapped[pair.Local] = true
		}
		for _, c := range cols {
			if !mapped[c] {
				return nil
			}
		}
	}
	out := make([]core.Attr, len(scheme.Attrs))
	for i, a := range scheme.Attrs {
		out[i] = core.Attr{Name: a.Name, Polygen: a.Name}
	}
	return out
}

// rowsOf estimates the output cardinality of row idx.
func (sim *simulator) rowsOf(idx int) (float64, bool) {
	if est, ok := sim.rows[idx]; ok {
		return est, est >= 0
	}
	sim.rows[idx] = -1 // cycle guard / failure sentinel
	est, ok := sim.deriveRows(idx)
	if !ok {
		return 0, false
	}
	sim.rows[idx] = est
	return est, true
}

func (sim *simulator) deriveRows(idx int) (float64, bool) {
	row := sim.m.Rows[idx]
	input := func(o Operand) (float64, bool) {
		if o.Kind != OpdReg {
			return 0, false
		}
		pi, ok := sim.s.producer[o.Reg]
		if !ok {
			return 0, false
		}
		return sim.rowsOf(pi)
	}
	if isLocalRow(row) {
		if row.LHR.Kind != OpdLocal || sim.opts.Stats == nil {
			return 0, false
		}
		n, ok := sim.opts.Stats.Cardinality(row.EL, row.LHR.Name)
		if !ok {
			return 0, false
		}
		est := float64(n)
		if row.Op == OpSelect || row.Op == OpRestrict {
			est *= stats.DefaultFilterSelectivity
		}
		for _, op := range row.Pushed {
			if op.Kind == lqp.OpSelect || op.Kind == lqp.OpRestrict {
				est *= stats.DefaultFilterSelectivity
			}
		}
		return est, true
	}
	switch row.Op {
	case OpSelect, OpRestrict:
		l, ok := input(row.LHR)
		return l * stats.DefaultFilterSelectivity, ok
	case OpProject:
		return input(row.LHR)
	case OpJoin, OpProduct:
		l, okL := input(row.LHR)
		r, okR := input(row.RHR)
		if !okL || !okR {
			return 0, false
		}
		if row.Op == OpProduct {
			return l * r, true
		}
		return l * r * stats.DefaultFilterSelectivity, true
	case OpMerge:
		if row.LHR.Kind != OpdRegs {
			return 0, false
		}
		total := 0.0
		for _, reg := range row.LHR.Regs {
			pi, ok := sim.s.producer[reg]
			if !ok {
				return 0, false
			}
			n, ok := sim.rowsOf(pi)
			if !ok {
				return 0, false
			}
			total += n
		}
		return total, true
	case OpUnion:
		l, okL := input(row.LHR)
		r, okR := input(row.RHR)
		return l + r, okL && okR
	case OpIntersect:
		l, okL := input(row.LHR)
		r, okR := input(row.RHR)
		if !okL || !okR {
			return 0, false
		}
		if r < l {
			l = r
		}
		return l, true
	case OpDifference:
		return input(row.LHR)
	default:
		return 0, false
	}
}
