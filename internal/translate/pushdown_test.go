package translate

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lqp"
	"repro/internal/rel"
	"repro/internal/stats"
)

// pushAll reports every LQP as accepting pushed-down subplans.
func pushAll(string) bool { return true }

func optimizeWith(t *testing.T, iom *Matrix, opts Options) *Matrix {
	t.Helper()
	out, err := OptimizeWithOptions(iom, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOptimizeFusesSelectChain: a PQP-resident Select over a pass-one-pushed
// local Select fuses into one pushed-down subplan at the LQP, with the
// attribute localized (MAJOR -> MAJ).
func TestOptimizeFusesSelectChain(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [MAJOR = "IS"]`)
	opt := optimizeWith(t, iom, Options{Schema: testSchema(), CanPush: pushAll})
	wantMatrix(t, opt,
		`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD | push: [MAJ = "IS"]`,
	)
}

// TestOptimizeFusesProjection: a trailing PQP Project fuses too, its
// attribute list localized, so only the named columns cross the wire.
func TestOptimizeFusesProjection(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [ANAME, DEGREE]`)
	opt := optimizeWith(t, iom, Options{Schema: testSchema(), CanPush: pushAll})
	wantMatrix(t, opt,
		`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD | push: [ANAME DEG]`,
	)
}

// TestOptimizePushdownSkippedWithoutCapability: an LQP that does not accept
// subplans keeps the chain PQP-side — the plan is exactly the dedup'd IOM.
func TestOptimizePushdownSkippedWithoutCapability(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [MAJOR = "IS"]`)
	for _, opts := range []Options{
		{Schema: testSchema()}, // no capability hook at all
		{Schema: testSchema(), CanPush: func(string) bool { return false }}, // every LQP declines
	} {
		opt := optimizeWith(t, iom, opts)
		wantMatrix(t, opt,
			`R(1) | Select | ALUMNUS | DEG | = | "MBA" | nil | AD`,
			`R(2) | Select | R(1) | MAJOR | = | "IS" | nil | PQP`,
		)
	}
}

// TestOptimizePushdownSkipsDomainMapped: a selection on a domain-mapped
// attribute must stay PQP-side (the LQP would compare raw, unmapped
// values), and a projection touching a domain-mapped column must not push
// (the LQP would eliminate duplicates on raw values).
func TestOptimizePushdownSkipsDomainMapped(t *testing.T) {
	schema := testSchema()
	schema.DomainMap.Set("AD", "ALUMNUS", "MAJ", func(v rel.Value) rel.Value { return v })
	opts := Options{Schema: schema, CanPush: pushAll}

	_, _, iom := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [MAJOR = "IS"]`)
	opt := optimizeWith(t, iom, opts)
	for _, row := range opt.Rows {
		for _, op := range row.Pushed {
			t.Errorf("domain-mapped selection was pushed: %v", op)
		}
	}

	// A projection naming a domain-mapped column must not REPLACE the
	// PQP-side Project (the LQP would eliminate duplicates on raw values
	// that map to equal domain values). Narrowing the transfer to the two
	// columns is fine — the PQP-side Project still dedups mapped values —
	// so the final row must remain a PQP Project.
	_, _, iom2 := translateAll(t, `(PALUMNUS [DEGREE = "MBA"]) [ANAME, MAJOR]`)
	opt2 := optimizeWith(t, iom2, opts)
	last := opt2.Rows[len(opt2.Rows)-1]
	if last.Op != OpProject || last.EL != "PQP" {
		t.Errorf("domain-mapped projection fused away, final row: %s", last)
	}
	for _, row := range opt2.Rows {
		for _, op := range row.Pushed {
			if op.Kind != lqp.OpProject {
				t.Errorf("non-projection step pushed: %v", op)
			}
		}
	}
}

// TestOptimizeRestrictPushdownOrderedOnly: the PQP routes = and <> through
// the instance resolver's canonical IDs (kind-sensitive — Int(5) never
// equals Float(5)), the LQP compares with numeric coercion, so equality
// restrictions never fuse — even under an exact resolver — while ordered
// comparisons (evaluated identically on both sides) do.
func TestOptimizeRestrictPushdownOrderedOnly(t *testing.T) {
	_, _, iom := translateAll(t, `(PSTUDENT [GPA >= 3.5]) [SNAME = MAJOR]`)
	for _, exact := range []bool{false, true} {
		opt := optimizeWith(t, iom, Options{Schema: testSchema(), CanPush: pushAll, ExactResolver: exact})
		wantMatrix(t, opt,
			`R(1) | Select | STUDENT | GPA | >= | 3.5 | nil | PD`,
			`R(2) | Restrict | R(1) | SNAME | = | MAJOR | nil | PQP`,
		)
	}
	_, _, iom2 := translateAll(t, `(PSTUDENT [GPA >= 3.5]) [SNAME < MAJOR]`)
	opt := optimizeWith(t, iom2, Options{Schema: testSchema(), CanPush: pushAll})
	wantMatrix(t, opt,
		`R(1) | Select | STUDENT | GPA | >= | 3.5 | nil | PD | push: [SNAME < MAJOR]`,
	)
}

// TestOptimizeNeverPushesThroughMerge: a selection above a Merge filters
// coalesced, multi-source (tag-bearing) values — it must not move below the
// merge boundary, whatever the capabilities.
func TestOptimizeNeverPushesThroughMerge(t *testing.T) {
	_, _, iom := translateAll(t, `(PORGANIZATION [INDUSTRY = "Banking"]) [ONAME, CEO]`)
	opt := optimizeWith(t, iom, Options{Schema: testSchema(), CanPush: pushAll, ExactResolver: true})
	lines := matrixLines(opt)
	if !strings.Contains(lines, "Merge") {
		t.Fatalf("merge disappeared:\n%s", lines)
	}
	for _, row := range opt.Rows {
		if isLocalRow(row) && len(row.Pushed) > 0 {
			t.Errorf("operation pushed below a merge boundary: %s", row)
		}
		if row.Op == OpSelect && row.EL != "PQP" {
			t.Errorf("selection on merged attributes moved to an LQP: %s", row)
		}
	}
}

// TestOptimizeNarrowKeepsTagBearingColumns is the projection-narrowing
// contract: a Retrieve feeding a PQP-side selection chain narrows to the
// demanded columns, and the selection's condition column — whose origin
// tags mediate the result, here forced PQP-side by a domain mapping — is
// never projected away.
func TestOptimizeNarrowKeepsTagBearingColumns(t *testing.T) {
	schema := testSchema()
	schema.DomainMap.Set("AD", "ALUMNUS", "MAJ", func(v rel.Value) rel.Value { return v })
	_, _, iom := translateAllWith(t, schema, `(PALUMNUS [MAJOR = "IS"]) [ANAME]`)
	// No pushdown capability: narrowing a bare Retrieve is a single local
	// Project, which every LQP supports.
	opt := optimizeWith(t, iom, Options{Schema: schema})
	wantMatrix(t, opt,
		`R(1) | Project | ALUMNUS | ANAME, MAJ | nil | nil | nil | AD`,
		`R(2) | Select | R(1) | MAJOR | = | "IS" | nil | PQP`,
		`R(3) | Project | R(2) | ANAME | nil | nil | nil | PQP`,
	)
}

// TestOptimizeNarrowSkipsTotalDemand: inputs of whole-tuple operations
// (here a Union) are observed in full and must not narrow.
func TestOptimizeNarrowSkipsTotalDemand(t *testing.T) {
	_, _, iom := translateAll(t, `(PALUMNUS) UNION (PALUMNUS)`)
	opt := optimizeWith(t, iom, Options{Schema: testSchema()})
	for _, row := range opt.Rows {
		if row.Op == OpProject && isLocalRow(row) {
			t.Errorf("union input narrowed: %s", row)
		}
	}
}

// reorderSchema and reorderStats build a two-relation federation for the
// join-order unit tests: SMALL (10 rows) at XD, BIG (1000 rows) at YD,
// joined on the shared polygen attribute K.
func reorderSchema() (*Matrix, Options) {
	schema := mustSchemaOf()
	cat := stats.NewCatalog()
	cat.SetRelation("XD", lqp.RelationStats{Name: "SMALL", Rows: 10, Columns: []string{"K", "V"}})
	cat.SetRelation("YD", lqp.RelationStats{Name: "BIG", Rows: 1000, Columns: []string{"K", "W"}})
	iom := &Matrix{Rows: []Row{
		{PR: 1, Op: OpRetrieve, LHR: LocalOperand("SMALL"), RHA: NoComparand(), RHR: NoOperand(), EL: "XD"},
		{PR: 2, Op: OpRetrieve, LHR: LocalOperand("BIG"), RHA: NoComparand(), RHR: NoOperand(), EL: "YD"},
		{PR: 3, Op: OpJoin, LHR: RegOperand(1), LHA: []string{"K"}, Theta: rel.ThetaEQ, HasTheta: true, RHA: AttrComparand("K"), RHR: RegOperand(2), EL: "PQP"},
		{PR: 4, Op: OpProject, LHR: RegOperand(3), LHA: []string{"V", "W"}, RHA: NoComparand(), RHR: NoOperand(), EL: "PQP"},
	}}
	return iom, Options{Schema: schema, Stats: cat, ExactResolver: true}
}

func mustSchemaOf() *core.Schema {
	la := func(db, scheme, attr string) core.LocalAttr {
		return core.LocalAttr{DB: db, Scheme: scheme, Attr: attr}
	}
	return core.MustSchema(
		&core.Scheme{Name: "PSMALL", Key: "K", Attrs: []core.PolygenAttr{
			{Name: "K", Mapping: []core.LocalAttr{la("XD", "SMALL", "K")}},
			{Name: "V", Mapping: []core.LocalAttr{la("XD", "SMALL", "V")}},
		}},
		&core.Scheme{Name: "PBIG", Key: "K", Attrs: []core.PolygenAttr{
			{Name: "K", Mapping: []core.LocalAttr{la("YD", "BIG", "K")}},
			{Name: "W", Mapping: []core.LocalAttr{la("YD", "BIG", "W")}},
		}},
	)
}

// TestOptimizeReorderSwapsBuildSide: with statistics available and an exact
// resolver, the single join flips its operands so the hash join builds over
// the small relation. The bottom swap preserves the tag algebra exactly, so
// it fires in strict mode.
func TestOptimizeReorderSwapsBuildSide(t *testing.T) {
	iom, opts := reorderSchema()
	opt := optimizeWith(t, iom, opts)
	wantMatrix(t, opt,
		"R(1) | Retrieve | SMALL | nil | nil | nil | nil | XD",
		"R(2) | Retrieve | BIG | nil | nil | nil | nil | YD",
		"R(3) | Join | R(2) | K | = | K | R(1) | PQP",
		"R(4) | Project | R(3) | V, W | nil | nil | nil | PQP",
	)
}

// TestOptimizeReorderNeedsStatsAndExactness: the same plan is untouched
// without statistics or with an inexact resolver.
func TestOptimizeReorderNeedsStatsAndExactness(t *testing.T) {
	iom, opts := reorderSchema()
	noStats := opts
	noStats.Stats = nil
	opt := optimizeWith(t, iom, noStats)
	if got := opt.Rows[2].LHR.Reg; got != 1 {
		t.Errorf("join reordered without statistics:\n%s", matrixLines(opt))
	}
	inexact := opts
	inexact.ExactResolver = false
	opt2 := optimizeWith(t, iom, inexact)
	if got := opt2.Rows[2].LHR.Reg; got != 1 {
		t.Errorf("join reordered under an inexact resolver:\n%s", matrixLines(opt2))
	}
}

// translateAllWith is translateAll against a custom schema.
func translateAllWith(t *testing.T, schema *core.Schema, expr string) (*Matrix, *Matrix, *Matrix) {
	t.Helper()
	e, err := ParseExpr(expr)
	if err != nil {
		t.Fatal(err)
	}
	pom, err := Analyze(e)
	if err != nil {
		t.Fatal(err)
	}
	h, err := PassOne(pom, schema)
	if err != nil {
		t.Fatalf("pass one: %v", err)
	}
	iom, err := PassTwo(h, schema)
	if err != nil {
		t.Fatalf("pass two: %v", err)
	}
	return pom, h, iom
}
