package translate

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// ParseExpr parses a polygen algebraic expression in the paper's notation:
//
//	( ( ( ( PALUMNUS [DEGREE = "MBA"] ) [AID#=AID#] PCAREER )
//	    [ONAME = ONAME] PORGANIZATION ) [CEO = ANAME] ) [ONAME, CEO]
//
// Grammar (brackets bind postfix, joins take a following operand):
//
//	expr    = operand { suffix }
//	          | expr ("UNION" | "MINUS" | "INTERSECT" | "TIMES") expr
//	suffix  = "[" attr θ literal "]"            -- Select
//	        | "[" attr θ attr "]" [ operand ]   -- Restrict, or Join if an
//	                                               operand follows
//	        | "[" attr { "," attr } "]"         -- Project
//	operand = IDENT | "(" expr ")"
func ParseExpr(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &exprParser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("translate: trailing input at %s", p.peek())
	}
	return e, nil
}

// MustParseExpr is ParseExpr for statically-known expressions.
func MustParseExpr(input string) Expr {
	e, err := ParseExpr(input)
	if err != nil {
		panic(err)
	}
	return e
}

type exprParser struct {
	toks []token
	i    int
}

func (p *exprParser) peek() token { return p.toks[p.i] }
func (p *exprParser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *exprParser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("translate: expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *exprParser) parseExpr() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent {
		var op OpName
		switch strings.ToUpper(p.peek().text) {
		case "UNION":
			op = OpUnion
		case "MINUS":
			op = OpDifference
		case "INTERSECT":
			op = OpIntersect
		case "TIMES":
			op = OpProduct
		default:
			return e, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &BinaryExpr{Op: op, L: e, R: r}
	}
	return e, nil
}

// parseUnary parses an operand followed by any number of bracket suffixes.
func (p *exprParser) parseUnary() (Expr, error) {
	e, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokLBracket {
		e, err = p.parseSuffix(e)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

func (p *exprParser) parseOperand() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		return &SchemeRef{Name: t.text}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		// A parenthesized expression may itself take suffixes before being
		// used as an operand, e.g. ( ... ) [CEO = ANAME].
		for p.peek().kind == tokLBracket {
			e, err = p.parseSuffix(e)
			if err != nil {
				return nil, err
			}
		}
		return e, nil
	default:
		return nil, fmt.Errorf("translate: expected a relation or '(', found %s", t)
	}
}

func (p *exprParser) parseSuffix(in Expr) (Expr, error) {
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	first, err := p.expect(tokIdent, "an attribute name")
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokComma, tokRBracket:
		// Projection list.
		attrs := []string{first.text}
		for p.peek().kind == tokComma {
			p.next()
			a, err := p.expect(tokIdent, "an attribute name")
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a.text)
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return &ProjectExpr{In: in, Attrs: attrs}, nil
	case tokOp:
		theta, err := rel.ParseTheta(p.next().text)
		if err != nil {
			return nil, err
		}
		rhs := p.next()
		switch rhs.kind {
		case tokString:
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			return &SelectExpr{In: in, Attr: first.text, Theta: theta, Const: rel.String(rhs.text)}, nil
		case tokNumber:
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			return &SelectExpr{In: in, Attr: first.text, Theta: theta, Const: rel.Parse(rhs.text)}, nil
		case tokIdent:
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			// A following operand turns the restriction into a join.
			if k := p.peek().kind; k == tokIdent || k == tokLParen {
				if k == tokIdent && isKeyword(p.peek().text) {
					return &RestrictExpr{In: in, X: first.text, Theta: theta, Y: rhs.text}, nil
				}
				r, err := p.parseOperand()
				if err != nil {
					return nil, err
				}
				return &JoinExpr{L: in, X: first.text, Theta: theta, Y: rhs.text, R: r}, nil
			}
			return &RestrictExpr{In: in, X: first.text, Theta: theta, Y: rhs.text}, nil
		default:
			return nil, fmt.Errorf("translate: expected an attribute or literal after %q, found %s", theta, rhs)
		}
	default:
		return nil, fmt.Errorf("translate: expected ',', ']' or a comparison after %q, found %s", first.text, p.peek())
	}
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "UNION", "MINUS", "INTERSECT", "TIMES":
		return true
	default:
		return false
	}
}
