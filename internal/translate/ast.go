// Package translate implements the paper's polygen query translation
// pipeline (§III, Figure 2): the Syntax Analyzer that turns a polygen
// algebraic expression into a Polygen Operation Matrix (Table 1), the
// two-pass Polygen Operation Interpreter of Figures 3 and 4 that expands it
// into an Intermediate Operation Matrix (Tables 2 and 3) using the polygen
// schema's attribute mappings, the Query Optimizer, and the SQL front end
// that compiles the polygen SQL subset into algebraic expressions.
//
// The Query Optimizer — a component the paper names but leaves "beyond the
// scope" — is a cost-based, source-tag-aware plan rewriter for federations
// (optimize.go, reorder.go). Optimize applies the statistics-free passes
// (common-subexpression and dead-row elimination); OptimizeWithOptions
// adds, under Options carrying the schema, per-LQP statistics
// (internal/stats) and capability probes:
//
//   - predicate/projection pushdown: PQP-resident Select/Restrict/Project
//     rows fuse into the LQP-resident row feeding them, becoming
//     pushed-down subplans (Row.Pushed, executed as lqp.Plans) so only
//     filtered, narrowed rows cross the wide-area boundary;
//   - projection narrowing: retrievals shrink to the columns the plan
//     demands, never dropping condition (tag-bearing) columns;
//   - greedy join reordering: left-deep equi-join chains re-plan under a
//     key-aware cost model, verified by simulating both layouts.
//
// Every rewrite is identity-preserving at the cell level — data, origin
// tags and intermediate tags. Rewrites the polygen tag calculus does not
// license (selections through Merge or Join, join orders that change the
// intermediate-tag audit trail) are refused by construction; see the
// comments in optimize.go and reorder.go, and docs/ARCHITECTURE.md for the
// full argument.
package translate

import (
	"fmt"
	"strings"

	"repro/internal/rel"
)

// Expr is a polygen algebraic expression.
type Expr interface {
	// String renders the expression in the paper's notation, e.g.
	// ( PALUMNUS [DEGREE = "MBA"] ) [AID# = AID#] PCAREER.
	String() string
	isExpr()
}

// SchemeRef names a polygen scheme.
type SchemeRef struct {
	Name string
}

func (e *SchemeRef) isExpr()        {}
func (e *SchemeRef) String() string { return e.Name }

// SelectExpr is p[x θ constant].
type SelectExpr struct {
	In    Expr
	Attr  string
	Theta rel.Theta
	Const rel.Value
}

func (e *SelectExpr) isExpr() {}
func (e *SelectExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s])", e.In, e.Attr, e.Theta, formatConst(e.Const))
}

// RestrictExpr is p[x θ y] between two attributes of one expression.
type RestrictExpr struct {
	In    Expr
	X     string
	Theta rel.Theta
	Y     string
}

func (e *RestrictExpr) isExpr() {}
func (e *RestrictExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s])", e.In, e.X, e.Theta, e.Y)
}

// JoinExpr is p1[x θ y]p2.
type JoinExpr struct {
	L     Expr
	X     string
	Theta rel.Theta
	Y     string
	R     Expr
}

func (e *JoinExpr) isExpr() {}
func (e *JoinExpr) String() string {
	return fmt.Sprintf("(%s [%s %s %s] %s)", e.L, e.X, e.Theta, e.Y, e.R)
}

// ProjectExpr is p[x1, ..., xn].
type ProjectExpr struct {
	In    Expr
	Attrs []string
}

func (e *ProjectExpr) isExpr() {}
func (e *ProjectExpr) String() string {
	return fmt.Sprintf("(%s [%s])", e.In, strings.Join(e.Attrs, ", "))
}

// BinaryExpr covers the set-level operators the algebra inherits from the
// relational model: UNION, MINUS (Difference), INTERSECT and TIMES
// (Cartesian product). The paper's example uses none, but the polygen
// algebra defines them and the executor implements their tag semantics.
type BinaryExpr struct {
	Op OpName // OpUnion, OpDifference, OpIntersect, OpProduct
	L  Expr
	R  Expr
}

func (e *BinaryExpr) isExpr() {}
func (e *BinaryExpr) String() string {
	var kw string
	switch e.Op {
	case OpUnion:
		kw = "UNION"
	case OpDifference:
		kw = "MINUS"
	case OpIntersect:
		kw = "INTERSECT"
	case OpProduct:
		kw = "TIMES"
	default:
		kw = string(e.Op)
	}
	return fmt.Sprintf("(%s %s %s)", e.L, kw, e.R)
}

func formatConst(v rel.Value) string {
	if v.Kind() == rel.KindString {
		return fmt.Sprintf("%q", v.Str())
	}
	return v.String()
}
